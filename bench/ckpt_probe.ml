(* Quick A/B probe for checkpoint overhead: interleaves plain and
   checkpoint-every-1 depth-7 censuses and prints per-rep and best-of
   timings.  The full harness (bench/main.exe) reports the canonical
   number in BENCH_3.json; this probe exists for fast iteration on the
   durability layer without paying the bechamel suite.

   Run with: dune exec bench/ckpt_probe.exe [reps] *)

open Synthesis

let library3 = Library.make (Mvl.Encoding.make ~qubits:3)

let () =
  let reps = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 5 in
  let path = Filename.temp_file "qsynth_ckpt_probe" ".bin" in
  let timed f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let plain () = ignore (Fmcf.run ~max_depth:7 library3) in
  let checkpointed () =
    let census, reason =
      Fmcf.run_guarded ~max_depth:7
        ~on_level:(fun search ~cost:_ -> Checkpoint.save_async search path)
        library3
    in
    Checkpoint.drain ();
    if reason <> Fmcf.Completed then failwith "stopped early";
    ignore (Fmcf.counts census)
  in
  let best_p = ref infinity and best_c = ref infinity in
  for i = 1 to reps do
    let p = timed plain in
    let c = timed checkpointed in
    if p < !best_p then best_p := p;
    if c < !best_c then best_c := c;
    Printf.printf "rep %d: plain %.3fs  ckpt %.3fs\n%!" i p c
  done;
  let size = (Unix.stat path).Unix.st_size in
  Sys.remove path;
  Printf.printf "best: plain %.3fs  ckpt %.3fs  overhead %+.1f%%  snapshot %.1f MB\n"
    !best_p !best_c
    (100. *. ((!best_c -. !best_p) /. !best_p))
    (float_of_int size /. 1e6)
