(* Benchmark harness: regenerates every table and figure of the paper
   (printed first, with wall-clock timings), then runs one Bechamel
   micro-benchmark per experiment, and finally writes the machine-readable
   perf artifact BENCH_10.json (named experiment timings + bechamel
   estimates + parallel-census rows for jobs = 1/2/4 with the effective
   rank count + the checkpoint durability overhead row + quotient-vs-raw
   census rows at depths 7 and 8 + distributed-census rows comparing
   forked workers against the in-process BFS, clean and under injected
   worker faults + query-latency rows comparing the forward BFS, the
   persistent census index and the meet-in-the-middle engine + the
   complete-index section (total-coverage build raw vs quotient, file
   size, heap vs mmap cold start, cost-8 probe p50/p99 against a warm
   meet-in-the-middle engine with a >= 100x p99 gate) +
   server-latency rows comparing a warm service against one-shot cold
   evaluation + the nft_census gate-library section timing Younes's NFT
   universe next to the paper's at depth 5 + the telemetry snapshot of
   the depth-7 census).  Each
   PR that moves performance appends BENCH_N.json in the same schema to
   track the perf trajectory; the schema is documented in
   doc/OBSERVABILITY.md.

   Paper: Yang, Hung, Song, Perkowski, "Exact Synthesis of 3-qubit Quantum
   Circuits from Non-binary Quantum Gates Using Multiple-Valued Logic and
   Group Theory" (DATE 2005).

   Run with: dune exec bench/main.exe   (set BENCH_OUT to change the path) *)

open Synthesis

let library3 = Library.make (Mvl.Encoding.make ~qubits:3)
let library2 = Library.make (Mvl.Encoding.make ~qubits:2)

(* Every synthesis question in the harness goes through the unified
   query API — the same Request/Response pair the CLI and the daemon
   speak — so the timings here measure the code path users run. *)

let request ?task ?(max_depth = 7) target =
  let spec =
    String.concat ","
      (List.map string_of_int (Reversible.Revfun.output_column target))
  in
  Mce.Request.make ?task ~qubits:(Reversible.Revfun.bits target) ~max_depth spec

let express ?index ?bidir ?max_depth library target =
  Mce.Response.result_of (Mce.solve ?index ?bidir library (request ?max_depth target))

let witnesses library target =
  match
    (Mce.solve library (request ~task:Mce.Request.Count_witnesses target))
      .Mce.Response.body
  with
  | Ok { payload = Mce.Response.Witnesses { count }; _ } -> count
  | _ -> failwith "witness count failed"

let realizations ?(limit = 10_000) library target =
  match
    (Mce.solve library (request ~task:(Mce.Request.Enumerate { limit }) target))
      .Mce.Response.body
  with
  | Ok { payload = Mce.Response.Realizations { target; not_mask; cost; cascades; _ }; _ }
    ->
      List.map
        (fun cascade -> { Mce.target; not_mask; cascade; cost })
        cascades
  | Ok { payload = Mce.Response.Unrealizable _; _ } -> []
  | _ -> failwith "enumeration failed"

let time name f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  Format.printf "  [%-28s %8.3fs]@." name (Unix.gettimeofday () -. t0);
  result

(* Named experiment timings, accumulated for BENCH_1.json. *)
let timings : (string * float) list ref = ref []

let experiment name f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let dt = Unix.gettimeofday () -. t0 in
  timings := (name, dt) :: !timings;
  result

let hr title = Format.printf "@.==== %s ====@." title

(* Table 1 *)

let reproduce_table1 () =
  hr "Table 1: 2-qubit controlled-V truth table";
  let gate = Gate.make Gate.Controlled_v ~target:1 ~control:0 in
  let rows =
    Mvl.Truth_table.labeled_rows ~order:Mvl.Truth_table.table1_order (Gate.apply gate)
  in
  Mvl.Truth_table.pp_table ~wires:[ "A"; "B" ] Format.std_formatter rows;
  let img = Array.make 16 0 in
  List.iter (fun (li, _, _, lo) -> img.(li - 1) <- lo - 1) rows;
  Format.printf "permutation: %a  (paper: (3,7,4,8))@." Permgroup.Perm.pp
    (Permgroup.Perm.of_array img)

(* Table 2 *)

let reproduce_table2 () =
  hr "Table 2: number of circuits with cost k";
  let census = time "FMCF census depth 7" (fun () -> Fmcf.run ~max_depth:7 library3) in
  let print_row label values =
    Format.printf "%-28s" label;
    List.iter (fun v -> Format.printf " %6d" v) values;
    Format.printf "@."
  in
  print_row "cost k" (List.map fst (Fmcf.counts census));
  print_row "|G[k]|  (as specified)" (List.map snd (Fmcf.counts census));
  print_row "|G[k]|  (paper variant)" (List.map snd (Fmcf.paper_counts census));
  print_row "paper's printed row" [ 1; 6; 30; 52; 84; 156; 398; 540 ];
  print_row "|S8[k]| (8 x as-specified)" (List.map snd (Fmcf.s8_counts census));
  Format.printf
    "note: 30 = 24 + 6 CNOTs re-derived as V*V (missed subtraction); 52 = 51 + \
     identity (G[0] never subtracted); costs >= 4 agree exactly.@.";
  census

(* Figures 4-8: the cost-4 family *)

let reproduce_figures_4_to_8 () =
  hr "Figures 4-8: Peres and the cost-4 family";
  let report name target printed =
    let result = time (name ^ " MCE") (fun () -> express library3 target) in
    match result with
    | Some r ->
        let witnesses = witnesses library3 target in
        Format.printf "%s: %a  cost %d, %d distinct implementation(s), found %a@." name
          Reversible.Revfun.pp target r.Mce.cost witnesses Cascade.pp r.Mce.cascade;
        List.iter
          (fun s ->
            let c = Cascade.of_string ~qubits:3 s in
            Format.printf "  paper: %s  reasonable=%b implements=%b@." s
              (Cascade.is_reasonable library3 c)
              (Verify.cascade_implements ~qubits:3 c target))
          printed
    | None -> Format.printf "%s: NOT FOUND (unexpected)@." name
  in
  report "Fig 4 Peres g1" Reversible.Gates.g1 [ "VCB*FBA*VCA*V+CB" ];
  report "Fig 5 g2" Reversible.Gates.g2 [ "V+BC*FCA*VBA*VBC" ];
  report "Fig 6 g3" Reversible.Gates.g3 [ "VCB*FBA*V+CA*VCB" ];
  report "Fig 7 g4" Reversible.Gates.g4 [ "VCB*FBA*VCA*VCB" ];
  let fig4 = Cascade.of_string ~qubits:3 "VCB*FBA*VCA*V+CB" in
  let fig8 = Cascade.swap_v_dag fig4 in
  Format.printf
    "Fig 8: V<->V+ swap of Fig 4 = %a, implements Peres: %b (the paper's second \
     implementation)@."
    Cascade.pp fig8
    (Verify.cascade_implements ~qubits:3 fig8 Reversible.Gates.g1)

(* Figure 9: Toffoli *)

let reproduce_figure_9 () =
  hr "Figure 9: Toffoli implementations";
  let target = Reversible.Gates.toffoli3 in
  (* three tasks, one request shape each — the daemon's response cache
     is what replaces the old shared-query machinery *)
  (match time "Toffoli synthesis" (fun () -> express library3 target) with
  | Some r -> Format.printf "minimal cost %d: %a@." r.Mce.cost Cascade.pp r.Mce.cascade
  | None -> Format.printf "NOT FOUND (unexpected)@.");
  Format.printf "distinct implementations: %d (paper found 4)@."
    (witnesses library3 target);
  let all = realizations library3 target in
  Format.printf "all minimal cascades: %d, all exactly verified: %b@." (List.length all)
    (List.for_all (Verify.result_valid library3) all);
  List.iter
    (fun s ->
      let c = Cascade.of_string ~qubits:3 s in
      Format.printf "  paper (a-d): %s  implements=%b@." s
        (Verify.cascade_implements ~qubits:3 c target))
    [
      "FBA*V+CB*FBA*VCA*VCB";
      "FBA*VCB*FBA*V+CA*V+CB";
      "FAB*V+CA*FAB*VCA*VCB";
      "FAB*VCA*FAB*V+CA*V+CB";
    ]

let reproduce_figure_9_structure () =
  hr "Figure 9 discussion: symmetry structure of the minimal Toffoli set";
  let cascades =
    List.map (fun r -> r.Mce.cascade)
      (realizations library3 Reversible.Gates.toffoli3)
  in
  let groups = Equivalence.group_by_circuit library3 cascades in
  Format.printf "%d minimal cascades form %d circuit groups of sizes %s@."
    (List.length cascades) (List.length groups)
    (String.concat "," (List.map (fun g -> string_of_int (List.length g)) groups));
  Format.printf "closed under V<->V+ with %d distinct-partner pairs (paper: (a)/(b) and \
                 (c)/(d) are adjoint pairs)@."
    (Equivalence.vdag_closed library3 cascades / 2);
  let xor_sets =
    List.sort_uniq compare (List.map Equivalence.xor_wires cascades)
  in
  Format.printf "XOR wires used: %s (paper: 'two choices ... qubit A or qubit B')@."
    (String.concat " "
       (List.map
          (fun ws ->
            "{" ^ String.concat "," (List.map (fun w -> String.make 1 (Char.chr (Char.code 'A' + w))) ws) ^ "}")
          xor_sets));
  Format.printf "wire-relabeling orbits: %d (A <-> B symmetry pairs the cascades)@."
    (List.length (Equivalence.relabel_orbits ~qubits:3 cascades))

(* Section 5 group results *)

let reproduce_group_results census =
  hr "Section 5: G[4] split, universality, Theorem 2";
  let linear, family = Universality.split_g4 census in
  Format.printf "G[4]: %d Feynman-realizable + %d Peres-family (paper: 60 + 24)@."
    (List.length linear) (List.length family);
  let universal =
    time "24 universality checks" (fun () ->
        List.filter
          (fun (m : Fmcf.member) -> Universality.is_universal m.Fmcf.func)
          family)
  in
  Format.printf "universal members: %d of %d (paper: all 24, Size(M) = 40320)@."
    (List.length universal) (List.length family);
  let orbits =
    Universality.wire_orbits (List.map (fun (m : Fmcf.member) -> m.Fmcf.func) family)
  in
  Format.printf "wire-relabeling orbits: %s (paper: 4 families g1..g4 of 6)@."
    (String.concat " + " (List.map (fun o -> string_of_int (List.length o)) orbits));
  let g_size, h_size =
    time "Theorem 2 checks" (fun () -> Universality.theorem2_check ~bits:3)
  in
  Format.printf "|G| = %d, |S8| = %d (paper: 5040 and 40320)@." g_size h_size

(* Paper's timing experiment *)

let reproduce_timing () =
  hr "Section 5 timings (paper: Peres 9 s, Toffoli 98 s on a 850 MHz P-III)";
  let t0 = Unix.gettimeofday () in
  ignore (express library3 Reversible.Gates.g1);
  let peres = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  ignore (express library3 Reversible.Gates.toffoli3);
  let toffoli = Unix.gettimeofday () -. t0 in
  Format.printf "this machine: Peres %.3fs, Toffoli %.3fs, ratio %.1fx (paper: %.1fx)@."
    peres toffoli (toffoli /. peres) (98.0 /. 9.0)

(* Extensions *)

let reproduce_two_qubit () =
  hr "Extension X2: 2-qubit census to closure";
  let census = time "2-qubit census" (fun () -> Fmcf.run ~max_depth:6 library2) in
  List.iter
    (fun (k, n) -> if n > 0 then Format.printf "|G[%d]| = %d@." k n)
    (Fmcf.counts census);
  Format.printf "total: %d of %d zero-fixing functions@." (Fmcf.total_found census) 6

let reproduce_fredkin () =
  hr "Extension: Fredkin's exact cost (not in the paper)";
  match time "Fredkin MCE" (fun () -> express library3 Reversible.Gates.fredkin3) with
  | Some r ->
      Format.printf "Fredkin: cost %d, cascade %a, verified %b@." r.Mce.cost Cascade.pp
        r.Mce.cascade
        (Verify.result_valid library3 r)
  | None -> Format.printf "Fredkin: not found within cb@."

let reproduce_weighted () =
  hr "Extension: synthesis under non-uniform gate costs (NMR-style models)";
  List.iter
    (fun (name, target) ->
      List.iter
        (fun model ->
          match Weighted.express ~max_cost:10 library3 ~model target with
          | Some r ->
              Format.printf "  %-14s %-10s cost %2d  %s@." (Cost_model.name model) name
                r.Weighted.cost
                (Cascade.to_string r.Weighted.cascade)
          | None -> Format.printf "  %-14s %-10s not found@." (Cost_model.name model) name)
        [ Cost_model.unit; Cost_model.v_cheap; Cost_model.feynman_cheap ])
    [ ("peres", Reversible.Gates.g1); ("toffoli", Reversible.Gates.toffoli3) ]

let reproduce_ablation () =
  hr "Ablation: census without the reasonable-product constraint (Definition 1)";
  let constrained = Fmcf.run ~max_depth:4 library3 in
  let unconstrained = Fmcf.run ~max_depth:4 (Library.unconstrained library3) in
  Format.printf "constrained |G[k]|  :";
  List.iter (fun (_, n) -> Format.printf " %4d" n) (Fmcf.counts constrained);
  Format.printf "@.unconstrained |G[k]|:";
  List.iter (fun (_, n) -> Format.printf " %4d" n) (Fmcf.counts unconstrained);
  Format.printf "@.";
  let unsound =
    List.concat_map
      (fun level ->
        List.filter
          (fun (m : Fmcf.member) ->
            not
              (Verify.cascade_implements ~qubits:3
                 (Fmcf.cascade_of_member unconstrained m)
                 m.Fmcf.func))
          level.Fmcf.members)
      (Fmcf.levels unconstrained)
  in
  Format.printf
    "unsound members within depth 4: %d (their multiple-valued permutations are not \
     implemented by their cascades' unitaries) — the constraint is load-bearing@."
    (List.length unsound)

let reproduce_rewrite () =
  hr "Extension: peephole rewriting";
  let bloated = Cascade.of_string ~qubits:3 "VBA*FCA*V+BA*FCB*FCB*VCA*VCA" in
  let slim = Rewrite.normalize bloated in
  Format.printf "%s (%d gates) -> %s (%d gates), unitary preserved: %b@."
    (Cascade.to_string bloated) (Cascade.cost bloated) (Cascade.to_string slim)
    (Cascade.cost slim)
    (Rewrite.equivalent_unitary ~qubits:3 bloated slim)

let reproduce_classical_libraries () =
  hr "Conclusion claim: Peres libraries beat Toffoli libraries";
  List.iter
    (fun library ->
      let result =
        time
          ("census " ^ library.Reversible.Classical_synth.label)
          (fun () -> Reversible.Classical_synth.census ~bits:3 library)
      in
      Format.printf "%a@." Reversible.Classical_synth.pp_result result)
    [
      Reversible.Classical_synth.ncp_linear;
      Reversible.Classical_synth.ncp_toffoli;
      Reversible.Classical_synth.ncp_peres;
    ];
  (* the paper's own formula notation for the Peres gate *)
  Format.printf "ANF of Peres (paper: P = A, Q = B xor A, R = C xor AB): %s@."
    (Reversible.Anf.describe Reversible.Gates.g1)

let reproduce_composer census =
  hr "Extension: optimal synthesis of all 5040 functions by composition";
  let t0 = Unix.gettimeofday () in
  let express = Spectrum.composer census in
  let group =
    Universality.closure_of (Reversible.Gates.g1 :: Universality.cnots ~bits:3)
  in
  let histogram = Hashtbl.create 16 in
  Permgroup.Closure.iter
    (fun p ->
      match express (Reversible.Revfun.of_perm ~bits:3 p) with
      | Some r ->
          Hashtbl.replace histogram r.Mce.cost
            (1 + Option.value ~default:0 (Hashtbl.find_opt histogram r.Mce.cost))
      | None -> ())
    group;
  Format.printf "constructed costs (%.1fs):" (Unix.gettimeofday () -. t0);
  Hashtbl.fold (fun c n acc -> (c, n) :: acc) histogram []
  |> List.sort compare
  |> List.iter (fun (c, n) -> Format.printf " %d:%d" c n);
  Format.printf
    "@.matches the exact spectrum (X1) on every function: the depth-7 census plus \
     witness composition is an optimal synthesizer; worst case 13, nothing at 11.@."

let reproduce_behavior () =
  hr "Section 6 program: synthesis from behaviour examples";
  let spec =
    Automata.Behavior.of_strings library3
      [ "000"; "001"; "010"; "011"; "1??"; "***"; "***"; "***" ]
  in
  match Automata.Behavior.synthesize library3 spec with
  | Some circuit ->
      Format.printf
        "observer spec 'input 4 measures 1,coin,coin' -> cheapest circuit %a (cost %d)@."
        Cascade.pp
        (Automata.Prob_circuit.cascade circuit)
        (Cascade.cost (Automata.Prob_circuit.cascade circuit))
  | None -> Format.printf "behavioural spec unrealizable (unexpected)@."

let reproduce_qrng () =
  hr "Section 4: probabilistic circuits (QRNG substitute)";
  let coin = Automata.Prob_circuit.controlled_coin library3 in
  let dist = Automata.Prob_circuit.output_distribution coin ~input:4 in
  Format.printf "controlled coin, armed: P(C=0) = %a, P(C=1) = %a (exact)@." Qsim.Prob.pp
    dist.(4) Qsim.Prob.pp dist.(5);
  let machine =
    Automata.Qfsm.make
      ~circuit:
        (Automata.Prob_circuit.of_cascade library3
           (Cascade.of_string ~qubits:3 "VCA*VAB"))
      ~state_wires:[ 0 ] ~input_wires:[ 1 ] ~obs_wires:[ 2 ]
  in
  let hmm = Automata.Hmm.of_machine machine ~input:1 in
  let init = [| Qsim.Prob.half; Qsim.Prob.half |] in
  Format.printf "HMM forward P(obs = 101) = %a (exact dyadic)@." Qsim.Prob.pp
    (Automata.Hmm.forward hmm ~init ~observations:[ 1; 0; 1 ])

(* Parallel census: the BENCH_2 experiment.  Times the depth-7 census at
   jobs = 1, 2 and 4 and records the words allocated per run (the arena
   engine's allocation win over the boxed-node engine shows up here: the
   jobs=1 census allocates a few tens of Mwords where the string-keyed
   Hashtbl engine allocated one box and one key per state and probe).
   Every census row is identical across jobs — Search determinism. *)
let reproduce_parallel_census () =
  hr "Parallel census: depth 7 at jobs = 1, 2, 4";
  let reference = ref None in
  let g_jobs_eff = Telemetry.Gauge.create "search.jobs.effective" in
  List.map
    (fun jobs ->
      let g0 = Gc.quick_stat () in
      let t0 = Unix.gettimeofday () in
      (* The effective-jobs gauge is written by the engine per step;
         telemetry is scoped to this run so the gauge reflects the final
         (largest-frontier) level of exactly this census. *)
      Telemetry.set_enabled true;
      let census = Fmcf.run ~max_depth:7 ~jobs library3 in
      let effective = int_of_float (Telemetry.Gauge.value g_jobs_eff) in
      Telemetry.set_enabled false;
      let dt = Unix.gettimeofday () -. t0 in
      let g1 = Gc.quick_stat () in
      let words g = g.Gc.minor_words +. g.Gc.major_words -. g.Gc.promoted_words in
      let allocated = words g1 -. words g0 in
      let states = Search.size (Fmcf.search census) in
      let arena = Search.arena_bytes (Fmcf.search census) in
      let counts = Fmcf.counts census in
      (match !reference with
      | None -> reference := Some counts
      | Some expected ->
          if counts <> expected then
            failwith (Printf.sprintf "census diverged at jobs=%d" jobs));
      (* The BENCH_3 regression guard: adaptation must be live on every
         row.  Depth 7's deepest frontier is far above the per-rank
         chunk threshold, so the effective count must equal the request
         capped by the machine's recommended domain count — an
         oversubscribed rank count here is exactly the jobs=4 skew
         BENCH_3 recorded. *)
      let expected_eff = min jobs (Domain.recommended_domain_count ()) in
      if effective <> expected_eff then
        failwith
          (Printf.sprintf
             "effective-jobs adaptation inactive at jobs=%d: engine ran %d \
              ranks, expected %d"
             jobs effective expected_eff);
      timings := (Printf.sprintf "census-depth7/jobs=%d" jobs, dt) :: !timings;
      Format.printf
        "jobs=%d (effective %d): %7.3fs, %d states, %6.1f Mwords allocated, \
         %.1f MB arena@."
        jobs effective dt states (allocated /. 1e6)
        (float_of_int arena /. 1e6);
      (jobs, effective, dt, allocated, states, arena))
    [ 1; 2; 4 ]

(* Checkpoint durability overhead: the BENCH_3 experiment.  Times the
   depth-7 census with a snapshot written at every level boundary
   (--checkpoint-every 1: seven saves, the largest covering all ~660k
   states) against the plain census.  Snapshots store ~11 bytes of
   metadata per state (keys are replayed from the gate log on load) and
   are written by a background domain overlapping the next level's
   expansion, so the target is < 5% overhead.  The arms are interleaved
   (plain, checkpointed, plain, …) and each takes its best of 3, so both
   see the same heap history and machine drift. *)
let reproduce_checkpoint_overhead () =
  hr "Checkpoint overhead: depth-7 census at --checkpoint-every 1 vs none";
  let path = Filename.temp_file "qsynth_bench_ckpt" ".bin" in
  let timed f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let run_plain () = ignore (Fmcf.run ~max_depth:7 library3) in
  let bytes = ref 0 in
  let run_checkpointed () =
    let census, reason =
      Fmcf.run_guarded ~max_depth:7
        ~on_level:(fun search ~cost:_ -> Checkpoint.save_async search path)
        library3
    in
    Checkpoint.drain ();
    if reason <> Fmcf.Completed then failwith "guarded census stopped early";
    bytes := (Unix.stat path).Unix.st_size;
    ignore (Fmcf.counts census)
  in
  let plain = ref infinity and checkpointed = ref infinity in
  for _ = 1 to 3 do
    let p = timed run_plain in
    if p < !plain then plain := p;
    let c = timed run_checkpointed in
    if c < !checkpointed then checkpointed := c
  done;
  let plain = !plain and checkpointed = !checkpointed in
  Sys.remove path;
  let overhead = (checkpointed -. plain) /. plain in
  timings := ("checkpoint-depth7/every=1", checkpointed) :: !timings;
  timings := ("checkpoint-depth7/none", plain) :: !timings;
  Format.printf
    "plain: %7.3fs   checkpointed: %7.3fs   overhead: %+5.1f%%   snapshot: %.1f MB@."
    plain checkpointed (100. *. overhead)
    (float_of_int !bytes /. 1e6);
  (plain, checkpointed, overhead, !bytes)

(* Symmetry-quotiented census: the BENCH_7 experiment.  Runs the depth-7
   and depth-8 censuses raw and under --quotient behind the same 1 GiB
   arena guard, checks the function tables agree wherever both modes
   completed, and enforces the quotient's contract against the BENCH_2
   trajectory: the depth-7 quotient arena must hold at most 1/20 of the
   raw state count and beat the BENCH_2 jobs=1 baseline (0.82 s) by at
   least 5x.  Stop reasons are recorded as measured — a raw depth-8 that
   trips the guard is reported as the partial run it is, not hidden. *)
let bench2_baseline_seconds = 0.82
let quotient_mem_guard = 1 lsl 30

let reproduce_quotient_census () =
  hr "Symmetry quotient: census raw vs --quotient at depths 7 and 8";
  let row ~depth ~quotient =
    let t0 = Unix.gettimeofday () in
    let census, reason =
      Fmcf.run_guarded ~max_depth:depth ~quotient ~max_mem:quotient_mem_guard
        library3
    in
    let dt = Unix.gettimeofday () -. t0 in
    let states = Search.size (Fmcf.search census) in
    let arena = Search.arena_bytes (Fmcf.search census) in
    let mode = if quotient then "quotient" else "raw" in
    timings := (Printf.sprintf "census-depth%d/%s" depth mode, dt) :: !timings;
    Format.printf "depth %d %-8s: %7.3fs, %8d states, %6.1f MB arena, %s@." depth
      mode dt states
      (float_of_int arena /. 1e6)
      (Fmcf.describe_stop reason);
    (depth, quotient, dt, states, arena, census, reason)
  in
  let rows =
    [
      row ~depth:7 ~quotient:false;
      row ~depth:7 ~quotient:true;
      row ~depth:8 ~quotient:false;
      row ~depth:8 ~quotient:true;
    ]
  in
  let census_of (_, _, _, _, _, c, _) = c in
  let raw7 = List.nth rows 0 and q7 = List.nth rows 1 in
  let (_, _, raw7_dt, raw7_states, _, _, raw7_reason) = raw7 in
  let (_, _, q7_dt, q7_states, _, _, q7_reason) = q7 in
  if raw7_reason <> Fmcf.Completed || q7_reason <> Fmcf.Completed then
    failwith "depth-7 census did not complete under the arena guard";
  if Fmcf.counts (census_of raw7) <> Fmcf.counts (census_of q7) then
    failwith "quotient census diverged from raw at depth 7";
  if q7_states * 20 > raw7_states then
    failwith
      (Printf.sprintf
         "quotient arena too large: %d states vs %d raw (need <= 1/20)" q7_states
         raw7_states);
  if q7_dt > bench2_baseline_seconds /. 5. then
    failwith
      (Printf.sprintf
         "quotient depth-7 census took %.3fs, need <= %.3fs (5x the BENCH_2 \
          jobs=1 baseline)"
         q7_dt
         (bench2_baseline_seconds /. 5.));
  let (_, _, _, _, _, _, q8_reason) = List.nth rows 3 in
  if q8_reason <> Fmcf.Completed then
    failwith "quotient depth-8 census did not complete under the arena guard";
  Format.printf
    "depth-7 reduction: %.1fx states, %.1fx time vs raw (%.0fx vs the BENCH_2 \
     baseline)@."
    (float_of_int raw7_states /. float_of_int (max 1 q7_states))
    (raw7_dt /. q7_dt)
    (bench2_baseline_seconds /. q7_dt);
  List.map (fun (d, q, dt, s, a, _, r) -> (d, q, dt, s, a, r)) rows

(* Distributed census: the BENCH_8 experiment.  The coordinator/worker
   engine (lib/synthesis/distrib.ml) runs real worker processes and
   pays wire framing, transport CRCs and full delta validation on every
   item, so the interesting questions are (a) what that robustness tax
   costs next to the in-process BFS and (b) whether recovery stays cheap
   when workers actually fail.  Depth-7 arms: single-process baseline,
   1 and 2 workers (interleaved, best of 3), plus a faulted 2-worker
   arm where each worker corrupts its first delta (rejected and
   retried by validation) and crashes on its second item (reassignment,
   then degradation to coordinator-only).  Depth-8 arms run single vs
   2-worker behind the same 1 GiB arena guard the quotient experiment
   uses.  Every distributed row must reproduce the baseline's function
   table exactly — determinism is the engine's contract, faults or not.

   Workers are spawned by exec'ing the real [qsynth census-worker]
   binary (Spawn_cmd), exactly like [census --workers N] in production.
   Distrib.Fork would be cheaper but cannot be used here: earlier
   experiments in this harness spawn domains, and OCaml 5's Unix.fork
   permanently refuses once any other domain has ever been created —
   the endpoints would silently degrade to a coordinator-only run and
   the "distributed" rows would measure inline expansion.  For the same
   reason every arm asserts [workers_connected]: a row is only a
   measurement of the distributed engine if its workers actually
   handshook.  Faults are armed in the workers via QSYNTH_FAULT in the
   spawned command's environment (an exec'd child does not inherit
   Faultsim.configure state); the coordinator itself stays unarmed.

   The wall-clock gate: a clean 2-worker depth-7 run must be within
   [distrib_max_ratio] of single-process.  The gate only binds where
   workers can run in parallel with the coordinator — on a single-core
   host the whole pipeline serializes onto one CPU and the framing tax
   has nothing to hide behind, so the ratio is recorded as measured and
   the row reports the gate as skipped. *)
let distrib_fault_spec = "worker_crash:2,delta_corrupt:1"
let distrib_max_ratio = 1.25

let qsynth_bin () =
  let path =
    Filename.concat (Filename.dirname Sys.executable_name) "../bin/qsynth.exe"
  in
  if not (Sys.file_exists path) then
    failwith
      (Printf.sprintf
         "distributed census bench needs the qsynth binary at %s — run `dune \
          build` first"
         path);
  path

let reproduce_distributed_census () =
  hr "Distributed census: spawned workers vs in-process BFS";
  let parallel_capable = Domain.recommended_domain_count () >= 2 in
  let bin = qsynth_bin () in
  let worker_cmd ?faults () =
    match faults with
    | None -> Printf.sprintf "exec %s census-worker" bin
    | Some spec -> Printf.sprintf "QSYNTH_FAULT=%s exec %s census-worker" spec bin
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let single depth =
    timed (fun () ->
        Fmcf.run_guarded ~max_depth:depth ~max_mem:quotient_mem_guard library3)
  in
  let distributed ?faults ~workers depth =
    let cmd = worker_cmd ?faults () in
    let dt, ((_, _, stats) as r) =
      timed (fun () ->
          Distrib.census ~max_depth:depth ~max_mem:quotient_mem_guard
            ~workers:(List.init workers (fun _ -> Distrib.Spawn_cmd cmd))
            library3)
    in
    if stats.Distrib.workers_connected <> workers then
      failwith
        (Printf.sprintf
           "only %d of %d workers handshook — the row would measure inline \
            degradation, not the distributed engine"
           stats.Distrib.workers_connected workers);
    (dt, r)
  in
  (* label, depth, workers, faulted, seconds, states, reason, stats *)
  let rows = ref [] in
  let print_row label dt states reason =
    Format.printf "%-24s %7.3fs, %8d states, %s@." label dt states
      (Fmcf.describe_stop reason)
  in
  let record ~label ~depth ~workers ~faulted dt census reason stats =
    let states = Search.size (Fmcf.search census) in
    timings := (Printf.sprintf "distrib/%s" label, dt) :: !timings;
    print_row label dt states reason;
    rows := (label, depth, workers, faulted, dt, states, reason, stats) :: !rows
  in
  (* Depth 7: interleaved best-of-3 over the three clean arms. *)
  let best = Array.make 3 (infinity, None) in
  for _ = 1 to 3 do
    List.iteri
      (fun i run ->
        let dt, r = run () in
        if dt < fst best.(i) then best.(i) <- (dt, Some r))
      [
        (fun () ->
          let dt, (c, reason) = single 7 in
          (dt, (c, reason, None)));
        (fun () ->
          let dt, (c, reason, s) = distributed ~workers:1 7 in
          (dt, (c, reason, Some s)));
        (fun () ->
          let dt, (c, reason, s) = distributed ~workers:2 7 in
          (dt, (c, reason, Some s)));
      ]
  done;
  let arm i =
    match best.(i) with dt, Some r -> (dt, r) | _, None -> assert false
  in
  let base_dt, (base_census, base_reason, _) = arm 0 in
  record ~label:"census-d7/single" ~depth:7 ~workers:0 ~faulted:false base_dt
    base_census base_reason None;
  if base_reason <> Fmcf.Completed then
    failwith "single-process depth-7 census did not complete";
  let baseline_counts = Fmcf.counts base_census in
  let check_identity label census reason =
    if reason <> base_reason then
      failwith (Printf.sprintf "%s: stop reason diverged from baseline" label);
    if Fmcf.counts census <> baseline_counts then
      failwith (Printf.sprintf "%s: diverged from the single-process census" label)
  in
  List.iter
    (fun (i, workers) ->
      let dt, (census, reason, stats) = arm i in
      let label = Printf.sprintf "census-d7/workers=%d" workers in
      check_identity label census reason;
      (match stats with
      | Some s when s.Distrib.worker_deaths > 0 || s.Distrib.rejected_deltas > 0 ->
          failwith (label ^ ": clean arm saw deaths or rejected deltas")
      | _ -> ());
      record ~label ~depth:7 ~workers ~faulted:false dt census reason stats)
    [ (1, 1); (2, 2) ];
  let ratio_2w = fst (arm 2) /. base_dt in
  if parallel_capable && ratio_2w > distrib_max_ratio then
    failwith
      (Printf.sprintf
         "clean 2-worker census is %.2fx single-process, need <= %.2fx" ratio_2w
         distrib_max_ratio);
  Format.printf "clean 2-worker ratio: %.2fx (gate %s at %.2fx)@." ratio_2w
    (if parallel_capable then "enforced" else "skipped: single-core host")
    distrib_max_ratio;
  (* Depth 7 under injected faults: one rep — recovery time is the point.
     The spec rides into each worker via QSYNTH_FAULT in its command. *)
  let dt, (census, reason, stats) =
    distributed ~faults:distrib_fault_spec ~workers:2 7
  in
  check_identity "census-d7/faulted" census reason;
  if stats.Distrib.rejected_deltas = 0 || stats.Distrib.worker_deaths = 0 then
    failwith "faulted arm: injected faults did not fire";
  Format.printf
    "faulted arm recovery: %d retries, %d reassignments, %d rejected deltas, \
     %d worker deaths@."
    stats.Distrib.retries stats.Distrib.reassignments
    stats.Distrib.rejected_deltas stats.Distrib.worker_deaths;
  record ~label:"census-d7/workers=2+faults" ~depth:7 ~workers:2 ~faulted:true
    dt census reason (Some stats);
  (* Depth 8 behind the arena guard, single rep per arm. *)
  let dt8, (census8, reason8) = single 8 in
  record ~label:"census-d8/single" ~depth:8 ~workers:0 ~faulted:false dt8
    census8 reason8 None;
  let dt, (census, reason, stats) = distributed ~workers:2 8 in
  if Fmcf.counts census <> Fmcf.counts census8 || reason <> reason8 then
    failwith "census-d8/workers=2: diverged from the single-process census";
  record ~label:"census-d8/workers=2" ~depth:8 ~workers:2 ~faulted:false dt
    census reason (Some stats);
  (parallel_capable, ratio_2w, List.rev !rows)

(* Query latency: the BENCH_4 experiment.  One synthesis question, three
   plans: the forward BFS of the paper, a binary search over the
   persistent census index (round-tripped through the QSYNIDX1 file so
   the timed path is what a CLI user loads, validation included in the
   load but not the lookup), and the meet-in-the-middle engine over a
   warm shared context (the realistic shape for the second and later
   queries of a session; the first query pays the forward wave).  Each
   row takes the best of several runs.  The cost-8 row has no forward or
   indexed column: that function is beyond the depth-7 horizon of both,
   which is the point of the bidirectional plan. *)
let reproduce_query_latency census =
  hr "Query latency: forward BFS vs census index vs meet-in-the-middle";
  let path = Filename.temp_file "qsynth_bench_idx" ".bin" in
  Census_index.save (Census_index.build census) path;
  let index = Census_index.load library3 path in
  Sys.remove path;
  let bidir = Bidir.create library3 in
  (* best of [n] samples, each sample timing [reps] back-to-back calls
     and reporting the per-call mean — indexed lookups run in well under
     a microsecond, below a single gettimeofday tick *)
  let best ?(reps = 1) n f =
    let best_t = ref infinity and result = ref None in
    for _ = 1 to n do
      let t0 = Unix.gettimeofday () in
      for _ = 2 to reps do
        ignore (f ())
      done;
      let r = f () in
      let dt = (Unix.gettimeofday () -. t0) /. float_of_int reps in
      if dt < !best_t then best_t := dt;
      result := Some r
    done;
    (!best_t, Option.get !result)
  in
  let cost_of = function
    | Some r -> r.Mce.cost
    | None -> failwith "query-latency: target not synthesized"
  in
  let cost8 = Reversible.Spec.parse ~bits:3 "0,1,2,3,4,7,5,6" in
  let rows =
    List.map
      (fun (name, target) ->
        let forward, r = best 3 (fun () -> express library3 target) in
        let indexed, r' =
          best ~reps:1000 3 (fun () -> express ~index library3 target)
        in
        let bidir_t, r'' = best 10 (fun () -> express ~bidir library3 target) in
        let cost = cost_of r in
        if cost_of r' <> cost || cost_of r'' <> cost then
          failwith (name ^ ": plans disagree on the minimal cost");
        timings := (Printf.sprintf "query/%s/forward" name, forward) :: !timings;
        timings := (Printf.sprintf "query/%s/indexed" name, indexed) :: !timings;
        timings := (Printf.sprintf "query/%s/bidir" name, bidir_t) :: !timings;
        Format.printf
          "%-10s cost %d: forward %10.3f ms   indexed %10.4f ms (%.0fx)   bidir \
           %10.3f ms (%.0fx)@."
          name cost (1e3 *. forward) (1e3 *. indexed) (forward /. indexed)
          (1e3 *. bidir_t) (forward /. bidir_t);
        (name, cost, Some forward, Some indexed, bidir_t))
      [
        ("peres", Reversible.Gates.g1);
        ("toffoli", Reversible.Gates.toffoli3);
        ("fredkin", Reversible.Gates.fredkin3);
      ]
  in
  let bidir_t, r8 =
    best 3 (fun () -> express ~max_depth:14 ~index ~bidir library3 cost8)
  in
  let cost8_cost = cost_of r8 in
  timings := ("query/cost8/bidir", bidir_t) :: !timings;
  Format.printf
    "%-10s cost %d: forward        — (beyond cb)              — \
     bidir %8.3f ms@."
    "cost8" cost8_cost (1e3 *. bidir_t);
  rows @ [ ("cost8", cost8_cost, None, None, bidir_t) ]

(* Complete index: the BENCH_9 experiment.  The query-latency rows above
   stop indexing at the census horizon; here the whole zero-fixing
   universe (5040 functions, all 40320 members of S8 through the
   Theorem-2 NOT cosets) is precomputed, so a cost-8 query — beyond any
   forward horizon — becomes the same O(log n) in-place probe as a
   cost-2 one.  Measured: the offline build (raw census reused vs a
   fresh symmetry-quotiented census, both swept with 4 domains), the
   file size, the cold-start load (heap copy vs mmap, both with the
   default sampled verification a daemon start pays), and the p50/p99
   of cost-8 answers from the complete index against a warm
   meet-in-the-middle engine — with a hard >= 100x p99 gate, since
   replacing the join by a probe is the point of the artifact. *)
let complete_index_p99_gate = 100.

let reproduce_complete_index census =
  hr "Complete index: total-coverage build, mmap cold start, O(1) probes";
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let best ?(reps = 1) n f =
    let best_t = ref infinity and result = ref None in
    for _ = 1 to n do
      let t0 = Unix.gettimeofday () in
      for _ = 2 to reps do
        ignore (f ())
      done;
      let r = f () in
      let dt = (Unix.gettimeofday () -. t0) /. float_of_int reps in
      if dt < !best_t then best_t := dt;
      result := Some r
    done;
    (!best_t, Option.get !result)
  in
  let percentile samples p =
    let a = Array.of_list samples in
    Array.sort compare a;
    let n = Array.length a in
    a.(max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)))
  in
  let sweep c =
    match Census_index.build_complete ~jobs:4 c with
    | Some r -> r
    | None -> failwith "complete-index: sweep cancelled"
  in
  (* build: the raw arm reuses the harness's canonical depth-7 census
     (its wall-clock is the table2 experiment above) and times the sweep;
     the quotient arm pays its own census so the row is self-contained *)
  let raw_sweep_t, (complete, swept) = timed (fun () -> sweep census) in
  timings := ("complete_index/sweep_raw", raw_sweep_t) :: !timings;
  Format.printf "raw build:      sweep %8.3fs  (%d functions beyond the census)@."
    raw_sweep_t swept;
  let q_census_t, census_q =
    timed (fun () -> Fmcf.run ~max_depth:7 ~jobs:4 ~quotient:true library3)
  in
  let q_sweep_t, (complete_q, _) = timed (fun () -> sweep census_q) in
  timings := ("complete_index/build_quotient", q_census_t +. q_sweep_t) :: !timings;
  Format.printf "quotient build: census %7.3fs + sweep %8.3fs@." q_census_t
    q_sweep_t;
  if Census_index.histogram complete <> Census_index.histogram complete_q then
    failwith "complete-index: raw and quotient builds disagree on the spectrum";
  let build_rows =
    [ (false, None, raw_sweep_t); (true, Some q_census_t, q_sweep_t) ]
  in
  (* cold start: what a daemon pays before /readyz, sampled verify *)
  let path = Filename.temp_file "qsynth_bench_cidx" ".bin" in
  Census_index.save complete path;
  let file_bytes = (Unix.stat path).Unix.st_size in
  let heap_t, _ = best 5 (fun () -> Census_index.load library3 path) in
  let mmap_t, index = best 5 (fun () -> Census_index.load_mmap library3 path) in
  Sys.remove path;
  timings := ("complete_index/load_heap", heap_t) :: !timings;
  timings := ("complete_index/load_mmap", mmap_t) :: !timings;
  Format.printf
    "cold start:     heap %9.4f ms   mmap %9.4f ms (%.1fx)   file %d bytes@."
    (1e3 *. heap_t) (1e3 *. mmap_t) (heap_t /. mmap_t) file_bytes;
  (* p50/p99 over distinct cost-8 functions: the complete index answers
     each with a probe; the warm engine pays a genuine bidirectional
     join per function (this is the daemon's only alternative — cost 8
     is beyond every forward horizon in this harness) *)
  let cost8_targets =
    let acc = ref [] and n = ref 0 in
    let perm = Array.init 7 (fun i -> i + 1) in
    let next () =
      let swap i j =
        let t = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- t
      in
      let i = ref 5 in
      while !i >= 0 && perm.(!i) >= perm.(!i + 1) do
        decr i
      done;
      if !i < 0 then false
      else begin
        let j = ref 6 in
        while perm.(!j) <= perm.(!i) do
          decr j
        done;
        swap !i !j;
        let l = ref (!i + 1) and r = ref 6 in
        while !l < !r do
          swap !l !r;
          incr l;
          decr r
        done;
        true
      end
    in
    let continue = ref true in
    while !continue && !n < 48 do
      let func = Reversible.Revfun.of_outputs ~bits:3 (0 :: Array.to_list perm) in
      (match Census_index.find index func with
      | Some (8, _) ->
          acc := func :: !acc;
          incr n
      | _ -> ());
      continue := next ()
    done;
    List.rev !acc
  in
  let samples = List.length cost8_targets in
  let probe_cost target =
    match express ~index ~max_depth:13 library3 target with
    | Some r -> r.Mce.cost
    | None -> failwith "complete-index: probe missed a universe member"
  in
  let index_samples =
    List.map
      (fun target ->
        let dt, cost = best ~reps:500 3 (fun () -> probe_cost target) in
        if cost <> 8 then failwith "complete-index: probe cost is not 8";
        dt)
      cost8_targets
  in
  let bidir = Bidir.create library3 in
  (* the first join grows the forward wave; pay it before sampling *)
  ignore (express ~bidir ~max_depth:13 library3 (List.hd cost8_targets));
  let bidir_samples =
    List.map
      (fun target ->
        let dt, r = timed (fun () -> express ~bidir ~max_depth:13 library3 target) in
        (match r with
        | Some { Mce.cost = 8; _ } -> ()
        | _ -> failwith "complete-index: warm engine disagrees on cost 8");
        dt)
      cost8_targets
  in
  let ip50 = percentile index_samples 0.50
  and ip99 = percentile index_samples 0.99
  and bp50 = percentile bidir_samples 0.50
  and bp99 = percentile bidir_samples 0.99 in
  timings := ("complete_index/cost8_index_p99", ip99) :: !timings;
  timings := ("complete_index/cost8_bidir_p99", bp99) :: !timings;
  Format.printf
    "cost-8 x%d:     index p50 %9.4f ms  p99 %9.4f ms   warm bidir p50 %9.3f ms  \
     p99 %9.3f ms   p99 speedup %7.0fx@."
    samples (1e3 *. ip50) (1e3 *. ip99) (1e3 *. bp50) (1e3 *. bp99)
    (bp99 /. ip99);
  if bp99 < complete_index_p99_gate *. ip99 then
    failwith
      (Printf.sprintf
         "complete-index: p99 gate failed — probe %.6fs vs warm bidir %.6fs \
          (< %.0fx)"
         ip99 bp99 complete_index_p99_gate);
  (build_rows, swept, file_bytes, heap_t, mmap_t,
   (samples, ip50, ip99, bp50, bp99))

(* Server latency: the BENCH_5 experiment.  What does a client actually
   wait for?  The warm arm is the daemon's situation: one Service
   created once (census index loaded, bidir forward wave grown to the
   warm depth), every query answered against read-only engine state.
   The cold arm is the one-shot CLI's situation: each query pays
   Census_index.load plus Service.create (including the warm-up) before
   it can answer.  The response cache is disabled in both arms so every
   sample measures the engine, not the LRU; the cost-7 row spreads its
   samples over distinct census members so no two samples share a key.
   The cost8 row goes through a real meet-in-the-middle join (beyond
   the index horizon) in both arms. *)
let reproduce_server_latency census =
  hr "Server latency: warm service vs one-shot cold (per uncached query)";
  let warm_depth = 4 in
  let index_path = Filename.temp_file "qsynth_bench_srv_idx" ".bin" in
  Census_index.save (Census_index.build census) index_path;
  let make_service () =
    let index = Census_index.load library3 index_path in
    Server.Service.create ~index ~warm_depth ~cache_capacity:0 library3
  in
  let percentile samples p =
    let a = Array.of_list samples in
    Array.sort compare a;
    let n = Array.length a in
    a.(max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)))
  in
  let cost7_members =
    let acc = ref [] in
    Fmcf.iter_members census (fun ~cost m ->
        if cost = 7 && List.length !acc < 100 then acc := m.Fmcf.func :: !acc);
    List.rev !acc
  in
  let rows =
    [
      ("toffoli", [ request Reversible.Gates.toffoli3 ], 30, 5);
      ("fredkin", [ request Reversible.Gates.fredkin3 ], 30, 5);
      ( "cost8",
        [ request ~max_depth:8 (Reversible.Spec.parse ~bits:3 "0,1,2,3,4,7,5,6") ],
        5, 3 );
      ("cost7-members", List.map request cost7_members, 100, 5);
    ]
  in
  let warm_service = time "warm service create" make_service in
  List.map
    (fun (name, requests, warm_samples, cold_samples) ->
      let k = List.length requests in
      let nth i = List.nth requests (i mod k) in
      let sample_one svc req =
        let t0 = Unix.gettimeofday () in
        (match (Server.Service.answer svc req).Mce.Response.body with
        | Ok _ -> ()
        | Error e ->
            failwith
              (Printf.sprintf "server-latency %s: %s" name
                 (Mce.Response.to_string
                    { Mce.Response.id = None; trace = None; qubits = 3; body = Error e })));
        Unix.gettimeofday () -. t0
      in
      let warm =
        List.init warm_samples (fun i -> sample_one warm_service (nth i))
      in
      let cold =
        List.init cold_samples (fun i ->
            let t0 = Unix.gettimeofday () in
            let svc = make_service () in
            let dt_query = sample_one svc (nth i) in
            ignore dt_query;
            Unix.gettimeofday () -. t0)
      in
      let wp50 = percentile warm 0.50 and wp99 = percentile warm 0.99 in
      let cp50 = percentile cold 0.50 and cp99 = percentile cold 0.99 in
      timings := (Printf.sprintf "server/%s/warm_p99" name, wp99) :: !timings;
      timings := (Printf.sprintf "server/%s/cold_p99" name, cp99) :: !timings;
      Format.printf
        "%-14s warm p50 %9.4f ms  p99 %9.4f ms   cold p50 %9.1f ms  p99 %9.1f ms   \
         p99 speedup %7.0fx@."
        name (1e3 *. wp50) (1e3 *. wp99) (1e3 *. cp50) (1e3 *. cp99)
        (cp99 /. wp99);
      (name, warm_samples, wp50, wp99, cold_samples, cp50, cp99))
    rows
  |> fun server_rows ->
  Sys.remove index_path;
  (warm_depth, server_rows)

(* Server load: the BENCH_6 experiment.  The latency rows above measure
   one client politely taking turns; this one offers an open-loop
   Poisson stream (arrivals never wait for answers) against a live
   in-process daemon, so queueing, response caching, coalescing and
   backpressure all participate.  Two offered rates: one the daemon
   absorbs comfortably, one hot enough that the bounded queue's
   Overloaded rejections can show up in the row. *)
let load_workers = 2
let load_queue_capacity = 64
let load_connections = 4
let load_rates = [ 500.; 2000. ]

let reproduce_server_load census =
  hr "Server load: open-loop Poisson arrivals against a live daemon";
  let index_path = Filename.temp_file "qsynth_bench_load_idx" ".bin" in
  Census_index.save (Census_index.build census) index_path;
  let index = Census_index.load library3 index_path in
  let service =
    Server.Service.create ~index ~warm_depth:4 ~cache_capacity:256 library3
  in
  let socket = Filename.temp_file "qsynth_bench_load" ".sock" in
  Sys.remove socket;
  let daemon =
    Server.Daemon.start ~workers:load_workers
      ~queue_capacity:load_queue_capacity ~socket service
  in
  let mix =
    [
      request Reversible.Gates.toffoli3;
      request Reversible.Gates.fredkin3;
      request Reversible.Gates.g1;
      request (Reversible.Spec.parse ~bits:3 "0,1,2,3,4,5,7,6");
    ]
  in
  let rows =
    List.map
      (fun rps ->
        let r =
          Server.Loadgen.run ~connections:load_connections ~socket ~rps
            ~duration_s:3. mix
        in
        timings :=
          (Printf.sprintf "server_load/rps%.0f/p99" rps,
           r.Server.Loadgen.p99_ms /. 1e3)
          :: !timings;
        Format.printf
          "%7.0f rps offered: %6d sent  %6d ok  %4d overloaded  %4d errors   \
           p50 %8.3f ms  p99 %8.3f ms  p99.9 %8.3f ms@."
          rps r.Server.Loadgen.sent r.Server.Loadgen.ok
          r.Server.Loadgen.overloaded r.Server.Loadgen.errors
          r.Server.Loadgen.p50_ms r.Server.Loadgen.p99_ms
          r.Server.Loadgen.p999_ms;
        r)
      load_rates
  in
  Server.Daemon.stop daemon;
  Server.Daemon.wait daemon;
  Sys.remove index_path;
  rows

(* Bechamel micro-benchmarks: one per experiment *)

let bechamel_tests =
  let open Bechamel in
  let stage = Staged.stage in
  let ctrl_v = Gate.make Gate.Controlled_v ~target:1 ~control:0 in
  let vba = Library.perm_of_gate library3 (Gate.of_name ~qubits:3 "VBA") in
  let peres_cascade = Cascade.of_string ~qubits:3 "VCB*FBA*VCA*V+CB" in
  let machine =
    Automata.Qfsm.make
      ~circuit:
        (Automata.Prob_circuit.of_cascade library3
           (Cascade.of_string ~qubits:3 "VCA*VAB"))
      ~state_wires:[ 0 ] ~input_wires:[ 1 ] ~obs_wires:[ 2 ]
  in
  let hmm = Automata.Hmm.of_machine machine ~input:1 in
  let init = [| Qsim.Prob.half; Qsim.Prob.half |] in
  [
    Test.make ~name:"table1/truth-table"
      (stage (fun () ->
           Mvl.Truth_table.labeled_rows ~order:Mvl.Truth_table.table1_order
             (Gate.apply ctrl_v)));
    Test.make ~name:"table2/census-depth3"
      (stage (fun () -> Fmcf.run ~max_depth:3 library3));
    Test.make ~name:"table2/census-depth4"
      (stage (fun () -> Fmcf.run ~max_depth:4 library3));
    Test.make ~name:"fig4/peres-synthesis"
      (stage (fun () -> express library3 Reversible.Gates.g1));
    Test.make ~name:"fig5/g2-synthesis"
      (stage (fun () -> express library3 Reversible.Gates.g2));
    Test.make ~name:"fig6/g3-synthesis"
      (stage (fun () -> express library3 Reversible.Gates.g3));
    Test.make ~name:"fig7/g4-synthesis"
      (stage (fun () -> express library3 Reversible.Gates.g4));
    Test.make ~name:"fig8/adjoint-verify"
      (stage (fun () ->
           Verify.cascade_implements ~qubits:3 (Cascade.swap_v_dag peres_cascade)
             Reversible.Gates.g1));
    Test.make ~name:"fig9/toffoli-synthesis"
      (stage (fun () -> express library3 Reversible.Gates.toffoli3));
    Test.make ~name:"e1/g4-split"
      (stage (fun () -> Universality.split_g4 (Fmcf.run ~max_depth:4 library3)));
    Test.make ~name:"e2/universality-check"
      (stage (fun () -> Universality.is_universal Reversible.Gates.g1));
    Test.make ~name:"e3/group-order-5040"
      (stage (fun () ->
           Universality.group_order ~bits:3
             (Reversible.Gates.g1 :: Universality.cnots ~bits:3)));
    Test.make ~name:"x2/two-qubit-census"
      (stage (fun () -> Fmcf.run ~max_depth:6 library2));
    Test.make ~name:"x3/hmm-forward"
      (stage (fun () -> Automata.Hmm.forward hmm ~init ~observations:[ 1; 0; 1; 1 ]));
    Test.make ~name:"core/gate-perm-compose"
      (stage (fun () -> Permgroup.Perm.mul vba vba));
    Test.make ~name:"ext/weighted-toffoli-vcheap"
      (stage (fun () ->
           Weighted.express library3 ~model:Cost_model.v_cheap
             Reversible.Gates.toffoli3));
    Test.make ~name:"ext/rewrite-normalize"
      (stage
         (let bloated = Cascade.of_string ~qubits:3 "VBA*FCA*V+BA*FCB*FCB*VCA*VCA" in
          fun () -> Rewrite.normalize bloated));
    Test.make ~name:"ablation/unconstrained-census-d3"
      (stage
         (let unconstrained = Library.unconstrained library3 in
          fun () -> Fmcf.run ~max_depth:3 unconstrained));
    Test.make ~name:"ext/classical-linear-census"
      (stage (fun () ->
           Reversible.Classical_synth.census ~bits:3 Reversible.Classical_synth.ncp_linear));
    Test.make ~name:"ext/anf-describe"
      (stage (fun () -> Reversible.Anf.describe Reversible.Gates.fredkin3));
    Test.make ~name:"ext/draw-toffoli"
      (stage
         (let cascade = Cascade.of_string ~qubits:3 "FBA*V+CB*FBA*VCA*VCB" in
          fun () -> Draw.to_ascii ~qubits:3 cascade));
    Test.make ~name:"core/exact-unitary-verify"
      (stage (fun () ->
           Verify.cascade_implements ~qubits:3 peres_cascade Reversible.Gates.g1));
  ]

(* Runs the micro-benchmarks and returns [(name, ns_per_run)] rows. *)
let run_bechamel () =
  hr "Bechamel micro-benchmarks (time per run)";
  let open Bechamel in
  let open Toolkit in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"paper" ~fmt:"%s %s" bechamel_tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let pretty ns =
    if ns >= 1e9 then Printf.sprintf "%8.3f  s" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%8.3f us" (ns /. 1e3)
    else Printf.sprintf "%8.1f ns" ns
  in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let estimate =
          match Analyze.OLS.estimates ols_result with Some (e :: _) -> e | _ -> nan
        in
        (name, estimate) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter (fun (name, ns) -> Format.printf "%-32s %s@." name (pretty ns)) rows;
  rows

(* BENCH_N.json: the perf-trajectory artifact.  Every PR regenerates it so
   per-experiment wall-clock and engine counters can be compared across
   the repository's history. *)

(* Gate-library plugins: the BENCH_10 experiment.  Times the depth-5
   census of the NFT library (Younes's 18 classical gates, arXiv:1304.5804,
   counting the full S8 universe with priced NOTs) next to the paper's
   library at the same depth.  The NFT count row is the published Younes
   spectrum prefix — pinned by the test suite and the CI smoke job, so a
   regression in the plugin machinery shows up here as wrong counts, not
   just as different timings. *)
let reproduce_nft_census () =
  hr "Gate-library plugins: depth-5 NFT census vs paper18";
  let print_row label values =
    Format.printf "%-28s" label;
    List.iter (fun v -> Format.printf " %6d" v) values;
    Format.printf "@."
  in
  let run name library =
    let t0 = Unix.gettimeofday () in
    let census = Fmcf.run ~max_depth:5 library in
    let dt = Unix.gettimeofday () -. t0 in
    let counts = Fmcf.counts census in
    print_row (name ^ " |" ^ (if Library.coset_reduction library then "G" else "S8") ^ "[k]|")
      (List.map snd counts);
    Format.printf "%-28s %.3fs, %d functions@." "" dt (Fmcf.total_found census);
    (counts, dt)
  in
  let nft = run "nft" (Library.of_name "nft") in
  let paper18 = run "paper18" library3 in
  (nft, paper18)

let write_bench_json ~telemetry_snapshot ~bechamel_rows ~parallel_rows ~checkpoint_row
    ~quotient_rows ~distrib ~query_rows ~complete_index ~server_latency
    ~server_load ~nft_census path =
  let open Telemetry in
  let distrib_capable, distrib_ratio, distrib_rows = distrib in
  let distrib_row_json (label, depth, workers, faulted, dt, states, reason, stats) =
    Json.Obj
      ([
         ("label", Json.String label);
         ("depth", Json.Int depth);
         ("workers", Json.Int workers);
         ("faulted", Json.Bool faulted);
         ("seconds", Json.Float dt);
         ("states", Json.Int states);
         ("stop_reason", Json.String (Fmcf.describe_stop reason));
       ]
      @
      match stats with
      | None -> []
      | Some s ->
          [
            ("workers_connected", Json.Int s.Distrib.workers_connected);
            ("items", Json.Int s.Distrib.items);
            ("inline_items", Json.Int s.Distrib.inline_items);
            ("retries", Json.Int s.Distrib.retries);
            ("reassignments", Json.Int s.Distrib.reassignments);
            ("rejected_deltas", Json.Int s.Distrib.rejected_deltas);
            ("worker_deaths", Json.Int s.Distrib.worker_deaths);
          ])
  in
  let plain, checkpointed, overhead, snapshot_bytes = checkpoint_row in
  let server_warm_depth, server_rows = server_latency in
  let server_row_json (name, warm_samples, wp50, wp99, cold_samples, cp50, cp99) =
    Json.Obj
      [
        ("name", Json.String name);
        ("warm_samples", Json.Int warm_samples);
        ("warm_p50_seconds", Json.Float wp50);
        ("warm_p99_seconds", Json.Float wp99);
        ("cold_samples", Json.Int cold_samples);
        ("cold_p50_seconds", Json.Float cp50);
        ("cold_p99_seconds", Json.Float cp99);
        ("p99_speedup", Json.Float (cp99 /. wp99));
      ]
  in
  let query_json (name, cost, forward, indexed, bidir) =
    Json.Obj
      (("name", Json.String name)
       :: ("cost", Json.Int cost)
       :: (match forward with
          | Some s -> [ ("forward_seconds", Json.Float s) ]
          | None -> [])
      @ (match indexed with
        | Some s -> [ ("indexed_seconds", Json.Float s) ]
        | None -> [])
      @ [ ("bidir_seconds", Json.Float bidir) ])
  in
  let json =
    Json.Obj
      [
        ("schema_version", Json.Int 1);
        ("bench_id", Json.Int 10);
        ("generated_by", Json.String "bench/main.ml");
        ("unix_time", Json.Float (Unix.time ()));
        ("ocaml_version", Json.String Sys.ocaml_version);
        ("word_size", Json.Int Sys.word_size);
        ( "experiments",
          Json.List
            (List.rev_map
               (fun (name, seconds) ->
                 Json.Obj
                   [ ("name", Json.String name); ("seconds", Json.Float seconds) ])
               !timings) );
        ( "bechamel_ns_per_run",
          Json.Obj (List.map (fun (name, ns) -> (name, Json.Float ns)) bechamel_rows) );
        ( "nft_census",
          (* depth-5 library-plugin row: Younes's NFT universe next to the
             paper's library under identical search settings *)
          let row ((counts : (int * int) list), dt) =
            Json.Obj
              [
                ("seconds", Json.Float dt);
                ("counts", Json.List (List.map (fun (_, n) -> Json.Int n) counts));
              ]
          in
          let nft, paper18 = nft_census in
          Json.Obj
            [ ("depth", Json.Int 5); ("nft", row nft); ("paper18", row paper18) ] );
        ( "parallel_census",
          Json.List
            (List.map
               (fun (jobs, effective, dt, allocated, states, arena) ->
                 Json.Obj
                   [
                     ("jobs", Json.Int jobs);
                     ("search.jobs.effective", Json.Int effective);
                     ("seconds", Json.Float dt);
                     ("allocated_words", Json.Float allocated);
                     ("states", Json.Int states);
                     ("arena_bytes", Json.Int arena);
                   ])
               parallel_rows) );
        ( "quotient_census",
          Json.Obj
            [
              ("mem_guard_bytes", Json.Int quotient_mem_guard);
              ("bench2_baseline_seconds", Json.Float bench2_baseline_seconds);
              ( "rows",
                Json.List
                  (List.map
                     (fun (depth, quotient, dt, states, arena, reason) ->
                       Json.Obj
                         [
                           ("depth", Json.Int depth);
                           ("quotient", Json.Bool quotient);
                           ("seconds", Json.Float dt);
                           ("states", Json.Int states);
                           ("arena_bytes", Json.Int arena);
                           ( "stop_reason",
                             Json.String (Fmcf.describe_stop reason) );
                         ])
                     quotient_rows) );
            ] );
        ( "distributed_census",
          Json.Obj
            [
              ("fault_spec", Json.String distrib_fault_spec);
              ("max_ratio", Json.Float distrib_max_ratio);
              ("parallel_capable", Json.Bool distrib_capable);
              ("clean_2worker_ratio", Json.Float distrib_ratio);
              ( "ratio_gate",
                Json.String
                  (if distrib_capable then "enforced" else "skipped_single_core")
              );
              ("rows", Json.List (List.map distrib_row_json distrib_rows));
            ] );
        ( "checkpoint_overhead",
          Json.Obj
            [
              ("depth", Json.Int 7);
              ("every", Json.Int 1);
              ("plain_seconds", Json.Float plain);
              ("checkpointed_seconds", Json.Float checkpointed);
              ("overhead_ratio", Json.Float overhead);
              ("snapshot_bytes", Json.Int snapshot_bytes);
            ] );
        ("query_latency", Json.List (List.map query_json query_rows));
        ( "complete_index",
          let ( build_rows,
                swept,
                file_bytes,
                heap_t,
                mmap_t,
                (samples, ip50, ip99, bp50, bp99) ) =
            complete_index
          in
          Json.Obj
            [
              ("universe", Json.Int 5040);
              ("coverage", Json.Int 40320);
              ("diameter", Json.Int 13);
              ("swept_beyond_census", Json.Int swept);
              ("file_bytes", Json.Int file_bytes);
              ( "builds",
                Json.List
                  (List.map
                     (fun (quotient, census_t, sweep_t) ->
                       Json.Obj
                         (("quotient", Json.Bool quotient)
                          ::
                          (match census_t with
                          | Some s -> [ ("census_seconds", Json.Float s) ]
                          | None -> [ ("census_reused", Json.Bool true) ])
                         @ [ ("sweep_seconds", Json.Float sweep_t) ]))
                     build_rows) );
              ( "cold_start",
                Json.Obj
                  [
                    ("heap_load_seconds", Json.Float heap_t);
                    ("mmap_load_seconds", Json.Float mmap_t);
                    ("mmap_speedup", Json.Float (heap_t /. mmap_t));
                  ] );
              ( "cost8_probe",
                Json.Obj
                  [
                    ("samples", Json.Int samples);
                    ("index_p50_seconds", Json.Float ip50);
                    ("index_p99_seconds", Json.Float ip99);
                    ("warm_bidir_p50_seconds", Json.Float bp50);
                    ("warm_bidir_p99_seconds", Json.Float bp99);
                    ("p99_speedup", Json.Float (bp99 /. ip99));
                    ( "p99_gate",
                      Json.String
                        (Printf.sprintf "enforced >= %.0fx"
                           complete_index_p99_gate) );
                  ] );
            ] );
        ( "server_latency",
          Json.Obj
            [
              ("warm_depth", Json.Int server_warm_depth);
              ("index_depth", Json.Int 7);
              ("rows", Json.List (List.map server_row_json server_rows));
            ] );
        ( "server_load",
          Json.Obj
            [
              ("workers", Json.Int load_workers);
              ("queue_capacity", Json.Int load_queue_capacity);
              ("connections", Json.Int load_connections);
              ("rows", Json.List (List.map Server.Loadgen.results_to_json server_load));
            ] );
        ("telemetry", telemetry_snapshot);
      ]
  in
  let oc = open_out path in
  Telemetry.Json.to_channel ~pretty:true oc json;
  output_char oc '\n';
  close_out oc;
  Format.printf "@.wrote %s@." path

let () =
  Format.printf "Reproduction harness: exact 3-qubit quantum circuit synthesis@.";
  experiment "table1" reproduce_table1;
  (* Telemetry is scoped to the canonical depth-7 census: the experiments
     after it run further censuses (cost-family probes, 2-qubit, ablation)
     over the same global series registry, and letting them all write would
     leave BENCH_1.json with per-level series that belong to no single run. *)
  Telemetry.set_enabled true;
  let census = experiment "table2/census-depth7" reproduce_table2 in
  let telemetry_snapshot = Telemetry.snapshot () in
  Telemetry.set_enabled false;
  experiment "figs4-8/cost-4-family" reproduce_figures_4_to_8;
  experiment "fig9/toffoli" reproduce_figure_9;
  experiment "fig9/symmetry-structure" reproduce_figure_9_structure;
  experiment "sec5/group-results" (fun () -> reproduce_group_results census);
  experiment "sec5/timings" reproduce_timing;
  experiment "x2/two-qubit-census" reproduce_two_qubit;
  experiment "ext/fredkin" reproduce_fredkin;
  experiment "ext/weighted" reproduce_weighted;
  experiment "ext/classical-libraries" reproduce_classical_libraries;
  experiment "ext/composer" (fun () -> reproduce_composer census);
  experiment "sec6/behavior" reproduce_behavior;
  experiment "ablation/unconstrained" reproduce_ablation;
  experiment "ext/rewrite" reproduce_rewrite;
  experiment "sec4/qrng" reproduce_qrng;
  let query_rows = reproduce_query_latency census in
  let complete_index = reproduce_complete_index census in
  let server_latency = reproduce_server_latency census in
  let server_load = reproduce_server_load census in
  let parallel_rows = reproduce_parallel_census () in
  let checkpoint_row = reproduce_checkpoint_overhead () in
  let quotient_rows = reproduce_quotient_census () in
  let distrib = reproduce_distributed_census () in
  let nft_census = experiment "ext/nft-census" reproduce_nft_census in
  let bechamel_rows = run_bechamel () in
  let path = try Sys.getenv "BENCH_OUT" with Not_found -> "BENCH_10.json" in
  write_bench_json ~telemetry_snapshot ~bechamel_rows ~parallel_rows ~checkpoint_row
    ~quotient_rows ~distrib ~query_rows ~complete_index ~server_latency
    ~server_load ~nft_census path
