(* Quick A/B probe for the distributed census: interleaves single-process
   and forked-worker depth-7 censuses and prints per-rep and best-of
   timings plus the worker/single ratio.  The full harness
   (bench/main.exe) reports the canonical numbers in the bench JSON;
   this probe exists for fast iteration on the coordinator/worker
   pipeline without paying the bechamel suite.

   Run with: dune exec bench/distrib_probe.exe [reps] [workers] [depth] [item_states] *)

open Synthesis

let library3 = Library.make (Mvl.Encoding.make ~qubits:3)

let () =
  let arg i d = if Array.length Sys.argv > i then int_of_string Sys.argv.(i) else d in
  let reps = arg 1 5 and nworkers = arg 2 2 and depth = arg 3 7 in
  let item_states = arg 4 2048 in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let single () =
    let census, reason = Fmcf.run_guarded ~max_depth:depth library3 in
    if reason <> Fmcf.Completed then failwith "single: stopped early";
    census
  in
  let distributed () =
    let census, reason, stats =
      Distrib.census ~max_depth:depth ~item_states
        ~workers:(List.init nworkers (fun _ -> Distrib.Fork))
        library3
    in
    if reason <> Fmcf.Completed then failwith "distributed: stopped early";
    (census, stats)
  in
  let best_s = ref infinity and best_d = ref infinity in
  for i = 1 to reps do
    let s, census_s = timed single in
    let d, (census_d, stats) = timed distributed in
    if Fmcf.counts census_s <> Fmcf.counts census_d then
      failwith "distributed census disagrees with single-process";
    if s < !best_s then best_s := s;
    if d < !best_d then best_d := d;
    Printf.printf
      "rep %d: single %.3fs  %d-worker %.3fs  (%d items, %d inline, %d retries)\n%!"
      i s nworkers d stats.Distrib.items stats.Distrib.inline_items
      stats.Distrib.retries
  done;
  Printf.printf "best: single %.3fs  %d-worker %.3fs  ratio %.2fx\n" !best_s
    nworkers !best_d (!best_d /. !best_s)
