(* Standalone open-loop load generator for a running qsynth daemon.

   Offers a Poisson arrival stream at a fixed rate against the daemon's
   unix socket and prints a JSON summary (percentiles, error and
   overload counts) to stdout — the CLI face of [Server.Loadgen], for
   ad-hoc capacity probing and the CI smoke job.  The bench harness
   itself calls the library directly (BENCH_6's [server_load] rows). *)

open Cmdliner
module Json = Telemetry.Json
module Mce = Synthesis.Mce

let spec_of target =
  String.concat ","
    (List.map string_of_int (Reversible.Revfun.output_column target))

(* Three distinct well-known gates plus one non-library permutation:
   enough key diversity that the daemon's cache and coalescer both see
   work, without turning every request into a fresh search. *)
let default_mix () =
  List.map
    (fun t -> Mce.Request.make ~qubits:3 ~max_depth:7 (spec_of t))
    [
      Reversible.Gates.toffoli3;
      Reversible.Gates.fredkin3;
      Reversible.Gates.g1;
      Reversible.Spec.parse ~bits:3 "0,1,2,3,4,5,7,6";
    ]

let load_mix path =
  let ic = open_in path in
  let rec loop n acc =
    match input_line ic with
    | exception End_of_file ->
        close_in ic;
        List.rev acc
    | line when String.trim line = "" -> loop (n + 1) acc
    | line -> (
        match Mce.Request.of_json (Json.of_string line) with
        | Ok req -> loop (n + 1) (req :: acc)
        | Error e ->
            close_in ic;
            failwith (Printf.sprintf "%s:%d: %s" path n e)
        | exception Json.Parse_error e ->
            close_in ic;
            failwith (Printf.sprintf "%s:%d: %s" path n e))
  in
  loop 1 []

let main socket rps duration connections seed max_retries mix_file =
  let mix = match mix_file with None -> default_mix () | Some p -> load_mix p in
  match
    Server.Loadgen.run ~connections ~seed ~max_retries ~socket ~rps
      ~duration_s:duration mix
  with
  | results ->
      print_endline (Json.to_string ~pretty:true (Server.Loadgen.results_to_json results));
      if results.Server.Loadgen.answered = 0 then Cmd.Exit.some_error
      else Cmd.Exit.ok
  | exception Unix.Unix_error (err, _, _) ->
      Printf.eprintf "loadgen: cannot reach daemon at %s: %s\n" socket
        (Unix.error_message err);
      Cmd.Exit.some_error
  | exception Failure msg | exception Invalid_argument msg ->
      Printf.eprintf "loadgen: %s\n" msg;
      Cmd.Exit.some_error

let socket_arg =
  let doc = "Unix socket path of the running daemon." in
  Arg.(
    required
    & opt (some string) None
    & info [ "s"; "socket" ] ~docv:"PATH" ~doc)

let rps_arg =
  let doc = "Offered request rate (requests per second)." in
  Arg.(value & opt float 200. & info [ "rps" ] ~docv:"RATE" ~doc)

let duration_arg =
  let doc = "Dispatch window in seconds." in
  Arg.(value & opt float 5. & info [ "duration" ] ~docv:"SECONDS" ~doc)

let connections_arg =
  let doc = "Size of the pipelined connection pool." in
  Arg.(value & opt int 4 & info [ "connections" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Seed for the arrival process and the mix draw." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

let max_retries_arg =
  let doc =
    "Re-send a request rejected with 'overloaded' up to $(docv) times, \
     honoring the daemon's retry_after_ms hint with capped exponential \
     backoff and jitter (0, the default, reports every rejection as a \
     final outcome).  Retries are tallied in the 'retried' field."
  in
  Arg.(value & opt int 0 & info [ "max-retries" ] ~docv:"N" ~doc)

let mix_arg =
  let doc =
    "Request mix: one request JSON document per line (the daemon's wire \
     format; weight a request by repeating its line).  Without it a \
     built-in mix of 3-qubit benchmark gates is used."
  in
  Arg.(value & opt (some file) None & info [ "mix" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "open-loop Poisson load generator for qsynth serve" in
  Cmd.v
    (Cmd.info "loadgen" ~doc)
    Term.(
      const main $ socket_arg $ rps_arg $ duration_arg $ connections_arg
      $ seed_arg $ max_retries_arg $ mix_arg)

let () = exit (Cmd.eval' cmd)
