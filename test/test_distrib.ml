(* Distributed census: wire-format integrity, byte-identity of the
   coordinator/worker engine against the in-process search, and the
   failure drills — crashed workers, corrupt deltas, dropped replies —
   each of which must leave the result untouched.

   Workers are [Fork] endpoints: real child processes (real fd
   boundaries, real SIGKILL) that inherit the test's [Faultsim]
   arming, so the worker-side fault points fire deterministically in
   every child without re-exec. *)

open Synthesis

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let library3 = Library.make (Mvl.Encoding.make ~qubits:3)

let with_spec spec f =
  let saved = Faultsim.armed () in
  Faultsim.configure spec;
  Fun.protect ~finally:(fun () -> Faultsim.configure saved) f

let with_temp_file f =
  let path = Filename.temp_file "qsynth_distrib" ".bin" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".tmp" ])
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* {1 Wire format} *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ a; b ])
    (fun () -> f a b)

let test_wire_round_trip () =
  with_socketpair @@ fun a b ->
  let body = Bytes.of_string "distributed census delta" in
  Distrib.Wire.send a (Distrib.Wire.payload ~typ:42 ~body);
  let typ, payload = Distrib.Wire.recv b in
  check Alcotest.int "type byte" 42 typ;
  check Alcotest.string "body round-trips" (Bytes.to_string body)
    (Bytes.sub_string payload 9 (Bytes.length body))

let expect_protocol_error label f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Protocol_error" label
  | exception Distrib.Protocol_error _ -> ()

let test_wire_corrupt_rejected () =
  with_socketpair @@ fun a b ->
  (* flip one body byte after the CRC trailer was computed *)
  let p = Distrib.Wire.payload ~typ:4 ~body:(Bytes.of_string "payload") in
  Bytes.set p 10 (Char.chr (Char.code (Bytes.get p 10) lxor 0x01));
  Distrib.Wire.send a p;
  expect_protocol_error "flipped byte" (fun () -> Distrib.Wire.recv b)

let test_wire_bad_magic_rejected () =
  with_socketpair @@ fun a b ->
  let p = Distrib.Wire.payload ~typ:4 ~body:Bytes.empty in
  Bytes.set p 0 'X';
  Distrib.Wire.send a p;
  expect_protocol_error "bad magic" (fun () -> Distrib.Wire.recv b)

let test_wire_oversized_rejected () =
  with_socketpair @@ fun a b ->
  (* a hand-written frame header claiming more than max_frame must be
     rejected before any allocation *)
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int (Distrib.Wire.max_frame + 1));
  let n = Unix.write a hdr 0 4 in
  check Alcotest.int "header written" 4 n;
  expect_protocol_error "oversized frame" (fun () -> Distrib.Wire.recv b)

(* {1 Byte-identity with the in-process engine} *)

let index_bytes census =
  with_temp_file @@ fun path ->
  Census_index.save (Census_index.build census) path;
  read_file path

(* Compare the full observable state: per-level counts, every level's
   handles and keys, and the emitted QSYNIDX1 bytes. *)
let assert_census_equal label reference distributed =
  check
    Alcotest.(list (pair int int))
    (label ^ ": counts") (Fmcf.counts reference) (Fmcf.counts distributed);
  let rs = Fmcf.search reference and ds = Fmcf.search distributed in
  check Alcotest.int (label ^ ": depth") (Search.depth rs) (Search.depth ds);
  check Alcotest.int (label ^ ": size") (Search.size rs) (Search.size ds);
  for d = 0 to Search.depth rs do
    check
      Alcotest.(array int)
      (Printf.sprintf "%s: level %d handles" label d)
      (Search.handles_at_depth rs d)
      (Search.handles_at_depth ds d);
    check
      Alcotest.(array string)
      (Printf.sprintf "%s: level %d keys" label d)
      (Array.map (Search.key_of_handle rs) (Search.handles_at_depth rs d))
      (Array.map (Search.key_of_handle ds) (Search.handles_at_depth ds d))
  done;
  check Alcotest.string
    (label ^ ": QSYNIDX1 bytes")
    (index_bytes reference) (index_bytes distributed)

let reference_census ?(quotient = false) depth =
  let census, reason = Fmcf.run_guarded ~max_depth:depth ~quotient library3 in
  checkb "reference completed" true (reason = Fmcf.Completed);
  census

let distributed_census ?(quotient = false) ?(nworkers = 2) depth =
  let census, reason, stats =
    Distrib.census ~max_depth:depth ~quotient
      ~workers:(List.init nworkers (fun _ -> Distrib.Fork))
      library3
  in
  checkb "distributed completed" true (reason = Fmcf.Completed);
  (census, stats)

let test_clean_identity () =
  let reference = reference_census 4 in
  let census, stats = distributed_census 4 in
  assert_census_equal "2 fork workers" reference census;
  check Alcotest.int "no deaths" 0 stats.Distrib.worker_deaths;
  check Alcotest.int "no rejections" 0 stats.Distrib.rejected_deltas;
  check Alcotest.int "both workers connected" 2 stats.Distrib.workers_connected

let test_quotient_identity () =
  (* the quotient and raw engines must emit the same index bytes, and
     the distributed quotient run must match the in-process one *)
  let reference = reference_census ~quotient:true 4 in
  let census, _ = distributed_census ~quotient:true 4 in
  assert_census_equal "quotient mode" reference census;
  check Alcotest.string "quotient index = raw index"
    (index_bytes (reference_census 4))
    (index_bytes census)

let test_no_workers_degrades () =
  let reference = reference_census 4 in
  let census, reason, stats =
    Distrib.census ~max_depth:4 ~workers:[] library3
  in
  checkb "completed" true (reason = Fmcf.Completed);
  assert_census_equal "coordinator-only" reference census;
  check Alcotest.int "everything inline" stats.Distrib.items
    stats.Distrib.inline_items

(* {1 Failure drills} *)

let test_worker_crash_identity () =
  let reference = reference_census 4 in
  with_spec (Some "worker_crash:1") @@ fun () ->
  (* every forked child inherits the armed cell: both workers die on
     their first work item, the level is reassigned and finished inline *)
  let census, stats = distributed_census 4 in
  assert_census_equal "after worker crashes" reference census;
  checkb "workers died" true (stats.Distrib.worker_deaths >= 1);
  checkb "items reassigned" true (stats.Distrib.reassignments >= 1)

let test_corrupt_delta_rejected_not_merged () =
  let reference = reference_census 4 in
  with_spec (Some "delta_corrupt:1") @@ fun () ->
  let census, stats = distributed_census 4 in
  assert_census_equal "after corrupt deltas" reference census;
  checkb "deltas rejected" true (stats.Distrib.rejected_deltas >= 1);
  checkb "rejection retried" true
    (stats.Distrib.retries >= stats.Distrib.rejected_deltas);
  (* a fingerprint-corrupt delta is a rejection, not a worker death *)
  check Alcotest.int "workers survive" 0 stats.Distrib.worker_deaths

let test_reply_drop_recovers () =
  let reference = reference_census 3 in
  with_spec (Some "reply_drop:1") @@ fun () ->
  let census, reason, stats =
    Distrib.census ~max_depth:3 ~item_timeout:0.5
      ~workers:[ Distrib.Fork ] library3
  in
  checkb "completed" true (reason = Fmcf.Completed);
  assert_census_equal "after dropped reply" reference census;
  checkb "deadline fired" true (stats.Distrib.reassignments >= 1)

let () =
  Alcotest.run "distrib"
    [
      ( "wire format",
        [
          Alcotest.test_case "round trip" `Quick test_wire_round_trip;
          Alcotest.test_case "corrupt frame rejected" `Quick
            test_wire_corrupt_rejected;
          Alcotest.test_case "bad magic rejected" `Quick
            test_wire_bad_magic_rejected;
          Alcotest.test_case "oversized frame rejected" `Quick
            test_wire_oversized_rejected;
        ] );
      ( "byte identity",
        [
          Alcotest.test_case "clean 2-worker run" `Quick test_clean_identity;
          Alcotest.test_case "quotient mode" `Quick test_quotient_identity;
          Alcotest.test_case "no workers degrades" `Quick
            test_no_workers_degrades;
        ] );
      ( "failure drills",
        [
          Alcotest.test_case "worker crash" `Quick test_worker_crash_identity;
          Alcotest.test_case "corrupt delta" `Quick
            test_corrupt_delta_rejected_not_merged;
          Alcotest.test_case "dropped reply" `Quick test_reply_drop_recovers;
        ] );
    ]
