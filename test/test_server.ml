(* Server-stack tests.

   Coverage, bottom of the stack upward:
   - QCheck round-trips: [of_json (to_json x) = Ok x] for Request and
     Response over generated specs, tasks, plans, cascades and targets —
     the property every transport's byte-identity rests on.
   - Protocol framing over a socketpair: round-trips (including the
     empty payload), the oversized-announcement guard, truncation and
     clean-close detection.
   - Service semantics: cache hits, the hit+coalesced+miss accounting
     invariant under concurrent identical requests, cancellation and
     deadline mapping.
   - A live in-process daemon: 8 client threads x 50 mixed queries on
     one warm service, every response byte-identical to a fresh one-shot
     service answering the same request; then a graceful drain with a
     request in flight. *)

open Synthesis
open Reversible
open Server

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let library3 = Library.make (Mvl.Encoding.make ~qubits:3)

let jobs_under_test =
  match Sys.getenv_opt "QSYNTH_TEST_JOBS" with
  | None | Some "" -> 1
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> 1)

(* {1 Request JSON round-trip} *)

let spec_gen =
  let open QCheck2.Gen in
  oneof
    [
      oneofl
        [
          "toffoli"; "fredkin"; "peres"; "identity"; "(7,8)";
          "0,1,2,3,4,7,5,6"; "not a spec at all"; "";
        ];
      map
        (fun outs -> String.concat "," (List.map string_of_int outs))
        (shuffle_l [ 0; 1; 2; 3; 4; 5; 6; 7 ]);
    ]

let task_gen =
  let open QCheck2.Gen in
  oneof
    [
      pure Mce.Request.Synthesize;
      pure Mce.Request.Count_witnesses;
      map (fun limit -> Mce.Request.Enumerate { limit }) (int_range 0 500);
    ]

let plan_gen =
  QCheck2.Gen.oneofl Mce.Request.[ Auto; Index; Bidir; Forward ]

let id_gen =
  let open QCheck2.Gen in
  opt (string_size ~gen:printable (int_range 0 16))

let request_gen : Mce.Request.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* id = id_gen in
  let* qubits = int_range 1 4 in
  let* library = oneofl Library.Registry.names in
  let* spec = spec_gen in
  let* task = task_gen in
  let* max_depth = int_range 0 9 in
  let* plan = plan_gen in
  let+ deadline_ms = opt (int_range 1 60_000) in
  { Mce.Request.id; qubits; library; spec; task; max_depth; plan; deadline_ms }

let request_roundtrip =
  qtest "Request: of_json (to_json r) = Ok r" request_gen (fun r ->
      match Mce.Request.of_json (Mce.Request.to_json r) with
      | Ok r' -> Mce.Request.equal r r'
      | Error e -> QCheck2.Test.fail_reportf "decode failed: %s" e)

let request_unknown_field_rejected () =
  let doc =
    {|{"v":1,"qubits":3,"spec":"toffoli","task":"synthesize","max_depth":7,"plan":"auto","bogus":1}|}
  in
  match Mce.Request.of_json (Telemetry.Json.of_string doc) with
  | Ok _ -> Alcotest.fail "unknown field accepted"
  | Error _ -> ()

let request_defaults () =
  let doc = {|{"spec":"fredkin"}|} in
  match Mce.Request.of_json (Telemetry.Json.of_string doc) with
  | Error e -> Alcotest.fail e
  | Ok r ->
      checkb "defaults" true (Mce.Request.equal r (Mce.Request.make "fredkin"))

let has_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let request_unknown_library_rejected () =
  let doc = {|{"v":1,"spec":"toffoli","library":"bogus"}|} in
  match Mce.Request.of_json (Telemetry.Json.of_string doc) with
  | Ok _ -> Alcotest.fail "unknown library accepted"
  | Error msg ->
      checkb "message names the library" true
        (has_sub msg "bogus" && has_sub msg "paper18")

let request_library_roundtrip () =
  (* The library field survives the wire in both directions; the default
     is omitted from the encoding, so paper18 documents stay byte-stable
     across the API redesign. *)
  List.iter
    (fun name ->
      let r = Mce.Request.make ~library:name "toffoli" in
      match Mce.Request.of_json (Mce.Request.to_json r) with
      | Ok r' ->
          checkb "library survives round-trip" true (Mce.Request.equal r r');
          check Alcotest.string "library name" name r'.Mce.Request.library
      | Error e -> Alcotest.fail e)
    Library.Registry.names;
  let doc = {|{"spec":"toffoli"}|} in
  (match Mce.Request.of_json (Telemetry.Json.of_string doc) with
  | Ok r ->
      check Alcotest.string "omitted library defaults" Library.default_name
        r.Mce.Request.library
  | Error e -> Alcotest.fail e);
  let default = Mce.Request.make "toffoli" in
  checkb "default library omitted on the wire" false
    (has_sub
       (Telemetry.Json.to_string (Mce.Request.to_json default))
       "library")

let key_differs_across_libraries () =
  (* One spec, three universes: never the same cache line. *)
  let keys =
    List.map
      (fun name -> Mce.Request.key (Mce.Request.make ~library:name "toffoli"))
      Library.Registry.names
  in
  check Alcotest.int "all keys distinct"
    (List.length keys)
    (List.length (List.sort_uniq String.compare keys))

let key_canonicalizes () =
  (* Two spellings of the same function share one cache slot; the id and
     deadline are not part of the key. *)
  let a = Mce.Request.make ~id:"x" ~deadline_ms:5 "toffoli" in
  let b =
    Mce.Request.make (String.concat "," (List.map string_of_int
        (Revfun.output_column Gates.toffoli3)))
  in
  check Alcotest.string "same key" (Mce.Request.key a) (Mce.Request.key b);
  let c = Mce.Request.make ~max_depth:5 "toffoli" in
  checkb "depth in key" true (Mce.Request.key a <> Mce.Request.key c)

(* {1 Response JSON round-trip} *)

let revfun3_gen =
  let open QCheck2.Gen in
  map (Revfun.of_outputs ~bits:3) (shuffle_l [ 0; 1; 2; 3; 4; 5; 6; 7 ])

let gate_gen =
  let open QCheck2.Gen in
  let* kind = oneofl Gate.[ Controlled_v; Controlled_v_dag; Feynman ] in
  let* target = int_range 0 2 in
  let+ control = oneofl (List.filter (fun c -> c <> target) [ 0; 1; 2 ]) in
  Gate.make kind ~target ~control

let cascade_gen = QCheck2.Gen.(list_size (int_range 0 6) gate_gen)

let plan_used_gen =
  QCheck2.Gen.oneofl
    Mce.Response.[ Trivial; Index_hit; Index_certified; Bidir_meet; Forward_bfs ]

let payload_gen =
  let open QCheck2.Gen in
  oneof
    [
      ( let* target = revfun3_gen in
        let* not_mask = int_range 0 7 in
        let+ cascade = cascade_gen in
        Mce.Response.Synthesized
          { target; not_mask; cascade; cost = Cascade.cost cascade } );
      map (fun max_depth -> Mce.Response.Unrealizable { max_depth })
        (int_range 0 9);
      map (fun count -> Mce.Response.Witnesses { count }) (int_range 0 5000);
      ( let* target = revfun3_gen in
        let* not_mask = int_range 0 7 in
        let* cascades = list_size (int_range 0 4) cascade_gen in
        let* cost = int_range 0 8 in
        let+ complete = bool in
        Mce.Response.Realizations { target; not_mask; cost; cascades; complete }
      );
    ]

let error_gen =
  let open QCheck2.Gen in
  let msg = string_size ~gen:printable (int_range 0 40) in
  oneof
    [
      map (fun m -> Mce.Response.Bad_request m) msg;
      map (fun m -> Mce.Response.Unsupported m) msg;
      map (fun retry_after_ms -> Mce.Response.Overloaded { retry_after_ms })
        (int_range 1 10_000);
      pure Mce.Response.Deadline_exceeded;
      pure Mce.Response.Shutting_down;
      pure Mce.Response.Cancelled;
      map (fun m -> Mce.Response.Internal m) msg;
    ]

let response_gen : Mce.Response.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* id = id_gen in
  let* err = bool in
  let* trace = Option.map (Printf.sprintf "t-%x") <$> opt (int_range 0 0xffff) in
  if err then
    let* qubits = int_range 1 4 in
    let+ e = error_gen in
    { Mce.Response.id; trace; qubits; body = Error e }
  else
    (* Ok payloads embed bits-3 targets and cascades, so qubits = 3:
       of_json re-parses both against the document's qubit count. *)
    let* plan = plan_used_gen in
    let+ payload = payload_gen in
    { Mce.Response.id; trace; qubits = 3; body = Ok { plan; payload } }

let response_roundtrip =
  qtest "Response: of_json (to_json r) = Ok r" response_gen (fun r ->
      match Mce.Response.of_json (Mce.Response.to_json r) with
      | Ok r' -> Mce.Response.equal r r'
      | Error e -> QCheck2.Test.fail_reportf "decode failed: %s" e)

let response_string_roundtrip =
  qtest "Response: of_string (to_string r) = Ok r" response_gen (fun r ->
      match Mce.Response.of_string (Mce.Response.to_string r) with
      | Ok r' -> Mce.Response.equal r r'
      | Error e -> QCheck2.Test.fail_reportf "decode failed: %s" e)

let encoding_is_canonical =
  (* Equal values encode to equal bytes: decode-then-re-encode is the
     identity on the wire, which lets clients compare raw frames. *)
  qtest "Response: to_string is canonical" response_gen (fun r ->
      let s = Mce.Response.to_string r in
      match Mce.Response.of_string s with
      | Ok r' -> String.equal s (Mce.Response.to_string r')
      | Error e -> QCheck2.Test.fail_reportf "decode failed: %s" e)

let response_bad_cascade_rejected () =
  let doc =
    {|{"v":1,"qubits":3,"ok":{"plan":"forward","payload":{"kind":"synthesized","target":"0,1,2,3,4,5,7,6","not_mask":0,"cascade":"XYZ*??","cost":2}}}|}
  in
  match Mce.Response.of_string doc with
  | Ok _ -> Alcotest.fail "ill-formed cascade accepted"
  | Error _ -> ()

(* {1 Protocol framing} *)

let with_socketpair f =
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ a; b ])
    (fun () -> f a b)

let frame_roundtrip () =
  with_socketpair (fun a b ->
      List.iter
        (fun payload ->
          Protocol.write_frame a payload;
          match Protocol.read_frame b with
          | Ok got -> check Alcotest.string "payload" payload got
          | Error e -> Alcotest.fail (Protocol.read_error_to_string e))
        [ "hello"; ""; String.make 30_000 'x'; "{\"v\":1}" ])

let frame_oversized_write () =
  with_socketpair (fun a _ ->
      match Protocol.write_frame ~max_len:8 a "123456789" with
      | () -> Alcotest.fail "oversized write accepted"
      | exception Invalid_argument _ -> ())

let frame_oversized_read () =
  with_socketpair (fun a b ->
      let header = Bytes.create 4 in
      Bytes.set_int32_be header 0 0x7FFF_0000l;
      ignore (Unix.write a header 0 4);
      match Protocol.read_frame ~max_len:1024 b with
      | Error (Protocol.Oversized _) -> ()
      | Error e -> Alcotest.fail (Protocol.read_error_to_string e)
      | Ok _ -> Alcotest.fail "oversized announcement accepted")

let frame_truncated () =
  with_socketpair (fun a b ->
      let header = Bytes.create 4 in
      Bytes.set_int32_be header 0 10l;
      ignore (Unix.write a header 0 4);
      ignore (Unix.write a (Bytes.of_string "abc") 0 3);
      Unix.close a;
      match Protocol.read_frame b with
      | Error Protocol.Truncated -> ()
      | Error e -> Alcotest.fail (Protocol.read_error_to_string e)
      | Ok _ -> Alcotest.fail "truncated frame accepted")

let frame_closed () =
  with_socketpair (fun a b ->
      Unix.close a;
      match Protocol.read_frame b with
      | Error Protocol.Closed -> ()
      | Error e -> Alcotest.fail (Protocol.read_error_to_string e)
      | Ok _ -> Alcotest.fail "read from closed peer succeeded")

(* {1 Service semantics} *)

let counter name = Telemetry.Counter.value (Telemetry.Counter.create name)

let service_cache_hit () =
  Telemetry.set_enabled true;
  let svc = Service.create ~jobs:jobs_under_test library3 in
  let req = Mce.Request.make ~max_depth:5 "toffoli" in
  let hits0 = counter "server.cache.hit" in
  let first = Service.answer svc req in
  let second = Service.answer svc req in
  check Alcotest.string "identical bytes"
    (Mce.Response.to_string first)
    (Mce.Response.to_string second);
  check Alcotest.int "one cache hit" (hits0 + 1) (counter "server.cache.hit");
  (* A different id re-stamps the cached body without a recompute. *)
  let third = Service.answer svc { req with Mce.Request.id = Some "abc" } in
  check Alcotest.(option string) "id echoed" (Some "abc") third.Mce.Response.id;
  check Alcotest.int "still a hit" (hits0 + 2) (counter "server.cache.hit")

let service_accounting_under_concurrency () =
  (* N concurrent identical requests on a fresh key: exactly one miss
     (the leader computes); every other caller is a coalesced follower
     or a cache hit, depending on arrival time.  All answers byte-equal. *)
  Telemetry.set_enabled true;
  let svc = Service.create ~jobs:1 library3 in
  let req = Mce.Request.make ~max_depth:5 "peres" in
  let n = 6 in
  let hits0 = counter "server.cache.hit"
  and misses0 = counter "server.cache.miss"
  and coal0 = counter "server.coalesced" in
  let results = Array.make n None in
  let threads =
    List.init n (fun i ->
        Thread.create (fun () -> results.(i) <- Some (Service.answer svc req)) ())
  in
  List.iter Thread.join threads;
  let bytes =
    Array.to_list results
    |> List.map (function
         | Some r -> Mce.Response.to_string r
         | None -> Alcotest.fail "thread produced no result")
  in
  List.iter (fun b -> check Alcotest.string "all equal" (List.hd bytes) b) bytes;
  let hits = counter "server.cache.hit" - hits0
  and misses = counter "server.cache.miss" - misses0
  and coalesced = counter "server.coalesced" - coal0 in
  check Alcotest.int "one miss" 1 misses;
  check Alcotest.int "hit + coalesced + miss = n" n (hits + coalesced + misses)

let service_cancelled () =
  let svc = Service.create ~jobs:jobs_under_test library3 in
  let req = Mce.Request.make ~max_depth:8 "0,1,2,3,4,7,5,6" in
  match (Service.answer ~should_stop:(fun () -> true) svc req).Mce.Response.body with
  | Error Mce.Response.Cancelled -> ()
  | body ->
      Alcotest.fail
        (Mce.Response.to_string { id = None; trace = None; qubits = 3; body })

let service_deadline () =
  let svc = Service.create ~jobs:jobs_under_test library3 in
  let req = Mce.Request.make ~deadline_ms:1 ~max_depth:8 "0,1,2,3,4,7,5,6" in
  match (Service.answer svc req).Mce.Response.body with
  | Error Mce.Response.Deadline_exceeded -> ()
  | body ->
      Alcotest.fail
        (Mce.Response.to_string { id = None; trace = None; qubits = 3; body })

let service_qubits_mismatch () =
  let svc = Service.create library3 in
  let req = Mce.Request.make ~qubits:2 "toffoli" in
  match (Service.answer svc req).Mce.Response.body with
  | Error (Mce.Response.Bad_request _) -> ()
  | _ -> Alcotest.fail "qubit mismatch not rejected"

let service_unconfigured_library () =
  (* A single-library service names its configured universe in the
     rejection; requests never silently cross libraries. *)
  let svc = Service.create library3 in
  let req = Mce.Request.make ~library:"nft" "toffoli" in
  match (Service.answer svc req).Mce.Response.body with
  | Error (Mce.Response.Bad_request msg) ->
      checkb "rejection names both libraries" true
        (has_sub msg "nft" && has_sub msg "paper18")
  | _ -> Alcotest.fail "unconfigured library not rejected"

let service_routes_libraries () =
  (* A two-library service answers each universe exactly as a one-shot
     evaluation of that library would — the cross-transport byte-identity
     contract, per library. *)
  let nft = Library.of_name "nft" in
  let svc = Service.create ~libraries:[ nft ] library3 in
  check
    (Alcotest.list Alcotest.string)
    "libraries, primary first" [ "paper18"; "nft" ] (Service.libraries svc);
  List.iter
    (fun (name, lib) ->
      let req = Mce.Request.make ~library:name "toffoli" in
      let via_service = Service.answer svc req in
      let one_shot = Mce.solve lib req in
      check Alcotest.string
        (name ^ " answer matches one-shot")
        (Mce.Response.to_string one_shot)
        (Mce.Response.to_string via_service))
    [ ("paper18", library3); ("nft", nft) ];
  (* an unconfigured third universe still fails *)
  match
    (Service.answer svc (Mce.Request.make ~library:"nct" "toffoli"))
      .Mce.Response.body
  with
  | Error (Mce.Response.Bad_request _) -> ()
  | _ -> Alcotest.fail "nct accepted by a paper18+nft service"

(* {1 Live daemon: concurrent stress with byte-identity} *)

let census4 = lazy (Fmcf.run ~max_depth:4 library3)
let index4 = lazy (Census_index.build (Lazy.force census4))

let temp_socket_path () =
  let path = Filename.temp_file "qsynth_sock" ".s" in
  Sys.remove path;
  path

(* The mixed workload: every plan family, both error paths, counting and
   enumeration.  Depths stay small (index horizon 4, warm depth 3) so
   the whole stress run is fast. *)
let stress_requests =
  [
    Mce.Request.make ~max_depth:6 "toffoli" (* index miss -> bidir *);
    Mce.Request.make ~max_depth:6 "fredkin";
    Mce.Request.make "identity" (* trivial plan *);
    Mce.Request.make ~max_depth:4 "(7,8)"
    (* toffoli in cycle syntax, cost 5 > horizon 4: index-certified
       unrealizable *);
    Mce.Request.make ~plan:Mce.Request.Index ~max_depth:3 "(7,8)";
    Mce.Request.make ~max_depth:4 "0,1,2,3,6,7,4,5" (* CNOT: an index hit *);
    Mce.Request.make ~plan:Mce.Request.Bidir ~max_depth:6 "toffoli";
    Mce.Request.make ~task:Mce.Request.Count_witnesses ~max_depth:5 "toffoli";
    Mce.Request.make
      ~task:(Mce.Request.Enumerate { limit = 5 })
      ~max_depth:5 "toffoli";
    Mce.Request.make ~max_depth:6 "0,1,2,3,4,7,5,6" (* certified unrealizable *);
    Mce.Request.make "not a spec" (* Bad_request *);
    Mce.Request.make ~qubits:2 "toffoli" (* qubit mismatch *);
  ]

let daemon_stress () =
  let index = Lazy.force index4 in
  let warm_depth = 3 in
  (* One-shot oracle: a fresh service per the byte-identity contract —
     same index and warm depth, no shared state with the daemon. *)
  let oracle = Service.create ~jobs:jobs_under_test ~index ~warm_depth library3 in
  let expected =
    List.map
      (fun r -> (r, Mce.Response.to_string (Service.answer oracle r)))
      stress_requests
  in
  let svc = Service.create ~jobs:jobs_under_test ~index ~warm_depth library3 in
  let socket = temp_socket_path () in
  let daemon = Daemon.start ~workers:2 ~queue_capacity:64 ~socket svc in
  let n_threads = 8 and per_thread = 50 in
  let failures = Atomic.make 0 in
  let fail_msg = ref "" and fail_mutex = Mutex.create () in
  let client t_idx =
    let fd = Protocol.connect socket in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let k = List.length expected in
        for i = 0 to per_thread - 1 do
          let req, want = List.nth expected ((t_idx + i) mod k) in
          match Protocol.call fd req with
          | Ok resp ->
              let got = Mce.Response.to_string resp in
              if not (String.equal got want) then begin
                Atomic.incr failures;
                Mutex.lock fail_mutex;
                if !fail_msg = "" then
                  fail_msg :=
                    Printf.sprintf "request %s:\n  daemon:   %s\n  one-shot: %s"
                      req.Mce.Request.spec got want;
                Mutex.unlock fail_mutex
              end
          | Error e ->
              Atomic.incr failures;
              Mutex.lock fail_mutex;
              if !fail_msg = "" then fail_msg := "transport: " ^ e;
              Mutex.unlock fail_mutex
        done)
  in
  let threads = List.init n_threads (fun i -> Thread.create client i) in
  List.iter Thread.join threads;
  Daemon.stop daemon;
  Daemon.wait daemon;
  if Atomic.get failures > 0 then
    Alcotest.fail
      (Printf.sprintf "%d/%d responses diverged; first: %s"
         (Atomic.get failures) (n_threads * per_thread) !fail_msg);
  checkb "socket unlinked" false (Sys.file_exists socket)

let daemon_drain_in_flight () =
  (* A request accepted before the drain begins must still be answered
     with its real result; after [wait] the socket file is gone and new
     connections are refused. *)
  let svc = Service.create ~jobs:jobs_under_test library3 in
  let socket = temp_socket_path () in
  let daemon = Daemon.start ~workers:1 ~socket svc in
  let fd = Protocol.connect socket in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let req = Mce.Request.make ~max_depth:7 "fredkin" in
      Protocol.write_frame fd (Telemetry.Json.to_string (Mce.Request.to_json req));
      (* Let the reader pick the frame up, then drain mid-computation. *)
      Thread.delay 0.2;
      Daemon.stop daemon;
      (match Protocol.read_frame fd with
      | Error e -> Alcotest.fail (Protocol.read_error_to_string e)
      | Ok payload -> (
          match Mce.Response.of_string payload with
          | Error e -> Alcotest.fail e
          | Ok resp -> (
              match resp.Mce.Response.body with
              | Ok { payload = Mce.Response.Witnesses _; _ }
              | Ok { payload = Mce.Response.Realizations _; _ } ->
                  Alcotest.fail "wrong payload kind"
              | Ok { payload = Mce.Response.Synthesized { cost; _ }; _ } ->
                  check Alcotest.int "fredkin cost" 7 cost
              | Ok { payload = Mce.Response.Unrealizable _; _ } ->
                  Alcotest.fail "fredkin reported unrealizable"
              | Error e ->
                  Alcotest.fail
                    ("in-flight request not answered: "
                    ^ Mce.Response.to_string
                        { resp with Mce.Response.body = Error e }))));
      Daemon.wait daemon;
      checkb "socket unlinked" false (Sys.file_exists socket);
      match Protocol.connect socket with
      | _fd2 -> Alcotest.fail "connect succeeded after drain"
      | exception Unix.Unix_error _ -> ())

(* {1 HTTP observability endpoints} *)

let find_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then None
    else if String.sub haystack i nn = needle then Some i
    else scan (i + 1)
  in
  scan 0

let contains haystack needle = find_sub haystack needle <> None

let http_req port meth path =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf "%s %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
          meth path
      in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      let raw = Buffer.contents buf in
      match (String.index_opt raw ' ', find_sub raw "\r\n\r\n") with
      | Some sp, Some sep ->
          let code = int_of_string (String.trim (String.sub raw (sp + 1) 3)) in
          let headers = String.sub raw 0 sep in
          let body = String.sub raw (sep + 4) (String.length raw - sep - 4) in
          (code, headers, body)
      | _ -> Alcotest.fail ("malformed HTTP response: " ^ raw))

let http_get port path = http_req port "GET" path

let http_endpoints () =
  let ready = ref false in
  let srv = Http.start ~port:0 ~ready:(fun () -> !ready) () in
  Fun.protect
    ~finally:(fun () -> Http.stop srv)
    (fun () ->
      let port = Http.port srv in
      let code, _, body = http_get port "/healthz" in
      check Alcotest.int "healthz is 200" 200 code;
      check Alcotest.string "healthz body" "ok" (String.trim body);
      let code, _, _ = http_get port "/readyz" in
      check Alcotest.int "readyz 503 before ready" 503 code;
      ready := true;
      let code, _, _ = http_get port "/readyz" in
      check Alcotest.int "readyz 200 once ready" 200 code;
      ready := false;
      let code, _, _ = http_get port "/readyz" in
      check Alcotest.int "readyz flips back on drain" 503 code;
      Telemetry.set_enabled true;
      Telemetry.Counter.incr (Telemetry.Counter.create "server.requests");
      let code, headers, body = http_get port "/metrics" in
      check Alcotest.int "metrics is 200" 200 code;
      checkb "prometheus content type" true
        (contains headers "text/plain; version=0.0.4");
      checkb "exposition has TYPE lines" true (contains body "# TYPE qsynth_");
      checkb "daemon counter exported" true
        (contains body "qsynth_server_requests_total");
      let code, _, _ = http_get port "/nope" in
      check Alcotest.int "unknown path is 404" 404 code;
      let code, _, _ = http_req port "POST" "/metrics" in
      check Alcotest.int "non-GET is 405" 405 code)

(* {1 Tracing through the daemon} *)

let call_ok fd req =
  match Protocol.call fd req with
  | Ok resp -> resp
  | Error e -> Alcotest.fail ("transport: " ^ e)

let daemon_trace_ids () =
  (* With tracing on, every response carries a distinct trace id — and
     the id survives the JSON round-trip (the wire is re-parsed by
     [Protocol.call]).  Cache hits get fresh ids too: the id names the
     request, not the computation. *)
  let svc = Service.create ~jobs:jobs_under_test library3 in
  let socket = temp_socket_path () in
  let daemon = Daemon.start ~workers:1 ~trace:true ~socket svc in
  let fd = Protocol.connect socket in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Daemon.stop daemon;
      Daemon.wait daemon)
    (fun () ->
      let req = Mce.Request.make ~max_depth:5 "toffoli" in
      let a = call_ok fd req in
      let b = call_ok fd req in
      (match (a.Mce.Response.trace, b.Mce.Response.trace) with
      | Some ta, Some tb ->
          checkb "distinct ids per request" true (not (String.equal ta tb))
      | _ -> Alcotest.fail "tracing daemon answered without a trace id");
      (* Overload-free sanity: the traced path must still agree with the
         untraced result once the trace id is erased. *)
      let oracle = Service.create ~jobs:jobs_under_test library3 in
      let want = Mce.Response.to_string (Service.answer oracle req) in
      let got = Mce.Response.to_string (Mce.Response.with_trace None a) in
      check Alcotest.string "traced body equals untraced" want got)

let daemon_untraced_has_no_trace () =
  let svc = Service.create ~jobs:jobs_under_test library3 in
  let socket = temp_socket_path () in
  let daemon = Daemon.start ~workers:1 ~socket svc in
  let fd = Protocol.connect socket in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Daemon.stop daemon;
      Daemon.wait daemon)
    (fun () ->
      let resp = call_ok fd (Mce.Request.make ~max_depth:5 "toffoli") in
      check Alcotest.(option string) "no trace id without observability"
        None resp.Mce.Response.trace)

(* {1 Slow-query log} *)

let with_slow_daemon ~slow_ms f =
  let path = Filename.temp_file "qsynth_slowlog" ".jsonl" in
  let oc = open_out path in
  let svc = Service.create ~jobs:jobs_under_test library3 in
  let socket = temp_socket_path () in
  let daemon = Daemon.start ~workers:1 ~slow_ms ~slow_oc:oc ~socket svc in
  let fd = Protocol.connect socket in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Daemon.stop daemon;
          Daemon.wait daemon;
          close_out oc)
        (fun () -> ignore (f fd));
      let ic = open_in path in
      let rec lines acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | l -> lines (l :: acc)
      in
      let ls = lines [] in
      close_in ic;
      ls)

let slow_log_threshold_zero () =
  (* slow_ms = 0: every request crosses the threshold, including cache
     hits.  Each line is one JSON object with the documented fields. *)
  let lines =
    with_slow_daemon ~slow_ms:0 (fun fd ->
        let req = Mce.Request.make ~max_depth:5 "toffoli" in
        ignore (call_ok fd req);
        ignore (call_ok fd req))
  in
  check Alcotest.int "one line per request" 2 (List.length lines);
  List.iter
    (fun line ->
      let open Telemetry in
      match Json.of_string line with
      | exception Json.Parse_error e -> Alcotest.fail (e ^ ": " ^ line)
      | Json.Obj fields ->
          check Alcotest.(option string) "type tag" (Some "slow_query")
            (match List.assoc_opt "type" fields with
            | Some (Json.String s) -> Some s
            | _ -> None);
          checkb "has trace id" true (List.mem_assoc "trace" fields);
          List.iter
            (fun k -> checkb ("has " ^ k) true (List.mem_assoc k fields))
            [ "key"; "plan"; "source"; "outcome"; "queue_depth";
              "queue_wait_s"; "cache_s"; "coalesce_wait_s"; "solve_s";
              "write_s"; "total_s" ]
      | _ -> Alcotest.fail ("not an object: " ^ line))
    lines

let slow_log_threshold_high () =
  (* An unreachable threshold logs nothing, but the traced path still
     answers normally. *)
  let lines =
    with_slow_daemon ~slow_ms:3_600_000 (fun fd ->
        ignore (call_ok fd (Mce.Request.make ~max_depth:5 "toffoli")))
  in
  check Alcotest.int "no slow lines" 0 (List.length lines)

let slow_log_negative_rejected () =
  let svc = Service.create ~jobs:jobs_under_test library3 in
  match Daemon.start ~workers:1 ~slow_ms:(-1) ~socket:(temp_socket_path ()) svc with
  | _ -> Alcotest.fail "negative slow_ms accepted"
  | exception Invalid_argument _ -> ()

let daemon_draining_flag () =
  let svc = Service.create ~jobs:jobs_under_test library3 in
  let socket = temp_socket_path () in
  let daemon = Daemon.start ~workers:1 ~socket svc in
  checkb "not draining after start" false (Daemon.draining daemon);
  Daemon.stop daemon;
  checkb "draining right after stop" true (Daemon.draining daemon);
  Daemon.wait daemon;
  checkb "still draining after wait" true (Daemon.draining daemon)

let () =
  Alcotest.run "server"
    [
      ( "codec",
        [
          request_roundtrip;
          Alcotest.test_case "unknown field rejected" `Quick
            request_unknown_field_rejected;
          Alcotest.test_case "missing fields take defaults" `Quick
            request_defaults;
          Alcotest.test_case "key canonicalizes spec" `Quick key_canonicalizes;
          Alcotest.test_case "unknown library rejected" `Quick
            request_unknown_library_rejected;
          Alcotest.test_case "library round-trips, default omitted" `Quick
            request_library_roundtrip;
          Alcotest.test_case "key differs across libraries" `Quick
            key_differs_across_libraries;
          response_roundtrip;
          response_string_roundtrip;
          encoding_is_canonical;
          Alcotest.test_case "bad cascade rejected" `Quick
            response_bad_cascade_rejected;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "frame round-trip" `Quick frame_roundtrip;
          Alcotest.test_case "oversized write refused" `Quick
            frame_oversized_write;
          Alcotest.test_case "oversized announcement refused" `Quick
            frame_oversized_read;
          Alcotest.test_case "truncated frame detected" `Quick frame_truncated;
          Alcotest.test_case "clean close detected" `Quick frame_closed;
        ] );
      ( "service",
        [
          Alcotest.test_case "cache hit on repeat" `Quick service_cache_hit;
          Alcotest.test_case "miss/hit/coalesce accounting" `Quick
            service_accounting_under_concurrency;
          Alcotest.test_case "cancellation" `Quick service_cancelled;
          Alcotest.test_case "deadline maps to Deadline_exceeded" `Quick
            service_deadline;
          Alcotest.test_case "qubit mismatch is Bad_request" `Quick
            service_qubits_mismatch;
          Alcotest.test_case "unconfigured library is Bad_request" `Quick
            service_unconfigured_library;
          Alcotest.test_case "two-library routing matches one-shot" `Quick
            service_routes_libraries;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "concurrent stress, byte-identical" `Slow
            daemon_stress;
          Alcotest.test_case "graceful drain answers in-flight" `Quick
            daemon_drain_in_flight;
          Alcotest.test_case "draining flag transitions" `Quick
            daemon_draining_flag;
        ] );
      ( "http",
        [ Alcotest.test_case "metrics/healthz/readyz" `Quick http_endpoints ] );
      ( "tracing",
        [
          Alcotest.test_case "trace ids round-trip" `Quick daemon_trace_ids;
          Alcotest.test_case "no trace id when untraced" `Quick
            daemon_untraced_has_no_trace;
        ] );
      ( "slow-log",
        [
          Alcotest.test_case "threshold 0 logs every request" `Quick
            slow_log_threshold_zero;
          Alcotest.test_case "unreachable threshold logs nothing" `Quick
            slow_log_threshold_high;
          Alcotest.test_case "negative threshold rejected" `Quick
            slow_log_negative_rejected;
        ] );
    ]
