(* Prometheus exposition golden tests.

   This binary deliberately references ONLY [Telemetry]: instruments
   register process-wide at [create], so a binary that linked the
   engine or the server would start with their metric families already
   in the registry and no golden could be exact.  Test order matters
   for the same reason — the empty-registry golden runs first, and the
   full golden creates every instrument it asserts about. *)

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)

open Telemetry

(* name sanitization *)

let test_sanitize () =
  check_s "dots become underscores" "server_queue_depth"
    (Prometheus.sanitize_name "server.queue.depth");
  check_s "valid name untouched" "mce_solve:plan"
    (Prometheus.sanitize_name "mce_solve:plan");
  check_s "dash and slash" "a_b_c" (Prometheus.sanitize_name "a-b/c");
  check_s "leading digit prefixed" "_3qubit" (Prometheus.sanitize_name "3qubit");
  check_s "empty name" "_" (Prometheus.sanitize_name "")

let test_escape () =
  check_s "backslash" {|a\\b|} (Prometheus.escape_label_value {|a\b|});
  check_s "double quote" {|say \"hi\"|} (Prometheus.escape_label_value {|say "hi"|});
  check_s "newline" {|line1\nline2|} (Prometheus.escape_label_value "line1\nline2");
  check_s "plain passes through" "plan=index" (Prometheus.escape_label_value "plan=index")

(* goldens *)

let test_empty_registry () =
  (* must run before any instrument is created in this binary *)
  check_s "empty registry renders nothing" "" (Prometheus.render ())

let test_full_golden () =
  set_enabled true;
  let c = Counter.create "req.count" in
  Counter.add c 3;
  let g = Gauge.create "pool.size" in
  Gauge.set g 2.5;
  let h = Histogram.create ~lo:1. ~buckets:4 "observe.lat" in
  List.iter (Histogram.observe h) [ 0.5; 1.5; 3.0; 100.0 ];
  let s = Series.create "census.levels" in
  Series.set s ~index:0 1;
  Series.set s ~index:1 9;
  Series.set s ~index:2 40;
  let expected =
    String.concat "\n"
      [
        "# TYPE qsynth_req_count_total counter";
        "qsynth_req_count_total 3";
        "# TYPE qsynth_pool_size gauge";
        "qsynth_pool_size 2.5";
        "# TYPE qsynth_observe_lat histogram";
        "qsynth_observe_lat_bucket{le=\"1\"} 1";
        "qsynth_observe_lat_bucket{le=\"2\"} 2";
        "qsynth_observe_lat_bucket{le=\"4\"} 3";
        "qsynth_observe_lat_bucket{le=\"+Inf\"} 4";
        "qsynth_observe_lat_sum 105";
        "qsynth_observe_lat_count 4";
        "# TYPE qsynth_census_levels gauge";
        "qsynth_census_levels{index=\"0\"} 1";
        "qsynth_census_levels{index=\"1\"} 9";
        "qsynth_census_levels{index=\"2\"} 40";
        "";
      ]
  in
  check_s "full exposition" expected (Prometheus.render ())

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  scan 0

let test_bucket_cumulativity () =
  set_enabled true;
  let h = Histogram.create ~lo:1. ~buckets:6 "cumul.h" in
  (* two observations in bucket 0, one in bucket 4; buckets 1-3 are
     empty and must be skipped WITHOUT resetting the running total *)
  List.iter (Histogram.observe h) [ 0.5; 0.7; 10.0 ];
  let out = Prometheus.render () in
  List.iter
    (fun line -> check_b line true (contains out (line ^ "\n")))
    [
      "qsynth_cumul_h_bucket{le=\"1\"} 2";
      "qsynth_cumul_h_bucket{le=\"16\"} 3";
      "qsynth_cumul_h_bucket{le=\"+Inf\"} 3";
      "qsynth_cumul_h_count 3";
    ];
  check_b "no le=\"2\" line for an empty bucket" false
    (contains out "qsynth_cumul_h_bucket{le=\"2\"}")

(* derived quantiles *)

let test_quantiles () =
  set_enabled true;
  let h = Histogram.create ~lo:1. ~buckets:8 "quant.h" in
  Alcotest.(check bool) "empty histogram is nan" true
    (Float.is_nan (Histogram.quantile h 0.5));
  Histogram.observe h 5.0;
  (* a single observation: every quantile collapses to it (the
     interpolated estimate is clamped to the observed min/max) *)
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "q=%.2f of single sample" q)
        5.0 (Histogram.quantile h q))
    [ 0.0; 0.5; 0.99; 1.0 ];
  let h2 = Histogram.create ~lo:1. ~buckets:8 "quant.h2" in
  for _ = 1 to 90 do Histogram.observe h2 1.5 done;
  for _ = 1 to 10 do Histogram.observe h2 100.0 done;
  (* p50 must land in the 90%-bucket (1,2], p99 in the tail bucket *)
  let p50 = Histogram.quantile h2 0.50 and p99 = Histogram.quantile h2 0.99 in
  check_b "p50 within the bulk bucket" true (p50 >= 1.0 && p50 <= 2.0);
  check_b "p99 in the tail" true (p99 > 2.0 && p99 <= 100.0);
  (* snapshot carries the derived quantiles *)
  match Telemetry.snapshot () with
  | Json.Obj fields -> (
      match List.assoc "histograms" fields with
      | Json.Obj hs -> (
          match List.assoc "quant.h2" hs with
          | Json.Obj stats ->
              check_b "snapshot has p50" true (List.mem_assoc "p50" stats);
              check_b "snapshot has p90" true (List.mem_assoc "p90" stats);
              check_b "snapshot has p99" true (List.mem_assoc "p99" stats)
          | _ -> Alcotest.fail "quant.h2 not an object")
      | _ -> Alcotest.fail "histograms not an object")
  | _ -> Alcotest.fail "snapshot not an object"

let test_gauge_add () =
  set_enabled true;
  let g = Gauge.create "add.g" in
  Gauge.set g 0.;
  Gauge.add g 3.;
  Gauge.add g (-1.);
  Alcotest.(check (float 1e-9)) "3 - 1" 2.0 (Gauge.value g);
  check_b "rendered as integer" true
    (contains (Prometheus.render ()) "qsynth_add_g 2\n")

let () =
  Alcotest.run "prometheus"
    [
      ( "render",
        [
          (* empty-registry golden MUST stay first: later tests register
             instruments that would otherwise appear in its output *)
          Alcotest.test_case "empty registry" `Quick test_empty_registry;
          Alcotest.test_case "full golden" `Quick test_full_golden;
          Alcotest.test_case "bucket cumulativity" `Quick test_bucket_cumulativity;
          Alcotest.test_case "gauge add" `Quick test_gauge_add;
        ] );
      ( "names",
        [
          Alcotest.test_case "sanitize" `Quick test_sanitize;
          Alcotest.test_case "escape" `Quick test_escape;
        ] );
      ("quantiles", [ Alcotest.test_case "histogram quantiles" `Quick test_quantiles ]);
    ]
