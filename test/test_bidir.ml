(* Meet-in-the-middle and census-index tests.

   The heart is an exhaustive oracle check: for every one of the 1260
   functions in the depth-7 census, the bidirectional engine must report
   exactly the census cost and a legal cascade realizing the function.
   The engine's forward wave is capped at depth 4 for that test, so
   every cost >= 5 answer is forced through a genuine forward+backward
   join rather than a warm forward lookup.

   The census index is checked as a round-trip (build -> save -> load ->
   every lookup agrees with Fmcf.find) plus rejection tests: CRC damage,
   truncation, version and fingerprint mismatches, and a value-level
   forgery that keeps the CRC valid but plants an illegal witness. *)

open Synthesis
open Reversible

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let library3 = Library.make (Mvl.Encoding.make ~qubits:3)
let census7 = lazy (Fmcf.run ~max_depth:7 library3)
let census_total = 1260 (* 1+6+24+51+84+156+398+540 *)

let with_temp_file f =
  let path = Filename.temp_file "qsynth_idx" ".bin" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".tmp" ])
    (fun () -> f path)

let toffoli = Spec.parse ~bits:3 "toffoli"
let peres = Spec.parse ~bits:3 "peres"
let fredkin = Spec.parse ~bits:3 "fredkin"

(* Exact cost 8: beyond the paper's cb = 7 horizon (Fredkin followed by
   a CNOT; its absence from the depth-7 census proves cost >= 8, and the
   engine joins at 8). *)
let cost8 = Spec.parse ~bits:3 "0,1,2,3,4,7,5,6"

let realizes func cascade =
  Cascade.is_reasonable library3 cascade
  &&
  match Cascade.restriction library3 cascade with
  | Some f -> Revfun.equal f func
  | None -> false

(* {1 Bidirectional engine} *)

let test_exhaustive_census_costs () =
  let census = Lazy.force census7 in
  (* cap the forward wave below the deepest census level: every cost-5..7
     member then requires an honest meet-in-the-middle join *)
  let engine = Bidir.create ~max_fwd_depth:4 library3 in
  let total = ref 0 in
  Fmcf.iter_members census (fun ~cost m ->
      incr total;
      match Bidir.synthesize engine m.Fmcf.func with
      | None ->
          Alcotest.failf "bidir found nothing for a cost-%d census member" cost
      | Some o ->
          if o.Bidir.cost <> cost then
            Alcotest.failf "bidir cost %d for a census member of cost %d"
              o.Bidir.cost cost;
          if List.length o.Bidir.cascade <> cost then
            Alcotest.failf "cascade length %d differs from cost %d"
              (List.length o.Bidir.cascade) cost;
          if not (realizes m.Fmcf.func o.Bidir.cascade) then
            Alcotest.failf "illegal or wrong cascade for a cost-%d member" cost);
  check Alcotest.int "census members queried" census_total !total;
  checkb "forward wave stayed capped" true (Bidir.fwd_depth engine <= 4)

let test_known_costs () =
  let engine = Bidir.create library3 in
  List.iter
    (fun (name, target, expected) ->
      match Bidir.synthesize engine target with
      | None -> Alcotest.failf "%s: no realization found" name
      | Some o ->
          check Alcotest.int (name ^ " cost") expected o.Bidir.cost;
          checkb (name ^ " cascade realizes target") true
            (realizes target o.Bidir.cascade);
          (* close the loop against the exact unitary semantics *)
          checkb (name ^ " unitary") true
            (Verify.cascade_implements ~qubits:3 o.Bidir.cascade target))
    [ ("toffoli", toffoli, 5); ("peres", peres, 4); ("fredkin", fredkin, 7) ]

let test_identity_and_bounds () =
  let engine = Bidir.create library3 in
  (match Bidir.synthesize engine (Revfun.identity ~bits:3) with
  | Some o ->
      check Alcotest.int "identity cost" 0 o.Bidir.cost;
      checkb "identity cascade empty" true (o.Bidir.cascade = [])
  | None -> Alcotest.fail "identity not synthesized");
  checkb "toffoli refused under max_cost 4" true
    (Bidir.synthesize ~max_cost:4 engine toffoli = None);
  checkb "fredkin refused under max_cost 6" true
    (Bidir.synthesize ~max_cost:6 engine fredkin = None)

let test_cost8_beyond_census () =
  let census = Lazy.force census7 in
  checkb "cost-8 function absent from the depth-7 census" true
    (Fmcf.find census cost8 = None);
  let engine = Bidir.create library3 in
  match Bidir.synthesize ~max_cost:14 engine cost8 with
  | None -> Alcotest.fail "cost-8 function not synthesized"
  | Some o ->
      check Alcotest.int "exact cost" 8 o.Bidir.cost;
      checkb "cascade realizes the function" true (realizes cost8 o.Bidir.cascade);
      checkb "exact unitary implements it" true
        (Verify.cascade_implements ~qubits:3 o.Bidir.cascade cost8);
      (* the census proves cost >= 8; handing that bound in must not
         change the answer *)
      (match Bidir.synthesize ~max_cost:14 ~lower_bound:8 engine cost8 with
      | Some o' -> check Alcotest.int "cost with lower bound" 8 o'.Bidir.cost
      | None -> Alcotest.fail "lower-bound query found nothing")

let test_determinism_across_jobs () =
  let run jobs =
    let engine = Bidir.create ~jobs ~max_fwd_depth:4 library3 in
    List.map
      (fun t ->
        match Bidir.synthesize engine t with
        | Some o -> o.Bidir.cascade
        | None -> Alcotest.fail "query failed")
      [ toffoli; peres; fredkin ]
  in
  List.iteri
    (fun i (a, b) ->
      checkb (Printf.sprintf "cascade %d identical at jobs=2" i) true
        (Cascade.equal a b))
    (List.combine (run 1) (run 2))

(* {1 Census index} *)

let index7 = lazy (Census_index.build (Lazy.force census7))

let test_index_round_trip () =
  let census = Lazy.force census7 in
  with_temp_file @@ fun path ->
  Census_index.save (Lazy.force index7) path;
  let idx = Census_index.load library3 path in
  check Alcotest.int "size" census_total (Census_index.size idx);
  check Alcotest.int "depth" 7 (Census_index.depth idx);
  let total = ref 0 in
  Fmcf.iter_members census (fun ~cost m ->
      incr total;
      match Census_index.find idx m.Fmcf.func with
      | None -> Alcotest.failf "census member of cost %d missing from index" cost
      | Some (c, witness) ->
          if c <> cost then Alcotest.failf "index cost %d, census cost %d" c cost;
          if List.length witness <> cost then Alcotest.fail "witness length";
          if not (realizes m.Fmcf.func witness) then
            Alcotest.failf "index witness invalid at cost %d" cost);
  check Alcotest.int "lookups" census_total !total;
  checkb "beyond-horizon function misses" true
    (Census_index.find idx cost8 = None)

let save_to path = Census_index.save (Lazy.force index7) path

(* tests replay every witness — the sampled default is covered by
   test_complete_index's loader-equivalence check *)
let reload path =
  ignore (Census_index.load ~verify:Census_index.Full library3 path)

let patch path ~pos bytes =
  let buf = Checkpoint.read_file path in
  Bytes.blit_string bytes 0 buf pos (String.length bytes);
  let fd = open_out_bin path in
  output_bytes fd buf;
  close_out fd

(* rewrite the trailing CRC so header/payload edits survive the
   integrity check and reach the semantic validators *)
let refresh_crc path =
  let buf = Checkpoint.read_file path in
  let len = Bytes.length buf in
  Bytes.set_int32_le buf (len - 4)
    (Int32.of_int (Checkpoint.crc32 buf ~off:0 ~len:(len - 4)));
  let fd = open_out_bin path in
  output_bytes fd buf;
  close_out fd

let expect_corrupt name f =
  match f () with
  | () -> Alcotest.failf "%s: expected Corrupt" name
  | exception Checkpoint.Corrupt _ -> ()

let expect_mismatch name f =
  match f () with
  | () -> Alcotest.failf "%s: expected Mismatch" name
  | exception Checkpoint.Mismatch _ -> ()

let test_index_rejects_damage () =
  with_temp_file @@ fun path ->
  save_to path;
  let original = Checkpoint.read_file path in
  let len = Bytes.length original in
  (* bit flips anywhere must fail the CRC (or the magic check) *)
  List.iter
    (fun pos ->
      save_to path;
      let buf = Checkpoint.read_file path in
      Bytes.set buf pos (Char.chr (Char.code (Bytes.get buf pos) lxor 0x40));
      let fd = open_out_bin path in
      output_bytes fd buf;
      close_out fd;
      expect_corrupt (Printf.sprintf "flip at %d" pos) (fun () -> reload path))
    [ 0; 9; 20; 50; len / 2; len - 5; len - 1 ];
  (* truncation at any prefix *)
  List.iter
    (fun keep ->
      save_to path;
      let fd = open_out_bin path in
      output_bytes fd (Bytes.sub original 0 keep);
      close_out fd;
      expect_corrupt (Printf.sprintf "truncated to %d" keep) (fun () -> reload path))
    [ 0; 7; 30; len / 2; len - 4 ]

let test_index_rejects_mismatch () =
  with_temp_file @@ fun path ->
  (* future format version *)
  save_to path;
  patch path ~pos:8 "\x63\x00\x00\x00";
  refresh_crc path;
  expect_mismatch "version 99" (fun () -> reload path);
  (* foreign library fingerprint *)
  save_to path;
  patch path ~pos:12 "\xde\xad\xbe\xef\xde\xad\xbe\xef";
  refresh_crc path;
  expect_mismatch "fingerprint" (fun () -> reload path);
  (* a structurally valid index for a different library *)
  save_to path;
  expect_mismatch "different library" (fun () ->
      ignore (Census_index.load (Library.feynman_only library3) path))

(* QSYNIDX2 layout constants for the depth-7 index under test: the
   records start after the fixed header and the (depth+1)-entry
   histogram, the gate log after the records. *)
let nb = 8
let rec_size = nb + 1 + 4
let v2_header_bytes = 8 + 4 + 8 + 8 + (9 * 4)
let records_off = v2_header_bytes + (4 * (7 + 1))
let log_off = records_off + (census_total * rec_size)

let test_index_rejects_forged_witness () =
  with_temp_file @@ fun path ->
  save_to path;
  (* records sort by func_key, so record 0 is the identity (cost 0) and
     record 1 is some non-identity function; zeroing record 1's cost byte
     and re-CRCing forges a file that passes the integrity checks yet
     claims that function has an empty witness — the header histogram no
     longer matches the records, so the cross-check must reject it *)
  patch path ~pos:(records_off + rec_size + nb) "\x00";
  refresh_crc path;
  expect_corrupt "forged empty witness" (fun () -> reload path);
  (* a deeper forgery that keeps every structural invariant intact:
     rewrite one gate-log byte to a different (valid) library gate.
     Counts, costs, offsets and the histogram all still agree — only the
     witness-replay validator can notice the cascade now computes a
     different function than the record's key claims *)
  save_to path;
  let buf = Checkpoint.read_file path in
  let original = Bytes.get_uint8 buf log_off in
  let forged = (original + 1) mod Library.size library3 in
  patch path ~pos:log_off (String.make 1 (Char.chr forged));
  refresh_crc path;
  expect_corrupt "forged gate-log byte" (fun () -> reload path)

let test_v1_format_still_loads () =
  (* a QSYNIDX1 file is byte-slicable out of a QSYNIDX2 one: same
     fingerprint, same six leading fields, same records and gate log —
     minus the symmetry fingerprint, flags, coverage and histogram.
     Hand-assembling one proves pre-sweep index files keep loading (as
     partial indexes) after the format bump. *)
  with_temp_file @@ fun path ->
  save_to path;
  let v2 = Checkpoint.read_file path in
  let v1_header = 8 + 4 + 8 + (6 * 4) in
  let payload_len = Bytes.length v2 - 4 - records_off in
  let v1 = Bytes.create (v1_header + payload_len + 4) in
  Bytes.blit_string "QSYNIDX1" 0 v1 0 8;
  Bytes.set_int32_le v1 8 1l;
  (* fingerprint + qubits/nb/num_gates/depth/count/log_len ride along *)
  Bytes.blit v2 12 v1 12 8;
  Bytes.blit v2 28 v1 20 (6 * 4);
  Bytes.blit v2 records_off v1 v1_header payload_len;
  Bytes.set_int32_le v1
    (v1_header + payload_len)
    (Int32.of_int
       (Checkpoint.crc32 v1 ~off:0 ~len:(v1_header + payload_len)));
  let fd = open_out_bin path in
  output_bytes fd v1;
  close_out fd;
  let idx = Census_index.load ~verify:Census_index.Full library3 path in
  check Alcotest.int "v1 size" census_total (Census_index.size idx);
  check Alcotest.int "v1 depth" 7 (Census_index.depth idx);
  checkb "v1 is partial by definition" false (Census_index.is_complete idx);
  (match Census_index.find idx toffoli with
  | Some (5, _) -> ()
  | Some (c, _) -> Alcotest.failf "v1 toffoli cost %d" c
  | None -> Alcotest.fail "v1 toffoli missing");
  (* same records, same derived histogram as the v2 original *)
  let v2_idx = Lazy.force index7 in
  check
    Alcotest.(array int)
    "v1 histogram matches v2"
    (Census_index.histogram v2_idx)
    (Census_index.histogram idx)

(* {1 Mce integration: planner and shared queries} *)

let test_express_with_index () =
  with_temp_file @@ fun path ->
  save_to path;
  let idx = Census_index.load library3 path in
  List.iter
    (fun (name, target, expected) ->
      match Mce.express ~index:idx library3 target with
      | Some r ->
          check Alcotest.int (name ^ " cost via index") expected r.Mce.cost;
          checkb (name ^ " result valid") true (Verify.result_valid library3 r)
      | None -> Alcotest.failf "%s: no result via index" name)
    [ ("toffoli", toffoli, 5); ("peres", peres, 4); ("fredkin", fredkin, 7) ];
  (* a miss under an index covering the whole depth bound is a certified
     None — no search runs *)
  checkb "certified miss" true (Mce.express ~index:idx library3 cost8 = None);
  (* beyond the horizon the planner falls through to bidir and finds 8 *)
  let engine = Bidir.create library3 in
  match Mce.express ~max_depth:14 ~index:idx ~bidir:engine library3 cost8 with
  | Some r ->
      check Alcotest.int "cost-8 via index+bidir" 8 r.Mce.cost;
      checkb "cost-8 result valid" true (Verify.result_valid library3 r)
  | None -> Alcotest.fail "cost-8: no result via index+bidir"

let test_shared_query () =
  let q = Mce.run_query library3 toffoli in
  (match Mce.query_result q with
  | Some r -> check Alcotest.int "toffoli cost" 5 r.Mce.cost
  | None -> Alcotest.fail "toffoli: no result");
  check Alcotest.int "toffoli witnesses" 4 (Mce.query_witnesses q);
  check Alcotest.int "toffoli realizations" 40
    (List.length (Mce.query_realizations q));
  check Alcotest.int "realizations under limit" 7
    (List.length (Mce.query_realizations ~limit:7 q))

let test_realizations_limit_regression () =
  (* the returned list must never exceed [limit], including limit 0 and
     limits smaller than one witness's cascade count *)
  List.iter
    (fun limit ->
      let rs = Mce.all_realizations ~limit library3 toffoli in
      check Alcotest.int
        (Printf.sprintf "all_realizations ~limit:%d" limit)
        (min limit 40) (List.length rs))
    [ 0; 1; 3; 9; 40; 1000 ];
  check Alcotest.int "identity under limit 0" 0
    (List.length
       (Mce.all_realizations ~limit:0 library3 (Revfun.identity ~bits:3)))

let () =
  Alcotest.run "bidir"
    [
      ( "bidir oracle",
        [
          Alcotest.test_case "exhaustive depth-7 census agreement" `Quick
            test_exhaustive_census_costs;
          Alcotest.test_case "known costs + unitary check" `Quick test_known_costs;
          Alcotest.test_case "identity and cost bounds" `Quick
            test_identity_and_bounds;
          Alcotest.test_case "exact cost 8 beyond the census" `Quick
            test_cost8_beyond_census;
          Alcotest.test_case "deterministic across jobs" `Quick
            test_determinism_across_jobs;
        ] );
      ( "census index",
        [
          Alcotest.test_case "round trip matches Fmcf.find" `Quick
            test_index_round_trip;
          Alcotest.test_case "damage rejection" `Quick test_index_rejects_damage;
          Alcotest.test_case "mismatch rejection" `Quick test_index_rejects_mismatch;
          Alcotest.test_case "forged witness rejection" `Quick
            test_index_rejects_forged_witness;
          Alcotest.test_case "QSYNIDX1 files still load" `Quick
            test_v1_format_still_loads;
        ] );
      ( "mce planner",
        [
          Alcotest.test_case "express via index and bidir" `Quick
            test_express_with_index;
          Alcotest.test_case "one search, three answers" `Quick test_shared_query;
          Alcotest.test_case "all_realizations respects limit" `Quick
            test_realizations_limit_regression;
        ] );
    ]
