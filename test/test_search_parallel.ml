(* Determinism tests for the domain-parallel BFS engine: every jobs value
   must reproduce the sequential census exactly — same per-level counts,
   same function sets, same frontier keys in the same order — and the
   arena composition path must agree with abstract permutation algebra.

   The jobs values under test come from QSYNTH_TEST_JOBS (space- or
   comma-separated, default "2 4") so the CI matrix can vary them. *)

open Synthesis

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

let qcheck_test ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let library3 = Library.make (Mvl.Encoding.make ~qubits:3)
let oracle_depth = 5

(* Table 2 prefixes up to depth 5. *)
let oracle_counts = [ 1; 6; 24; 51; 84; 156 ]
let oracle_paper_counts = [ 1; 6; 30; 52; 84; 156 ]

let jobs_under_test =
  match Sys.getenv_opt "QSYNTH_TEST_JOBS" with
  | None | Some "" -> [ 2; 4 ]
  | Some s ->
      String.split_on_char ' ' s
      |> List.concat_map (String.split_on_char ',')
      |> List.filter_map int_of_string_opt
      |> List.filter (fun j -> j >= 1)

let census ~jobs = Fmcf.run ~max_depth:oracle_depth ~jobs library3
let sequential = lazy (census ~jobs:1)

let func_key (m : Fmcf.member) =
  Permgroup.Perm.key (Reversible.Revfun.to_perm m.Fmcf.func)

let level_key_sets c =
  List.map
    (fun level ->
      List.sort_uniq compare (List.map func_key level.Fmcf.members))
    (Fmcf.levels c)

let test_counts_match_oracle jobs () =
  let c = census ~jobs in
  check
    Alcotest.(list int)
    (Printf.sprintf "G[k] counts, jobs=%d" jobs)
    oracle_counts
    (List.map snd (Fmcf.counts c));
  check
    Alcotest.(list int)
    (Printf.sprintf "paper G[k] counts, jobs=%d" jobs)
    oracle_paper_counts
    (List.map snd (Fmcf.paper_counts c))

let test_same_function_sets jobs () =
  let expected = level_key_sets (Lazy.force sequential) in
  let got = level_key_sets (census ~jobs) in
  List.iteri
    (fun k (e, g) ->
      check
        Alcotest.(list string)
        (Printf.sprintf "level %d func_key set, jobs=%d" k jobs)
        e g)
    (List.combine expected got)

let test_witness_cascades_valid jobs () =
  let c = census ~jobs in
  List.iter
    (fun level ->
      List.iter
        (fun (m : Fmcf.member) ->
          let cascade = Fmcf.cascade_of_member c m in
          check Alcotest.int
            (Printf.sprintf "witness length = cost %d" m.Fmcf.cost)
            m.Fmcf.cost (List.length cascade);
          checkb
            (Printf.sprintf "witness implements func at cost %d" m.Fmcf.cost)
            true
            (Verify.cascade_implements ~qubits:3 cascade m.Fmcf.func))
        level.Fmcf.members)
    (Fmcf.levels c)

(* The strongest invariant: the per-level frontiers (the raw BFS states,
   not just their binary restrictions) agree byte for byte and in order. *)
let test_frontiers_byte_identical jobs () =
  let run j =
    let s = Search.create ~jobs:j library3 in
    List.init oracle_depth (fun _ ->
        Array.map (Search.key_of_handle s) (Search.step_handles s))
  in
  let expected = run 1 and got = run jobs in
  List.iteri
    (fun k (e, g) ->
      check
        Alcotest.(array string)
        (Printf.sprintf "level %d frontier, jobs=%d" (k + 1) jobs)
        e g)
    (List.combine expected got)

(* Composition through the arena: applying a gate sequence point-wise via
   the compiled image arrays (exactly what the engine's expand loop does)
   must agree with composing the abstract permutations, and any stored
   cascade for the resulting state must compose back to the same
   permutation at a depth no larger than the sequence length. *)

let entries3 = Library.entries library3

let gate_index_gen =
  QCheck2.Gen.(list_size (int_range 0 oracle_depth)
                 (int_range 0 (Array.length entries3 - 1)))

let stepped_search =
  lazy
    (let s = Search.create ~jobs:2 library3 in
     for _ = 1 to oracle_depth do
       ignore (Search.step_handles s)
     done;
     s)

let qcheck_arena_compose =
  qcheck_test "arena composition = Perm composition" gate_index_gen (fun vias ->
      let degree = Mvl.Encoding.size (Library.encoding library3) in
      let bytes = ref (Array.init degree Fun.id) in
      let perm = ref (Permgroup.Perm.identity degree) in
      List.iter
        (fun via ->
          let e = entries3.(via) in
          bytes := Array.map (fun p -> e.Library.perm_array.(p)) !bytes;
          perm := Permgroup.Perm.mul !perm e.Library.perm)
        vias;
      let key = String.init degree (fun i -> Char.chr !bytes.(i)) in
      let algebraic =
        String.init degree (fun i ->
            Char.chr (Permgroup.Perm.apply !perm i))
      in
      key = algebraic
      &&
      (* If the BFS stored this state, its witness must be consistent. *)
      let s = Lazy.force stepped_search in
      match Search.depth_of_key s key with
      | None -> true
      | Some d ->
          d <= List.length vias
          && Permgroup.Perm.key (Cascade.perm_of library3 (Search.cascade_of_key s key))
             = Permgroup.Perm.key !perm)

let per_jobs name f =
  List.map
    (fun jobs ->
      Alcotest.test_case (Printf.sprintf "%s (jobs=%d)" name jobs) `Quick (f jobs))
    jobs_under_test

let () =
  Alcotest.run "search_parallel"
    [
      ("census oracle", per_jobs "Table 2 counts" test_counts_match_oracle);
      ("function sets", per_jobs "per-level func_key sets" test_same_function_sets);
      ("witnesses", per_jobs "witness cascades valid" test_witness_cascades_valid);
      ("frontiers", per_jobs "byte-identical frontiers" test_frontiers_byte_identical);
      ("arena algebra", [ qcheck_arena_compose ]);
    ]
