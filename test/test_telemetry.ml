(* Tests for the telemetry subsystem: counter/gauge/histogram/series
   arithmetic, span nesting and timing monotonicity, JSON round-trips,
   the disabled-switch no-op path, the JSON-lines exporter, and a
   regression test that a census metrics snapshot (what
   `qsynth census --metrics FILE` writes) parses back as JSON with the
   Table 2 per-level counts. *)

open Telemetry

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* Every test starts from a clean, enabled registry. *)
let fresh () =
  set_enabled true;
  set_trace false;
  set_jsonl None;
  reset ()

(* JSON *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("bool", Json.Bool true);
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5);
        ("whole_float", Json.Float 2.0);
        ("string", Json.String "line\nquote\" back\\slash \t end");
        ("list", Json.List [ Json.Int 1; Json.Float 0.25; Json.String "x" ]);
        ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ]);
      ]
  in
  let compact = Json.of_string (Json.to_string v) in
  let pretty = Json.of_string (Json.to_string ~pretty:true v) in
  checkb "compact round-trip" true (Json.equal v compact);
  checkb "pretty round-trip" true (Json.equal v pretty)

let test_json_parse () =
  checkb "escapes" true
    (Json.equal
       (Json.of_string {|{"a": "A\n\"", "b": [1, 2.5, -3, true, false, null]}|})
       (Json.Obj
          [
            ("a", Json.String "A\n\"");
            ( "b",
              Json.List
                [
                  Json.Int 1;
                  Json.Float 2.5;
                  Json.Int (-3);
                  Json.Bool true;
                  Json.Bool false;
                  Json.Null;
                ] );
          ]));
  checkb "surrogate pair" true
    (Json.equal (Json.of_string {|"😀"|}) (Json.String "\xf0\x9f\x98\x80"));
  checkb "non-finite floats print as null" true
    (Json.equal (Json.of_string (Json.to_string (Json.Float Float.nan))) Json.Null);
  Alcotest.check_raises "trailing garbage"
    (Json.Parse_error "trailing garbage at offset 2") (fun () ->
      ignore (Json.of_string "1 2"));
  (match Json.of_string "{}" with
  | Json.Obj [] -> ()
  | _ -> Alcotest.fail "empty object");
  check
    Alcotest.(option int)
    "path lookup" (Some 7)
    (match Json.path [ "a"; "b" ] (Json.of_string {|{"a":{"b":7}}|}) with
    | Some (Json.Int i) -> Some i
    | _ -> None)

(* counters, gauges, histograms, series *)

let test_counter_arithmetic () =
  fresh ();
  let c = Counter.create "test.counter" in
  checki "fresh counter" 0 (Counter.value c);
  Counter.incr c;
  Counter.incr c;
  Counter.add c 40;
  checki "incr and add" 42 (Counter.value c);
  let c' = Counter.create "test.counter" in
  checki "find-or-create returns the same instrument" 42 (Counter.value c');
  reset ();
  checki "reset zeroes" 0 (Counter.value c)

let test_gauge () =
  fresh ();
  let g = Gauge.create "test.gauge" in
  Gauge.set g 2.5;
  check (Alcotest.float 0.0) "set" 2.5 (Gauge.value g);
  Gauge.set_int g 7;
  check (Alcotest.float 0.0) "set_int" 7.0 (Gauge.value g)

let test_histogram_arithmetic () =
  fresh ();
  let h = Histogram.create ~lo:1e-6 ~buckets:28 "test.histogram" in
  checkb "min is nan before observations" true (Float.is_nan (Histogram.min_value h));
  List.iter (Histogram.observe h) [ 5e-7; 3e-6; 1e-3; 0.5; 1e9 ];
  checki "count" 5 (Histogram.count h);
  check (Alcotest.float 1e-9) "sum" (5e-7 +. 3e-6 +. 1e-3 +. 0.5 +. 1e9) (Histogram.sum h);
  check (Alcotest.float 0.0) "min" 5e-7 (Histogram.min_value h);
  check (Alcotest.float 0.0) "max" 1e9 (Histogram.max_value h);
  let buckets = Histogram.buckets h in
  checki "bucket mass equals count" (Histogram.count h)
    (List.fold_left (fun acc (_, c) -> acc + c) 0 buckets);
  checkb "log-scaled: observations spread over distinct buckets" true
    (List.length buckets = 5);
  (* 5e-7 <= lo goes to bucket 0; 1e9 overflows into the +Inf bucket *)
  (match buckets with
  | (first_le, 1) :: _ -> check (Alcotest.float 0.0) "underflow bound" 1e-6 first_le
  | _ -> Alcotest.fail "missing underflow bucket");
  match List.rev buckets with
  | (last_le, 1) :: _ -> checkb "overflow bound is infinite" true (last_le = Float.infinity)
  | _ -> Alcotest.fail "missing overflow bucket"

let test_histogram_time () =
  fresh ();
  let h = Histogram.create "test.timer" in
  let result = Histogram.time h (fun () -> 1 + 1) in
  checki "time returns the result" 2 result;
  checki "one observation" 1 (Histogram.count h);
  checkb "duration is non-negative" true (Histogram.sum h >= 0.)

let test_series () =
  fresh ();
  let s = Series.create "test.series" in
  Series.set s ~index:0 1;
  Series.set s ~index:3 51;
  check Alcotest.(list int) "gaps fill with zero" [ 1; 0; 0; 51 ] (Series.to_list s);
  check Alcotest.(option int) "get" (Some 51) (Series.get s ~index:3);
  check Alcotest.(option int) "out of range" None (Series.get s ~index:4)

(* spans *)

let test_span_nesting_and_timing () =
  fresh ();
  let inner_ran = ref false in
  Span.with_span "outer" (fun () ->
      Span.set_attr "k" (Json.Int 3);
      Span.with_span "inner" (fun () -> inner_ran := true));
  checkb "span bodies run" true !inner_ran;
  match snapshot () with
  | Json.Obj _ as snap -> (
      match Json.member "spans" snap with
      | Some (Json.List [ outer ]) -> (
          check
            Alcotest.(option string)
            "root span name" (Some "outer")
            (match Json.member "name" outer with
            | Some (Json.String s) -> Some s
            | _ -> None);
          check
            Alcotest.(option int)
            "attrs recorded" (Some 3)
            (match Json.path [ "attrs"; "k" ] outer with
            | Some (Json.Int i) -> Some i
            | _ -> None);
          let dur j =
            match Json.member "dur_s" j with Some (Json.Float f) -> f | _ -> Float.nan
          in
          match Json.member "children" outer with
          | Some (Json.List [ inner ]) ->
              check
                Alcotest.(option string)
                "child span name" (Some "inner")
                (match Json.member "name" inner with
                | Some (Json.String s) -> Some s
                | _ -> None);
              checkb "durations non-negative" true (dur inner >= 0. && dur outer >= 0.);
              checkb "child duration bounded by parent" true (dur inner <= dur outer)
          | _ -> Alcotest.fail "expected one child span")
      | _ -> Alcotest.fail "expected one root span")
  | _ -> Alcotest.fail "snapshot is not an object"

let test_span_exception_safety () =
  fresh ();
  (try Span.with_span "boom" (fun () -> failwith "expected") with Failure _ -> ());
  Span.with_span "after" (fun () -> ());
  match Json.member "spans" (snapshot ()) with
  | Some (Json.List spans) ->
      checki "both spans closed at the root" 2 (List.length spans)
  | _ -> Alcotest.fail "missing spans"

(* disabled-switch no-op path *)

let test_disabled_noop () =
  fresh ();
  reset ();
  set_enabled false;
  let c = Counter.create "test.disabled.counter" in
  let g = Gauge.create "test.disabled.gauge" in
  let h = Histogram.create "test.disabled.histogram" in
  let s = Series.create "test.disabled.series" in
  Counter.incr c;
  Counter.add c 100;
  Gauge.set g 5.0;
  Histogram.observe h 1.0;
  checki "disabled timer still runs the body" 3 (Histogram.time h (fun () -> 3));
  Series.set s ~index:2 9;
  Span.with_span "disabled.span" (fun () -> Span.set_attr "x" Json.Null);
  checki "counter untouched" 0 (Counter.value c);
  check (Alcotest.float 0.0) "gauge untouched" 0.0 (Gauge.value g);
  checki "histogram untouched" 0 (Histogram.count h);
  check Alcotest.(list int) "series untouched" [] (Series.to_list s);
  (match Json.member "spans" (snapshot ()) with
  | Some (Json.List []) -> ()
  | _ -> Alcotest.fail "disabled mode must record no spans");
  set_enabled true

(* JSON-lines exporter *)

let test_jsonl_export () =
  fresh ();
  let path = Filename.temp_file "telemetry" ".jsonl" in
  let oc = open_out path in
  set_jsonl (Some oc);
  Span.with_span "a" (fun () -> Span.with_span "b" (fun () -> ()));
  set_jsonl None;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let parsed = List.rev_map Json.of_string !lines in
  checki "one line per closed span" 2 (List.length parsed);
  (* children close before parents in the stream *)
  check
    Alcotest.(list (option string))
    "close order and names"
    [ Some "b"; Some "a" ]
    (List.map
       (fun j ->
         match Json.member "name" j with Some (Json.String s) -> Some s | _ -> None)
       parsed);
  List.iter
    (fun j ->
      match Json.member "type" j with
      | Some (Json.String "span") -> ()
      | _ -> Alcotest.fail "missing type tag")
    parsed

(* census metrics snapshot: the `qsynth census --metrics FILE` payload *)

let test_census_metrics_snapshot () =
  fresh ();
  let library = Synthesis.Library.make (Mvl.Encoding.make ~qubits:3) in
  let census = Synthesis.Fmcf.run ~max_depth:3 library in
  let path = Filename.temp_file "census" ".json" in
  write_snapshot path;
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  let snap = Json.of_string contents in
  let series name =
    match Json.path [ "series"; name ] snap with
    | Some (Json.List items) ->
        List.map (function Json.Int i -> i | _ -> -1) items
    | _ -> Alcotest.fail ("missing series " ^ name)
  in
  (* the snapshot's per-level G[k] counts match the census itself (the
     printed Table 2 row) *)
  check
    Alcotest.(list int)
    "fmcf.level.g matches Table 2" [ 1; 6; 24; 51 ] (series "fmcf.level.g");
  check
    Alcotest.(list int)
    "fmcf.level.g agrees with Fmcf.counts"
    (List.map snd (Synthesis.Fmcf.counts census))
    (series "fmcf.level.g");
  check
    Alcotest.(list int)
    "paper-variant counts" [ 1; 6; 30; 52 ] (series "fmcf.level.paper_g");
  let frontier = series "fmcf.level.frontier" in
  checki "one frontier entry per level" 4 (List.length frontier);
  check Alcotest.(list int) "frontier sizes" [ 1; 18; 162; 1017 ] frontier;
  (* counters survived the trip *)
  match Json.path [ "counters"; "search.states.new" ] snap with
  | Some (Json.Int n) -> checki "state counter" (18 + 162 + 1017) n
  | _ -> Alcotest.fail "missing search.states.new counter"

(* O(1) census lookup regression (Fmcf.find via the func_key index) *)

let test_fmcf_find_index () =
  fresh ();
  set_enabled false;
  let library = Synthesis.Library.make (Mvl.Encoding.make ~qubits:3) in
  let census = Synthesis.Fmcf.run ~max_depth:4 library in
  List.iter
    (fun level ->
      List.iter
        (fun (m : Synthesis.Fmcf.member) ->
          match Synthesis.Fmcf.find census m.Synthesis.Fmcf.func with
          | Some found ->
              checki "find returns the member's own cost" m.Synthesis.Fmcf.cost
                found.Synthesis.Fmcf.cost
          | None -> Alcotest.fail "census member not found by find")
        level.Synthesis.Fmcf.members)
    (Synthesis.Fmcf.levels census);
  (* a function beyond the census depth is absent *)
  let missing = Reversible.Gates.toffoli3 in
  checkb "deep function absent from shallow census" true
    (Synthesis.Fmcf.find census missing = None)

let () =
  Alcotest.run "telemetry"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse" `Quick test_json_parse;
        ] );
      ( "instruments",
        [
          Alcotest.test_case "counter arithmetic" `Quick test_counter_arithmetic;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram arithmetic" `Quick test_histogram_arithmetic;
          Alcotest.test_case "histogram timing" `Quick test_histogram_time;
          Alcotest.test_case "series" `Quick test_series;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and timing" `Quick test_span_nesting_and_timing;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safety;
          Alcotest.test_case "jsonl export" `Quick test_jsonl_export;
        ] );
      ( "switch",
        [ Alcotest.test_case "disabled no-op" `Quick test_disabled_noop ] );
      ( "census",
        [
          Alcotest.test_case "metrics snapshot parses" `Quick
            test_census_metrics_snapshot;
          Alcotest.test_case "find uses the index" `Quick test_fmcf_find_index;
        ] );
    ]
