(* Total-coverage proof for the complete QSYNIDX2 index.

   The tentpole claim is that [Census_index.build_complete] turns a
   finished forward census into an index holding {e every} zero-fixing
   member of S8 — 5040 records whose 2^3 Theorem-2 NOT cosets cover all
   40320 members — so the planner can answer any realizable request with
   a binary search and treat a miss as a broken file, never as a reason
   to search.

   The spectrum asserted below (note the genuine gap at cost 11 and the
   diameter of 13) is cross-validated: sweeps from independent census
   horizons (depth 6 and depth 7) produce identical histograms, every
   witness replays to its claimed function under the multiple-valued
   gate semantics, and a seeded sample is re-derived here against a
   fresh meet-in-the-middle engine. *)

open Synthesis
open Reversible

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let library3 = Library.make (Mvl.Encoding.make ~qubits:3)
let census6 = lazy (Fmcf.run ~max_depth:6 ~jobs:2 library3)

let complete6 =
  lazy
    (match Census_index.build_complete ~jobs:4 (Lazy.force census6) with
    | Some (idx, swept) -> (idx, swept)
    | None -> Alcotest.fail "sweep cancelled without a cancellation request")

(* |G[k]| over the whole zero-fixing universe.  Empty at k = 11 yet
   inhabited at 12 and 13: legality (the reasonable-product rule)
   constrains which gate may follow which {e image vector}, and
   intermediate vectors may leave the binary block, so minimal-cost
   levels of the binary-permutation targets need not be contiguous. *)
let spectrum = [| 1; 6; 24; 51; 84; 156; 398; 540; 444; 1440; 552; 0; 1232; 112 |]
let universe = 5040
let coverage_s8 = 40320

let with_temp_file f =
  let path = Filename.temp_file "qsynth_cidx" ".bin" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".tmp" ])
    (fun () -> f path)

(* every zero-fixing function of S8, in lexicographic sweep order *)
let iter_universe f =
  let nb = 8 in
  let perm = Array.init (nb - 1) (fun i -> i + 1) in
  let next () =
    let n = Array.length perm in
    let swap i j =
      let t = perm.(i) in
      perm.(i) <- perm.(j);
      perm.(j) <- t
    in
    let i = ref (n - 2) in
    while !i >= 0 && perm.(!i) >= perm.(!i + 1) do
      decr i
    done;
    if !i < 0 then false
    else begin
      let j = ref (n - 1) in
      while perm.(!j) <= perm.(!i) do
        decr j
      done;
      swap !i !j;
      let l = ref (!i + 1) and r = ref (n - 1) in
      while !l < !r do
        swap !l !r;
        incr l;
        decr r
      done;
      true
    end
  in
  let continue = ref true in
  while !continue do
    f (Revfun.of_outputs ~bits:3 (0 :: Array.to_list perm));
    continue := next ()
  done

let realizes func cascade =
  Cascade.is_reasonable library3 cascade
  &&
  match Cascade.restriction library3 cascade with
  | Some f -> Revfun.equal f func
  | None -> false

let test_total_coverage () =
  let idx, swept = Lazy.force complete6 in
  checkb "complete" true (Census_index.is_complete idx);
  check Alcotest.int "size = (2^3 - 1)!" universe (Census_index.size idx);
  check Alcotest.int "coverage = |S8|" coverage_s8 (Census_index.coverage idx);
  check Alcotest.int "census + sweep partition the universe"
    (universe - Fmcf.total_found (Lazy.force census6))
    swept;
  check Alcotest.int "depth = max cost" 13 (Census_index.depth idx);
  check Alcotest.(array int) "spectrum" spectrum (Census_index.histogram idx);
  (* the histogram is the census's own Table 2 within the horizon *)
  List.iter
    (fun (cost, n) ->
      check Alcotest.int
        (Printf.sprintf "|G[%d]| matches the census" cost)
        n spectrum.(cost))
    (Fmcf.counts (Lazy.force census6));
  (* every member of the universe answers, and no probe ever misses *)
  let seen = Array.make (Array.length spectrum) 0 in
  let total = ref 0 in
  iter_universe (fun func ->
      incr total;
      match Census_index.find idx func with
      | None -> Alcotest.fail "complete index missed a zero-fixing function"
      | Some (cost, _) -> seen.(cost) <- seen.(cost) + 1);
  check Alcotest.int "universe enumerated" universe !total;
  check Alcotest.(array int) "per-cost lookup counts" spectrum seen

let test_sampled_costs_against_fresh_engine () =
  let idx, _ = Lazy.force complete6 in
  (* an independent engine, warmed from scratch, must agree on cost and
     accept the stored witness — a seeded stride covers every cost level
     including the deep post-census tail *)
  let engine = Bidir.create ~max_fwd_depth:7 library3 in
  Bidir.warm engine ~depth:5;
  let i = ref 0 and checked = ref 0 in
  iter_universe (fun func ->
      if !i mod 97 = 0 then begin
        incr checked;
        match Census_index.find idx func with
        | None -> Alcotest.fail "sampled function missing"
        | Some (cost, witness) -> (
            checkb "stored witness realizes its function" true
              (realizes func witness);
            check Alcotest.int "witness length = cost" cost
              (List.length witness);
            match Bidir.synthesize ~max_cost:15 engine func with
            | None -> Alcotest.fail "fresh engine found nothing"
            | Some o ->
                check Alcotest.int "fresh engine agrees on cost" cost
                  o.Bidir.cost)
      end;
      incr i);
  checkb "sample non-trivial" true (!checked >= 50)

let test_deterministic_bytes_across_jobs_and_quotient () =
  (* the sweep commits results by function position and the NOT-coset
     factor is enumerated, so the same census horizon must serialize to
     the same bytes no matter how the work was parallelized or whether
     the census ran under the symmetry quotient *)
  let idx_raw, _ = Lazy.force complete6 in
  let census_q = Fmcf.run ~max_depth:6 ~quotient:true library3 in
  let idx_q, swept_q =
    match Census_index.build_complete ~jobs:1 census_q with
    | Some r -> r
    | None -> Alcotest.fail "quotient sweep cancelled"
  in
  check Alcotest.int "quotient census sweeps the same set"
    (universe - Fmcf.total_found (Lazy.force census6))
    swept_q;
  with_temp_file @@ fun path_raw ->
  with_temp_file @@ fun path_q ->
  Census_index.save idx_raw path_raw;
  Census_index.save idx_q path_q;
  checkb "raw/jobs=4 and quotient/jobs=1 files byte-identical" true
    (Checkpoint.read_file path_raw = Checkpoint.read_file path_q)

let test_mmap_and_heap_loaders_agree () =
  let idx, _ = Lazy.force complete6 in
  with_temp_file @@ fun path ->
  Census_index.save idx path;
  let heap = Census_index.load library3 path in
  let map = Census_index.load_mmap library3 path in
  checkb "heap loader not mapped" false (Census_index.mapped heap);
  checkb "mmap loader mapped" true (Census_index.mapped map);
  (* the full-replay verification must also accept both *)
  ignore (Census_index.load ~verify:Census_index.Full library3 path);
  ignore (Census_index.load_mmap ~verify:Census_index.Full library3 path);
  List.iter
    (fun loaded ->
      checkb "complete" true (Census_index.is_complete loaded);
      check Alcotest.int "size" (Census_index.size idx)
        (Census_index.size loaded);
      check Alcotest.int "depth" (Census_index.depth idx)
        (Census_index.depth loaded);
      check Alcotest.int "coverage" (Census_index.coverage idx)
        (Census_index.coverage loaded);
      check Alcotest.(array int) "histogram" (Census_index.histogram idx)
        (Census_index.histogram loaded))
    [ heap; map ];
  (* byte-identical answers record by record *)
  let i = ref 0 in
  iter_universe (fun func ->
      if !i mod 11 = 0 then begin
        let a = Census_index.find heap func in
        let b = Census_index.find map func in
        if a <> b then Alcotest.fail "heap and mmap probes disagree"
      end;
      incr i)

let test_solve_always_hits () =
  let idx, _ = Lazy.force complete6 in
  (* with a complete index every realizable request is answered by a
     probe — across all 8 NOT cosets, with no bidir context supplied and
     no silent fallback possible *)
  let spec_of func =
    String.concat ","
      (List.init 8 (fun j -> string_of_int (Revfun.apply func j)))
  in
  let rng = Random.State.make [| 0x51dec0de |] in
  for _ = 1 to 64 do
    let outputs = Array.init 8 Fun.id in
    for j = 7 downto 1 do
      let k = Random.State.int rng (j + 1) in
      let t = outputs.(j) in
      outputs.(j) <- outputs.(k);
      outputs.(k) <- t
    done;
    let func = Revfun.of_outputs ~bits:3 (Array.to_list outputs) in
    let mask, remainder = Mce.strip_not_layer func in
    let request = Mce.Request.make ~max_depth:13 (spec_of func) in
    let response = Mce.solve ~index:idx library3 request in
    match response.Mce.Response.body with
    | Ok { plan; payload = Synthesized { cost; cascade; not_mask; _ } } ->
        let expected_plan =
          if Revfun.equal remainder (Revfun.identity ~bits:3) then
            Mce.Response.Trivial
          else Mce.Response.Index_hit
        in
        checkb "plan is a probe, never a search" true (plan = expected_plan);
        check Alcotest.int "NOT layer enumerated, not searched" mask not_mask;
        (match Census_index.find idx remainder with
        | Some (c, _) -> check Alcotest.int "cost matches the record" c cost
        | None -> Alcotest.fail "remainder missing from the complete index");
        checkb "cascade realizes the remainder" true (realizes remainder cascade)
    | Ok _ -> Alcotest.fail "unexpected payload"
    | Error _ -> Alcotest.fail "solve failed on a realizable request"
  done

let test_solve_certifies_beyond_depth_bound () =
  let idx, _ = Lazy.force complete6 in
  (* a cost-13 function under the default cb = 7: the probe's exact cost
     proves unrealizability within the bound without any search *)
  let deep = ref None in
  iter_universe (fun func ->
      if !deep = None then
        match Census_index.find idx func with
        | Some (13, _) -> deep := Some func
        | _ -> ());
  let func = Option.get !deep in
  let spec =
    String.concat ","
      (List.init 8 (fun j -> string_of_int (Revfun.apply func j)))
  in
  (match (Mce.solve ~index:idx library3 (Mce.Request.make ~max_depth:7 spec)).Mce.Response.body with
  | Ok { plan = Mce.Response.Index_certified; payload = Unrealizable { max_depth = 7 } } -> ()
  | Ok _ -> Alcotest.fail "expected a certified unrealizable answer"
  | Error _ -> Alcotest.fail "certification failed");
  (* and raising the bound to the diameter turns it into a hit *)
  match (Mce.solve ~index:idx library3 (Mce.Request.make ~max_depth:13 spec)).Mce.Response.body with
  | Ok { plan = Mce.Response.Index_hit; payload = Synthesized { cost = 13; _ } } -> ()
  | Ok _ -> Alcotest.fail "expected an index hit at the diameter"
  | Error _ -> Alcotest.fail "hit failed"

let () =
  Alcotest.run "complete_index"
    [
      ( "complete index",
        [
          Alcotest.test_case "total coverage of the zero-fixing universe"
            `Quick test_total_coverage;
          Alcotest.test_case "sampled costs agree with a fresh engine" `Quick
            test_sampled_costs_against_fresh_engine;
          Alcotest.test_case "byte-identical across jobs and quotient" `Quick
            test_deterministic_bytes_across_jobs_and_quotient;
          Alcotest.test_case "mmap and heap loaders agree" `Quick
            test_mmap_and_heap_loaders_agree;
        ] );
      ( "planner",
        [
          Alcotest.test_case "every S8 request answers as a probe" `Quick
            test_solve_always_hits;
          Alcotest.test_case "probe cost certifies depth bounds" `Quick
            test_solve_certifies_beyond_depth_bound;
        ] );
    ]
