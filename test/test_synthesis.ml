(* Tests for the core synthesis library: gates, the compiled library,
   cascades, the BFS engine, FMCF, MCE, universality and verification. *)

open Synthesis

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let perm = Alcotest.testable Permgroup.Perm.pp Permgroup.Perm.equal
let revfun = Alcotest.testable Reversible.Revfun.pp Reversible.Revfun.equal

let qcheck_test ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let encoding3 = Mvl.Encoding.make ~qubits:3
let library3 = Library.make encoding3

(* One shared depth-7 census: several suites read from it. *)
let census7 = lazy (Fmcf.run ~max_depth:7 library3)

let gate_gen =
  QCheck2.Gen.(
    map
      (fun i -> List.nth (Gate.all ~qubits:3) (abs i mod 18))
      int)

let cascade_gen = QCheck2.Gen.(list_size (int_range 0 6) gate_gen)

(* Gate *)

let test_gate_all () =
  check Alcotest.int "18 gates for 3 qubits" 18 (List.length (Gate.all ~qubits:3));
  check Alcotest.int "6 gates for 2 qubits" 6 (List.length (Gate.all ~qubits:2));
  check Alcotest.int "36 gates for 4 qubits" 36 (List.length (Gate.all ~qubits:4))

let test_gate_names () =
  let vba = Gate.make Gate.Controlled_v ~target:1 ~control:0 in
  check Alcotest.string "VBA" "VBA" (Gate.name vba);
  check Alcotest.string "V+AB" "V+AB"
    (Gate.name (Gate.make Gate.Controlled_v_dag ~target:0 ~control:1));
  check Alcotest.string "FCA" "FCA"
    (Gate.name (Gate.make Gate.Feynman ~target:2 ~control:0));
  checkb "roundtrip" true (Gate.equal vba (Gate.of_name ~qubits:3 "VBA"));
  checkb "case insensitive" true (Gate.equal vba (Gate.of_name ~qubits:3 "vba"))

let test_gate_name_errors () =
  List.iter
    (fun s ->
      checkb s true
        (match Gate.of_name ~qubits:3 s with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [ "XAB"; "V"; "VAD"; "VAA"; "FABC" ]

let test_gate_adjoint () =
  let vba = Gate.make Gate.Controlled_v ~target:1 ~control:0 in
  check Alcotest.string "adjoint kind" "V+BA" (Gate.name (Gate.adjoint vba));
  checkb "involution" true (Gate.equal vba (Gate.adjoint (Gate.adjoint vba)));
  let fab = Gate.make Gate.Feynman ~target:0 ~control:1 in
  checkb "feynman self-adjoint" true (Gate.equal fab (Gate.adjoint fab))

let test_gate_purity () =
  let vba = Gate.make Gate.Controlled_v ~target:1 ~control:0 in
  check (Alcotest.list Alcotest.int) "controlled purity" [ 0 ] (Gate.purity_wires vba);
  check Alcotest.int "mask" 1 (Gate.purity_mask vba);
  let fca = Gate.make Gate.Feynman ~target:2 ~control:0 in
  check (Alcotest.list Alcotest.int) "feynman purity" [ 0; 2 ] (Gate.purity_wires fca);
  check Alcotest.int "mask" 5 (Gate.purity_mask fca)

let test_gate_apply_dont_care () =
  let vba = Gate.make Gate.Controlled_v ~target:1 ~control:0 in
  let mixed_control = Mvl.Pattern.of_list [ Mvl.Quat.V0; Mvl.Quat.One; Mvl.Quat.Zero ] in
  checkb "mixed control is identity" true
    (Mvl.Pattern.equal mixed_control (Gate.apply vba mixed_control))

let test_gate_errors () =
  Alcotest.check_raises "same wire" (Invalid_argument "Gate.make: target equals control")
    (fun () -> ignore (Gate.make Gate.Feynman ~target:1 ~control:1))

let gate_props =
  [
    qcheck_test "name roundtrip" gate_gen (fun g ->
        Gate.equal g (Gate.of_name ~qubits:3 (Gate.name g)));
    qcheck_test "adjoint matrix is matrix adjoint" gate_gen (fun g ->
        Qmath.Dmatrix.equal
          (Gate.matrix ~qubits:3 (Gate.adjoint g))
          (Qmath.Dmatrix.adjoint (Gate.matrix ~qubits:3 g)));
    qcheck_test "gate matrices unitary" gate_gen (fun g ->
        Qmath.Dmatrix.is_unitary (Gate.matrix ~qubits:3 g));
    qcheck_test "gate perm order divides 4" gate_gen (fun g ->
        let order = Permgroup.Perm.order (Library.perm_of_gate library3 g) in
        order = 1 || order = 2 || order = 4);
  ]

(* Library *)

let test_library_paper_perms () =
  let expect name cycles =
    check perm name
      (Permgroup.Cycles.of_string ~degree:38 cycles)
      (Library.perm_of_gate library3 (Gate.of_name ~qubits:3 name))
  in
  expect "VBA" "(5,17,7,21)(6,18,8,22)(13,19,15,23)(14,20,16,24)";
  expect "V+AB" "(3,33,7,26)(4,34,8,27)(9,35,15,28)(10,36,16,29)";
  expect "FCA" "(5,6)(7,8)(17,18)(21,22)"

let test_library_banned_sets () =
  let banned name =
    List.map (fun p -> p + 1) (Library.banned_set library3 (Gate.of_name ~qubits:3 name))
  in
  check (Alcotest.list Alcotest.int) "N_A for VBA"
    [ 25; 26; 27; 28; 29; 30; 31; 32; 33; 34; 35; 36; 37; 38 ]
    (banned "VBA");
  check (Alcotest.list Alcotest.int) "N_AB for FAB"
    [ 11; 12; 17; 18; 19; 20; 21; 22; 23; 24; 25; 26; 27; 28; 29; 30; 31; 32; 33; 34;
      35; 36; 37; 38 ]
    (banned "FAB");
  check (Alcotest.list Alcotest.int) "N_BC for FCB"
    [ 9; 10; 11; 12; 13; 14; 15; 16; 17; 18; 19; 20; 21; 22; 23; 24; 28; 29; 30; 31;
      35; 36; 37; 38 ]
    (banned "FCB")

let test_library_feynman_only () =
  check Alcotest.int "6 feynman gates" 6 (Library.size (Library.feynman_only library3))

let test_library_signature () =
  let entry = Library.entry_of_gate library3 (Gate.of_name ~qubits:3 "VBA") in
  checkb "pure signature allowed" true (Library.signature_allows ~signature:0 entry);
  checkb "mixed control banned" false (Library.signature_allows ~signature:1 entry);
  checkb "mixed elsewhere fine" true (Library.signature_allows ~signature:6 entry)

let test_library_gate_perms_fix_no_one_patterns () =
  (* Points outside the domain were dropped because gates fix them; inside
     the domain every gate must be a bijection (checked at build) and the
     all-zero point must be fixed by every gate. *)
  Array.iter
    (fun entry ->
      check Alcotest.int "zero fixed" 0 (Permgroup.Perm.apply entry.Library.perm 0))
    (Library.entries library3)

(* Cascade *)

let paper_peres = Cascade.of_string ~qubits:3 "VCB*FBA*VCA*V+CB"

let test_cascade_parse_print () =
  check Alcotest.string "roundtrip" "VCB*FBA*VCA*V+CB" (Cascade.to_string paper_peres);
  check Alcotest.int "cost 4" 4 (Cascade.cost paper_peres);
  checkb "empty" true (Cascade.equal [] (Cascade.of_string ~qubits:3 "()"));
  check Alcotest.string "empty prints" "()" (Cascade.to_string [])

let test_cascade_weighted_cost () =
  (* An NMR-style cost model: V gates cheaper than Feynman. *)
  let gate_cost g = match Gate.kind g with Gate.Feynman -> 2 | _ -> 1 in
  check Alcotest.int "weighted" 5 (Cascade.weighted_cost ~gate_cost paper_peres)

let test_cascade_restriction () =
  (match Cascade.restriction library3 paper_peres with
  | Some f -> check revfun "peres" Reversible.Gates.g1 f
  | None -> Alcotest.fail "peres cascade restricts");
  checkb "lone V has no restriction" true
    (Cascade.restriction library3 (Cascade.of_string ~qubits:3 "VBA") = None)

let test_cascade_reasonable () =
  checkb "paper peres reasonable" true (Cascade.is_reasonable library3 paper_peres);
  (* V_BA leaves B mixed on binary inputs; a Feynman on B then violates
     Definition 1. *)
  checkb "unreasonable detected" false
    (Cascade.is_reasonable library3 (Cascade.of_string ~qubits:3 "VBA*FBA"));
  checkb "empty reasonable" true (Cascade.is_reasonable library3 [])

let test_cascade_swap_v_dag () =
  check Alcotest.string "figure 8" "V+CB*FBA*V+CA*VCB"
    (Cascade.to_string (Cascade.swap_v_dag paper_peres));
  checkb "involution" true
    (Cascade.equal paper_peres (Cascade.swap_v_dag (Cascade.swap_v_dag paper_peres)))

let cascade_props =
  [
    qcheck_test "string roundtrip" cascade_gen (fun c ->
        Cascade.equal c (Cascade.of_string ~qubits:3 (Cascade.to_string c)));
    qcheck_test "adjoint inverts the permutation" cascade_gen (fun c ->
        Permgroup.Perm.equal
          (Cascade.perm_of library3 (Cascade.adjoint c))
          (Permgroup.Perm.inverse (Cascade.perm_of library3 c)));
    qcheck_test "adjoint inverts the unitary" ~count:40 cascade_gen (fun c ->
        Qmath.Dmatrix.equal
          (Cascade.unitary ~qubits:3 (Cascade.adjoint c))
          (Qmath.Dmatrix.adjoint (Cascade.unitary ~qubits:3 c)));
    qcheck_test "unitary is unitary" ~count:40 cascade_gen (fun c ->
        Qmath.Dmatrix.is_unitary (Cascade.unitary ~qubits:3 c));
    qcheck_test "perm compose splits" (QCheck2.Gen.pair cascade_gen cascade_gen)
      (fun (a, b) ->
        Permgroup.Perm.equal
          (Cascade.perm_of library3 (a @ b))
          (Permgroup.Perm.mul (Cascade.perm_of library3 a) (Cascade.perm_of library3 b)));
  ]

(* Search *)

let test_search_levels () =
  let search = Search.create library3 in
  check Alcotest.int "B1" 18 (List.length (Search.step search));
  check Alcotest.int "B2" 162 (List.length (Search.step search));
  check Alcotest.int "B3" 1017 (List.length (Search.step search));
  check Alcotest.int "size after 3 levels" (1 + 18 + 162 + 1017) (Search.size search)

let test_search_factorization () =
  let search = Search.create library3 in
  ignore (Search.step search);
  ignore (Search.step search);
  List.iter
    (fun key ->
      let cascade = Search.cascade_of_key search key in
      check Alcotest.int "cascade length = depth" 2 (Cascade.cost cascade);
      check perm "cascade rebuilds the permutation" (Search.perm_of_key key)
        (Cascade.perm_of library3 cascade);
      checkb "cascade reasonable" true (Cascade.is_reasonable library3 cascade))
    (List.filteri (fun i _ -> i < 20) (Search.frontier search))

let test_search_all_cascades () =
  let search = Search.create library3 in
  ignore (Search.step search);
  ignore (Search.step search);
  let key = List.hd (Search.frontier search) in
  let all = Search.all_cascades search key in
  checkb "non-empty" true (all <> []);
  checkb "recorded cascade among them" true
    (List.exists (Cascade.equal (Search.cascade_of_key search key)) all);
  List.iter
    (fun c ->
      check perm "same permutation" (Search.perm_of_key key)
        (Cascade.perm_of library3 c))
    all

let test_search_probe_matches_census () =
  (* Probing 1 and 2 levels past a depth-2 search recovers exactly the
     new functions of G[3] and G[4]. *)
  let census = Lazy.force census7 in
  let search = Search.create library3 in
  ignore (Search.step search);
  ignore (Search.step search);
  let known = Hashtbl.create 64 in
  List.iter
    (fun cost ->
      List.iter
        (fun (m : Fmcf.member) ->
          Hashtbl.replace known (Permgroup.Perm.key (Reversible.Revfun.to_perm m.Fmcf.func)) ())
        (Fmcf.members_at census ~cost))
    [ 0; 1; 2 ];
  let fresh probe =
    Hashtbl.fold (fun k () acc -> if Hashtbl.mem known k then acc else k :: acc) probe []
  in
  let level3 = fresh (Search.probe_restrictions search ~steps:1) in
  check Alcotest.int "G[3] via probe" 51 (List.length level3);
  List.iter (fun k -> Hashtbl.replace known k ()) level3;
  let level4 = fresh (Search.probe_restrictions search ~steps:2) in
  check Alcotest.int "G[4] via probe" 84 (List.length level4);
  checkb "steps out of range" true
    (match Search.probe_restrictions search ~steps:3 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_search_restriction_of_key () =
  let search = Search.create library3 in
  let root = List.hd (Search.frontier search) in
  (match Search.restriction_of_key search root with
  | Some f -> checkb "root is identity" true (Reversible.Revfun.is_identity f)
  | None -> Alcotest.fail "root restricts");
  check (Alcotest.option Alcotest.int) "root depth" (Some 0)
    (Search.depth_of_key search root)

(* FMCF *)

let test_fmcf_counts () =
  let census = Lazy.force census7 in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "as-specified counts"
    [ (0, 1); (1, 6); (2, 24); (3, 51); (4, 84); (5, 156); (6, 398); (7, 540) ]
    (Fmcf.counts census)

let test_fmcf_paper_counts () =
  let census = Lazy.force census7 in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "paper's Table 2"
    [ (0, 1); (1, 6); (2, 30); (3, 52); (4, 84); (5, 156); (6, 398); (7, 540) ]
    (Fmcf.paper_counts census)

let test_fmcf_s8_counts () =
  let census = Lazy.force census7 in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "Table 2 bottom row (as-specified semantics)"
    [ (0, 8); (1, 48); (2, 192); (3, 408); (4, 672); (5, 1248); (6, 3184); (7, 4320) ]
    (Fmcf.s8_counts census)

let test_fmcf_level1_is_cnots () =
  let census = Lazy.force census7 in
  let level1 = List.map (fun m -> m.Fmcf.func) (Fmcf.members_at census ~cost:1) in
  check Alcotest.int "6 members" 6 (List.length level1);
  List.iter
    (fun f -> checkb "is a cnot" true (List.exists (Reversible.Revfun.equal f) level1))
    (Universality.cnots ~bits:3)

let test_fmcf_total () =
  let census = Lazy.force census7 in
  check Alcotest.int "1260 functions within cost 7" 1260 (Fmcf.total_found census)

let test_fmcf_find () =
  let census = Lazy.force census7 in
  (match Fmcf.find census Reversible.Gates.toffoli3 with
  | Some m -> check Alcotest.int "toffoli cost 5" 5 m.Fmcf.cost
  | None -> Alcotest.fail "toffoli in census");
  (match Fmcf.find census Reversible.Gates.g1 with
  | Some m -> check Alcotest.int "peres cost 4" 4 m.Fmcf.cost
  | None -> Alcotest.fail "peres in census");
  match Fmcf.find census Reversible.Gates.fredkin3 with
  | Some m -> check Alcotest.int "fredkin cost 7" 7 m.Fmcf.cost
  | None -> Alcotest.fail "fredkin is within cost 7"

let test_fmcf_witnesses_verify () =
  (* Spot-check: the witness cascade of every cost<=4 member implements
     its function, exactly. *)
  let census = Lazy.force census7 in
  List.iter
    (fun cost ->
      List.iter
        (fun (m : Fmcf.member) ->
          let cascade = Fmcf.cascade_of_member census m in
          check Alcotest.int "cost matches" m.Fmcf.cost (Cascade.cost cascade);
          checkb "reasonable" true (Cascade.is_reasonable library3 cascade);
          checkb "implements" true
            (Verify.cascade_implements ~qubits:3 cascade m.Fmcf.func))
        (Fmcf.members_at census ~cost))
    [ 0; 1; 2; 3; 4 ]

let test_fmcf_members_fix_zero () =
  (* Theorem 2: NOT-free circuits all fix the all-zero pattern. *)
  let census = Lazy.force census7 in
  List.iter
    (fun level ->
      List.iter
        (fun (m : Fmcf.member) ->
          checkb "fixes zero" true (Reversible.Revfun.fixes_zero m.Fmcf.func))
        level.Fmcf.members)
    (Fmcf.levels census)

(* MCE *)

let test_mce_identity () =
  match Mce.express library3 (Reversible.Revfun.identity ~bits:3) with
  | Some r ->
      check Alcotest.int "cost 0" 0 r.Mce.cost;
      check Alcotest.int "mask 0" 0 r.Mce.not_mask
  | None -> Alcotest.fail "identity expressible"

let test_mce_not_layer () =
  match Mce.express library3 (Reversible.Revfun.xor_layer ~bits:3 5) with
  | Some r ->
      check Alcotest.int "cost 0" 0 r.Mce.cost;
      check Alcotest.int "mask 5" 5 r.Mce.not_mask;
      checkb "valid" true (Verify.result_valid library3 r)
  | None -> Alcotest.fail "NOT layer expressible"

let test_mce_costs () =
  let expect name target cost =
    match Mce.express library3 target with
    | Some r ->
        check Alcotest.int (name ^ " cost") cost r.Mce.cost;
        checkb (name ^ " valid") true (Verify.result_valid library3 r)
    | None -> Alcotest.fail (name ^ " not expressible")
  in
  expect "cnot" (Reversible.Gates.cnot ~bits:3 ~control:0 ~target:1) 1;
  expect "swap AB" (Reversible.Gates.swap ~bits:3 ~wire1:0 ~wire2:1) 3;
  expect "peres" Reversible.Gates.g1 4;
  expect "g2" Reversible.Gates.g2 4;
  expect "g3" Reversible.Gates.g3 4;
  expect "g4" Reversible.Gates.g4 4;
  expect "toffoli" Reversible.Gates.toffoli3 5

let test_mce_with_not_layer () =
  (* A target that moves zero: NOT on A composed with CNOT. *)
  let target =
    Reversible.Revfun.compose
      (Reversible.Revfun.xor_layer ~bits:3 4)
      (Reversible.Gates.cnot ~bits:3 ~control:0 ~target:2)
  in
  match Mce.express library3 target with
  | Some r ->
      checkb "mask nonzero" true (r.Mce.not_mask <> 0);
      checkb "valid" true (Verify.result_valid library3 r)
  | None -> Alcotest.fail "expressible"

let test_mce_witness_counts () =
  check Alcotest.int "peres 2 witnesses" 2
    (Mce.distinct_witnesses library3 Reversible.Gates.g1);
  check Alcotest.int "toffoli 4 witnesses" 4
    (Mce.distinct_witnesses library3 Reversible.Gates.toffoli3)

let test_mce_all_realizations () =
  let results = Mce.all_realizations library3 Reversible.Gates.toffoli3 in
  check Alcotest.int "40 minimal toffoli cascades" 40 (List.length results);
  checkb "all cost 5" true (List.for_all (fun r -> r.Mce.cost = 5) results);
  checkb "all valid" true (List.for_all (Verify.result_valid library3) results);
  (* All four printed circuits of Figure 9 occur. *)
  List.iter
    (fun printed ->
      let cascade = Cascade.of_string ~qubits:3 printed in
      checkb printed true
        (List.exists (fun r -> Cascade.equal r.Mce.cascade cascade) results))
    [
      "FBA*V+CB*FBA*VCA*VCB";
      "FBA*VCB*FBA*V+CA*V+CB";
      "FAB*V+CA*FAB*VCA*VCB";
      "FAB*VCA*FAB*V+CA*V+CB";
    ]

let test_mce_strip_not_layer () =
  let target = Reversible.Revfun.xor_layer ~bits:3 3 in
  let mask, remainder = Mce.strip_not_layer target in
  check Alcotest.int "mask" 3 mask;
  checkb "remainder identity" true (Reversible.Revfun.is_identity remainder)

let test_mce_depth_bound () =
  checkb "fredkin not found at depth 5" true
    (Mce.express ~max_depth:5 library3 Reversible.Gates.fredkin3 = None)

let mce_props =
  [
    qcheck_test ~count:25 "census costs agree with express"
      QCheck2.Gen.(int_range 0 10_000)
      (fun seed ->
        let census = Lazy.force census7 in
        (* pick a pseudo-random member of a pseudo-random level *)
        let level = (seed mod 5) + 1 in
        let members = Fmcf.members_at census ~cost:level in
        let m = List.nth members (seed * 7 mod List.length members) in
        match Mce.express library3 m.Fmcf.func with
        | Some r -> r.Mce.cost = level && r.Mce.not_mask = 0
        | None -> false);
  ]

(* Universality *)

let test_split_g4 () =
  let census = Lazy.force census7 in
  let linear, family = Universality.split_g4 census in
  check Alcotest.int "60 linear" 60 (List.length linear);
  check Alcotest.int "24 family" 24 (List.length family)

let test_universality_of_family () =
  let census = Lazy.force census7 in
  let _, family = Universality.split_g4 census in
  checkb "all 24 universal" true
    (List.for_all (fun (m : Fmcf.member) -> Universality.is_universal m.Fmcf.func) family)

let test_non_universal () =
  checkb "cnot not universal" false
    (Universality.is_universal (Reversible.Gates.cnot ~bits:3 ~control:0 ~target:1));
  checkb "identity not universal" false
    (Universality.is_universal (Reversible.Revfun.identity ~bits:3));
  checkb "toffoli IS universal" true (Universality.is_universal Reversible.Gates.toffoli3)

let test_wire_orbits () =
  let census = Lazy.force census7 in
  let _, family = Universality.split_g4 census in
  let orbits =
    Universality.wire_orbits (List.map (fun (m : Fmcf.member) -> m.Fmcf.func) family)
  in
  check (Alcotest.list Alcotest.int) "4 orbits of 6" [ 6; 6; 6; 6 ]
    (List.map List.length orbits);
  (* g1..g4 land in distinct orbits *)
  let reps = [ Reversible.Gates.g1; Reversible.Gates.g2; Reversible.Gates.g3;
               Reversible.Gates.g4 ] in
  List.iter
    (fun g ->
      check Alcotest.int "each gi in exactly one orbit" 1
        (List.length (List.filter (List.exists (Reversible.Revfun.equal g)) orbits)))
    reps

let test_relabel_wires () =
  let sigma = [| 1; 0; 2 |] in
  let relabeled = Universality.relabel_wires (Reversible.Gates.cnot ~bits:3 ~control:0 ~target:1) sigma in
  check revfun "cnot relabeled" (Reversible.Gates.cnot ~bits:3 ~control:1 ~target:0) relabeled;
  let idperm = [| 0; 1; 2 |] in
  check revfun "identity relabel" Reversible.Gates.g1
    (Universality.relabel_wires Reversible.Gates.g1 idperm)

let test_linear_functions () =
  let linear = Universality.linear_functions ~bits:3 in
  check Alcotest.int "GL(3,2) order" 168 (Permgroup.Closure.size linear);
  checkb "toffoli not linear" false
    (Permgroup.Closure.mem linear (Reversible.Revfun.to_perm Reversible.Gates.toffoli3))

let test_theorem2 () =
  let g, h = Universality.theorem2_check ~bits:3 in
  check Alcotest.int "|G|" 5040 g;
  check Alcotest.int "|S8|" 40320 h;
  let g2, h2 = Universality.theorem2_check ~bits:2 in
  check Alcotest.int "|G| n=2" 6 g2;
  check Alcotest.int "|S4|" 24 h2

let test_group_order () =
  check Alcotest.int "<cnots, peres> = 5040" 5040
    (Universality.group_order ~bits:3
       (Reversible.Gates.g1 :: Universality.cnots ~bits:3));
  check Alcotest.int "<cnots> = 168" 168
    (Universality.group_order ~bits:3 (Universality.cnots ~bits:3))

(* Verify *)

let test_verify_paper_figures () =
  List.iter
    (fun (cascade, target) ->
      let c = Cascade.of_string ~qubits:3 cascade in
      checkb cascade true (Verify.cascade_implements ~qubits:3 c target);
      checkb (cascade ^ " mv-sound") true (Verify.mv_agrees_with_unitary library3 c))
    [
      ("VCB*FBA*VCA*V+CB", Reversible.Gates.g1);
      ("V+CB*FBA*V+CA*VCB", Reversible.Gates.g1);
      ("V+BC*FCA*VBA*VBC", Reversible.Gates.g2);
      ("VCB*FBA*V+CA*VCB", Reversible.Gates.g3);
      ("VCB*FBA*VCA*VCB", Reversible.Gates.g4);
      ("FBA*V+CB*FBA*VCA*VCB", Reversible.Gates.toffoli3);
      ("FBA*VCB*FBA*V+CA*V+CB", Reversible.Gates.toffoli3);
      ("FAB*V+CA*FAB*VCA*VCB", Reversible.Gates.toffoli3);
      ("FAB*VCA*FAB*V+CA*V+CB", Reversible.Gates.toffoli3);
    ]

let test_verify_negative () =
  (* A wrong cascade must be rejected. *)
  let c = Cascade.of_string ~qubits:3 "FBA" in
  checkb "cnot is not toffoli" false
    (Verify.cascade_implements ~qubits:3 c Reversible.Gates.toffoli3);
  (* A non-permutative cascade has no classical function. *)
  checkb "lone V not classical" true
    (Verify.classical_function ~qubits:3 (Cascade.of_string ~qubits:3 "VBA") = None)

let test_verify_not_mask () =
  let target = Reversible.Revfun.xor_layer ~bits:3 7 in
  checkb "pure NOT layer" true
    (Verify.cascade_implements ~qubits:3 ~not_mask:7 [] target)

let test_trajectory_purity () =
  let peres = paper_peres in
  checkb "binary input pure" true
    (Verify.trajectory_is_pure peres (Mvl.Pattern.of_binary_code ~qubits:3 7));
  (* input with V on wire B: the first gate V_CB needs B pure *)
  let mixed = Mvl.Pattern.of_list [ Mvl.Quat.One; Mvl.Quat.V0; Mvl.Quat.Zero ] in
  checkb "mixed control impure" false (Verify.trajectory_is_pure peres mixed)

(* Library plugins: the NCT/NFT classical universes behind the registry *)

let has_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_classical_gate_names () =
  List.iter
    (fun s ->
      let g = Gate.of_name ~qubits:3 s in
      check Alcotest.string "name round-trip" s (Gate.name g))
    [ "NA"; "NB"; "NC"; "TABC"; "TBAC"; "TCAB"; "SAB"; "SBC"; "FRBCA" ];
  (* canonicalization: controls and swapped pairs are order-insensitive *)
  checkb "Toffoli controls sorted" true
    (Gate.equal (Gate.of_name ~qubits:3 "TABC") (Gate.of_name ~qubits:3 "TACB"));
  checkb "Swap wires sorted" true
    (Gate.equal (Gate.of_name ~qubits:3 "SAB") (Gate.of_name ~qubits:3 "SBA"));
  checkb "Fredkin pair sorted" true
    (Gate.equal (Gate.of_name ~qubits:3 "FRBCA") (Gate.of_name ~qubits:3 "FRCBA"));
  (* classical gates are involutions *)
  List.iter
    (fun s ->
      let g = Gate.of_name ~qubits:3 s in
      checkb (s ^ " self-adjoint") true (Gate.equal g (Gate.adjoint g)))
    [ "NA"; "TABC"; "SAB"; "FRBCA" ]

let test_classical_gate_matrices () =
  (* Hand-computed permutation matrices over the computational basis,
     qubit 0 = most significant bit (A = 4, B = 2, C = 1). *)
  let expect name img =
    check
      (Alcotest.testable Qmath.Dmatrix.pp Qmath.Dmatrix.equal)
      name
      (Qmath.Dmatrix.permutation_matrix img)
      (Gate.matrix ~qubits:3 (Gate.of_name ~qubits:3 name))
  in
  expect "NA" [| 4; 5; 6; 7; 0; 1; 2; 3 |];
  expect "TCAB" [| 0; 1; 2; 3; 4; 5; 7; 6 |];
  expect "TABC" [| 0; 1; 2; 7; 4; 5; 6; 3 |];
  expect "SAB" [| 0; 1; 4; 5; 2; 3; 6; 7 |];
  expect "FRBCA" [| 0; 1; 2; 3; 4; 6; 5; 7 |]

let test_library_registry () =
  check
    (Alcotest.list Alcotest.string)
    "registry names" [ "paper18"; "nct"; "nft" ] Library.Registry.names;
  checkb "unknown name raises, listing the registry" true
    (match Library.of_name "bogus" with
    | exception Invalid_argument msg -> has_sub msg "paper18"
    | _ -> false);
  (* paper18 through the registry is the historical default library:
     same name, same structural fingerprint, coset reduction on. *)
  let p18 = Library.of_name "paper18" in
  check Alcotest.string "default name" Library.default_name (Library.name p18);
  check Alcotest.int64 "paper18 fingerprint unchanged"
    (Checkpoint.fingerprint library3) (Checkpoint.fingerprint p18);
  checkb "paper18 coset reduction" true (Library.coset_reduction p18);
  let nct = Library.of_name "nct" and nft = Library.of_name "nft" in
  check Alcotest.int "nct gate count" 12 (Library.size nct);
  check Alcotest.int "nft gate count" 18 (Library.size nft);
  checkb "nct full-group" false (Library.coset_reduction nct);
  checkb "nft full-group" false (Library.coset_reduction nft);
  (* fingerprints separate the universes — the checkpoint/index guard *)
  check Alcotest.int "three distinct fingerprints" 3
    (List.length
       (List.sort_uniq Int64.compare
          (List.map Checkpoint.fingerprint [ p18; nct; nft ])))

(* Engine-verified published spectra: Shende et al. for NCT, Younes
   (arXiv:1304.5804) for NFT.  Both sum to |S8| = 40320 at full depth. *)
let test_nct_census () =
  let census = Fmcf.run ~max_depth:5 (Library.of_name "nct") in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "Shende spectrum to depth 5"
    [ (0, 1); (1, 12); (2, 102); (3, 625); (4, 2780); (5, 8921) ]
    (Fmcf.counts census);
  (* no free NOT layer: the S8 row is the counts themselves *)
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "s8_counts unscaled" (Fmcf.counts census) (Fmcf.s8_counts census)

let test_nft_census () =
  let census = Fmcf.run ~max_depth:7 (Library.of_name "nft") in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "Younes spectrum, full diameter 7"
    [ (0, 1); (1, 18); (2, 184); (3, 1318); (4, 6474); (5, 17695);
      (6, 14134); (7, 496) ]
    (Fmcf.counts census);
  check Alcotest.int "all of S8" 40320 (Fmcf.total_found census)

let test_nft_census_quotient_identical () =
  (* The wire-relabeling quotient is sound for the classical libraries
     too (their gate sets are wire-equivariant). *)
  let lib = Library.of_name "nft" in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "quotient counts identical"
    (Fmcf.counts (Fmcf.run ~max_depth:4 lib))
    (Fmcf.counts (Fmcf.run ~max_depth:4 ~quotient:true lib))

let test_census_io_library_header () =
  let nct = Library.of_name "nct" in
  let census = Fmcf.run ~max_depth:2 nct in
  let path = Filename.temp_file "qsynth_census" ".tsv" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Census_io.save census path;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  checkb "header records the library" true
    (List.exists (fun l -> l = "# library: nct") !lines);
  (* same library loads and re-validates *)
  check Alcotest.int "entries load back" (Fmcf.total_found census)
    (List.length (Census_io.load nct path));
  (* a different universe is refused with both names in the message *)
  checkb "cross-library load refused" true
    (match Census_io.load library3 path with
    | exception Checkpoint.Mismatch msg ->
        has_sub msg "nct" && has_sub msg "paper18"
    | _ -> false)

let test_checkpoint_names_library () =
  let path = Filename.temp_file "qsynth_ckpt" ".snap" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Checkpoint.save (Search.create (Library.of_name "nct")) path;
  checkb "mismatch message names the loading library" true
    (match Checkpoint.load (Library.of_name "nft") path with
    | exception Checkpoint.Mismatch msg -> has_sub msg "nft"
    | _ -> false)

let () =
  Alcotest.run "synthesis"
    [
      ( "gate",
        [
          Alcotest.test_case "all" `Quick test_gate_all;
          Alcotest.test_case "names" `Quick test_gate_names;
          Alcotest.test_case "name errors" `Quick test_gate_name_errors;
          Alcotest.test_case "adjoint" `Quick test_gate_adjoint;
          Alcotest.test_case "purity" `Quick test_gate_purity;
          Alcotest.test_case "don't-care semantics" `Quick test_gate_apply_dont_care;
          Alcotest.test_case "errors" `Quick test_gate_errors;
        ] );
      ("gate properties", gate_props);
      ( "library",
        [
          Alcotest.test_case "paper permutations" `Quick test_library_paper_perms;
          Alcotest.test_case "paper banned sets" `Quick test_library_banned_sets;
          Alcotest.test_case "feynman sub-library" `Quick test_library_feynman_only;
          Alcotest.test_case "signature gating" `Quick test_library_signature;
          Alcotest.test_case "zero pattern fixed" `Quick
            test_library_gate_perms_fix_no_one_patterns;
        ] );
      ( "cascade",
        [
          Alcotest.test_case "parse and print" `Quick test_cascade_parse_print;
          Alcotest.test_case "weighted cost" `Quick test_cascade_weighted_cost;
          Alcotest.test_case "restriction" `Quick test_cascade_restriction;
          Alcotest.test_case "reasonable product" `Quick test_cascade_reasonable;
          Alcotest.test_case "swap V/V+" `Quick test_cascade_swap_v_dag;
        ] );
      ("cascade properties", cascade_props);
      ( "search",
        [
          Alcotest.test_case "level sizes" `Quick test_search_levels;
          Alcotest.test_case "factorization" `Quick test_search_factorization;
          Alcotest.test_case "all cascades" `Quick test_search_all_cascades;
          Alcotest.test_case "probe matches census" `Slow test_search_probe_matches_census;
          Alcotest.test_case "key utilities" `Quick test_search_restriction_of_key;
        ] );
      ( "fmcf",
        [
          Alcotest.test_case "as-specified counts" `Slow test_fmcf_counts;
          Alcotest.test_case "paper Table 2" `Slow test_fmcf_paper_counts;
          Alcotest.test_case "S8 row" `Slow test_fmcf_s8_counts;
          Alcotest.test_case "level 1 is the CNOTs" `Slow test_fmcf_level1_is_cnots;
          Alcotest.test_case "total found" `Slow test_fmcf_total;
          Alcotest.test_case "find" `Slow test_fmcf_find;
          Alcotest.test_case "witnesses verify" `Slow test_fmcf_witnesses_verify;
          Alcotest.test_case "members fix zero" `Slow test_fmcf_members_fix_zero;
        ] );
      ( "mce",
        [
          Alcotest.test_case "identity" `Quick test_mce_identity;
          Alcotest.test_case "NOT layer" `Quick test_mce_not_layer;
          Alcotest.test_case "known costs" `Quick test_mce_costs;
          Alcotest.test_case "with NOT layer" `Quick test_mce_with_not_layer;
          Alcotest.test_case "witness counts" `Quick test_mce_witness_counts;
          Alcotest.test_case "all realizations" `Quick test_mce_all_realizations;
          Alcotest.test_case "strip NOT layer" `Quick test_mce_strip_not_layer;
          Alcotest.test_case "depth bound" `Quick test_mce_depth_bound;
        ] );
      ("mce properties", mce_props);
      ( "universality",
        [
          Alcotest.test_case "G[4] split" `Slow test_split_g4;
          Alcotest.test_case "all 24 universal" `Slow test_universality_of_family;
          Alcotest.test_case "non-universal gates" `Quick test_non_universal;
          Alcotest.test_case "wire orbits" `Slow test_wire_orbits;
          Alcotest.test_case "relabel wires" `Quick test_relabel_wires;
          Alcotest.test_case "linear functions" `Quick test_linear_functions;
          Alcotest.test_case "theorem 2" `Quick test_theorem2;
          Alcotest.test_case "group orders" `Quick test_group_order;
        ] );
      ( "verify",
        [
          Alcotest.test_case "paper figures" `Quick test_verify_paper_figures;
          Alcotest.test_case "negatives" `Quick test_verify_negative;
          Alcotest.test_case "NOT mask" `Quick test_verify_not_mask;
          Alcotest.test_case "trajectory purity" `Quick test_trajectory_purity;
        ] );
      ( "library plugins",
        [
          Alcotest.test_case "classical gate names" `Quick
            test_classical_gate_names;
          Alcotest.test_case "classical gate matrices" `Quick
            test_classical_gate_matrices;
          Alcotest.test_case "registry" `Quick test_library_registry;
          Alcotest.test_case "NCT census (Shende)" `Slow test_nct_census;
          Alcotest.test_case "NFT census (Younes)" `Slow test_nft_census;
          Alcotest.test_case "NFT quotient identical" `Slow
            test_nft_census_quotient_identical;
          Alcotest.test_case "census file records library" `Quick
            test_census_io_library_header;
          Alcotest.test_case "checkpoint mismatch names library" `Quick
            test_checkpoint_names_library;
        ] );
    ]
