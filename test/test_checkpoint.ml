(* Durability tests: snapshot round-trips at several depths, rejection of
   damaged or mismatched snapshots, crash-at-every-level fault injection
   with resume equality against an uninterrupted census, and a QCheck
   property that restore ∘ snapshot is the identity. *)

open Synthesis

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

let qcheck_test ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let library3 = Library.make (Mvl.Encoding.make ~qubits:3)
let library2 = Library.make (Mvl.Encoding.make ~qubits:2)

let with_temp_file f =
  let path = Filename.temp_file "qsynth_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".tmp" ])
    (fun () -> f path)

let search_at library depth =
  let s = Search.create library in
  for _ = 1 to depth do
    ignore (Search.step_handles s)
  done;
  s

let keys_at s d = Array.map (Search.key_of_handle s) (Search.handles_at_depth s d)
let frontier_keys s = Array.map (Search.key_of_handle s) (Search.frontier_handles s)

(* {1 Round-trips} *)

let test_round_trip depth () =
  with_temp_file @@ fun path ->
  let s = search_at library3 depth in
  Checkpoint.save s path;
  let r = Checkpoint.load library3 path in
  check Alcotest.int "depth" (Search.depth s) (Search.depth r);
  check Alcotest.int "size" (Search.size s) (Search.size r);
  for d = 0 to depth do
    check
      Alcotest.(array int)
      (Printf.sprintf "level %d handles" d)
      (Search.handles_at_depth s d) (Search.handles_at_depth r d);
    check
      Alcotest.(array string)
      (Printf.sprintf "level %d keys" d)
      (keys_at s d) (keys_at r d)
  done;
  check Alcotest.(array string) "frontier" (frontier_keys s) (frontier_keys r);
  (* continuing the restored engine must match continuing the original,
     byte for byte and handle for handle *)
  for step = 1 to 2 do
    let e = Search.step_handles s and g = Search.step_handles r in
    check Alcotest.(array int) (Printf.sprintf "continued level +%d handles" step) e g;
    check
      Alcotest.(array string)
      (Printf.sprintf "continued level +%d keys" step)
      (Array.map (Search.key_of_handle s) e)
      (Array.map (Search.key_of_handle r) g)
  done

let test_peek () =
  with_temp_file @@ fun path ->
  let s = search_at library3 3 in
  Checkpoint.save s path;
  let h = Checkpoint.peek path in
  check Alcotest.int "peek depth" 3 h.Checkpoint.depth;
  check Alcotest.int "peek states" (Search.size s) h.Checkpoint.states;
  check Alcotest.int "peek frontier" (Array.length (Search.frontier_handles s))
    h.Checkpoint.frontier_len;
  check Alcotest.int "peek qubits" 3 h.Checkpoint.qubits;
  checkb "peek fingerprint" true
    (Int64.equal h.Checkpoint.fingerprint (Checkpoint.fingerprint library3))

(* {1 Damaged snapshots} *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let expect_corrupt name load =
  match load () with
  | exception Checkpoint.Corrupt _ -> ()
  | exception Checkpoint.Mismatch msg ->
      Alcotest.failf "%s: raised Mismatch (%s) instead of Corrupt" name msg
  | _ -> Alcotest.failf "%s: damaged snapshot loaded without error" name

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let expect_mismatch name ~substring load =
  match load () with
  | exception Checkpoint.Mismatch msg ->
      checkb
        (Printf.sprintf "%s: message %S names %S" name msg substring)
        true
        (contains ~sub:substring msg)
  | exception Checkpoint.Corrupt msg ->
      Alcotest.failf "%s: raised Corrupt (%s) instead of Mismatch" name msg
  | _ -> Alcotest.failf "%s: mismatched snapshot loaded without error" name

let test_truncation_rejected () =
  with_temp_file @@ fun path ->
  Checkpoint.save (search_at library3 2) path;
  let full = read_file path in
  let len = String.length full in
  List.iter
    (fun keep ->
      write_file path (String.sub full 0 keep);
      expect_corrupt (Printf.sprintf "truncated to %d/%d bytes" keep len) (fun () ->
          Checkpoint.load library3 path))
    [ len - 1; len / 2; 40; 10; 0 ]

let test_bitflip_rejected () =
  with_temp_file @@ fun path ->
  Checkpoint.save (search_at library3 2) path;
  let full = read_file path in
  let len = String.length full in
  List.iter
    (fun pos ->
      let damaged = Bytes.of_string full in
      Bytes.set damaged pos (Char.chr (Char.code full.[pos] lxor 0x40));
      write_file path (Bytes.to_string damaged);
      expect_corrupt (Printf.sprintf "byte %d flipped" pos) (fun () ->
          Checkpoint.load library3 path))
    [ 2; 20; len / 2; len - 2 ]

(* Patch the version field and re-seal the CRC: the version gate must
   fire as a Mismatch (the file is intact, just from another format). *)
let crc32 s =
  let table =
    Array.init 256 (fun n ->
        let c = ref n in
        for _ = 0 to 7 do
          c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
        done;
        !c)
  in
  let c = ref 0xFFFFFFFF in
  String.iter (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8)) s;
  !c lxor 0xFFFFFFFF

let test_version_gate () =
  with_temp_file @@ fun path ->
  Checkpoint.save (search_at library3 1) path;
  let full = Bytes.of_string (read_file path) in
  Bytes.set_int32_le full 8 99l;
  let body = Bytes.sub_string full 0 (Bytes.length full - 4) in
  Bytes.set_int32_le full (Bytes.length full - 4) (Int32.of_int (crc32 body));
  write_file path (Bytes.to_string full);
  expect_mismatch "future format version" ~substring:"version" (fun () ->
      Checkpoint.load library3 path)

let test_library_mismatch () =
  with_temp_file @@ fun path ->
  Checkpoint.save (search_at library3 2) path;
  expect_mismatch "wrong qubit count" ~substring:"qubit" (fun () ->
      Checkpoint.load library2 path);
  (* same shape, different gate semantics: only the fingerprint differs *)
  expect_mismatch "different gate library" ~substring:"fingerprint" (fun () ->
      Checkpoint.load (Library.unconstrained library3) path)

let test_atomic_save_crash () =
  with_temp_file @@ fun path ->
  let s = search_at library3 2 in
  Checkpoint.save s path;
  let before = read_file path in
  (* crash injected between the temp-file fsync and the rename: the
     previous snapshot must survive untouched and loadable *)
  Faultsim.configure (Some "checkpoint:1");
  Fun.protect ~finally:(fun () -> Faultsim.configure None) @@ fun () ->
  ignore (Search.step_handles s);
  (match Checkpoint.save s path with
  | exception Faultsim.Injected "checkpoint" -> ()
  | () -> Alcotest.fail "checkpoint fault did not fire");
  check Alcotest.string "previous snapshot intact" before (read_file path);
  let r = Checkpoint.load library3 path in
  check Alcotest.int "previous snapshot still loads" 2 (Search.depth r)

(* {1 Crash at level k, resume, compare with the uninterrupted census} *)

let member_sig (m : Fmcf.member) =
  ( m.Fmcf.cost,
    Permgroup.Perm.key (Reversible.Revfun.to_perm m.Fmcf.func),
    m.Fmcf.witness )

let census_sig c =
  List.map
    (fun (l : Fmcf.level) ->
      ( l.Fmcf.cost,
        l.Fmcf.frontier_size,
        l.Fmcf.paper_count,
        List.map member_sig l.Fmcf.members ))
    (Fmcf.levels c)

let census_depth = 7
let clean_census = lazy (Fmcf.run ~max_depth:census_depth library3)

let test_crash_resume k () =
  with_temp_file @@ fun path ->
  Fun.protect ~finally:(fun () -> Faultsim.configure None) @@ fun () ->
  (* a depth-0 snapshot makes even a level-1 crash resumable *)
  Checkpoint.save (Search.create library3) path;
  Faultsim.configure (Some (Printf.sprintf "merge:%d" k));
  (match
     Fmcf.run_guarded ~max_depth:census_depth
       ~on_level:(fun s ~cost:_ -> Checkpoint.save s path)
       library3
   with
  | exception Faultsim.Injected "merge" -> ()
  | _ -> Alcotest.failf "fault merge:%d did not fire" k);
  Faultsim.configure None;
  let h = Checkpoint.peek path in
  check Alcotest.int "snapshot sits at the last complete level" (k - 1)
    h.Checkpoint.depth;
  let census, reason =
    Fmcf.run_guarded ~max_depth:census_depth
      ~resume:(Checkpoint.load library3 path)
      library3
  in
  checkb "resumed run completes" true (reason = Fmcf.Completed);
  checkb
    (Printf.sprintf "census after crash at level %d = uninterrupted census" k)
    true
    (census_sig census = census_sig (Lazy.force clean_census))

(* {1 Resource guards} *)

let prefix_of_clean census =
  let depth = Search.depth (Fmcf.search census) in
  let clean = census_sig (Lazy.force clean_census) in
  census_sig census = List.filter (fun (c, _, _, _) -> c <= depth) clean

let test_budget_states () =
  let census, reason = Fmcf.run_guarded ~max_depth:census_depth ~max_states:1000 library3 in
  checkb "stop reason" true (reason = Fmcf.Budget_states);
  checkb "census is below the budgeted level count" true
    (Search.depth (Fmcf.search census) < census_depth);
  checkb "partial census is an exact prefix of the clean one" true
    (prefix_of_clean census)

let test_budget_mem () =
  let census, reason =
    Fmcf.run_guarded ~max_depth:census_depth ~max_mem:(64 * 1024) library3
  in
  checkb "stop reason" true (reason = Fmcf.Budget_mem);
  checkb "partial census is an exact prefix of the clean one" true
    (prefix_of_clean census)

let test_cancel_immediate () =
  let census, reason =
    Fmcf.run_guarded ~max_depth:census_depth ~should_stop:(fun () -> true) library3
  in
  checkb "stop reason" true (reason = Fmcf.Cancelled);
  check Alcotest.int "no level expanded" 0 (Search.depth (Fmcf.search census));
  check
    Alcotest.(list (pair int int))
    "level 0 only" [ (0, 1) ] (Fmcf.counts census)

(* Cancellation firing mid-expansion: the half-built level must be rolled
   back, leaving an exact prefix census. *)
let test_cancel_mid_level () =
  let polls = ref 0 in
  let stop () =
    incr polls;
    !polls > 400
  in
  let census, reason =
    Fmcf.run_guarded ~max_depth:census_depth ~should_stop:stop library3
  in
  checkb "stop reason" true (reason = Fmcf.Cancelled);
  checkb "some levels completed before the cancel" true
    (Search.depth (Fmcf.search census) > 0);
  checkb "rolled-back census is an exact prefix of the clean one" true
    (prefix_of_clean census)

(* {1 QCheck: restore ∘ snapshot = identity} *)

let qcheck_round_trip =
  qcheck_test ~count:20 "restore . snapshot = identity"
    QCheck2.Gen.(int_range 0 4)
    (fun depth ->
      with_temp_file @@ fun path ->
      let s = search_at library2 depth in
      Checkpoint.save s path;
      let r = Checkpoint.load library2 path in
      Search.depth r = Search.depth s
      && Search.size r = Search.size s
      && frontier_keys r = frontier_keys s
      && List.for_all
           (fun d ->
             Search.handles_at_depth s d = Search.handles_at_depth r d
             && keys_at s d = keys_at r d)
           (List.init (depth + 1) Fun.id))

let () =
  Alcotest.run "checkpoint"
    [
      ( "round trip",
        List.map
          (fun d ->
            Alcotest.test_case (Printf.sprintf "depth %d" d) `Quick
              (test_round_trip d))
          [ 0; 1; 2; 3; 4 ]
        @ [ Alcotest.test_case "peek" `Quick test_peek ] );
      ( "damage rejection",
        [
          Alcotest.test_case "truncation" `Quick test_truncation_rejected;
          Alcotest.test_case "bit flips" `Quick test_bitflip_rejected;
          Alcotest.test_case "version gate" `Quick test_version_gate;
          Alcotest.test_case "library mismatch" `Quick test_library_mismatch;
          Alcotest.test_case "atomic save under crash" `Quick test_atomic_save_crash;
        ] );
      ( "crash and resume",
        List.map
          (fun k ->
            Alcotest.test_case (Printf.sprintf "crash at level %d" k) `Quick
              (test_crash_resume k))
          [ 1; 2; 3; 4; 5; 6 ] );
      ( "resource guards",
        [
          Alcotest.test_case "max states" `Quick test_budget_states;
          Alcotest.test_case "max mem" `Quick test_budget_mem;
          Alcotest.test_case "cancel immediately" `Quick test_cancel_immediate;
          Alcotest.test_case "cancel mid-level" `Quick test_cancel_mid_level;
        ] );
      ("properties", [ qcheck_round_trip ]);
    ]
