(* Symmetry-quotient parity tests: the quotiented census must be
   observationally identical to the raw one — Table 2, |S8[k]|, the exact
   1260 depth-7 members with equal costs and witness cascades, and
   byte-identical QSYNIDX1 files — plus QCheck properties of the
   canonical form, quotient (v2) checkpoint round-trips and rejection of
   snapshots whose symmetry section is damaged or mismatched. *)

open Synthesis

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

let qcheck_test ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let library3 = Library.make (Mvl.Encoding.make ~qubits:3)
let sym3 = lazy (Symmetry.create library3)
let raw7 = lazy (Fmcf.run ~max_depth:7 library3)
let quot7 = lazy (Fmcf.run ~max_depth:7 ~quotient:true library3)

let with_temp_file f =
  let path = Filename.temp_file "qsynth_quot" ".bin" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".tmp" ])
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let func_key m = Permgroup.Perm.key (Reversible.Revfun.to_perm m.Fmcf.func)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* {1 Census parity} *)

let test_table2_parity () =
  let raw = Lazy.force raw7 and quot = Lazy.force quot7 in
  checkb "raw is not quotiented" false (Fmcf.quotiented raw);
  checkb "quotient is quotiented" true (Fmcf.quotiented quot);
  checkb "raw paper counts exact" true (Fmcf.paper_counts_exact raw);
  checkb "quotient paper counts inexact" false (Fmcf.paper_counts_exact quot);
  check
    Alcotest.(list (pair int int))
    "|G[k]|" (Fmcf.counts raw) (Fmcf.counts quot);
  check
    Alcotest.(list (pair int int))
    "|S8[k]|" (Fmcf.s8_counts raw) (Fmcf.s8_counts quot);
  check Alcotest.int "total functions" (Fmcf.total_found raw)
    (Fmcf.total_found quot);
  check Alcotest.int "1260 functions" 1260 (Fmcf.total_found quot)

(* Every one of the 1260 members: same function set, same cost, and the
   reconstructed witness cascade is gate-for-gate identical. *)
let test_members_parity () =
  let members census =
    let tbl = Hashtbl.create 2048 in
    Fmcf.iter_members census (fun ~cost m ->
        Hashtbl.replace tbl (func_key m) (cost, Fmcf.cascade_of_member census m));
    tbl
  in
  let raw = Lazy.force raw7 and quot = Lazy.force quot7 in
  let rm = members raw and qm = members quot in
  check Alcotest.int "member count" (Hashtbl.length rm) (Hashtbl.length qm);
  Hashtbl.iter
    (fun key (cost, cascade) ->
      match Hashtbl.find_opt qm key with
      | None -> Alcotest.failf "function missing from the quotient census"
      | Some (qcost, qcascade) ->
          if cost <> qcost then
            Alcotest.failf "cost differs: raw %d, quotient %d" cost qcost;
          if not (List.equal Gate.equal cascade qcascade) then
            Alcotest.failf "witness cascade differs at cost %d" cost)
    rm

let test_index_byte_identity () =
  with_temp_file @@ fun path_raw ->
  with_temp_file @@ fun path_quot ->
  Census_index.save (Census_index.build (Lazy.force raw7)) path_raw;
  Census_index.save (Census_index.build (Lazy.force quot7)) path_quot;
  checkb "QSYNIDX1 files byte-identical" true
    (String.equal (read_file path_raw) (read_file path_quot))

(* {1 Canonical-form properties} *)

(* canon is constant on orbits and idempotent, over arbitrary image
   vectors (any point value, not just reachable states). *)
let test_canon_invariant_qcheck =
  let sym = Lazy.force sym3 in
  let size = Mvl.Encoding.size (Library.encoding library3) in
  let gen =
    QCheck2.Gen.(
      pair
        (int_range 0 (Symmetry.order sym - 1))
        (string_size ~gen:(map Char.chr (int_range 0 (size - 1)))
           (pure (Symmetry.num_binary sym))))
  in
  qcheck_test "canon(g.s) = canon(s)" gen (fun (g, v) ->
      let c, _ = Symmetry.canon sym v in
      let c', _ = Symmetry.canon sym (Symmetry.conjugate_image sym g v) in
      let c'', i = Symmetry.canon sym c in
      String.equal c c' && String.equal c c'' && i = 0)

(* The same invariance over every reachable state of a shallow raw
   search — the vectors the engine actually canonicalizes. *)
let test_canon_invariant_reachable () =
  let sym = Lazy.force sym3 in
  let s = Search.create library3 in
  for _ = 1 to 3 do
    ignore (Search.step_handles s)
  done;
  for d = 0 to 3 do
    Array.iter
      (fun h ->
        let img = Search.binary_image_of_handle s h in
        let c, _ = Symmetry.canon sym img in
        for g = 0 to Symmetry.order sym - 1 do
          let c', _ = Symmetry.canon sym (Symmetry.conjugate_image sym g img) in
          if not (String.equal c c') then
            Alcotest.failf "canon not orbit-constant at depth %d" d
        done)
      (Search.handles_at_depth s d)
  done

(* {1 Quotient checkpoints (v2)} *)

let quotient_search_at ?(jobs = 1) depth =
  let s = Search.create ~jobs ~symmetry:(Lazy.force sym3) library3 in
  for _ = 1 to depth do
    ignore (Search.step_handles s)
  done;
  s

let keys_at s d = Array.map (Search.key_of_handle s) (Search.handles_at_depth s d)
let conjs_at s d = Array.map (Search.conj_of_handle s) (Search.handles_at_depth s d)

let test_v2_round_trip () =
  with_temp_file @@ fun path ->
  let s = quotient_search_at 5 in
  Checkpoint.save s path;
  let h = Checkpoint.peek path in
  checkb "peek records the symmetry fingerprint" true
    (h.Checkpoint.symmetry
    = Some (Symmetry.fingerprint (Lazy.force sym3)));
  let r = Checkpoint.load library3 path in
  checkb "restored engine is quotiented" true (Search.symmetry r <> None);
  check Alcotest.int "depth" (Search.depth s) (Search.depth r);
  check Alcotest.int "size" (Search.size s) (Search.size r);
  for d = 0 to 5 do
    check Alcotest.(array string)
      (Printf.sprintf "level %d keys" d)
      (keys_at s d) (keys_at r d);
    check Alcotest.(array int)
      (Printf.sprintf "level %d conjugators" d)
      (conjs_at s d) (conjs_at r d)
  done;
  (* continuing both engines stays byte-identical *)
  let e = Search.step_handles s and g = Search.step_handles r in
  check Alcotest.(array int) "continued handles" e g;
  check Alcotest.(array string) "continued keys"
    (Array.map (Search.key_of_handle s) e)
    (Array.map (Search.key_of_handle r) g)

let test_v2_resume_parity () =
  with_temp_file @@ fun path ->
  Checkpoint.save (quotient_search_at 4) path;
  let resume = Checkpoint.load library3 path in
  let resumed, reason = Fmcf.run_guarded ~max_depth:7 ~resume library3 in
  checkb "resumed census completed" true (reason = Fmcf.Completed);
  let fresh = Lazy.force quot7 in
  check Alcotest.(list (pair int int)) "resumed counts" (Fmcf.counts fresh)
    (Fmcf.counts resumed);
  check Alcotest.int "resumed total" (Fmcf.total_found fresh)
    (Fmcf.total_found resumed)

let test_v2_jobs_determinism () =
  with_temp_file @@ fun p1 ->
  with_temp_file @@ fun p4 ->
  Checkpoint.save (quotient_search_at ~jobs:1 6) p1;
  Checkpoint.save (quotient_search_at ~jobs:4 6) p4;
  checkb "jobs=1 and jobs=4 quotient snapshots byte-identical" true
    (String.equal (read_file p1) (read_file p4))

let test_v1_loads_unquotiented () =
  with_temp_file @@ fun path ->
  let s = Search.create library3 in
  for _ = 1 to 3 do
    ignore (Search.step_handles s)
  done;
  Checkpoint.save s path;
  checkb "raw snapshot has no symmetry section" true
    ((Checkpoint.peek path).Checkpoint.symmetry = None);
  let r = Checkpoint.load library3 path in
  checkb "restored engine is raw" true (Search.symmetry r = None);
  check Alcotest.int "size" (Search.size s) (Search.size r)

(* {1 Damaged symmetry sections} *)

(* v2 layout: magic 8 | version u32 | library fp u64 | symmetry fp u64 at
   offset 20 | 5 u32 (qubits, degree, num_binary, num_gates, depth) |
   states u64 | frontier u64 | num_shards u32 at offset 64 | per shard:
   count u32 then count x 12-byte records (depth u16, via u8, conj u8,
   parent u64) | crc u32.  Patches below re-seal the CRC so the format
   gates, not the checksum, must reject the file. *)

let reseal buf =
  let n = Bytes.length buf in
  Bytes.set_int32_le buf (n - 4)
    (Int32.of_int (Checkpoint.crc32 buf ~off:0 ~len:(n - 4)))

let test_symmetry_fingerprint_mismatch () =
  with_temp_file @@ fun path ->
  Checkpoint.save (quotient_search_at 3) path;
  let buf = Bytes.of_string (read_file path) in
  Bytes.set buf 20 (Char.chr (Char.code (Bytes.get buf 20) lxor 0x01));
  reseal buf;
  write_file path (Bytes.to_string buf);
  match Checkpoint.load library3 path with
  | exception Checkpoint.Mismatch msg ->
      checkb "message names the symmetry group" true (contains ~sub:"symmetry" msg)
  | exception Checkpoint.Corrupt msg ->
      Alcotest.failf "raised Corrupt (%s) instead of Mismatch" msg
  | _ -> Alcotest.fail "mismatched symmetry fingerprint loaded without error"

let test_conjugator_corruption () =
  with_temp_file @@ fun path ->
  Checkpoint.save (quotient_search_at 3) path;
  let buf = Bytes.of_string (read_file path) in
  let num_shards = Int32.to_int (Bytes.get_int32_le buf 64) in
  (* find the first stored state of depth >= 1 and damage its conjugator *)
  let patched = ref false in
  let pos = ref 68 in
  for _ = 1 to num_shards do
    let count = Int32.to_int (Bytes.get_int32_le buf !pos) in
    pos := !pos + 4;
    for _ = 1 to count do
      if (not !patched) && Bytes.get_uint16_le buf !pos >= 1 then begin
        let conj = Bytes.get_uint8 buf (!pos + 3) in
        Bytes.set_uint8 buf (!pos + 3)
          ((conj + 1) mod Symmetry.order (Lazy.force sym3));
        patched := true
      end;
      pos := !pos + 12
    done
  done;
  checkb "found a record to damage" true !patched;
  reseal buf;
  write_file path (Bytes.to_string buf);
  match Checkpoint.load library3 path with
  | exception Checkpoint.Corrupt _ -> ()
  | exception Checkpoint.Mismatch msg ->
      Alcotest.failf "raised Mismatch (%s) instead of Corrupt" msg
  | _ -> Alcotest.fail "damaged conjugator loaded without error"

let () =
  Alcotest.run "quotient"
    [
      ( "parity",
        [
          Alcotest.test_case "table 2 and |S8[k]|" `Quick test_table2_parity;
          Alcotest.test_case "1260 members and cascades" `Quick
            test_members_parity;
          Alcotest.test_case "index byte-identity" `Quick
            test_index_byte_identity;
        ] );
      ( "canonical form",
        [
          test_canon_invariant_qcheck;
          Alcotest.test_case "reachable states" `Quick
            test_canon_invariant_reachable;
        ] );
      ( "checkpoints",
        [
          Alcotest.test_case "v2 round trip" `Quick test_v2_round_trip;
          Alcotest.test_case "v2 resume parity" `Quick test_v2_resume_parity;
          Alcotest.test_case "v2 jobs determinism" `Quick
            test_v2_jobs_determinism;
          Alcotest.test_case "v1 loads unquotiented" `Quick
            test_v1_loads_unquotiented;
          Alcotest.test_case "symmetry fingerprint mismatch" `Quick
            test_symmetry_fingerprint_mismatch;
          Alcotest.test_case "conjugator corruption" `Quick
            test_conjugator_corruption;
        ] );
    ]
