(* Direct tests for the fault-injection module itself: spec parsing
   (valid, malformed), point:count trigger arithmetic, multi-point
   specs, re-arming semantics, and the disarmed fast path.  Every test
   disarms on exit so the suite-wide QSYNTH_FAULT environment (CI arms
   a never-firing spec) is not clobbered for other binaries — this
   binary runs its own process, but restoring the initial arming keeps
   the tests order-independent. *)

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

(* Run [f] with [spec] armed, then restore whatever was armed before —
   configure resets all hit counters, so restoration is exact. *)
let with_spec spec f =
  let saved = Faultsim.armed () in
  Faultsim.configure spec;
  Fun.protect ~finally:(fun () -> Faultsim.configure saved) f

let fired point f =
  match f () with
  | () -> false
  | exception Faultsim.Injected p ->
      check Alcotest.string "injected point" point p;
      true

(* {1 Spec parsing} *)

let test_parse_valid () =
  check
    Alcotest.(list (pair string int))
    "single pair" [ ("merge", 3) ]
    (Faultsim.parse_spec "merge:3");
  check
    Alcotest.(list (pair string int))
    "multi pair"
    [ ("worker_crash", 2); ("delta_corrupt", 1) ]
    (Faultsim.parse_spec "worker_crash:2,delta_corrupt:1");
  check
    Alcotest.(list (pair string int))
    "pairs trimmed around commas"
    [ ("merge", 3); ("grow", 1) ]
    (Faultsim.parse_spec "merge:3, grow:1");
  (* empty segments are absent, not errors: "", trailing and doubled
     commas all normalize away *)
  List.iter
    (fun (label, spec, expect) ->
      check Alcotest.(list (pair string int)) label expect
        (Faultsim.parse_spec spec))
    [
      ("empty spec", "", []);
      ("trailing comma", "merge:3,", [ ("merge", 3) ]);
      ("doubled comma", "merge:3,,grow:1", [ ("merge", 3); ("grow", 1) ]);
    ]

let test_parse_malformed () =
  let rejected spec =
    match Faultsim.parse_spec spec with
    | _ -> Alcotest.failf "spec %S should have been rejected" spec
    | exception Invalid_argument _ -> ()
  in
  List.iter rejected
    [ "merge"; "merge:"; ":3"; "merge:0"; "merge:-1"; "merge:x"; "merge:1:2" ]

let test_configure_malformed () =
  match with_spec (Some "nope") (fun () -> ()) with
  | () -> Alcotest.fail "configure should reject a malformed spec"
  | exception Invalid_argument _ -> ()

(* {1 Trigger arithmetic} *)

let test_fires_on_exact_count () =
  with_spec (Some "p:3") @@ fun () ->
  checkb "hit 1 silent" false (fired "p" (fun () -> Faultsim.hit "p"));
  checkb "hit 2 silent" false (fired "p" (fun () -> Faultsim.hit "p"));
  checkb "hit 3 fires" true (fired "p" (fun () -> Faultsim.hit "p"))

let test_other_points_ignored () =
  with_spec (Some "p:1") @@ fun () ->
  checkb "unarmed point silent" false (fired "q" (fun () -> Faultsim.hit "q"));
  checkb "armed point fires" true (fired "p" (fun () -> Faultsim.hit "p"))

let test_disarms_after_firing () =
  (* fire-once: the cell disarms before raising, so the same point is
     survivable on retry — the distributed census depends on this *)
  with_spec (Some "p:2") @@ fun () ->
  checkb "hit 1 silent" false (fired "p" (fun () -> Faultsim.hit "p"));
  checkb "hit 2 fires" true (fired "p" (fun () -> Faultsim.hit "p"));
  for _ = 1 to 5 do
    checkb "disarmed after firing" false (fired "p" (fun () -> Faultsim.hit "p"))
  done

let test_multi_point_independent_counters () =
  with_spec (Some "a:2,b:1") @@ fun () ->
  checkb "b fires at its own count" true (fired "b" (fun () -> Faultsim.hit "b"));
  checkb "a counter unaffected by b" false (fired "a" (fun () -> Faultsim.hit "a"));
  checkb "a fires at its own count" true (fired "a" (fun () -> Faultsim.hit "a"))

let test_configure_resets_counters () =
  with_spec (Some "p:2") @@ fun () ->
  Faultsim.hit "p";
  (* re-arming the same spec must restart the count from zero *)
  Faultsim.configure (Some "p:2");
  checkb "count restarted" false (fired "p" (fun () -> Faultsim.hit "p"));
  checkb "fires on new count" true (fired "p" (fun () -> Faultsim.hit "p"))

(* {1 Disarmed fast path} *)

let test_disarmed_is_silent () =
  with_spec None @@ fun () ->
  check Alcotest.(option string) "nothing armed" None (Faultsim.armed ());
  for _ = 1 to 1000 do
    Faultsim.hit "p";
    Faultsim.hit "merge";
    Faultsim.hit ""
  done

let test_armed_reports_spec () =
  with_spec (Some "merge:7") @@ fun () ->
  check Alcotest.(option string) "armed spec" (Some "merge:7") (Faultsim.armed ())

let () =
  Alcotest.run "faultsim"
    [
      ( "spec parsing",
        [
          Alcotest.test_case "valid specs" `Quick test_parse_valid;
          Alcotest.test_case "malformed specs" `Quick test_parse_malformed;
          Alcotest.test_case "configure rejects malformed" `Quick
            test_configure_malformed;
        ] );
      ( "trigger arithmetic",
        [
          Alcotest.test_case "fires on exact count" `Quick
            test_fires_on_exact_count;
          Alcotest.test_case "other points ignored" `Quick
            test_other_points_ignored;
          Alcotest.test_case "disarms after firing" `Quick
            test_disarms_after_firing;
          Alcotest.test_case "multi-point counters independent" `Quick
            test_multi_point_independent_counters;
          Alcotest.test_case "configure resets counters" `Quick
            test_configure_resets_counters;
        ] );
      ( "fast path",
        [
          Alcotest.test_case "disarmed is silent" `Quick test_disarmed_is_silent;
          Alcotest.test_case "armed () reports spec" `Quick
            test_armed_reports_spec;
        ] );
    ]
