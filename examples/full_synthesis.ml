(* Constructive synthesis of EVERY 3-bit reversible function from a cheap
   census: run FMCF to the paper's depth 7 (about a second), then express
   each of the 5040 NOT-free functions either directly or as the cheapest
   concatenation of two census witnesses (subadditive composition).

   Every produced cascade is real and verified; costs are upper bounds
   that the complete spectrum (EXPERIMENTS.md X1) shows are exact for
   most functions.

   Run with: dune exec examples/full_synthesis.exe *)

open Synthesis

let () =
  let library = Library.make (Mvl.Encoding.make ~qubits:3) in
  let t0 = Unix.gettimeofday () in
  let census = Fmcf.run ~max_depth:7 library in
  Format.printf "census depth 7: %d functions, %.2fs@." (Fmcf.total_found census)
    (Unix.gettimeofday () -. t0);

  (* every element of G = zero-fixing functions, order 5040 *)
  let group =
    Universality.closure_of (Reversible.Gates.g1 :: Universality.cnots ~bits:3)
  in
  let t0 = Unix.gettimeofday () in
  let express = Spectrum.composer census in
  let histogram = Hashtbl.create 32 in
  let failures = ref 0 in
  let rng = Random.State.make [| 7 |] in
  let verified = ref 0 and sampled = ref 0 in
  Permgroup.Closure.iter
    (fun p ->
      let target = Reversible.Revfun.of_perm ~bits:3 p in
      match express target with
      | Some r ->
          Hashtbl.replace histogram r.Mce.cost
            (1 + Option.value ~default:0 (Hashtbl.find_opt histogram r.Mce.cost));
          (* exact verification on a 2% sample (each check multiplies
             exact 8x8 unitaries) *)
          if Random.State.int rng 50 = 0 then begin
            incr sampled;
            if Verify.result_valid library r then incr verified
          end
      | None -> incr failures)
    group;
  Format.printf "synthesized all %d functions in %.1fs (%d failures)@."
    (Permgroup.Closure.size group)
    (Unix.gettimeofday () -. t0)
    !failures;
  Format.printf "verified exactly: %d of %d sampled@." !verified !sampled;

  let costs =
    Hashtbl.fold (fun c n acc -> (c, n) :: acc) histogram []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  Format.printf "constructed-cost histogram:";
  List.iter (fun (c, n) -> Format.printf " %d:%d" c n) costs;
  Format.printf "@.";

  let total, weighted =
    List.fold_left (fun (t, w) (c, n) -> (t + n, w + (c * n))) (0, 0) costs
  in
  Format.printf "average constructed cost: %.2f@."
    (float_of_int weighted /. float_of_int total);

  (* The known exact spectrum (EXPERIMENTS.md X1) for comparison. *)
  let exact =
    [ (0, 1); (1, 6); (2, 24); (3, 51); (4, 84); (5, 156); (6, 398); (7, 540);
      (8, 444); (9, 1440); (10, 552); (12, 1232); (13, 112) ]
  in
  let exact_avg =
    float_of_int (List.fold_left (fun acc (c, n) -> acc + (c * n)) 0 exact) /. 5040.0
  in
  Format.printf "exact spectrum average: %.2f (composition overhead: %.2f gates)@."
    exact_avg
    ((float_of_int weighted /. float_of_int total) -. exact_avg);

  (* One concrete deep function: the cheapest two-split for a cost-13
     function (any function outside the depth-10 census with two-split
     bound 13 works); take the worst constructed cost observed. *)
  let worst_cost = List.fold_left (fun acc (c, _) -> max acc c) 0 costs in
  Format.printf "worst constructed cost: %d (exact worst case is 13)@." worst_cost;

  (* Cross-check the composer against the unified query API: index the
     census and ask [Mce.solve] — the same call behind [qsynth synth
     --json] and the serve daemon — for a few exact costs.  Composition
     gives upper bounds; within the census horizon they must be exact. *)
  let index = Census_index.build census in
  List.iter
    (fun (name, target) ->
      let req =
        Mce.Request.make ~qubits:3
          (String.concat ","
             (List.map string_of_int (Reversible.Revfun.output_column target)))
      in
      match Mce.Response.result_of (Mce.solve ~index library req) with
      | Some exact ->
          let constructed =
            match express target with
            | Some r -> r.Mce.cost
            | None -> failwith "composer missed a census function"
          in
          Format.printf "%s: exact cost %d (index), constructed %d@." name
            exact.Mce.cost constructed
      | None -> Format.printf "%s: beyond the census horizon@." name)
    [
      ("peres", Reversible.Gates.g1);
      ("toffoli", Reversible.Gates.toffoli3);
      ("fredkin", Reversible.Gates.fredkin3);
    ]
