(* Reproduction of the paper's Section 5 synthesis experiments:
   Figures 4-9 — Peres (cost 4, two implementations), its Hermitian-adjoint
   form, the g2/g3/g4 circuits, and Toffoli (cost 5, four implementations).

   Every question goes through the unified query API: build a
   [Mce.Request.t], call [Mce.solve], read the typed [Mce.Response.t] —
   the same records [qsynth synth --json], [qsynth query] and the
   [qsynth serve] daemon exchange as JSON.

   Run with: dune exec examples/toffoli_synthesis.exe *)

open Synthesis

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

(* A request for a target we already hold as a [Revfun.t]: hand [solve]
   the truth-table output column, the one spec syntax every transport
   accepts. *)
let request ?task target =
  Mce.Request.make ?task
    ~qubits:(Reversible.Revfun.bits target)
    (String.concat ","
       (List.map string_of_int (Reversible.Revfun.output_column target)))

let witness_count library target =
  match (Mce.solve library (request ~task:Mce.Request.Count_witnesses target)).body with
  | Ok { payload = Mce.Response.Witnesses { count }; _ } -> count
  | _ -> failwith "witness count failed"

let report library name target ~expected_cost ~paper_cascades =
  Format.printf "@.=== %s: %a ===@." name Reversible.Revfun.pp target;
  let response, elapsed = time (fun () -> Mce.solve library (request target)) in
  (match Mce.Response.result_of response with
  | None -> Format.printf "not found (unexpected)@."
  | Some r ->
      Format.printf "minimal cost %d (expected %d), %.3fs: %a@." r.Mce.cost expected_cost
        elapsed Cascade.pp r.Mce.cascade;
      Format.printf "exact verification: %b@." (Verify.result_valid library r));
  Format.printf "distinct minimal circuit permutations: %d@."
    (witness_count library target);
  List.iter
    (fun printed ->
      let cascade = Cascade.of_string ~qubits:3 printed in
      let ok =
        Cascade.is_reasonable library cascade
        && Verify.cascade_implements ~qubits:3 cascade target
      in
      Format.printf "paper's printed cascade %s: valid = %b@." printed ok)
    paper_cascades

let () =
  let library = Library.make (Mvl.Encoding.make ~qubits:3) in

  report library "Peres (g1, Figure 4)" Reversible.Gates.g1 ~expected_cost:4
    ~paper_cascades:[ "VCB*FBA*VCA*V+CB"; "V+CB*FBA*V+CA*VCB" ];

  (* Figure 8: the second Peres implementation is the V <-> V+ swap of the
     first — check the transformation reproduces it. *)
  let fig4 = Cascade.of_string ~qubits:3 "VCB*FBA*VCA*V+CB" in
  let fig8 = Cascade.swap_v_dag fig4 in
  Format.printf "Figure 8 from Figure 4 by swapping V/V+: %a, implements Peres: %b@."
    Cascade.pp fig8
    (Verify.cascade_implements ~qubits:3 fig8 Reversible.Gates.g1);

  report library "g2 (Figure 5)" Reversible.Gates.g2 ~expected_cost:4
    ~paper_cascades:[ "V+BC*FCA*VBA*VBC" ];
  report library "g3 (Figure 6)" Reversible.Gates.g3 ~expected_cost:4
    ~paper_cascades:[ "VCB*FBA*V+CA*VCB" ];
  report library "g4 (Figure 7)" Reversible.Gates.g4 ~expected_cost:4
    ~paper_cascades:[ "VCB*FBA*VCA*VCB" ];

  report library "Toffoli (Figure 9)" Reversible.Gates.toffoli3 ~expected_cost:5
    ~paper_cascades:
      [
        "FBA*V+CB*FBA*VCA*VCB";
        "FBA*VCB*FBA*V+CA*V+CB";
        "FAB*V+CA*FAB*VCA*VCB";
        "FAB*VCA*FAB*V+CA*V+CB";
      ];

  (* Enumerate every minimal Toffoli cascade (the paper stops at four
     witnesses; each witness admits several gate orderings). *)
  (match
     (Mce.solve library
        (request
           ~task:(Mce.Request.Enumerate { limit = 10_000 })
           Reversible.Gates.toffoli3))
       .body
   with
  | Ok { payload = Mce.Response.Realizations { cascades; complete; cost; _ }; _ } ->
      Format.printf "@.all minimal Toffoli cascades: %d (complete %b), all implement: %b@."
        (List.length cascades) complete
        (List.for_all
           (fun c ->
             Verify.cascade_implements ~qubits:3 c Reversible.Gates.toffoli3)
           cascades);
      ignore cost
  | _ -> Format.printf "@.enumeration failed (unexpected)@.");

  (* Fredkin needs NOT-free cost > 5; find its exact cost.  The response
     is also printed in its wire encoding — exactly the line [qsynth
     synth --json fredkin] emits and the daemon frames on the socket. *)
  let response, elapsed =
    time (fun () -> Mce.solve library (request Reversible.Gates.fredkin3))
  in
  (match Mce.Response.result_of response with
  | Some r ->
      Format.printf "@.Fredkin: minimal cost %d, %.3fs: %a, verified %b@." r.Mce.cost
        elapsed Cascade.pp r.Mce.cascade (Verify.result_valid library r)
  | None -> Format.printf "@.Fredkin: beyond the default depth bound@.");
  Format.printf "wire encoding: %s@." (Mce.Response.to_string response)
