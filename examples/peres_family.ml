(* Reproduction of the paper's group-theoretic findings (Sections 3 and 5):

   - Table 2 census of minimal-cost circuits;
   - the split of G[4] into 60 Feynman-realizable circuits and the
     24-member Peres family;
   - universality of each family member: adding NOT and Feynman gates
     generates all of S8 (order 40320, checked with Schreier-Sims);
   - the family's 4 orbits of 6 under wire relabeling (g1..g4);
   - Theorem 2: |G| = 5040 and the 8-coset decomposition of S8.

   Run with: dune exec examples/peres_family.exe *)

open Synthesis

let () =
  let library = Library.make (Mvl.Encoding.make ~qubits:3) in
  let census = Fmcf.run ~max_depth:7 library in

  Format.printf "Table 2 (as-specified semantics):@.";
  List.iter (fun (k, n) -> Format.printf "  |G[%d]| = %d@." k n) (Fmcf.counts census);
  Format.printf "Table 2 (as printed in the paper):@.";
  List.iter (fun (k, n) -> Format.printf "  |G[%d]| = %d@." k n) (Fmcf.paper_counts census);

  let linear, family = Universality.split_g4 census in
  Format.printf "@.G[4] = %d Feynman-realizable + %d Peres-family@." (List.length linear)
    (List.length family);

  (* Universality of all 24, via stabilizer chains instead of GAP. *)
  let universal =
    List.filter (fun (m : Fmcf.member) -> Universality.is_universal m.Fmcf.func) family
  in
  Format.printf "universal members: %d of %d@." (List.length universal)
    (List.length family);

  (* Orbits under wire relabeling; the paper's four representatives. *)
  let orbits =
    Universality.wire_orbits (List.map (fun (m : Fmcf.member) -> m.Fmcf.func) family)
  in
  Format.printf "orbits under wire relabeling: %s@."
    (String.concat " + " (List.map (fun o -> string_of_int (List.length o)) orbits));
  let named = [ ("g1", Reversible.Gates.g1); ("g2", Reversible.Gates.g2);
                ("g3", Reversible.Gates.g3); ("g4", Reversible.Gates.g4) ] in
  List.iter
    (fun (name, g) ->
      let orbit =
        List.find_opt (List.exists (Reversible.Revfun.equal g)) orbits
      in
      match orbit with
      | Some members ->
          Format.printf "  %s = %a lies in an orbit of %d@." name Reversible.Revfun.pp g
            (List.length members)
      | None -> Format.printf "  %s not found in G[4] family (unexpected)@." name)
    named;

  (* Every family member has a witness cascade of 3 controlled gates and
     1 Feynman gate, as the paper states. *)
  let shape_ok =
    List.for_all
      (fun (m : Fmcf.member) ->
        let cascade = Fmcf.cascade_of_member census m in
        let v, f =
          List.fold_left
            (fun (v, f) g ->
              match Gate.kind g with
              | Gate.Feynman -> (v, f + 1)
              | _ -> (v + 1, f))
            (0, 0) cascade
        in
        v = 3 && f = 1)
      family
  in
  Format.printf "every family witness uses 3 controlled gates + 1 Feynman: %b@." shape_ok;

  (* Theorem 2. *)
  let g_size, h_size = Universality.theorem2_check ~bits:3 in
  Format.printf "@.Theorem 2: |G| = %d, |S8| = %d = 8 x %d, cosets disjoint@." g_size
    h_size g_size;

  (* |G| again via Schreier-Sims on the paper's generating set. *)
  let order =
    Universality.group_order ~bits:3
      (Reversible.Gates.g1 :: Universality.cnots ~bits:3)
  in
  Format.printf "Schreier-Sims order of <Feynman gates, Peres> = %d@." order
