let m_sifts = Telemetry.Counter.create "schreier.sifts"
let m_residues = Telemetry.Counter.create "schreier.residues"
let m_orbit_points = Telemetry.Counter.create "schreier.orbit.points"
let g_chain_length = Telemetry.Gauge.create "schreier.chain.length"
let h_build = Telemetry.Histogram.create "schreier.build.seconds"

type level = {
  base : int;
  mutable gens : Perm.t list;
  (* orbit point -> group element mapping [base] to that point *)
  mutable transversal : (int, Perm.t) Hashtbl.t;
}

type t = { degree : int; mutable levels : level list }

let degree chain = chain.degree

let first_moved p =
  let rec go i =
    if i >= Perm.degree p then None
    else if Perm.apply p i <> i then Some i
    else go (i + 1)
  in
  go 0

let recompute_orbit degree level =
  let transversal = Hashtbl.create 16 in
  Hashtbl.add transversal level.base (Perm.identity degree);
  let queue = Queue.create () in
  Queue.add level.base queue;
  while not (Queue.is_empty queue) do
    let x = Queue.pop queue in
    let rep = Hashtbl.find transversal x in
    List.iter
      (fun s ->
        let y = Perm.apply s x in
        if not (Hashtbl.mem transversal y) then begin
          Hashtbl.add transversal y (Perm.mul rep s);
          Queue.add y queue
        end)
      level.gens
  done;
  Telemetry.Counter.add m_orbit_points (Hashtbl.length transversal);
  level.transversal <- transversal

(* Sift [g] through levels [i..]; [None] when [g] factors completely into
   transversal representatives (i.e. is a member of the level-[i] group),
   [Some (j, residue)] when sifting stops: either the image of base [j]
   left the orbit, or ([j] = chain length) the chain must grow. *)
let sift_from chain i g =
  Telemetry.Counter.incr m_sifts;
  let rec go levels j g =
    match levels with
    | [] -> if Perm.is_identity g then None else Some (j, g)
    | level :: rest -> (
        let x = Perm.apply g level.base in
        match Hashtbl.find_opt level.transversal x with
        | None -> Some (j, g)
        | Some rep -> go rest (j + 1) (Perm.mul g (Perm.inverse rep)))
  in
  let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl in
  go (drop i chain.levels) i g

(* A residue [r] found while verifying level [i], with sifting stopped at
   level [j], fixes the base points of levels [0..j-1] and therefore belongs
   to the stabilizer groups of every level in [i+1..j]: add it to all their
   generating sets (creating level [j] when the chain must grow). *)
let insert_residue chain ~low ~stop r =
  Telemetry.Counter.incr m_residues;
  let len = List.length chain.levels in
  if stop = len then begin
    let base =
      match first_moved r with
      | Some b -> b
      | None -> invalid_arg "Schreier.insert_residue: identity residue"
    in
    let level = { base; gens = []; transversal = Hashtbl.create 16 } in
    chain.levels <- chain.levels @ [ level ]
  end;
  List.iteri
    (fun m level -> if m >= low && m <= stop then level.gens <- r :: level.gens)
    chain.levels

(* Complete level [i], assuming deeper levels are complete: recompute the
   orbit and sift every Schreier generator through the subchain; each
   surviving residue is a missing generator of the deeper stabilizers. *)
let rec complete chain i =
  if i < List.length chain.levels then begin
    let level = List.nth chain.levels i in
    recompute_orbit chain.degree level;
    let again = ref true in
    while !again do
      again := false;
      let points = Hashtbl.fold (fun x _ acc -> x :: acc) level.transversal [] in
      (try
         List.iter
           (fun x ->
             let rep_x = Hashtbl.find level.transversal x in
             List.iter
               (fun s ->
                 let u = Perm.mul rep_x s in
                 let y = Perm.apply u level.base in
                 let rep_y = Hashtbl.find level.transversal y in
                 let schreier = Perm.mul u (Perm.inverse rep_y) in
                 if not (Perm.is_identity schreier) then
                   match sift_from chain (i + 1) schreier with
                   | None -> ()
                   | Some (j, residue) ->
                       insert_residue chain ~low:(i + 1) ~stop:j residue;
                       for m = j downto i + 1 do
                         complete chain m
                       done;
                       again := true;
                       raise Exit)
               level.gens)
           points
       with Exit -> ())
    done
  end

let of_generators ~degree gens =
  Telemetry.Histogram.time h_build @@ fun () ->
  Telemetry.Span.with_span "schreier.build" @@ fun () ->
  List.iter
    (fun g ->
      if Perm.degree g <> degree then
        invalid_arg "Schreier.of_generators: degree mismatch")
    gens;
  let gens = List.filter (fun g -> not (Perm.is_identity g)) gens in
  let chain = { degree; levels = [] } in
  (match gens with
  | [] -> ()
  | first :: _ ->
      let base =
        match first_moved first with Some b -> b | None -> assert false
      in
      chain.levels <- [ { base; gens; transversal = Hashtbl.create 16 } ];
      complete chain 0);
  Telemetry.Gauge.set_int g_chain_length (List.length chain.levels);
  Telemetry.Span.set_attr "levels" (Telemetry.Json.Int (List.length chain.levels));
  chain

let orbit_sizes chain =
  List.map (fun level -> Hashtbl.length level.transversal) chain.levels

let order chain =
  List.fold_left
    (fun acc n ->
      let product = acc * n in
      if product / n <> acc then failwith "Schreier.order: overflow";
      product)
    1 (orbit_sizes chain)

let base chain = List.map (fun level -> level.base) chain.levels

let mem chain g =
  Perm.degree g = chain.degree
  && match sift_from chain 0 g with None -> true | Some _ -> false

let sift chain g =
  match sift_from chain 0 g with None -> None | Some (_, residue) -> Some residue

let is_symmetric_group chain =
  let rec factorial n = if n <= 1 then 1 else n * factorial (n - 1) in
  chain.degree <= 20 && order chain = factorial chain.degree
