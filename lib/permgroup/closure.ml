let log_src = Logs.Src.create "qsynth.closure" ~doc:"Group closure enumeration"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_elements = Telemetry.Counter.create "closure.elements"
let m_levels = Telemetry.Counter.create "closure.levels"
let s_orbit_growth = Telemetry.Series.create "closure.level_sizes"
let h_generate = Telemetry.Histogram.create "closure.generate.seconds"

type t = {
  degree : int;
  table : (string, Perm.t * int) Hashtbl.t; (* key -> (element, BFS level) *)
}

let generate ?(limit = 10_000_000) gens =
  Telemetry.Histogram.time h_generate @@ fun () ->
  Telemetry.Span.with_span "closure.generate" @@ fun () ->
  let degree =
    match gens with
    | [] -> invalid_arg "Closure.generate: empty generating set"
    | g :: rest ->
        let d = Perm.degree g in
        if List.exists (fun h -> Perm.degree h <> d) rest then
          invalid_arg "Closure.generate: degree mismatch";
        d
  in
  let table = Hashtbl.create 1024 in
  let id = Perm.identity degree in
  Hashtbl.add table (Perm.key id) (id, 0);
  let frontier = ref [ id ] and level = ref 0 in
  Telemetry.Series.set s_orbit_growth ~index:0 1;
  while !frontier <> [] do
    incr level;
    let next = ref [] and fresh = ref 0 in
    List.iter
      (fun p ->
        List.iter
          (fun g ->
            let q = Perm.mul p g in
            let k = Perm.key q in
            if not (Hashtbl.mem table k) then begin
              if Hashtbl.length table >= limit then
                invalid_arg "Closure.generate: group exceeds size limit";
              Hashtbl.add table k (q, !level);
              next := q :: !next;
              incr fresh
            end)
          gens)
      !frontier;
    Telemetry.Series.set s_orbit_growth ~index:!level !fresh;
    Telemetry.Counter.incr m_levels;
    Log.debug (fun m ->
        m "level %d: %d new elements, %d total" !level !fresh (Hashtbl.length table));
    frontier := !next
  done;
  Telemetry.Counter.add m_elements (Hashtbl.length table);
  Telemetry.Span.set_attr "size" (Telemetry.Json.Int (Hashtbl.length table));
  Log.info (fun m ->
      m "closure of %d generator(s): %d elements in %d level(s)" (List.length gens)
        (Hashtbl.length table) !level);
  { degree; table }

let size g = Hashtbl.length g.table
let degree g = g.degree
let mem g p = Perm.degree p = g.degree && Hashtbl.mem g.table (Perm.key p)
let elements g = Hashtbl.fold (fun _ (p, _) acc -> p :: acc) g.table []
let iter f g = Hashtbl.iter (fun _ (p, _) -> f p) g.table
let fold f g init = Hashtbl.fold (fun _ (p, _) acc -> f p acc) g.table init
let elements_by_length g = Hashtbl.fold (fun _ pl acc -> pl :: acc) g.table []

let is_subgroup_of sub sup =
  sub.degree = sup.degree
  && Hashtbl.fold (fun k _ acc -> acc && Hashtbl.mem sup.table k) sub.table true
