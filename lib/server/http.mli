(** Minimal single-threaded HTTP listener for the daemon's
    observability endpoints — deliberately not a web framework: one
    accept loop on one thread, [Connection: close] on every response,
    three routes.

    - [GET /metrics]: the {!Telemetry.Prometheus} exposition of the
      whole registry.
    - [GET /healthz]: liveness — [200 ok] whenever the listener runs.
    - [GET /readyz]: readiness — [200 ok] while the caller's [ready]
      callback returns true, [503] otherwise.  [serve] wires it to
      "index and warm engine loaded, drain not begun", so it turns 503
      the moment a drain starts (before the Unix socket unlinks) and a
      load balancer can stop routing ahead of connection refusals.

    Anything else is [404]; non-GET methods are [405].  Requests are
    served sequentially — scrapes are cheap ({!Telemetry.Prometheus}
    renders from atomics) and the expected client count is one
    Prometheus server, not the public internet. *)

type t

(** [start ?host ~port ~ready ()] binds [host:port] (default host
    ["127.0.0.1"]; [port = 0] picks an ephemeral port, see {!port}) and
    serves on a background thread until {!stop}.
    @raise Unix.Unix_error when the address cannot be bound. *)
val start : ?host:string -> port:int -> ready:(unit -> bool) -> unit -> t

(** [port t] is the bound port (useful with [port = 0]). *)
val port : t -> int

(** [stop t] shuts the listener down and joins its thread; idempotent. *)
val stop : t -> unit
