(** Minimal single-threaded HTTP listener for the daemon's
    observability endpoints — deliberately not a web framework: one
    accept loop on one thread, [Connection: close] on every response,
    three routes.

    - [GET /metrics]: the {!Telemetry.Prometheus} exposition of the
      whole registry.
    - [GET /healthz]: liveness — [200 ok] whenever the listener runs.
    - [GET /readyz]: readiness — [200] with the caller's [describe]
      body (default ["ok\n"]) while the [ready] callback returns true,
      [503 not ready] otherwise.  [serve] wires [ready] to "index and
      warm engine loaded, drain not begun" — so it turns 503 the moment
      a drain starts (before the Unix socket unlinks) and a load
      balancer can stop routing ahead of connection refusals — and
      [describe] to a one-line summary of the published index (size,
      depth, coverage, completeness).

    Anything else is [404]; non-GET methods are [405].  Requests are
    served sequentially — scrapes are cheap ({!Telemetry.Prometheus}
    renders from atomics) and the expected client count is one
    Prometheus server, not the public internet. *)

type t

(** [start ?host ?describe ~port ~ready ()] binds [host:port] (default
    host ["127.0.0.1"]; [port = 0] picks an ephemeral port, see {!port})
    and serves on a background thread until {!stop}.  [describe]
    produces the [200 /readyz] body per request (default ["ok\n"]); it
    runs on the listener thread, so keep it cheap and thread-safe.
    @raise Unix.Unix_error when the address cannot be bound. *)
val start :
  ?host:string ->
  ?describe:(unit -> string) ->
  port:int ->
  ready:(unit -> bool) ->
  unit ->
  t

(** [port t] is the bound port (useful with [port = 0]). *)
val port : t -> int

(** [stop t] shuts the listener down and joins its thread; idempotent. *)
val stop : t -> unit
