open Synthesis
module Json = Telemetry.Json

let m_retries = Telemetry.Counter.create "loadgen.retries"

type results = {
  sent : int;
  answered : int;
  ok : int;
  overloaded : int;
  retried : int;
  shutting_down : int;
  errors : int;
  duration_s : float;
  offered_rps : float;
  achieved_rps : float;
  mean_ms : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  p999_ms : float;
  max_ms : float;
}

let float_or_null f = if Float.is_nan f then Json.Null else Json.Float f

let results_to_json r =
  Json.Obj
    [
      ("sent", Json.Int r.sent);
      ("answered", Json.Int r.answered);
      ("ok", Json.Int r.ok);
      ("overloaded", Json.Int r.overloaded);
      ("retried", Json.Int r.retried);
      ("shutting_down", Json.Int r.shutting_down);
      ("errors", Json.Int r.errors);
      ("duration_s", Json.Float r.duration_s);
      ("offered_rps", Json.Float r.offered_rps);
      ("achieved_rps", Json.Float r.achieved_rps);
      ("mean_ms", float_or_null r.mean_ms);
      ("p50_ms", float_or_null r.p50_ms);
      ("p90_ms", float_or_null r.p90_ms);
      ("p99_ms", float_or_null r.p99_ms);
      ("p999_ms", float_or_null r.p999_ms);
      ("max_ms", float_or_null r.max_ms);
    ]

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else
    let idx = int_of_float (Float.ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

(* One in-flight request: the scheduled arrival keeps charging latency
   across retries (coordinated-omission correction applies to the whole
   attempt chain, not just the last hop). *)
type pending_entry = {
  p_scheduled : float;
  p_req : Mce.Request.t;
  mutable p_attempts : int;  (* retries already dispatched *)
}

let run ?(connections = 4) ?(seed = 42) ?(drain_timeout_s = 30.) ?max_frame
    ?(max_retries = 0) ~socket ~rps ~duration_s mix =
  if mix = [] then invalid_arg "Loadgen.run: empty request mix";
  if rps <= 0. then invalid_arg "Loadgen.run: rps must be positive";
  if duration_s <= 0. then invalid_arg "Loadgen.run: duration_s must be positive";
  if connections < 1 then invalid_arg "Loadgen.run: connections must be >= 1";
  if max_retries < 0 then invalid_arg "Loadgen.run: max_retries must be >= 0";
  let mix = Array.of_list mix in
  let rng = Random.State.make [| seed |] in
  let fds = Array.init connections (fun _ -> Protocol.connect socket) in
  (* shared accounting, guarded by [mutex]; [outstanding] is atomic so
     the drain loop can poll it without the lock *)
  let mutex = Mutex.create () in
  let pending : (string, pending_entry) Hashtbl.t = Hashtbl.create 1024 in
  let latencies = ref [] in
  let answered = ref 0 in
  let ok = ref 0 in
  let overloaded = ref 0 in
  let retried = ref 0 in
  let shutting_down = ref 0 in
  let errors = ref 0 in
  let outstanding = Atomic.make 0 in
  (* retry threads and the dispatcher may target the same connection;
     frames must not interleave *)
  let send_mutexes = Array.init connections (fun _ -> Mutex.create ()) in
  let send c req =
    Mutex.protect send_mutexes.(c) (fun () ->
        Protocol.write_frame ?max_len:max_frame fds.(c)
          (Json.to_string (Mce.Request.to_json req)))
  in
  let retry_threads = ref [] in
  (* An Overloaded reply under the retry budget re-sends the same id
     after the daemon's retry_after_ms hint, with capped exponential
     backoff and deterministic jitter; the sleep runs on its own thread
     so the reader keeps draining the connection. *)
  let spawn_retry id e retry_after_ms =
    let t =
      Thread.create
        (fun () ->
          let base = float_of_int (max 1 retry_after_ms) /. 1000. in
          let d = Float.min 2.0 (base *. (2. ** float_of_int (e.p_attempts - 1))) in
          let jitter =
            float_of_int (Hashtbl.hash (id, e.p_attempts) land 63) /. 1000.
          in
          Thread.delay (d +. jitter);
          try send (Hashtbl.hash id mod connections) e.p_req
          with Unix.Unix_error _ | Invalid_argument _ ->
            Mutex.protect mutex (fun () ->
                Hashtbl.remove pending id;
                incr errors);
            ignore (Atomic.fetch_and_add outstanding (-1)))
        ()
    in
    Mutex.protect mutex (fun () -> retry_threads := t :: !retry_threads)
  in
  let reader fd =
    let rec loop () =
      match Protocol.read_frame ?max_len:max_frame fd with
      | Error _ -> ()
      | Ok payload ->
          let now = Unix.gettimeofday () in
          (match Mce.Response.of_string payload with
          | Ok resp ->
              let action =
                match resp.Mce.Response.id with
                | None -> `Final None
                | Some id ->
                    Mutex.protect mutex (fun () ->
                        match Hashtbl.find_opt pending id with
                        | None -> `Final None
                        | Some e -> (
                            match resp.Mce.Response.body with
                            | Error (Mce.Response.Overloaded { retry_after_ms })
                              when e.p_attempts < max_retries ->
                                e.p_attempts <- e.p_attempts + 1;
                                incr retried;
                                Telemetry.Counter.incr m_retries;
                                `Retry (id, e, retry_after_ms)
                            | _ ->
                                Hashtbl.remove pending id;
                                `Final (Some e.p_scheduled)))
              in
              (match action with
              | `Retry (id, e, hint) -> spawn_retry id e hint
              | `Final scheduled ->
                  Mutex.lock mutex;
                  incr answered;
                  (match resp.Mce.Response.body with
                  | Ok _ -> incr ok
                  | Error (Mce.Response.Overloaded _) -> incr overloaded
                  | Error Mce.Response.Shutting_down -> incr shutting_down
                  | Error _ -> incr errors);
                  (match scheduled with
                  | Some s -> latencies := (now -. s) :: !latencies
                  | None -> ());
                  Mutex.unlock mutex;
                  ignore (Atomic.fetch_and_add outstanding (-1)))
          | Error _ ->
              Mutex.lock mutex;
              incr answered;
              incr errors;
              Mutex.unlock mutex;
              ignore (Atomic.fetch_and_add outstanding (-1)));
          loop ()
    in
    loop ()
  in
  let readers = Array.map (fun fd -> Thread.create reader fd) fds in
  (* Poisson dispatch: exponential inter-arrivals at [rps], each request
     stamped with a generator-unique id and its scheduled arrival time.
     When the dispatcher falls behind it sends immediately (no sleep) —
     the schedule, not the socket, is the latency reference. *)
  let seq = ref 0 in
  let conn = ref 0 in
  let start = Unix.gettimeofday () in
  let deadline = start +. duration_s in
  let next = ref start in
  let step () =
    next := !next +. (-.log (1. -. Random.State.float rng 1.) /. rps)
  in
  step ();
  while !next < deadline do
    let dt = !next -. Unix.gettimeofday () in
    if dt > 0. then Thread.delay dt;
    let template = mix.(Random.State.int rng (Array.length mix)) in
    let id = Printf.sprintf "lg-%06d" !seq in
    incr seq;
    let req = { template with Mce.Request.id = Some id } in
    Mutex.protect mutex (fun () ->
        Hashtbl.replace pending id
          { p_scheduled = !next; p_req = req; p_attempts = 0 });
    ignore (Atomic.fetch_and_add outstanding 1);
    (try send !conn req
     with Unix.Unix_error _ | Invalid_argument _ ->
       Mutex.protect mutex (fun () ->
           Hashtbl.remove pending id;
           incr errors);
       ignore (Atomic.fetch_and_add outstanding (-1)));
    conn := (!conn + 1) mod connections;
    step ()
  done;
  let dispatch_end = Unix.gettimeofday () in
  let drain_deadline = dispatch_end +. drain_timeout_s in
  while Atomic.get outstanding > 0 && Unix.gettimeofday () < drain_deadline do
    Thread.delay 0.005
  done;
  Array.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    fds;
  Array.iter Thread.join readers;
  (* readers are done, so no new retries can be spawned; late retry
     sends hit the shut-down sockets and count as errors *)
  List.iter Thread.join
    (Mutex.protect mutex (fun () -> !retry_threads));
  Array.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    fds;
  let lat = Array.of_list !latencies in
  Array.sort compare lat;
  let to_ms s = 1000. *. s in
  let duration = dispatch_end -. start in
  let mean =
    if Array.length lat = 0 then Float.nan
    else Array.fold_left ( +. ) 0. lat /. float_of_int (Array.length lat)
  in
  {
    sent = !seq;
    answered = !answered;
    ok = !ok;
    overloaded = !overloaded;
    retried = !retried;
    shutting_down = !shutting_down;
    errors = !errors;
    duration_s = duration;
    offered_rps = rps;
    achieved_rps =
      (if duration > 0. then float_of_int !answered /. duration else Float.nan);
    mean_ms = to_ms mean;
    p50_ms = to_ms (percentile lat 0.50);
    p90_ms = to_ms (percentile lat 0.90);
    p99_ms = to_ms (percentile lat 0.99);
    p999_ms = to_ms (percentile lat 0.999);
    max_ms =
      (if Array.length lat = 0 then Float.nan
       else to_ms lat.(Array.length lat - 1));
  }
