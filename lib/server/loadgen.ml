open Synthesis
module Json = Telemetry.Json

type results = {
  sent : int;
  answered : int;
  ok : int;
  overloaded : int;
  shutting_down : int;
  errors : int;
  duration_s : float;
  offered_rps : float;
  achieved_rps : float;
  mean_ms : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  p999_ms : float;
  max_ms : float;
}

let float_or_null f = if Float.is_nan f then Json.Null else Json.Float f

let results_to_json r =
  Json.Obj
    [
      ("sent", Json.Int r.sent);
      ("answered", Json.Int r.answered);
      ("ok", Json.Int r.ok);
      ("overloaded", Json.Int r.overloaded);
      ("shutting_down", Json.Int r.shutting_down);
      ("errors", Json.Int r.errors);
      ("duration_s", Json.Float r.duration_s);
      ("offered_rps", Json.Float r.offered_rps);
      ("achieved_rps", Json.Float r.achieved_rps);
      ("mean_ms", float_or_null r.mean_ms);
      ("p50_ms", float_or_null r.p50_ms);
      ("p90_ms", float_or_null r.p90_ms);
      ("p99_ms", float_or_null r.p99_ms);
      ("p999_ms", float_or_null r.p999_ms);
      ("max_ms", float_or_null r.max_ms);
    ]

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else
    let idx = int_of_float (Float.ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let run ?(connections = 4) ?(seed = 42) ?(drain_timeout_s = 30.) ?max_frame
    ~socket ~rps ~duration_s mix =
  if mix = [] then invalid_arg "Loadgen.run: empty request mix";
  if rps <= 0. then invalid_arg "Loadgen.run: rps must be positive";
  if duration_s <= 0. then invalid_arg "Loadgen.run: duration_s must be positive";
  if connections < 1 then invalid_arg "Loadgen.run: connections must be >= 1";
  let mix = Array.of_list mix in
  let rng = Random.State.make [| seed |] in
  let fds = Array.init connections (fun _ -> Protocol.connect socket) in
  (* shared accounting, guarded by [mutex]; [outstanding] is atomic so
     the drain loop can poll it without the lock *)
  let mutex = Mutex.create () in
  let pending : (string, float) Hashtbl.t = Hashtbl.create 1024 in
  let latencies = ref [] in
  let answered = ref 0 in
  let ok = ref 0 in
  let overloaded = ref 0 in
  let shutting_down = ref 0 in
  let errors = ref 0 in
  let outstanding = Atomic.make 0 in
  let reader fd =
    let rec loop () =
      match Protocol.read_frame ?max_len:max_frame fd with
      | Error _ -> ()
      | Ok payload ->
          let now = Unix.gettimeofday () in
          (match Mce.Response.of_string payload with
          | Ok resp ->
              let scheduled =
                match resp.Mce.Response.id with
                | None -> None
                | Some id ->
                    Mutex.protect mutex (fun () ->
                        match Hashtbl.find_opt pending id with
                        | Some s ->
                            Hashtbl.remove pending id;
                            Some s
                        | None -> None)
              in
              Mutex.lock mutex;
              incr answered;
              (match resp.Mce.Response.body with
              | Ok _ -> incr ok
              | Error (Mce.Response.Overloaded _) -> incr overloaded
              | Error Mce.Response.Shutting_down -> incr shutting_down
              | Error _ -> incr errors);
              (match scheduled with
              | Some s -> latencies := (now -. s) :: !latencies
              | None -> ());
              Mutex.unlock mutex
          | Error _ ->
              Mutex.lock mutex;
              incr answered;
              incr errors;
              Mutex.unlock mutex);
          ignore (Atomic.fetch_and_add outstanding (-1));
          loop ()
    in
    loop ()
  in
  let readers = Array.map (fun fd -> Thread.create reader fd) fds in
  (* Poisson dispatch: exponential inter-arrivals at [rps], each request
     stamped with a generator-unique id and its scheduled arrival time.
     When the dispatcher falls behind it sends immediately (no sleep) —
     the schedule, not the socket, is the latency reference. *)
  let seq = ref 0 in
  let conn = ref 0 in
  let start = Unix.gettimeofday () in
  let deadline = start +. duration_s in
  let next = ref start in
  let step () =
    next := !next +. (-.log (1. -. Random.State.float rng 1.) /. rps)
  in
  step ();
  while !next < deadline do
    let dt = !next -. Unix.gettimeofday () in
    if dt > 0. then Thread.delay dt;
    let template = mix.(Random.State.int rng (Array.length mix)) in
    let id = Printf.sprintf "lg-%06d" !seq in
    incr seq;
    let req = { template with Mce.Request.id = Some id } in
    Mutex.protect mutex (fun () -> Hashtbl.replace pending id !next);
    ignore (Atomic.fetch_and_add outstanding 1);
    (try
       Protocol.write_frame ?max_len:max_frame fds.(!conn)
         (Json.to_string (Mce.Request.to_json req))
     with Unix.Unix_error _ | Invalid_argument _ ->
       Mutex.protect mutex (fun () ->
           Hashtbl.remove pending id;
           incr errors);
       ignore (Atomic.fetch_and_add outstanding (-1)));
    conn := (!conn + 1) mod connections;
    step ()
  done;
  let dispatch_end = Unix.gettimeofday () in
  let drain_deadline = dispatch_end +. drain_timeout_s in
  while Atomic.get outstanding > 0 && Unix.gettimeofday () < drain_deadline do
    Thread.delay 0.005
  done;
  Array.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    fds;
  Array.iter Thread.join readers;
  Array.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    fds;
  let lat = Array.of_list !latencies in
  Array.sort compare lat;
  let to_ms s = 1000. *. s in
  let duration = dispatch_end -. start in
  let mean =
    if Array.length lat = 0 then Float.nan
    else Array.fold_left ( +. ) 0. lat /. float_of_int (Array.length lat)
  in
  {
    sent = !seq;
    answered = !answered;
    ok = !ok;
    overloaded = !overloaded;
    shutting_down = !shutting_down;
    errors = !errors;
    duration_s = duration;
    offered_rps = rps;
    achieved_rps =
      (if duration > 0. then float_of_int !answered /. duration else Float.nan);
    mean_ms = to_ms mean;
    p50_ms = to_ms (percentile lat 0.50);
    p90_ms = to_ms (percentile lat 0.90);
    p99_ms = to_ms (percentile lat 0.99);
    p999_ms = to_ms (percentile lat 0.999);
    max_ms =
      (if Array.length lat = 0 then Float.nan
       else to_ms lat.(Array.length lat - 1));
  }
