(** Open-loop load generator for the daemon — the measurement harness
    behind [bench/loadgen.exe] and the [server_load] rows of
    [BENCH_*.json].

    Open loop means arrivals are scheduled by a Poisson process at the
    offered rate and are {e never} delayed by slow responses: when the
    daemon lags, requests keep arriving and latency grows, exactly as
    with independent production clients.  (A closed loop — issue, wait,
    repeat — would silently throttle the offered load to the daemon's
    pace and hide every queueing effect worth measuring.)

    Latency is measured from each request's {e scheduled} arrival time,
    not from the moment the frame hit the socket, so a dispatcher that
    falls behind schedule shows up as latency rather than being absorbed
    (the coordinated-omission correction).

    Requests are stamped with generator-unique ids and pipelined over a
    small pool of connections; per-connection reader threads correlate
    responses by id, so out-of-order answers are handled. *)

type results = {
  sent : int;
  answered : int;  (** responses received before the drain timeout *)
  ok : int;
  overloaded : int;  (** {e final} backpressure rejections ([Overloaded]) *)
  retried : int;
      (** re-sends triggered by [Overloaded] replies under the
          [max_retries] budget (each also ticks the [loadgen.retries]
          telemetry counter); a request that ultimately succeeds after
          retries counts in [ok], not in [overloaded] *)
  shutting_down : int;
  errors : int;  (** every other error body, or undecodable responses *)
  duration_s : float;  (** dispatch window actually used *)
  offered_rps : float;
  achieved_rps : float;  (** answered / duration *)
  mean_ms : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  p999_ms : float;
  max_ms : float;
}

val results_to_json : results -> Telemetry.Json.t

(** [run ?connections ?seed ?drain_timeout_s ?max_frame ~socket ~rps
    ~duration_s mix] offers [rps] requests per second for [duration_s]
    seconds against the daemon at [socket], drawing uniformly from
    [mix] (weight a request by repeating it), then waits up to
    [drain_timeout_s] (default 30) for outstanding responses.
    [connections] (default 4) sizes the pipelined connection pool;
    [seed] (default 42) fixes the arrival process and the mix draw, so
    a run is reproducible against a deterministic daemon.
    [max_retries] (default 0: report every [Overloaded] as a final
    outcome) re-sends a request rejected with [Overloaded] up to that
    many times, sleeping the daemon's [retry_after_ms] hint with capped
    exponential backoff and jitter between attempts; latency for a
    retried request is still measured from its original scheduled
    arrival, so retry delay shows up in the percentiles instead of
    being absorbed.
    @raise Invalid_argument on an empty mix, non-positive rate or
    duration, or negative [max_retries];
    @raise Unix.Unix_error when nothing serves at [socket]. *)
val run :
  ?connections:int ->
  ?seed:int ->
  ?drain_timeout_s:float ->
  ?max_frame:int ->
  ?max_retries:int ->
  socket:string ->
  rps:float ->
  duration_s:float ->
  Synthesis.Mce.Request.t list ->
  results
