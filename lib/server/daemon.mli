(** The [qsynth serve] daemon: accepts connections on a Unix-domain
    socket, decodes request frames ({!Protocol}), and evaluates them on
    a pool of worker domains through a shared {!Service}.

    Lifecycle: {!start} binds the socket and spawns the accept thread,
    one reader thread per connection, and the worker pool; {!stop}
    initiates a graceful drain — stop accepting, answer every request
    already accepted, tell late frames {!Synthesis.Mce.Response.Shutting_down},
    close every connection, unlink the socket; {!wait} blocks until the
    drain completes.  {!run} is the CLI entry: start, park until
    [SIGTERM]/[SIGINT], drain, return.

    Backpressure: the request queue is bounded; when it is full a
    request is rejected immediately with [Overloaded {retry_after_ms}]
    rather than queued — the client owns the retry.  Responses to one
    connection are written under a per-connection lock, so concurrent
    workers never interleave frames; within one connection, pipelined
    requests may be answered out of order (correlate with
    [Request.id]). *)

type t

(** [start ?workers ?queue_capacity ?max_frame ?slow_ms ?slow_oc ?trace
    ~socket service] binds [socket] (replacing a stale socket file left
    by a dead daemon; refusing a live one or a non-socket file) and
    returns once the daemon is accepting.
    [workers] (default 2) is the worker-domain count; [queue_capacity]
    (default 64) bounds the accepted-but-unstarted queue.

    Observability: when [trace] is true or [slow_ms] is given, every
    accepted request is assigned a trace id (echoed in the response's
    [trace] field and attached to its [server.request] span tree) and
    evaluated through {!Service.answer_timed}; requests whose total
    latency (queueing included) reaches [slow_ms] milliseconds are
    logged as one JSON object per line on [slow_oc] (default [stderr];
    [slow_ms = 0] logs every request).  With neither, requests take the
    uninstrumented {!Service.answer} path and responses never carry a
    trace id — byte-identical to one-shot evaluation.
    @raise Invalid_argument on nonsensical parameters;
    @raise Failure when the socket path is unusable or busy. *)
val start :
  ?workers:int ->
  ?queue_capacity:int ->
  ?max_frame:int ->
  ?slow_ms:int ->
  ?slow_oc:out_channel ->
  ?trace:bool ->
  socket:string ->
  Service.t ->
  t

val socket_path : t -> string

(** [draining t] is true from the moment {!stop} is first called — the
    daemon's readiness complement ([/readyz] turns 503 on it). *)
val draining : t -> bool

(** [stop t] initiates the drain; idempotent, returns immediately. *)
val stop : t -> unit

(** [wait t] blocks until the daemon has fully drained: accept loop
    exited, socket unlinked, every accepted request answered, worker
    domains joined.  Idempotent. *)
val wait : t -> unit

(** [run ?workers ?queue_capacity ?max_frame ?slow_ms ?slow_oc ?trace
    ~socket service] serves until [SIGTERM] or [SIGINT] arrives, then
    drains and returns.  Installs handlers for both signals (they only
    request the drain; the drain itself runs in the calling thread). *)
val run :
  ?workers:int ->
  ?queue_capacity:int ->
  ?max_frame:int ->
  ?slow_ms:int ->
  ?slow_oc:out_channel ->
  ?trace:bool ->
  socket:string ->
  Service.t ->
  unit
