open Synthesis
module Json = Telemetry.Json

let log_src = Logs.Src.create "qsynth.daemon" ~doc:"Synthesis daemon"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_connections = Telemetry.Counter.create "server.connections"
let m_requests = Telemetry.Counter.create "server.requests"
let m_rejected = Telemetry.Counter.create "server.rejected.overload"
let m_shutdown_replies = Telemetry.Counter.create "server.rejected.shutdown"
let m_bad_frames = Telemetry.Counter.create "server.bad_frames"
let m_slow = Telemetry.Counter.create "server.slow_queries"
let g_queue_depth = Telemetry.Gauge.create "server.queue.depth"
let g_inflight = Telemetry.Gauge.create "server.inflight"
let g_drain_pending = Telemetry.Gauge.create "server.drain.pending"
let h_request = Telemetry.Histogram.create "server.request.seconds"

let retry_after_ms = 100
let conn_recv_timeout_s = 10.

(* A connection is closed by whoever finishes last: the reader (on EOF
   or drain) when no response is still owed, else the worker that writes
   the final owed response. *)
type conn = {
  fd : Unix.file_descr;
  wmutex : Mutex.t; (* serializes response frames *)
  cmutex : Mutex.t; (* guards pending/eof/closed *)
  mutable pending : int; (* responses owed by workers *)
  mutable eof : bool; (* reader is done with this connection *)
  mutable closed : bool;
}

type job = {
  j_req : Mce.Request.t;
  j_conn : conn;
  j_arrival : float;
  j_trace : string option; (* assigned at admission when observing *)
  j_depth : int; (* queue depth at admission *)
}

(* Per-request observability configuration: set when [serve] runs with
   [--trace-file] or [--slow-ms].  Requests then flow through
   {!Service.answer_timed}, get a trace id stamped into the response,
   and over-threshold requests are logged. *)
type obs = {
  o_slow_s : float option; (* threshold in seconds; [Some 0.] logs all *)
  o_slow_oc : out_channel;
  o_slow_mutex : Mutex.t;
}

type t = {
  service : Service.t;
  path : string;
  listen_fd : Unix.file_descr;
  max_frame : int;
  queue_capacity : int;
  obs : obs option;
  trace_seq : int Atomic.t;
  trace_prefix : string;
  inflight : int Atomic.t; (* exact flips happen under qmutex *)
  queue : job Queue.t; (* guarded by qmutex *)
  qmutex : Mutex.t;
  qcond : Condition.t; (* workers sleep here; broadcast on push/drain *)
  draining : bool Atomic.t; (* authoritative flips happen under qmutex *)
  rmutex : Mutex.t; (* guards readers *)
  mutable readers : Thread.t list;
  mutable accepter : Thread.t option; (* immutable after start, in effect *)
  mutable workers : unit Domain.t list;
  wait_mutex : Mutex.t;
  mutable waited : bool;
}

let socket_path t = t.path
let draining t = Atomic.get t.draining

let next_trace_id t =
  Printf.sprintf "%s-%06x" t.trace_prefix (Atomic.fetch_and_add t.trace_seq 1)

let conn_close_if_done c =
  Mutex.lock c.cmutex;
  let close_now = c.eof && c.pending = 0 && not c.closed in
  if close_now then c.closed <- true;
  Mutex.unlock c.cmutex;
  if close_now then try Unix.close c.fd with Unix.Unix_error _ -> ()

let write_response t c (resp : Mce.Response.t) =
  let payload = Mce.Response.to_string resp in
  Mutex.lock c.wmutex;
  (try Protocol.write_frame ~max_len:t.max_frame c.fd payload
   with Unix.Unix_error _ | Invalid_argument _ ->
     (* client vanished (or response exceeds the frame cap — then the
        client's read fails anyway); nothing useful left to do *)
     ());
  Mutex.unlock c.wmutex

(* {1 Workers} *)

let outcome_of (resp : Mce.Response.t) =
  match resp.body with
  | Ok _ -> "ok"
  | Error (Mce.Response.Bad_request _) -> "bad-request"
  | Error (Mce.Response.Unsupported _) -> "unsupported"
  | Error (Mce.Response.Overloaded _) -> "overloaded"
  | Error Mce.Response.Deadline_exceeded -> "deadline-exceeded"
  | Error Mce.Response.Shutting_down -> "shutting-down"
  | Error Mce.Response.Cancelled -> "cancelled"
  | Error (Mce.Response.Internal _) -> "internal"

let slow_log obs job resp (timing : Service.timing) ~queue_wait_s ~write_s
    ~total_s =
  let line =
    Json.Obj
      ([ ("type", Json.String "slow_query") ]
      @ (match job.j_trace with
        | Some tr -> [ ("trace", Json.String tr) ]
        | None -> [])
      @ (match job.j_req.Mce.Request.id with
        | Some id -> [ ("id", Json.String id) ]
        | None -> [])
      @ [
          ("key", Json.String (Mce.Request.key job.j_req));
          ( "plan",
            match timing.Service.plan with
            | Some p -> Json.String p
            | None -> Json.Null );
          ( "source",
            Json.String
              (match timing.Service.source with
              | `Cache_hit -> "cache"
              | `Coalesced -> "coalesced"
              | `Computed -> "computed") );
          ("outcome", Json.String (outcome_of resp));
          ("queue_depth", Json.Int job.j_depth);
          ("queue_wait_s", Json.Float queue_wait_s);
          ("cache_s", Json.Float timing.Service.cache_s);
          ("coalesce_wait_s", Json.Float timing.Service.coalesce_wait_s);
          ("solve_s", Json.Float timing.Service.solve_s);
          ("write_s", Json.Float write_s);
          ("total_s", Json.Float total_s);
        ])
  in
  Mutex.lock obs.o_slow_mutex;
  output_string obs.o_slow_oc (Json.to_string line);
  output_char obs.o_slow_oc '\n';
  flush obs.o_slow_oc;
  Mutex.unlock obs.o_slow_mutex

(* The observed variant: clock every stage, build the request span tree,
   stamp the trace id into the response, and feed the slow-query log.
   The unobserved path below stays free of all of it. *)
let process_observed t obs job =
  let started = Unix.gettimeofday () in
  let queue_wait_s = started -. job.j_arrival in
  let attrs =
    (match job.j_trace with
    | Some tr -> [ ("trace", Json.String tr) ]
    | None -> [])
    @ [
        ("key", Json.String (Mce.Request.key job.j_req));
        ("queue_depth", Json.Int job.j_depth);
      ]
  in
  Telemetry.Span.with_span ~attrs "server.request" @@ fun () ->
  Telemetry.Span.record "server.queue_wait" ~start_s:job.j_arrival
    ~dur_s:queue_wait_s;
  let resp, timing = Service.answer_timed t.service job.j_req in
  let resp = Mce.Response.with_trace job.j_trace resp in
  let write_t0 = Unix.gettimeofday () in
  Telemetry.Span.with_span "server.write" (fun () ->
      write_response t job.j_conn resp);
  let now = Unix.gettimeofday () in
  let write_s = now -. write_t0 in
  let total_s = now -. job.j_arrival in
  (match obs.o_slow_s with
  | Some threshold when total_s >= threshold ->
      Telemetry.Counter.incr m_slow;
      slow_log obs job resp timing ~queue_wait_s ~write_s ~total_s
  | Some _ | None -> ())

let process t job =
  (match t.obs with
  | None ->
      let resp = Service.answer t.service job.j_req in
      write_response t job.j_conn resp
  | Some obs -> process_observed t obs job);
  Mutex.lock job.j_conn.cmutex;
  job.j_conn.pending <- job.j_conn.pending - 1;
  Mutex.unlock job.j_conn.cmutex;
  conn_close_if_done job.j_conn;
  Telemetry.Histogram.observe h_request (Unix.gettimeofday () -. job.j_arrival)

let rec worker_loop t =
  Mutex.lock t.qmutex;
  while Queue.is_empty t.queue && not (Atomic.get t.draining) do
    Condition.wait t.qcond t.qmutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.qmutex (* draining: exit *)
  else begin
    let job = Queue.pop t.queue in
    Telemetry.Gauge.set_int g_queue_depth (Queue.length t.queue);
    ignore (Atomic.fetch_and_add t.inflight 1);
    Telemetry.Gauge.set_int g_inflight (Atomic.get t.inflight);
    Mutex.unlock t.qmutex;
    Fun.protect
      ~finally:(fun () ->
        ignore (Atomic.fetch_and_add t.inflight (-1));
        Telemetry.Gauge.set_int g_inflight (Atomic.get t.inflight);
        if Atomic.get t.draining then Telemetry.Gauge.add g_drain_pending (-1.))
      (fun () -> process t job);
    worker_loop t
  end

(* {1 Readers} *)

let error_response (req : Mce.Request.t) err : Mce.Response.t =
  { id = req.Mce.Request.id; trace = None; qubits = req.Mce.Request.qubits; body = Error err }

let undecodable_response msg : Mce.Response.t =
  { id = None; trace = None; qubits = 0; body = Error (Mce.Response.Bad_request msg) }

(* Enqueue under qmutex so the drain transition is race-free: a job
   pushed here is visible to the workers before they can observe
   "draining && empty" and exit. *)
let enqueue t conn req arrival =
  Mutex.lock t.qmutex;
  if Atomic.get t.draining then begin
    Mutex.unlock t.qmutex;
    Telemetry.Counter.incr m_shutdown_replies;
    write_response t conn (error_response req Mce.Response.Shutting_down)
  end
  else if Queue.length t.queue >= t.queue_capacity then begin
    Mutex.unlock t.qmutex;
    Telemetry.Counter.incr m_rejected;
    write_response t conn
      (error_response req (Mce.Response.Overloaded { retry_after_ms }))
  end
  else begin
    Mutex.lock conn.cmutex;
    conn.pending <- conn.pending + 1;
    Mutex.unlock conn.cmutex;
    let trace =
      match t.obs with None -> None | Some _ -> Some (next_trace_id t)
    in
    let depth = Queue.length t.queue in
    Queue.push
      { j_req = req; j_conn = conn; j_arrival = arrival; j_trace = trace;
        j_depth = depth }
      t.queue;
    Telemetry.Gauge.set_int g_queue_depth (Queue.length t.queue);
    Telemetry.Counter.incr m_requests;
    Condition.signal t.qcond;
    Mutex.unlock t.qmutex
  end

let handle_frame t conn payload =
  let arrival = Unix.gettimeofday () in
  match Json.of_string payload with
  | exception Json.Parse_error msg ->
      Telemetry.Counter.incr m_bad_frames;
      write_response t conn (undecodable_response ("invalid JSON: " ^ msg))
  | json -> (
      match Mce.Request.of_json json with
      | Error msg ->
          Telemetry.Counter.incr m_bad_frames;
          write_response t conn (undecodable_response msg)
      | Ok req -> enqueue t conn req arrival)

let rec retry_select fd timeout =
  match Unix.select [ fd ] [] [] timeout with
  | r, _, _ -> r <> []
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_select fd timeout

let reader t conn =
  let finish () =
    Mutex.lock conn.cmutex;
    conn.eof <- true;
    Mutex.unlock conn.cmutex;
    conn_close_if_done conn
  in
  (* On drain: answer whatever frames are already in the socket buffer
     with Shutting_down (enqueue does that once draining is set), then
     hang up — clients blocked on a response they are owed still get it
     from the workers before the connection closes. *)
  let drain_sweep () =
    let rec sweep () =
      if retry_select conn.fd 0. then
        match Protocol.read_frame ~max_len:t.max_frame conn.fd with
        | Ok payload ->
            handle_frame t conn payload;
            sweep ()
        | Error _ -> ()
    in
    sweep ()
  in
  let rec loop () =
    if Atomic.get t.draining then drain_sweep ()
    else if not (retry_select conn.fd 0.25) then loop ()
    else
      match Protocol.read_frame ~max_len:t.max_frame conn.fd with
      | Ok payload ->
          handle_frame t conn payload;
          loop ()
      | Error Protocol.Closed -> ()
      | Error (Protocol.(Truncated | Timed_out | Oversized _) as e) ->
          Telemetry.Counter.incr m_bad_frames;
          Log.debug (fun m ->
              m "dropping connection: %s" (Protocol.read_error_to_string e))
  in
  loop ();
  finish ()

(* {1 Accepting} *)

let accept_loop t =
  let rec go () =
    if not (Atomic.get t.draining) then
      if not (retry_select t.listen_fd 0.25) then go ()
      else
        match Unix.accept ~cloexec:true t.listen_fd with
        | fd, _ ->
            Telemetry.Counter.incr m_connections;
            Unix.setsockopt_float fd Unix.SO_RCVTIMEO conn_recv_timeout_s;
            let conn =
              {
                fd;
                wmutex = Mutex.create ();
                cmutex = Mutex.create ();
                pending = 0;
                eof = false;
                closed = false;
              }
            in
            let th = Thread.create (reader t) conn in
            Mutex.lock t.rmutex;
            t.readers <- th :: t.readers;
            Mutex.unlock t.rmutex;
            go ()
        | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
            go ()
    (* draining: fall through and tear the listener down *)
  in
  go ();
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.path with Unix.Unix_error _ -> ());
  Log.info (fun m -> m "stopped accepting; %s unlinked" t.path)

let bind_socket path =
  (match Unix.stat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
      (* a socket file already exists: live daemon or stale leftover? *)
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () ->
          Unix.close probe;
          failwith (Printf.sprintf "%s: a daemon is already serving here" path)
      | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
          Unix.close probe;
          Log.info (fun m -> m "replacing stale socket %s" path);
          Unix.unlink path
      | exception e ->
          Unix.close probe;
          raise e)
  | _ -> failwith (Printf.sprintf "%s exists and is not a socket" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.bind fd (Unix.ADDR_UNIX path) with
  | () -> ()
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e);
  Unix.listen fd 64;
  fd

(* {1 Lifecycle} *)

let start ?(workers = 2) ?(queue_capacity = 64)
    ?(max_frame = Protocol.default_max_frame) ?slow_ms ?(slow_oc = stderr)
    ?(trace = false) ~socket service =
  if workers < 1 then invalid_arg "Daemon.start: workers must be >= 1";
  if queue_capacity < 1 then invalid_arg "Daemon.start: queue_capacity must be >= 1";
  if max_frame < 1 then invalid_arg "Daemon.start: max_frame must be >= 1";
  (match slow_ms with
  | Some n when n < 0 -> invalid_arg "Daemon.start: slow_ms must be >= 0"
  | _ -> ());
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let obs =
    if trace || slow_ms <> None then
      Some
        {
          o_slow_s = Option.map (fun ms -> float_of_int ms /. 1000.) slow_ms;
          o_slow_oc = slow_oc;
          o_slow_mutex = Mutex.create ();
        }
    else None
  in
  let listen_fd = bind_socket socket in
  let t =
    {
      service;
      path = socket;
      listen_fd;
      max_frame;
      queue_capacity;
      obs;
      trace_seq = Atomic.make 0;
      trace_prefix =
        Printf.sprintf "%x-%x" (Unix.getpid ())
          (int_of_float (Unix.gettimeofday () *. 1000.) land 0xffffff);
      inflight = Atomic.make 0;
      queue = Queue.create ();
      qmutex = Mutex.create ();
      qcond = Condition.create ();
      draining = Atomic.make false;
      rmutex = Mutex.create ();
      readers = [];
      accepter = None;
      workers = [];
      wait_mutex = Mutex.create ();
      waited = false;
    }
  in
  t.workers <- List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t.accepter <- Some (Thread.create accept_loop t);
  Log.app (fun m ->
      m "serving on %s (%d workers, queue %d, warm depth %d)" socket workers
        queue_capacity
        (Service.warm_depth service));
  t

let stop t =
  Mutex.lock t.qmutex;
  let fresh = not (Atomic.get t.draining) in
  if fresh then begin
    (* Everything accepted but unanswered at this instant; decremented
       per answered job so monitors can watch the drain converge. *)
    Telemetry.Gauge.set_int g_drain_pending
      (Queue.length t.queue + Atomic.get t.inflight)
  end;
  Atomic.set t.draining true;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qmutex;
  if fresh then Log.app (fun m -> m "drain requested")

let wait t =
  Mutex.lock t.wait_mutex;
  if t.waited then Mutex.unlock t.wait_mutex
  else begin
    (* Join in dependency order: the accepter stops creating readers,
       the workers answer every accepted job, the readers observe EOF or
       the drain and hang up. *)
    (match t.accepter with None -> () | Some th -> Thread.join th);
    List.iter Domain.join t.workers;
    let readers = Mutex.protect t.rmutex (fun () -> t.readers) in
    List.iter Thread.join readers;
    t.waited <- true;
    Mutex.unlock t.wait_mutex;
    Log.app (fun m -> m "drained: every accepted request answered")
  end

let run ?workers ?queue_capacity ?max_frame ?slow_ms ?slow_oc ?trace ~socket
    service =
  let t =
    start ?workers ?queue_capacity ?max_frame ?slow_ms ?slow_oc ?trace ~socket
      service
  in
  let requested = Atomic.make false in
  let previous =
    List.map
      (fun s ->
        (s, Sys.signal s (Sys.Signal_handle (fun _ -> Atomic.set requested true))))
      [ Sys.sigterm; Sys.sigint ]
  in
  while not (Atomic.get requested) do
    Thread.delay 0.05
  done;
  stop t;
  wait t;
  List.iter (fun (s, b) -> try Sys.set_signal s b with Invalid_argument _ -> ()) previous
