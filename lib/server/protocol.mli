(** Wire protocol of the [qsynth serve] daemon: length-prefixed JSON
    frames over a Unix-domain stream socket.

    Each frame is a 4-byte big-endian payload length followed by exactly
    that many bytes of UTF-8 JSON — one {!Synthesis.Mce.Request} per client frame,
    one {!Synthesis.Mce.Response} per server frame, in request order per
    connection.  A connection carries any number of frames; either side
    closes by shutting down its socket.  See doc/API.md for the schema
    and worked byte-level examples. *)

(** Hard ceiling on a frame's payload length (16 MiB): a four-byte
    header can announce up to 2 GiB, and the reader must not trust it
    with an allocation that large.  Both sides enforce it. *)
val default_max_frame : int

type read_error =
  | Closed  (** clean EOF at a frame boundary — the peer hung up *)
  | Truncated  (** EOF in the middle of a frame *)
  | Timed_out
      (** the socket's receive timeout expired mid-frame (the daemon
          arms [SO_RCVTIMEO] against stalled writers) *)
  | Oversized of int  (** announced length is negative or beyond the cap *)

val read_error_to_string : read_error -> string

(** [read_frame fd] blocks for one complete frame.  Handles partial
    reads and [EINTR]; never over-reads past the frame. *)
val read_frame : ?max_len:int -> Unix.file_descr -> (string, read_error) Stdlib.result

(** [write_frame fd payload] writes the header and payload, retrying
    partial writes.  @raise Invalid_argument beyond [max_len];
    @raise Unix.Unix_error as [write] does (notably [EPIPE] — the daemon
    ignores [SIGPIPE] so a vanished client surfaces here, not as a
    process kill). *)
val write_frame : ?max_len:int -> Unix.file_descr -> string -> unit

(** {1 Client side} *)

(** [connect path] opens a stream connection to the daemon's socket.
    @raise Unix.Unix_error when nothing is serving there. *)
val connect : string -> Unix.file_descr

(** [call fd request] sends one request frame and blocks for its
    response frame — the simple lock-step client used by [qsynth query]
    and [qsynth batch].  [Error] covers transport failures and
    undecodable response documents. *)
val call : ?max_len:int -> Unix.file_descr -> Synthesis.Mce.Request.t -> (Synthesis.Mce.Response.t, string) Stdlib.result
