(** The warm evaluation core shared by every transport.

    A service owns the process-wide engine resources — one {e engine per
    configured gate library}, where the primary engine carries an
    optional {!Synthesis.Census_index} and an optional
    meet-in-the-middle context warmed to a {e fixed} forward depth —
    plus an LRU response cache and an in-flight coalescing table shared
    across engines (request keys embed the library name, so universes
    never share a cache line).  Each request is routed to the engine of
    its [library] field; a request for an unconfigured library fails
    with [Bad_request] naming the configured ones.  The daemon routes
    every socket request through {!answer}; [qsynth synth --json] and
    [qsynth batch] build a throwaway service and call the same function,
    which is what makes responses byte-identical across transports (and,
    per library, between a two-library daemon and one-shot runs).

    Determinism and thread-safety: the bidir context is created with
    [max_fwd_depth = warm_depth] and warmed fully at {!create}, so after
    construction the forward wave never grows — every engine structure a
    query touches is read-only, and {!answer} may be called from any
    number of threads or domains concurrently with no lock on the
    evaluation path (the cache and coalescing table take a short mutex).

    Caching: responses are cached (and concurrent identical requests
    coalesced) under {!Synthesis.Mce.Request.key}.  Only deterministic bodies are
    cached — [Ok], [Bad_request] and [Unsupported]; transient outcomes
    ([Deadline_exceeded], [Cancelled], [Internal], …) are not.
    Coalesced requests share one computation {e and its outcome}: a
    follower of a computation that exceeds the leader's deadline
    receives that [Deadline_exceeded] too (followers are requests whose
    key matched while the leader was still computing). *)

type t

(** [create ?jobs ?index ?warm_depth ?cache_capacity ?index_verify
    library] builds the engine state eagerly: loads nothing (the caller
    loads the index), but grows the bidir forward wave to [warm_depth]
    before returning.  [warm_depth = 0] (the default) runs without a
    bidir context — queries fall back to index + forward BFS.  When
    [index] is {e complete} ({!Synthesis.Census_index.is_complete}) any
    requested warm-up is skipped — no realizable query can miss the
    index, so the service runs index-only and {!warm_depth} reports 0
    (the one observable consequence: a request {e pinning} plan [bidir]
    gets [Unsupported]).  [jobs] is the forward BFS worker-domain count
    used for cold forward queries and the warm-up itself (results are
    jobs-independent).  [cache_capacity] (default 1024) bounds the LRU
    response cache; [0] disables it.  [index_verify] (default [Sample])
    is the witness-replay level {!reload_index} applies to replacement
    files.

    [libraries] (default none) configures {e secondary} engines, one per
    additional library value: each answers requests naming its library
    with a cold forward BFS — the same plan a one-shot
    [synth --library NAME] without index/bidir runs, so answers agree
    byte-for-byte.  A secondary whose name equals the primary's is
    ignored.  The index, warm wave, {!index_status} and {!reload_index}
    remain primary-only.
    @raise Invalid_argument on negative [warm_depth] or
    [cache_capacity], or [jobs < 1]. *)
val create :
  ?jobs:int ->
  ?index:Synthesis.Census_index.t ->
  ?warm_depth:int ->
  ?cache_capacity:int ->
  ?index_verify:Synthesis.Census_index.verification ->
  ?libraries:Synthesis.Library.t list ->
  Synthesis.Library.t ->
  t

(** [library t] is the primary engine's library. *)
val library : t -> Synthesis.Library.t

(** [libraries t] is every configured library name, primary first. *)
val libraries : t -> string list

(** [warm_depth t] is the fixed forward depth of the bidir context
    (0 when the service runs without one, including the complete-index
    case above). *)
val warm_depth : t -> int

(** [index_status t] is [Some (size, depth, coverage, complete)] for the
    currently published index — the material of the [/readyz] body and
    the [server.index.coverage] gauge — or [None] when the service runs
    without one. *)
val index_status : t -> (int * int * int * bool) option

(** [reload_index t path] hot-swaps the census index: maps and validates
    the index file at [path] ({!Synthesis.Census_index.load_mmap} — v1
    or v2, magic, CRC, fingerprints, witness replay per the service's
    [index_verify]), then atomically publishes it and clears the
    response cache, without dropping or blocking in-flight requests —
    requests already evaluating finish against the index (and mapping)
    they snapshotted.  Returns the new index's [(size, depth)].  On
    failure the old index remains in service untouched.
    @raise Synthesis.Checkpoint.Corrupt on a damaged file
    @raise Synthesis.Checkpoint.Mismatch on a library-fingerprint
    mismatch
    @raise Sys_error when [path] cannot be read. *)
val reload_index : t -> string -> int * int

(** [answer ?should_stop t request] evaluates a request against the warm
    engine — cache, then coalescing, then {!Synthesis.Mce.solve} — and never
    raises.  The request's [deadline_ms] is enforced here as a compute
    budget counted from the moment evaluation starts (queueing time is
    the daemon's concern): when it expires the search stops
    cooperatively and the response is the [Deadline_exceeded] error.
    [should_stop] additionally cancels on behalf of the caller
    (SIGINT), producing [Cancelled]. *)
val answer : ?should_stop:(unit -> bool) -> t -> Synthesis.Mce.Request.t -> Synthesis.Mce.Response.t

(** Stage breakdown of one {!answer_timed} call, the raw material of the
    daemon's slow-query log and request traces. *)
type timing = {
  source : [ `Cache_hit | `Coalesced | `Computed ];
  cache_s : float;  (** cache lookup / admission, including lock wait *)
  coalesce_wait_s : float;
      (** time blocked on another caller's in-flight computation *)
  solve_s : float;  (** evaluation time ({e leader} requests only) *)
  plan : string option;
      (** {!Synthesis.Mce.Response.plan_to_string} of the plan that
          answered, when the body is [Ok] *)
}

(** [answer_timed ?should_stop t request] is {!answer} with a per-stage
    clock and [server.cache] / [server.coalesce_wait] / [mce.solve]
    spans (the latter carrying a [plan] attribute).  Identical response
    bytes to {!answer}; the daemon switches to it only when tracing or
    the slow-query log is enabled so the default path stays
    uninstrumented. *)
val answer_timed :
  ?should_stop:(unit -> bool) ->
  t ->
  Synthesis.Mce.Request.t ->
  Synthesis.Mce.Response.t * timing
