open Synthesis
module Json = Telemetry.Json

let default_max_frame = 16 * 1024 * 1024

type read_error = Closed | Truncated | Timed_out | Oversized of int

let read_error_to_string = function
  | Closed -> "connection closed"
  | Truncated -> "connection closed mid-frame"
  | Timed_out -> "receive timeout expired mid-frame"
  | Oversized n -> Printf.sprintf "frame length %d exceeds the cap" n

(* Read exactly [len] bytes into [buf]; [`Eof] only when the stream
   ended before the first byte. *)
let read_exact fd buf len =
  let rec go ofs =
    if ofs = len then `Ok
    else
      match Unix.read fd buf ofs (len - ofs) with
      | 0 -> if ofs = 0 then `Eof else `Short
      | n -> go (ofs + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ofs
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          `Timeout
  in
  go 0

let read_frame ?(max_len = default_max_frame) fd =
  let hdr = Bytes.create 4 in
  match read_exact fd hdr 4 with
  | `Eof -> Error Closed
  | `Short -> Error Truncated
  | `Timeout -> Error Timed_out
  | `Ok -> (
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len < 0 || len > max_len then Error (Oversized len)
      else if len = 0 then Ok ""
      else
        let buf = Bytes.create len in
        match read_exact fd buf len with
        | `Ok -> Ok (Bytes.unsafe_to_string buf)
        | `Eof | `Short -> Error Truncated
        | `Timeout -> Error Timed_out)

let write_frame ?(max_len = default_max_frame) fd payload =
  let n = String.length payload in
  if n > max_len then invalid_arg "Protocol.write_frame: frame exceeds the cap";
  let buf = Bytes.create (4 + n) in
  Bytes.set_int32_be buf 0 (Int32.of_int n);
  Bytes.blit_string payload 0 buf 4 n;
  let total = 4 + n in
  let rec go ofs =
    if ofs < total then
      match Unix.write fd buf ofs (total - ofs) with
      | k -> go (ofs + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ofs
  in
  go 0

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  fd

let call ?max_len fd req =
  match write_frame ?max_len fd (Json.to_string (Mce.Request.to_json req)) with
  | () -> (
      match read_frame ?max_len fd with
      | Ok payload -> Mce.Response.of_string payload
      | Error e -> Error (read_error_to_string e))
  | exception Unix.Unix_error (err, _, _) ->
      Error (Printf.sprintf "send failed: %s" (Unix.error_message err))
