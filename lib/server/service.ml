open Synthesis

let log_src = Logs.Src.create "qsynth.service" ~doc:"Warm synthesis service"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_cache_hit = Telemetry.Counter.create "server.cache.hit"
let m_cache_miss = Telemetry.Counter.create "server.cache.miss"
let m_coalesced = Telemetry.Counter.create "server.coalesced"
let m_deadline = Telemetry.Counter.create "server.deadline"
let g_cache_size = Telemetry.Gauge.create "server.cache.size"
let g_coverage = Telemetry.Gauge.create "server.index.coverage"
let h_answer = Telemetry.Histogram.create "server.answer.seconds"

(* LRU cache: an intrusive cyclic doubly-linked list threaded through a
   hashtable.  The sentinel closes the cycle; sentinel.next is the most
   recently used node, sentinel.prev the eviction candidate. *)
module Lru = struct
  type node = {
    key : string;
    mutable value : Mce.Response.t;
    mutable prev : node;
    mutable next : node;
  }

  type t = {
    capacity : int;
    table : (string, node) Hashtbl.t;
    sentinel : node;
  }

  let dummy_response : Mce.Response.t =
    { id = None; trace = None; qubits = 0; body = Error (Mce.Response.Internal "sentinel") }

  let create capacity =
    let rec sentinel =
      { key = ""; value = dummy_response; prev = sentinel; next = sentinel }
    in
    { capacity; table = Hashtbl.create (max 16 capacity); sentinel }

  let unlink n =
    n.prev.next <- n.next;
    n.next.prev <- n.prev

  let push_front t n =
    n.next <- t.sentinel.next;
    n.prev <- t.sentinel;
    t.sentinel.next.prev <- n;
    t.sentinel.next <- n

  let find t key =
    match Hashtbl.find_opt t.table key with
    | None -> None
    | Some n ->
        unlink n;
        push_front t n;
        Some n.value

  (* Empty the cache in place: reclose the sentinel cycle and drop the
     table.  Used when the index is hot-swapped — cached responses may
     embed answers the old index produced. *)
  let clear t =
    Hashtbl.reset t.table;
    t.sentinel.next <- t.sentinel;
    t.sentinel.prev <- t.sentinel;
    Telemetry.Gauge.set_int g_cache_size 0

  let put t key value =
    if t.capacity > 0 then begin
      (match Hashtbl.find_opt t.table key with
      | Some n ->
          n.value <- value;
          unlink n;
          push_front t n
      | None ->
          let rec n = { key; value; prev = n; next = n } in
          push_front t n;
          Hashtbl.add t.table key n;
          if Hashtbl.length t.table > t.capacity then begin
            let victim = t.sentinel.prev in
            unlink victim;
            Hashtbl.remove t.table victim.key
          end);
      Telemetry.Gauge.set_int g_cache_size (Hashtbl.length t.table)
    end
end

(* One in-flight computation; followers block on the condition until the
   leader publishes the shared body. *)
type flight = {
  f_mutex : Mutex.t;
  f_cond : Condition.t;
  mutable f_result : Mce.Response.t option;
}

(* One evaluation engine per configured library.  The primary engine
   (head of [engines]) owns the index and the warm forward wave; the
   secondary engines answer their universe with a cold forward BFS —
   exactly what a one-shot [synth --library NAME] does, so daemon and
   one-shot answers stay byte-identical per library. *)
type engine = {
  e_library : Library.t;
  e_index : Census_index.t option Atomic.t;
      (* atomically swappable (SIGHUP hot reload); readers take one
         consistent snapshot per request with [Atomic.get] *)
  e_bidir : Bidir.t option;
  e_warm_depth : int;
}

type t = {
  engines : (string * engine) list; (* head = primary; keyed by library name *)
  jobs : int;
  index_verify : Census_index.verification;
  mutex : Mutex.t; (* guards cache + inflight *)
  cache : Lru.t;
  inflight : (string, flight) Hashtbl.t;
}

let primary t = snd (List.hd t.engines)

let publish_coverage index =
  Telemetry.Gauge.set_int g_coverage
    (match index with Some idx -> Census_index.coverage idx | None -> 0)

let create ?(jobs = 1) ?index ?(warm_depth = 0) ?(cache_capacity = 1024)
    ?(index_verify = Census_index.Sample) ?(libraries = []) library =
  if warm_depth < 0 then invalid_arg "Service.create: negative warm_depth";
  if cache_capacity < 0 then invalid_arg "Service.create: negative cache_capacity";
  if jobs < 1 then invalid_arg "Service.create: jobs must be >= 1";
  (* A complete index answers every realizable request by itself:
     growing a forward wave behind it would burn seconds of startup (and
     hundreds of MB) that no query can ever reach, so drop the warm-up
     and run index-only. *)
  let complete = match index with Some idx -> Census_index.is_complete idx | None -> false in
  let warm_depth =
    if complete && warm_depth > 0 then begin
      Log.info (fun m ->
          m "index is complete: skipping the depth-%d forward-wave warm-up \
             (no realizable query can miss the index)"
            warm_depth);
      0
    end
    else warm_depth
  in
  let bidir =
    if warm_depth = 0 then None
    else begin
      let engine = Bidir.create ~jobs ~max_fwd_depth:warm_depth library in
      let t0 = Unix.gettimeofday () in
      Bidir.warm engine ~depth:warm_depth;
      Log.info (fun m ->
          m "forward wave warmed to depth %d (%d states) in %.2fs"
            (Bidir.fwd_depth engine) (Bidir.fwd_states engine)
            (Unix.gettimeofday () -. t0));
      Some engine
    end
  in
  publish_coverage index;
  let primary_engine =
    {
      e_library = library;
      e_index = Atomic.make index;
      e_bidir = bidir;
      e_warm_depth = warm_depth;
    }
  in
  let primary_name = Library.name library in
  let secondary =
    List.filter_map
      (fun lib ->
        let name = Library.name lib in
        if String.equal name primary_name then None
        else begin
          Log.info (fun m ->
              m "secondary engine: library %s (%d gates, cold forward BFS)"
                name (Library.size lib));
          Some
            ( name,
              {
                e_library = lib;
                e_index = Atomic.make None;
                e_bidir = None;
                e_warm_depth = 0;
              } )
        end)
      libraries
  in
  (* last binding wins on duplicate secondary names, assoc-list style *)
  {
    engines = (primary_name, primary_engine) :: secondary;
    jobs;
    index_verify;
    mutex = Mutex.create ();
    cache = Lru.create cache_capacity;
    inflight = Hashtbl.create 64;
  }

let library t = (primary t).e_library
let warm_depth t = (primary t).e_warm_depth
let libraries t = List.map fst t.engines

let index_status t =
  match Atomic.get (primary t).e_index with
  | None -> None
  | Some idx ->
      Some
        ( Census_index.size idx,
          Census_index.depth idx,
          Census_index.coverage idx,
          Census_index.is_complete idx )

(* Hot index reload: validate the replacement fully (Census_index.load
   checks magic, CRC and the library fingerprint — Corrupt/Mismatch
   escape to the caller and the old index stays in place), then publish
   it and drop the response cache in one critical section so no later
   answer mixes old cached bodies with new index lookups.  In-flight
   requests that already snapshotted the old index finish against it —
   both indexes answer with the same exact costs, only the horizon
   differs. *)
let reload_index t path =
  let engine = primary t in
  let index =
    Census_index.load_mmap ~verify:t.index_verify engine.e_library path
  in
  Mutex.protect t.mutex (fun () ->
      Atomic.set engine.e_index (Some index);
      Lru.clear t.cache);
  publish_coverage (Some index);
  Log.info (fun m ->
      m "index reloaded from %s (mmap): %d functions, exact to cost %d%s" path
        (Census_index.size index) (Census_index.depth index)
        (if Census_index.is_complete index then ", complete" else ""));
  (Census_index.size index, Census_index.depth index)

let no_stop () = false

(* Transient outcomes depend on timing, not on the request: sharing
   them through the cache would replay one caller's bad luck forever. *)
let cacheable (resp : Mce.Response.t) =
  match resp.body with
  | Ok _ | Error (Mce.Response.Bad_request _) | Error (Mce.Response.Unsupported _)
    ->
      true
  | Error
      ( Mce.Response.Overloaded _ | Mce.Response.Deadline_exceeded
      | Mce.Response.Shutting_down | Mce.Response.Cancelled
      | Mce.Response.Internal _ ) ->
      false

let evaluate t ~should_stop (req : Mce.Request.t) =
  let deadline =
    Option.map
      (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.))
      req.Mce.Request.deadline_ms
  in
  let deadline_hit () =
    match deadline with Some d -> Unix.gettimeofday () > d | None -> false
  in
  let stop () = should_stop () || deadline_hit () in
  let resp =
    match List.assoc_opt req.Mce.Request.library t.engines with
    | None ->
        (* deterministic per configuration, so cacheable like any other
           Bad_request *)
        {
          Mce.Response.id = req.Mce.Request.id;
          trace = None;
          qubits = req.Mce.Request.qubits;
          body =
            Error
              (Mce.Response.Bad_request
                 (Printf.sprintf
                    "this daemon serves libraries %s; the request asks for %s"
                    (String.concat ", " (List.map fst t.engines))
                    req.Mce.Request.library));
        }
    | Some engine -> (
        try
          Mce.solve ~jobs:t.jobs ~should_stop:stop
            ?index:(Atomic.get engine.e_index) ?bidir:engine.e_bidir
            engine.e_library req
        with exn ->
          {
            Mce.Response.id = req.Mce.Request.id;
            trace = None;
            qubits = req.Mce.Request.qubits;
            body = Error (Mce.Response.Internal (Printexc.to_string exn));
          })
  in
  match resp.Mce.Response.body with
  | Error Mce.Response.Cancelled when deadline_hit () && not (should_stop ()) ->
      Telemetry.Counter.incr m_deadline;
      { resp with body = Error Mce.Response.Deadline_exceeded }
  | _ -> resp

(* Cache/coalesce admission: under [t.mutex], either return the cached
   body, join another caller's flight, or claim leadership of a fresh
   one.  Shared by {!answer} and {!answer_timed}. *)
type claim = Hit of Mce.Response.t | Follow of flight | Lead of flight

let claim t key =
  Mutex.lock t.mutex;
  match Lru.find t.cache key with
  | Some body ->
      Telemetry.Counter.incr m_cache_hit;
      Mutex.unlock t.mutex;
      Hit body
  | None -> (
      match Hashtbl.find_opt t.inflight key with
      | Some flight ->
          Telemetry.Counter.incr m_coalesced;
          Mutex.unlock t.mutex;
          Follow flight
      | None ->
          Telemetry.Counter.incr m_cache_miss;
          let flight =
            { f_mutex = Mutex.create (); f_cond = Condition.create (); f_result = None }
          in
          Hashtbl.add t.inflight key flight;
          Mutex.unlock t.mutex;
          Lead flight)

let await flight =
  Mutex.lock flight.f_mutex;
  while flight.f_result = None do
    Condition.wait flight.f_cond flight.f_mutex
  done;
  let body = Option.get flight.f_result in
  Mutex.unlock flight.f_mutex;
  body

(* Whatever happened, unblock followers and clear the slot — a stuck
   flight would wedge every later caller with the same key. *)
let publish t flight key ~qubits () =
  let body =
    match Mutex.protect flight.f_mutex (fun () -> flight.f_result) with
    | Some body -> body
    | None ->
        {
          Mce.Response.id = None;
          trace = None;
          qubits;
          body = Error (Mce.Response.Internal "evaluation died");
        }
  in
  Mutex.lock t.mutex;
  Hashtbl.remove t.inflight key;
  if cacheable body then Lru.put t.cache key body;
  Mutex.unlock t.mutex;
  Mutex.lock flight.f_mutex;
  flight.f_result <- Some body;
  Condition.broadcast flight.f_cond;
  Mutex.unlock flight.f_mutex

let lead t flight key ~should_stop req =
  Fun.protect
    ~finally:(publish t flight key ~qubits:req.Mce.Request.qubits)
    (fun () ->
      let body = Mce.Response.with_id None (evaluate t ~should_stop req) in
      Mutex.protect flight.f_mutex (fun () -> flight.f_result <- Some body);
      body)

let answer ?(should_stop = no_stop) t req =
  Telemetry.Histogram.time h_answer @@ fun () ->
  let key = Mce.Request.key req in
  let stamp resp = Mce.Response.with_id req.Mce.Request.id resp in
  match claim t key with
  | Hit body -> stamp body
  | Follow flight -> stamp (await flight)
  | Lead flight -> stamp (lead t flight key ~should_stop req)

type timing = {
  source : [ `Cache_hit | `Coalesced | `Computed ];
  cache_s : float;
  coalesce_wait_s : float;
  solve_s : float;
  plan : string option;
}

let plan_of (resp : Mce.Response.t) =
  match resp.body with
  | Ok { plan; _ } -> Some (Mce.Response.plan_to_string plan)
  | Error _ -> None

(* The instrumented twin of {!answer}: same admission/coalescing/publish
   protocol (via the shared helpers), but each stage is clocked and
   recorded as a span.  The daemon uses it only when tracing or the
   slow-query log is configured, so {!answer} keeps its uninstrumented
   cost for every other caller. *)
let answer_timed ?(should_stop = no_stop) t req =
  Telemetry.Histogram.time h_answer @@ fun () ->
  let key = Mce.Request.key req in
  let stamp resp = Mce.Response.with_id req.Mce.Request.id resp in
  let t0 = Unix.gettimeofday () in
  let claimed = Telemetry.Span.with_span "server.cache" (fun () -> claim t key) in
  let cache_s = Unix.gettimeofday () -. t0 in
  match claimed with
  | Hit body ->
      ( stamp body,
        {
          source = `Cache_hit;
          cache_s;
          coalesce_wait_s = 0.;
          solve_s = 0.;
          plan = plan_of body;
        } )
  | Follow flight ->
      let t1 = Unix.gettimeofday () in
      let body =
        Telemetry.Span.with_span "server.coalesce_wait" (fun () -> await flight)
      in
      ( stamp body,
        {
          source = `Coalesced;
          cache_s;
          coalesce_wait_s = Unix.gettimeofday () -. t1;
          solve_s = 0.;
          plan = plan_of body;
        } )
  | Lead flight ->
      let t1 = Unix.gettimeofday () in
      let body =
        Fun.protect
          ~finally:(publish t flight key ~qubits:req.Mce.Request.qubits)
          (fun () ->
            Telemetry.Span.with_span "mce.solve" @@ fun () ->
            let body = Mce.Response.with_id None (evaluate t ~should_stop req) in
            (match plan_of body with
            | Some p -> Telemetry.Span.set_attr "plan" (Telemetry.Json.String p)
            | None -> ());
            Mutex.protect flight.f_mutex (fun () -> flight.f_result <- Some body);
            body)
      in
      ( stamp body,
        {
          source = `Computed;
          cache_s;
          coalesce_wait_s = 0.;
          solve_s = Unix.gettimeofday () -. t1;
          plan = plan_of body;
        } )
