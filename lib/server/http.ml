let log_src = Logs.Src.create "qsynth.http" ~doc:"Observability HTTP listener"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_scrapes = Telemetry.Counter.create "server.http.requests"

type t = {
  listen_fd : Unix.file_descr;
  port : int;
  stopping : bool Atomic.t;
  mutable thread : Thread.t option;
}

let port t = t.port

let rec retry_select fd timeout =
  match Unix.select [ fd ] [] [] timeout with
  | r, _, _ -> r <> []
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_select fd timeout

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else at (i + 1)
  in
  at 0

(* Read until the end of the header block (we never use a body) or a
   small cap — enough for any scraper's request line + headers. *)
let read_request fd =
  let cap = 8192 in
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    if Buffer.length buf >= cap then Some (Buffer.contents buf)
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
      | n ->
          Buffer.add_subbytes buf chunk 0 n;
          let s = Buffer.contents buf in
          (* header block terminator, tolerant of bare-LF clients *)
          if contains s "\r\n\r\n" || contains s "\n\n" then Some s else go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
      | exception Unix.Unix_error _ -> None
  in
  go ()

let respond fd ~status ~content_type body =
  let reason =
    match status with
    | 200 -> "OK"
    | 404 -> "Not Found"
    | 405 -> "Method Not Allowed"
    | 503 -> "Service Unavailable"
    | _ -> "Error"
  in
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      status reason content_type (String.length body)
  in
  let payload = Bytes.of_string (head ^ body) in
  let rec write off =
    if off < Bytes.length payload then
      match Unix.write fd payload off (Bytes.length payload - off) with
      | n -> write (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write off
  in
  try write 0 with Unix.Unix_error _ -> ()

let handle ~ready ~describe fd =
  match read_request fd with
  | None -> ()
  | Some raw -> (
      Telemetry.Counter.incr m_scrapes;
      let line =
        match String.index_opt raw '\n' with
        | Some i -> String.trim (String.sub raw 0 i)
        | None -> String.trim raw
      in
      match String.split_on_char ' ' line with
      | meth :: _ when meth <> "GET" ->
          respond fd ~status:405 ~content_type:"text/plain" "method not allowed\n"
      | _ :: path :: _ -> (
          let path =
            match String.index_opt path '?' with
            | Some i -> String.sub path 0 i
            | None -> path
          in
          match path with
          | "/metrics" ->
              respond fd ~status:200
                ~content_type:Telemetry.Prometheus.content_type
                (Telemetry.Prometheus.render ())
          | "/healthz" -> respond fd ~status:200 ~content_type:"text/plain" "ok\n"
          | "/readyz" ->
              if ready () then
                respond fd ~status:200 ~content_type:"text/plain" (describe ())
              else
                respond fd ~status:503 ~content_type:"text/plain" "not ready\n"
          | _ -> respond fd ~status:404 ~content_type:"text/plain" "not found\n")
      | _ -> respond fd ~status:405 ~content_type:"text/plain" "bad request\n")

let serve_loop t ~ready ~describe =
  let rec go () =
    if not (Atomic.get t.stopping) then
      if not (retry_select t.listen_fd 0.25) then go ()
      else
        match Unix.accept ~cloexec:true t.listen_fd with
        | fd, _ ->
            Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.;
            Fun.protect
              ~finally:(fun () ->
                try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () -> handle ~ready ~describe fd);
            go ()
        | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
            go ()
  in
  go ();
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())

let start ?(host = "127.0.0.1") ?(describe = fun () -> "ok\n") ~port ~ready () =
  let addr = Unix.inet_addr_of_string host in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (addr, port));
     Unix.listen fd 16
   with
  | () -> ()
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e);
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t = { listen_fd = fd; port = bound_port; stopping = Atomic.make false; thread = None } in
  t.thread <- Some (Thread.create (fun () -> serve_loop t ~ready ~describe) ());
  Log.app (fun m -> m "metrics on http://%s:%d/metrics" host bound_port);
  t

let stop t =
  if not (Atomic.exchange t.stopping true) then
    match t.thread with None -> () | Some th -> Thread.join th
