exception Injected of string

(* One cell per armed point: (name, remaining hits before firing). *)
type cell = { point : string; mutable remaining : int }

let cells : cell list ref = ref []
let live = ref false (* mirrors cells <> []; the only read on the fast path *)
let spec_string : string option ref = ref None

let parse_pair pair =
  match String.index_opt pair ':' with
  | None ->
      invalid_arg
        (Printf.sprintf "Faultsim: %S is not of the form point:count" pair)
  | Some i ->
      let point = String.sub pair 0 i in
      let count_str = String.sub pair (i + 1) (String.length pair - i - 1) in
      if point = "" then invalid_arg "Faultsim: empty fault point name";
      (match int_of_string_opt count_str with
      | Some count when count >= 1 -> (point, count)
      | Some _ ->
          invalid_arg
            (Printf.sprintf "Faultsim: count for %S must be >= 1" point)
      | None ->
          invalid_arg
            (Printf.sprintf "Faultsim: invalid count %S for point %S" count_str
               point))

let parse_spec spec =
  String.split_on_char ',' spec
  |> List.filter (fun s -> String.trim s <> "")
  |> List.map (fun s -> parse_pair (String.trim s))

let configure spec =
  match spec with
  | None ->
      cells := [];
      live := false;
      spec_string := None
  | Some s ->
      let pairs = parse_spec s in
      cells := List.map (fun (point, count) -> { point; remaining = count }) pairs;
      live := !cells <> [];
      spec_string := if !cells = [] then None else Some s

let armed () = !spec_string

let fire point =
  List.iter
    (fun c ->
      if String.equal c.point point then begin
        c.remaining <- c.remaining - 1;
        if c.remaining = 0 then begin
          (* disarm before raising so a handler that keeps running does
             not re-trigger on the next hit *)
          cells := List.filter (fun c' -> c' != c) !cells;
          live := !cells <> [];
          raise (Injected point)
        end
      end)
    !cells

let hit point = if !live then fire point

(* A malformed environment spec must not abort module initialization of
   every linked binary; it is left disarmed here and rejected with a
   proper diagnostic by the CLI's up-front validation (which re-parses
   the variable through [parse_spec]). *)
let () =
  match Sys.getenv_opt "QSYNTH_FAULT" with
  | None -> ()
  | Some s -> ( try configure (Some s) with Invalid_argument _ -> ())
