(** Deterministic fault injection for durability testing.

    The engine and the checkpoint writer declare named {e hit points}
    ([Faultsim.hit "merge"], ...) on the paths whose failure we want to
    prove survivable.  In normal operation a hit point is a single load
    of an immutable [bool]; nothing else happens.

    Arming is deterministic and keyed by a [point:count] spec — the fault
    fires on exactly the [count]-th execution of [point] (1-based),
    raising {!Injected}.  The spec comes either from the
    [QSYNTH_FAULT] environment variable (read once at module
    initialization, so child processes inherit the behaviour) or from
    {!configure} (tests).  Because both the BFS engine and the counter
    are deterministic, [QSYNTH_FAULT=merge:3] kills the same instruction
    of the same level on every run.

    Fault-point catalog (see doc/ROBUSTNESS.md):
    - ["merge"]    — once per BFS level, at the frontier merge of
      {!Synthesis.Search}[.step_handles]: a crash mid-level;
    - ["grow"]     — once per shard growth of
      {!Synthesis.State_arena}: a crash at the allocation edge (the
      OOM-adjacent path);
    - ["checkpoint"] — in {!Synthesis.Checkpoint}[.save], after the
      temp file is fully written but {e before} the atomic rename: a
      crash that must leave any previous snapshot intact. *)

(** Raised by {!hit} when the armed point reaches its trigger count.
    The payload is the point name. *)
exception Injected of string

(** [hit point] records one execution of [point] and raises {!Injected}
    when an armed spec for [point] reaches its count.  No-op (one boolean
    load) when nothing is armed. *)
val hit : string -> unit

(** [configure spec] re-arms the module: [None] disarms, [Some
    "point:count"] arms [point] to fire at its [count]-th hit from now
    (all hit counters are reset).  Multiple comma-separated [point:count]
    pairs may be given; the first to reach its count fires.
    @raise Invalid_argument on a malformed spec (empty point, count < 1,
    missing colon). *)
val configure : string option -> unit

(** [armed ()] is the active spec, if any. *)
val armed : unit -> string option

(** [parse_spec spec] validates and normalizes a spec string without
    arming it; used by CLI validation to reject bad [QSYNTH_FAULT]
    values up front.
    @raise Invalid_argument with a message naming the defect. *)
val parse_spec : string -> (string * int) list
