(** In-process telemetry for the synthesis engine: counters, gauges,
    log-bucketed histograms, per-level series, monotonic timers and
    nestable named spans, with pluggable sinks (a human-readable reporter
    through {!Logs} and a JSON-lines span exporter).

    Design constraints (see doc/OBSERVABILITY.md):
    - zero dependencies beyond [unix] and [logs];
    - a single global switch ({!set_enabled}); while disabled every
      operation is a one-branch no-op, so library users pay nothing by
      default;
    - instruments register themselves once by name at module
      initialization — {!create} is find-or-create, so re-registration
      returns the existing instrument;
    - domain-safe hot paths: counters and gauges are single atomics;
      histogram/series writes and registration take a short
      per-instrument (resp. registry) mutex; spans keep the open-span
      stack in domain-local storage, so concurrent domains each record
      their own span trees into the shared forest.  {!snapshot},
      {!reset} and {!log_summary} remain monitoring-grade: call them
      from one thread at a time (the CLI does so at exit).

    The registry is global and process-wide.  {!snapshot} captures every
    registered instrument as one JSON document — the payload written by
    [qsynth --metrics FILE] and embedded in [BENCH_*.json]. *)

module Json = Json

(** {1 Global switch} *)

val enabled : unit -> bool

(** [set_enabled b] turns recording on or off globally (default: off). *)
val set_enabled : bool -> unit

(** [now_s ()] is the wall-clock in seconds (the time base of all spans
    and timers). *)
val now_s : unit -> float

(** {1 Instruments} *)

module Counter : sig
  type t

  (** [create name] finds or registers the counter [name]. *)
  val create : string -> t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
end

module Gauge : sig
  type t

  val create : string -> t
  val set : t -> float -> unit
  val set_int : t -> int -> unit

  (** [add g d] atomically adds [d] (possibly negative) to the gauge —
      the shape used by in-flight / pending-work gauges. *)
  val add : t -> float -> unit

  val value : t -> float
  val name : t -> string
end

module Histogram : sig
  type t

  (** [create ?lo ?buckets name] finds or registers a histogram whose
      bucket [i] counts observations [v] with
      [lo *. 2.^(i-1) < v <= lo *. 2.^i] (bucket 0 catches [v <= lo];
      the last bucket catches overflow).  Defaults suit durations in
      seconds: [lo = 1e-6] (1 µs) and [buckets = 28] (~134 s). *)
  val create : ?lo:float -> ?buckets:int -> string -> t

  val observe : t -> float -> unit

  (** [time h f] runs [f ()] and observes its wall-clock duration; when
      telemetry is disabled it is exactly [f ()]. *)
  val time : t -> (unit -> 'a) -> 'a

  val count : t -> int
  val sum : t -> float
  val min_value : t -> float (** [nan] until the first observation *)

  val max_value : t -> float (** [nan] until the first observation *)

  (** [buckets h] lists the non-empty buckets as [(upper_bound, count)];
      the overflow bucket reports [infinity] as its bound. *)
  val buckets : t -> (float * int) list

  (** [quantile h q] estimates the [q]-quantile ([0. <= q <= 1.]) by
      linear interpolation inside the log-spaced bucket that contains
      the target rank, clamped to the observed [min]/[max]; [nan] while
      the histogram is empty.  The estimate is monitoring-grade: its
      error is bounded by the width of one bucket (a factor of 2). *)
  val quantile : t -> float -> float

  val name : t -> string
end

module Series : sig
  (** A named integer vector indexed by a small non-negative index —
      the natural shape for per-level BFS statistics (G[k], frontier
      sizes, orbit growth).  Re-running the producer overwrites the
      previous values. *)

  type t

  val create : string -> t
  val set : t -> index:int -> int -> unit
  val get : t -> index:int -> int option
  val to_list : t -> int list
  val name : t -> string
end

(** {1 Spans} *)

module Span : sig
  (** [with_span ?attrs name f] runs [f ()] inside a named span nested
      under the currently open span.  Disabled mode runs [f] directly.
      Spans are capped process-wide (see {!val-max_spans}); beyond the
      cap, [f] still runs but no span is recorded. *)
  val with_span : ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a

  (** [set_attr key v] attaches an attribute to the innermost open span
      (replacing any previous binding of [key]); no-op when disabled or
      outside any span. *)
  val set_attr : string -> Json.t -> unit

  (** [record ?attrs name ~start_s ~dur_s] records an already-finished
      span backdated to [start_s] — the shape needed for phases whose
      duration is only known after the fact, such as the time a request
      spent queued before a worker picked it up.  The span nests under
      the currently open span (if any) and is exported to the JSON-lines
      sink immediately.  Subject to the same cap as {!with_span}. *)
  val record :
    ?attrs:(string * Json.t) list -> string -> start_s:float -> dur_s:float -> unit

  (** Recording cap on the total number of spans kept in memory. *)
  val max_spans : int
end

(** {1 Sinks} *)

(** [set_trace b] mirrors span open/close events to stderr as a live
    indented tree ([qsynth --trace]). *)
val set_trace : bool -> unit

(** [set_jsonl oc] exports every {e closed} span to [oc] as one JSON
    object per line ([{"type":"span","name":...,"depth":...,
    "start_s":...,"dur_s":...,"attrs":{...}}]); [None] (default)
    disables the exporter.  A span without a ["trace"] attribute
    inherits the one of its nearest open ancestor, so every line of a
    request trace carries the request's trace id.  The channel is
    flushed per line and is not closed by this module. *)
val set_jsonl : out_channel option -> unit

(** [log_summary ()] reports every instrument and top-level span through
    {!Logs} at info level on the [qsynth.telemetry] source — the
    human-readable sink. *)
val log_summary : unit -> unit

val log_src : Logs.src

(** {1 Prometheus exposition} *)

module Prometheus : sig
  (** Text exposition (format 0.0.4) over the whole registry, the
      payload of the daemon's [/metrics] endpoint.  Instrument names are
      sanitized ([.] becomes [_]) and prefixed with [qsynth_]; counters
      gain the conventional [_total] suffix; histograms render their
      cumulative [_bucket{le="..."}] lines (ending at [+Inf]) plus
      [_sum]/[_count]; series render as a gauge family with an [index]
      label.  Families are emitted counters–gauges–histograms–series,
      each group sorted by name, so output is deterministic. *)

  (** [render ()] is the full exposition document. *)
  val render : unit -> string

  (** The HTTP [Content-Type] for {!render}'s output. *)
  val content_type : string

  (** [sanitize_name s] maps an instrument name to a valid Prometheus
      metric name (without the [qsynth_] prefix). *)
  val sanitize_name : string -> string

  (** [escape_label_value s] escapes backslash, double-quote and
      newline for use inside a label value. *)
  val escape_label_value : string -> string
end

(** {1 Snapshot} *)

(** [snapshot ()] captures all registered instruments:
    [{"counters":{..}, "gauges":{..}, "histograms":{..}, "series":{..},
      "spans":[..]}] — instrument maps are sorted by name; histograms
    include derived [p50]/[p90]/[p99] quantile estimates; the span
    forest is in recording order. *)
val snapshot : unit -> Json.t

(** [write_snapshot path] pretty-prints {!snapshot} to [path]. *)
val write_snapshot : string -> unit

(** [reset ()] zeroes every instrument and drops all recorded spans;
    registrations (and the enabled switch) survive. *)
val reset : unit -> unit
