(** Minimal JSON values: just enough for telemetry snapshots and the
    [BENCH_*.json] perf-trajectory artifacts, with zero dependencies.

    The printer emits standards-compliant JSON (RFC 8259): strings are
    escaped, non-finite floats become [null], and finite integral floats
    keep a [".0"] suffix so a value round-trips to the same constructor.
    The parser accepts any RFC 8259 document (including [\uXXXX] escapes
    and surrogate pairs) and rejects trailing garbage. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(** [to_string ?pretty v] serializes [v]; [pretty] (default false) adds
    two-space indentation. *)
val to_string : ?pretty:bool -> t -> string

(** [to_channel ?pretty oc v] serializes straight to a channel. *)
val to_channel : ?pretty:bool -> out_channel -> t -> unit

(** [of_string s] parses one JSON document.
    @raise Parse_error on malformed input or trailing garbage. *)
val of_string : string -> t

(** [member key v] is the value bound to [key] when [v] is an object. *)
val member : string -> t -> t option

(** [path keys v] chains {!member} lookups through nested objects. *)
val path : string list -> t -> t option

(** [equal a b] is structural equality ([Int 1] and [Float 1.] differ). *)
val equal : t -> t -> bool
