module Json = Json

let enabled_ref = Atomic.make false
let enabled () = Atomic.get enabled_ref
let set_enabled b = Atomic.set enabled_ref b
let now_s = Unix.gettimeofday

let log_src = Logs.Src.create "qsynth.telemetry" ~doc:"Telemetry reporting"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Domain-safety (see doc/OBSERVABILITY.md): counters and gauges are
   single atomics; histograms and series take a per-instrument mutex on
   the write path only (reads are monitoring-grade); the registry takes
   a global mutex on create (rare).  Spans keep a per-domain open-span
   stack in domain-local storage — nesting is control flow, which never
   crosses domains — while the shared root forest and the JSONL sink are
   mutex-guarded. *)

let registry_mutex = Mutex.create ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* instruments *)

type counter = { c_name : string; c_value : int Atomic.t }
type gauge = { g_name : string; g_value : float Atomic.t }

type histogram = {
  h_name : string;
  h_lo : float;
  h_mutex : Mutex.t;
  h_buckets : int array; (* last bucket is the overflow bucket *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type series = {
  s_name : string;
  s_mutex : Mutex.t;
  mutable s_values : int array;
  mutable s_len : int;
}

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 64
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 64
let series_tbl : (string, series) Hashtbl.t = Hashtbl.create 64

let find_or_create tbl name make =
  with_lock registry_mutex @@ fun () ->
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
      let v = make () in
      Hashtbl.add tbl name v;
      v

module Counter = struct
  type t = counter

  let create name =
    find_or_create counters name (fun () -> { c_name = name; c_value = Atomic.make 0 })

  let incr c = if enabled () then ignore (Atomic.fetch_and_add c.c_value 1)
  let add c n = if enabled () then ignore (Atomic.fetch_and_add c.c_value n)
  let value c = Atomic.get c.c_value
  let name c = c.c_name
end

module Gauge = struct
  type t = gauge

  let create name =
    find_or_create gauges name (fun () -> { g_name = name; g_value = Atomic.make 0. })

  let set g v = if enabled () then Atomic.set g.g_value v
  let set_int g v = if enabled () then Atomic.set g.g_value (float_of_int v)

  let add g d =
    if enabled () then begin
      let rec loop () =
        let cur = Atomic.get g.g_value in
        if not (Atomic.compare_and_set g.g_value cur (cur +. d)) then loop ()
      in
      loop ()
    end

  let value g = Atomic.get g.g_value
  let name g = g.g_name
end

module Histogram = struct
  type t = histogram

  let create ?(lo = 1e-6) ?(buckets = 28) name =
    if lo <= 0. then invalid_arg "Telemetry.Histogram.create: lo must be positive";
    if buckets < 2 then invalid_arg "Telemetry.Histogram.create: need >= 2 buckets";
    find_or_create histograms name (fun () ->
        {
          h_name = name;
          h_lo = lo;
          h_mutex = Mutex.create ();
          h_buckets = Array.make buckets 0;
          h_count = 0;
          h_sum = 0.;
          h_min = Float.nan;
          h_max = Float.nan;
        })

  let observe h v =
    if enabled () then
      with_lock h.h_mutex @@ fun () ->
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if Float.is_nan h.h_min || v < h.h_min then h.h_min <- v;
      if Float.is_nan h.h_max || v > h.h_max then h.h_max <- v;
      let n = Array.length h.h_buckets in
      let idx =
        if v <= h.h_lo then 0
        else
          let i = int_of_float (Float.ceil (Float.log2 (v /. h.h_lo))) in
          if i >= n then n - 1 else i
      in
      h.h_buckets.(idx) <- h.h_buckets.(idx) + 1

  let time h f =
    if enabled () then begin
      let t0 = now_s () in
      Fun.protect ~finally:(fun () -> observe h (now_s () -. t0)) f
    end
    else f ()

  let count h = h.h_count
  let sum h = h.h_sum
  let min_value h = h.h_min
  let max_value h = h.h_max

  let buckets h =
    let n = Array.length h.h_buckets in
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if h.h_buckets.(i) > 0 then begin
        let le =
          if i = n - 1 then Float.infinity else h.h_lo *. Float.pow 2. (float_of_int i)
        in
        acc := (le, h.h_buckets.(i)) :: !acc
      end
    done;
    !acc

  let quantile h q =
    if h.h_count = 0 then Float.nan
    else begin
      let q = Float.max 0. (Float.min 1. q) in
      let target = q *. float_of_int h.h_count in
      let n = Array.length h.h_buckets in
      let rec find i cum =
        if i >= n then h.h_max
        else
          let c = h.h_buckets.(i) in
          let cum' = cum + c in
          if c > 0 && float_of_int cum' >= target then begin
            let lower =
              if i = 0 then 0. else h.h_lo *. Float.pow 2. (float_of_int (i - 1))
            in
            let upper =
              if i = n - 1 then h.h_max else h.h_lo *. Float.pow 2. (float_of_int i)
            in
            let frac = (target -. float_of_int cum) /. float_of_int c in
            lower +. (frac *. Float.max 0. (upper -. lower))
          end
          else find (i + 1) cum'
      in
      let v = find 0 0 in
      if Float.is_nan v then v else Float.max h.h_min (Float.min h.h_max v)
    end

  let name h = h.h_name
end

module Series = struct
  type t = series

  let create name =
    find_or_create series_tbl name (fun () ->
        { s_name = name; s_mutex = Mutex.create (); s_values = [||]; s_len = 0 })

  let set s ~index v =
    if enabled () then begin
      if index < 0 then invalid_arg "Telemetry.Series.set: negative index";
      with_lock s.s_mutex @@ fun () ->
      if index >= Array.length s.s_values then begin
        let grown = Array.make (max 8 (2 * (index + 1))) 0 in
        Array.blit s.s_values 0 grown 0 (Array.length s.s_values);
        s.s_values <- grown
      end;
      s.s_values.(index) <- v;
      if index + 1 > s.s_len then s.s_len <- index + 1
    end

  let get s ~index = if index >= 0 && index < s.s_len then Some s.s_values.(index) else None
  let to_list s = Array.to_list (Array.sub s.s_values 0 s.s_len)
  let name s = s.s_name
end

(* spans *)

type span = {
  sp_name : string;
  sp_start : float;
  mutable sp_end : float;
  mutable sp_attrs : (string * Json.t) list;
  mutable sp_children : span list; (* reversed *)
  sp_depth : int;
}

let span_mutex = Mutex.create ()
let span_roots : span list ref = ref [] (* guarded by span_mutex *)
let span_stack_key : span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let span_stack () = Domain.DLS.get span_stack_key
let span_count = Atomic.make 0
let trace_ref = ref false
let jsonl_ref : out_channel option ref = ref None

let set_trace b = trace_ref := b
let set_jsonl oc = jsonl_ref := oc

let span_dur sp = if Float.is_nan sp.sp_end then Float.nan else sp.sp_end -. sp.sp_start

let rec span_to_json sp =
  let base =
    [
      ("name", Json.String sp.sp_name);
      ("start_s", Json.Float sp.sp_start);
      ("dur_s", Json.Float (span_dur sp));
    ]
  in
  let attrs =
    if sp.sp_attrs = [] then [] else [ ("attrs", Json.Obj (List.rev sp.sp_attrs)) ]
  in
  let children =
    if sp.sp_children = [] then []
    else [ ("children", Json.List (List.rev_map span_to_json sp.sp_children)) ]
  in
  Json.Obj (base @ attrs @ children)

let jsonl_emit sp =
  match !jsonl_ref with
  | None -> ()
  | Some oc ->
      (* Correlation: a child span inherits the "trace" attribute of its
         nearest open ancestor so every exported line of a request trace
         carries the request's trace id. *)
      let attrs = List.rev sp.sp_attrs in
      let attrs =
        if List.mem_assoc "trace" attrs then attrs
        else
          let rec inherited = function
            | [] -> attrs
            | anc :: rest -> (
                match List.assoc_opt "trace" anc.sp_attrs with
                | Some v -> ("trace", v) :: attrs
                | None -> inherited rest)
          in
          inherited !(span_stack ())
      in
      let line =
        Json.Obj
          [
            ("type", Json.String "span");
            ("name", Json.String sp.sp_name);
            ("depth", Json.Int sp.sp_depth);
            ("start_s", Json.Float sp.sp_start);
            ("dur_s", Json.Float (span_dur sp));
            ("attrs", Json.Obj attrs);
          ]
      in
      with_lock span_mutex @@ fun () ->
      output_string oc (Json.to_string line);
      output_char oc '\n';
      flush oc

module Span = struct
  let max_spans = 50_000

  let set_attr key v =
    if enabled () then
      match !(span_stack ()) with
      | sp :: _ -> sp.sp_attrs <- (key, v) :: List.remove_assoc key sp.sp_attrs
      | [] -> ()

  let with_span ?(attrs = []) name f =
    if (not (enabled ())) || Atomic.get span_count >= max_spans then f ()
    else begin
      ignore (Atomic.fetch_and_add span_count 1);
      let stack = span_stack () in
      let depth = List.length !stack in
      let sp =
        {
          sp_name = name;
          sp_start = now_s ();
          sp_end = Float.nan;
          sp_attrs = List.rev attrs;
          sp_children = [];
          sp_depth = depth;
        }
      in
      (match !stack with
      | parent :: _ -> parent.sp_children <- sp :: parent.sp_children
      | [] -> with_lock span_mutex (fun () -> span_roots := sp :: !span_roots));
      stack := sp :: !stack;
      if !trace_ref then
        Printf.eprintf "%s> %s\n%!" (String.make (2 * depth) ' ') name;
      Fun.protect
        ~finally:(fun () ->
          sp.sp_end <- now_s ();
          (match !stack with
          | top :: rest when top == sp -> stack := rest
          | _ -> ());
          if !trace_ref then
            Printf.eprintf "%s< %s (%.3f ms)\n%!"
              (String.make (2 * depth) ' ')
              name
              (1e3 *. span_dur sp);
          jsonl_emit sp)
        f
    end

  let record ?(attrs = []) name ~start_s ~dur_s =
    if enabled () && Atomic.get span_count < max_spans then begin
      ignore (Atomic.fetch_and_add span_count 1);
      let stack = span_stack () in
      let depth = List.length !stack in
      let sp =
        {
          sp_name = name;
          sp_start = start_s;
          sp_end = start_s +. dur_s;
          sp_attrs = List.rev attrs;
          sp_children = [];
          sp_depth = depth;
        }
      in
      (match !stack with
      | parent :: _ -> parent.sp_children <- sp :: parent.sp_children
      | [] -> with_lock span_mutex (fun () -> span_roots := sp :: !span_roots));
      jsonl_emit sp
    end
end

(* snapshot *)

let sorted_bindings tbl key_of =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.sort (fun a b -> String.compare (key_of a) (key_of b))

let float_or_null f = if Float.is_nan f then Json.Null else Json.Float f

let histogram_to_json h =
  Json.Obj
    [
      ("count", Json.Int h.h_count);
      ("sum", Json.Float h.h_sum);
      ("min", float_or_null h.h_min);
      ("max", float_or_null h.h_max);
      ("p50", float_or_null (Histogram.quantile h 0.50));
      ("p90", float_or_null (Histogram.quantile h 0.90));
      ("p99", float_or_null (Histogram.quantile h 0.99));
      ( "buckets",
        Json.List
          (List.map
             (fun (le, c) ->
               Json.Obj
                 [
                   ("le", if le = Float.infinity then Json.Null else Json.Float le);
                   ("count", Json.Int c);
                 ])
             (Histogram.buckets h)) );
    ]

(* Prometheus text exposition (format 0.0.4).  Instrument names use dots
   as separators; Prometheus metric names cannot, so we sanitize
   [a.b.c] to [qsynth_a_b_c].  Histograms render as native Prometheus
   histograms: cumulative [_bucket{le="..."}] lines ending at [+Inf],
   then [_sum] and [_count].  Series render as a gauge family with an
   [index] label. *)
module Prometheus = struct
  let content_type = "text/plain; version=0.0.4"

  let sanitize_name s =
    let s =
      String.map
        (fun c ->
          match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
        s
    in
    if s = "" then "_"
    else match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s

  let escape_label_value s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let number f =
    if Float.is_nan f then "NaN"
    else if f = Float.infinity then "+Inf"
    else if f = Float.neg_infinity then "-Inf"
    else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.9g" f

  let render () =
    let buf = Buffer.create 4096 in
    let metric name = "qsynth_" ^ sanitize_name name in
    List.iter
      (fun c ->
        let m = metric c.c_name ^ "_total" in
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s counter\n%s %d\n" m m (Counter.value c)))
      (sorted_bindings counters (fun c -> c.c_name));
    List.iter
      (fun g ->
        let m = metric g.g_name in
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s gauge\n%s %s\n" m m (number (Gauge.value g))))
      (sorted_bindings gauges (fun g -> g.g_name));
    List.iter
      (fun h ->
        let m = metric h.h_name in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" m);
        let cum = ref 0 in
        List.iter
          (fun (le, c) ->
            if le <> Float.infinity then begin
              cum := !cum + c;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" m (number le) !cum)
            end)
          (Histogram.buckets h);
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" m h.h_count);
        Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" m (number h.h_sum));
        Buffer.add_string buf (Printf.sprintf "%s_count %d\n" m h.h_count))
      (sorted_bindings histograms (fun h -> h.h_name));
    List.iter
      (fun s ->
        let values = Series.to_list s in
        if values <> [] then begin
          let m = metric s.s_name in
          Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" m);
          List.iteri
            (fun i v ->
              Buffer.add_string buf (Printf.sprintf "%s{index=\"%d\"} %d\n" m i v))
            values
        end)
      (sorted_bindings series_tbl (fun s -> s.s_name));
    Buffer.contents buf
end

let snapshot () =
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map
             (fun c -> (c.c_name, Json.Int (Counter.value c)))
             (sorted_bindings counters (fun c -> c.c_name))) );
      ( "gauges",
        Json.Obj
          (List.map
             (fun g -> (g.g_name, Json.Float (Gauge.value g)))
             (sorted_bindings gauges (fun g -> g.g_name))) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun h -> (h.h_name, histogram_to_json h))
             (sorted_bindings histograms (fun h -> h.h_name))) );
      ( "series",
        Json.Obj
          (List.map
             (fun s -> (s.s_name, Json.List (List.map (fun v -> Json.Int v) (Series.to_list s))))
             (sorted_bindings series_tbl (fun s -> s.s_name))) );
      ("spans", Json.List (List.rev_map span_to_json !span_roots));
    ]

let write_snapshot path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.to_channel ~pretty:true oc (snapshot ());
      output_char oc '\n')

let reset () =
  Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counters;
  Hashtbl.iter (fun _ g -> Atomic.set g.g_value 0.) gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.h_buckets 0 (Array.length h.h_buckets) 0;
      h.h_count <- 0;
      h.h_sum <- 0.;
      h.h_min <- Float.nan;
      h.h_max <- Float.nan)
    histograms;
  Hashtbl.iter (fun _ s -> s.s_len <- 0) series_tbl;
  with_lock span_mutex (fun () -> span_roots := []);
  !(span_stack ()) |> ignore;
  span_stack () := [];
  Atomic.set span_count 0

let log_summary () =
  List.iter
    (fun c ->
      let v = Counter.value c in
      if v <> 0 then Log.info (fun m -> m "counter %s = %d" c.c_name v))
    (sorted_bindings counters (fun c -> c.c_name));
  List.iter
    (fun g ->
      let v = Gauge.value g in
      if v <> 0. then Log.info (fun m -> m "gauge %s = %g" g.g_name v))
    (sorted_bindings gauges (fun g -> g.g_name));
  List.iter
    (fun h ->
      if h.h_count > 0 then
        Log.info (fun m ->
            m "histogram %s: count %d, sum %.6fs, min %.6fs, max %.6fs" h.h_name
              h.h_count h.h_sum h.h_min h.h_max))
    (sorted_bindings histograms (fun h -> h.h_name));
  List.iter
    (fun s ->
      if s.s_len > 0 then
        Log.info (fun m ->
            m "series %s = [%s]" s.s_name
              (String.concat "; " (List.map string_of_int (Series.to_list s)))))
    (sorted_bindings series_tbl (fun s -> s.s_name));
  List.iter
    (fun sp -> Log.info (fun m -> m "span %s: %.3f ms" sp.sp_name (1e3 *. span_dur sp)))
    (List.rev !span_roots)
