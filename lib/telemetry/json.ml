type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* printing *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write b ~pretty ~indent v =
  let nl n =
    if pretty then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make (2 * n) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s -> escape_string b s
  | List [] -> Buffer.add_string b "[]"
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          nl (indent + 1);
          write b ~pretty ~indent:(indent + 1) item)
        items;
      nl indent;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char b ',';
          nl (indent + 1);
          escape_string b k;
          Buffer.add_char b ':';
          if pretty then Buffer.add_char b ' ';
          write b ~pretty ~indent:(indent + 1) item)
        fields;
      nl indent;
      Buffer.add_char b '}'

let to_string ?(pretty = false) v =
  let b = Buffer.create 256 in
  write b ~pretty ~indent:0 v;
  Buffer.contents b

let to_channel ?(pretty = false) oc v = output_string oc (to_string ~pretty v)

(* parsing *)

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ lit)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> fail "malformed \\u escape"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
          incr pos;
          Buffer.contents b
      | '\\' ->
          incr pos;
          if !pos >= n then fail "truncated escape";
          let c = s.[!pos] in
          incr pos;
          (match c with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              let code = hex4 () in
              let code =
                (* combine surrogate pairs; lone surrogates become U+FFFD *)
                if code >= 0xD800 && code <= 0xDBFF then
                  if !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u' then begin
                    pos := !pos + 2;
                    let low = hex4 () in
                    if low >= 0xDC00 && low <= 0xDFFF then
                      0x10000 + (((code - 0xD800) lsl 10) lor (low - 0xDC00))
                    else 0xFFFD
                  end
                  else 0xFFFD
                else if code >= 0xDC00 && code <= 0xDFFF then 0xFFFD
                else code
              in
              Buffer.add_utf_8_uchar b (Uchar.of_int code)
          | _ -> fail "unknown escape");
          go ()
      | c when Char.code c < 0x20 -> fail "control character in string"
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if !pos < n && s.[!pos] = '-' then incr pos;
    let is_float = ref false in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' -> true
      | '.' | 'e' | 'E' | '+' | '-' ->
          is_float := true;
          true
      | _ -> false
    do
      incr pos
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "malformed number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "malformed number")
  in
  let rec parse_value () =
    skip_ws ();
    if !pos >= n then fail "unexpected end of input";
    match s.[!pos] with
    | '{' ->
        incr pos;
        skip_ws ();
        if !pos < n && s.[!pos] = '}' then begin
          incr pos;
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            if !pos < n && s.[!pos] = ',' then begin
              incr pos;
              fields ((key, v) :: acc)
            end
            else begin
              expect '}';
              List.rev ((key, v) :: acc)
            end
          in
          Obj (fields [])
    | '[' ->
        incr pos;
        skip_ws ();
        if !pos < n && s.[!pos] = ']' then begin
          incr pos;
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            if !pos < n && s.[!pos] = ',' then begin
              incr pos;
              items (v :: acc)
            end
            else begin
              expect ']';
              List.rev (v :: acc)
            end
          in
          List (items [])
    | '"' -> String (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | '-' | '0' .. '9' -> parse_number ()
    | c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let path keys v =
  List.fold_left
    (fun acc key -> match acc with Some v -> member key v | None -> None)
    (Some v) keys

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y || (Float.is_nan x && Float.is_nan y)
  | String x, String y -> String.equal x y
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
      List.length x = List.length y
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
           x y
  | _ -> false
