let log_src = Logs.Src.create "qsynth.checkpoint" ~doc:"BFS snapshot files"

module Log = (val Logs.src_log log_src : Logs.LOG)

let h_write = Telemetry.Histogram.create "search.checkpoint.write.seconds"
let c_bytes = Telemetry.Counter.create "search.checkpoint.bytes"
let c_count = Telemetry.Counter.create "search.checkpoint.count"

exception Corrupt of string
exception Mismatch of string

type header = {
  fingerprint : int64;
  qubits : int;
  degree : int;
  num_binary : int;
  num_gates : int;
  depth : int;
  states : int;
  frontier_len : int;
  symmetry : int64 option;
      (* Some fp: quotient snapshot (format v2) — fp is the
         Symmetry.fingerprint of the group the arena was canonicalized
         under.  None: raw snapshot (format v1). *)
}

let magic = "QSYNCKP1"

(* v1: raw snapshots (no symmetry section, 11-byte state meta).
   v2: quotient snapshots — an extra symmetry-group fingerprint after the
   library fingerprint, and a per-state conjugator byte in the meta.  A
   v1 file is explicitly "no quotient"; either version loads. *)
let version_raw = 1
let version_quotient = 2

(* {1 CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320)} *)

(* Slicing-by-8: table [k] advances the register over a byte followed by
   [k] zero bytes, so eight input bytes fold in one round of table
   lookups.  Identical values to the classic one-table byte loop, ~4x
   faster — snapshots are tens of MB and the CRC is paid on every save
   and every load. *)
let crc_tables =
  lazy
    (let t = Array.make_matrix 8 256 0 in
     for n = 0 to 255 do
       let c = ref n in
       for _ = 0 to 7 do
         c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
       done;
       t.(0).(n) <- !c
     done;
     for k = 1 to 7 do
       for n = 0 to 255 do
         let prev = t.(k - 1).(n) in
         t.(k).(n) <- t.(0).(prev land 0xFF) lxor (prev lsr 8)
       done
     done;
     t)

let crc32_init = 0xFFFFFFFF

let crc32_feed init bytes ~off ~len =
  let t = Lazy.force crc_tables in
  let t0 = t.(0) and t1 = t.(1) and t2 = t.(2) and t3 = t.(3) in
  let t4 = t.(4) and t5 = t.(5) and t6 = t.(6) and t7 = t.(7) in
  let c = ref init in
  let i = ref off in
  let stop = off + len in
  while !i + 8 <= stop do
    let lo = Int32.to_int (Bytes.get_int32_le bytes !i) land 0xFFFFFFFF in
    let hi = Int32.to_int (Bytes.get_int32_le bytes (!i + 4)) land 0xFFFFFFFF in
    let x = !c lxor lo in
    c :=
      t7.(x land 0xFF)
      lxor t6.((x lsr 8) land 0xFF)
      lxor t5.((x lsr 16) land 0xFF)
      lxor t4.(x lsr 24)
      lxor t3.(hi land 0xFF)
      lxor t2.((hi lsr 8) land 0xFF)
      lxor t1.((hi lsr 16) land 0xFF)
      lxor t0.(hi lsr 24);
    i := !i + 8
  done;
  while !i < stop do
    c := t0.((!c lxor Char.code (Bytes.unsafe_get bytes !i)) land 0xFF) lxor (!c lsr 8);
    i := !i + 1
  done;
  !c

let crc32_finish c = c lxor 0xFFFFFFFF
let crc32 bytes ~off ~len = crc32_finish (crc32_feed crc32_init bytes ~off ~len)

(* {1 Library fingerprint (FNV-1a 64)} *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fingerprint library =
  let h = ref fnv_offset in
  let feed_byte b =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (b land 0xFF))) fnv_prime
  in
  let feed_int v =
    for shift = 0 to 7 do
      feed_byte (v lsr (8 * shift))
    done
  in
  let feed_string s = String.iter (fun c -> feed_byte (Char.code c)) s in
  feed_string "qsynth-library-v1";
  let encoding = Library.encoding library in
  feed_int (Library.qubits library);
  let degree = Mvl.Encoding.size encoding in
  feed_int degree;
  feed_int (Mvl.Encoding.num_binary encoding);
  for p = 0 to degree - 1 do
    feed_int (Mvl.Encoding.mixed_signature encoding p)
  done;
  Array.iter
    (fun (e : Library.entry) ->
      feed_string (Gate.name e.Library.gate);
      feed_int e.Library.purity_mask;
      Array.iter feed_int e.Library.perm_array)
    (Library.entries library);
  !h

(* {1 Captures}

   A capture is a zero-copy snapshot of the store taken at a level
   boundary: the header plus live references to each shard's metadata
   columns (see {!State_arena.shard_columns}).  Only the first [count]
   entries of each column are ever read, and those are immutable for the
   store's lifetime, so a capture can be serialized from another domain
   while the search expands the next level.

   Key bytes are deliberately NOT captured or serialized: a state's key
   is a pure function of its parent chain ([root = identity],
   [child.(j) = perm_array.(parent.(j))]), so {!load} replays the
   recorded gates instead.  That makes snapshots ~[degree/11]x smaller —
   the dominant cost of checkpointing is bytes CRC-ed, written and
   fsynced. *)

type capture = {
  header : header;
  shards : (int * int array * int array * int array * Bytes.t) array;
      (* count, depths, vias, parents, conjs *)
}

let capture search =
  let store = Search.store search in
  let library = Search.library search in
  let header =
    {
      fingerprint = fingerprint library;
      qubits = Library.qubits library;
      degree = State_arena.degree store;
      num_binary = Mvl.Encoding.num_binary (Library.encoding library);
      num_gates = Library.size library;
      depth = Search.depth search;
      states = State_arena.size store;
      frontier_len = Array.length (Search.frontier_handles search);
      symmetry = Option.map Symmetry.fingerprint (Search.symmetry search);
    }
  in
  {
    header;
    shards =
      Array.init State_arena.num_shards (fun s ->
          let count, _keys, depths, vias, parents, conjs =
            State_arena.shard_columns store s
          in
          (count, depths, vias, parents, conjs));
  }

(* {1 Serialization}

   The snapshot size is known exactly up front, so the payload is built
   in a single pre-sized [Bytes.t] with direct little-endian pokes — no
   [Buffer] growth doubling and no payload re-copy for the CRC pass. *)

let header_bytes = 8 + 4 + 8 + (6 * 4) + (2 * 8)
let meta_bytes = 2 + 1 + 8 (* depth u16, via+1 u8, parent+1 u64 *)
let meta_bytes_q = meta_bytes + 1 (* + conjugator u8 *)

let serialized_size c =
  let mb = if c.header.symmetry = None then meta_bytes else meta_bytes_q in
  let n = ref (header_bytes + 4) in
  if c.header.symmetry <> None then n := !n + 8;
  Array.iter (fun (count, _, _, _, _) -> n := !n + 4 + (count * mb)) c.shards;
  !n

let serialize c =
  let h = c.header in
  let buf = Bytes.create (serialized_size c) in
  let pos = ref 0 in
  let put_u32 v =
    Bytes.set_int32_le buf !pos (Int32.of_int v);
    pos := !pos + 4
  in
  let put_u64 v =
    Bytes.set_int64_le buf !pos (Int64.of_int v);
    pos := !pos + 8
  in
  Bytes.blit_string magic 0 buf 0 8;
  pos := 8;
  let quotient = h.symmetry <> None in
  put_u32 (if quotient then version_quotient else version_raw);
  Bytes.set_int64_le buf !pos h.fingerprint;
  pos := !pos + 8;
  (match h.symmetry with
  | None -> ()
  | Some fp ->
      Bytes.set_int64_le buf !pos fp;
      pos := !pos + 8);
  put_u32 h.qubits;
  put_u32 h.degree;
  put_u32 h.num_binary;
  put_u32 h.num_gates;
  put_u32 h.depth;
  put_u64 h.states;
  put_u64 h.frontier_len;
  put_u32 (Array.length c.shards);
  Array.iter
    (fun (count, depths, vias, parents, conjs) ->
      put_u32 count;
      for idx = 0 to count - 1 do
        Bytes.set_int16_le buf !pos depths.(idx);
        (* via and parent are -1 at the root; bias by one so the stored
           fields are unsigned *)
        Bytes.set_uint8 buf (!pos + 2) (vias.(idx) + 1);
        pos := !pos + 3;
        if quotient then begin
          Bytes.set_uint8 buf !pos (Char.code (Bytes.get conjs idx));
          incr pos
        end;
        Bytes.set_int64_le buf !pos (Int64.of_int (parents.(idx) + 1));
        pos := !pos + 8
      done)
    c.shards;
  put_u32 (crc32 buf ~off:0 ~len:(Bytes.length buf - 4));
  assert (!pos = Bytes.length buf);
  buf

(* {1 Atomic write} *)

let fsync_dir path =
  let dir = Filename.dirname path in
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () ->
          try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* Writes and fsyncs [bytes] to [tmp], removing it on error. *)
let write_tmp tmp bytes =
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  try
    let len = Bytes.length bytes in
    let written = ref 0 in
    while !written < len do
      written := !written + Unix.write fd bytes !written (len - !written)
    done;
    Unix.fsync fd;
    Unix.close fd
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let write_atomic path bytes =
  write_tmp (path ^ ".tmp") bytes;
  (* The injected "checkpoint" fault models a crash in the window where
     the temp file exists but the rename has not happened: a previous
     snapshot at [path] must still load. *)
  Faultsim.hit "checkpoint";
  Unix.rename (path ^ ".tmp") path;
  fsync_dir path

let record_write ~async (h : header) path bytes seconds =
  Telemetry.Counter.incr c_count;
  Telemetry.Counter.add c_bytes bytes;
  Telemetry.Histogram.observe h_write seconds;
  Log.info (fun m ->
      m "checkpoint%s: level %d, %d states, %d bytes -> %s"
        (if async then " (async)" else "")
        h.depth h.states bytes path)

(* {1 Asynchronous writes}

   Each [save_async] spawns its own writer domain.  Writers serialize
   and fsync a uniquely-named temp file independently — concurrent
   fsyncs batch into shared journal commits instead of paying their
   latency serially, which is what dominates checkpoint-every-1 on the
   fast early levels — and each writer joins its predecessor {e before
   renaming}, so snapshots land at [path] strictly in boundary order and
   an older snapshot can never overwrite a newer one.  The directory
   fsync is deferred to {!drain}/{!save}: one commit at the end covers
   the whole chain (each snapshot's data is durable when its rename
   happens; only the last rename's directory entry needs syncing, since
   a crash before it leaves the previous — complete — snapshot at
   [path]).

   Writers run no telemetry or logging (both are single-threaded by
   design); they return write records that the coordinator logs when it
   joins the chain. *)

type write_record = { w_header : header; w_path : string; w_bytes : int; w_seconds : float }

type pending = { p_path : string; p_dom : write_record list Domain.t }

let pending : pending option ref = ref None
let tmp_seq = ref 0

let run_writer c path tmp prev =
  let t0 = Unix.gettimeofday () in
  let bytes = serialize c in
  write_tmp tmp bytes;
  let seconds = Unix.gettimeofday () -. t0 in
  (* Ordering barrier: re-raises a predecessor's failure (after which
     our tmp file is an orphan the next [save] overwrites — the chain is
     already broken, so no rename happens here either). *)
  let earlier = match prev with None -> [] | Some p -> Domain.join p.p_dom in
  Faultsim.hit "checkpoint";
  Unix.rename tmp path;
  earlier @ [ { w_header = c.header; w_path = path; w_bytes = Bytes.length bytes; w_seconds = seconds } ]

let drain () =
  match !pending with
  | None -> ()
  | Some { p_path; p_dom } ->
      pending := None;
      (* Re-raises any exception a chained writer died with (injected
         fault, I/O error) on the coordinator. *)
      let records = Domain.join p_dom in
      fsync_dir p_path;
      List.iter
        (fun r -> record_write ~async:true r.w_header r.w_path r.w_bytes r.w_seconds)
        records

let save search path =
  drain ();
  Telemetry.Span.with_span "search.checkpoint.write" @@ fun () ->
  let c = capture search in
  let t0 = Unix.gettimeofday () in
  let bytes = serialize c in
  write_atomic path bytes;
  record_write ~async:false c.header path (Bytes.length bytes) (Unix.gettimeofday () -. t0);
  if Telemetry.enabled () then
    Telemetry.Span.set_attr "bytes" (Telemetry.Json.Int (Bytes.length bytes))

let save_async search path =
  let c = capture search in
  let prev = !pending in
  incr tmp_seq;
  let tmp = Printf.sprintf "%s.tmp.%d" path !tmp_seq in
  let dom = Domain.spawn (fun () -> run_writer c path tmp prev) in
  pending := Some { p_path = path; p_dom = dom }

(* {1 Reading} *)

type reader = { buf : Bytes.t; mutable pos : int; limit : int }

let need r n =
  if r.pos + n > r.limit then
    raise (Corrupt (Printf.sprintf "truncated snapshot body at byte %d" r.pos))

let read_u32 r =
  need r 4;
  let v = Int32.to_int (Bytes.get_int32_le r.buf r.pos) land 0xFFFFFFFF in
  r.pos <- r.pos + 4;
  v

let read_u64 r =
  need r 8;
  let v = Bytes.get_int64_le r.buf r.pos in
  r.pos <- r.pos + 8;
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    raise (Corrupt "snapshot field out of range");
  Int64.to_int v

let read_u16 r =
  need r 2;
  let v = Bytes.get_uint16_le r.buf r.pos in
  r.pos <- r.pos + 2;
  v

let read_u8 r =
  need r 1;
  let v = Bytes.get_uint8 r.buf r.pos in
  r.pos <- r.pos + 1;
  v

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let buf = Bytes.create len in
      really_input ic buf 0 len;
      buf)

let checked_reader path =
  let buf = read_file path in
  let len = Bytes.length buf in
  (* magic + version .. frontier_len + num_shards + crc *)
  if len < 8 + 4 + 8 + (6 * 4) + (2 * 8) + 4 then
    raise (Corrupt (Printf.sprintf "file too short to be a snapshot (%d bytes)" len));
  if Bytes.sub_string buf 0 8 <> magic then
    raise (Corrupt "bad magic: not a qsynth snapshot");
  let stored_crc =
    Int32.to_int (Bytes.get_int32_le buf (len - 4)) land 0xFFFFFFFF
  in
  let actual_crc = crc32 buf ~off:0 ~len:(len - 4) in
  if stored_crc <> actual_crc then
    raise
      (Corrupt
         (Printf.sprintf "CRC mismatch (stored %08x, computed %08x): corrupted or \
                          truncated snapshot"
            stored_crc actual_crc));
  { buf; pos = 8; limit = len - 4 }

let read_header r =
  let v = read_u32 r in
  if v <> version_raw && v <> version_quotient then
    raise
      (Mismatch
         (Printf.sprintf "snapshot format version %d, this build reads %d and %d" v
            version_raw version_quotient));
  need r 8;
  let fingerprint = Bytes.get_int64_le r.buf r.pos in
  r.pos <- r.pos + 8;
  let symmetry =
    if v = version_raw then None
    else begin
      need r 8;
      let fp = Bytes.get_int64_le r.buf r.pos in
      r.pos <- r.pos + 8;
      Some fp
    end
  in
  let qubits = read_u32 r in
  let degree = read_u32 r in
  let num_binary = read_u32 r in
  let num_gates = read_u32 r in
  let depth = read_u32 r in
  let states = read_u64 r in
  let frontier_len = read_u64 r in
  let num_shards = read_u32 r in
  if num_shards <> State_arena.num_shards then
    raise
      (Mismatch
         (Printf.sprintf "snapshot has %d shards, this build uses %d" num_shards
            State_arena.num_shards));
  { fingerprint; qubits; degree; num_binary; num_gates; depth; states; frontier_len;
    symmetry }

let peek path =
  let r = checked_reader path in
  read_header r

let check_library library (h : header) =
  let fp = fingerprint library in
  let fail fmt = Printf.ksprintf (fun m -> raise (Mismatch m)) fmt in
  let name = Library.name library in
  if h.qubits <> Library.qubits library then
    fail "snapshot is for a %d-qubit library, this run uses %d qubits (%s)"
      h.qubits (Library.qubits library) name;
  (* a quotient arena stores num_binary-byte image keys, not full point
     permutations *)
  let degree =
    match h.symmetry with
    | None -> Mvl.Encoding.size (Library.encoding library)
    | Some _ -> Mvl.Encoding.num_binary (Library.encoding library)
  in
  if h.degree <> degree then
    fail "snapshot key length is %d bytes, library %s expects %d" h.degree name
      degree;
  if h.num_gates <> Library.size library then
    fail "snapshot library has %d gates, library %s has %d" h.num_gates name
      (Library.size library);
  if not (Int64.equal h.fingerprint fp) then
    fail
      "snapshot was produced by a different gate library/encoding (fingerprint %Lx, \
       this library is %s = %Lx)"
      h.fingerprint name fp

(* [rebuild_keys] replays the recorded gates to recover every state's
   key bytes: level-0 states get the identity permutation, and a level-d
   state's key is its parent's key mapped through its [via] gate —
   exactly how the search computed it.  Parents sit strictly one level
   up, so filling levels in depth order sees every parent key before its
   children need it.  Structural lies in the metadata (bad via, dangling
   or wrong-level parent) are rejected here; a key that lands in the
   wrong shard is caught by [State_arena.restore_shard] below. *)
let rebuild_keys library ~degree ~max_d ~counts ~depths ~vias ~parents =
  let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt in
  let perms =
    Array.map (fun (e : Library.entry) -> e.Library.perm_array) (Library.entries library)
  in
  let num_gates = Array.length perms in
  let num_shards = Array.length counts in
  let keys = Array.init num_shards (fun s -> Bytes.create (counts.(s) * degree)) in
  for d = 0 to max_d do
    for s = 0 to num_shards - 1 do
      let ds = depths.(s) in
      for idx = 0 to counts.(s) - 1 do
        if ds.(idx) = d then begin
          let off = idx * degree in
          if d = 0 then
            for j = 0 to degree - 1 do
              Bytes.set keys.(s) (off + j) (Char.chr j)
            done
          else begin
            let via = vias.(s).(idx) in
            let p = parents.(s).(idx) in
            if via < 0 || via >= num_gates then
              corrupt "state has gate index %d outside the %d-gate library" via num_gates;
            if p < 0 then corrupt "non-root state at level %d has no parent" d;
            let ps = State_arena.shard_of_handle p in
            let pi = State_arena.index_of_handle p in
            if pi >= counts.(ps) then
              corrupt "parent handle %d points past shard %d (%d states)" p ps counts.(ps);
            if depths.(ps).(pi) <> d - 1 then
              corrupt "parent of a level-%d state sits at level %d" d depths.(ps).(pi);
            let pa = perms.(via) in
            let pkeys = keys.(ps) in
            let poff = pi * degree in
            let dst = keys.(s) in
            for j = 0 to degree - 1 do
              Bytes.unsafe_set dst (off + j)
                (Char.unsafe_chr pa.(Char.code (Bytes.unsafe_get pkeys (poff + j))))
            done
          end
        end
      done
    done
  done;
  keys

(* [rebuild_keys_quotient] is the v2 replay: a child's key is the
   {e canonical form} of its parent's key mapped through its [via] gate,
   and the conjugator that canonicalization picks must equal the recorded
   one — a snapshot whose conjugators disagree with its own parent chain
   is rejected as corrupt rather than silently re-derived, since the
   conjugators are what witness reconstruction conjugates through. *)
let rebuild_keys_quotient sym library ~klen ~max_d ~counts ~depths ~vias ~parents
    ~conjs =
  let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt in
  let perms =
    Array.map (fun (e : Library.entry) -> e.Library.perm_array) (Library.entries library)
  in
  let num_gates = Array.length perms in
  let num_shards = Array.length counts in
  let keys = Array.init num_shards (fun s -> Bytes.create (counts.(s) * klen)) in
  let raw = Bytes.create klen in
  let tmp = Bytes.create klen in
  for d = 0 to max_d do
    for s = 0 to num_shards - 1 do
      let ds = depths.(s) in
      for idx = 0 to counts.(s) - 1 do
        if ds.(idx) = d then begin
          let off = idx * klen in
          if d = 0 then
            for j = 0 to klen - 1 do
              Bytes.set keys.(s) (off + j) (Char.chr j)
            done
          else begin
            let via = vias.(s).(idx) in
            let p = parents.(s).(idx) in
            if via < 0 || via >= num_gates then
              corrupt "state has gate index %d outside the %d-gate library" via num_gates;
            if p < 0 then corrupt "non-root state at level %d has no parent" d;
            let ps = State_arena.shard_of_handle p in
            let pi = State_arena.index_of_handle p in
            if pi >= counts.(ps) then
              corrupt "parent handle %d points past shard %d (%d states)" p ps counts.(ps);
            if depths.(ps).(pi) <> d - 1 then
              corrupt "parent of a level-%d state sits at level %d" d depths.(ps).(pi);
            let pa = perms.(via) in
            let pkeys = keys.(ps) in
            let poff = pi * klen in
            for j = 0 to klen - 1 do
              Bytes.unsafe_set raw j
                (Char.unsafe_chr pa.(Char.code (Bytes.unsafe_get pkeys (poff + j))))
            done;
            let conj = Symmetry.canon_into sym ~src:raw ~soff:0 ~tmp ~dst:keys.(s) ~doff:off in
            if conj <> Char.code (Bytes.get conjs.(s) idx) then
              corrupt
                "level-%d state records conjugator %d but its parent chain \
                 canonicalizes with %d"
                d
                (Char.code (Bytes.get conjs.(s) idx))
                conj
          end
        end
      done
    done
  done;
  keys

let load ?(jobs = 1) library path =
  let r = checked_reader path in
  let header = read_header r in
  check_library library header;
  let encoding = Library.encoding library in
  (* The quotient group is rebuilt from the library, never trusted from
     the file: the recorded fingerprint only proves the snapshot was
     canonicalized under the {e same} group. *)
  let symmetry =
    match header.symmetry with
    | None -> None
    | Some fp ->
        let sym = Symmetry.create library in
        if not (Int64.equal (Symmetry.fingerprint sym) fp) then
          raise
            (Mismatch
               (Printf.sprintf
                  "quotient snapshot was canonicalized under a different symmetry \
                   group (fingerprint %Lx, this library's group %Lx)"
                  fp (Symmetry.fingerprint sym)));
        Some sym
  in
  let degree = header.degree in
  let signatures =
    Array.init (Mvl.Encoding.size encoding) (Mvl.Encoding.mixed_signature encoding)
  in
  let num_shards = State_arena.num_shards in
  let counts = Array.make num_shards 0 in
  let depths = Array.make num_shards [||] in
  let vias = Array.make num_shards [||] in
  let parents = Array.make num_shards [||] in
  let conjs = Array.make num_shards Bytes.empty in
  let total = ref 0 and max_d = ref 0 in
  for shard = 0 to num_shards - 1 do
    let count = read_u32 r in
    counts.(shard) <- count;
    let d = Array.make count 0 in
    let v = Array.make count 0 in
    let p = Array.make count 0 in
    let cj = Bytes.make count '\000' in
    for idx = 0 to count - 1 do
      d.(idx) <- read_u16 r;
      if d.(idx) > !max_d then max_d := d.(idx);
      v.(idx) <- read_u8 r - 1;
      if symmetry <> None then Bytes.set cj idx (Char.chr (read_u8 r));
      p.(idx) <- read_u64 r - 1
    done;
    depths.(shard) <- d;
    vias.(shard) <- v;
    parents.(shard) <- p;
    conjs.(shard) <- cj;
    total := !total + count
  done;
  if r.pos <> r.limit then
    raise (Corrupt (Printf.sprintf "%d trailing bytes after the last shard" (r.limit - r.pos)));
  if !total <> header.states then
    raise
      (Corrupt
         (Printf.sprintf "shard counts sum to %d but the header claims %d states" !total
            header.states));
  if !max_d > header.depth then
    raise
      (Corrupt
         (Printf.sprintf "a state at level %d exceeds the header's depth %d" !max_d
            header.depth));
  let keys =
    match symmetry with
    | None -> rebuild_keys library ~degree ~max_d:!max_d ~counts ~depths ~vias ~parents
    | Some sym ->
        rebuild_keys_quotient sym library ~klen:degree ~max_d:!max_d ~counts ~depths
          ~vias ~parents ~conjs
  in
  let store =
    State_arena.create ~degree
      ~num_binary:(Mvl.Encoding.num_binary encoding)
      ~signatures
  in
  for shard = 0 to num_shards - 1 do
    try
      State_arena.restore_shard store ~shard ~count:counts.(shard) ~keys:keys.(shard)
        ~depths:depths.(shard) ~vias:vias.(shard) ~parents:parents.(shard)
        ~conjs:conjs.(shard)
    with Invalid_argument msg -> raise (Corrupt msg)
  done;
  let search =
    try Search.of_store ~jobs ?symmetry library ~depth:header.depth store
    with Invalid_argument msg -> raise (Corrupt msg)
  in
  let frontier_len = Array.length (Search.frontier_handles search) in
  if frontier_len <> header.frontier_len then
    raise
      (Corrupt
         (Printf.sprintf "frontier has %d states but the header claims %d" frontier_len
            header.frontier_len));
  Log.info (fun m ->
      m "restored checkpoint %s: level %d, %d states, frontier %d" path header.depth
        header.states frontier_len);
  search
