open Reversible
open Permgroup

type element_bound = { func : Revfun.t; lower : int; upper : int }
type t = { exact : (int * int) list; bounds : element_bound list; tight : int }

let analyze census =
  let library = Search.library (Fmcf.search census) in
  if Library.qubits library <> 3 then
    invalid_arg "Spectrum.analyze: only 3-qubit libraries are supported";
  (* Exact costs from the census. *)
  let cost_of = Hashtbl.create 8192 in
  List.iter
    (fun level ->
      List.iter
        (fun (m : Fmcf.member) ->
          Hashtbl.replace cost_of (Perm.key (Revfun.to_perm m.Fmcf.func)) m.Fmcf.cost)
        level.Fmcf.members)
    (Fmcf.levels census);
  let found =
    List.concat_map
      (fun level -> List.map (fun (m : Fmcf.member) -> m.Fmcf.func) level.Fmcf.members)
      (Fmcf.levels census)
  in
  let census_depth =
    List.fold_left (fun acc level -> max acc level.Fmcf.cost) 0 (Fmcf.levels census)
  in
  (* The universe the spectrum ranges over: the zero-fixing group G
     (order 5040) under the paper's coset reduction, or all of S8 for a
     full-group library (NCT, NFT). *)
  let remaining =
    if Library.coset_reduction library then
      let group =
        Universality.closure_of (Gates.g1 :: Universality.cnots ~bits:3)
      in
      Closure.fold
        (fun p acc ->
          if Hashtbl.mem cost_of (Perm.key p) then acc
          else Revfun.of_perm ~bits:3 p :: acc)
        group []
    else begin
      let next_permutation a =
        let n = Array.length a in
        let swap i j =
          let tmp = a.(i) in
          a.(i) <- a.(j);
          a.(j) <- tmp
        in
        let i = ref (n - 2) in
        while !i >= 0 && a.(!i) >= a.(!i + 1) do
          decr i
        done;
        if !i < 0 then false
        else begin
          let j = ref (n - 1) in
          while a.(!j) <= a.(!i) do
            decr j
          done;
          swap !i !j;
          let l = ref (!i + 1) and r = ref (n - 1) in
          while !l < !r do
            swap !l !r;
            incr l;
            decr r
          done;
          true
        end
      in
      let a = Array.init 8 Fun.id in
      let acc = ref [] in
      let continue = ref true in
      while !continue do
        let p = Perm.of_array (Array.copy a) in
        if not (Hashtbl.mem cost_of (Perm.key p)) then
          acc := Revfun.of_perm ~bits:3 p :: !acc;
        continue := next_permutation a
      done;
      !acc
    end
  in
  (* Two-split upper bound: cost(h) + cost(h^-1 * g) over census members h.
     Iterating h over the cheap members first lets us stop early once the
     bound matches the lower bound. *)
  let by_cost =
    List.sort
      (fun a b ->
        Int.compare
          (Hashtbl.find cost_of (Perm.key (Revfun.to_perm a)))
          (Hashtbl.find cost_of (Perm.key (Revfun.to_perm b))))
      found
  in
  let lower = census_depth + 1 in
  let bound_of g =
    let best = ref max_int in
    (try
       List.iter
         (fun h ->
           let ch = Hashtbl.find cost_of (Perm.key (Revfun.to_perm h)) in
           if ch + 1 >= !best then raise Exit
           else
             let rest = Revfun.compose (Revfun.inverse h) g in
             match Hashtbl.find_opt cost_of (Perm.key (Revfun.to_perm rest)) with
             | Some c ->
                 if ch + c < !best then best := ch + c;
                 if !best <= lower then raise Exit
             | None -> ())
         by_cost
     with Exit -> ());
    { func = g; lower; upper = !best }
  in
  let bounds = List.map bound_of remaining in
  let tight = List.length (List.filter (fun b -> b.lower = b.upper) bounds) in
  { exact = Fmcf.counts census; bounds; tight }

type completion = {
  census_histogram : (int * int) list;
  probe_one : int;
  probe_two : int;
  resolved_tail : (int * int) list;
  unresolved : int;
}

let complete census t =
  let search = Fmcf.search census in
  let depth = Search.depth search in
  let known = Hashtbl.create 8192 in
  List.iter
    (fun level ->
      List.iter
        (fun (m : Fmcf.member) ->
          Hashtbl.replace known (Perm.key (Revfun.to_perm m.Fmcf.func)) ())
        level.Fmcf.members)
    (Fmcf.levels census);
  let fresh probe =
    Hashtbl.fold (fun key () acc -> if Hashtbl.mem known key then acc else key :: acc) probe []
  in
  let level1 = fresh (Search.probe_restrictions search ~steps:1) in
  List.iter (fun key -> Hashtbl.replace known key ()) level1;
  let level2 = fresh (Search.probe_restrictions search ~steps:2) in
  List.iter (fun key -> Hashtbl.replace known key ()) level2;
  (* Elements beyond d+2: cost >= d+3; exact when the two-split upper
     bound meets that. *)
  let tail = Hashtbl.create 8 in
  let unresolved = ref 0 in
  List.iter
    (fun b ->
      let key = Perm.key (Revfun.to_perm b.func) in
      if not (Hashtbl.mem known key) then
        if b.upper = depth + 3 then
          Hashtbl.replace tail b.upper
            (1 + Option.value ~default:0 (Hashtbl.find_opt tail b.upper))
        else incr unresolved)
    t.bounds;
  {
    census_histogram = t.exact;
    probe_one = List.length level1;
    probe_two = List.length level2;
    resolved_tail =
      Hashtbl.fold (fun cost n acc -> (cost, n) :: acc) tail []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b);
    unresolved = !unresolved;
  }

let composer census =
  let library = Search.library (Fmcf.search census) in
  if Library.qubits library <> 3 then
    invalid_arg "Spectrum.composer: only 3-qubit libraries are supported";
  let members =
    List.concat_map (fun level -> level.Fmcf.members) (Fmcf.levels census)
  in
  let generators =
    List.filter_map
      (fun (m : Fmcf.member) ->
        if m.Fmcf.cost = 0 then None
        else Some (m, Revfun.to_perm m.Fmcf.func))
      members
  in
  (* Dijkstra over the zero-fixing group (order 5040 for 3 qubits); edges
     are right-multiplications by census members, weighted by their cost.
     The settled table records, per function, the last member used and
     the predecessor — unwinding gives the factor sequence. *)
  let max_cost = 64 in
  let best : (string, int) Hashtbl.t = Hashtbl.create 8192 in
  let parent : (string, Fmcf.member * string) Hashtbl.t = Hashtbl.create 8192 in
  let settled : (string, unit) Hashtbl.t = Hashtbl.create 8192 in
  let buckets = Array.make (max_cost + 1) [] in
  let id = Perm.identity 8 in
  Hashtbl.replace best (Perm.key id) 0;
  buckets.(0) <- [ id ];
  for c = 0 to max_cost do
    List.iter
      (fun p ->
        let key = Perm.key p in
        match Hashtbl.find_opt best key with
        | Some cost when cost = c && not (Hashtbl.mem settled key) ->
            Hashtbl.add settled key ();
            List.iter
              (fun ((m : Fmcf.member), gen) ->
                let child = Perm.mul p gen in
                let child_cost = c + m.Fmcf.cost in
                if child_cost <= max_cost then begin
                  let child_key = Perm.key child in
                  let improves =
                    match Hashtbl.find_opt best child_key with
                    | Some existing -> child_cost < existing
                    | None -> true
                  in
                  if improves && not (Hashtbl.mem settled child_key) then begin
                    Hashtbl.replace best child_key child_cost;
                    Hashtbl.replace parent child_key (m, key);
                    buckets.(child_cost) <- child :: buckets.(child_cost)
                  end
                end)
              generators
        | Some _ | None -> ())
      buckets.(c)
  done;
  fun target ->
    let mask, remainder =
      if Library.coset_reduction library then Mce.strip_not_layer target
      else (0, target)
    in
    let finish cascade =
      Some { Mce.target; not_mask = mask; cascade; cost = List.length cascade }
    in
    let rec unwind key acc =
      match Hashtbl.find_opt parent key with
      | None -> acc
      | Some (m, predecessor) ->
          unwind predecessor (Fmcf.cascade_of_member census m @ acc)
    in
    let key = Perm.key (Revfun.to_perm remainder) in
    if Revfun.is_identity remainder then finish []
    else if Hashtbl.mem settled key then finish (unwind key [])
    else None

let express_upper census target = composer census target

let upper_histogram t =
  let table = Hashtbl.create 8 in
  List.iter
    (fun b ->
      Hashtbl.replace table b.upper
        (1 + Option.value ~default:0 (Hashtbl.find_opt table b.upper)))
    t.bounds;
  Hashtbl.fold (fun cost n acc -> (cost, n) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
