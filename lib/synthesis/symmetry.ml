open Permgroup

type elt = {
  wire : int array; (* the wire relabeling pi *)
  perm : Perm.t; (* induced permutation q of the encoding's points *)
  qbin : int array; (* q on the binary block: qbin.(b) = q b < num_binary *)
  qinv : int array; (* q^-1 on every point *)
  gate_map : int array; (* library entry index of q^-1 . g . q *)
}

type t = {
  library : Library.t;
  num_binary : int;
  order : int;
  not_cosets : int;
  elements : elt array; (* sorted by Perm.key of [perm]; index 0 = identity *)
  fingerprint : int64;
}

let library t = t.library
let order t = t.order
let not_cosets t = t.not_cosets
let num_binary t = t.num_binary
let wire_perm t i = Array.copy t.elements.(i).wire
let fingerprint t = t.fingerprint
let gate_map t i = Array.copy t.elements.(i).gate_map

(* All permutations of [0 .. n-1], by recursive insertion; the result is
   re-sorted on the induced point permutations, so enumeration order is
   irrelevant. *)
let all_wire_perms n =
  let rec go k =
    if k = 0 then [ [] ]
    else
      List.concat_map
        (fun rest ->
          List.init (List.length rest + 1) (fun i ->
              let rec insert i l =
                if i = 0 then (k - 1) :: l
                else match l with [] -> [ k - 1 ] | x :: tl -> x :: insert (i - 1) tl
              in
              insert i rest))
        (go (k - 1))
  in
  List.map Array.of_list (go n)

(* [permute_wire_bits pi mask] moves bit [w] of a per-wire bitmask to bit
   [pi.(w)] — how mixed signatures and purity masks transport under the
   relabeling. *)
let permute_wire_bits pi mask =
  let out = ref 0 in
  Array.iteri (fun w w' -> if mask land (1 lsl w) <> 0 then out := !out lor (1 lsl w')) pi;
  !out

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let group_fingerprint ~qubits ~size ~num_binary elements =
  let h = ref fnv_offset in
  let feed_byte b =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (b land 0xFF))) fnv_prime
  in
  let feed_int v =
    for shift = 0 to 7 do
      feed_byte (v lsr (8 * shift))
    done
  in
  let feed_string s = String.iter (fun c -> feed_byte (Char.code c)) s in
  feed_string "qsynth-symmetry-v1";
  feed_int qubits;
  feed_int size;
  feed_int num_binary;
  feed_int (Array.length elements);
  Array.iter (fun e -> feed_string (Perm.key e.perm)) elements;
  !h

let create lib =
  let encoding = Library.encoding lib in
  let qubits = Library.qubits lib in
  let size = Mvl.Encoding.size encoding in
  let nb = Mvl.Encoding.num_binary encoding in
  let entries = Library.entries lib in
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  (* the point permutation induced by relabeling wire w to pi.(w): the
     image pattern reads its wire pi.(w) (= old wire w) from the source *)
  let point_perm pi =
    let inv = Array.make qubits 0 in
    Array.iteri (fun w w' -> inv.(w') <- w) pi;
    Mvl.Encoding.perm_of_action encoding (fun p ->
        Mvl.Pattern.make qubits (fun w -> Mvl.Pattern.get p inv.(w)))
  in
  let build pi =
    let q = point_perm pi in
    let qa = Perm.to_array q in
    let qia = Perm.to_array (Perm.inverse q) in
    (* the relabeling must keep the binary block a block *)
    for b = 0 to nb - 1 do
      if qa.(b) >= nb then
        fail "Symmetry.create: wire relabeling does not preserve the binary block"
    done;
    (* mixed signatures must transport per-wire *)
    for p = 0 to size - 1 do
      if
        Mvl.Encoding.mixed_signature encoding qa.(p)
        <> permute_wire_bits pi (Mvl.Encoding.mixed_signature encoding p)
      then fail "Symmetry.create: mixed signatures are not wire-equivariant"
    done;
    (* the library must be closed under conjugation, with coherent purity
       masks — this is what makes quotienting the BFS sound *)
    let gate_map =
      Array.mapi
        (fun gi (e : Library.entry) ->
          let conj = Perm.conjugate e.Library.perm q in
          let rec find j =
            if j >= Array.length entries then
              fail "Symmetry.create: library is not closed under wire relabeling \
                    (conjugating gate %d of %d leaves the library)"
                gi (Array.length entries)
            else if Perm.equal entries.(j).Library.perm conj then j
            else find (j + 1)
          in
          let j = find 0 in
          if entries.(j).Library.purity_mask <> permute_wire_bits pi e.Library.purity_mask
          then fail "Symmetry.create: purity masks are not wire-equivariant";
          j)
        entries
    in
    { wire = pi; perm = q; qbin = Array.sub qa 0 nb; qinv = qia; gate_map }
  in
  let elements =
    all_wire_perms qubits |> List.map build
    |> List.sort (fun a b -> Perm.compare a.perm b.perm)
    |> Array.of_list
  in
  (* Schreier–Sims sanity check: the induced point permutations generate
     a group of order qubits! containing every element — i.e. the
     construction really is the symmetric group on wires acting on
     points, not an accidental subset. *)
  let chain =
    Schreier.of_generators ~degree:size (Array.to_list (Array.map (fun e -> e.perm) elements))
  in
  let expected = Array.fold_left (fun acc i -> acc * (i + 1)) 1 (Array.init qubits Fun.id) in
  if Schreier.order chain <> expected then
    fail "Symmetry.create: wire relabelings generate order %d, expected %d!"
      (Schreier.order chain) expected;
  Array.iter
    (fun e ->
      if not (Schreier.mem chain e.perm) then
        fail "Symmetry.create: element outside its own Schreier chain")
    elements;
  if not (Perm.is_identity elements.(0).perm) then
    fail "Symmetry.create: identity is not the least element";
  {
    library = lib;
    num_binary = nb;
    order = Array.length elements;
    not_cosets = 1 lsl qubits;
    elements;
    fingerprint = group_fingerprint ~qubits ~size ~num_binary:nb elements;
  }

let conjugate_image t i img =
  let e = t.elements.(i) in
  String.init t.num_binary (fun b -> Char.chr e.qinv.(Char.code img.[e.qbin.(b)]))

let canon_into t ~src ~soff ~tmp ~dst ~doff =
  let nb = t.num_binary in
  Bytes.blit src soff dst doff nb;
  let best = ref 0 in
  for gi = 1 to t.order - 1 do
    let e = Array.unsafe_get t.elements gi in
    let qbin = e.qbin and qinv = e.qinv in
    for b = 0 to nb - 1 do
      Bytes.unsafe_set tmp b
        (Char.unsafe_chr
           (Array.unsafe_get qinv
              (Char.code (Bytes.unsafe_get src (soff + Array.unsafe_get qbin b)))))
    done;
    (* strict lexicographic improvement only: ties keep the earliest
       element, so the conjugator index is deterministic even when the
       stabilizer of the canonical form is non-trivial *)
    let rec cmp b =
      if b >= nb then 0
      else
        let c =
          Char.compare (Bytes.unsafe_get tmp b) (Bytes.unsafe_get dst (doff + b))
        in
        if c <> 0 then c else cmp (b + 1)
    in
    if cmp 0 < 0 then begin
      Bytes.blit tmp 0 dst doff nb;
      best := gi
    end
  done;
  !best

let canon t img =
  let nb = t.num_binary in
  if String.length img <> nb then invalid_arg "Symmetry.canon: image length mismatch";
  let dst = Bytes.create nb in
  let tmp = Bytes.create nb in
  let gi =
    canon_into t ~src:(Bytes.unsafe_of_string img) ~soff:0 ~tmp ~dst ~doff:0
  in
  (Bytes.unsafe_to_string dst, gi)

let orbit_images t img =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  for i = 0 to t.order - 1 do
    let c = conjugate_image t i img in
    if not (Hashtbl.mem seen c) then begin
      Hashtbl.add seen c ();
      out := c :: !out
    end
  done;
  List.rev !out
