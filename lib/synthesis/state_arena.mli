(** Sharded, arena-packed store of BFS circuit states.

    Replaces the seed engine's per-state [string] key + boxed node record
    with [2^{!shard_bits}] shards, each holding a growable [Bytes] arena of
    packed state vectors plus flat [int] arrays for the per-state metadata
    (BFS depth, the library index of the last gate, the parent handle, the
    memoized binary-block signature, and the full key hash).  A state is
    addressed by an integer {e handle} [(local_index lsl shard_bits) lor
    shard]; no per-state heap object exists.

    A state's shard is a pure function of its key bytes
    ({!shard_of_hash} of {!hash_key}), so the store's contents — including
    every handle — are independent of how insertions are scheduled across
    domains.  Concurrency contract: {!try_insert} mutates only the
    addressed shard, so distinct domains may insert into distinct shards
    concurrently; all read-only accessors are safe while no insertion into
    the relevant shard is in flight. *)

type t

val shard_bits : int
(** Shard count is fixed (not a function of the worker count) so handles
    and frontier order are identical for every [jobs] value. *)

val num_shards : int

(** [create ~degree ~num_binary ~signatures] is an empty store for state
    vectors of [degree] bytes; [signatures.(p)] is the mixed signature of
    encoding point [p], OR-ed over the first [num_binary] bytes of a key
    to form the memoized reasonable-product signature. *)
val create : degree:int -> num_binary:int -> signatures:int array -> t

val degree : t -> int

(** [size t] is the number of states stored across all shards. *)
val size : t -> int

(** [arena_bytes t] is the total number of key-arena bytes reserved. *)
val arena_bytes : t -> int

(** [table_capacity t] is the total number of open-addressing slots
    (across shards) — the denominator of the load factor. *)
val table_capacity : t -> int

(** {1 Hashing} *)

(** [hash_key b ~off ~len] hashes the key bytes at [b.[off .. off+len-1]];
    deterministic and domain-independent. *)
val hash_key : Bytes.t -> off:int -> len:int -> int

val shard_of_hash : int -> int

(** {1 Handle accessors} *)

val shard_of_handle : int -> int
val index_of_handle : int -> int

(** [handle ~shard ~index] packs a (shard, local index) pair back into a
    handle — the inverse of the two accessors above. *)
val handle : shard:int -> index:int -> int

(** [shard_arena t shard] is the current key arena of [shard]; state
    [idx] of the shard occupies bytes [idx*degree .. (idx+1)*degree-1].
    The returned value is invalidated by the next insertion that grows
    the shard. *)
val shard_arena : t -> int -> Bytes.t

(** [key_offset t handle] is the byte offset of [handle]'s key inside
    [shard_arena t (shard_of_handle handle)]. *)
val key_offset : t -> int -> int

(** [key_of t handle] materializes the key as a fresh string (legacy
    interface; the hot paths read the arena directly). *)
val key_of : t -> int -> string

(** [key_prefix t handle ~len] is the first [len] bytes of [handle]'s key
    — for 3-qubit searches the length-[num_binary] prefix is the state's
    image of the binary block, which is the join column of the
    meet-in-the-middle engine ({!Bidir}): two circuits compose into a
    realization of a binary function exactly when the suffix chain leads
    from that image vector to the target.  Bounds are not checked beyond
    the shard arena itself; [len] must be within the key. *)
val key_prefix : t -> int -> len:int -> string

val depth_of : t -> int -> int

(** [via_of t handle] is the library index of the last gate, -1 at the
    root. *)
val via_of : t -> int -> int

(** [parent_of t handle] is the parent handle, -1 at the root. *)
val parent_of : t -> int -> int

(** [signature_of t handle] is the memoized binary-block mixed signature
    (the OR that the seed engine recomputed per expansion). *)
val signature_of : t -> int -> int

(** [conj_of t handle] is the conjugating symmetry-group element index
    recorded at insertion (see {!Symmetry}): in a quotiented search the
    state's key is the canonical form of [conjugate_image conj] of the
    raw candidate that discovered it.  0 for every state of an
    unquotiented store. *)
val conj_of : t -> int -> int

(** {1 Lookup and insertion} *)

(** [find t key ~off ~hash] is the handle of the stored state whose key
    equals [key.[off .. off+degree-1]] (with [hash = hash_key] of those
    bytes), or -1. *)
val find : t -> Bytes.t -> off:int -> hash:int -> int

(** [try_insert t ?conj ~key ~off ~hash ~depth ~via ~parent] inserts the
    state into the shard dictated by [hash] and returns its new handle,
    or -1 if an equal key is already present.  [conj] (default 0) is the
    symmetry conjugator index stored alongside the metadata (see
    {!conj_of}).  Only the addressed shard is mutated. *)
val try_insert :
  ?conj:int ->
  t ->
  key:Bytes.t ->
  off:int ->
  hash:int ->
  depth:int ->
  via:int ->
  parent:int ->
  int

(** {1 Durability support (checkpoint/resume and cancellation)} *)

(** [shard_count t s] is the number of states stored in shard [s]. *)
val shard_count : t -> int -> int

(** [shard_counts t] captures every shard's state count — the rollback
    token for {!truncate}. *)
val shard_counts : t -> int array

(** [truncate t counts] rolls each shard back to the count captured by
    {!shard_counts} before a partially-expanded level, discarding the
    newer states and rebuilding the probe tables.  Used to abandon a
    cancelled level cleanly.
    @raise Invalid_argument if some [counts.(s)] exceeds the current
    count (the token is from the future). *)
val truncate : t -> int array -> unit

(** [shard_columns t s] is shard [s]'s live column storage [(count, keys,
    depths, vias, parents, conjs)] — a zero-copy capture for
    serialization.  The
    first [count] entries of each column are immutable for the store's
    lifetime: insertions only append past [count] (growth replaces the
    column objects, leaving captured ones intact) and {!truncate} never
    rolls a shard below a level boundary captured at one.  A capture taken
    at a level boundary may therefore be read from another domain while
    the next level is being expanded. *)
val shard_columns :
  t -> int -> int * Bytes.t * int array * int array * int array * Bytes.t

(** [handles_at_depth t d] is the handles of every state with BFS depth
    [d], in (shard, local index) order — the engine's canonical frontier
    order, so the frontier of a restored store can be reconstructed
    byte-identically. *)
val handles_at_depth : t -> int -> int array

(** [max_depth t] is the largest stored depth, or -1 on an empty store. *)
val max_depth : t -> int

(** [restore_shard t ~shard ~count ~keys ~depths ~vias ~parents ~conjs]
    rebuilds shard [shard] of an {e empty} store from serialized columns
    ([keys] holds [count * degree] bytes, [conjs] holds [count]
    conjugator indices — all zero outside quotient mode).  Hashes,
    signatures and the probe table are recomputed from the keys; every
    key is validated to belong to [shard] and to be unique within it.
    @raise Invalid_argument on any inconsistency (shard not empty,
    column length mismatch, foreign or duplicate key, byte outside the
    encoding). *)
val restore_shard :
  t ->
  shard:int ->
  count:int ->
  keys:Bytes.t ->
  depths:int array ->
  vias:int array ->
  parents:int array ->
  conjs:Bytes.t ->
  unit
