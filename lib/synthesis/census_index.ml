open Reversible

let log_src = Logs.Src.create "qsynth.census_index" ~doc:"Persistent census index"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_lookups = Telemetry.Counter.create "census_index.lookups"
let m_hits = Telemetry.Counter.create "census_index.hits"
let c_bytes = Telemetry.Counter.create "census_index.write.bytes"
let h_build = Telemetry.Histogram.create "census_index.build.seconds"

(* The index is quotient-agnostic: {!build} consumes (func_key, cost,
   witness) triples from {!Fmcf} and sorts records by func_key, and a
   quotient census produces exactly the same triples as a raw one
   ({!Fmcf.cascade_of_member} reconstructs the same canonical witness in
   both modes), so QSYNIDX1 files emitted with and without [--quotient]
   are byte-identical — the property the CI parity job diffs. *)

(* On-disk format (QSYNIDX1, little-endian), reusing the QSYNCKP1
   atomic-write + CRC machinery from {!Checkpoint}:

     magic        8 bytes  "QSYNIDX1"
     version      u32
     fingerprint  i64      Checkpoint.fingerprint of the library
     qubits       u32
     num_binary   u32      nb, the func_key length
     num_gates    u32
     depth        u32      census horizon: absence proves cost > depth
     count        u32      number of records
     log_len      u32      gate-log length in bytes
     records      count * (nb + 1 + 4)
                           func_key (nb bytes, sorted ascending)
                           cost (u8)
                           gate-log offset (u32)
     gate log     log_len bytes, one library gate index per gate;
                           a record's witness is log[offset .. offset+cost)
     crc          u32      CRC-32 of everything above

   Records are fixed-size and sorted by key, so lookups binary-search
   the record block in place — the mapped file needs no unpacking. *)

let magic = "QSYNIDX1"
let version = 1
let header_bytes = 8 + 4 + 8 + (6 * 4)
let rec_size nb = nb + 1 + 4

type t = {
  library : Library.t;
  depth : int;
  nb : int;
  count : int;
  records : Bytes.t;
  log : Bytes.t;
}

let depth t = t.depth
let size t = t.count

let func_key_bytes ~nb func =
  Bytes.init nb (fun j -> Char.chr (Revfun.apply func j))

(* {1 Building from a census} *)

let gate_indices library =
  let table = Hashtbl.create 64 in
  Array.iteri
    (fun i (e : Library.entry) -> Hashtbl.replace table (Gate.name e.Library.gate) i)
    (Library.entries library);
  fun gate ->
    match Hashtbl.find_opt table (Gate.name gate) with
    | Some i -> i
    | None ->
        invalid_arg
          (Printf.sprintf "Census_index.build: gate %s not in the library"
             (Gate.name gate))

let build census =
  Telemetry.Histogram.time h_build @@ fun () ->
  let library = Search.library (Fmcf.search census) in
  let nb = Mvl.Encoding.num_binary (Library.encoding library) in
  let gate_index = gate_indices library in
  let rows = ref [] and count = ref 0 and log_len = ref 0 in
  Fmcf.iter_members census (fun ~cost member ->
      let key = func_key_bytes ~nb member.Fmcf.func in
      let gates =
        List.map gate_index (Fmcf.cascade_of_member census member)
      in
      if List.length gates <> cost then
        invalid_arg "Census_index.build: witness length differs from cost";
      rows := (Bytes.unsafe_to_string key, cost, gates) :: !rows;
      incr count;
      log_len := !log_len + cost);
  let rows =
    List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) !rows
  in
  let records = Bytes.create (!count * rec_size nb) in
  let log = Bytes.create !log_len in
  let off = ref 0 in
  List.iteri
    (fun i (key, cost, gates) ->
      let base = i * rec_size nb in
      Bytes.blit_string key 0 records base nb;
      Bytes.set_uint8 records (base + nb) cost;
      Bytes.set_int32_le records (base + nb + 1) (Int32.of_int !off);
      List.iter
        (fun g ->
          Bytes.set_uint8 log !off g;
          incr off)
        gates)
    rows;
  { library; depth = Fmcf.depth census; nb; count = !count; records; log }

(* {1 Lookup} *)

let record_key_compare t i key =
  let base = i * rec_size t.nb in
  let rec go j =
    if j = t.nb then 0
    else
      let c = Char.compare (Bytes.get t.records (base + j)) (Bytes.get key j) in
      if c <> 0 then c else go (j + 1)
  in
  go 0

let witness_of_record t i =
  let entries = Library.entries t.library in
  let base = i * rec_size t.nb in
  let cost = Bytes.get_uint8 t.records (base + t.nb) in
  let off = Int32.to_int (Bytes.get_int32_le t.records (base + t.nb + 1)) in
  ( cost,
    List.init cost (fun k ->
        entries.(Bytes.get_uint8 t.log (off + k)).Library.gate) )

let find t func =
  Telemetry.Counter.incr m_lookups;
  if Revfun.bits func <> Library.qubits t.library then None
  else begin
    let key = func_key_bytes ~nb:t.nb func in
    let lo = ref 0 and hi = ref (t.count - 1) and found = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let c = record_key_compare t mid key in
      if c = 0 then begin
        found := mid;
        lo := !hi + 1
      end
      else if c < 0 then lo := mid + 1
      else hi := mid - 1
    done;
    if !found < 0 then None
    else begin
      Telemetry.Counter.incr m_hits;
      Some (witness_of_record t !found)
    end
  end

(* {1 Serialization} *)

let serialize t =
  let len = header_bytes + Bytes.length t.records + Bytes.length t.log + 4 in
  let buf = Bytes.create len in
  let pos = ref 0 in
  let put_u32 v =
    Bytes.set_int32_le buf !pos (Int32.of_int v);
    pos := !pos + 4
  in
  Bytes.blit_string magic 0 buf 0 8;
  pos := 8;
  put_u32 version;
  Bytes.set_int64_le buf !pos (Checkpoint.fingerprint t.library);
  pos := !pos + 8;
  put_u32 (Library.qubits t.library);
  put_u32 t.nb;
  put_u32 (Library.size t.library);
  put_u32 t.depth;
  put_u32 t.count;
  put_u32 (Bytes.length t.log);
  Bytes.blit t.records 0 buf !pos (Bytes.length t.records);
  pos := !pos + Bytes.length t.records;
  Bytes.blit t.log 0 buf !pos (Bytes.length t.log);
  pos := !pos + Bytes.length t.log;
  put_u32 (Checkpoint.crc32 buf ~off:0 ~len:(len - 4));
  buf

let save t path =
  let buf = serialize t in
  Checkpoint.write_atomic path buf;
  Telemetry.Counter.add c_bytes (Bytes.length buf);
  Log.info (fun m ->
      m "census index: %d functions to cost %d, %d bytes -> %s" t.count t.depth
        (Bytes.length buf) path)

(* {1 Loading with validation}

   Structural damage raises {!Checkpoint.Corrupt}; a well-formed file
   for a different library or format raises {!Checkpoint.Mismatch} —
   the same contract (and the same CLI error boundary) as snapshots.

   Beyond the CRC, every record's witness is replayed through the
   library's multiple-valued semantics: the gate chain must satisfy the
   reasonable-product constraint at each step and its binary restriction
   must equal the record's func_key.  A file that passes is correct by
   construction, not merely uncorrupted — a buggy or forged emitter
   cannot plant a wrong cost/witness pair. *)

let corrupt fmt = Printf.ksprintf (fun s -> raise (Checkpoint.Corrupt s)) fmt
let mismatch fmt = Printf.ksprintf (fun s -> raise (Checkpoint.Mismatch s)) fmt

let validate_witness library ~nb ~signatures record_key gates =
  let encoding = Library.encoding library in
  let degree = Mvl.Encoding.size encoding in
  let entries = Library.entries library in
  let image = Array.init degree Fun.id in
  let scratch = Array.make degree 0 in
  List.iter
    (fun g ->
      let e = entries.(g) in
      let signature = ref 0 in
      for j = 0 to nb - 1 do
        signature := !signature lor signatures.(image.(j))
      done;
      if !signature land e.Library.purity_mask <> 0 then
        corrupt "index witness violates the reasonable-product constraint";
      for j = 0 to degree - 1 do
        scratch.(j) <- e.Library.perm_array.(image.(j))
      done;
      Array.blit scratch 0 image 0 degree)
    gates;
  for j = 0 to nb - 1 do
    if image.(j) <> Char.code (Bytes.get record_key j) then
      corrupt "index witness does not realize its recorded function"
  done

let load library path =
  let buf = Checkpoint.read_file path in
  let len = Bytes.length buf in
  if len < header_bytes + 4 then corrupt "truncated census index (%d bytes)" len;
  if Bytes.sub_string buf 0 8 <> magic then
    corrupt "bad magic: not a qsynth census index";
  let stored_crc =
    Int32.to_int (Bytes.get_int32_le buf (len - 4)) land 0xFFFFFFFF
  in
  let actual_crc = Checkpoint.crc32 buf ~off:0 ~len:(len - 4) in
  if stored_crc <> actual_crc then
    corrupt "CRC mismatch: stored %08x, computed %08x" stored_crc actual_crc;
  let pos = ref 8 in
  let u32 () =
    let v = Int32.to_int (Bytes.get_int32_le buf !pos) land 0xFFFFFFFF in
    pos := !pos + 4;
    v
  in
  let v = u32 () in
  if v <> version then mismatch "format version: file %d, supported %d" v version;
  let fp = Bytes.get_int64_le buf !pos in
  pos := !pos + 8;
  let expected_fp = Checkpoint.fingerprint library in
  if not (Int64.equal fp expected_fp) then
    mismatch "library fingerprint: file %Lx, library %Lx" fp expected_fp;
  let qubits = u32 () in
  if qubits <> Library.qubits library then
    mismatch "qubits: file %d, library %d" qubits (Library.qubits library);
  let nb = u32 () in
  let expected_nb = Mvl.Encoding.num_binary (Library.encoding library) in
  if nb <> expected_nb then mismatch "num_binary: file %d, library %d" nb expected_nb;
  let num_gates = u32 () in
  if num_gates <> Library.size library then
    mismatch "num_gates: file %d, library %d" num_gates (Library.size library);
  let idx_depth = u32 () in
  let count = u32 () in
  let log_len = u32 () in
  let expected_len = header_bytes + (count * rec_size nb) + log_len + 4 in
  if len <> expected_len then
    corrupt "census index length %d does not match header (%d expected)" len
      expected_len;
  let records = Bytes.sub buf !pos (count * rec_size nb) in
  let log = Bytes.sub buf (!pos + (count * rec_size nb)) log_len in
  let t = { library; depth = idx_depth; nb; count; records; log } in
  (* structural record validation *)
  let degree = Mvl.Encoding.size (Library.encoding library) in
  let encoding = Library.encoding library in
  let signatures = Array.init degree (Mvl.Encoding.mixed_signature encoding) in
  for i = 0 to count - 1 do
    let base = i * rec_size nb in
    for j = 0 to nb - 1 do
      if Bytes.get_uint8 records (base + j) >= nb then
        corrupt "record %d: func_key byte outside the binary block" i
    done;
    if i > 0 then begin
      let prev = Bytes.sub records ((i - 1) * rec_size nb) nb in
      if record_key_compare t i prev <= 0 then
        corrupt "records out of order at %d (index not sorted or duplicated)" i
    end;
    let cost = Bytes.get_uint8 records (base + nb) in
    let off = Int32.to_int (Bytes.get_int32_le records (base + nb + 1)) in
    if cost > idx_depth then corrupt "record %d: cost %d beyond depth %d" i cost idx_depth;
    if off < 0 || off + cost > log_len then
      corrupt "record %d: witness outside the gate log" i;
    let gates = ref [] in
    for k = cost - 1 downto 0 do
      let g = Bytes.get_uint8 log (off + k) in
      if g >= num_gates then corrupt "record %d: gate index %d out of range" i g;
      gates := g :: !gates
    done;
    validate_witness library ~nb ~signatures
      (Bytes.sub records base nb)
      !gates
  done;
  Log.info (fun m ->
      m "census index loaded: %d functions to cost %d from %s" count idx_depth path);
  t
