open Reversible

let log_src = Logs.Src.create "qsynth.census_index" ~doc:"Persistent census index"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_lookups = Telemetry.Counter.create "census_index.lookups"
let m_hits = Telemetry.Counter.create "census_index.hits"
let m_swept = Telemetry.Counter.create "census_index.sweep.functions"
let c_bytes = Telemetry.Counter.create "census_index.write.bytes"
let h_build = Telemetry.Histogram.create "census_index.build.seconds"
let h_sweep = Telemetry.Histogram.create "census_index.sweep.seconds"

(* The index is quotient-agnostic: {!build} consumes (func_key, cost,
   witness) triples from {!Fmcf} and sorts records by func_key, and a
   quotient census produces exactly the same triples as a raw one
   ({!Fmcf.cascade_of_member} reconstructs the same canonical witness in
   both modes), so index files emitted with and without [--quotient] are
   byte-identical — the property the CI parity job diffs.  The same
   holds for {!build_complete}: the sweep order is the lexicographic
   order of the zero-fixing universe and results are committed by
   function position, so the emitted file is byte-identical across
   [--jobs], [--workers] and [--quotient].

   On-disk format (QSYNIDX2, little-endian), reusing the QSYNCKP1
   atomic-write + CRC machinery from {!Checkpoint}:

     magic        8 bytes  "QSYNIDX2"
     version      u32      2
     fingerprint  i64      Checkpoint.fingerprint of the library
     symmetry     i64      Symmetry.fingerprint of the library's group
     qubits       u32
     num_binary   u32      nb, the func_key length
     num_gates    u32
     depth        u32      cost horizon: absence proves cost > depth
     count        u32      number of records
     log_len      u32      gate-log length in bytes
     flags        u32      bit 0: complete (count = (nb-1)!)
     coverage     u32      count * 2^qubits — with the Theorem-2 NOT
                           cosets enumerated, the number of members of
                           S_{2^q} this file answers (40320 when full)
     hist_len     u32      depth + 1
     histogram    hist_len * u32, records per cost 0..depth
     records      count * (nb + 1 + 4)
                           func_key (nb bytes, sorted ascending)
                           cost (u8)
                           gate-log offset (u32)
     gate log     log_len bytes, one library gate index per gate;
                           a record's witness is log[offset .. offset+cost)
     crc          u32      CRC-32 of everything above

   The previous QSYNIDX1 format (same layout minus the symmetry
   fingerprint, flags, coverage and histogram fields) still loads; a v1
   file is by definition a partial index.  Records are fixed-size and
   sorted by key, so lookups binary-search the record block in place —
   whether the file sits in a heap [Bytes.t] or in a read-only mmap, no
   per-record unpacking or allocation happens on the probe path. *)

let magic_v2 = "QSYNIDX2"
let magic_v1 = "QSYNIDX1"
let version = 2
let version_v1 = 1
let v1_header_bytes = 8 + 4 + 8 + (6 * 4)
let v2_header_bytes = 8 + 4 + 8 + 8 + (9 * 4)
let rec_size nb = nb + 1 + 4
let flag_complete = 1

(* {1 Storage: one buffer holding the whole serialized file}

   [Heap] is a plain in-memory copy ({!load}, and freshly built indexes,
   whose [buf] is exactly what {!save} writes).  [Map] is a read-only
   [Unix.map_file] mapping: lookups touch only the pages the binary
   search walks, the OS page cache shares them across processes, and
   dropping the value unmaps (the [Bigarray] finalizer), which is what
   makes a SIGHUP hot swap safe — in-flight lookups keep the old mapping
   alive until they finish. *)

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type storage = Heap of Bytes.t | Map of bigstring

let st_len = function
  | Heap b -> Bytes.length b
  | Map m -> Bigarray.Array1.dim m

let st_u8 s i =
  match s with
  | Heap b -> Bytes.get_uint8 b i
  | Map m -> Char.code (Bigarray.Array1.get m i)

let st_u32 s i =
  match s with
  | Heap b -> Int32.to_int (Bytes.get_int32_le b i) land 0xFFFFFFFF
  | Map m ->
      let g k = Char.code (Bigarray.Array1.get m (i + k)) in
      g 0 lor (g 1 lsl 8) lor (g 2 lsl 16) lor (g 3 lsl 24)

let st_i64 s i =
  match s with
  | Heap b -> Bytes.get_int64_le b i
  | Map m ->
      let g k = Int64.of_int (Char.code (Bigarray.Array1.get m (i + k))) in
      let ( <| ) v k = Int64.shift_left v k in
      let ( || ) = Int64.logor in
      g 0 || (g 1 <| 8) || (g 2 <| 16) || (g 3 <| 24) || (g 4 <| 32)
      || (g 5 <| 40) || (g 6 <| 48) || (g 7 <| 56)

let st_sub_string s off len =
  String.init len (fun k -> Char.chr (st_u8 s (off + k)))

let st_crc s ~off ~len =
  match s with
  | Heap b -> Checkpoint.crc32 b ~off ~len
  | Map m ->
      (* Digest the mapping through a scratch buffer chunk by chunk:
         Checkpoint's slicing-by-8 kernel reads [Bytes.t], and a 64 KiB
         copy costs far less than a byte-at-a-time bigarray CRC. *)
      let chunk_len = 65536 in
      let chunk = Bytes.create chunk_len in
      let c = ref Checkpoint.crc32_init in
      let i = ref off in
      let stop = off + len in
      while !i < stop do
        let n = min chunk_len (stop - !i) in
        for j = 0 to n - 1 do
          Bytes.unsafe_set chunk j (Bigarray.Array1.unsafe_get m (!i + j))
        done;
        c := Checkpoint.crc32_feed !c chunk ~off:0 ~len:n;
        i := !i + n
      done;
      Checkpoint.crc32_finish !c

type t = {
  library : Library.t;
  depth : int;
  nb : int;
  count : int;
  complete : bool;
  histogram : int array; (* records per cost, indices 0..depth *)
  buf : storage; (* the whole serialized file, CRC included *)
  records_off : int;
  log_off : int;
  log_len : int;
}

let depth t = t.depth
let size t = t.count
let is_complete t = t.complete
(* What one record answers: under coset reduction, a record stands for
   its 2^q Theorem-2 NOT cosets; a full-group universe answers exactly
   its records. *)
let coverage_of library count =
  if Library.coset_reduction library then count lsl Library.qubits library
  else count

let coverage t = coverage_of t.library t.count
let histogram t = Array.copy t.histogram
let mapped t = match t.buf with Heap _ -> false | Map _ -> true

(* [Some u] — the number of functions a complete index must hold: the
   zero-fixing members (nb-1)! of S_{2^q} under the Theorem-2 coset
   reduction, or the full nb! for a full-group library (NCT, NFT) —
   or [None] when it exceeds the enumeration cap (4+ qubits). *)
let universe library =
  let nb = 1 lsl Library.qubits library in
  let n = if Library.coset_reduction library then nb - 1 else nb in
  let cap = 10_000_000 in
  let rec go acc k =
    if k > n then Some acc else if acc > cap / k then None else go (acc * k) (k + 1)
  in
  go 1 2

let func_key_bytes ~nb func =
  Bytes.init nb (fun j -> Char.chr (Revfun.apply func j))

(* {1 Packing}

   Everything that builds an index funnels through [pack]: rows are
   sorted by func_key, the histogram and coverage are derived from them,
   and [t.buf] is the exact serialized file — so {!save} is a plain
   write and a freshly built index answers lookups from the same bytes a
   reloaded one would. *)

let pack library ~depth ~complete rows =
  let nb = Mvl.Encoding.num_binary (Library.encoding library) in
  let rows = List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) rows in
  let count = List.length rows in
  let log_len = List.fold_left (fun acc (_, c, _) -> acc + c) 0 rows in
  let hist_len = depth + 1 in
  let histogram = Array.make hist_len 0 in
  List.iter
    (fun (_, cost, _) ->
      if cost < 0 || cost > depth then
        invalid_arg "Census_index: row cost outside 0..depth";
      histogram.(cost) <- histogram.(cost) + 1)
    rows;
  let records_off = v2_header_bytes + (4 * hist_len) in
  let log_off = records_off + (count * rec_size nb) in
  let len = log_off + log_len + 4 in
  let buf = Bytes.create len in
  let pos = ref 0 in
  let put_u32 v =
    Bytes.set_int32_le buf !pos (Int32.of_int v);
    pos := !pos + 4
  in
  Bytes.blit_string magic_v2 0 buf 0 8;
  pos := 8;
  put_u32 version;
  Bytes.set_int64_le buf !pos (Checkpoint.fingerprint library);
  pos := !pos + 8;
  Bytes.set_int64_le buf !pos (Symmetry.fingerprint (Symmetry.create library));
  pos := !pos + 8;
  put_u32 (Library.qubits library);
  put_u32 nb;
  put_u32 (Library.size library);
  put_u32 depth;
  put_u32 count;
  put_u32 log_len;
  put_u32 (if complete then flag_complete else 0);
  put_u32 (coverage_of library count);
  put_u32 hist_len;
  Array.iter put_u32 histogram;
  let off = ref 0 in
  List.iteri
    (fun i (key, cost, gates) ->
      let base = records_off + (i * rec_size nb) in
      Bytes.blit_string key 0 buf base nb;
      Bytes.set_uint8 buf (base + nb) cost;
      Bytes.set_int32_le buf (base + nb + 1) (Int32.of_int !off);
      List.iter
        (fun g ->
          Bytes.set_uint8 buf (log_off + !off) g;
          incr off)
        gates)
    rows;
  Bytes.set_int32_le buf (len - 4)
    (Int32.of_int (Checkpoint.crc32 buf ~off:0 ~len:(len - 4)));
  {
    library;
    depth;
    nb;
    count;
    complete;
    histogram;
    buf = Heap buf;
    records_off;
    log_off;
    log_len;
  }

(* {1 Building from a census} *)

let gate_indices library =
  let table = Hashtbl.create 64 in
  Array.iteri
    (fun i (e : Library.entry) -> Hashtbl.replace table (Gate.name e.Library.gate) i)
    (Library.entries library);
  fun gate ->
    match Hashtbl.find_opt table (Gate.name gate) with
    | Some i -> i
    | None ->
        invalid_arg
          (Printf.sprintf "Census_index.build: gate %s not in the library"
             (Gate.name gate))

let census_rows census =
  let library = Search.library (Fmcf.search census) in
  let nb = Mvl.Encoding.num_binary (Library.encoding library) in
  let gate_index = gate_indices library in
  let rows = ref [] in
  Fmcf.iter_members census (fun ~cost member ->
      let key = func_key_bytes ~nb member.Fmcf.func in
      let gates = List.map gate_index (Fmcf.cascade_of_member census member) in
      if List.length gates <> cost then
        invalid_arg "Census_index.build: witness length differs from cost";
      rows := (Bytes.unsafe_to_string key, cost, gates) :: !rows);
  (library, !rows)

let build census =
  Telemetry.Histogram.time h_build @@ fun () ->
  let library, rows = census_rows census in
  (* A deep-enough forward census can cover the library's whole universe
     by itself; mark it complete so the planner trusts it. *)
  let complete =
    match universe library with
    | Some u -> List.length rows = u
    | None -> false
  in
  pack library ~depth:(Fmcf.depth census) ~complete rows

(* {1 The complete-index sweep}

   Theorem 2 decomposes S_{2^q} into 2^q NOT cosets over the zero-fixing
   subgroup G, and {!Mce.strip_not_layer} reduces any query to its
   zero-fixing remainder — so the coset factor is {e enumerated} (free)
   and completeness only requires every member of G.  The forward census
   supplies everything within its horizon; the sweep enumerates the
   zero-fixing universe in lexicographic order and runs one bidirectional
   query per still-missing function against a {e shared, frozen} forward
   wave: [Bidir.of_search] caps forward growth at the census depth, so
   concurrent sweep domains only read the wave and grow their private
   backward waves.  Results are committed by function position, which
   makes the packed file byte-identical across [--jobs]. *)

let next_permutation a =
  let n = Array.length a in
  let swap i j =
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  in
  let i = ref (n - 2) in
  while !i >= 0 && a.(!i) >= a.(!i + 1) do
    decr i
  done;
  if !i < 0 then false
  else begin
    let j = ref (n - 1) in
    while a.(!j) <= a.(!i) do
      decr j
    done;
    swap !i !j;
    let l = ref (!i + 1) and r = ref (n - 1) in
    while !l < !r do
      swap !l !r;
      incr l;
      decr r
    done;
    true
  end

let build_complete ?(jobs = 1) ?(should_stop = fun () -> false) census =
  if jobs < 1 then invalid_arg "Census_index.build_complete: jobs < 1";
  Telemetry.Histogram.time h_sweep @@ fun () ->
  let library, rows = census_rows census in
  let nb = Mvl.Encoding.num_binary (Library.encoding library) in
  let depth = Fmcf.depth census in
  if not (Library.coset_reduction library) then
    invalid_arg
      (Printf.sprintf
         "Census_index.build_complete: library %s has no coset reduction; a \
          deep enough forward census (qsynth census) already yields a \
          complete index"
         (Library.name library));
  (match universe library with
  | Some _ -> ()
  | None ->
      invalid_arg
        "Census_index.build_complete: zero-fixing universe too large to enumerate");
  let present = Hashtbl.create (4 * List.length rows) in
  List.iter (fun (key, _, _) -> Hashtbl.replace present key ()) rows;
  (* every zero-fixing function the census has not already answered *)
  let missing = ref [] in
  let perm = Array.init (nb - 1) (fun i -> i + 1) in
  let continue = ref true in
  while !continue do
    let key =
      String.init nb (fun j -> Char.chr (if j = 0 then 0 else perm.(j - 1)))
    in
    if not (Hashtbl.mem present key) then
      missing :=
        Revfun.of_outputs ~bits:(Library.qubits library)
          (0 :: Array.to_list perm)
        :: !missing;
    continue := next_permutation perm
  done;
  let missing = Array.of_list (List.rev !missing) in
  let n_missing = Array.length missing in
  Log.info (fun m ->
      m "complete sweep: census holds %d of the zero-fixing universe, %d to sweep"
        (List.length rows) n_missing);
  let cancelled () = should_stop () in
  let sweep_rows =
    if n_missing = 0 then Some []
    else begin
      (* One shared query context over the census's own forward wave (or
         a fresh raw wave warmed to the same depth when the census ran
         quotiented — orbit keys carry no image vectors).  Either way the
         forward side is frozen at [depth] before any domain starts. *)
      let bidir =
        if Fmcf.quotiented census then begin
          let b = Bidir.create ~max_fwd_depth:depth library in
          Bidir.warm ~should_stop b ~depth;
          b
        end
        else Bidir.of_search (Fmcf.search census)
      in
      if cancelled () then None
      else begin
        let max_cost = max 15 (2 * depth) in
        let lower_bound = depth + 1 in
        let results = Array.make n_missing None in
        let cursor = Atomic.make 0 in
        let worker () =
          let continue = ref true in
          while !continue do
            let i = Atomic.fetch_and_add cursor 1 in
            if i >= n_missing || cancelled () then continue := false
            else
              results.(i) <-
                Bidir.synthesize ~max_cost ~lower_bound ~should_stop bidir
                  missing.(i)
          done
        in
        let domains =
          List.init (min (jobs - 1) (n_missing - 1)) (fun _ ->
              Domain.spawn worker)
        in
        worker ();
        List.iter Domain.join domains;
        if cancelled () then None
        else begin
          let gate_index = gate_indices library in
          let rows = ref [] in
          Array.iteri
            (fun i outcome ->
              match outcome with
              | None ->
                  invalid_arg
                    "Census_index.build_complete: sweep target beyond max_cost \
                     (library not universal?)"
              | Some o ->
                  let key = func_key_bytes ~nb missing.(i) in
                  rows :=
                    ( Bytes.unsafe_to_string key,
                      o.Bidir.cost,
                      List.map gate_index o.Bidir.cascade )
                    :: !rows)
            results;
          Some !rows
        end
      end
    end
  in
  match sweep_rows with
  | None ->
      Log.info (fun m -> m "complete sweep cancelled");
      None
  | Some sweep_rows ->
      Telemetry.Counter.add m_swept n_missing;
      let rows = List.rev_append sweep_rows rows in
      let max_cost = List.fold_left (fun acc (_, c, _) -> max acc c) 0 rows in
      Some (pack library ~depth:max_cost ~complete:true rows, n_missing)

(* {1 Lookup} *)

(* Compare record [i]'s key against the probe function in place: no key
   bytes are materialized, so a binary search allocates nothing. *)
let record_key_compare_probe t i func =
  let base = t.records_off + (i * rec_size t.nb) in
  let rec go j =
    if j = t.nb then 0
    else
      let c = compare (st_u8 t.buf (base + j)) (Revfun.apply func j) in
      if c <> 0 then c else go (j + 1)
  in
  go 0

let witness_of_record t i =
  let entries = Library.entries t.library in
  let base = t.records_off + (i * rec_size t.nb) in
  let cost = st_u8 t.buf (base + t.nb) in
  let off = st_u32 t.buf (base + t.nb + 1) in
  ( cost,
    List.init cost (fun k ->
        entries.(st_u8 t.buf (t.log_off + off + k)).Library.gate) )

let find t func =
  Telemetry.Counter.incr m_lookups;
  if Revfun.bits func <> Library.qubits t.library then None
  else begin
    let lo = ref 0 and hi = ref (t.count - 1) and found = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let c = record_key_compare_probe t mid func in
      if c = 0 then begin
        found := mid;
        lo := !hi + 1
      end
      else if c < 0 then lo := mid + 1
      else hi := mid - 1
    done;
    if !found < 0 then None
    else begin
      Telemetry.Counter.incr m_hits;
      Some (witness_of_record t !found)
    end
  end

(* {1 Serialization} *)

let serialize t =
  match t.buf with
  | Heap b -> b
  | Map m ->
      let len = Bigarray.Array1.dim m in
      Bytes.init len (fun i -> Bigarray.Array1.get m i)

let save t path =
  let buf = serialize t in
  Checkpoint.write_atomic path buf;
  Telemetry.Counter.add c_bytes (Bytes.length buf);
  Log.info (fun m ->
      m "census index: %d functions to cost %d%s, %d bytes -> %s" t.count t.depth
        (if t.complete then " (complete)" else "")
        (Bytes.length buf) path)

(* {1 Loading with validation}

   Structural damage raises {!Checkpoint.Corrupt}; a well-formed file
   for a different library or format raises {!Checkpoint.Mismatch} —
   the same contract (and the same CLI error boundary) as snapshots.

   Integrity (CRC + fingerprints + structure + histogram/coverage
   cross-checks) is always verified.  Witness replay through the
   library's multiple-valued semantics — the proof that an emitter
   cannot plant a wrong cost/witness pair — is [Full] on demand and a
   deterministic sample by default, because a full replay of a complete
   index costs O(count·depth) at every daemon start while the CRC
   already rules out accidental damage. *)

type verification = Sample | Full

let corrupt fmt = Printf.ksprintf (fun s -> raise (Checkpoint.Corrupt s)) fmt
let mismatch fmt = Printf.ksprintf (fun s -> raise (Checkpoint.Mismatch s)) fmt

let validate_witness t ~signatures i =
  let encoding = Library.encoding t.library in
  let degree = Mvl.Encoding.size encoding in
  let entries = Library.entries t.library in
  let base = t.records_off + (i * rec_size t.nb) in
  let cost = st_u8 t.buf (base + t.nb) in
  let off = st_u32 t.buf (base + t.nb + 1) in
  let image = Array.init degree Fun.id in
  let scratch = Array.make degree 0 in
  for k = 0 to cost - 1 do
    let e = entries.(st_u8 t.buf (t.log_off + off + k)) in
    let signature = ref 0 in
    for j = 0 to t.nb - 1 do
      signature := !signature lor signatures.(image.(j))
    done;
    if !signature land e.Library.purity_mask <> 0 then
      corrupt "index witness violates the reasonable-product constraint";
    for j = 0 to degree - 1 do
      scratch.(j) <- e.Library.perm_array.(image.(j))
    done;
    Array.blit scratch 0 image 0 degree
  done;
  for j = 0 to t.nb - 1 do
    if image.(j) <> st_u8 t.buf (base + j) then
      corrupt "index witness does not realize its recorded function"
  done

let of_storage ~verify library buf path =
  let len = st_len buf in
  if len < 12 then corrupt "truncated census index (%d bytes)" len;
  let file_magic = st_sub_string buf 0 8 in
  let v2 =
    if file_magic = magic_v2 then true
    else if file_magic = magic_v1 then false
    else corrupt "bad magic: not a qsynth census index"
  in
  let header_bytes = if v2 then v2_header_bytes else v1_header_bytes in
  if len < header_bytes + 4 then corrupt "truncated census index (%d bytes)" len;
  let stored_crc = st_u32 buf (len - 4) in
  let actual_crc = st_crc buf ~off:0 ~len:(len - 4) in
  if stored_crc <> actual_crc then
    corrupt "CRC mismatch: stored %08x, computed %08x" stored_crc actual_crc;
  let pos = ref 8 in
  let u32 () =
    let v = st_u32 buf !pos in
    pos := !pos + 4;
    v
  in
  let i64 () =
    let v = st_i64 buf !pos in
    pos := !pos + 8;
    v
  in
  let v = u32 () in
  let expected_version = if v2 then version else version_v1 in
  if v <> expected_version then
    mismatch "format version: file %d, supported %d" v expected_version;
  let lib_name = Library.name library in
  let fp = i64 () in
  let expected_fp = Checkpoint.fingerprint library in
  if not (Int64.equal fp expected_fp) then
    mismatch "library fingerprint: file %Lx, library %s = %Lx" fp lib_name
      expected_fp;
  if v2 then begin
    let sym_fp = i64 () in
    let expected_sym = Symmetry.fingerprint (Symmetry.create library) in
    if not (Int64.equal sym_fp expected_sym) then
      mismatch "symmetry fingerprint: file %Lx, library %s = %Lx" sym_fp lib_name
        expected_sym
  end;
  let qubits = u32 () in
  if qubits <> Library.qubits library then
    mismatch "qubits: file %d, library %s has %d" qubits lib_name
      (Library.qubits library);
  let nb = u32 () in
  let expected_nb = Mvl.Encoding.num_binary (Library.encoding library) in
  if nb <> expected_nb then
    mismatch "num_binary: file %d, library %s has %d" nb lib_name expected_nb;
  let num_gates = u32 () in
  if num_gates <> Library.size library then
    mismatch "num_gates: file %d, library %s has %d" num_gates lib_name
      (Library.size library);
  let idx_depth = u32 () in
  let count = u32 () in
  let log_len = u32 () in
  let complete, header_histogram =
    if not v2 then (false, None)
    else begin
      let flags = u32 () in
      if flags land lnot flag_complete <> 0 then
        corrupt "unknown flag bits %x" flags;
      let cov = u32 () in
      if cov <> coverage_of library count then
        corrupt "coverage %d does not match count %d for library %s" cov count
          lib_name;
      let hist_len = u32 () in
      if hist_len <> idx_depth + 1 then
        corrupt "histogram length %d does not match depth %d" hist_len idx_depth;
      if len < header_bytes + (4 * hist_len) + 4 then
        corrupt "truncated census index (%d bytes)" len;
      let hist = Array.init hist_len (fun _ -> u32 ()) in
      let complete = flags land flag_complete <> 0 in
      if complete then begin
        match universe library with
        | Some u when u = count -> ()
        | Some u ->
            corrupt "complete flag with %d records, library %s universe %d"
              count lib_name u
        | None -> corrupt "complete flag on an unenumerable universe"
      end;
      (complete, Some hist)
    end
  in
  let records_off = !pos in
  let log_off = records_off + (count * rec_size nb) in
  let expected_len = log_off + log_len + 4 in
  if len <> expected_len then
    corrupt "census index length %d does not match header (%d expected)" len
      expected_len;
  let histogram = Array.make (idx_depth + 1) 0 in
  let t =
    {
      library;
      depth = idx_depth;
      nb;
      count;
      complete;
      histogram;
      buf;
      records_off;
      log_off;
      log_len;
    }
  in
  (* structural record validation — always on, every record *)
  for i = 0 to count - 1 do
    let base = records_off + (i * rec_size nb) in
    for j = 0 to nb - 1 do
      if st_u8 buf (base + j) >= nb then
        corrupt "record %d: func_key byte outside the binary block" i
    done;
    if i > 0 then begin
      let prev = base - rec_size nb in
      let rec cmp j =
        if j = nb then 0
        else
          let c = compare (st_u8 buf (base + j)) (st_u8 buf (prev + j)) in
          if c <> 0 then c else cmp (j + 1)
      in
      if cmp 0 <= 0 then
        corrupt "records out of order at %d (index not sorted or duplicated)" i
    end;
    let cost = st_u8 buf (base + nb) in
    let off = st_u32 buf (base + nb + 1) in
    if cost > idx_depth then
      corrupt "record %d: cost %d beyond depth %d" i cost idx_depth;
    if off + cost > log_len then corrupt "record %d: witness outside the gate log" i;
    for k = 0 to cost - 1 do
      let g = st_u8 buf (log_off + off + k) in
      if g >= num_gates then corrupt "record %d: gate index %d out of range" i g
    done;
    histogram.(cost) <- histogram.(cost) + 1
  done;
  (match header_histogram with
  | Some hist ->
      if hist <> histogram then
        corrupt "header histogram does not match the records"
  | None -> ());
  (* witness replay: sampled by default, exhaustive on request *)
  let encoding = Library.encoding library in
  let degree = Mvl.Encoding.size encoding in
  let signatures = Array.init degree (Mvl.Encoding.mixed_signature encoding) in
  let step = match verify with Full -> 1 | Sample -> max 1 (count / 64) in
  let verified = ref 0 in
  let i = ref 0 in
  while !i < count do
    validate_witness t ~signatures !i;
    incr verified;
    i := !i + step
  done;
  Log.info (fun m ->
      m "census index loaded: %d functions to cost %d%s%s from %s (%d/%d witnesses \
         replayed)"
        count idx_depth
        (if complete then ", complete" else "")
        (if mapped t then ", mmap" else "")
        path !verified count);
  t

let load ?(verify = Sample) library path =
  of_storage ~verify library (Heap (Checkpoint.read_file path)) path

let load_mmap ?(verify = Sample) library path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let map =
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let size = (Unix.fstat fd).Unix.st_size in
        if size < 12 then corrupt "truncated census index (%d bytes)" size;
        Bigarray.array1_of_genarray
          (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| -1 |]))
  in
  of_storage ~verify library (Map map) path
