type t = { name : string; gate_cost : Gate.t -> int }

let make ~name gate_cost = { name; gate_cost }
let name t = t.name

let gate_cost t g =
  let c = t.gate_cost g in
  if c <= 0 then invalid_arg "Cost_model.gate_cost: non-positive cost";
  c

let cascade_cost t cascade = List.fold_left (fun acc g -> acc + gate_cost t g) 0 cascade

let by_kind ~name ~v ~v_dag ~feynman =
  make ~name (fun g ->
      match Gate.kind g with
      | Gate.Controlled_v -> v
      | Gate.Controlled_v_dag -> v_dag
      | Gate.Feynman -> feynman
      (* classical library gates (NCT/NFT) are unit-cost in their
         literature's gate-count metric *)
      | Gate.Not | Gate.Toffoli | Gate.Swap | Gate.Fredkin -> 1)

let unit = make ~name:"unit" (fun _ -> 1)
let feynman_cheap = by_kind ~name:"feynman-cheap" ~v:2 ~v_dag:2 ~feynman:1
let v_cheap = by_kind ~name:"v-cheap" ~v:1 ~v_dag:1 ~feynman:2
