type kind =
  | Controlled_v
  | Controlled_v_dag
  | Feynman
  | Not
  | Toffoli
  | Swap
  | Fredkin

(* [control2] is the third wire of a 3-wire gate (second Toffoli control,
   second swapped wire of a Fredkin) and -1 elsewhere; [control] is -1
   for the control-free NOT.  Keeping one flat record preserves cheap
   structural [equal]/[compare]/[Hashtbl.hash] on the hot paths. *)
type t = { kind : kind; target : int; control : int; control2 : int }

let no_wire = -1

let make kind ~target ~control =
  (match kind with
  | Controlled_v | Controlled_v_dag | Feynman | Swap -> ()
  | Not | Toffoli | Fredkin ->
      invalid_arg "Gate.make: kind needs make_not/make_toffoli/make_fredkin");
  if target < 0 || control < 0 then invalid_arg "Gate.make: negative wire";
  if target = control then invalid_arg "Gate.make: target equals control";
  match kind with
  | Swap ->
      (* order-insensitive: canonicalize so SAB = SBA *)
      { kind; target = min target control; control = max target control;
        control2 = no_wire }
  | _ -> { kind; target; control; control2 = no_wire }

let make_not ~target =
  if target < 0 then invalid_arg "Gate.make_not: negative wire";
  { kind = Not; target; control = no_wire; control2 = no_wire }

let make_toffoli ~target ~controls:(c1, c2) =
  if target < 0 || c1 < 0 || c2 < 0 then invalid_arg "Gate.make_toffoli: negative wire";
  if target = c1 || target = c2 || c1 = c2 then
    invalid_arg "Gate.make_toffoli: wires must be distinct";
  { kind = Toffoli; target; control = min c1 c2; control2 = max c1 c2 }

let make_swap a b = make Swap ~target:a ~control:b

let make_fredkin ~targets:(a, b) ~control =
  if a < 0 || b < 0 || control < 0 then invalid_arg "Gate.make_fredkin: negative wire";
  if a = b || a = control || b = control then
    invalid_arg "Gate.make_fredkin: wires must be distinct";
  { kind = Fredkin; target = min a b; control; control2 = max a b }

let all ~qubits =
  let pairs =
    List.concat_map
      (fun target ->
        List.filter_map
          (fun control -> if control <> target then Some (target, control) else None)
          (List.init qubits Fun.id))
      (List.init qubits Fun.id)
  in
  List.concat_map
    (fun kind ->
      List.map (fun (target, control) -> make kind ~target ~control) pairs)
    [ Controlled_v; Controlled_v_dag; Feynman ]

let wires_of qubits = List.init qubits Fun.id

let nots ~qubits = List.map (fun w -> make_not ~target:w) (wires_of qubits)

let cnots ~qubits =
  List.concat_map
    (fun target ->
      List.filter_map
        (fun control ->
          if control <> target then Some (make Feynman ~target ~control) else None)
        (wires_of qubits))
    (wires_of qubits)

let toffolis ~qubits =
  List.concat_map
    (fun target ->
      let others = List.filter (fun w -> w <> target) (wires_of qubits) in
      List.concat_map
        (fun c1 ->
          List.filter_map
            (fun c2 ->
              if c2 > c1 then Some (make_toffoli ~target ~controls:(c1, c2))
              else None)
            others)
        others)
    (wires_of qubits)

let swaps ~qubits =
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b -> if b > a then Some (make_swap a b) else None)
        (wires_of qubits))
    (wires_of qubits)

let fredkins ~qubits =
  List.concat_map
    (fun a ->
      List.concat_map
        (fun b ->
          if b <= a then []
          else
            List.filter_map
              (fun control ->
                if control <> a && control <> b then
                  Some (make_fredkin ~targets:(a, b) ~control)
                else None)
              (wires_of qubits))
        (wires_of qubits))
    (wires_of qubits)

let nct ~qubits = nots ~qubits @ cnots ~qubits @ toffolis ~qubits

let nft ~qubits =
  nots ~qubits @ cnots ~qubits @ toffolis ~qubits @ swaps ~qubits
  @ fredkins ~qubits

let kind g = g.kind
let target g = g.target
let control g = g.control
let control2 g = g.control2
let equal a b = a = b
let compare = Stdlib.compare

let wires g =
  List.filter (fun w -> w >= 0) [ g.target; g.control; g.control2 ]

let adjoint g =
  match g.kind with
  | Controlled_v -> { g with kind = Controlled_v_dag }
  | Controlled_v_dag -> { g with kind = Controlled_v }
  | Feynman | Not | Toffoli | Swap | Fredkin -> g

let purity_wires g =
  match g.kind with
  | Controlled_v | Controlled_v_dag -> [ g.control ]
  | Feynman -> [ min g.control g.target; max g.control g.target ]
  | Not | Toffoli | Swap | Fredkin -> List.sort Stdlib.compare (wires g)

let purity_mask g = List.fold_left (fun m w -> m lor (1 lsl w)) 0 (purity_wires g)

let swap_values p a b =
  let open Mvl in
  let va = Pattern.get p a and vb = Pattern.get p b in
  Pattern.set (Pattern.set p a vb) b va

let apply g p =
  let open Mvl in
  match g.kind with
  | Controlled_v ->
      if Pattern.get p g.control = Quat.One then
        Pattern.set p g.target (Quat.v (Pattern.get p g.target))
      else p
  | Controlled_v_dag ->
      if Pattern.get p g.control = Quat.One then
        Pattern.set p g.target (Quat.v_dag (Pattern.get p g.target))
      else p
  | Feynman ->
      if Pattern.get p g.control = Quat.One && Quat.is_binary (Pattern.get p g.target)
      then Pattern.set p g.target (Quat.not_ (Pattern.get p g.target))
      else p
  | Not ->
      if Quat.is_binary (Pattern.get p g.target) then
        Pattern.set p g.target (Quat.not_ (Pattern.get p g.target))
      else p
  | Toffoli ->
      if
        Pattern.get p g.control = Quat.One
        && Pattern.get p g.control2 = Quat.One
        && Quat.is_binary (Pattern.get p g.target)
      then Pattern.set p g.target (Quat.not_ (Pattern.get p g.target))
      else p
  | Swap -> swap_values p g.target g.control
  | Fredkin ->
      if Pattern.get p g.control = Quat.One then swap_values p g.target g.control2
      else p

(* Classical gates are basis permutations: build their unitary from the
   action on basis codes (qubit 0 = most significant bit, matching
   Gate_matrix's convention). *)
let classical_matrix ~qubits f =
  Qmath.Dmatrix.permutation_matrix (Array.init (1 lsl qubits) f)

let bit_of ~qubits code w = (code lsr (qubits - 1 - w)) land 1
let flip_bit ~qubits code w = code lxor (1 lsl (qubits - 1 - w))

let matrix ~qubits g =
  let open Qmath in
  match g.kind with
  | Controlled_v -> Gate_matrix.controlled_v ~qubits ~control:g.control ~target:g.target
  | Controlled_v_dag ->
      Gate_matrix.controlled_v_dag ~qubits ~control:g.control ~target:g.target
  | Feynman -> Gate_matrix.feynman ~qubits ~control:g.control ~target:g.target
  | Not -> Gate_matrix.not_on ~qubits ~wire:g.target
  | Toffoli ->
      classical_matrix ~qubits (fun code ->
          if bit_of ~qubits code g.control = 1 && bit_of ~qubits code g.control2 = 1
          then flip_bit ~qubits code g.target
          else code)
  | Swap ->
      classical_matrix ~qubits (fun code ->
          let a = bit_of ~qubits code g.target and b = bit_of ~qubits code g.control in
          if a = b then code
          else flip_bit ~qubits (flip_bit ~qubits code g.target) g.control)
  | Fredkin ->
      classical_matrix ~qubits (fun code ->
          if bit_of ~qubits code g.control = 1 then begin
            let a = bit_of ~qubits code g.target
            and b = bit_of ~qubits code g.control2 in
            if a = b then code
            else flip_bit ~qubits (flip_bit ~qubits code g.target) g.control2
          end
          else code)

let wire_letter w =
  if w < 0 || w > 25 then invalid_arg "Gate.wire_letter: wire out of range";
  String.make 1 (Char.chr (Char.code 'A' + w))

let name g =
  match g.kind with
  | Controlled_v -> "V" ^ wire_letter g.target ^ wire_letter g.control
  | Controlled_v_dag -> "V+" ^ wire_letter g.target ^ wire_letter g.control
  | Feynman -> "F" ^ wire_letter g.target ^ wire_letter g.control
  | Not -> "N" ^ wire_letter g.target
  | Toffoli ->
      "T" ^ wire_letter g.target ^ wire_letter g.control ^ wire_letter g.control2
  | Swap -> "S" ^ wire_letter g.target ^ wire_letter g.control
  | Fredkin ->
      "FR" ^ wire_letter g.target ^ wire_letter g.control2 ^ wire_letter g.control

let of_name ~qubits s =
  let fail () = invalid_arg ("Gate.of_name: cannot parse " ^ s) in
  let s = String.uppercase_ascii (String.trim s) in
  let has_prefix p = String.length s >= String.length p && String.sub s 0 (String.length p) = p in
  let after p = String.sub s (String.length p) (String.length s - String.length p) in
  let wire c =
    let w = Char.code c - Char.code 'A' in
    if w < 0 || w >= qubits then fail ();
    w
  in
  (* longest prefixes first: "V+" before "V", "FR" before "F" *)
  if has_prefix "V+" then begin
    let rest = after "V+" in
    if String.length rest <> 2 then fail ();
    make Controlled_v_dag ~target:(wire rest.[0]) ~control:(wire rest.[1])
  end
  else if has_prefix "FR" then begin
    let rest = after "FR" in
    if String.length rest <> 3 then fail ();
    make_fredkin ~targets:(wire rest.[0], wire rest.[1]) ~control:(wire rest.[2])
  end
  else if has_prefix "V" then begin
    let rest = after "V" in
    if String.length rest <> 2 then fail ();
    make Controlled_v ~target:(wire rest.[0]) ~control:(wire rest.[1])
  end
  else if has_prefix "F" then begin
    let rest = after "F" in
    if String.length rest <> 2 then fail ();
    make Feynman ~target:(wire rest.[0]) ~control:(wire rest.[1])
  end
  else if has_prefix "N" then begin
    let rest = after "N" in
    if String.length rest <> 1 then fail ();
    make_not ~target:(wire rest.[0])
  end
  else if has_prefix "T" then begin
    let rest = after "T" in
    if String.length rest <> 3 then fail ();
    make_toffoli ~target:(wire rest.[0]) ~controls:(wire rest.[1], wire rest.[2])
  end
  else if has_prefix "S" then begin
    let rest = after "S" in
    if String.length rest <> 2 then fail ();
    make_swap (wire rest.[0]) (wire rest.[1])
  end
  else fail ()

let pp ppf g = Format.pp_print_string ppf (name g)
