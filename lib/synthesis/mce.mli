(** The paper's Minimum_Cost_Expressing algorithm (MCE).

    Given a reversible specification g, strip a free input-side layer of
    NOT gates d0 so that the remainder fixes the all-zero pattern
    (Theorem 2: H = ⋃_{a∈N} a·G), then find a cascade
    g = d0 * d1 * ... * dt of minimal t (Theorem 3).

    Three execution plans produce that answer, tried cheapest first by
    {!express}:
    - a {!Census_index} lookup (exact cost + witness, no search; a miss
      proves a cost lower bound, and certifies [None] outright when the
      index horizon covers the depth bound);
    - the meet-in-the-middle engine ({!Bidir}), when a shared context is
      supplied;
    - the forward BFS of the paper, as always.

    For repeated questions about one target (minimal cascade, witness
    count, full realization list) use {!run_query} once and the
    [query_*] accessors: the legacy entry points each re-ran the search
    from scratch. *)

type result = {
  target : Reversible.Revfun.t;
  not_mask : int;
      (** d0: wires to invert at the input, bit [w] = wire [w]'s NOT
          (wire 0 = qubit A = most significant pattern bit) *)
  cascade : Cascade.t; (** d1 .. dt, applied after the NOT layer *)
  cost : int; (** t, the quantum cost (NOT gates are free) *)
}

(** [express ?max_depth ?jobs ?index ?bidir library target] synthesizes
    a minimal-cost quantum cascade for [target]; [None] when the cost
    exceeds [max_depth] (default 7, the paper's cb).  [jobs] (default 1)
    is the BFS worker-domain count (forward plan only).

    [index] serves known functions in O(log n) and turns misses into
    proven lower bounds.  [bidir] is a shared meet-in-the-middle context
    ({!Bidir.create}, which must be built for the same library): with it
    the query can certify costs up to [max_depth] even beyond the
    forward engine's practical depth.  With neither, the original
    forward BFS runs.

    [should_stop] is a cooperative cancellation flag polled between
    levels and between expansion chunks (see {!Search.try_step}); when
    it fires the search stops cleanly and the result is [None], as for
    an exhausted depth bound. *)
val express :
  ?max_depth:int ->
  ?jobs:int ->
  ?should_stop:(unit -> bool) ->
  ?index:Census_index.t ->
  ?bidir:Bidir.t ->
  Library.t ->
  Reversible.Revfun.t ->
  result option

(** {1 Shared queries} *)

(** One forward search, many answers: the result of {!run_query}. *)
type query

(** [run_query ?max_depth ?jobs ?should_stop library target] strips the
    NOT layer and runs the forward BFS (at most once — trivial targets
    skip it) to the level where the remainder first appears.  All
    [query_*] accessors below read this one search. *)
val run_query :
  ?max_depth:int ->
  ?jobs:int ->
  ?should_stop:(unit -> bool) ->
  Library.t ->
  Reversible.Revfun.t ->
  query

(** [query_result q] is the minimal-cost cascade, as {!express}. *)
val query_result : query -> result option

(** [query_witnesses q] counts the distinct full-domain circuit
    permutations of minimal cost restricting to the target, as
    {!distinct_witnesses}. *)
val query_witnesses : query -> int

(** [query_realizations ?limit q] enumerates minimal-cost realizations,
    as {!all_realizations}.  Never returns more than [limit] (default
    10_000) results; witness enumeration stops as soon as the budget is
    exhausted. *)
val query_realizations : ?limit:int -> query -> result list

(** {1 Legacy one-shot entry points} *)

(** [all_realizations ?max_depth ?limit library target] enumerates
    minimal-cost realizations: every cascade of minimal length whose
    restriction is the target (the paper reports 2 such circuits for
    Peres and 4 for Toffoli without claiming completeness; this is the
    complete list up to [limit], default 10_000). *)
val all_realizations :
  ?max_depth:int ->
  ?limit:int ->
  ?jobs:int ->
  ?should_stop:(unit -> bool) ->
  Library.t ->
  Reversible.Revfun.t ->
  result list

(** [distinct_witnesses ?max_depth library target] counts the distinct
    full-domain circuit permutations of minimal cost restricting to the
    target — the granularity at which the paper's B[k] scan finds
    "implementations". *)
val distinct_witnesses :
  ?max_depth:int ->
  ?jobs:int ->
  ?should_stop:(unit -> bool) ->
  Library.t ->
  Reversible.Revfun.t ->
  int

(** [strip_not_layer target] is the pair (mask, remainder) with
    [target = xor_layer mask ∘ remainder] and [remainder] fixing zero. *)
val strip_not_layer : Reversible.Revfun.t -> int * Reversible.Revfun.t
