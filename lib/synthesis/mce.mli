(** The paper's Minimum_Cost_Expressing algorithm (MCE), behind the
    unified query API shared by every transport.

    Given a reversible specification g, strip a free input-side layer of
    NOT gates d0 so that the remainder fixes the all-zero pattern
    (Theorem 2: H = ⋃_{a∈N} a·G), then find a cascade
    g = d0 * d1 * ... * dt of minimal t (Theorem 3).

    One request record ({!Request.t}) describes any question the engine
    answers — minimal cascade, witness count, full realization list —
    and one response record ({!Response.t}) carries the structured
    answer: the payload, the plan actually used, and either an exact
    cost certificate or a typed error.  {!solve} evaluates a request
    against whatever engine resources the caller holds (a
    {!Census_index}, a warm {!Bidir} context, or nothing but the
    library).  The same pair travels over all four transports: the
    one-shot [qsynth synth --json] command, the [qsynth serve] daemon's
    socket protocol, the [qsynth query] client, and [qsynth batch]
    JSONL files — see doc/API.md for the wire schema.

    Three execution plans produce a synthesis answer, tried cheapest
    first under {!Request.plan} [Auto]:
    - a {!Census_index} lookup (exact cost + witness, no search; a miss
      proves a cost lower bound, and certifies unrealizability outright
      when the index horizon covers the depth bound);
    - the meet-in-the-middle engine ({!Bidir}), when a shared context is
      supplied;
    - the forward BFS of the paper, as always. *)

type result = {
  target : Reversible.Revfun.t;
  not_mask : int;
      (** d0: wires to invert at the input, bit [w] = wire [w]'s NOT
          (wire 0 = qubit A = most significant pattern bit) *)
  cascade : Cascade.t; (** d1 .. dt, applied after the NOT layer *)
  cost : int; (** t, the quantum cost (NOT gates are free) *)
}

(** [strip_not_layer target] is the pair (mask, remainder) with
    [target = xor_layer mask ∘ remainder] and [remainder] fixing zero. *)
val strip_not_layer : Reversible.Revfun.t -> int * Reversible.Revfun.t

(** {1 The unified query API} *)

module Request : sig
  (** Which engine may answer.  [Auto] picks the cheapest sound plan
      available (index, then bidir, then forward); the other values pin
      one engine and fail with [Unsupported] when the evaluator does not
      hold it. *)
  type plan = Auto | Index | Bidir | Forward

  type task =
    | Synthesize  (** one minimal-cost cascade (the default) *)
    | Count_witnesses
        (** how many distinct full-domain circuit permutations of
            minimal cost restrict to the target (forward plan only) *)
    | Enumerate of { limit : int }
        (** every minimal-cost realization, up to [limit] (forward plan
            only) *)

  type t = {
    id : string option;
        (** client correlation token, echoed verbatim in the response;
            not part of the canonical {!key} *)
    qubits : int;
    library : string;
        (** census universe the request targets, a {!Library.Registry}
            name; defaults to {!Library.default_name} and is omitted
            from the wire encoding at that default.  An engine built for
            a different library answers [Bad_request]. *)
    spec : string;
        (** the target, in any syntax {!Reversible.Spec.parse} accepts:
            a name ("toffoli"), cycles ("(7,8)"), formulas, or a
            truth-table output column ("0,1,2,3,4,5,7,6") *)
    task : task;
    max_depth : int;  (** the cost bound (the paper's cb) *)
    plan : plan;
    deadline_ms : int option;
        (** per-request compute budget, enforced cooperatively by the
            daemon; ignored by one-shot evaluation.  Not part of
            {!key}. *)
  }

  val make :
    ?id:string ->
    ?qubits:int ->
    ?library:string ->
    ?task:task ->
    ?max_depth:int ->
    ?plan:plan ->
    ?deadline_ms:int ->
    string ->
    t
  (** [make spec] with defaults [qubits = 3],
      [library = Library.default_name], [task = Synthesize],
      [max_depth = 7], [plan = Auto], no id, no deadline.  The library
      name is {e not} validated here; {!of_json} and {!solve} are the
      validation boundaries. *)

  val equal : t -> t -> bool

  (** [key t] is the canonical cache/coalescing key: two requests with
      equal keys are answered identically by the same engine, so the
      daemon shares one computation (and one cached response body)
      between them.  The key canonicalizes the spec to the parsed
      function's truth-table output column when it parses, always spells
      out the library name (so the same spec under different universes
      never shares a cache line), and omits [id] and [deadline_ms]. *)
  val key : t -> string

  (** [target t] parses the spec. *)
  val target : t -> (Reversible.Revfun.t, string) Stdlib.result

  val to_json : t -> Telemetry.Json.t

  (** [of_json j] decodes a request; unknown fields are rejected so a
      typo'd field name cannot silently change a query's meaning, and a
      [library] value outside {!Library.Registry.names} is rejected
      here, at the parse boundary (the daemon maps that to
      [Bad_request]).  Missing optional fields take the {!make}
      defaults.  [of_json (to_json t) = Ok t] for every [t] whose
      library is registered. *)
  val of_json : Telemetry.Json.t -> (t, string) Stdlib.result
end

module Response : sig
  (** The plan that actually produced the answer (the request's [Auto]
      resolves to one of these). *)
  type plan_used =
    | Trivial  (** the remainder is the identity: a NOT layer alone *)
    | Index_hit  (** answered by a {!Census_index} binary search *)
    | Index_certified
        (** a {!Census_index} miss whose horizon covers the depth bound:
            unrealizability is proven without any search *)
    | Bidir_meet  (** the meet-in-the-middle engine *)
    | Forward_bfs  (** the paper's forward BFS *)

  type payload =
    | Synthesized of {
        target : Reversible.Revfun.t;
        not_mask : int;
        cascade : Cascade.t;
        cost : int;  (** exact minimal cost — a certificate, not a bound *)
      }
    | Unrealizable of { max_depth : int }
        (** certified: no realization of cost [<= max_depth] exists *)
    | Witnesses of { count : int }  (** 0 = none within the depth bound *)
    | Realizations of {
        target : Reversible.Revfun.t;
        not_mask : int;
        cost : int;
        cascades : Cascade.t list;
        complete : bool;
            (** false when the enumeration stopped at the request's
                [limit]; the list is then a prefix of the full set *)
      }

  type error =
    | Bad_request of string  (** malformed request or unparsable spec *)
    | Unsupported of string
        (** the pinned plan is not available on this evaluator *)
    | Overloaded of { retry_after_ms : int }
        (** daemon queue full — retry after the hinted delay *)
    | Deadline_exceeded  (** the request's [deadline_ms] budget expired *)
    | Shutting_down  (** daemon draining; re-submit elsewhere or later *)
    | Cancelled  (** cooperative cancellation (SIGINT on one-shot runs) *)
    | Internal of string

  type ok = { plan : plan_used; payload : payload }

  type t = {
    id : string option;  (** echoed from the request *)
    trace : string option;
        (** server-assigned trace id, stamped by the daemon only when
            tracing is active ([serve --trace-file]/[--slow-ms]) so
            clients can correlate a response with the server-side trace;
            [None] everywhere else — one-shot evaluation never sets it,
            keeping daemon and one-shot bytes identical by default *)
    qubits : int;
    body : (ok, error) Stdlib.result;
  }

  val equal : t -> t -> bool

  (** [plan_to_string p] is the wire name of [p] ("trivial", "index",
      "index-certified", "bidir", "forward") — also the value of the
      slow-query log's [plan] field. *)
  val plan_to_string : plan_used -> string

  (** [with_id id t] re-stamps the correlation token (the daemon caches
      response bodies and re-stamps each requester's id). *)
  val with_id : string option -> t -> t

  (** [with_trace trace t] re-stamps the trace id (cached bodies store
      [None]; the daemon stamps per delivery). *)
  val with_trace : string option -> t -> t

  val to_json : t -> Telemetry.Json.t

  (** [of_json j] decodes a response; [of_json (to_json t) = Ok t].
      Cascades and targets are re-parsed, so a structurally valid
      document with an ill-formed cascade string is an [Error]. *)
  val of_json : Telemetry.Json.t -> (t, string) Stdlib.result

  (** [to_string t] is the canonical one-line wire encoding: compact
      (no insignificant whitespace), fields in fixed order — equal
      responses encode to equal bytes on every transport. *)
  val to_string : t -> string

  val of_string : string -> (t, string) Stdlib.result

  (** [result_of t] extracts a {!result} from a [Synthesized] body
      (convenience for callers migrating from [express]). *)
  val result_of : t -> result option
end

(** [solve ?jobs ?should_stop ?index ?bidir library request] evaluates a
    request against this process's engine resources and never raises:
    every failure mode is a typed {!Response.error}.

    [index] serves known functions in O(log n) and turns misses into
    proven lower bounds.  A {e complete} index
    ({!Census_index.is_complete}) answers every realizable request as
    [Index_hit] and never falls through to a search — an impossible miss
    on one is reported as [Internal], not silently searched.  On a
    {e partial} index, the first miss that does fall through logs the
    index horizon and the chosen engine once per process and bumps the
    [mce.plan.fallback_reason] counter.  [bidir] is a shared
    meet-in-the-middle context ({!Bidir.create}, built for the same
    library); with it a query can certify costs up to [max_depth] even
    beyond the forward engine's practical depth.  With neither, the
    original forward BFS runs.  [jobs] (default 1) is the forward BFS
    worker-domain count; it does not affect results (see
    {!Search.create}).

    [should_stop] is a cooperative cancellation flag polled between
    levels and between expansion chunks; when it fires the evaluation
    stops cleanly with the [Cancelled] error (the daemon maps its
    deadline watchdog onto it and reports [Deadline_exceeded]).

    Determinism: with a fixed library, index file, and a {!Bidir}
    context warmed to a fixed depth ({!Bidir.warm}) and capped there,
    [solve] is a pure function of the request — the property the
    daemon's response cache and the cross-transport byte-identity tests
    rely on. *)
val solve :
  ?jobs:int ->
  ?should_stop:(unit -> bool) ->
  ?index:Census_index.t ->
  ?bidir:Bidir.t ->
  Library.t ->
  Request.t ->
  Response.t

(** {1 Legacy entry points}

    Thin wrappers over {!solve} / the shared search, kept so existing
    callers compile; new code should build a {!Request.t} and call
    {!solve}.  Legacy call sites that are not worth migrating can
    disable the alert locally with [-alert --deprecated] (see
    [test/dune]). *)

val express :
  ?max_depth:int ->
  ?jobs:int ->
  ?should_stop:(unit -> bool) ->
  ?index:Census_index.t ->
  ?bidir:Bidir.t ->
  Library.t ->
  Reversible.Revfun.t ->
  result option
[@@ocaml.deprecated "use Mce.solve with a Request.t (task Synthesize)"]

type query

val run_query :
  ?max_depth:int ->
  ?jobs:int ->
  ?should_stop:(unit -> bool) ->
  Library.t ->
  Reversible.Revfun.t ->
  query
[@@ocaml.deprecated "use Mce.solve; the daemon's response cache replaces shared queries"]

val query_result : query -> result option
[@@ocaml.deprecated "use Mce.solve with a Request.t (task Synthesize)"]

val query_witnesses : query -> int
[@@ocaml.deprecated "use Mce.solve with a Request.t (task Count_witnesses)"]

val query_realizations : ?limit:int -> query -> result list
[@@ocaml.deprecated "use Mce.solve with a Request.t (task Enumerate)"]

val all_realizations :
  ?max_depth:int ->
  ?limit:int ->
  ?jobs:int ->
  ?should_stop:(unit -> bool) ->
  Library.t ->
  Reversible.Revfun.t ->
  result list
[@@ocaml.deprecated "use Mce.solve with a Request.t (task Enumerate)"]

val distinct_witnesses :
  ?max_depth:int ->
  ?jobs:int ->
  ?should_stop:(unit -> bool) ->
  Library.t ->
  Reversible.Revfun.t ->
  int
[@@ocaml.deprecated "use Mce.solve with a Request.t (task Count_witnesses)"]
