(** The paper's Minimum_Cost_Expressing algorithm (MCE).

    Given a reversible specification g, strip a free input-side layer of
    NOT gates d0 so that the remainder fixes the all-zero pattern
    (Theorem 2: H = ⋃_{a∈N} a·G), then search breadth-first until the
    remainder appears among the cost-k circuits and back-track a cascade
    g = d0 * d1 * ... * dt of minimal t (Theorem 3). *)

type result = {
  target : Reversible.Revfun.t;
  not_mask : int;
      (** d0: wires to invert at the input, bit [w] = wire [w]'s NOT
          (wire 0 = qubit A = most significant pattern bit) *)
  cascade : Cascade.t; (** d1 .. dt, applied after the NOT layer *)
  cost : int; (** t, the quantum cost (NOT gates are free) *)
}

(** [express ?max_depth ?jobs library target] synthesizes a minimal-cost
    quantum cascade for [target]; [None] when the cost exceeds
    [max_depth] (default 7, the paper's cb).  The search stops at the
    level where the target first appears, so cheap targets return
    quickly.  [jobs] (default 1) is the BFS worker-domain count.
    [should_stop] is a cooperative cancellation flag polled between
    levels and between expansion chunks (see {!Search.try_step}); when
    it fires the search stops cleanly and the result is [None], as for
    an exhausted depth bound. *)
val express :
  ?max_depth:int ->
  ?jobs:int ->
  ?should_stop:(unit -> bool) ->
  Library.t ->
  Reversible.Revfun.t ->
  result option

(** [all_realizations ?max_depth ?limit library target] enumerates
    minimal-cost realizations: every cascade of minimal length whose
    restriction is the target (the paper reports 2 such circuits for
    Peres and 4 for Toffoli without claiming completeness; this is the
    complete list up to [limit], default 10_000). *)
val all_realizations :
  ?max_depth:int ->
  ?limit:int ->
  ?jobs:int ->
  ?should_stop:(unit -> bool) ->
  Library.t ->
  Reversible.Revfun.t ->
  result list

(** [distinct_witnesses ?max_depth library target] counts the distinct
    full-domain circuit permutations of minimal cost restricting to the
    target — the granularity at which the paper's B[k] scan finds
    "implementations". *)
val distinct_witnesses :
  ?max_depth:int ->
  ?jobs:int ->
  ?should_stop:(unit -> bool) ->
  Library.t ->
  Reversible.Revfun.t ->
  int

(** [strip_not_layer target] is the pair (mask, remainder) with
    [target = xor_layer mask ∘ remainder] and [remainder] fixing zero. *)
val strip_not_layer : Reversible.Revfun.t -> int * Reversible.Revfun.t
