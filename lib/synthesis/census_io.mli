(** Persistence for census results.

    A census is expensive at depth; saving it lets downstream tools (cost
    lookups, library comparisons) reuse it.  The format is a plain text
    TSV, one function per line:

    {v cost <TAB> cycles <TAB> cascade v}

    e.g. [5<TAB>(7,8)<TAB>V+CB*FBA*V+CA*VCB*FBA].  Lines starting with
    [#] are comments.  Loading re-validates every entry: the cascade must
    be reasonable, have the recorded length, and restrict to the recorded
    function. *)

type entry = {
  func : Reversible.Revfun.t;
  cost : int;
  cascade : Cascade.t;
}

(** [save ?note census path] writes every census member with its witness
    cascade.  A [# library: NAME] comment follows the format banner so a
    human (and {!load}) can tell which census universe produced the
    file.  [note], when given, is emitted as a further [#] comment —
    used to mark {e partial} censuses (interrupted or budget-limited
    runs) so a reader cannot mistake them for complete ones. *)
val save : ?note:string -> Fmcf.t -> string -> unit

(** [load library path] reads and re-validates a census file.
    @raise Checkpoint.Mismatch when the file's [# library:] header names
    a different library than [library] (files without the header are
    validated structurally only);
    @raise Invalid_argument on malformed or inconsistent entries (with
    the offending line number). *)
val load : Library.t -> string -> entry list

(** [lookup entries target] finds a target's recorded cost and cascade. *)
val lookup : entry list -> Reversible.Revfun.t -> entry option
