open Qmath

let h_verify = Telemetry.Histogram.create "verify.unitary.seconds"

let not_layer_matrix ~qubits mask =
  Dmatrix.permutation_matrix (Array.init (1 lsl qubits) (fun code -> code lxor mask))

let classical_function ~qubits ?(not_mask = 0) cascade =
  let gates = not_layer_matrix ~qubits not_mask :: Cascade.matrices ~qubits cascade in
  match Qsim.Circuit_sim.classical_function ~qubits gates with
  | Some outputs ->
      Some (Reversible.Revfun.of_perm ~bits:qubits (Permgroup.Perm.of_array outputs))
  | None -> None

let cascade_implements ~qubits ?(not_mask = 0) cascade target =
  Telemetry.Histogram.time h_verify @@ fun () ->
  match classical_function ~qubits ~not_mask cascade with
  | Some f -> Reversible.Revfun.equal f target
  | None -> false

let result_valid library (result : Mce.result) =
  let qubits = Library.qubits library in
  Cascade.is_reasonable library result.Mce.cascade
  && (match Cascade.restriction library result.Mce.cascade with
     | Some f ->
         Reversible.Revfun.equal
           (Reversible.Revfun.compose
              (Reversible.Revfun.xor_layer ~bits:qubits result.Mce.not_mask)
              f)
           result.Mce.target
     | None -> false)
  && cascade_implements ~qubits ~not_mask:result.Mce.not_mask result.Mce.cascade
       result.Mce.target

let trajectory_is_pure cascade pattern =
  let rec go p = function
    | [] -> true
    | g :: rest ->
        let pure =
          List.for_all
            (fun w -> Mvl.Quat.is_binary (Mvl.Pattern.get p w))
            (Gate.purity_wires g)
        in
        pure && go (Gate.apply g p) rest
  in
  go pattern cascade

let mv_agrees_with_unitary library cascade =
  let encoding = Library.encoding library in
  let qubits = Library.qubits library in
  let matrices = Cascade.matrices ~qubits cascade in
  let size = Mvl.Encoding.size encoding in
  let perm = Cascade.perm_of library cascade in
  let rec check point =
    point >= size
    ||
    let input = Mvl.Encoding.pattern encoding point in
    if not (trajectory_is_pure cascade input) then check (point + 1)
    else
      let mv_output = Mvl.Encoding.pattern encoding (Permgroup.Perm.apply perm point) in
      match Qsim.Circuit_sim.output_pattern ~qubits matrices input with
      | Some unitary_output ->
          Mvl.Pattern.equal mv_output unitary_output && check (point + 1)
      | None -> false
  in
  check 0
