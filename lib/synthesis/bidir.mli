(** Meet-in-the-middle (bidirectional) minimum-cost synthesis.

    Grows a forward BFS wave from the identity circuit (the ordinary
    {!Search} engine) and, per query, a backward wave from the target,
    joining the two on the binary-block {e image vector} — the
    [num_binary]-byte prefix of a state's key.  Under the
    reasonable-product constraint (Definition 1), whether a gate
    sequence may legally follow a circuit and which binary function the
    composite computes depend only on that vector, so the backward wave
    searches the small vector quotient instead of full point
    permutations: vector [v] steps backward to every pre-image
    [inverse_array(g) v] whose signature admits [g].  Each fresh state
    on either side probes the other side's table; the first join found
    is already a {e minimum}-cost realization, because every realization
    of cost [<= fwd_depth + bwd_depth] is provably discovered (see the
    completeness argument in [bidir.ml]).

    Reachable cost therefore {e doubles} relative to the forward-only
    engine — two depth-D waves certify costs up to [2·D] — while the
    forward wave is shared across queries: a context warmed to forward
    depth [Df] answers any cost [<= Df] query with a single hashtable
    lookup and certifies deeper costs by growing only the (cheap)
    backward side. *)

type t
(** A reusable query context: the shared forward wave plus the
    vector-join index.  Queries grow the forward wave lazily and never
    shrink it. *)

(** [create ?jobs ?max_fwd_depth library] builds an empty context.
    [jobs] is the forward engine's worker-domain count (default 1).
    [max_fwd_depth] (default 7) caps forward growth — the forward
    frontier multiplies by ~4.5 per level, while backward levels are
    cheap, so queries beyond the cap grow only the backward wave (which
    bounds certifiable cost by [max_fwd_depth + bwd_depth]).
    @raise Invalid_argument when [max_fwd_depth < 0] or [jobs < 1]. *)
val create : ?jobs:int -> ?max_fwd_depth:int -> Library.t -> t

(** [of_search ?max_fwd_depth search] wraps an {e existing} raw forward
    wave — typically the one a census just finished growing — into a
    query context without re-running the BFS: every level [0..depth] is
    absorbed into the join index in BFS order, which yields exactly the
    images table that [create] followed by [warm] to the same depth
    would hold.  [max_fwd_depth] defaults to the wave's current depth,
    so by default the forward side {e never grows again} and concurrent
    queries from multiple domains read the shared wave immutably (the
    property the complete-index sweep relies on).
    @raise Invalid_argument on a quotiented search (orbit-canonical keys
    carry no per-circuit image vectors) or [max_fwd_depth < 0]. *)
val of_search : ?max_fwd_depth:int -> Search.t -> t

val library : t -> Library.t

(** [fwd_depth t] is the current depth of the shared forward wave. *)
val fwd_depth : t -> int

(** [fwd_states t] is the number of forward states held. *)
val fwd_states : t -> int

(** [warm ?should_stop t ~depth] grows the shared forward wave to
    [min depth max_fwd_depth] (or until the wave is exhausted) before any
    query arrives — the daemon calls this once at startup so that, with
    [max_fwd_depth] set to the same value, the forward side never grows
    again and every query reads an immutable wave (the determinism
    contract of {!Mce.solve}).  Idempotent; [should_stop] aborts the
    warm-up early (the context stays usable at whatever depth it
    reached).
    @raise Invalid_argument when [depth < 0]. *)
val warm : ?should_stop:(unit -> bool) -> t -> depth:int -> unit

type outcome = {
  cascade : Cascade.t;  (** a minimum-cost realization of the target *)
  cost : int;  (** its length — exact, not an upper bound *)
  fwd_depth : int;  (** forward depth when the query answered *)
  bwd_depth : int;  (** backward depth when the query answered *)
  bwd_states : int;  (** backward states explored by this query *)
}

(** [synthesize ?max_cost ?lower_bound ?should_stop t remainder] finds a
    minimum-cost cascade whose binary restriction is [remainder] (which
    must fix zero — strip the NOT layer first, as in {!Mce}), or [None]
    when every realization costs more than [max_cost] (default 14).

    [lower_bound] is external knowledge that no realization cheaper than
    it exists (e.g. a {!Census_index} miss at depth [d] proves cost
    [>= d+1]); a join at exactly the bound then answers without growing
    either wave further.  [should_stop] is the cooperative cancellation
    flag of {!Search.try_step}; when it fires the query stops cleanly
    and returns [None].

    @raise Invalid_argument when [remainder] does not fix zero, its bit
    width does not match the library, or [max_cost < 0]. *)
val synthesize :
  ?max_cost:int ->
  ?lower_bound:int ->
  ?should_stop:(unit -> bool) ->
  t ->
  Reversible.Revfun.t ->
  outcome option
