let same_wires a b =
  Gate.target a = Gate.target b
  && Gate.control a = Gate.control b
  && Gate.control2 a = Gate.control2 b

let wires = Gate.wires

let disjoint a b = List.for_all (fun w -> not (List.mem w (wires b))) (wires a)

let is_v_kind g =
  match Gate.kind g with
  | Gate.Controlled_v | Gate.Controlled_v_dag -> true
  | _ -> false

(* The shared-wire commutation algebra below is derived for the paper's
   two-wire kinds only; classical kinds commute here just when their
   wire sets are disjoint. *)
let is_classical g =
  match Gate.kind g with
  | Gate.Not | Gate.Toffoli | Gate.Swap | Gate.Fredkin -> true
  | Gate.Controlled_v | Gate.Controlled_v_dag | Gate.Feynman -> false

let kind_compatible a b =
  (is_v_kind a && is_v_kind b) || ((not (is_v_kind a)) && not (is_v_kind b))

let commute a b =
  disjoint a b
  || (not (is_classical a))
     && (not (is_classical b))
     && ((Gate.control a = Gate.control b && Gate.target a <> Gate.target b)
        || (Gate.target a = Gate.target b
           && Gate.control a <> Gate.control b
           && kind_compatible a b)
        || (same_wires a b && kind_compatible a b))

(* Adjacent-pair rules, sound over the unitary semantics. *)
let pair_rule a b =
  if is_classical a || is_classical b then
    (* every classical kind is self-inverse; no other local rule applies *)
    if Gate.equal a b then Some [] else None
  else if not (same_wires a b) then None
  else
    match (Gate.kind a, Gate.kind b) with
    | Gate.Controlled_v, Gate.Controlled_v_dag
    | Gate.Controlled_v_dag, Gate.Controlled_v
    | Gate.Feynman, Gate.Feynman ->
        Some [] (* inverse pair cancels *)
    | Gate.Controlled_v, Gate.Controlled_v
    | Gate.Controlled_v_dag, Gate.Controlled_v_dag ->
        (* V.V = V+.V+ = NOT on the target, controlled: a Feynman gate. *)
        Some [ Gate.make Gate.Feynman ~target:(Gate.target a) ~control:(Gate.control a) ]
    | Gate.Controlled_v, Gate.Feynman
    | Gate.Controlled_v_dag, Gate.Feynman
    | Gate.Feynman, Gate.Controlled_v
    | Gate.Feynman, Gate.Controlled_v_dag ->
        (* X.V = V+.X up to global structure — not a local simplification
           we apply (it does not reduce gate count). *)
        None
    | _ -> None (* classical kinds were dispatched above *)

let cancel_once cascade =
  let rec go prefix = function
    | a :: b :: rest -> (
        match pair_rule a b with
        | Some replacement -> Some (List.rev_append prefix (replacement @ rest))
        | None -> go (a :: prefix) (b :: rest))
    | _ -> None
  in
  go [] cascade

(* One bubble pass: push commuting neighbours into gate order so that
   cancelling pairs separated by independent gates become adjacent. *)
let bubble_pass cascade =
  let changed = ref false in
  let rec go = function
    | a :: b :: rest when commute a b && Gate.compare b a < 0 ->
        changed := true;
        b :: go (a :: rest)
    | a :: rest -> a :: go rest
    | [] -> []
  in
  let result = go cascade in
  (result, !changed)

let normalize ?(max_rounds = 64) cascade =
  let rec cancel_fully cascade =
    match cancel_once cascade with
    | Some simpler -> cancel_fully simpler
    | None -> cascade
  in
  let rec rounds cascade n =
    if n = 0 then cascade
    else
      let cascade = cancel_fully cascade in
      let reordered, changed = bubble_pass cascade in
      if changed then rounds reordered (n - 1) else cascade
  in
  rounds cascade max_rounds

let equivalent_unitary ~qubits a b =
  Qmath.Dmatrix.equal (Cascade.unitary ~qubits a) (Cascade.unitary ~qubits b)
