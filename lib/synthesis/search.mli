(** The breadth-first search engine shared by FMCF and MCE.

    States are circuit permutations of the encoding's points, packed into
    the sharded byte arena of {!State_arena} and addressed by integer
    handles — no per-state heap objects.  Level [k] of the search
    discovers exactly the paper's B[k]: the circuits constructible with
    [k] gates under the reasonable-product constraint and with no shorter
    realization.  Parent pointers record one minimal cascade per state
    for factorization.

    Frontier expansion is domain-parallel ([?jobs]): each step expands
    the frontier in contiguous chunks across domains into per-(domain,
    shard) candidate buffers, then each domain dedupes and inserts the
    candidates of the shards it owns, and the per-shard outputs are
    concatenated in shard order.  Because a state's shard is a pure
    function of its key and each shard processes its candidates in
    global frontier order, the discovered states, their handles, and the
    frontier order are {e identical for every jobs value} — [jobs] only
    changes scheduling.  See doc/PERFORMANCE.md for the determinism
    argument.

    The paper's memory bound cb = 7 came from GAP on 2004 hardware; this
    engine handles depth 8 comfortably on a present-day machine (the
    frontier grows roughly 4.5x per level). *)

type t

(** A state handle: an index into the packed store, stable for the
    lifetime of the search. *)
type handle = int

(** [create ?jobs ?symmetry library] starts a search at the identity
    circuit (depth 0).  [jobs] (default 1) is the number of domains used
    per step; it is clamped to the shard count of the store.

    With [?symmetry] the search runs {e quotiented}: states are
    [num_binary]-byte canonical image vectors under the wire-relabeling
    group (see {!Symmetry}), one representative per orbit, with the
    conjugating element recorded next to depth/via/parent.  Level [k]
    then discovers one state per orbit of B[k] (minimal depths are
    constant on orbits, so the level structure is preserved); the
    jobs-determinism contract is unchanged.  Key-facing APIs take and
    return canonical image strings of length {!key_length};
    {!all_cascades} and {!probe_restrictions} are unavailable.
    @raise Invalid_argument when [jobs < 1], or when [symmetry] was
    built for a different encoding. *)
val create : ?jobs:int -> ?symmetry:Symmetry.t -> Library.t -> t

(** [of_store ?jobs ?symmetry library ~depth store] rebuilds a live
    engine around a restored arena (see {!Checkpoint}): the frontier is
    recomputed as every depth-[depth] state in canonical order, so
    stepping the result produces byte-identical levels to the search the
    store came from.  Pass the same [?symmetry] the store was built
    under (a quotient checkpoint records its group fingerprint).
    @raise Invalid_argument when the store's degree does not match the
    library (or the quotient key length), its deepest level exceeds
    [depth] (a depth beyond it is legal — an exhausted search has an
    empty frontier), or it lacks the identity root. *)
val of_store : ?jobs:int -> ?symmetry:Symmetry.t -> Library.t -> depth:int -> State_arena.t -> t

(** [store t] is the underlying packed state store (used by
    {!Checkpoint.save}; treat as read-only). *)
val store : t -> State_arena.t

(** [symmetry t] is the quotient group, or [None] for a raw search. *)
val symmetry : t -> Symmetry.t option

(** [key_length t] is the byte length of stored state keys: the encoding
    size, or [num_binary t] when quotiented. *)
val key_length : t -> int

(** [conj_of_handle t h] is the conjugator index recorded for the state:
    the {!Symmetry} element that canonicalized it when it was first
    reached (0 for the representative's own expansion, and always 0 in a
    raw search). *)
val conj_of_handle : t -> handle -> int

(** [quotient_collapsed t] is [Some (orbits, hits)] for a quotient
    engine: [orbits] states stored (one per orbit) and [hits]
    reasonable expansions that canonicalized onto an already-stored
    representative, accumulated since this engine was created (a
    resumed engine restarts the tally at its resume boundary).  [None]
    for a raw search.  Unlike the [search.quotient.*] telemetry
    counters, these are maintained even when telemetry is disabled. *)
val quotient_collapsed : t -> (int * int) option

val library : t -> Library.t

(** [jobs t] is the configured worker count (after clamping to the shard
    count).  The {e effective} rank count of any given step may be lower:
    steps collapse to fewer ranks when the frontier is too small to give
    each rank a substantial chunk, and are capped by the machine's
    recommended domain count (see doc/PERFORMANCE.md, "Adaptive
    parallelism").  Results are identical either way. *)
val jobs : t -> int

(** [depth t] is the last expanded level (0 after [create]). *)
val depth : t -> int

(** [size t] is the number of distinct circuit states discovered. *)
val size : t -> int

(** [arena_bytes t] is the total key-arena memory reserved by the store. *)
val arena_bytes : t -> int

(** {1 Handle interface (hot paths)} *)

(** [frontier_handles t] is the states discovered at [depth t], in the
    engine's canonical order.  The returned array is owned by the engine;
    do not mutate. *)
val frontier_handles : t -> handle array

(** [step_handles t] expands one level and returns the new frontier; its
    length is the |B[depth+1]| count (no extra pass needed).  An empty
    result means the reachable set is exhausted. *)
val step_handles : t -> handle array

(** [try_step t ~cancel] is {!step_handles} with cooperative
    cancellation: [cancel] is polled between expansion chunks (and must
    be cheap, domain-safe and monotonic — an [Atomic.t] flag set by a
    signal handler qualifies).  When it fires mid-level the level is
    abandoned cleanly — any partial insertions are rolled back and the
    engine is exactly at the level boundary it started from — and the
    result is [None].  When it fires after deduplication has begun the
    level is drained normally instead (the result is [Some frontier];
    the caller re-checks its flag).  [Some frontier] is byte-identical
    to what [step_handles] would have returned. *)
val try_step : t -> cancel:(unit -> bool) -> handle array option

(** [handles_at_depth t d] is every state of depth [d] in the canonical
    frontier order (the order [step_handles] returned them when level
    [d] was expanded) — the replay primitive for checkpoint resume. *)
val handles_at_depth : t -> int -> handle array

val key_of_handle : t -> handle -> string
val depth_of_handle : t -> handle -> int

(** [restriction_of_handle t h] is the binary reversible function
    computed by the state, when it maps the binary block onto itself —
    read straight from the arena, no key materialization. *)
val restriction_of_handle : t -> handle -> Reversible.Revfun.t option

(** [binary_image_of_handle t h] is the state's image of the binary
    block: byte [j] is the encoding point the circuit maps binary code
    [j] to (not necessarily itself a binary code).  Under the
    reasonable-product constraint, whether a gate sequence may legally
    follow the circuit — and what restriction the composite computes —
    depends {e only} on these bytes, which makes them the join column of
    the meet-in-the-middle engine ({!Bidir}). *)
val binary_image_of_handle : t -> handle -> string

(** [num_binary t] is the number of binary codes of the encoding (the
    length of {!binary_image_of_handle} strings). *)
val num_binary : t -> int

(** [cascade_of_handle t h] rebuilds the recorded minimal cascade.  In
    quotient mode the stored via/parent chain connects orbit
    representatives, so the chain's gates are transported through the
    recorded conjugators ({!Symmetry.gate_map}) step by step; the result
    implements the representative's own image. *)
val cascade_of_handle : t -> handle -> Cascade.t

(** {1 String-key interface (legacy, kept for existing callers)} *)

(** [frontier t] is the keys of the states discovered at [depth t]. *)
val frontier : t -> string list

(** [step t] expands one level and returns the new frontier (the keys of
    B[depth+1]); an empty result means the reachable set is exhausted. *)
val step : t -> string list

(** [probe_restrictions t ~steps] returns the binary-block restrictions
    (as {!Permgroup.Perm.key} strings over the [2^n] binary codes) of the
    circuits reachable in exactly [depth t + steps] gates whose length-
    [depth t] prefix lies on the current frontier — {e without storing any
    new state}.  Only the binary-block images are tracked, so the memory
    cost is a table of function keys; the price is no deduplication of
    intermediate states (do not use for [steps > 2]).

    This is sound for census completion: a function whose minimal cost is
    [depth t + steps] must have a minimal cascade whose every proper
    prefix is also minimal, so its length-[depth t] prefix state sits
    exactly on the frontier.
    @raise Invalid_argument unless [steps] is 1 or 2. *)
val probe_restrictions : t -> steps:int -> (string, unit) Hashtbl.t

(** {1 Key decoding} *)

(** [perm_of_key key] decodes a state key into a point permutation. *)
val perm_of_key : string -> Permgroup.Perm.t

(** [restriction_of_key t key] is the binary reversible function computed
    by the state, when it maps the binary block onto itself. *)
val restriction_of_key : t -> string -> Reversible.Revfun.t option

(** [depth_of_key t key] is the level at which the state was discovered
    (its minimal gate count), or [None] for unseen states. *)
val depth_of_key : t -> string -> int option

(** {1 Factorization} *)

(** [cascade_of_key t key] rebuilds the recorded minimal cascade reaching
    the state.
    @raise Invalid_argument when the key is unknown. *)
val cascade_of_key : t -> string -> Cascade.t

(** [all_cascades ?limit t key] enumerates {e all} minimal-length cascades
    reaching the state, by walking every valid parent chain in the BFS
    graph (a parent must sit one level up and satisfy the
    reasonable-product condition for the connecting gate).  Stops after
    [limit] results (default 10_000).  Unavailable in quotient mode. *)
val all_cascades : ?limit:int -> t -> string -> Cascade.t list
