(** The wire-relabeling symmetry group of a gate library, and canonical
    forms of binary-image vectors under it — the quotient layer of the
    census engine ([census --quotient]).

    Conjugating a circuit by a permutation [pi] of the wires maps every
    gate of the CV/CV†/CNOT library to another library gate (a CNOT with
    control [a] and target [b] becomes the CNOT with control [pi a] and
    target [pi b], and likewise for the controlled-V family), so the
    reachable-state graph of the BFS has an automorphism for each of the
    [qubits!] wire relabelings.  On the encoding's points the relabeling
    acts as a permutation [q] (built with {!Mvl.Encoding.perm_of_action});
    on a state's binary-image vector [v] (see
    {!Search.binary_image_of_handle}) the conjugate state's image is

    {[ (conj v).(b) = q^-1 (v (q b)) ]}

    — well-defined because [q] preserves the binary block.  {!create}
    verifies all of this against the compiled library: the induced point
    permutations form a group of order [qubits!] (checked with a
    Schreier–Sims chain from {!Permgroup.Schreier}), each one fixes the
    binary block, maps every gate's permutation to another library
    gate's, and transports purity masks and mixed signatures coherently,
    so conjugation preserves the reasonable-product constraint and
    minimal depths are constant on orbits.

    The paper's other symmetry factor — the [2^n] NOT-layer cosets of
    Theorem 2 — is {e not} an arena symmetry: composing with an input
    NOT layer moves a circuit out of the reachable set (every reachable
    state fixes point 0), so it collapses nothing in the BFS.  That
    factor lives at the function level, where {!Fmcf.s8_counts} already
    applies it; {!not_cosets} exposes the factor for reporting.  See
    doc/PERFORMANCE.md, "Symmetry quotient". *)

type t

(** [create library] builds and verifies the wire-relabeling group.
    @raise Invalid_argument if the library is not closed under wire
    relabeling (conjugating some gate leaves the library), or if the
    induced point permutations fail the group/consistency checks —
    quotienting such a search would be unsound. *)
val create : Library.t -> t

val library : t -> Library.t

(** [order t] is the number of wire relabelings, [qubits!]. *)
val order : t -> int

(** [not_cosets t] is the Theorem-2 coset factor [2^qubits] — the part
    of the paper's ~48x symmetry that acts on functions (|S8[k]| =
    2^n |G[k]|), not on arena states. *)
val not_cosets : t -> int

(** [num_binary t] is the length of the image vectors being
    canonicalized. *)
val num_binary : t -> int

(** [wire_perm t i] is element [i]'s wire relabeling (a permutation of
    [0 .. qubits-1]); element 0 is the identity.  Elements are sorted by
    the key of their induced point permutation, so indices are stable
    across runs and processes. *)
val wire_perm : t -> int -> int array

(** [fingerprint t] digests the group (every element's induced point
    permutation): checkpoints record it so a snapshot quotiented under
    one group is never resumed under another (see {!Checkpoint}). *)
val fingerprint : t -> int64

(** [gate_map t i] maps library entry indices through conjugation by
    element [i]: entry [g] of the library conjugates to entry
    [(gate_map t i).(g)]. *)
val gate_map : t -> int -> int array

(** {1 Image conjugation and canonical forms} *)

(** [conjugate_image t i img] is the image vector of the conjugate by
    element [i] of any state whose image vector is [img]. *)
val conjugate_image : t -> int -> string -> string

(** [canon_into t ~src ~soff ~tmp ~dst ~doff] writes the canonical form
    — the lexicographically least of the [order t] conjugates — of the
    [num_binary]-byte image at [src.[soff ..]] into [dst.[doff ..]] and
    returns the index of the first element achieving it (0 when [src] is
    already canonical).  [tmp] is caller-provided scratch of at least
    [num_binary] bytes, distinct from [dst]; [src] is not modified (and
    may alias neither buffer).  Allocation-free: the BFS hot path calls
    this once per candidate state. *)
val canon_into :
  t -> src:Bytes.t -> soff:int -> tmp:Bytes.t -> dst:Bytes.t -> doff:int -> int

(** [canon t img] is [(canonical form, conjugator index)] of [img].
    Canonicalization is constant on orbits: [canon t (conjugate_image t
    i img) = canon t img] for every [i] — the property QCheck tests
    exercise. *)
val canon : t -> string -> string * int

(** [orbit_images t img] is the distinct conjugates of [img] in element
    order (the orbit of its image under the group, between 1 and
    [order t] vectors). *)
val orbit_images : t -> string -> string list
