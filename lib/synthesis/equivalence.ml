let relabel_cascade cascade sigma =
  let wire w =
    if w < 0 || w >= Array.length sigma then
      invalid_arg "Equivalence.relabel_cascade: wire out of range"
    else sigma.(w)
  in
  (* validate sigma is a permutation *)
  ignore (Permgroup.Perm.of_array sigma);
  List.map
    (fun g ->
      Gate.make (Gate.kind g) ~target:(wire (Gate.target g)) ~control:(wire (Gate.control g)))
    cascade

let same_function library a b =
  match (Cascade.restriction library a, Cascade.restriction library b) with
  | Some fa, Some fb -> Reversible.Revfun.equal fa fb
  | _ -> false

let same_circuit library a b =
  Permgroup.Perm.equal (Cascade.perm_of library a) (Cascade.perm_of library b)

let group_by_circuit library cascades =
  let groups = Hashtbl.create 16 in
  List.iter
    (fun cascade ->
      let key = Permgroup.Perm.key (Cascade.perm_of library cascade) in
      let existing = Option.value ~default:[] (Hashtbl.find_opt groups key) in
      Hashtbl.replace groups key (cascade :: existing))
    cascades;
  Hashtbl.fold (fun _ group acc -> List.rev group :: acc) groups []
  |> List.sort (fun a b -> compare (List.map Cascade.to_string a) (List.map Cascade.to_string b))

let vdag_closed library cascades =
  ignore library;
  let member c = List.exists (Cascade.equal c) cascades in
  let paired = ref 0 in
  List.iter
    (fun cascade ->
      let partner = Cascade.swap_v_dag cascade in
      if not (member partner) then
        invalid_arg "Equivalence.vdag_closed: set not closed under V <-> V+";
      if not (Cascade.equal partner cascade) then incr paired)
    cascades;
  !paired

let xor_wires cascade =
  List.sort_uniq Int.compare
    (List.filter_map
       (fun g ->
         match Gate.kind g with
         | Gate.Feynman -> Some (Gate.target g)
         | _ -> None)
       cascade)

let all_wire_permutations qubits =
  let rec perms = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x -> List.map (fun rest -> x :: rest) (perms (List.filter (( <> ) x) l)))
          l
  in
  List.map Array.of_list (perms (List.init qubits Fun.id))

let relabel_orbits ~qubits cascades =
  let sigmas = all_wire_permutations qubits in
  let canonical cascade =
    List.fold_left
      (fun best sigma ->
        let candidate = Cascade.to_string (relabel_cascade cascade sigma) in
        if String.compare candidate best < 0 then candidate else best)
      (Cascade.to_string cascade) sigmas
  in
  let groups = Hashtbl.create 16 in
  List.iter
    (fun cascade ->
      let key = canonical cascade in
      let existing = Option.value ~default:[] (Hashtbl.find_opt groups key) in
      Hashtbl.replace groups key (cascade :: existing))
    cascades;
  Hashtbl.fold (fun _ group acc -> List.rev group :: acc) groups []
  |> List.sort (fun a b -> compare (List.map Cascade.to_string a) (List.map Cascade.to_string b))
