(** The paper's Finding_Minimum_Cost_Circuits algorithm (FMCF).

    Computes, level by level, the sets G[k] of binary-input/binary-output
    reversible circuits whose minimal quantum cost is exactly [k] (no NOT
    gates; Theorem 1).  Each discovered function comes with a witness
    cascade of [k] gates.

    Two censuses are produced:
    - [counts]: the algorithm exactly as specified (set semantics with
      full subtraction of earlier levels) — for 3 qubits this gives
      1, 6, 24, 51, 84, 156, 398, 540;
    - [paper_counts]: the numbers as printed in the paper's Table 2
      (1, 6, 30, 52, 84, 156, 398, 540), which we reproduce by modelling
      two artifacts of the original GAP session: level 2 skips the
      subtraction of G[1] (so the six CNOT functions re-derived as V·V
      count again: 24 + 6 = 30) and G[0] = {identity} is never subtracted
      (so the identity re-enters at level 3: 51 + 1 = 52).  From level 4
      on the two censuses agree, as the paper's own G[4] breakdown
      (60 + 24 = 84) confirms. *)

type member = {
  func : Reversible.Revfun.t;
  witness : string;
      (** search key of the first full-domain circuit found (raw runs), or
          the function's binary-image vector (quotient runs).  Witness
          {e cascades} come from {!cascade_of_member}, which is
          mode-independent. *)
  cost : int;
}

type level = {
  cost : int;
  frontier_size : int; (** |B[k]|: distinct circuits first built with k gates *)
  members : member list; (** G[k] under as-specified semantics *)
  paper_count : int; (** |G[k]| under the paper's printed semantics *)
}

type t

(** Why a census run ended.  Anything but [Completed] marks a {e partial}
    census: every level up to [Search.depth (search t)] is exact, deeper
    levels were never expanded. *)
type stop_reason =
  | Completed  (** reached [max_depth] *)
  | Budget_states  (** [max_states] reached before the next level *)
  | Budget_mem  (** [max_mem] arena bytes reached before the next level *)
  | Timed_out  (** [timeout] seconds elapsed (checked between levels and
                   polled during expansion) *)
  | Cancelled  (** [should_stop] fired (e.g. SIGINT/SIGTERM) *)

(** [describe_stop r] is a one-line human-readable description. *)
val describe_stop : stop_reason -> string

(** [run ?max_depth ?jobs ?quotient library] executes the census up to
    [max_depth] (default 7, the paper's cb).  [jobs] (default 1) is the
    number of domains the underlying BFS uses per level; every census row
    is identical for every jobs value (see {!Search.create}).

    [quotient] (default false) runs the BFS over canonical orbit
    representatives under the library's wire-relabeling group (see
    {!Symmetry}): the arena stores one state per orbit (~200x fewer at
    depth 7) and each representative's orbit is re-expanded at member
    extraction, so [counts], [s8_counts], the member sets (func_key and
    cost), {!find} and {!cascade_of_member} are all {e identical} to a
    raw run — only {!paper_counts} is not reproducible
    ({!paper_counts_exact}). *)
val run : ?max_depth:int -> ?jobs:int -> ?quotient:bool -> Library.t -> t

(** [run_guarded ?max_depth ?jobs ?resume ?max_states ?max_mem ?timeout
    ?should_stop ?on_level library] is {!run} with resource guards and
    durability hooks:

    - [resume]: continue from a restored engine (see {!Checkpoint.load})
      instead of starting at the identity.  The completed levels of the
      restored arena are {e replayed} through the same member-extraction
      path — frontier reconstruction is canonical, so the replayed
      members, witnesses and counts match the uninterrupted run exactly.
      [jobs] and [quotient] are ignored (both were fixed at load time; a
      quotient snapshot resumes quotiented).
    - [max_states] / [max_mem]: stop {e before} expanding the next level
      once [Search.size] / [Search.arena_bytes] reaches the budget; the
      census returned covers every complete level.
    - [timeout]: wall-clock budget in seconds, measured from this call;
      also polled cooperatively during expansion, abandoning a
      mid-flight level cleanly (the engine rolls back to the last
      complete level).
    - [should_stop]: cooperative cancellation flag, polled between
      levels and between expansion chunks; must be cheap, domain-safe
      and monotonic (an [Atomic.t] set by a signal handler qualifies).
    - [on_level]: called as soon as each {e newly expanded} level
      completes (not for replayed levels), with the engine sitting at
      the level boundary and before the level's members are extracted —
      the checkpoint-writing hook ({!Checkpoint.save_async} overlaps its
      write with that extraction).

    @raise Invalid_argument when [resume] was built for a different
    library or already sits beyond [max_depth]. *)
val run_guarded :
  ?max_depth:int ->
  ?jobs:int ->
  ?quotient:bool ->
  ?resume:Search.t ->
  ?max_states:int ->
  ?max_mem:int ->
  ?timeout:float ->
  ?should_stop:(unit -> bool) ->
  ?on_level:(Search.t -> cost:int -> unit) ->
  Library.t ->
  t * stop_reason

val levels : t -> level list
val search : t -> Search.t

(** [quotiented t] is true when the census ran over the symmetry
    quotient. *)
val quotiented : t -> bool

(** [paper_counts_exact t] is false for quotient runs: the paper-variant
    numbers count duplicate candidates {e within} a level (the level-2
    V.V re-derivations), which a one-representative-per-orbit arena never
    re-materializes.  [counts], [s8_counts] and the member sets are exact
    in both modes. *)
val paper_counts_exact : t -> bool

(** [depth t] is the number of completed census levels (the exactness
    horizon: every function of cost [<= depth t] is in the census, every
    absent function costs more).  Equal to the requested [max_depth] for
    a [Completed] run, lower for a partial one. *)
val depth : t -> int

(** [iter_members t f] calls [f ~cost member] for every census member in
    level order (cost 0 first) — the emission order of
    {!Census_index.build}. *)
val iter_members : t -> (cost:int -> member -> unit) -> unit

(** [counts t] is the per-level [(cost, |G[k]|)] under set semantics. *)
val counts : t -> (int * int) list

(** [paper_counts t] is the per-level [(cost, |G[k]|)] as printed in the
    paper's Table 2. *)
val paper_counts : t -> (int * int) list

(** [s8_counts t] is the Table 2 bottom row: circuits including the free
    input NOT layer, |S8[k]| = 2^n * |G[k]| (Theorem 2).  The scale-up
    applies only when {!Library.coset_reduction} holds; for full-group
    universes (NCT, NFT) this is simply {!counts}. *)
val s8_counts : t -> (int * int) list

(** [total_found t] is the number of distinct reversible functions
    synthesized within the depth bound. *)
val total_found : t -> int

(** [find t func] locates a function in the census — O(1) via a
    hashtable keyed on the function's permutation key, built at census
    time. *)
val find : t -> Reversible.Revfun.t -> member option

(** [cascade_of_member t member] rebuilds the witness cascade — {e the
    same bytes in raw and quotient mode}.  The cascade is reconstructed
    backward from the member's function image, greedily peeling the least
    library gate that steps to an image of minimal census depth exactly
    one lower; the choice depends only on the image -> minimal-depth
    relation, which the quotient preserves exactly.  Emitted QSYNIDX1
    files are therefore byte-identical across modes. *)
val cascade_of_member : t -> member -> Cascade.t

(** [members_at t ~cost] is G[cost]. *)
val members_at : t -> cost:int -> member list
