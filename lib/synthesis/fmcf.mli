(** The paper's Finding_Minimum_Cost_Circuits algorithm (FMCF).

    Computes, level by level, the sets G[k] of binary-input/binary-output
    reversible circuits whose minimal quantum cost is exactly [k] (no NOT
    gates; Theorem 1).  Each discovered function comes with a witness
    cascade of [k] gates.

    Two censuses are produced:
    - [counts]: the algorithm exactly as specified (set semantics with
      full subtraction of earlier levels) — for 3 qubits this gives
      1, 6, 24, 51, 84, 156, 398, 540;
    - [paper_counts]: the numbers as printed in the paper's Table 2
      (1, 6, 30, 52, 84, 156, 398, 540), which we reproduce by modelling
      two artifacts of the original GAP session: level 2 skips the
      subtraction of G[1] (so the six CNOT functions re-derived as V·V
      count again: 24 + 6 = 30) and G[0] = {identity} is never subtracted
      (so the identity re-enters at level 3: 51 + 1 = 52).  From level 4
      on the two censuses agree, as the paper's own G[4] breakdown
      (60 + 24 = 84) confirms. *)

type member = {
  func : Reversible.Revfun.t;
  witness : string; (** search key of the first full-domain circuit found *)
  cost : int;
}

type level = {
  cost : int;
  frontier_size : int; (** |B[k]|: distinct circuits first built with k gates *)
  members : member list; (** G[k] under as-specified semantics *)
  paper_count : int; (** |G[k]| under the paper's printed semantics *)
}

type t

(** [run ?max_depth ?jobs library] executes the census up to [max_depth]
    (default 7, the paper's cb).  [jobs] (default 1) is the number of
    domains the underlying BFS uses per level; every census row is
    identical for every jobs value (see {!Search.create}). *)
val run : ?max_depth:int -> ?jobs:int -> Library.t -> t

val levels : t -> level list
val search : t -> Search.t

(** [counts t] is the per-level [(cost, |G[k]|)] under set semantics. *)
val counts : t -> (int * int) list

(** [paper_counts t] is the per-level [(cost, |G[k]|)] as printed in the
    paper's Table 2. *)
val paper_counts : t -> (int * int) list

(** [s8_counts t] is the Table 2 bottom row: circuits including the free
    input NOT layer, |S8[k]| = 2^n * |G[k]| (Theorem 2). *)
val s8_counts : t -> (int * int) list

(** [total_found t] is the number of distinct reversible functions
    synthesized within the depth bound. *)
val total_found : t -> int

(** [find t func] locates a function in the census — O(1) via a
    hashtable keyed on the function's permutation key, built at census
    time. *)
val find : t -> Reversible.Revfun.t -> member option

(** [cascade_of_member t member] rebuilds the witness cascade. *)
val cascade_of_member : t -> member -> Cascade.t

(** [members_at t ~cost] is G[cost]. *)
val members_at : t -> cost:int -> member list
