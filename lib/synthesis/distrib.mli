(** Coordinator/worker distributed census engine.

    Distributes the BFS census across worker {e processes}: the
    coordinator owns the {!State_arena} and, for every level, partitions
    the frontier into contiguous work items, ships each item's packed
    keys to a worker, and merges the returned {e dedup deltas} — the
    candidate children a worker computed, grouped by target shard — in
    strict item order with shard sections in shard order.  Because a
    state's shard is a pure function of its key and every shard sees its
    candidates in global (frontier position, gate) order, the arena
    contents, handles, frontier order, per-level counts, and any emitted
    QSYNIDX1 index are {e byte-identical} to a single-process
    [--jobs 1] run, no matter how items were scheduled, retried, or
    reassigned.  See doc/ROBUSTNESS.md, "Distributed census".

    Workers are stateless: each item is expanded from the key bytes in
    the request alone, so any item can be recomputed by any worker (or
    by the coordinator itself) at any time.  The failure model treats a
    worker as untrusted-but-honest infrastructure: replies are framed
    with the same length-prefixed format as [Server.Protocol], carry a
    CRC-32 trailer plus the library and symmetry-group fingerprints, and
    are structurally validated (gate/conjugator/parent bounds, shard
    membership of every key) before a single byte reaches the arena — a
    corrupt or mismatched delta is rejected and the item retried, never
    merged.  Worker death (EOF, kill, protocol violation) and stalls
    (work-item deadline with worker heartbeats) requeue the in-flight
    item with capped exponential backoff; when an item exhausts its
    attempts or no workers remain, the coordinator expands it inline —
    graceful degradation down to coordinator-only, not failure.

    Fault-injection points (see {!Faultsim}): ["worker_crash"] kills a
    worker at item start, ["worker_stall"] hangs it after its heartbeat,
    ["delta_corrupt"] flips a payload byte after the CRC is computed
    (the coordinator must reject), ["reply_drop"] computes but never
    sends a delta (the deadline must fire).  The coordinator's own
    ["merge"] point fires once per level, as in {!Search}. *)

type endpoint =
  | Spawn_self
      (** spawn [Sys.executable_name census-worker] over a socketpair on
          its stdio — the default for [census --workers N] *)
  | Spawn_cmd of string
      (** spawn [sh -c CMD]; the command must speak the worker protocol
          on stdin/stdout (e.g. [qsynth census-worker] over ssh) *)
  | Fork
      (** fork the current process into a worker child — no exec, so
          tests get real process isolation with inherited
          {!Faultsim.configure} state.  OCaml 5's [Unix.fork] refuses
          once any other domain has ever been created, so a process
          that has run a parallel census (or any [Domain.spawn]) must
          use an exec-based endpoint instead; the failed endpoint is
          logged and skipped like any other connection failure. *)
  | Attach of string
      (** connect to a listening [census-worker --listen ADDR];
          [unix:PATH] or [HOST:PORT] *)

(** Robustness tally of one distributed run. *)
type stats = {
  workers_requested : int;
  workers_connected : int;  (** endpoints that passed the handshake *)
  items : int;  (** work items dispatched or expanded, over all levels *)
  inline_items : int;
      (** items the coordinator expanded itself (degradation) *)
  retries : int;  (** item requeues, for any reason *)
  reassignments : int;  (** requeues caused by a worker death or stall *)
  rejected_deltas : int;  (** replies rejected by validation, not merged *)
  worker_deaths : int;  (** workers lost to EOF, stall, or protocol error *)
}

(** Raised on a malformed or corrupt protocol frame (bad length, magic,
    CRC, or message structure).  Internal to the engine — {!census}
    converts it into a rejection/retry — but exposed for {!Wire} users. *)
exception Protocol_error of string

(** [census ~workers library] runs the distributed census to
    [max_depth] (default 7) and returns the completed census, why the
    run stopped, and the robustness tally.  The guard and hook options
    mirror {!Fmcf.run_guarded} exactly: [on_level] is called at each
    newly expanded level boundary with a live engine suitable for
    {!Checkpoint.save_async}, [should_stop]/[timeout] abandon a
    mid-flight level cleanly (the arena rolls back to the last
    boundary, so a PARTIAL checkpoint is still exact), and [resume]
    continues from a restored engine.  [item_states] bounds the keys
    per work item, [item_timeout] is the per-item deadline (refreshed
    by worker heartbeats), and an item is expanded inline after
    [max_attempts] failed dispatches.  An empty [workers] list — or one
    whose every endpoint fails the handshake — degrades to a
    coordinator-only run with identical results. *)
val census :
  ?max_depth:int ->
  ?quotient:bool ->
  ?resume:Search.t ->
  ?item_states:int ->
  ?item_timeout:float ->
  ?max_attempts:int ->
  ?max_states:int ->
  ?max_mem:int ->
  ?timeout:float ->
  ?should_stop:(unit -> bool) ->
  ?on_level:(Search.t -> cost:int -> unit) ->
  workers:endpoint list ->
  Library.t ->
  Fmcf.t * Fmcf.stop_reason * stats

(** [worker_main in_fd out_fd] runs the worker side of the protocol
    until a shutdown frame or EOF: handshake, then expand work items
    and reply with deltas.  [qsynth census-worker] calls this on its
    stdio.  Raises {!Faultsim.Injected} when an armed ["worker_crash"]
    fires. *)
val worker_main : Unix.file_descr -> Unix.file_descr -> unit

(** [worker_listen addr] binds [addr] ([unix:PATH] or [HOST:PORT]),
    accepts exactly one coordinator connection, and serves it with
    {!worker_main}. *)
val worker_listen : string -> unit

(** The frame codec, exposed for protocol tests: the same 4-byte
    big-endian length prefix as [Server.Protocol], followed by a
    payload of [QSYNDST1] magic, type byte, body, and CRC-32 trailer. *)
module Wire : sig
  val max_frame : int

  (** [payload ~typ ~body] assembles and seals (CRC) one payload. *)
  val payload : typ:int -> body:Bytes.t -> Bytes.t

  (** [send fd payload] writes one sealed payload as a frame. *)
  val send : Unix.file_descr -> Bytes.t -> unit

  (** [recv fd] reads one frame and returns [(type, payload)] after
      verifying length, magic and CRC.
      @raise Protocol_error on any violation; [End_of_file] on EOF. *)
  val recv : Unix.file_descr -> int * Bytes.t
end
