(** Durable snapshots of a BFS search at a level boundary.

    A checkpoint is a versioned, CRC-checked binary file holding the
    {!State_arena}'s per-state metadata (depth, via gate, parent handle)
    plus the completed BFS depth and a fingerprint of the compiled gate
    library.  Key bytes are {e not} stored: a key is a pure function of
    its parent chain, so loading replays the recorded gates from the
    identity root (and hashes, signatures and the probe tables are in
    turn recomputed from the keys).  Snapshots are therefore ~11 bytes
    per state regardless of the encoding degree (12 for quotient
    snapshots, which add a per-state conjugator byte).  Restoring yields a
    {!Search.t} whose subsequent levels are {e byte-identical} to the
    ones the snapshotted engine would have produced: the arena columns
    are restored in index order, so every handle survives, and the
    frontier is recomputed in the engine's canonical (shard, index)
    order.  See doc/ROBUSTNESS.md for the format layout and the
    determinism-across-resume argument.

    Writes are atomic: the snapshot is serialized to [path ^ ".tmp"],
    fsynced, and renamed over [path] (the directory is fsynced best
    effort), so a crash during {!save} — including an injected
    ["checkpoint"] fault — leaves any previous snapshot at [path]
    intact.

    Two format versions share the [QSYNCKP1] magic: v1 is a raw
    snapshot — explicitly "no quotient" ([header.symmetry = None]) — and
    v2 is a quotient snapshot, which additionally records the
    {!Symmetry.fingerprint} of the canonicalizing group and each state's
    conjugator index.  Loading a v2 file rebuilds the group from the
    given library and rejects the file with {!Mismatch} if the recorded
    fingerprint differs; the replay also re-canonicalizes every parent
    chain and rejects with {!Corrupt} any state whose recorded
    conjugator disagrees. *)

(** Raised on a snapshot that is damaged: truncated, failing its CRC, or
    structurally inconsistent.  The payload names the defect. *)
exception Corrupt of string

(** Raised on a well-formed snapshot that does not belong to this run
    configuration: wrong format version, or a library fingerprint /
    qubit count / encoding degree differing from the library given to
    {!load}.  The payload names the mismatched field and both values. *)
exception Mismatch of string

(** Snapshot metadata, stored in the CRC-protected header. *)
type header = {
  fingerprint : int64;  (** {!fingerprint} of the producing library *)
  qubits : int;
  degree : int;
  num_binary : int;
  num_gates : int;
  depth : int;  (** completed BFS levels *)
  states : int;  (** total stored states *)
  frontier_len : int;  (** states at [depth] *)
  symmetry : int64 option;
      (** [Some fp]: quotient snapshot (format v2), canonicalized under
          the symmetry group fingerprinted [fp]; [None]: raw snapshot
          (format v1). *)
}

(** [fingerprint library] digests everything the search outcome depends
    on — encoding size and signatures, and each gate's name, point
    permutation and purity mask — so any library change invalidates old
    snapshots with a {!Mismatch} instead of a silently wrong census. *)
val fingerprint : Library.t -> int64

(** {1 Binary-format primitives}

    Shared by every durable artifact the synthesis layer writes (the
    [QSYNCKP1] snapshots here and the [QSYNIDX1] census indexes of
    {!Census_index}), so all of them get the same integrity and
    crash-safety guarantees from one implementation. *)

(** [crc32 bytes ~off ~len] is the CRC-32 (IEEE, slicing-by-8) of the
    given byte range. *)
val crc32 : Bytes.t -> off:int -> len:int -> int

(** Incremental form of {!crc32}, for digesting data that is not in one
    contiguous [Bytes.t] (e.g. an mmap'd file copied through a scratch
    buffer chunk by chunk): start from {!crc32_init}, thread the register
    through {!crc32_feed} calls over consecutive chunks, and apply
    {!crc32_finish} once at the end.  Feeding a single chunk is exactly
    {!crc32}. *)
val crc32_init : int

val crc32_feed : int -> Bytes.t -> off:int -> len:int -> int
val crc32_finish : int -> int

(** [write_atomic path bytes] writes [bytes] to [path ^ ".tmp"], fsyncs,
    renames over [path], and fsyncs the directory (best effort): a crash
    at any point — including the injected ["checkpoint"] fault between
    fsync and rename — leaves any previous file at [path] intact. *)
val write_atomic : string -> Bytes.t -> unit

(** [read_file path] reads the whole file into a fresh [Bytes.t]. *)
val read_file : string -> Bytes.t

(** [save search path] atomically writes a snapshot of [search] (which
    must sit at a level boundary, as it always does between
    {!Search.step_handles} calls).  Any in-flight {!save_async} write is
    drained first (re-raising its failure, if any). *)
val save : Search.t -> string -> unit

(** [save_async search path] captures [search]'s store at the current
    level boundary (zero-copy — see {!State_arena.shard_columns}) and
    writes the snapshot on a background domain, overlapping the write
    with the expansion of the next level.  Concurrent writes from
    successive boundaries each fsync their own uniquely-named temp file
    independently, but rename into [path] strictly in boundary order, so
    an older snapshot never overwrites a newer one; the directory fsync
    is deferred to {!drain}.  The produced file is byte-identical to
    what {!save} would have written at the same boundary. *)
val save_async : Search.t -> string -> unit

(** [drain ()] waits for every in-flight {!save_async} write, fsyncs the
    target directory, and re-raises any exception a writer died with
    ({!exception:Faultsim.Injected}, I/O errors).  Call before exiting
    and before reading back a file a [save_async] may still be writing.
    Idempotent; {!save} drains implicitly. *)
val drain : unit -> unit

(** [peek path] reads and CRC-validates just the snapshot at [path] and
    returns its header.
    @raise Corrupt or {!Mismatch} as {!load} would. *)
val peek : string -> header

(** [load ?jobs library path] restores a snapshot into a live search — a
    quotiented one for v2 files (the symmetry group is rebuilt from
    [library] and checked against the recorded fingerprint).
    @raise Mismatch when the snapshot belongs to a different library,
    format version or symmetry group (the message names the differing
    field);
    @raise Corrupt when the file is truncated, fails its CRC, or is
    structurally inconsistent — never a crash or a silently wrong
    search. *)
val load : ?jobs:int -> Library.t -> string -> Search.t
