(* Coordinator/worker distributed census.  See distrib.mli for the
   contract and doc/ROBUSTNESS.md, "Distributed census", for the failure
   model.  The determinism argument is the same as Search's: a shard is
   a pure function of the key, and merging deltas item-major (items in
   frontier order, shard sections in shard order) presents every shard
   its candidates in global (frontier position, gate) order — the exact
   order expand_insert_sequential and dedupe_shards use — so the arena,
   handles and frontier order cannot depend on scheduling, retries or
   reassignment. *)

let log_src = Logs.Src.create "qsynth.distrib" ~doc:"distributed census"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_items = Telemetry.Counter.create "distrib.items"
let m_inline = Telemetry.Counter.create "distrib.items.inline"
let m_retries = Telemetry.Counter.create "distrib.retries"
let m_reassign = Telemetry.Counter.create "distrib.reassignments"
let m_rejected = Telemetry.Counter.create "distrib.deltas.rejected"
let m_deaths = Telemetry.Counter.create "distrib.worker.deaths"
let g_workers = Telemetry.Gauge.create "distrib.workers.live"
let s_states = Telemetry.Series.create "distrib.states.per_level"
let s_retries = Telemetry.Series.create "distrib.retries.per_level"

type endpoint = Spawn_self | Spawn_cmd of string | Fork | Attach of string

type stats = {
  workers_requested : int;
  workers_connected : int;
  items : int;
  inline_items : int;
  retries : int;
  reassignments : int;
  rejected_deltas : int;
  worker_deaths : int;
}

exception Protocol_error of string

(* {1 Frame codec}

   Same framing as Server.Protocol (4-byte big-endian length prefix) —
   re-implemented here because lib/server depends on lib/synthesis, not
   the other way around.  Every payload is

     magic "QSYNDST1" (8) | type (1) | body | CRC-32 big-endian (4)

   with the CRC covering magic through body. *)

let magic = "QSYNDST1"
let header_len = 9
let trailer_len = 4
let max_frame = 64 * 1024 * 1024
let t_hello = 1
let t_hello_ack = 2
let t_work = 3
let t_delta = 4
let t_heartbeat = 5
let t_shutdown = 7
let t_error = 8

let rec write_all fd b off len =
  if len > 0 then
    match Unix.write fd b off len with
    | n -> write_all fd b (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd b off len

let rec read_exact fd b off len =
  if len > 0 then
    match Unix.read fd b off len with
    | 0 -> raise End_of_file
    | n -> read_exact fd b (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_exact fd b off len

let new_payload ~typ ~body_len =
  let p = Bytes.create (header_len + body_len + trailer_len) in
  Bytes.blit_string magic 0 p 0 8;
  Bytes.set p 8 (Char.chr typ);
  p

let seal p =
  let n = Bytes.length p in
  let crc = Checkpoint.crc32 p ~off:0 ~len:(n - trailer_len) in
  Bytes.set_int32_be p (n - trailer_len) (Int32.of_int crc);
  p

(* Two writes instead of one copied buffer: payloads reach tens of MB
   per delta, and the copy costs more than the extra syscall. *)
let send_payload fd p =
  let n = Bytes.length p in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int n);
  write_all fd hdr 0 4;
  write_all fd p 0 n

let recv_payload fd =
  let hdr = Bytes.create 4 in
  read_exact fd hdr 0 4;
  let n = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if n < header_len + trailer_len || n > max_frame then
    raise (Protocol_error (Printf.sprintf "bad frame length %d" n));
  let p = Bytes.create n in
  read_exact fd p 0 n;
  if not (String.equal (Bytes.sub_string p 0 8) magic) then
    raise (Protocol_error "bad frame magic");
  let crc = Checkpoint.crc32 p ~off:0 ~len:(n - trailer_len) land 0xffffffff in
  let stored = Int32.to_int (Bytes.get_int32_be p (n - trailer_len)) land 0xffffffff in
  if crc <> stored then raise (Protocol_error "frame CRC mismatch");
  (Char.code (Bytes.get p 8), p)

module Wire = struct
  let max_frame = max_frame

  let payload ~typ ~body =
    let p = new_payload ~typ ~body_len:(Bytes.length body) in
    Bytes.blit body 0 p header_len (Bytes.length body);
    seal p

  let send = send_payload
  let recv = recv_payload
end

(* {1 Expansion parameters}

   Everything a stateless worker (or the coordinator's inline fallback)
   needs to expand an item — the exact data Search hoists out of the
   library, plus the fingerprints every delta must echo. *)

type params = {
  library : Library.t;
  sym : Symmetry.t option;
  klen : int;
  num_binary : int;
  ngates : int;
  signatures : int array;
  perm_arrays : int array array;
  purity_masks : int array;
  lib_fp : int64;
  sym_fp : int64;
}

let params_of ?symmetry library =
  let encoding = Library.encoding library in
  let degree = Mvl.Encoding.size encoding in
  let num_binary = Mvl.Encoding.num_binary encoding in
  let signatures = Array.init degree (Mvl.Encoding.mixed_signature encoding) in
  let klen = match symmetry with None -> degree | Some _ -> num_binary in
  let entries = Library.entries library in
  {
    library;
    sym = symmetry;
    klen;
    num_binary;
    ngates = Array.length entries;
    signatures;
    perm_arrays = Array.map (fun e -> e.Library.perm_array) entries;
    purity_masks = Array.map (fun e -> e.Library.purity_mask) entries;
    lib_fp = Checkpoint.fingerprint library;
    sym_fp = (match symmetry with None -> 0L | Some s -> Symmetry.fingerprint s);
  }

(* A delta: the candidate children of one work item, grouped by target
   shard, each record in wire layout

     via (1) | conj (1) | parent index in the item (4, BE) | key (klen)

   and, within a shard section, in (frontier position, gate) order. *)
let num_shards = State_arena.num_shards

type secbuf = { mutable sbuf : Bytes.t; mutable slen : int (* records *) }

(* The candidate children of one work item, still grouped by target
   shard in the worker's section buffers — [encode_delta] blits each
   section straight into the wire frame, so the records are never
   coalesced into an intermediate copy. *)
type delta = { d_counts : int array; d_secs : secbuf array; d_nrecords : int }

(* Unboxed big-endian u32 accessors: [Bytes.get_int32_be] allocates a
   boxed [Int32.t] per call, which at one read and one write per record
   dominates the merge loop's allocation.  [get_u32] is unsafe — its two
   callers (validate_delta, merge_delta) have already checked that the
   payload extends past every record they walk. *)
let get_u32 b off =
  (Char.code (Bytes.unsafe_get b off) lsl 24)
  lor (Char.code (Bytes.unsafe_get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (off + 2)) lsl 8)
  lor Char.code (Bytes.unsafe_get b (off + 3))

let set_u32 b off v =
  Bytes.set b off (Char.unsafe_chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.unsafe_chr (v land 0xff))

(* Expand the packed [keys] of one item exactly as Search.expand_chunk
   would: signature test, gate image, (quotiented) canonicalization,
   shard placement by key hash.  Pure — reads no arena. *)
let expand_item p ~keys ~off ~nkeys =
  let klen = p.klen in
  let stride = 6 + klen in
  let secs = Array.init num_shards (fun _ -> { sbuf = Bytes.create (16 * stride); slen = 0 }) in
  let push s ~via ~conj ~parent key koff =
    let sb = secs.(s) in
    let off = sb.slen * stride in
    if off + stride > Bytes.length sb.sbuf then begin
      let nb = Bytes.create (2 * Bytes.length sb.sbuf) in
      Bytes.blit sb.sbuf 0 nb 0 off;
      sb.sbuf <- nb
    end;
    Bytes.set sb.sbuf off (Char.unsafe_chr via);
    Bytes.set sb.sbuf (off + 1) (Char.unsafe_chr conj);
    set_u32 sb.sbuf (off + 2) parent;
    Bytes.blit key koff sb.sbuf (off + 6) klen;
    sb.slen <- sb.slen + 1
  in
  let scratch = Bytes.create klen in
  let tmp = Bytes.create klen and dst = Bytes.create klen in
  for i = 0 to nkeys - 1 do
    let koff = off + (i * klen) in
    let signature = ref 0 in
    for j = 0 to p.num_binary - 1 do
      signature := !signature lor p.signatures.(Char.code (Bytes.get keys (koff + j)))
    done;
    for via = 0 to p.ngates - 1 do
      if !signature land p.purity_masks.(via) = 0 then begin
        let pa = p.perm_arrays.(via) in
        match p.sym with
        | None ->
            let acc = ref 0 in
            for j = 0 to klen - 1 do
              let b =
                Array.unsafe_get pa (Char.code (Bytes.unsafe_get keys (koff + j)))
              in
              Bytes.unsafe_set scratch j (Char.unsafe_chr b);
              acc := (!acc * 131) + b
            done;
            (* finalize exactly as State_arena.hash_key *)
            let hv = !acc in
            let hv = hv lxor (hv lsr 23) in
            let hv = hv * 0x2545F4914F6CDD1 in
            let hv = hv lxor (hv lsr 29) in
            let hash = hv land max_int in
            push (State_arena.shard_of_hash hash) ~via ~conj:0 ~parent:i scratch 0
        | Some sym ->
            for j = 0 to klen - 1 do
              Bytes.unsafe_set scratch j
                (Char.unsafe_chr
                   (Array.unsafe_get pa (Char.code (Bytes.unsafe_get keys (koff + j)))))
            done;
            let conj = Symmetry.canon_into sym ~src:scratch ~soff:0 ~tmp ~dst ~doff:0 in
            let hash = State_arena.hash_key dst ~off:0 ~len:klen in
            push (State_arena.shard_of_hash hash) ~via ~conj ~parent:i dst 0
      end
    done
  done;
  let counts = Array.map (fun sb -> sb.slen) secs in
  let total = Array.fold_left ( + ) 0 counts in
  { d_counts = counts; d_secs = secs; d_nrecords = total }

(* {1 Message encodings} *)

let encode_hello p =
  (* The library name rides after the fixed fields (length byte + bytes)
     so the worker rebuilds the same registry library the coordinator
     runs; the fingerprint check below it would catch any divergence. *)
  let name = Library.name p.library in
  let name_len = String.length name in
  if name_len > 255 then raise (Protocol_error "hello: library name too long");
  let b = new_payload ~typ:t_hello ~body_len:(19 + 1 + name_len) in
  Bytes.set b 9 (Char.chr (Library.qubits p.library));
  Bytes.set b 10 (Char.chr (if p.sym = None then 0 else 1));
  Bytes.set b 11 (Char.chr p.klen);
  Bytes.set_int64_be b 12 p.lib_fp;
  Bytes.set_int64_be b 20 p.sym_fp;
  Bytes.set b 28 (Char.chr name_len);
  Bytes.blit_string name 0 b 29 name_len;
  seal b

let encode_hello_ack p =
  let b = new_payload ~typ:t_hello_ack ~body_len:16 in
  Bytes.set_int64_be b 9 p.lib_fp;
  Bytes.set_int64_be b 17 p.sym_fp;
  seal b

let encode_heartbeat ~item_id =
  let b = new_payload ~typ:t_heartbeat ~body_len:4 in
  Bytes.set_int32_be b 9 (Int32.of_int item_id);
  seal b

let encode_shutdown () = seal (new_payload ~typ:t_shutdown ~body_len:0)

let encode_error msg =
  let n = min (String.length msg) 1024 in
  let b = new_payload ~typ:t_error ~body_len:n in
  Bytes.blit_string msg 0 b 9 n;
  seal b

let encode_delta p ~item_id ~level d =
  let stride = 6 + p.klen in
  let counts_off = 9 + 4 + 2 + 8 + 8 + 4 in
  let records_off = counts_off + (4 * num_shards) in
  let b =
    new_payload ~typ:t_delta
      ~body_len:(records_off - 9 + (d.d_nrecords * stride))
  in
  Bytes.set_int32_be b 9 (Int32.of_int item_id);
  Bytes.set_uint16_be b 13 level;
  Bytes.set_int64_be b 15 p.lib_fp;
  Bytes.set_int64_be b 23 p.sym_fp;
  Bytes.set_int32_be b 31 (Int32.of_int d.d_nrecords);
  for s = 0 to num_shards - 1 do
    Bytes.set_int32_be b (counts_off + (4 * s)) (Int32.of_int d.d_counts.(s))
  done;
  let pos = ref records_off in
  Array.iter
    (fun sb ->
      Bytes.blit sb.sbuf 0 b !pos (sb.slen * stride);
      pos := !pos + (sb.slen * stride))
    d.d_secs;
  seal b

let delta_counts_off = 9 + 4 + 2 + 8 + 8 + 4
let delta_records_off = delta_counts_off + (4 * num_shards)

(* A validated delta: structure checked, every record's hash recomputed
   and its shard membership verified — nothing touches the arena until
   validation has accepted the whole reply. *)
type validated = {
  v_counts : int array;
  v_payload : Bytes.t;
  v_hashes : int array;
  v_nrecords : int;
}

(* [validate_delta p payload ~nkeys_of] checks a delta payload against
   the run configuration and returns [(item_id, level, validated)].
   [nkeys_of item_id] is the item's key count ([None] = unknown id).
   @raise Protocol_error naming the defect on any violation. *)
let validate_delta p payload ~nkeys_of =
  let len = Bytes.length payload in
  let fail msg = raise (Protocol_error msg) in
  if len < delta_records_off + trailer_len then fail "delta: truncated header";
  let item_id = Int32.to_int (Bytes.get_int32_be payload 9) in
  let level = Bytes.get_uint16_be payload 13 in
  if Bytes.get_int64_be payload 15 <> p.lib_fp then fail "delta: library fingerprint mismatch";
  if Bytes.get_int64_be payload 23 <> p.sym_fp then fail "delta: symmetry fingerprint mismatch";
  let nrecords = Int32.to_int (Bytes.get_int32_be payload 31) in
  let nkeys =
    match nkeys_of item_id with
    | Some n -> n
    | None -> fail (Printf.sprintf "delta: unknown item %d" item_id)
  in
  let counts = Array.make num_shards 0 in
  let sum = ref 0 in
  for s = 0 to num_shards - 1 do
    let c = Int32.to_int (Bytes.get_int32_be payload (delta_counts_off + (4 * s))) in
    if c < 0 then fail "delta: negative section count";
    counts.(s) <- c;
    sum := !sum + c
  done;
  if !sum <> nrecords then fail "delta: section counts disagree with record total";
  let stride = 6 + p.klen in
  if len <> delta_records_off + (nrecords * stride) + trailer_len then
    fail "delta: payload length disagrees with record total";
  let order = match p.sym with None -> 1 | Some s -> Symmetry.order s in
  let hashes = Array.make nrecords 0 in
  let pos = ref delta_records_off and ri = ref 0 in
  for s = 0 to num_shards - 1 do
    for _ = 1 to counts.(s) do
      let via = Char.code (Bytes.unsafe_get payload !pos) in
      let conj = Char.code (Bytes.unsafe_get payload (!pos + 1)) in
      let pidx = get_u32 payload (!pos + 2) in
      if via >= p.ngates then fail "delta: gate index out of range";
      if conj >= order then fail "delta: conjugator out of range";
      if pidx < 0 || pidx >= nkeys then fail "delta: parent index out of range";
      let hash = State_arena.hash_key payload ~off:(!pos + 6) ~len:p.klen in
      if State_arena.shard_of_hash hash <> s then fail "delta: key in wrong shard section";
      hashes.(!ri) <- hash;
      pos := !pos + stride;
      incr ri
    done
  done;
  (item_id, level, { v_counts = counts; v_payload = payload; v_hashes = hashes; v_nrecords = nrecords })

(* The coordinator's inline fallback produces the same validated shape
   without a round-trip (hashes recomputed by the same code path). *)
let validated_of_delta p d =
  let payload = encode_delta p ~item_id:0 ~level:0 d in
  match validate_delta p payload ~nkeys_of:(fun _ -> Some max_int) with
  | _, _, v -> v

(* {1 Worker side} *)

let params_of_hello payload =
  if Bytes.length payload < 29 + trailer_len then raise (Protocol_error "hello: truncated");
  let qubits = Char.code (Bytes.get payload 9) in
  let quotient = Char.code (Bytes.get payload 10) <> 0 in
  let name_len = Char.code (Bytes.get payload 28) in
  if Bytes.length payload < 29 + name_len + trailer_len then
    raise (Protocol_error "hello: truncated library name");
  let name = Bytes.sub_string payload 29 name_len in
  let library =
    try Library.of_name ~qubits name
    with Invalid_argument msg -> raise (Protocol_error ("hello: " ^ msg))
  in
  let symmetry = if quotient then Some (Symmetry.create library) else None in
  params_of ?symmetry library

let worker_main in_fd out_fd =
  (match Sys.os_type with "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore | _ -> ());
  let pms = ref None in
  let running = ref true in
  while !running do
    match recv_payload in_fd with
    | exception End_of_file -> running := false
    | typ, payload ->
        if typ = t_hello then begin
          let p = params_of_hello payload in
          pms := Some p;
          send_payload out_fd (encode_hello_ack p)
        end
        else if typ = t_work then begin
          match !pms with
          | None -> send_payload out_fd (encode_error "work before hello")
          | Some p ->
              (* an armed worker_crash escapes worker_main: the process
                 dies exactly as a real crash would *)
              Faultsim.hit "worker_crash";
              let item_id = Int32.to_int (Bytes.get_int32_be payload 9) in
              let level = Bytes.get_uint16_be payload 13 in
              let nkeys = Int32.to_int (Bytes.get_int32_be payload 15) in
              if Bytes.length payload <> 19 + (nkeys * p.klen) + trailer_len then
                send_payload out_fd (encode_error "work: bad key block")
              else begin
                send_payload out_fd (encode_heartbeat ~item_id);
                (* a stalled worker: heartbeat sent, then silence — the
                   coordinator's item deadline must fire *)
                (try Faultsim.hit "worker_stall"
                 with Faultsim.Injected _ -> Unix.sleepf 3600.);
                let d = expand_item p ~keys:payload ~off:19 ~nkeys in
                (* corrupt the library fingerprint before the CRC is
                   sealed: the frame passes the transport CRC and the
                   coordinator's delta validation must reject it —
                   retried, never merged, worker left alive *)
                let reply =
                  match Faultsim.hit "delta_corrupt" with
                  | () -> encode_delta p ~item_id ~level d
                  | exception Faultsim.Injected _ ->
                      encode_delta
                        { p with lib_fp = Int64.lognot p.lib_fp }
                        ~item_id ~level d
                in
                match Faultsim.hit "reply_drop" with
                | () -> send_payload out_fd reply
                | exception Faultsim.Injected _ -> ()
              end
        end
        else if typ = t_shutdown then running := false
        else send_payload out_fd (encode_error (Printf.sprintf "unexpected frame type %d" typ))
  done

let sockaddr_of_string addr =
  match String.index_opt addr ':' with
  | Some i when String.sub addr 0 i = "unix" ->
      Unix.ADDR_UNIX (String.sub addr (i + 1) (String.length addr - i - 1))
  | Some i -> (
      let host = String.sub addr 0 i in
      let port = String.sub addr (i + 1) (String.length addr - i - 1) in
      match int_of_string_opt port with
      | None -> invalid_arg (Printf.sprintf "Distrib: bad port in %S" addr)
      | Some port ->
          let ip =
            try Unix.inet_addr_of_string host
            with _ -> (
              try (Unix.gethostbyname host).Unix.h_addr_list.(0)
              with _ -> invalid_arg (Printf.sprintf "Distrib: cannot resolve %S" host))
          in
          Unix.ADDR_INET (ip, port))
  | None -> invalid_arg "Distrib: address must be unix:PATH or HOST:PORT"

let worker_listen addr =
  let sa = sockaddr_of_string addr in
  let srv = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
  Unix.setsockopt srv Unix.SO_REUSEADDR true;
  (match sa with
  | Unix.ADDR_UNIX p -> ( try Unix.unlink p with _ -> ())
  | _ -> ());
  Unix.bind srv sa;
  Unix.listen srv 1;
  let fd, _ = Unix.accept srv in
  Unix.close srv;
  (match sa with
  | Unix.ADDR_UNIX p -> ( try Unix.unlink p with _ -> ())
  | _ -> ());
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) (fun () -> worker_main fd fd)

(* {1 Coordinator} *)

type worker = {
  wid : int;
  fd : Unix.file_descr;
  pid : int option;
  kind : string;
  mutable busy : int; (* in-flight item id, or -1 *)
  mutable deadline : float;
  mutable alive : bool;
}

type litem = {
  id : int;
  frame : Bytes.t; (* the sealed work frame; retries resend it verbatim *)
  nkeys : int;
  parents : int array; (* frontier handles of the slice *)
  mutable attempts : int;
  mutable eligible_at : float;
  mutable assigned : int; (* wid, or -1 *)
  mutable result : validated option;
  mutable merged : bool;
}

type ibuf = { mutable ints : int array; mutable ilen : int }

let ibuf_push b v =
  if b.ilen = Array.length b.ints then begin
    let a = Array.make (2 * b.ilen) 0 in
    Array.blit b.ints 0 a 0 b.ilen;
    b.ints <- a
  end;
  b.ints.(b.ilen) <- v;
  b.ilen <- b.ilen + 1

type tally = {
  mutable t_items : int;
  mutable t_inline : int;
  mutable t_retries : int;
  mutable t_reassign : int;
  mutable t_rejected : int;
  mutable t_deaths : int;
}

type coord = {
  pms : params;
  store : State_arena.t;
  mutable frontier : int array;
  mutable depth : int;
  mutable workers : worker list;
  fresh_by_shard : ibuf array;
  item_states : int;
  item_timeout : float;
  max_attempts : int;
  tally : tally;
}

exception Abandon of Fmcf.stop_reason

let now () = Unix.gettimeofday ()
let backoff_base = 0.05
let backoff_cap = 1.0

let backoff attempts =
  Float.min backoff_cap (backoff_base *. (2. ** float_of_int (max 0 (attempts - 1))))

let requeue c it ~reassigned =
  it.assigned <- -1;
  it.attempts <- it.attempts + 1;
  it.eligible_at <- now () +. backoff it.attempts;
  c.tally.t_retries <- c.tally.t_retries + 1;
  Telemetry.Counter.incr m_retries;
  if reassigned then begin
    c.tally.t_reassign <- c.tally.t_reassign + 1;
    Telemetry.Counter.incr m_reassign
  end

let reap pid =
  try ignore (Unix.waitpid [] pid) with _ -> ()

let worker_dead c items w reason =
  if w.alive then begin
    w.alive <- false;
    Log.warn (fun m -> m "worker %d (%s) lost: %s" w.wid w.kind reason);
    (try Unix.close w.fd with _ -> ());
    (match w.pid with
    | Some pid ->
        (try Unix.kill pid Sys.sigkill with _ -> ());
        reap pid
    | None -> ());
    c.workers <- List.filter (fun x -> x.wid <> w.wid) c.workers;
    c.tally.t_deaths <- c.tally.t_deaths + 1;
    Telemetry.Counter.incr m_deaths;
    Telemetry.Gauge.set_int g_workers (List.length c.workers);
    if w.busy >= 0 then begin
      let it = items.(w.busy) in
      w.busy <- -1;
      if it.result = None && not it.merged then requeue c it ~reassigned:true
    end
  end

(* Expand an item on the coordinator itself — the degradation path, and
   the only path when no workers survive. *)
let inline_expand c it =
  let d = expand_item c.pms ~keys:it.frame ~off:19 ~nkeys:it.nkeys in
  it.result <- Some (validated_of_delta c.pms d);
  it.assigned <- -1;
  c.tally.t_inline <- c.tally.t_inline + 1;
  Telemetry.Counter.incr m_inline

let dispatchable items t =
  let n = Array.length items in
  let rec go i =
    if i >= n then None
    else
      let it = items.(i) in
      if (not it.merged) && it.result = None && it.assigned < 0 && it.eligible_at <= t
      then Some it
      else go (i + 1)
  in
  go 0

let pending_exists items =
  Array.exists (fun it -> (not it.merged) && it.result = None && it.assigned < 0) items

let dispatch c items =
  let idle = List.filter (fun w -> w.alive && w.busy < 0) c.workers in
  List.iter
    (fun w ->
      if w.alive && w.busy < 0 then
        match dispatchable items (now ()) with
        | None -> ()
        | Some it -> (
            match send_payload w.fd it.frame with
            | () ->
                w.busy <- it.id;
                w.deadline <- now () +. c.item_timeout;
                it.assigned <- w.wid
            | exception _ -> worker_dead c items w "write failed"))
    idle

let handle_readable c items ~next_depth w =
  match recv_payload w.fd with
  | exception End_of_file -> worker_dead c items w "EOF"
  | exception Unix.Unix_error (e, _, _) ->
      worker_dead c items w (Unix.error_message e)
  | exception Protocol_error msg -> worker_dead c items w msg
  | typ, payload ->
      if typ = t_heartbeat then begin
        let item_id = Int32.to_int (Bytes.get_int32_be payload 9) in
        if w.busy = item_id then w.deadline <- now () +. c.item_timeout
      end
      else if typ = t_delta then begin
        let was = w.busy in
        w.busy <- -1;
        let nkeys_of id =
          if id >= 0 && id < Array.length items then Some items.(id).nkeys else None
        in
        match validate_delta c.pms payload ~nkeys_of with
        | exception Protocol_error msg ->
            (* reject, never merge; the item goes back in the queue *)
            c.tally.t_rejected <- c.tally.t_rejected + 1;
            Telemetry.Counter.incr m_rejected;
            Log.warn (fun m -> m "worker %d delta rejected: %s" w.wid msg);
            if was >= 0 then begin
              let it = items.(was) in
              if it.result = None && not it.merged then requeue c it ~reassigned:false
            end
        | item_id, level, v ->
            if level <> next_depth then begin
              c.tally.t_rejected <- c.tally.t_rejected + 1;
              Telemetry.Counter.incr m_rejected;
              Log.warn (fun m ->
                  m "worker %d delta rejected: level %d, expected %d" w.wid level
                    next_depth);
              if was >= 0 then begin
                let it = items.(was) in
                if it.result = None && not it.merged then requeue c it ~reassigned:false
              end
            end
            else begin
              let it = items.(item_id) in
              (* first valid delta wins; late duplicates are dropped *)
              if it.result = None && not it.merged then begin
                it.result <- Some v;
                it.assigned <- -1
              end;
              if was >= 0 && was <> item_id then begin
                let o = items.(was) in
                if o.result = None && not o.merged then requeue c o ~reassigned:false
              end
            end
      end
      else if typ = t_error then begin
        let msg = Bytes.sub_string payload 9 (Bytes.length payload - header_len - trailer_len) in
        worker_dead c items w (Printf.sprintf "worker error: %s" msg)
      end
      else worker_dead c items w (Printf.sprintf "unexpected frame type %d" typ)

(* Merge one validated delta, chunk-major: shard sections in shard
   order, records of a section in the worker's (frontier position,
   gate) order.  Every record was already validated to land in its
   section's shard. *)
let merge_delta c ~next_depth ~parents v =
  let stride = 6 + c.pms.klen in
  let fresh = ref 0 and dup = ref 0 in
  let pos = ref delta_records_off and ri = ref 0 in
  for s = 0 to num_shards - 1 do
    for _ = 1 to v.v_counts.(s) do
      let via = Char.code (Bytes.unsafe_get v.v_payload !pos) in
      let conj = Char.code (Bytes.unsafe_get v.v_payload (!pos + 1)) in
      let pidx = get_u32 v.v_payload (!pos + 2) in
      let h =
        State_arena.try_insert c.store ~conj ~key:v.v_payload ~off:(!pos + 6)
          ~hash:v.v_hashes.(!ri) ~depth:next_depth ~via ~parent:parents.(pidx)
      in
      if h >= 0 then begin
        ibuf_push c.fresh_by_shard.(s) h;
        incr fresh
      end
      else incr dup;
      pos := !pos + stride;
      incr ri
    done
  done;
  (!fresh, !dup)

let merge_frontier c =
  let total = Array.fold_left (fun acc b -> acc + b.ilen) 0 c.fresh_by_shard in
  let next = Array.make total 0 in
  let pos = ref 0 in
  Array.iter
    (fun b ->
      Array.blit b.ints 0 next !pos b.ilen;
      pos := !pos + b.ilen)
    c.fresh_by_shard;
  next

(* Each item's work frame is built and sealed once, with the keys
   blitted straight from the arena: dispatch (and every retry) is then a
   bare write of the prebuilt frame. *)
let make_items c ~next_depth =
  let klen = c.pms.klen in
  let n = Array.length c.frontier in
  let nitems = max 1 ((n + c.item_states - 1) / c.item_states) in
  Array.init nitems (fun id ->
      let lo = id * n / nitems and hi = (id + 1) * n / nitems in
      let nkeys = hi - lo in
      let frame = new_payload ~typ:t_work ~body_len:(10 + (nkeys * klen)) in
      Bytes.set_int32_be frame 9 (Int32.of_int id);
      Bytes.set_uint16_be frame 13 next_depth;
      Bytes.set_int32_be frame 15 (Int32.of_int nkeys);
      for i = 0 to nkeys - 1 do
        let h = c.frontier.(lo + i) in
        let src = State_arena.shard_arena c.store (State_arena.shard_of_handle h) in
        Bytes.blit src (State_arena.key_offset c.store h) frame (19 + (i * klen)) klen
      done;
      {
        id;
        frame = seal frame;
        nkeys;
        parents = Array.sub c.frontier lo nkeys;
        attempts = 0;
        eligible_at = 0.;
        assigned = -1;
        result = None;
        merged = false;
      })

let expand_level c ~next_depth ~hard_deadline ~should_stop =
  let items = make_items c ~next_depth in
  let nitems = Array.length items in
  c.tally.t_items <- c.tally.t_items + nitems;
  Telemetry.Counter.add m_items nitems;
  let rollback = State_arena.shard_counts c.store in
  Array.iter (fun b -> b.ilen <- 0) c.fresh_by_shard;
  let level_fresh = ref 0 and level_dup = ref 0 in
  let mptr = ref 0 in
  (try
     while !mptr < nitems do
       if should_stop () then raise (Abandon Fmcf.Cancelled);
       (match hard_deadline with
       | Some d when now () > d -> raise (Abandon Fmcf.Timed_out)
       | _ -> ());
       (* items out of dispatch attempts fall back to the coordinator *)
       Array.iter
         (fun it ->
           if
             (not it.merged) && it.result = None && it.assigned < 0
             && it.attempts > c.max_attempts
           then begin
             Log.warn (fun m ->
                 m "item %d/%d failed %d dispatches; expanding inline" it.id nitems
                   it.attempts);
             inline_expand c it
           end)
         items;
       if c.workers = [] then
         (* coordinator-only degradation: expand whatever is left *)
         Array.iter
           (fun it ->
             if (not it.merged) && it.result = None && it.assigned < 0 then
               inline_expand c it)
           items
       else begin
         dispatch c items;
         let busy = List.filter (fun w -> w.alive && w.busy >= 0) c.workers in
         if busy = [] then begin
           (* nothing in flight: either everything is merged/arriving, or
              every pending item is in its backoff window *)
           if pending_exists items then Unix.sleepf 0.01
         end
         else begin
           let t = now () in
           let tmo =
             List.fold_left (fun acc w -> Float.min acc (w.deadline -. t)) 0.5 busy
             |> Float.max 0.01
           in
           (match Unix.select (List.map (fun w -> w.fd) busy) [] [] tmo with
           | rd, _, _ ->
               List.iter
                 (fun w ->
                   if w.alive && List.memq w.fd rd then
                     handle_readable c items ~next_depth w)
                 busy
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
           let t = now () in
           List.iter
             (fun w ->
               if w.alive && w.busy >= 0 && t > w.deadline then
                 worker_dead c items w
                   (Printf.sprintf "item %d deadline expired (%.1fs)" w.busy
                      c.item_timeout))
             busy
         end
       end;
       (* merge the contiguous prefix of arrived deltas, in item order *)
       while !mptr < nitems && items.(!mptr).result <> None do
         let it = items.(!mptr) in
         let v = Option.get it.result in
         let fresh, dup = merge_delta c ~next_depth ~parents:it.parents v in
         level_fresh := !level_fresh + fresh;
         level_dup := !level_dup + dup;
         it.result <- None;
         it.merged <- true;
         incr mptr
       done
     done
   with Abandon r ->
     (* abandon the level cleanly: the arena rolls back to the boundary *)
     State_arena.truncate c.store rollback;
     Array.iter (fun b -> b.ilen <- 0) c.fresh_by_shard;
     raise (Abandon r));
  (!level_fresh, !level_dup)

(* {1 Worker pool} *)

let spawn_stdio argv kind =
  let parent, child = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec parent;
  let pid = Unix.create_process argv.(0) argv child child Unix.stderr in
  Unix.close child;
  (parent, Some pid, kind)

let fork_worker () =
  let parent, child = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.fork () with
  | 0 ->
      Unix.close parent;
      let code =
        try
          worker_main child child;
          0
        with
        | Faultsim.Injected _ -> 1
        | End_of_file -> 0
        | _ -> 1
      in
      (* _exit: no at_exit hooks — the child shares the parent's
         telemetry sinks and must not flush them *)
      Unix._exit code
  | pid ->
      Unix.close child;
      (parent, Some pid, "fork")

let connect_endpoint ep =
  match ep with
  | Spawn_self ->
      spawn_stdio [| Sys.executable_name; "census-worker" |] "spawn"
  | Spawn_cmd cmd -> spawn_stdio [| "/bin/sh"; "-c"; cmd |] "cmd"
  | Fork -> fork_worker ()
  | Attach addr ->
      let sa = sockaddr_of_string addr in
      let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
      (try Unix.connect fd sa
       with e ->
         (try Unix.close fd with _ -> ());
         raise e);
      (fd, None, "attach")

let handshake p ~timeout fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
  send_payload fd (encode_hello p);
  match recv_payload fd with
  | typ, payload when typ = t_hello_ack ->
      let lib_fp = Bytes.get_int64_be payload 9 in
      let sym_fp = Bytes.get_int64_be payload 17 in
      if lib_fp <> p.lib_fp then Error "library fingerprint mismatch"
      else if sym_fp <> p.sym_fp then Error "symmetry fingerprint mismatch"
      else Ok ()
  | typ, _ -> Error (Printf.sprintf "handshake: unexpected frame type %d" typ)
  | exception End_of_file -> Error "handshake: EOF"
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | exception Protocol_error msg -> Error msg

let connect_workers p ~item_timeout endpoints =
  let wid = ref 0 in
  List.filter_map
    (fun ep ->
      incr wid;
      match connect_endpoint ep with
      | exception e ->
          Log.warn (fun m ->
              m "worker %d connection failed: %s" !wid (Printexc.to_string e));
          None
      | fd, pid, kind -> (
          match handshake p ~timeout:(Float.max item_timeout 5.) fd with
          | Ok () ->
              Some
                { wid = !wid; fd; pid; kind; busy = -1; deadline = infinity; alive = true }
          | Error msg ->
              Log.warn (fun m -> m "worker %d (%s) rejected: %s" !wid kind msg);
              (try Unix.close fd with _ -> ());
              (match pid with
              | Some pid ->
                  (try Unix.kill pid Sys.sigkill with _ -> ());
                  reap pid
              | None -> ());
              None))
    endpoints

let shutdown_workers c =
  List.iter
    (fun w ->
      if w.alive then begin
        (try send_payload w.fd (encode_shutdown ()) with _ -> ());
        (try Unix.close w.fd with _ -> ());
        match w.pid with
        | None -> ()
        | Some pid ->
            (* give it a moment to exit on the shutdown frame, then make
               sure (a stalled worker sleeps through fd closure) *)
            let rec poll n =
              if n = 0 then begin
                (try Unix.kill pid Sys.sigkill with _ -> ());
                reap pid
              end
              else
                match Unix.waitpid [ Unix.WNOHANG ] pid with
                | 0, _ -> Unix.sleepf 0.01; poll (n - 1)
                | _ -> ()
                | exception _ -> ()
            in
            poll 100
      end)
    c.workers;
  c.workers <- [];
  Telemetry.Gauge.set_int g_workers 0

(* {1 The distributed census} *)

let census ?(max_depth = 7) ?(quotient = false) ?resume ?(item_states = 2048)
    ?(item_timeout = 30.) ?(max_attempts = 4) ?max_states ?max_mem ?timeout
    ?(should_stop = fun () -> false) ?on_level ~workers:endpoints library =
  (match Sys.os_type with "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore | _ -> ());
  let symmetry, store, frontier, depth0 =
    match resume with
    | Some s -> (Search.symmetry s, Search.store s, Search.frontier_handles s, Search.depth s)
    | None ->
        let symmetry = if quotient then Some (Symmetry.create library) else None in
        let p = params_of ?symmetry library in
        let store =
          State_arena.create ~degree:p.klen ~num_binary:p.num_binary
            ~signatures:p.signatures
        in
        let root_key = Bytes.init p.klen Char.chr in
        let root_hash = State_arena.hash_key root_key ~off:0 ~len:p.klen in
        let root =
          State_arena.try_insert store ~key:root_key ~off:0 ~hash:root_hash ~depth:0
            ~via:(-1) ~parent:(-1)
        in
        (symmetry, store, [| root |], 0)
  in
  if depth0 > max_depth then
    invalid_arg "Distrib.census: resumed engine already beyond max_depth";
  let pms = params_of ?symmetry library in
  let tally =
    { t_items = 0; t_inline = 0; t_retries = 0; t_reassign = 0; t_rejected = 0; t_deaths = 0 }
  in
  let c =
    {
      pms;
      store;
      frontier;
      depth = depth0;
      workers = connect_workers pms ~item_timeout endpoints;
      fresh_by_shard = Array.init num_shards (fun _ -> { ints = Array.make 64 0; ilen = 0 });
      item_states = max 1 item_states;
      item_timeout;
      max_attempts;
      tally;
    }
  in
  let connected = List.length c.workers in
  Telemetry.Gauge.set_int g_workers connected;
  Log.info (fun m ->
      m "distributed census: %d/%d workers connected, max_depth %d"
        connected (List.length endpoints) max_depth);
  if connected = 0 && endpoints <> [] then
    Log.warn (fun m -> m "no workers survived the handshake; running coordinator-only");
  let t0 = now () in
  let hard_deadline = Option.map (fun s -> t0 +. s) timeout in
  let stop = ref Fmcf.Completed in
  (try
     while
       c.depth < max_depth && Array.length c.frontier > 0 && !stop = Fmcf.Completed
     do
       if should_stop () then stop := Fmcf.Cancelled
       else if
         match max_states with Some m -> State_arena.size c.store >= m | None -> false
       then stop := Fmcf.Budget_states
       else if
         match max_mem with
         | Some m -> State_arena.arena_bytes c.store >= m
         | None -> false
       then stop := Fmcf.Budget_mem
       else if match hard_deadline with Some d -> now () > d | None -> false then
         stop := Fmcf.Timed_out
       else begin
         let next_depth = c.depth + 1 in
         let retries_before = c.tally.t_retries in
         let fresh, dup = expand_level c ~next_depth ~hard_deadline ~should_stop in
         Faultsim.hit "merge";
         c.frontier <- merge_frontier c;
         c.depth <- next_depth;
         Telemetry.Series.set s_states ~index:next_depth fresh;
         Telemetry.Series.set s_retries ~index:next_depth
           (c.tally.t_retries - retries_before);
         Log.debug (fun m ->
             m "level %d: %d new states (%d duplicate), %d total, %d workers live"
               next_depth fresh dup (State_arena.size c.store)
               (List.length c.workers));
         match on_level with
         | None -> ()
         | Some f ->
             f (Search.of_store ?symmetry library ~depth:next_depth c.store)
               ~cost:next_depth
       end
     done
   with Abandon r -> stop := r);
  shutdown_workers c;
  let final = Search.of_store ?symmetry library ~depth:c.depth c.store in
  let census, _ = Fmcf.run_guarded ~max_depth:c.depth ~resume:final library in
  let stats =
    {
      workers_requested = List.length endpoints;
      workers_connected = connected;
      items = tally.t_items;
      inline_items = tally.t_inline;
      retries = tally.t_retries;
      reassignments = tally.t_reassign;
      rejected_deltas = tally.t_rejected;
      worker_deaths = tally.t_deaths;
    }
  in
  (census, !stop, stats)
