let shard_bits = 6
let num_shards = 1 lsl shard_bits

type shard = {
  mutable arena : Bytes.t; (* count * degree key bytes, then slack *)
  mutable depths : int array;
  mutable vias : int array;
  mutable parents : int array;
  mutable sigs : int array;
  mutable hashes : int array;
  mutable conjs : Bytes.t; (* one conjugator index per state; 0 outside quotient mode *)
  mutable count : int;
  mutable table : int array; (* open addressing: -1 empty, else local index *)
  mutable mask : int; (* table capacity - 1, a power of two minus one *)
}

type t = {
  degree : int;
  num_binary : int;
  signatures : int array;
  shards : shard array;
}

let initial_slots = 256
let initial_states = 64

let make_shard degree =
  {
    arena = Bytes.create (initial_states * degree);
    depths = Array.make initial_states 0;
    vias = Array.make initial_states 0;
    parents = Array.make initial_states 0;
    sigs = Array.make initial_states 0;
    hashes = Array.make initial_states 0;
    conjs = Bytes.make initial_states '\000';
    count = 0;
    table = Array.make initial_slots (-1);
    mask = initial_slots - 1;
  }

let create ~degree ~num_binary ~signatures =
  { degree; num_binary; signatures; shards = Array.init num_shards (fun _ -> make_shard degree) }

let degree t = t.degree

let size t =
  let n = ref 0 in
  Array.iter (fun s -> n := !n + s.count) t.shards;
  !n

let arena_bytes t =
  let n = ref 0 in
  Array.iter (fun s -> n := !n + Bytes.length s.arena) t.shards;
  !n

let table_capacity t =
  let n = ref 0 in
  Array.iter (fun s -> n := !n + s.mask + 1) t.shards;
  !n

(* A multiplicative byte hash with a final avalanche; keys are short
   permutation vectors, so quality matters mostly in the low (shard) and
   middle (slot) bits. *)
let hash_key b ~off ~len =
  let h = ref 0 in
  for i = off to off + len - 1 do
    h := (!h * 131) + Char.code (Bytes.unsafe_get b i)
  done;
  let h = !h in
  let h = h lxor (h lsr 23) in
  let h = h * 0x2545F4914F6CDD1 in
  let h = h lxor (h lsr 29) in
  h land max_int

let shard_of_hash h = h land (num_shards - 1)

let shard_columns t s =
  let sh = t.shards.(s) in
  (sh.count, sh.arena, sh.depths, sh.vias, sh.parents, sh.conjs)
let shard_of_handle h = h land (num_shards - 1)
let index_of_handle h = h asr shard_bits
let handle ~shard ~index = (index lsl shard_bits) lor shard
let shard_arena t s = t.shards.(s).arena
let key_offset t h = index_of_handle h * t.degree

let key_of t h =
  let s = t.shards.(shard_of_handle h) in
  Bytes.sub_string s.arena (index_of_handle h * t.degree) t.degree

let key_prefix t h ~len =
  let s = t.shards.(shard_of_handle h) in
  Bytes.sub_string s.arena (index_of_handle h * t.degree) len

let depth_of t h = t.shards.(shard_of_handle h).depths.(index_of_handle h)
let via_of t h = t.shards.(shard_of_handle h).vias.(index_of_handle h)
let parent_of t h = t.shards.(shard_of_handle h).parents.(index_of_handle h)
let signature_of t h = t.shards.(shard_of_handle h).sigs.(index_of_handle h)

let conj_of t h =
  Char.code (Bytes.get t.shards.(shard_of_handle h).conjs (index_of_handle h))

let key_equal arena aoff key koff degree =
  let rec go i =
    i >= degree
    || Char.equal (Bytes.unsafe_get arena (aoff + i)) (Bytes.unsafe_get key (koff + i))
       && go (i + 1)
  in
  go 0

(* Finds the slot holding an equal key, or the first empty slot; the
   caller inspects [table.(slot)] to tell the two apart.  Terminates
   because the load factor is kept under 3/4. *)
let probe t sh key ~off ~hash =
  let degree = t.degree in
  let mask = sh.mask in
  let i = ref ((hash lsr shard_bits) land mask) in
  let looking = ref true in
  while !looking do
    let idx = sh.table.(!i) in
    if idx < 0 then looking := false
    else if sh.hashes.(idx) = hash && key_equal sh.arena (idx * degree) key off degree
    then looking := false
    else i := (!i + 1) land mask
  done;
  !i

let find t key ~off ~hash =
  let s = shard_of_hash hash in
  let sh = t.shards.(s) in
  let idx = sh.table.(probe t sh key ~off ~hash) in
  if idx < 0 then -1 else handle ~shard:s ~index:idx

let grow_states t sh =
  Faultsim.hit "grow";
  let cap = Array.length sh.depths in
  let cap' = 2 * cap in
  let extend a =
    let a' = Array.make cap' 0 in
    Array.blit a 0 a' 0 cap;
    a'
  in
  sh.depths <- extend sh.depths;
  sh.vias <- extend sh.vias;
  sh.parents <- extend sh.parents;
  sh.sigs <- extend sh.sigs;
  sh.hashes <- extend sh.hashes;
  let conjs' = Bytes.make cap' '\000' in
  Bytes.blit sh.conjs 0 conjs' 0 sh.count;
  sh.conjs <- conjs';
  let arena' = Bytes.create (cap' * t.degree) in
  Bytes.blit sh.arena 0 arena' 0 (sh.count * t.degree);
  sh.arena <- arena'

let grow_table sh =
  let mask' = (2 * (sh.mask + 1)) - 1 in
  let table' = Array.make (mask' + 1) (-1) in
  for idx = 0 to sh.count - 1 do
    let i = ref ((sh.hashes.(idx) lsr shard_bits) land mask') in
    while table'.(!i) >= 0 do
      i := (!i + 1) land mask'
    done;
    table'.(!i) <- idx
  done;
  sh.table <- table';
  sh.mask <- mask'

let shard_count t s = t.shards.(s).count
let shard_counts t = Array.map (fun sh -> sh.count) t.shards

(* [truncate t counts] rolls every shard back to the state count it had
   when [counts] was captured (by {!shard_counts}): the level-abandon
   path of cooperative cancellation.  Metadata beyond the count is dead
   by construction; the open-addressing table is rebuilt over the kept
   entries (same capacity — the load factor only shrinks). *)
let truncate t counts =
  Array.iteri
    (fun s target ->
      let sh = t.shards.(s) in
      if target > sh.count then
        invalid_arg "State_arena.truncate: counts exceed current shard sizes";
      if target < sh.count then begin
        sh.count <- target;
        Array.fill sh.table 0 (sh.mask + 1) (-1);
        for idx = 0 to target - 1 do
          let i = ref ((sh.hashes.(idx) lsr shard_bits) land sh.mask) in
          while sh.table.(!i) >= 0 do
            i := (!i + 1) land sh.mask
          done;
          sh.table.(!i) <- idx
        done
      end)
    counts

(* [handles_at_depth t d] lists the states of BFS depth [d] in (shard,
   local index) order — exactly the canonical frontier order produced by
   the engine's shard-ordered merge, so a frontier reconstructed from a
   restored arena is byte-identical to the one the live engine held. *)
let handles_at_depth t d =
  let n = ref 0 in
  Array.iter
    (fun sh ->
      for idx = 0 to sh.count - 1 do
        if sh.depths.(idx) = d then incr n
      done)
    t.shards;
  let out = Array.make !n 0 in
  let pos = ref 0 in
  Array.iteri
    (fun s sh ->
      for idx = 0 to sh.count - 1 do
        if sh.depths.(idx) = d then begin
          out.(!pos) <- handle ~shard:s ~index:idx;
          incr pos
        end
      done)
    t.shards;
  out

let max_depth t =
  let d = ref (-1) in
  Array.iter
    (fun sh ->
      for idx = 0 to sh.count - 1 do
        if sh.depths.(idx) > !d then d := sh.depths.(idx)
      done)
    t.shards;
  !d

(* [restore_shard] rebuilds one shard from serialized columns.  Hashes,
   signatures and the probe table are {e recomputed} from the key bytes —
   they are pure functions of the keys, so a snapshot only carries keys,
   depths, vias and parents, and a restored store is bit-for-bit the
   store the engine would have built (capacities aside, which are not
   observable).  Every key is re-validated to hash into this shard; a
   corrupted key almost surely fails that check even before the CRC. *)
let restore_shard t ~shard ~count ~keys ~depths ~vias ~parents ~conjs =
  let sh = t.shards.(shard) in
  if sh.count <> 0 then invalid_arg "State_arena.restore_shard: shard not empty";
  if count < 0 then invalid_arg "State_arena.restore_shard: negative count";
  if Bytes.length keys <> count * t.degree then
    invalid_arg "State_arena.restore_shard: key bytes do not match count";
  if
    Array.length depths <> count
    || Array.length vias <> count
    || Array.length parents <> count
    || Bytes.length conjs <> count
  then invalid_arg "State_arena.restore_shard: column lengths do not match count";
  let cap = ref (Array.length sh.depths) in
  while !cap < count do
    cap := 2 * !cap
  done;
  if !cap > Array.length sh.depths then begin
    let cap' = !cap in
    sh.depths <- Array.make cap' 0;
    sh.vias <- Array.make cap' 0;
    sh.parents <- Array.make cap' 0;
    sh.sigs <- Array.make cap' 0;
    sh.hashes <- Array.make cap' 0;
    sh.conjs <- Bytes.make cap' '\000';
    sh.arena <- Bytes.create (cap' * t.degree)
  end;
  (* keep the load factor under 3/4, as try_insert does *)
  let slots = ref (sh.mask + 1) in
  while 4 * count > 3 * !slots do
    slots := 2 * !slots
  done;
  if !slots > sh.mask + 1 then begin
    sh.table <- Array.make !slots (-1);
    sh.mask <- !slots - 1
  end;
  Bytes.blit keys 0 sh.arena 0 (count * t.degree);
  Bytes.blit conjs 0 sh.conjs 0 count;
  Array.blit depths 0 sh.depths 0 count;
  Array.blit vias 0 sh.vias 0 count;
  Array.blit parents 0 sh.parents 0 count;
  for idx = 0 to count - 1 do
    let off = idx * t.degree in
    for i = off to off + t.degree - 1 do
      if Char.code (Bytes.get keys i) >= Array.length t.signatures then
        invalid_arg "State_arena.restore_shard: key byte outside the encoding"
    done;
    let hash = hash_key keys ~off ~len:t.degree in
    if shard_of_hash hash <> shard then
      invalid_arg "State_arena.restore_shard: key does not belong to this shard";
    sh.hashes.(idx) <- hash;
    let sg = ref 0 in
    for i = 0 to t.num_binary - 1 do
      sg := !sg lor t.signatures.(Char.code (Bytes.get keys (off + i)))
    done;
    sh.sigs.(idx) <- !sg;
    let i = ref ((hash lsr shard_bits) land sh.mask) in
    let dup = ref false in
    while sh.table.(!i) >= 0 do
      let prev = sh.table.(!i) in
      if sh.hashes.(prev) = hash && key_equal sh.arena (prev * t.degree) keys off t.degree
      then dup := true;
      i := (!i + 1) land sh.mask
    done;
    if !dup then invalid_arg "State_arena.restore_shard: duplicate key";
    sh.table.(!i) <- idx
  done;
  sh.count <- count

let try_insert ?(conj = 0) t ~key ~off ~hash ~depth ~via ~parent =
  let s = shard_of_hash hash in
  let sh = t.shards.(s) in
  let slot = probe t sh key ~off ~hash in
  if sh.table.(slot) >= 0 then -1
  else begin
    let idx = sh.count in
    if idx = Array.length sh.depths then grow_states t sh;
    Bytes.blit key off sh.arena (idx * t.degree) t.degree;
    sh.depths.(idx) <- depth;
    sh.vias.(idx) <- via;
    sh.parents.(idx) <- parent;
    sh.hashes.(idx) <- hash;
    Bytes.unsafe_set sh.conjs idx (Char.unsafe_chr conj);
    let sg = ref 0 in
    for i = 0 to t.num_binary - 1 do
      sg := !sg lor t.signatures.(Char.code (Bytes.unsafe_get key (off + i)))
    done;
    sh.sigs.(idx) <- !sg;
    sh.table.(slot) <- idx;
    sh.count <- idx + 1;
    (* keep the load factor under 3/4 *)
    if 4 * sh.count > 3 * (sh.mask + 1) then grow_table sh;
    handle ~shard:s ~index:idx
  end
