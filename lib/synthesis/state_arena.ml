let shard_bits = 6
let num_shards = 1 lsl shard_bits

type shard = {
  mutable arena : Bytes.t; (* count * degree key bytes, then slack *)
  mutable depths : int array;
  mutable vias : int array;
  mutable parents : int array;
  mutable sigs : int array;
  mutable hashes : int array;
  mutable count : int;
  mutable table : int array; (* open addressing: -1 empty, else local index *)
  mutable mask : int; (* table capacity - 1, a power of two minus one *)
}

type t = {
  degree : int;
  num_binary : int;
  signatures : int array;
  shards : shard array;
}

let initial_slots = 256
let initial_states = 64

let make_shard degree =
  {
    arena = Bytes.create (initial_states * degree);
    depths = Array.make initial_states 0;
    vias = Array.make initial_states 0;
    parents = Array.make initial_states 0;
    sigs = Array.make initial_states 0;
    hashes = Array.make initial_states 0;
    count = 0;
    table = Array.make initial_slots (-1);
    mask = initial_slots - 1;
  }

let create ~degree ~num_binary ~signatures =
  { degree; num_binary; signatures; shards = Array.init num_shards (fun _ -> make_shard degree) }

let degree t = t.degree

let size t =
  let n = ref 0 in
  Array.iter (fun s -> n := !n + s.count) t.shards;
  !n

let arena_bytes t =
  let n = ref 0 in
  Array.iter (fun s -> n := !n + Bytes.length s.arena) t.shards;
  !n

let table_capacity t =
  let n = ref 0 in
  Array.iter (fun s -> n := !n + s.mask + 1) t.shards;
  !n

(* A multiplicative byte hash with a final avalanche; keys are short
   permutation vectors, so quality matters mostly in the low (shard) and
   middle (slot) bits. *)
let hash_key b ~off ~len =
  let h = ref 0 in
  for i = off to off + len - 1 do
    h := (!h * 131) + Char.code (Bytes.unsafe_get b i)
  done;
  let h = !h in
  let h = h lxor (h lsr 23) in
  let h = h * 0x2545F4914F6CDD1 in
  let h = h lxor (h lsr 29) in
  h land max_int

let shard_of_hash h = h land (num_shards - 1)
let shard_of_handle h = h land (num_shards - 1)
let index_of_handle h = h asr shard_bits
let handle ~shard ~index = (index lsl shard_bits) lor shard
let shard_arena t s = t.shards.(s).arena
let key_offset t h = index_of_handle h * t.degree

let key_of t h =
  let s = t.shards.(shard_of_handle h) in
  Bytes.sub_string s.arena (index_of_handle h * t.degree) t.degree

let depth_of t h = t.shards.(shard_of_handle h).depths.(index_of_handle h)
let via_of t h = t.shards.(shard_of_handle h).vias.(index_of_handle h)
let parent_of t h = t.shards.(shard_of_handle h).parents.(index_of_handle h)
let signature_of t h = t.shards.(shard_of_handle h).sigs.(index_of_handle h)

let key_equal arena aoff key koff degree =
  let rec go i =
    i >= degree
    || Char.equal (Bytes.unsafe_get arena (aoff + i)) (Bytes.unsafe_get key (koff + i))
       && go (i + 1)
  in
  go 0

(* Finds the slot holding an equal key, or the first empty slot; the
   caller inspects [table.(slot)] to tell the two apart.  Terminates
   because the load factor is kept under 3/4. *)
let probe t sh key ~off ~hash =
  let degree = t.degree in
  let mask = sh.mask in
  let i = ref ((hash lsr shard_bits) land mask) in
  let looking = ref true in
  while !looking do
    let idx = sh.table.(!i) in
    if idx < 0 then looking := false
    else if sh.hashes.(idx) = hash && key_equal sh.arena (idx * degree) key off degree
    then looking := false
    else i := (!i + 1) land mask
  done;
  !i

let find t key ~off ~hash =
  let s = shard_of_hash hash in
  let sh = t.shards.(s) in
  let idx = sh.table.(probe t sh key ~off ~hash) in
  if idx < 0 then -1 else handle ~shard:s ~index:idx

let grow_states t sh =
  let cap = Array.length sh.depths in
  let cap' = 2 * cap in
  let extend a =
    let a' = Array.make cap' 0 in
    Array.blit a 0 a' 0 cap;
    a'
  in
  sh.depths <- extend sh.depths;
  sh.vias <- extend sh.vias;
  sh.parents <- extend sh.parents;
  sh.sigs <- extend sh.sigs;
  sh.hashes <- extend sh.hashes;
  let arena' = Bytes.create (cap' * t.degree) in
  Bytes.blit sh.arena 0 arena' 0 (sh.count * t.degree);
  sh.arena <- arena'

let grow_table sh =
  let mask' = (2 * (sh.mask + 1)) - 1 in
  let table' = Array.make (mask' + 1) (-1) in
  for idx = 0 to sh.count - 1 do
    let i = ref ((sh.hashes.(idx) lsr shard_bits) land mask') in
    while table'.(!i) >= 0 do
      i := (!i + 1) land mask'
    done;
    table'.(!i) <- idx
  done;
  sh.table <- table';
  sh.mask <- mask'

let try_insert t ~key ~off ~hash ~depth ~via ~parent =
  let s = shard_of_hash hash in
  let sh = t.shards.(s) in
  let slot = probe t sh key ~off ~hash in
  if sh.table.(slot) >= 0 then -1
  else begin
    let idx = sh.count in
    if idx = Array.length sh.depths then grow_states t sh;
    Bytes.blit key off sh.arena (idx * t.degree) t.degree;
    sh.depths.(idx) <- depth;
    sh.vias.(idx) <- via;
    sh.parents.(idx) <- parent;
    sh.hashes.(idx) <- hash;
    let sg = ref 0 in
    for i = 0 to t.num_binary - 1 do
      sg := !sg lor t.signatures.(Char.code (Bytes.unsafe_get key (off + i)))
    done;
    sh.sigs.(idx) <- !sg;
    sh.table.(slot) <- idx;
    sh.count <- idx + 1;
    (* keep the load factor under 3/4 *)
    if 4 * sh.count > 3 * (sh.mask + 1) then grow_table sh;
    handle ~shard:s ~index:idx
  end
