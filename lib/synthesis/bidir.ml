open Reversible

let log_src = Logs.Src.create "qsynth.bidir" ~doc:"Meet-in-the-middle MCE"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_queries = Telemetry.Counter.create "bidir.queries"
let m_joins = Telemetry.Counter.create "bidir.joins"
let m_bwd_states = Telemetry.Counter.create "bidir.backward.states"
let g_fwd_depth = Telemetry.Gauge.create "bidir.forward.depth"
let g_bwd_depth = Telemetry.Gauge.create "bidir.backward.depth"
let h_query = Telemetry.Histogram.create "bidir.query.seconds"

(* Why the backward wave runs over image vectors, not circuit states.

   A forward state is a permutation of all encoding points, but whether a
   gate may legally follow it (Definition 1's reasonable-product test)
   and what binary function the composite finally computes depend only
   on the state's image of the binary block — [num_binary] bytes.  So
   for the purpose of completing a prefix into a realization of a target
   function, two prefixes with equal binary images are interchangeable,
   and the backward search can work in the (much smaller) quotient:
   vectors v with an edge v --g--> w when w[j] = perm_g(v[j]) and
   signature(v) land purity_mask(g) = 0 — the constraint sits on the
   vector the gate is applied at, exactly as in the forward engine.

   Exactness of the join.  Let Df be the deepest absorbed forward level
   and Db the deepest backward level.  Claim: every realization of cost
   t <= Df + Db has been discovered as a join of total <= t.  Take a
   minimal cascade g1..gt and split at a = max (0, t - Db); the prefix
   g1..ga is itself minimal (substituting a shorter realization of the
   same permutation would shorten the whole cascade — legality of the
   suffix only reads the binary image, which is preserved), so its state
   sits at forward depth a <= Df and its image vector is in the join
   index at depth <= a.  The suffix chain makes the vector
   backward-reachable at depth <= t - a <= Db.  Both sides probe the
   other on insertion, so the pair was recorded with total <= t.
   Conversely any recorded join of total c yields a valid cascade of
   length c (prefix from the BFS, suffix legality checked edge by edge),
   and trivially c <= Df + Db.  Hence the first join found is already
   optimal, and "no join with Df + Db >= max_cost" proves there is no
   realization within the bound.  An exhausted side counts as infinite
   reach: an exhausted forward wave contains every constructible
   circuit, and an exhausted backward wave contains every legal suffix
   chain into the target — either way all solutions join. *)

type t = {
  library : Library.t;
  search : Search.t; (* the shared forward wave, grown lazily *)
  nb : int;
  signatures : int array; (* mixed signature per encoding point *)
  inverse_arrays : int array array;
  purity_masks : int array;
  max_fwd_depth : int;
  images : (string, Search.handle) Hashtbl.t;
      (* binary image vector -> first (minimal-depth) forward state;
         first-writer-wins over levels absorbed in BFS order *)
  mutable fwd_exhausted : bool;
}

let absorb_handles t ?on_new handles =
  Array.iter
    (fun h ->
      let v = Search.binary_image_of_handle t.search h in
      if not (Hashtbl.mem t.images v) then begin
        Hashtbl.add t.images v h;
        match on_new with None -> () | Some f -> f v h
      end)
    handles

let create ?(jobs = 1) ?(max_fwd_depth = 7) library =
  if max_fwd_depth < 0 then invalid_arg "Bidir.create: negative max_fwd_depth";
  (* The forward half is always a raw engine: the meet-in-the-middle
     join keys on exact binary images (t.images) and replays via/parent
     chains for the prefix cascade, neither of which survives orbit
     canonicalization.  Bidir answers are therefore identical whether or
     not the rest of the pipeline runs under --quotient. *)
  let search = Search.create ~jobs library in
  let encoding = Library.encoding library in
  let degree = Mvl.Encoding.size encoding in
  let entries = Library.entries library in
  let t =
    {
      library;
      search;
      nb = Mvl.Encoding.num_binary encoding;
      signatures = Array.init degree (Mvl.Encoding.mixed_signature encoding);
      inverse_arrays = Array.map (fun e -> e.Library.inverse_array) entries;
      purity_masks = Array.map (fun e -> e.Library.purity_mask) entries;
      max_fwd_depth;
      images = Hashtbl.create (1 lsl 12);
      fwd_exhausted = false;
    }
  in
  absorb_handles t (Search.handles_at_depth search 0);
  t

let of_search ?max_fwd_depth search =
  if Search.symmetry search <> None then
    invalid_arg
      "Bidir.of_search: quotiented search (orbit keys carry no image vectors)";
  let max_fwd_depth =
    match max_fwd_depth with Some d -> d | None -> Search.depth search
  in
  if max_fwd_depth < 0 then invalid_arg "Bidir.of_search: negative max_fwd_depth";
  let library = Search.library search in
  let encoding = Library.encoding library in
  let degree = Mvl.Encoding.size encoding in
  let entries = Library.entries library in
  let t =
    {
      library;
      search;
      nb = Mvl.Encoding.num_binary encoding;
      signatures = Array.init degree (Mvl.Encoding.mixed_signature encoding);
      inverse_arrays = Array.map (fun e -> e.Library.inverse_array) entries;
      purity_masks = Array.map (fun e -> e.Library.purity_mask) entries;
      max_fwd_depth;
      images = Hashtbl.create (1 lsl 12);
      fwd_exhausted = false;
    }
  in
  (* Absorbing levels in BFS order reproduces exactly the images table a
     [create]-then-[warm] context would hold at the same depth:
     first-writer-wins per vector = minimal forward depth per vector. *)
  for d = 0 to Search.depth search do
    absorb_handles t (Search.handles_at_depth search d)
  done;
  t

let library t = t.library
let fwd_depth t = Search.depth t.search
let fwd_states t = Search.size t.search

let rec warm ?(should_stop = fun () -> false) t ~depth =
  if depth < 0 then invalid_arg "Bidir.warm: negative depth";
  let goal = min depth t.max_fwd_depth in
  if (not t.fwd_exhausted) && Search.depth t.search < goal then
    match Search.try_step t.search ~cancel:should_stop with
    | None -> () (* cancelled: leave the wave at its current depth *)
    | Some fresh ->
        if Array.length fresh = 0 then t.fwd_exhausted <- true
        else absorb_handles t fresh;
        warm ~should_stop t ~depth

exception Cancelled

(* Backward states, stored in parallel growable columns: the image
   vector, the gate that leads forward out of it, the successor id, and
   the depth (suffix length to the target).  Ids are insertion order. *)
type bwd = {
  mutable vec : string array;
  mutable via : int array;
  mutable next : int array; (* successor state id, -1 at the target root *)
  mutable dep : int array;
  mutable len : int;
  seen : (string, int) Hashtbl.t; (* vector -> id *)
}

let bwd_create root =
  let b =
    {
      vec = Array.make 256 root;
      via = Array.make 256 (-1);
      next = Array.make 256 (-1);
      dep = Array.make 256 0;
      len = 1;
      seen = Hashtbl.create 1024;
    }
  in
  Hashtbl.add b.seen root 0;
  b

let bwd_push b v ~via ~next ~dep =
  if b.len = Array.length b.vec then begin
    let grow a fill =
      let a' = Array.make (2 * b.len) fill in
      Array.blit a 0 a' 0 b.len;
      a'
    in
    b.vec <- grow b.vec v;
    b.via <- grow b.via 0;
    b.next <- grow b.next 0;
    b.dep <- grow b.dep 0
  end;
  let id = b.len in
  b.vec.(id) <- v;
  b.via.(id) <- via;
  b.next.(id) <- next;
  b.dep.(id) <- dep;
  b.len <- id + 1;
  Hashtbl.add b.seen v id;
  id

(* The forward-order gate suffix recorded by a backward state: its own
   via gate (applied at its vector), then its successor's, up to the
   target root. *)
let bwd_suffix entries b id =
  let rec walk id acc =
    let g = b.via.(id) in
    if g < 0 then List.rev acc else walk b.next.(id) (entries.(g).Library.gate :: acc)
  in
  walk id []

type outcome = {
  cascade : Cascade.t;
  cost : int;
  fwd_depth : int;
  bwd_depth : int;
  bwd_states : int;
}

let no_stop () = false
let infinite = max_int asr 2

let synthesize ?(max_cost = 14) ?(lower_bound = 0) ?(should_stop = no_stop) t remainder
    =
  if Revfun.bits remainder <> Library.qubits t.library then
    invalid_arg "Bidir.synthesize: target bit width does not match the library";
  if not (Revfun.fixes_zero remainder) then
    invalid_arg "Bidir.synthesize: target must fix zero (strip the NOT layer first)";
  if max_cost < 0 then invalid_arg "Bidir.synthesize: negative max_cost";
  Telemetry.Counter.incr m_queries;
  Telemetry.Histogram.time h_query @@ fun () ->
  Telemetry.Span.with_span "bidir.query"
    ~attrs:[ ("max_cost", Telemetry.Json.Int max_cost) ]
  @@ fun () ->
  let nb = t.nb in
  let entries = Library.entries t.library in
  let ngates = Array.length t.purity_masks in
  let target = String.init nb (fun j -> Char.chr (Revfun.apply remainder j)) in
  let bwd = bwd_create target in
  let bwd_depth = ref 0 in
  let bwd_frontier = ref [ 0 ] in
  (* best join so far: (total cost, forward handle, backward id) *)
  let best = ref None in
  let consider fh bid =
    Telemetry.Counter.incr m_joins;
    let total = Search.depth_of_handle t.search fh + bwd.dep.(bid) in
    match !best with
    | Some (c, _, _) when c <= total -> ()
    | _ -> best := Some (total, fh, bid)
  in
  let probe_backward v fh =
    match Hashtbl.find_opt bwd.seen v with Some bid -> consider fh bid | None -> ()
  in
  (* seed: the target vector may already be a forward image (warm reuse
     answers any cost <= Df query with a single lookup here) *)
  (match Hashtbl.find_opt t.images target with
  | Some fh -> consider fh 0
  | None -> ());
  let grow_forward () =
    match Search.try_step t.search ~cancel:should_stop with
    | None -> raise Cancelled
    | Some fresh ->
        if Array.length fresh = 0 then t.fwd_exhausted <- true
        else absorb_handles t ~on_new:(fun v fh -> probe_backward v fh) fresh
  in
  let scratch = Bytes.create nb in
  let grow_backward () =
    let d = !bwd_depth + 1 in
    let next = ref [] in
    List.iter
      (fun id ->
        if should_stop () then raise Cancelled;
        let w = bwd.vec.(id) in
        for g = 0 to ngates - 1 do
          let inv = t.inverse_arrays.(g) in
          let sg = ref 0 in
          for j = 0 to nb - 1 do
            let p = Array.unsafe_get inv (Char.code (String.unsafe_get w j)) in
            Bytes.unsafe_set scratch j (Char.unsafe_chr p);
            sg := !sg lor Array.unsafe_get t.signatures p
          done;
          if !sg land t.purity_masks.(g) = 0 then begin
            let v = Bytes.to_string scratch in
            if not (Hashtbl.mem bwd.seen v) then begin
              let vid = bwd_push bwd v ~via:g ~next:id ~dep:d in
              (match Hashtbl.find_opt t.images v with
              | Some fh -> consider fh vid
              | None -> ());
              next := vid :: !next
            end
          end
        done)
      !bwd_frontier;
    bwd_frontier := List.rev !next;
    bwd_depth := d
  in
  let reach () =
    (if t.fwd_exhausted then infinite else Search.depth t.search)
    + if !bwd_frontier = [] then infinite else !bwd_depth
  in
  let answered () =
    match !best with
    | Some (c, _, _) -> c <= reach () || c <= lower_bound
    | None -> reach () >= max_cost
  in
  (try
     while not (answered ()) do
       if should_stop () then raise Cancelled;
       let can_fwd =
         (not t.fwd_exhausted) && Search.depth t.search < t.max_fwd_depth
       in
       let can_bwd = !bwd_frontier <> [] in
       if not (can_fwd || can_bwd) then raise Exit
       else if
         (* grow the side whose next level looks cheaper *)
         can_fwd
         && ((not can_bwd)
            || Array.length (Search.frontier_handles t.search)
               <= List.length !bwd_frontier)
       then grow_forward ()
       else grow_backward ()
     done
   with
  | Exit -> ()
  | Cancelled ->
      Log.info (fun m ->
          m "query cancelled at forward depth %d, backward depth %d"
            (Search.depth t.search) !bwd_depth);
      best := None);
  Telemetry.Counter.add m_bwd_states bwd.len;
  Telemetry.Gauge.set_int g_fwd_depth (Search.depth t.search);
  Telemetry.Gauge.set_int g_bwd_depth !bwd_depth;
  if Telemetry.enabled () then begin
    Telemetry.Span.set_attr "fwd_depth" (Telemetry.Json.Int (Search.depth t.search));
    Telemetry.Span.set_attr "bwd_depth" (Telemetry.Json.Int !bwd_depth);
    Telemetry.Span.set_attr "bwd_states" (Telemetry.Json.Int bwd.len)
  end;
  match !best with
  | Some (cost, fh, bid) when cost <= max_cost ->
      let cascade = Search.cascade_of_handle t.search fh @ bwd_suffix entries bwd bid in
      Telemetry.Span.set_attr "cost" (Telemetry.Json.Int cost);
      Log.info (fun m ->
          m "join at cost %d (forward %d + backward %d; %d backward states)" cost
            (Search.depth_of_handle t.search fh)
            bwd.dep.(bid) bwd.len);
      Some
        {
          cascade;
          cost;
          fwd_depth = Search.depth t.search;
          bwd_depth = !bwd_depth;
          bwd_states = bwd.len;
        }
  | Some _ | None -> None
