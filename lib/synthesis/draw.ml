let cell_width = 6

let centered text =
  let pad = cell_width - String.length text in
  let left = pad / 2 in
  String.init cell_width (fun i ->
      if i >= left && i < left + String.length text then text.[i - left] else '-')

let plain = String.make cell_width '-'
let crossing = centered "|"

let gate_cell gate wire =
  if wire = Gate.target gate then
    match Gate.kind gate with
    | Gate.Controlled_v -> centered "[V]"
    | Gate.Controlled_v_dag -> centered "[V+]"
    | Gate.Feynman | Gate.Toffoli -> centered "(+)"
    | Gate.Not -> centered "[N]"
    | Gate.Swap | Gate.Fredkin -> centered "x"
  else if wire = Gate.control gate then
    match Gate.kind gate with
    | Gate.Swap -> centered "x"
    | _ -> centered "*"
  else if wire = Gate.control2 gate then
    match Gate.kind gate with
    | Gate.Fredkin -> centered "x"
    | _ -> centered "*"
  else
    let touched = Gate.wires gate in
    let low = List.fold_left min max_int touched in
    let high = List.fold_left max (-1) touched in
    if wire > low && wire < high then crossing else plain

let default_labels qubits =
  List.init qubits (fun w -> String.make 1 (Char.chr (Char.code 'A' + w)))

let to_ascii ~qubits ?(not_mask = 0) ?labels cascade =
  let labels = match labels with Some l -> l | None -> default_labels qubits in
  if List.length labels <> qubits then invalid_arg "Draw.to_ascii: label count";
  (* [not_mask] is a code mask as in [Mce.result]: wire 0 is the most
     significant bit. *)
  let not_column wire =
    if not_mask = 0 then ""
    else if (not_mask lsr (qubits - 1 - wire)) land 1 = 1 then centered "[N]"
    else plain
  in
  let row wire label =
    label ^ ": " ^ not_column wire
    ^ String.concat "" (List.map (fun g -> gate_cell g wire) cascade)
  in
  let width = List.fold_left (fun acc l -> max acc (String.length l)) 0 labels in
  let padded = List.map (fun l -> l ^ String.make (width - String.length l) ' ') labels in
  String.concat "\n" (List.mapi row padded)

let pp ~qubits ppf cascade =
  Format.pp_print_string ppf (to_ascii ~qubits cascade)
