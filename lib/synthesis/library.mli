(** A gate library compiled against a pattern encoding.

    Pre-computes, per gate: its permutation of the encoding's points and
    the purity mask implementing the paper's banned sets (a gate may
    follow a circuit [f] iff the image f(S) of the binary block contains
    no pattern that is mixed on one of the gate's purity wires — the
    "reasonable product" condition of Definition 1). *)

type entry = private {
  gate : Gate.t;
  perm : Permgroup.Perm.t;        (** action on the encoding's points *)
  perm_array : int array;          (** same, as a raw image array (hot path) *)
  inverse_array : int array;       (** inverse image array, pre-computed once
                                       at compile time so backward walks
                                       ([Search.all_cascades]) never invert
                                       permutations per node *)
  purity_mask : int;               (** wires that must stay pure, as bits *)
}

type t

(** [make ?gates encoding] compiles a library; [gates] defaults to
    {!Gate.all} for the encoding's width.
    @raise Invalid_argument if a gate mentions a wire outside the
    encoding. *)
val make : ?gates:Gate.t list -> Mvl.Encoding.t -> t

val encoding : t -> Mvl.Encoding.t
val entries : t -> entry array
val qubits : t -> int

(** [size t] is the number of gates. *)
val size : t -> int

(** [entry_of_gate t g] finds the entry of a gate.
    @raise Not_found when the gate is not in the library. *)
val entry_of_gate : t -> Gate.t -> entry

(** [perm_of_gate t g] is the gate's point permutation.
    @raise Not_found when the gate is not in the library. *)
val perm_of_gate : t -> Gate.t -> Permgroup.Perm.t

(** [signature_allows ~signature entry] decides the reasonable-product
    condition given the OR of mixed signatures over the current binary
    block image. *)
val signature_allows : signature:int -> entry -> bool

(** [banned_set t g] is the paper's banned set for gate [g]: the points
    (0-based) whose pattern is mixed on one of [g]'s purity wires.
    Adding 1 to each reproduces the paper's N_A .. N_BC verbatim. *)
val banned_set : t -> Gate.t -> int list

(** [feynman_only t] is the sub-library of Feynman gates (used for the
    linear-circuit classification of the paper's Section 5). *)
val feynman_only : t -> t

(** [unconstrained t] is the same library with every purity mask cleared:
    the reasonable-product constraint of Definition 1 is disabled, so any
    gate can follow any circuit.  {e This makes the search unsound} — it
    finds multiple-valued permutations whose cascades do not implement
    the claimed function as unitaries — and exists purely as the ablation
    that demonstrates why the paper needs the banned sets. *)
val unconstrained : t -> t
