(** A gate library compiled against a pattern encoding.

    Pre-computes, per gate: its permutation of the encoding's points and
    the purity mask implementing the paper's banned sets (a gate may
    follow a circuit [f] iff the image f(S) of the binary block contains
    no pattern that is mixed on one of the gate's purity wires — the
    "reasonable product" condition of Definition 1).

    A library is a first-class census universe: it carries a {e name}
    (resolved through {!Registry}), its encoding, its compiled gates and
    a [coset_reduction] flag saying whether the paper's Theorem-2 free
    NOT-layer trick applies.  Everything downstream — census, synthesis,
    spectra, checkpoints, indexes, the serve daemon — threads the library
    value rather than assuming the paper's 18 gates. *)

type entry = private {
  gate : Gate.t;
  perm : Permgroup.Perm.t;        (** action on the encoding's points *)
  perm_array : int array;          (** same, as a raw image array (hot path) *)
  inverse_array : int array;       (** inverse image array, pre-computed once
                                       at compile time so backward walks
                                       ([Search.all_cascades]) never invert
                                       permutations per node *)
  purity_mask : int;               (** wires that must stay pure, as bits *)
}

type t

(** The name of the default (paper) library: ["paper18"]. *)
val default_name : string

(** [make ?name ?coset_reduction ?gates encoding] compiles a library;
    [gates] defaults to {!Gate.all} for the encoding's width, [name] to
    {!default_name} and [coset_reduction] to [true] (the paper's
    configuration).  Gate lookup ({!entry_of_gate}) is backed by a hash
    table built here, so replay paths pay O(1) per gate.
    @raise Invalid_argument if a gate mentions a wire outside the
    encoding, or acts outside the encoding's pattern domain (e.g. a bare
    NOT on the mixed encoding). *)
val make : ?name:string -> ?coset_reduction:bool -> ?gates:Gate.t list ->
  Mvl.Encoding.t -> t

(** [of_name ?qubits n] instantiates the registered library called [n]
    ([qubits] defaults to 3).
    @raise Invalid_argument for names outside {!Registry.names}. *)
val of_name : ?qubits:int -> string -> t

(** [name t] is the library's registry name (e.g. ["paper18"], ["nft"]). *)
val name : t -> string

(** [coset_reduction t] says whether the free-NOT-layer coset reduction of
    the paper's Theorem 2 is sound for this library: every gate fixes the
    zero pattern and NOT layers are free, so censuses enumerate the
    zero-fixing subgroup and scale counts by [2^n].  Classical libraries
    that price NOT gates (NCT, NFT) set this [false] and census the full
    symmetric group directly. *)
val coset_reduction : t -> bool

val encoding : t -> Mvl.Encoding.t
val entries : t -> entry array
val qubits : t -> int

(** [size t] is the number of gates. *)
val size : t -> int

(** [entry_of_gate t g] finds the entry of a gate — O(1) hash lookup.
    @raise Not_found when the gate is not in the library. *)
val entry_of_gate : t -> Gate.t -> entry

(** [perm_of_gate t g] is the gate's point permutation.
    @raise Not_found when the gate is not in the library. *)
val perm_of_gate : t -> Gate.t -> Permgroup.Perm.t

(** [signature_allows ~signature entry] decides the reasonable-product
    condition given the OR of mixed signatures over the current binary
    block image. *)
val signature_allows : signature:int -> entry -> bool

(** [banned_set t g] is the paper's banned set for gate [g]: the points
    (0-based) whose pattern is mixed on one of [g]'s purity wires.
    Adding 1 to each reproduces the paper's N_A .. N_BC verbatim. *)
val banned_set : t -> Gate.t -> int list

(** [feynman_only t] is the sub-library of Feynman gates (used for the
    linear-circuit classification of the paper's Section 5). *)
val feynman_only : t -> t

(** [unconstrained t] is the same library with every purity mask cleared:
    the reasonable-product constraint of Definition 1 is disabled, so any
    gate can follow any circuit.  {e This makes the search unsound} — it
    finds multiple-valued permutations whose cascades do not implement
    the claimed function as unitaries — and exists purely as the ablation
    that demonstrates why the paper needs the banned sets. *)
val unconstrained : t -> t

(** Named census universes.

    A descriptor bundles everything a universe needs — gate set, pattern
    encoding, purity semantics (via the gates), and whether coset
    reduction applies — behind a stable name that flows through CLI
    flags, request JSON, census headers and error messages.  Checkpoint
    and index files additionally pin the {e structural} fingerprint
    ({!Checkpoint.fingerprint}), so renames cannot silently repoint
    on-disk artifacts at a different universe. *)
module Registry : sig
  type descriptor

  val name : descriptor -> string

  (** One-line human description shown by [qsynth libraries]. *)
  val summary : descriptor -> string

  val coset_reduction : descriptor -> bool

  (** The paper's CV/CV{^ +}/CNOT library — the default. *)
  val paper18 : descriptor

  (** NOT + CNOT + Toffoli on the binary encoding (Shende et al.). *)
  val nct : descriptor

  (** Younes's NFT library (arXiv:1304.5804): NCT plus SWAP and Fredkin. *)
  val nft : descriptor

  (** Every registered descriptor, [paper18] first. *)
  val all : descriptor list

  (** Registered names, in {!all} order. *)
  val names : string list

  val find : string -> descriptor option

  (** [instantiate ?qubits d] compiles the descriptor's library
      ([qubits] defaults to 3). *)
  val instantiate : ?qubits:int -> descriptor -> t
end
