open Permgroup

let log_src = Logs.Src.create "qsynth.search" ~doc:"BFS search engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_states_new = Telemetry.Counter.create "search.states.new"
let m_states_dup = Telemetry.Counter.create "search.states.duplicate"
let m_sig_rejected = Telemetry.Counter.create "search.expansions.signature_rejected"
let g_frontier = Telemetry.Gauge.create "search.frontier.size"
let g_table_size = Telemetry.Gauge.create "search.table.size"
let g_table_load = Telemetry.Gauge.create "search.table.load"
let h_step = Telemetry.Histogram.create "search.step.seconds"

type node = { depth : int; via : int; parent : string }
(* [via] is the library entry index of the last gate, -1 at the root. *)

type t = {
  library : Library.t;
  signatures : int array; (* mixed signature per point *)
  num_binary : int;
  degree : int;
  table : (string, node) Hashtbl.t;
  mutable frontier : string list;
  mutable depth : int;
}

let identity_key degree = String.init degree Char.chr

let create library =
  let encoding = Library.encoding library in
  let degree = Mvl.Encoding.size encoding in
  if degree > 255 then invalid_arg "Search.create: encoding too large for byte keys";
  let table = Hashtbl.create (1 lsl 16) in
  let root = identity_key degree in
  Hashtbl.add table root { depth = 0; via = -1; parent = "" };
  {
    library;
    signatures = Array.init degree (Mvl.Encoding.mixed_signature encoding);
    num_binary = Mvl.Encoding.num_binary encoding;
    degree;
    table;
    frontier = [ root ];
    depth = 0;
  }

let library t = t.library
let depth t = t.depth
let size t = Hashtbl.length t.table
let frontier t = t.frontier

let image_signature t key =
  let s = ref 0 in
  for i = 0 to t.num_binary - 1 do
    s := !s lor t.signatures.(Char.code (String.unsafe_get key i))
  done;
  !s

let compose_key t key perm_array =
  let child = Bytes.create t.degree in
  for i = 0 to t.degree - 1 do
    Bytes.unsafe_set child i
      (Char.unsafe_chr perm_array.(Char.code (String.unsafe_get key i)))
  done;
  Bytes.unsafe_to_string child

let step t =
  Telemetry.Histogram.time h_step @@ fun () ->
  Telemetry.Span.with_span "search.step" @@ fun () ->
  let entries = Library.entries t.library in
  let next_depth = t.depth + 1 in
  let next = ref [] in
  let fresh = ref 0 and dup = ref 0 and rejected = ref 0 in
  List.iter
    (fun key ->
      let signature = image_signature t key in
      Array.iteri
        (fun via entry ->
          if Library.signature_allows ~signature entry then begin
            let child = compose_key t key entry.Library.perm_array in
            if not (Hashtbl.mem t.table child) then begin
              Hashtbl.add t.table child { depth = next_depth; via; parent = key };
              next := child :: !next;
              incr fresh
            end
            else incr dup
          end
          else incr rejected)
        entries)
    t.frontier;
  t.frontier <- !next;
  t.depth <- next_depth;
  Telemetry.Counter.add m_states_new !fresh;
  Telemetry.Counter.add m_states_dup !dup;
  Telemetry.Counter.add m_sig_rejected !rejected;
  Telemetry.Gauge.set_int g_frontier !fresh;
  Telemetry.Gauge.set_int g_table_size (Hashtbl.length t.table);
  if Telemetry.enabled () then begin
    let stats = Hashtbl.stats t.table in
    Telemetry.Gauge.set g_table_load
      (float_of_int stats.Hashtbl.num_bindings
      /. float_of_int (max 1 stats.Hashtbl.num_buckets));
    Telemetry.Span.set_attr "level" (Telemetry.Json.Int next_depth);
    Telemetry.Span.set_attr "new" (Telemetry.Json.Int !fresh);
    Telemetry.Span.set_attr "duplicate" (Telemetry.Json.Int !dup);
    Telemetry.Span.set_attr "signature_rejected" (Telemetry.Json.Int !rejected)
  end;
  Log.debug (fun m ->
      m "level %d: %d new states (%d duplicate, %d rejected), %d total" next_depth
        !fresh !dup !rejected (Hashtbl.length t.table));
  !next

let probe_restrictions t ~steps =
  if steps < 1 || steps > 2 then invalid_arg "Search.probe_restrictions: steps in {1,2}";
  Telemetry.Span.with_span "search.probe"
    ~attrs:[ ("steps", Telemetry.Json.Int steps) ]
  @@ fun () ->
  let entries = Library.entries t.library in
  let nb = t.num_binary in
  let found = Hashtbl.create (1 lsl 12) in
  (* Track only the binary-block image vector; that is all the signature
     test, the next gate application, and the restriction key need. *)
  let images = Array.make nb 0 in
  let scratch = Array.make nb 0 in
  let signature_of block =
    let s = ref 0 in
    for i = 0 to nb - 1 do
      s := !s lor t.signatures.(block.(i))
    done;
    !s
  in
  let record block =
    let rec binary i = i >= nb || (block.(i) < nb && binary (i + 1)) in
    if binary 0 then begin
      let key = String.init nb (fun i -> Char.chr block.(i)) in
      if not (Hashtbl.mem found key) then Hashtbl.add found key ()
    end
  in
  List.iter
    (fun key ->
      let signature = image_signature t key in
      Array.iter
        (fun entry ->
          if Library.signature_allows ~signature entry then begin
            let pa = entry.Library.perm_array in
            for i = 0 to nb - 1 do
              images.(i) <- pa.(Char.code (String.unsafe_get key i))
            done;
            if steps = 1 then record images
            else begin
              let signature2 = signature_of images in
              Array.iter
                (fun entry2 ->
                  if Library.signature_allows ~signature:signature2 entry2 then begin
                    let pa2 = entry2.Library.perm_array in
                    for i = 0 to nb - 1 do
                      scratch.(i) <- pa2.(images.(i))
                    done;
                    record scratch
                  end)
                entries
            end
          end)
        entries)
    t.frontier;
  found

let perm_of_key key =
  Perm.unsafe_of_array (Array.init (String.length key) (fun i -> Char.code key.[i]))

let restriction_of_key t key =
  let nb = t.num_binary in
  let rec binary_block i = i >= nb || (Char.code key.[i] < nb && binary_block (i + 1)) in
  if binary_block 0 then
    let perm = Perm.unsafe_of_array (Array.init nb (fun i -> Char.code key.[i])) in
    Some (Reversible.Revfun.of_perm ~bits:(Library.qubits t.library) perm)
  else None

let depth_of_key t key =
  match Hashtbl.find_opt t.table key with Some n -> Some n.depth | None -> None

let cascade_of_key t key =
  let entries = Library.entries t.library in
  let rec walk key acc =
    match Hashtbl.find_opt t.table key with
    | None -> invalid_arg "Search.cascade_of_key: unknown key"
    | Some node ->
        if node.via < 0 then acc
        else walk node.parent (entries.(node.via).Library.gate :: acc)
  in
  walk key []

let all_cascades ?(limit = 10_000) t key =
  let entries = Library.entries t.library in
  let results = ref [] and count = ref 0 in
  let exception Done in
  (* Walk every minimal parent chain: a valid parent sits one level up and
     its binary-block image admits the connecting gate. *)
  let rec walk key depth suffix =
    if !count >= limit then raise Done;
    if depth = 0 then begin
      results := suffix :: !results;
      incr count
    end
    else
      Array.iter
        (fun entry ->
          let inverse = Perm.to_array (Perm.inverse entry.Library.perm) in
          let parent = compose_key t key inverse in
          match Hashtbl.find_opt t.table parent with
          | Some node when node.depth = depth - 1 ->
              let signature = image_signature t parent in
              if Library.signature_allows ~signature entry then
                walk parent (depth - 1) (entry.Library.gate :: suffix)
          | Some _ | None -> ())
        entries
  in
  (match Hashtbl.find_opt t.table key with
  | None -> invalid_arg "Search.all_cascades: unknown key"
  | Some node -> ( try walk key node.depth [] with Done -> ()));
  !results
