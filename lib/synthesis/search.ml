open Permgroup

let log_src = Logs.Src.create "qsynth.search" ~doc:"BFS search engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_states_new = Telemetry.Counter.create "search.states.new"
let m_states_dup = Telemetry.Counter.create "search.states.duplicate"
let m_sig_rejected = Telemetry.Counter.create "search.expansions.signature_rejected"
let g_frontier = Telemetry.Gauge.create "search.frontier.size"
let g_table_size = Telemetry.Gauge.create "search.table.size"
let g_table_load = Telemetry.Gauge.create "search.table.load"
let g_jobs = Telemetry.Gauge.create "search.jobs"
let g_jobs_eff = Telemetry.Gauge.create "search.jobs.effective"
let g_arena = Telemetry.Gauge.create "search.arena.bytes"
let h_step = Telemetry.Histogram.create "search.step.seconds"
let h_expand = Telemetry.Histogram.create "search.step.expand.seconds"
let h_merge = Telemetry.Histogram.create "search.step.merge.seconds"
let s_domain_states = Telemetry.Series.create "search.domain.states"
let m_orbits = Telemetry.Counter.create "search.quotient.orbits"
let m_orbit_hits = Telemetry.Counter.create "search.quotient.hits"
let s_orbits = Telemetry.Series.create "search.quotient.orbits.per_level"

type handle = int

let num_shards = State_arena.num_shards

(* Candidate children produced by one (domain, target shard) pair during
   the expansion phase: packed keys plus, per candidate, the full key hash
   and the (parent handle, gate index) provenance packed into one int. *)
type candbuf = {
  mutable ckeys : Bytes.t; (* clen * key_length bytes *)
  mutable cmeta : int array; (* (parent lsl (via_bits+conj_bits)) lor (conj lsl via_bits) lor via *)
  mutable chashes : int array;
  mutable clen : int;
}

let via_bits = 6 (* a library holds < 64 gates (36 at 4 qubits) *)
let conj_bits = 3 (* a wire-relabeling group has <= 4! = 24... 3 bits hold qubits! for qubits <= 3; checked at create *)

let make_candbuf degree =
  { ckeys = Bytes.create (64 * degree); cmeta = Array.make 64 0; chashes = Array.make 64 0; clen = 0 }

let grow_ints a len =
  let a' = Array.make (2 * len) 0 in
  Array.blit a 0 a' 0 len;
  a'

let cand_append buf ~degree scratch ~hash ~meta =
  let i = buf.clen in
  if i = Array.length buf.cmeta then begin
    let cap = 2 * i in
    buf.cmeta <- grow_ints buf.cmeta i;
    buf.chashes <- grow_ints buf.chashes i;
    let keys' = Bytes.create (cap * degree) in
    Bytes.blit buf.ckeys 0 keys' 0 (i * degree);
    buf.ckeys <- keys'
  end;
  Bytes.blit scratch 0 buf.ckeys (i * degree) degree;
  buf.cmeta.(i) <- meta;
  buf.chashes.(i) <- hash;
  buf.clen <- i + 1

(* A growable int vector (the stdlib gains Dynarray only in 5.2). *)
type ibuf = { mutable ints : int array; mutable ilen : int }

let make_ibuf () = { ints = Array.make 64 0; ilen = 0 }

let ibuf_push b v =
  if b.ilen = Array.length b.ints then b.ints <- grow_ints b.ints b.ilen;
  b.ints.(b.ilen) <- v;
  b.ilen <- b.ilen + 1

type t = {
  library : Library.t;
  store : State_arena.t;
  jobs : int;
  degree : int; (* encoding points: the gate permutations' domain *)
  klen : int; (* stored key length: [degree], or [num_binary] when quotiented *)
  num_binary : int;
  signatures : int array; (* mixed signature per point *)
  sym : Symmetry.t option; (* Some: quotient mode — keys are canonical image vectors *)
  perm_arrays : int array array; (* hoisted from the library entries *)
  purity_masks : int array;
  mutable frontier : handle array;
  mutable depth : int;
  (* quotient-mode tallies, kept on the engine (unlike the telemetry
     counters these are live even with telemetry disabled, so [census
     --stats] can report the collapse factor of a plain run) *)
  mutable orbit_fresh : int;
  mutable orbit_hits : int;
  (* per-step scratch, reused across levels *)
  cand : candbuf array array; (* jobs x shards *)
  fresh_by_shard : ibuf array;
  scratch : Bytes.t array; (* one compose buffer per domain *)
  canon_tmp : Bytes.t array; (* per-domain canonicalization scratch (quotient mode) *)
  canon_dst : Bytes.t array;
  rejected_d : int array; (* per-domain counters, summed after the join *)
  fresh_d : int array;
  dup_d : int array;
  domain_states : int array; (* cumulative states inserted per domain *)
}

let max_jobs = num_shards

(* Adaptive parallelism (the BENCH_3 jobs=4 regression fix).  Running a
   level across [t.jobs] ranks only pays when each rank gets a
   substantial contiguous chunk of the frontier: below [min_chunk]
   states per rank, the fixed per-level cost (clearing candidate rows,
   domain spawn/join, skewed rank finish times) dominates the expansion
   itself.  Each step therefore computes an {e effective} rank count
   from the frontier length, additionally capped by the machine's
   recommended domain count — asking for 4 domains on a 2-core runner
   time-slices two of them onto busy cores and makes the join wait for
   the stragglers, which is exactly the census-depth7/jobs=4 skew
   BENCH_3 recorded.  Phase functions are parameterized on the step's
   rank count, never on [t.jobs]; determinism is structural (contiguous
   chunks in frontier order, rank-order candidate replay, shard-pure
   placement), so the states, handles and frontier order are identical
   for every effective value. *)
let min_chunk = 2048
let hardware_jobs = lazy (Domain.recommended_domain_count ())

let effective_jobs t n =
  let cap = min t.jobs (Lazy.force hardware_jobs) in
  max 1 (min cap ((n + min_chunk - 1) / min_chunk))

let engine_params library =
  let encoding = Library.encoding library in
  let degree = Mvl.Encoding.size encoding in
  if degree > 255 then invalid_arg "Search.create: encoding too large for byte keys";
  let signatures = Array.init degree (Mvl.Encoding.mixed_signature encoding) in
  let num_binary = Mvl.Encoding.num_binary encoding in
  (degree, num_binary, signatures)

let key_length_of ~symmetry ~degree ~num_binary =
  match symmetry with
  | None -> degree
  | Some sym ->
      if Symmetry.num_binary sym <> num_binary then
        invalid_arg "Search: symmetry group built for a different encoding";
      if Symmetry.order sym > 1 lsl conj_bits then
        invalid_arg "Search: symmetry group too large for the conjugator field";
      num_binary

let make_engine ~jobs ~symmetry library ~store ~frontier ~depth ~degree ~num_binary
    ~signatures =
  let entries = Library.entries library in
  let klen = key_length_of ~symmetry ~degree ~num_binary in
  Telemetry.Gauge.set_int g_jobs jobs;
  {
    library;
    store;
    jobs;
    degree;
    klen;
    num_binary;
    signatures;
    sym = symmetry;
    perm_arrays = Array.map (fun e -> e.Library.perm_array) entries;
    purity_masks = Array.map (fun e -> e.Library.purity_mask) entries;
    frontier;
    depth;
    orbit_fresh = 0;
    orbit_hits = 0;
    cand = Array.init jobs (fun _ -> Array.init num_shards (fun _ -> make_candbuf klen));
    fresh_by_shard = Array.init num_shards (fun _ -> make_ibuf ());
    scratch = Array.init jobs (fun _ -> Bytes.create klen);
    canon_tmp = Array.init jobs (fun _ -> Bytes.create klen);
    canon_dst = Array.init jobs (fun _ -> Bytes.create klen);
    rejected_d = Array.make jobs 0;
    fresh_d = Array.make jobs 0;
    dup_d = Array.make jobs 0;
    domain_states = Array.make jobs 0;
  }

let create ?(jobs = 1) ?symmetry library =
  if jobs < 1 then invalid_arg "Search.create: jobs must be >= 1";
  let jobs = min jobs max_jobs in
  let degree, num_binary, signatures = engine_params library in
  let klen = key_length_of ~symmetry ~degree ~num_binary in
  let store = State_arena.create ~degree:klen ~num_binary ~signatures in
  (* The identity's key: the identity point permutation, or — quotiented —
     the identity image vector, which is its own canonical form (it is
     fixed by every wire relabeling). *)
  let root_key = Bytes.init klen Char.chr in
  let root_hash = State_arena.hash_key root_key ~off:0 ~len:klen in
  let root =
    State_arena.try_insert store ~key:root_key ~off:0 ~hash:root_hash ~depth:0 ~via:(-1)
      ~parent:(-1)
  in
  make_engine ~jobs ~symmetry library ~store ~frontier:[| root |] ~depth:0 ~degree
    ~num_binary ~signatures

(* [of_store] rebuilds a live engine around a restored arena: the
   frontier is every depth-[depth] state in canonical (shard, index)
   order — exactly what {!merge_frontier} would have produced — so a
   resumed search continues byte-identically. *)
let of_store ?(jobs = 1) ?symmetry library ~depth store =
  if jobs < 1 then invalid_arg "Search.of_store: jobs must be >= 1";
  let jobs = min jobs max_jobs in
  let degree, num_binary, signatures = engine_params library in
  let klen = key_length_of ~symmetry ~degree ~num_binary in
  if State_arena.degree store <> klen then
    invalid_arg
      (Printf.sprintf
         "Search.of_store: store degree %d does not match the library encoding (%d)"
         (State_arena.degree store) klen);
  if depth < 0 then invalid_arg "Search.of_store: negative depth";
  (* [>] not [<>]: an engine whose reachable set is exhausted sits at a
     depth beyond its deepest stored state, with an empty frontier. *)
  if State_arena.max_depth store > depth then
    invalid_arg
      (Printf.sprintf
         "Search.of_store: store holds levels up to %d but depth %d was claimed"
         (State_arena.max_depth store) depth);
  (* the identity circuit must be the sole depth-0 state *)
  let root_key = Bytes.init klen Char.chr in
  let root_hash = State_arena.hash_key root_key ~off:0 ~len:klen in
  (match State_arena.handles_at_depth store 0 with
  | [| h |]
    when h = State_arena.find store root_key ~off:0 ~hash:root_hash -> ()
  | _ -> invalid_arg "Search.of_store: store does not contain the identity root");
  let frontier = State_arena.handles_at_depth store depth in
  make_engine ~jobs ~symmetry library ~store ~frontier ~depth ~degree ~num_binary
    ~signatures

let store t = t.store
let symmetry t = t.sym
let key_length t = t.klen
let conj_of_handle t h = State_arena.conj_of t.store h

let quotient_collapsed t =
  match t.sym with None -> None | Some _ -> Some (t.orbit_fresh, t.orbit_hits)
let handles_at_depth t d = State_arena.handles_at_depth t.store d

let library t = t.library
let jobs t = t.jobs
let depth t = t.depth
let size t = State_arena.size t.store
let arena_bytes t = State_arena.arena_bytes t.store
let frontier_handles t = t.frontier
let key_of_handle t h = State_arena.key_of t.store h
let depth_of_handle t h = State_arena.depth_of t.store h
let frontier t = Array.to_list (Array.map (key_of_handle t) t.frontier)

(* [run_workers ~parallel jobs f] runs [f 0 .. f (jobs-1)], either on
   [jobs] domains or sequentially on the calling one.  Every [f r] writes
   only rank-[r]-owned slots (candidate row [r], counter index [r], shards
   congruent to [r]), so the two modes compute identical states; the
   domain joins publish all writes back to the coordinator. *)
let run_workers ~parallel jobs f =
  if not parallel then
    for r = 0 to jobs - 1 do
      f r
    done
  else begin
    let workers = Array.init (jobs - 1) (fun r -> Domain.spawn (fun () -> f (r + 1))) in
    f 0;
    Array.iter Domain.join workers
  end

(* Cooperative cancellation: [cancel] is polled between expansion chunks
   of [cancel_poll_mask + 1] frontier states.  It must be cheap,
   domain-safe and monotonic (once true, always true) — an [Atomic.t]
   set by a signal handler qualifies. *)
let cancel_poll_mask = 63

(* Phase 1: expand the frontier chunk of rank [r] into per-shard candidate
   buffers.  Read-only on the store.  Polls [cancel] between chunks and
   returns early when it fires (the partially filled buffers are
   discarded by the coordinator, which re-checks the flag after the
   join). *)
let expand_chunk t r ~e ~cancel =
  let klen = t.klen in
  let n = Array.length t.frontier in
  let lo = r * n / e and hi = (r + 1) * n / e in
  let row = t.cand.(r) in
  for s = 0 to num_shards - 1 do
    row.(s).clen <- 0
  done;
  let scratch = t.scratch.(r) in
  let tmp = t.canon_tmp.(r) and dst = t.canon_dst.(r) in
  let ngates = Array.length t.perm_arrays in
  let rejected = ref 0 in
  let i = ref lo in
  while !i < hi && not (!i land cancel_poll_mask = 0 && cancel ()) do
    let h = t.frontier.(!i) in
    let signature = State_arena.signature_of t.store h in
    let src = State_arena.shard_arena t.store (State_arena.shard_of_handle h) in
    let soff = State_arena.key_offset t.store h in
    for via = 0 to ngates - 1 do
      if signature land t.purity_masks.(via) = 0 then begin
        let pa = t.perm_arrays.(via) in
        match t.sym with
        | None ->
            let acc = ref 0 in
            for j = 0 to klen - 1 do
              let b =
                Array.unsafe_get pa (Char.code (Bytes.unsafe_get src (soff + j)))
              in
              Bytes.unsafe_set scratch j (Char.unsafe_chr b);
              acc := (!acc * 131) + b
            done;
            (* finalize exactly as State_arena.hash_key *)
            let hv = !acc in
            let hv = hv lxor (hv lsr 23) in
            let hv = hv * 0x2545F4914F6CDD1 in
            let hv = hv lxor (hv lsr 29) in
            let hash = hv land max_int in
            cand_append
              row.(State_arena.shard_of_hash hash)
              ~degree:klen scratch ~hash
              ~meta:((h lsl (via_bits + conj_bits)) lor via)
        | Some sym ->
            (* Quotiented: the stored key is a canonical image vector, so
               applying the gate gives the child's raw image; hash only
               its canonical form. *)
            for j = 0 to klen - 1 do
              Bytes.unsafe_set scratch j
                (Char.unsafe_chr
                   (Array.unsafe_get pa
                      (Char.code (Bytes.unsafe_get src (soff + j)))))
            done;
            let conj = Symmetry.canon_into sym ~src:scratch ~soff:0 ~tmp ~dst ~doff:0 in
            let hash = State_arena.hash_key dst ~off:0 ~len:klen in
            cand_append
              row.(State_arena.shard_of_hash hash)
              ~degree:klen dst ~hash
              ~meta:((h lsl (via_bits + conj_bits)) lor (conj lsl via_bits) lor via)
      end
      else incr rejected
    done;
    incr i
  done;
  t.rejected_d.(r) <- t.rejected_d.(r) + !rejected

(* Single-domain fast path: expand and insert in one pass, with no
   candidate buffering.  Children are inserted in (frontier order, gate
   order); within any given shard that is exactly the order in which the
   three-phase path replays its candidates, so the stored states, their
   handles, and the per-shard fresh lists coincide with the parallel
   engine's — only the buffering is skipped.

   Returns [false] when [cancel] fired mid-level: the partially inserted
   level is rolled back (via {!State_arena.truncate}) and the engine is
   exactly as before the call. *)
let expand_insert_sequential t ~next_depth ~cancel =
  let klen = t.klen in
  let scratch = t.scratch.(0) in
  let tmp = t.canon_tmp.(0) and dst = t.canon_dst.(0) in
  let ngates = Array.length t.perm_arrays in
  let rejected = ref 0 and fresh = ref 0 and dup = ref 0 in
  for s = 0 to num_shards - 1 do
    t.fresh_by_shard.(s).ilen <- 0
  done;
  let rollback = State_arena.shard_counts t.store in
  let n = Array.length t.frontier in
  let i = ref 0 in
  let cancelled = ref false in
  while !i < n && not !cancelled do
    if !i land cancel_poll_mask = 0 && cancel () then cancelled := true
    else begin
    let h = t.frontier.(!i) in
    let signature = State_arena.signature_of t.store h in
    let src = State_arena.shard_arena t.store (State_arena.shard_of_handle h) in
    let soff = State_arena.key_offset t.store h in
    for via = 0 to ngates - 1 do
      if signature land t.purity_masks.(via) = 0 then begin
        let pa = t.perm_arrays.(via) in
        let child =
          match t.sym with
          | None ->
              let acc = ref 0 in
              for j = 0 to klen - 1 do
                let b =
                  Array.unsafe_get pa (Char.code (Bytes.unsafe_get src (soff + j)))
                in
                Bytes.unsafe_set scratch j (Char.unsafe_chr b);
                acc := (!acc * 131) + b
              done;
              let hv = !acc in
              let hv = hv lxor (hv lsr 23) in
              let hv = hv * 0x2545F4914F6CDD1 in
              let hv = hv lxor (hv lsr 29) in
              let hash = hv land max_int in
              State_arena.try_insert t.store ~key:scratch ~off:0 ~hash
                ~depth:next_depth ~via ~parent:h
          | Some sym ->
              for j = 0 to klen - 1 do
                Bytes.unsafe_set scratch j
                  (Char.unsafe_chr
                     (Array.unsafe_get pa
                        (Char.code (Bytes.unsafe_get src (soff + j)))))
              done;
              let conj =
                Symmetry.canon_into sym ~src:scratch ~soff:0 ~tmp ~dst ~doff:0
              in
              let hash = State_arena.hash_key dst ~off:0 ~len:klen in
              State_arena.try_insert t.store ~conj ~key:dst ~off:0 ~hash
                ~depth:next_depth ~via ~parent:h
        in
        if child >= 0 then begin
          ibuf_push
            t.fresh_by_shard.(State_arena.shard_of_handle child)
            child;
          incr fresh
        end
        else incr dup
      end
      else incr rejected
    done;
    incr i
    end
  done;
  if !cancelled then begin
    State_arena.truncate t.store rollback;
    false
  end
  else begin
    t.rejected_d.(0) <- !rejected;
    t.fresh_d.(0) <- !fresh;
    t.dup_d.(0) <- !dup;
    t.domain_states.(0) <- t.domain_states.(0) + !fresh;
    true
  end

(* Phase 2: rank [r] dedupes and inserts the candidates of its owned
   shards (s mod e = r), scanning domain rows in rank order so each
   shard sees its candidates in global frontier order — the processing
   order, and hence the stored states and per-shard output lists, do not
   depend on the number of domains.  Only rows [0 .. e-1] are scanned:
   rows beyond the step's effective rank count were not cleared this
   step and may hold stale candidates from an earlier, wider level. *)
let dedupe_shards t r ~e ~next_depth =
  let klen = t.klen in
  let via_mask = (1 lsl via_bits) - 1 in
  let conj_mask = (1 lsl conj_bits) - 1 in
  let fresh = ref 0 and dup = ref 0 in
  let s = ref r in
  while !s < num_shards do
    let out = t.fresh_by_shard.(!s) in
    out.ilen <- 0;
    for d = 0 to e - 1 do
      let buf = t.cand.(d).(!s) in
      for i = 0 to buf.clen - 1 do
        let meta = buf.cmeta.(i) in
        let h =
          State_arena.try_insert t.store ~key:buf.ckeys ~off:(i * klen)
            ~hash:buf.chashes.(i) ~depth:next_depth ~via:(meta land via_mask)
            ~conj:((meta asr via_bits) land conj_mask)
            ~parent:(meta asr (via_bits + conj_bits))
        in
        if h >= 0 then begin
          ibuf_push out h;
          incr fresh
        end
        else incr dup
      done
    done;
    s := !s + e
  done;
  t.fresh_d.(r) <- !fresh;
  t.dup_d.(r) <- !dup;
  t.domain_states.(r) <- t.domain_states.(r) + !fresh

(* Phase 3: concatenate the per-shard output lists in shard order.  The
   resulting frontier order is canonical for every jobs value. *)
let merge_frontier t =
  let total = ref 0 in
  Array.iter (fun b -> total := !total + b.ilen) t.fresh_by_shard;
  let next = Array.make !total 0 in
  let pos = ref 0 in
  Array.iter
    (fun b ->
      Array.blit b.ints 0 next !pos b.ilen;
      pos := !pos + b.ilen)
    t.fresh_by_shard;
  next

let try_step t ~cancel =
  Telemetry.Histogram.time h_step @@ fun () ->
  Telemetry.Span.with_span "search.step" @@ fun () ->
  let next_depth = t.depth + 1 in
  (* The step's effective rank count: small frontiers collapse to one
     rank (run inline — spawning domains for them costs more than it
     saves), and the configured jobs are capped by the core count.  The
     rank functions compute identical states either way; only
     scheduling changes. *)
  let e = effective_jobs t (Array.length t.frontier) in
  let parallel = e > 1 in
  Telemetry.Gauge.set_int g_jobs_eff e;
  Array.fill t.fresh_d 0 t.jobs 0;
  Array.fill t.dup_d 0 t.jobs 0;
  Array.fill t.rejected_d 0 t.jobs 0;
  let completed =
    if t.jobs = 1 then
      Telemetry.Histogram.time h_expand (fun () ->
          expand_insert_sequential t ~next_depth ~cancel)
    else begin
      Telemetry.Histogram.time h_expand (fun () ->
          run_workers ~parallel e (fun r -> expand_chunk t r ~e ~cancel));
      (* Expansion never mutates the store, so abandoning here is free.
         Once dedupe starts we drain the level: it is short relative to
         expansion and finishing it keeps the store at a level boundary. *)
      if cancel () then false
      else begin
        Telemetry.Histogram.time h_merge (fun () ->
            run_workers ~parallel e (fun r -> dedupe_shards t r ~e ~next_depth));
        true
      end
    end
  in
  if not completed then begin
    Telemetry.Span.set_attr "cancelled" (Telemetry.Json.Bool true);
    Log.info (fun m ->
        m "level %d abandoned on cancellation; engine rolled back to level %d"
          next_depth t.depth);
    None
  end
  else begin
  Faultsim.hit "merge";
  let next = merge_frontier t in
  t.frontier <- next;
  t.depth <- next_depth;
  let sum a = Array.fold_left ( + ) 0 a in
  let fresh = sum t.fresh_d and dup = sum t.dup_d and rejected = sum t.rejected_d in
  Telemetry.Counter.add m_states_new fresh;
  Telemetry.Counter.add m_states_dup dup;
  Telemetry.Counter.add m_sig_rejected rejected;
  (match t.sym with
  | None -> ()
  | Some _ ->
      (* In quotient mode every stored state is one orbit representative:
         fresh counts new orbits, dup counts expansions canonicalized onto
         an already-stored representative. *)
      t.orbit_fresh <- t.orbit_fresh + fresh;
      t.orbit_hits <- t.orbit_hits + dup;
      Telemetry.Counter.add m_orbits fresh;
      Telemetry.Counter.add m_orbit_hits dup;
      Telemetry.Series.set s_orbits ~index:next_depth fresh);
  Telemetry.Gauge.set_int g_frontier fresh;
  Telemetry.Gauge.set_int g_table_size (State_arena.size t.store);
  if Telemetry.enabled () then begin
    Telemetry.Gauge.set_int g_arena (State_arena.arena_bytes t.store);
    Telemetry.Gauge.set g_table_load
      (float_of_int (State_arena.size t.store)
      /. float_of_int (max 1 (State_arena.table_capacity t.store)));
    for r = 0 to t.jobs - 1 do
      Telemetry.Series.set s_domain_states ~index:r t.domain_states.(r)
    done;
    Telemetry.Span.set_attr "level" (Telemetry.Json.Int next_depth);
    Telemetry.Span.set_attr "new" (Telemetry.Json.Int fresh);
    Telemetry.Span.set_attr "duplicate" (Telemetry.Json.Int dup);
    Telemetry.Span.set_attr "signature_rejected" (Telemetry.Json.Int rejected);
    Telemetry.Span.set_attr "parallel" (Telemetry.Json.Bool parallel);
    Telemetry.Span.set_attr "effective_jobs" (Telemetry.Json.Int e)
  end;
  Log.debug (fun m ->
      m "level %d: %d new states (%d duplicate, %d rejected), %d total" next_depth fresh
        dup rejected (State_arena.size t.store));
  Some next
  end

let never_cancel () = false

let step_handles t =
  match try_step t ~cancel:never_cancel with
  | Some next -> next
  | None -> assert false (* never_cancel cannot fire *)

let step t = Array.to_list (Array.map (key_of_handle t) (step_handles t))

(* {1 Key-based lookups (legacy string interface)} *)

let find_key t key =
  if String.length key <> t.klen then -1
  else
    let b = Bytes.unsafe_of_string key in
    let hash = State_arena.hash_key b ~off:0 ~len:t.klen in
    State_arena.find t.store b ~off:0 ~hash

let perm_of_key key =
  Perm.unsafe_of_array (Array.init (String.length key) (fun i -> Char.code key.[i]))

let restriction_of_key t key =
  let nb = t.num_binary in
  let rec binary_block i = i >= nb || (Char.code key.[i] < nb && binary_block (i + 1)) in
  if binary_block 0 then
    let perm = Perm.unsafe_of_array (Array.init nb (fun i -> Char.code key.[i])) in
    Some (Reversible.Revfun.of_perm ~bits:(Library.qubits t.library) perm)
  else None

let restriction_of_handle t h =
  let nb = t.num_binary in
  let src = State_arena.shard_arena t.store (State_arena.shard_of_handle h) in
  let off = State_arena.key_offset t.store h in
  let rec binary_block i =
    i >= nb || (Char.code (Bytes.unsafe_get src (off + i)) < nb && binary_block (i + 1))
  in
  if binary_block 0 then
    let perm =
      Perm.unsafe_of_array (Array.init nb (fun i -> Char.code (Bytes.get src (off + i))))
    in
    Some (Reversible.Revfun.of_perm ~bits:(Library.qubits t.library) perm)
  else None

let depth_of_key t key =
  match find_key t key with -1 -> None | h -> Some (State_arena.depth_of t.store h)

(* The meet-in-the-middle join column: a state's image of the binary
   block.  Suffix legality under the reasonable-product constraint and
   the circuit's final restriction both depend only on these bytes, so
   two states with equal binary images are interchangeable as prefixes
   of any suffix chain. *)
let binary_image_of_handle t h = State_arena.key_prefix t.store h ~len:t.num_binary
let num_binary t = t.num_binary

let cascade_of_handle t h =
  let entries = Library.entries t.library in
  match t.sym with
  | None ->
      let rec walk h acc =
        let via = State_arena.via_of t.store h in
        if via < 0 then acc
        else
          walk (State_arena.parent_of t.store h) (entries.(via).Library.gate :: acc)
      in
      walk h []
  | Some sym ->
      (* Witness reconstruction by conjugation.  A stored child is
         [canon (g . parent)] with conjugator [c], and conjugation
         transports cascades gate-by-gate
         ([conj_c (g . v) = gate_map(c)(g) . conj_c v]), so walking the
         via/parent chain while composing the per-step gate maps yields a
         cascade implementing the representative's own image. *)
      let ngates = Array.length entries in
      let m = Array.init ngates Fun.id in
      let rec walk h acc =
        let via = State_arena.via_of t.store h in
        if via < 0 then acc
        else begin
          let gm = Symmetry.gate_map sym (State_arena.conj_of t.store h) in
          let g = m.(gm.(via)) in
          let m' = Array.init ngates (fun i -> m.(gm.(i))) in
          Array.blit m' 0 m 0 ngates;
          walk (State_arena.parent_of t.store h) (entries.(g).Library.gate :: acc)
        end
      in
      walk h []

let cascade_of_key t key =
  match find_key t key with
  | -1 -> invalid_arg "Search.cascade_of_key: unknown key"
  | h -> cascade_of_handle t h

let all_cascades ?(limit = 10_000) t key =
  if t.sym <> None then
    invalid_arg "Search.all_cascades: unavailable in quotient mode";
  let entries = Library.entries t.library in
  let degree = t.degree in
  let scratch = Bytes.create degree in
  let results = ref [] and count = ref 0 in
  let exception Done in
  (* Walk every minimal parent chain: a valid parent sits one level up and
     its binary-block image admits the connecting gate.  The inverse image
     arrays are pre-computed once per library (Library.compile), not per
     node. *)
  let rec walk h depth suffix =
    if !count >= limit then raise Done;
    if depth = 0 then begin
      results := suffix :: !results;
      incr count
    end
    else begin
      let src = State_arena.shard_arena t.store (State_arena.shard_of_handle h) in
      let soff = State_arena.key_offset t.store h in
      Array.iter
        (fun entry ->
          let inv = entry.Library.inverse_array in
          (* scratch is free again once the parent lookup is done, so the
             recursive call may reuse it *)
          for j = 0 to degree - 1 do
            Bytes.unsafe_set scratch j
              (Char.unsafe_chr inv.(Char.code (Bytes.unsafe_get src (soff + j))))
          done;
          let hash = State_arena.hash_key scratch ~off:0 ~len:degree in
          match State_arena.find t.store scratch ~off:0 ~hash with
          | -1 -> ()
          | parent ->
              if
                State_arena.depth_of t.store parent = depth - 1
                && State_arena.signature_of t.store parent land entry.Library.purity_mask
                   = 0
              then walk parent (depth - 1) (entry.Library.gate :: suffix))
        entries
    end
  in
  (match find_key t key with
  | -1 -> invalid_arg "Search.all_cascades: unknown key"
  | h -> ( try walk h (State_arena.depth_of t.store h) [] with Done -> ()));
  !results

let probe_restrictions t ~steps =
  if t.sym <> None then
    invalid_arg
      "Search.probe_restrictions: unavailable in quotient mode (the frontier \
       holds one representative per orbit, not every image)";
  if steps < 1 || steps > 2 then invalid_arg "Search.probe_restrictions: steps in {1,2}";
  Telemetry.Span.with_span "search.probe"
    ~attrs:[ ("steps", Telemetry.Json.Int steps) ]
  @@ fun () ->
  let entries = Library.entries t.library in
  let nb = t.num_binary in
  let found = Hashtbl.create (1 lsl 12) in
  (* Track only the binary-block image vector; that is all the signature
     test, the next gate application, and the restriction key need. *)
  let images = Array.make nb 0 in
  let scratch = Array.make nb 0 in
  let signature_of block =
    let s = ref 0 in
    for i = 0 to nb - 1 do
      s := !s lor t.signatures.(block.(i))
    done;
    !s
  in
  let record block =
    let rec binary i = i >= nb || (block.(i) < nb && binary (i + 1)) in
    if binary 0 then begin
      let key = String.init nb (fun i -> Char.chr block.(i)) in
      if not (Hashtbl.mem found key) then Hashtbl.add found key ()
    end
  in
  Array.iter
    (fun h ->
      let signature = State_arena.signature_of t.store h in
      let src = State_arena.shard_arena t.store (State_arena.shard_of_handle h) in
      let soff = State_arena.key_offset t.store h in
      Array.iter
        (fun entry ->
          if Library.signature_allows ~signature entry then begin
            let pa = entry.Library.perm_array in
            for i = 0 to nb - 1 do
              images.(i) <- pa.(Char.code (Bytes.unsafe_get src (soff + i)))
            done;
            if steps = 1 then record images
            else begin
              let signature2 = signature_of images in
              Array.iter
                (fun entry2 ->
                  if Library.signature_allows ~signature:signature2 entry2 then begin
                    let pa2 = entry2.Library.perm_array in
                    for i = 0 to nb - 1 do
                      scratch.(i) <- pa2.(images.(i))
                    done;
                    record scratch
                  end)
                entries
            end
          end)
        entries)
    t.frontier;
  found
