(** Elementary gates on an n-qubit circuit.

    The paper's quantum library has three kinds — controlled-V,
    controlled-V{^ +} and Feynman (CNOT) — following the paper's
    subscript convention: the {e first} wire of the name is the
    data/target wire and the {e second} is the control; V_BA has data B
    and control A, F_CA XORs A into C.

    NOT gates are deliberately absent from the paper's library: it
    treats them as a free input-side layer (Theorem 2), handled by
    {!Mce}.

    For the pluggable classical census universes ({!Library.Registry})
    four {e classical} kinds exist as well: NOT, Toffoli, SWAP and
    Fredkin (controlled swap).  Together with Feynman they assemble the
    NCT and NFT gate sets of the reversible-synthesis literature
    (Shende et al.; Younes, arXiv:1304.5804).  Classical gates are basis
    permutations; they are meant for the {e binary} pattern encoding
    ({!Mvl.Encoding.make_binary}) — on the paper's mixed encoding a bare
    NOT leaves the permutable domain and the library compile rejects
    it. *)

type kind =
  | Controlled_v
  | Controlled_v_dag
  | Feynman
  | Not  (** Pauli X on one wire; no control *)
  | Toffoli  (** CCX: two controls, one target *)
  | Swap  (** exchanges two wires; no control *)
  | Fredkin  (** CSWAP: one control, swaps two wires *)

type t = private {
  kind : kind;
  target : int;
  control : int;  (** -1 for the control-free NOT *)
  control2 : int;
      (** third wire of a 3-wire gate (second Toffoli control, second
          swapped wire of a Fredkin); -1 elsewhere *)
}

(** [make kind ~target ~control] builds a 2-wire gate (controlled-V,
    controlled-V{^ +}, Feynman or Swap; Swap is canonicalized so the
    wire order does not matter).
    @raise Invalid_argument if [target = control], a wire is negative,
    or the kind needs a different arity (use {!make_not},
    {!make_toffoli}, {!make_fredkin}). *)
val make : kind -> target:int -> control:int -> t

(** [make_not ~target] is the NOT (Pauli X) on one wire. *)
val make_not : target:int -> t

(** [make_toffoli ~target ~controls:(c1, c2)] is the Toffoli gate;
    the control pair is canonicalized (order does not matter).
    @raise Invalid_argument unless the three wires are distinct. *)
val make_toffoli : target:int -> controls:int * int -> t

(** [make_swap a b] exchanges wires [a] and [b] (canonicalized). *)
val make_swap : int -> int -> t

(** [make_fredkin ~targets:(a, b) ~control] swaps wires [a] and [b] when
    [control] carries 1; the swapped pair is canonicalized.
    @raise Invalid_argument unless the three wires are distinct. *)
val make_fredkin : targets:int * int -> control:int -> t

(** [all ~qubits] is the paper's library L for an n-qubit circuit:
    [3 * n * (n-1)] gates (18 when n = 3), ordered V, V{^ +}, F. *)
val all : qubits:int -> t list

(** [nct ~qubits] is the classical NCT library: NOT, CNOT (Feynman) and
    Toffoli gates — 12 gates when n = 3 — ordered N, F, T. *)
val nct : qubits:int -> t list

(** [nft ~qubits] is the classical NFT library of Younes
    (arXiv:1304.5804): the generalized-Toffoli family (NOT, CNOT,
    Toffoli) plus the generalized-Fredkin family (SWAP, Fredkin) —
    18 gates when n = 3 — ordered N, F, T, S, FR. *)
val nft : qubits:int -> t list

val kind : t -> kind
val target : t -> int
val control : t -> int

(** [control2 g] is the third wire, or -1 when the gate has only two. *)
val control2 : t -> int

(** [wires g] is every wire the gate touches (2 or 3, no -1 sentinel). *)
val wires : t -> int list

val equal : t -> t -> bool
val compare : t -> t -> int

(** [adjoint g] is the Hermitian adjoint: V and V{^ +} swap; every other
    kind is self-adjoint. *)
val adjoint : t -> t

(** [purity_wires g] lists the wires that must carry pure binary values
    for the gate to be legally cascaded: the control for controlled-V
    gates, both wires for Feynman (paper, Section 2), and every touched
    wire for the classical kinds (which never bind on the binary
    encoding, where no point is mixed). *)
val purity_wires : t -> int list

(** [purity_mask g] is {!purity_wires} as a bitmask (bit [w] = wire [w]). *)
val purity_mask : t -> int

(** [apply g p] is the multiple-valued semantics on a pattern:
    - controlled-V (V{^ +}): when the control is [One], the data value
      advances along the V (V{^ +}) cycle; when the control is [Zero] or
      mixed, nothing changes (the mixed case is the paper's don't-care,
      fixed as the identity to keep gates permutations);
    - Feynman: when the control is [One] and the target binary, the target
      flips; any other case (including mixed values, again don't-care) is
      the identity;
    - the classical kinds act classically (NOT/Toffoli flip a binary
      target, Swap/Fredkin exchange values) and are the identity
      whenever a flip would need a mixed target. *)
val apply : t -> Mvl.Pattern.t -> Mvl.Pattern.t

(** [matrix ~qubits g] is the exact unitary of the gate (a 0/1
    permutation matrix for the classical kinds). *)
val matrix : qubits:int -> t -> Qmath.Dmatrix.t

(** [name g] renders the subscript naming with wires A..Z: ["VBA"],
    ["V+AB"], ["FCA"]; classical gates print ["NA"], ["TCAB"] (target
    then controls), ["SAB"], ["FRBCA"] (swapped pair then control). *)
val name : t -> string

(** [of_name ~qubits s] parses {!name} output (case-insensitive;
    longest prefix wins, so ["FR"] is Fredkin and ["F"] Feynman).
    @raise Invalid_argument on malformed names or out-of-range wires. *)
val of_name : qubits:int -> string -> t

val pp : Format.formatter -> t -> unit
