(** Persistent index of a census: func_key -> (cost, witness).

    A census run ({!Fmcf}) proves, for every binary reversible function
    it finds, the {e exact} minimal cost plus one witness cascade — and,
    just as importantly, that any function it does {e not} contain costs
    more than the census depth.  This module freezes both facts into a
    compact on-disk artifact ([QSYNIDX1], reusing the atomic-write and
    CRC-32 machinery of {!Checkpoint}) so that later [qsynth synth]
    invocations answer known functions with a binary search over a
    [Bytes] block — no BFS, no census — and turn misses into a proven
    cost lower bound for the meet-in-the-middle engine ({!Bidir}).

    For the 3-qubit depth-7 census: 1260 records of 13 bytes plus a
    ~5.6 kB gate log — about 22 kB, versus ~7.6 MB for a full search
    snapshot, because the index stores only binary {e functions} (G[k]),
    not all 689k circuit states. *)

type t

(** [build census] indexes every member of [census] (including the
    identity at cost 0).  The census may be partial; {!depth} then
    reflects the completed horizon.
    @raise Invalid_argument if a witness is inconsistent (engine bug). *)
val build : Fmcf.t -> t

(** [depth t] is the census horizon: every function of cost [<= depth]
    is present, so a miss proves cost [>= depth + 1]. *)
val depth : t -> int

(** [size t] is the number of indexed functions. *)
val size : t -> int

(** [find t func] is [Some (cost, witness)] with the exact minimal cost
    and a minimal witness cascade, or [None] — which for an in-horizon
    census means {e proven} cost [> depth t].  [None] also for a
    function whose bit width does not match the library.  O(log n). *)
val find : t -> Reversible.Revfun.t -> (int * Cascade.t) option

(** [save t path] atomically writes the index ({!Checkpoint.write_atomic}
    semantics: a crash never clobbers a previous file at [path]). *)
val save : t -> string -> unit

(** [load library path] reads and fully validates an index: magic and
    CRC-32, format version, library fingerprint and shape, record
    sortedness, and — beyond integrity — every witness is replayed
    through the library's multiple-valued semantics (reasonable-product
    legality at each gate, restriction equal to the recorded function),
    so a loaded index cannot assert a wrong witness.
    @raise Checkpoint.Corrupt on damage (truncation, CRC, structure,
    invalid witness);
    @raise Checkpoint.Mismatch on a well-formed index for a different
    library or format version. *)
val load : Library.t -> string -> t
