(** Persistent index of a census: func_key -> (cost, witness).

    A census run ({!Fmcf}) proves, for every binary reversible function
    it finds, the {e exact} minimal cost plus one witness cascade — and,
    just as importantly, that any function it does {e not} contain costs
    more than the census depth.  This module freezes both facts into a
    compact on-disk artifact ([QSYNIDX2], reusing the atomic-write and
    CRC-32 machinery of {!Checkpoint}) so that later [qsynth synth]
    invocations answer known functions with an in-place binary search —
    no BFS, no census — and turn misses into a proven cost lower bound
    for the meet-in-the-middle engine ({!Bidir}).

    An index can moreover be {e complete}: {!build_complete} sweeps every
    zero-fixing function the census missed with one bidirectional query
    each, so the file covers the whole universe — for 3 qubits, all
    [7! = 5040] zero-fixing functions, which by the Theorem-2 coset
    decomposition answers all [8! = 40320] members of S₈ once
    {!Mce.strip_not_layer} has peeled the NOT layer.  A complete index
    never misses a well-formed query, so a daemon serving one needs no
    search engine at all.  Completeness (plus the full cost histogram
    and a coverage count) is recorded in the v2 header; v1 files still
    load and are by definition partial.

    For the 3-qubit depth-7 census: 1260 records of 13 bytes plus a
    ~5.6 kB gate log — about 22 kB; the complete 5040-record index is
    ~100 kB, versus ~7.6 MB for a full search snapshot, because the
    index stores only binary {e functions} (G[k]), not all 689k circuit
    states. *)

type t

(** How much witness replay {!load}/{!load_mmap} perform beyond the
    always-on integrity checks (CRC-32, fingerprints, record sortedness
    and bounds, histogram/coverage cross-checks): [Sample] replays a
    deterministic ~64-record stride, [Full] replays every record —
    proving the file correct by construction, not merely uncorrupted, at
    O(count·depth) load cost. *)
type verification = Sample | Full

(** [build census] indexes every member of [census] (including the
    identity at cost 0).  The census may be partial; {!depth} then
    reflects the completed horizon.  A census deep enough to cover the
    library's whole universe — the zero-fixing subgroup under coset
    reduction, the full symmetric group for NCT/NFT — yields a complete
    index.
    @raise Invalid_argument if a witness is inconsistent (engine bug). *)
val build : Fmcf.t -> t

(** [build_complete ?jobs ?should_stop census] extends [census] to a
    {e complete} index: every zero-fixing function absent from the
    census is enumerated (lexicographically — the Theorem-2 coset factor
    costs nothing) and resolved with a bidirectional query against the
    census's own forward wave, frozen at the census depth so [jobs]
    worker domains share it read-only (a quotiented census gets a fresh
    raw wave warmed to the same depth, since orbit-canonical keys carry
    no image vectors).  Returns the index and the number of swept
    functions; the bytes are identical regardless of [jobs] or
    [--quotient].  [None] if [should_stop] fired before the sweep
    finished.  The resulting {!depth} is the maximum cost over all
    records ([2·census_depth] bounds it).
    @raise Invalid_argument when [jobs < 1], when the library has no
    coset reduction (a full-group universe completes by deepening the
    forward census instead — the sweep's coset enumeration would be
    unsound), when the universe is too large to enumerate (4+ qubits),
    or if a sweep target exceeds every bound (the library is not
    universal — impossible for the paper's 18-gate library). *)
val build_complete :
  ?jobs:int -> ?should_stop:(unit -> bool) -> Fmcf.t -> (t * int) option

(** [depth t] is the cost horizon: every function of cost [<= depth] is
    present, so a miss proves cost [>= depth + 1].  For a complete index
    this is the maximum cost in the universe — 13 for 3 qubits under the
    paper's library: the zero-fixing universe's diameter, whose spectrum
    has a genuine empty level at cost 11 (legality constrains which gate
    may follow which image vector, so minimal-cost levels of the binary
    targets need not be contiguous). *)
val depth : t -> int

(** [size t] is the number of indexed functions. *)
val size : t -> int

(** [is_complete t]: every zero-fixing function of the library's
    universe has a record, so {!find} cannot miss a well-formed query. *)
val is_complete : t -> bool

(** [coverage t] is the number of members of S_{2^q} the index answers:
    [size t * 2^qubits] under coset reduction (the NOT layer is stripped
    first), plain [size t] for a full-group library.  40320 for a
    complete 3-qubit index either way. *)
val coverage : t -> int

(** [histogram t] is the number of records per cost, indices
    [0..depth t].  For a complete index this is the full cost spectrum
    of the zero-fixing universe. *)
val histogram : t -> int array

(** [mapped t] is true when the records live in a read-only mmap
    ({!load_mmap}) rather than a heap buffer. *)
val mapped : t -> bool

(** [find t func] is [Some (cost, witness)] with the exact minimal cost
    and a minimal witness cascade, or [None] — which for an in-horizon
    census means {e proven} cost [> depth t], and for a complete index
    cannot happen at all on a zero-fixing function of the right width.
    [None] also for a function whose bit width does not match the
    library.  O(log n), allocation-free until a hit materializes its
    cascade. *)
val find : t -> Reversible.Revfun.t -> (int * Cascade.t) option

(** [save t path] atomically writes the index ({!Checkpoint.write_atomic}
    semantics: a crash never clobbers a previous file at [path]). *)
val save : t -> string -> unit

(** [load ?verify library path] reads the file into the heap and
    validates it: magic and CRC-32, format version, library and (v2)
    symmetry fingerprints, shape, record sortedness and bounds, and the
    v2 histogram/coverage cross-checks; witness replay per [verify]
    (default [Sample]).
    @raise Checkpoint.Corrupt on damage (truncation, CRC, structure,
    invalid witness);
    @raise Checkpoint.Mismatch on a well-formed index for a different
    library or format version. *)
val load : ?verify:verification -> Library.t -> string -> t

(** [load_mmap ?verify library path] is {!load} over a read-only
    [Unix.map_file] mapping instead of a heap copy: validation streams
    the pages once (the CRC), after which lookups touch only the pages
    the binary search walks and the OS page cache shares them across
    replica processes.  Dropping the returned index unmaps the file via
    the [Bigarray] finalizer, so a SIGHUP hot swap is safe: in-flight
    lookups keep the old mapping alive until they finish.  Same
    validation and exceptions as {!load}. *)
val load_mmap : ?verify:verification -> Library.t -> string -> t
