open Reversible

let log_src = Logs.Src.create "qsynth.mce" ~doc:"Minimum-cost expression (MCE)"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Json = Telemetry.Json

let m_queries = Telemetry.Counter.create "mce.queries"
let m_realizations = Telemetry.Counter.create "mce.realizations"
let m_plan_index = Telemetry.Counter.create "mce.plan.index"
let m_plan_bidir = Telemetry.Counter.create "mce.plan.bidir"
let m_plan_forward = Telemetry.Counter.create "mce.plan.forward"
let m_plan_fallback = Telemetry.Counter.create "mce.plan.fallback_reason"

(* One warning per process the first time a partial index fails to
   answer and the planner silently reaches for a search engine — the
   situation is correct but surprising (the fix is a deeper census or a
   complete index), so say why once instead of spamming per query. *)
let fallback_logged = Atomic.make false

let note_fallback ~horizon ~max_depth ~engine =
  Telemetry.Counter.incr m_plan_fallback;
  if not (Atomic.exchange fallback_logged true) then
    Log.warn (fun m ->
        m
          "index horizon %d cannot answer a miss at max_depth %d: falling back \
           to %s (this partial index leaves every deeper query to a live \
           search; build one with `census --complete --emit-index` to serve \
           everything from the index)"
          horizon max_depth engine)
let g_depth_reached = Telemetry.Gauge.create "mce.depth_reached"
let h_search = Telemetry.Histogram.create "mce.search.seconds"

type result = {
  target : Revfun.t;
  not_mask : int;
  cascade : Cascade.t;
  cost : int;
}

let strip_not_layer target =
  let bits = Revfun.bits target in
  (* Want remainder(0) = 0 where target = d0 * remainder, i.e.
     remainder(x) = target(x XOR mask): pick mask = target^-1(0). *)
  let mask = Revfun.apply (Revfun.inverse target) 0 in
  let remainder = Revfun.compose (Revfun.xor_layer ~bits mask) target in
  assert (Revfun.fixes_zero remainder);
  (mask, remainder)

(* Run the BFS until some state restricts to [remainder]; return the
   level's witness keys.  Depth 0 (identity) handled by the caller. *)
let no_stop () = false

let search_until ~max_depth ~jobs ~should_stop library remainder =
  Telemetry.Counter.incr m_queries;
  Telemetry.Histogram.time h_search @@ fun () ->
  Telemetry.Span.with_span "mce.search"
    ~attrs:[ ("max_depth", Telemetry.Json.Int max_depth) ]
  @@ fun () ->
  (* Always a raw (unquotiented) engine: MCE needs a concrete witness
     cascade for one target, so it walks via/parent chains directly and
     terminates as soon as the remainder's image appears — the quotient
     arena would save memory here but answers must stay byte-identical
     whether or not the census that planned us ran under --quotient,
     which this guarantees structurally. *)
  let search = Search.create ~jobs library in
  let rec go () =
    if should_stop () then begin
      Log.info (fun m -> m "search cancelled at depth %d" (Search.depth search));
      None
    end
    else if Search.depth search >= max_depth then begin
      Log.debug (fun m -> m "depth bound %d reached without a witness" max_depth);
      None
    end
    else begin
      match Search.try_step search ~cancel:should_stop with
      | None ->
          Log.info (fun m ->
              m "search cancelled mid-level at depth %d" (Search.depth search));
          None
      | Some fresh ->
      Telemetry.Gauge.set_int g_depth_reached (Search.depth search);
      if Array.length fresh = 0 then None
      else
        let witnesses =
          Array.to_list fresh
          |> List.filter_map (fun h ->
                 match Search.restriction_of_handle search h with
                 | Some func when Revfun.equal func remainder ->
                     Some (Search.key_of_handle search h)
                 | Some _ | None -> None)
        in
        if witnesses = [] then go ()
        else begin
          Telemetry.Counter.add m_realizations (List.length witnesses);
          Telemetry.Span.set_attr "witnesses"
            (Telemetry.Json.Int (List.length witnesses));
          Log.info (fun m ->
              m "found %d witness(es) at depth %d (%d states explored)"
                (List.length witnesses) (Search.depth search) (Search.size search));
          Some (search, witnesses)
        end
    end
  in
  go ()

(* {1 The unified query API} *)

let column_spec f = String.concat "," (List.map string_of_int (Revfun.output_column f))

module Request = struct
  type plan = Auto | Index | Bidir | Forward
  type task = Synthesize | Count_witnesses | Enumerate of { limit : int }

  type t = {
    id : string option;
    qubits : int;
    library : string;
    spec : string;
    task : task;
    max_depth : int;
    plan : plan;
    deadline_ms : int option;
  }

  let make ?id ?(qubits = 3) ?(library = Library.default_name)
      ?(task = Synthesize) ?(max_depth = 7) ?(plan = Auto) ?deadline_ms spec =
    { id; qubits; library; spec; task; max_depth; plan; deadline_ms }

  let equal a b = a = b

  let target t =
    match Spec.parse ~bits:t.qubits t.spec with
    | f -> Ok f
    | exception Invalid_argument msg -> Error msg
    | exception Failure msg -> Error msg

  let plan_to_string = function
    | Auto -> "auto"
    | Index -> "index"
    | Bidir -> "bidir"
    | Forward -> "forward"

  let plan_of_string = function
    | "auto" -> Ok Auto
    | "index" -> Ok Index
    | "bidir" -> Ok Bidir
    | "forward" -> Ok Forward
    | s -> Error (Printf.sprintf "unknown plan %S" s)

  let task_to_json = function
    | Synthesize -> Json.String "synthesize"
    | Count_witnesses -> Json.String "count-witnesses"
    | Enumerate { limit } ->
        Json.Obj [ ("enumerate", Json.Obj [ ("limit", Json.Int limit) ]) ]

  let task_of_json = function
    | Json.String "synthesize" -> Ok Synthesize
    | Json.String "count-witnesses" -> Ok Count_witnesses
    | Json.Obj [ ("enumerate", Json.Obj [ ("limit", Json.Int limit) ]) ] ->
        Ok (Enumerate { limit })
    | Json.String s -> Error (Printf.sprintf "unknown task %S" s)
    | _ -> Error "malformed task"

  let to_json t =
    Json.Obj
      ((("v", Json.Int 1)
        :: (match t.id with Some id -> [ ("id", Json.String id) ] | None -> []))
      @ [ ("qubits", Json.Int t.qubits) ]
      (* the default library is omitted on the wire so pre-plugin peers
         keep parsing our requests *)
      @ (if String.equal t.library Library.default_name then []
         else [ ("library", Json.String t.library) ])
      @ [
          ("spec", Json.String t.spec);
          ("task", task_to_json t.task);
          ("max_depth", Json.Int t.max_depth);
          ("plan", Json.String (plan_to_string t.plan));
        ]
      @
      match t.deadline_ms with
      | Some ms -> [ ("deadline_ms", Json.Int ms) ]
      | None -> [])

  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

  let of_json = function
    | Json.Obj fields ->
        let get k = List.assoc_opt k fields in
        let* () =
          List.fold_left
            (fun acc (k, _) ->
              let* () = acc in
              match k with
              | "v" | "id" | "qubits" | "library" | "spec" | "task"
              | "max_depth" | "plan" | "deadline_ms" ->
                  Ok ()
              | other -> Error (Printf.sprintf "unknown request field %S" other))
            (Ok ()) fields
        in
        let* () =
          match get "v" with
          | None | Some (Json.Int 1) -> Ok ()
          | Some (Json.Int v) ->
              Error (Printf.sprintf "unsupported protocol version %d" v)
          | Some _ -> Error "malformed version field"
        in
        let* id =
          match get "id" with
          | None -> Ok None
          | Some (Json.String s) -> Ok (Some s)
          | Some _ -> Error "malformed id field (want a string)"
        in
        let* qubits =
          match get "qubits" with
          | None -> Ok 3
          | Some (Json.Int n) when n >= 1 -> Ok n
          | Some _ -> Error "malformed qubits field (want a positive integer)"
        in
        let* library =
          match get "library" with
          | None -> Ok Library.default_name
          | Some (Json.String s) ->
              if List.mem s Library.Registry.names then Ok s
              else
                Error
                  (Printf.sprintf "unknown library %S (known: %s)" s
                     (String.concat ", " Library.Registry.names))
          | Some _ -> Error "malformed library field (want a string)"
        in
        let* spec =
          match get "spec" with
          | Some (Json.String s) -> Ok s
          | Some _ -> Error "malformed spec field (want a string)"
          | None -> Error "missing spec field"
        in
        let* task =
          match get "task" with None -> Ok Synthesize | Some j -> task_of_json j
        in
        let* max_depth =
          match get "max_depth" with
          | None -> Ok 7
          | Some (Json.Int n) when n >= 0 -> Ok n
          | Some _ -> Error "malformed max_depth field (want a non-negative integer)"
        in
        let* plan =
          match get "plan" with
          | None -> Ok Auto
          | Some (Json.String s) -> plan_of_string s
          | Some _ -> Error "malformed plan field (want a string)"
        in
        let* deadline_ms =
          match get "deadline_ms" with
          | None -> Ok None
          | Some (Json.Int ms) when ms >= 1 -> Ok (Some ms)
          | Some _ -> Error "malformed deadline_ms field (want a positive integer)"
        in
        Ok { id; qubits; library; spec; task; max_depth; plan; deadline_ms }
    | _ -> Error "request must be a JSON object"

  let key t =
    let spec = match target t with Ok f -> column_spec f | Error _ -> t.spec in
    Json.to_string
      (Json.Obj
         [
           ("qubits", Json.Int t.qubits);
           ("library", Json.String t.library);
           ("spec", Json.String spec);
           ("task", task_to_json t.task);
           ("max_depth", Json.Int t.max_depth);
           ("plan", Json.String (plan_to_string t.plan));
         ])
end

module Response = struct
  type plan_used = Trivial | Index_hit | Index_certified | Bidir_meet | Forward_bfs

  type payload =
    | Synthesized of {
        target : Revfun.t;
        not_mask : int;
        cascade : Cascade.t;
        cost : int;
      }
    | Unrealizable of { max_depth : int }
    | Witnesses of { count : int }
    | Realizations of {
        target : Revfun.t;
        not_mask : int;
        cost : int;
        cascades : Cascade.t list;
        complete : bool;
      }

  type error =
    | Bad_request of string
    | Unsupported of string
    | Overloaded of { retry_after_ms : int }
    | Deadline_exceeded
    | Shutting_down
    | Cancelled
    | Internal of string

  type ok = { plan : plan_used; payload : payload }

  type t = {
    id : string option;
    trace : string option;
    qubits : int;
    body : (ok, error) Stdlib.result;
  }

  let with_id id t = { t with id }
  let with_trace trace t = { t with trace }

  let payload_equal a b =
    match (a, b) with
    | ( Synthesized { target = t1; not_mask = m1; cascade = c1; cost = k1 },
        Synthesized { target = t2; not_mask = m2; cascade = c2; cost = k2 } ) ->
        Revfun.equal t1 t2 && m1 = m2 && Cascade.equal c1 c2 && k1 = k2
    | Unrealizable { max_depth = a }, Unrealizable { max_depth = b } -> a = b
    | Witnesses { count = a }, Witnesses { count = b } -> a = b
    | ( Realizations { target = t1; not_mask = m1; cost = k1; cascades = c1; complete = f1 },
        Realizations { target = t2; not_mask = m2; cost = k2; cascades = c2; complete = f2 }
      ) ->
        Revfun.equal t1 t2 && m1 = m2 && k1 = k2 && f1 = f2
        && List.length c1 = List.length c2
        && List.for_all2 Cascade.equal c1 c2
    | _ -> false

  let equal a b =
    a.id = b.id && a.trace = b.trace && a.qubits = b.qubits
    &&
    match (a.body, b.body) with
    | Ok x, Ok y -> x.plan = y.plan && payload_equal x.payload y.payload
    | Error x, Error y -> x = y
    | _ -> false

  let plan_to_string = function
    | Trivial -> "trivial"
    | Index_hit -> "index"
    | Index_certified -> "index-certified"
    | Bidir_meet -> "bidir"
    | Forward_bfs -> "forward"

  let plan_of_string = function
    | "trivial" -> Ok Trivial
    | "index" -> Ok Index_hit
    | "index-certified" -> Ok Index_certified
    | "bidir" -> Ok Bidir_meet
    | "forward" -> Ok Forward_bfs
    | s -> Error (Printf.sprintf "unknown plan %S" s)

  let payload_to_json = function
    | Synthesized { target; not_mask; cascade; cost } ->
        Json.Obj
          [
            ("kind", Json.String "synthesized");
            ("target", Json.String (column_spec target));
            ("not_mask", Json.Int not_mask);
            ("cascade", Json.String (Cascade.to_string cascade));
            ("cost", Json.Int cost);
          ]
    | Unrealizable { max_depth } ->
        Json.Obj
          [ ("kind", Json.String "unrealizable"); ("max_depth", Json.Int max_depth) ]
    | Witnesses { count } ->
        Json.Obj [ ("kind", Json.String "witnesses"); ("count", Json.Int count) ]
    | Realizations { target; not_mask; cost; cascades; complete } ->
        Json.Obj
          [
            ("kind", Json.String "realizations");
            ("target", Json.String (column_spec target));
            ("not_mask", Json.Int not_mask);
            ("cost", Json.Int cost);
            ( "cascades",
              Json.List
                (List.map (fun c -> Json.String (Cascade.to_string c)) cascades) );
            ("complete", Json.Bool complete);
          ]

  let error_to_json = function
    | Bad_request msg ->
        Json.Obj
          [ ("kind", Json.String "bad-request"); ("message", Json.String msg) ]
    | Unsupported msg ->
        Json.Obj
          [ ("kind", Json.String "unsupported"); ("message", Json.String msg) ]
    | Overloaded { retry_after_ms } ->
        Json.Obj
          [
            ("kind", Json.String "overloaded");
            ("retry_after_ms", Json.Int retry_after_ms);
          ]
    | Deadline_exceeded -> Json.Obj [ ("kind", Json.String "deadline-exceeded") ]
    | Shutting_down -> Json.Obj [ ("kind", Json.String "shutting-down") ]
    | Cancelled -> Json.Obj [ ("kind", Json.String "cancelled") ]
    | Internal msg ->
        Json.Obj [ ("kind", Json.String "internal"); ("message", Json.String msg) ]

  let to_json t =
    Json.Obj
      ((("v", Json.Int 1)
        :: (match t.id with Some id -> [ ("id", Json.String id) ] | None -> []))
      @ (match t.trace with
        | Some tr -> [ ("trace", Json.String tr) ]
        | None -> [])
      @ [ ("qubits", Json.Int t.qubits) ]
      @
      match t.body with
      | Ok { plan; payload } ->
          [
            ( "ok",
              Json.Obj
                [
                  ("plan", Json.String (plan_to_string plan));
                  ("payload", payload_to_json payload);
                ] );
          ]
      | Error e -> [ ("error", error_to_json e) ])

  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

  let parse_target ~qubits s =
    match Spec.of_output_list ~bits:qubits s with
    | f -> Ok f
    | exception Invalid_argument msg ->
        Error (Printf.sprintf "malformed target %S: %s" s msg)

  let parse_cascade ~qubits s =
    match Cascade.of_string ~qubits s with
    | c -> Ok c
    | exception Invalid_argument msg ->
        Error (Printf.sprintf "malformed cascade %S: %s" s msg)

  let int_field fields name =
    match List.assoc_opt name fields with
    | Some (Json.Int n) -> Ok n
    | Some _ -> Error (Printf.sprintf "malformed %s field" name)
    | None -> Error (Printf.sprintf "missing %s field" name)

  let string_field fields name =
    match List.assoc_opt name fields with
    | Some (Json.String s) -> Ok s
    | Some _ -> Error (Printf.sprintf "malformed %s field" name)
    | None -> Error (Printf.sprintf "missing %s field" name)

  let payload_of_json ~qubits = function
    | Json.Obj fields -> (
        let* kind = string_field fields "kind" in
        match kind with
        | "synthesized" ->
            let* target = string_field fields "target" in
            let* target = parse_target ~qubits target in
            let* not_mask = int_field fields "not_mask" in
            let* cascade = string_field fields "cascade" in
            let* cascade = parse_cascade ~qubits cascade in
            let* cost = int_field fields "cost" in
            Ok (Synthesized { target; not_mask; cascade; cost })
        | "unrealizable" ->
            let* max_depth = int_field fields "max_depth" in
            Ok (Unrealizable { max_depth })
        | "witnesses" ->
            let* count = int_field fields "count" in
            Ok (Witnesses { count })
        | "realizations" ->
            let* target = string_field fields "target" in
            let* target = parse_target ~qubits target in
            let* not_mask = int_field fields "not_mask" in
            let* cost = int_field fields "cost" in
            let* cascades =
              match List.assoc_opt "cascades" fields with
              | Some (Json.List items) ->
                  List.fold_left
                    (fun acc item ->
                      let* acc = acc in
                      match item with
                      | Json.String s ->
                          let* c = parse_cascade ~qubits s in
                          Ok (c :: acc)
                      | _ -> Error "malformed cascades field")
                    (Ok []) items
                  |> Stdlib.Result.map List.rev
              | Some _ | None -> Error "missing cascades field"
            in
            let* complete =
              match List.assoc_opt "complete" fields with
              | Some (Json.Bool b) -> Ok b
              | Some _ | None -> Error "missing complete field"
            in
            Ok (Realizations { target; not_mask; cost; cascades; complete })
        | other -> Error (Printf.sprintf "unknown payload kind %S" other))
    | _ -> Error "payload must be a JSON object"

  let error_of_json = function
    | Json.Obj fields -> (
        let* kind = string_field fields "kind" in
        match kind with
        | "bad-request" ->
            let* msg = string_field fields "message" in
            Ok (Bad_request msg)
        | "unsupported" ->
            let* msg = string_field fields "message" in
            Ok (Unsupported msg)
        | "overloaded" ->
            let* retry_after_ms = int_field fields "retry_after_ms" in
            Ok (Overloaded { retry_after_ms })
        | "deadline-exceeded" -> Ok Deadline_exceeded
        | "shutting-down" -> Ok Shutting_down
        | "cancelled" -> Ok Cancelled
        | "internal" ->
            let* msg = string_field fields "message" in
            Ok (Internal msg)
        | other -> Error (Printf.sprintf "unknown error kind %S" other))
    | _ -> Error "error body must be a JSON object"

  let of_json = function
    | Json.Obj fields ->
        let* () =
          match List.assoc_opt "v" fields with
          | None | Some (Json.Int 1) -> Ok ()
          | Some (Json.Int v) ->
              Error (Printf.sprintf "unsupported protocol version %d" v)
          | Some _ -> Error "malformed version field"
        in
        let* id =
          match List.assoc_opt "id" fields with
          | None -> Ok None
          | Some (Json.String s) -> Ok (Some s)
          | Some _ -> Error "malformed id field"
        in
        let* trace =
          match List.assoc_opt "trace" fields with
          | None -> Ok None
          | Some (Json.String s) -> Ok (Some s)
          | Some _ -> Error "malformed trace field"
        in
        let* qubits = int_field fields "qubits" in
        let* body =
          match (List.assoc_opt "ok" fields, List.assoc_opt "error" fields) with
          | Some (Json.Obj ok_fields), None ->
              let* plan = string_field ok_fields "plan" in
              let* plan = plan_of_string plan in
              let* payload =
                match List.assoc_opt "payload" ok_fields with
                | Some j -> payload_of_json ~qubits j
                | None -> Error "missing payload field"
              in
              Ok (Ok { plan; payload })
          | None, Some err ->
              let* e = error_of_json err in
              Ok (Error e)
          | Some _, None -> Error "malformed ok field"
          | None, None -> Error "response carries neither ok nor error"
          | Some _, Some _ -> Error "response carries both ok and error"
        in
        Ok { id; trace; qubits; body }
    | _ -> Error "response must be a JSON object"

  let to_string t = Json.to_string (to_json t)

  let of_string s =
    match Json.of_string s with
    | j -> of_json j
    | exception Json.Parse_error msg -> Error ("invalid JSON: " ^ msg)

  let result_of t =
    match t.body with
    | Ok { payload = Synthesized { target; not_mask; cascade; cost }; _ } ->
        Some { target; not_mask; cascade; cost }
    | _ -> None
end

(* {1 Shared queries}

   One BFS serves every question about a target (minimal cascade,
   witness count, all realizations): [run_query] runs the search once
   and the [query_*] accessors read it. *)

type outcome =
  | Trivial  (** the remainder is the identity: cost 0, NOT layer only *)
  | Not_found  (** no realization within the depth bound (or cancelled) *)
  | Found of { search : Search.t; witnesses : string list }

type query = { q_target : Revfun.t; q_mask : int; q_outcome : outcome }

(* Theorem 2's free NOT layer exists only under coset reduction; a
   full-group library (NCT, NFT) prices NOTs like any gate, so the
   target is searched whole. *)
let coset_split library target =
  if Library.coset_reduction library then strip_not_layer target else (0, target)

let run_query ?(max_depth = 7) ?(jobs = 1) ?(should_stop = no_stop) library target =
  let mask, remainder = coset_split library target in
  let outcome =
    if Revfun.is_identity remainder then Trivial
    else
      match search_until ~max_depth ~jobs ~should_stop library remainder with
      | None -> Not_found
      | Some (search, witnesses) -> Found { search; witnesses }
  in
  { q_target = target; q_mask = mask; q_outcome = outcome }

let query_result q =
  match q.q_outcome with
  | Trivial ->
      Some { target = q.q_target; not_mask = q.q_mask; cascade = []; cost = 0 }
  | Not_found -> None
  | Found { search; witnesses } ->
      let cascade = Search.cascade_of_key search (List.hd witnesses) in
      Some
        {
          target = q.q_target;
          not_mask = q.q_mask;
          cascade;
          cost = List.length cascade;
        }

let query_witnesses q =
  match q.q_outcome with
  | Trivial -> 1
  | Not_found -> 0
  | Found { witnesses; _ } -> List.length witnesses

(* Walk witnesses until the budget runs out: each [all_cascades] call is
   bounded by what remains, so the total never exceeds [limit].  Also
   reports whether the budget survived (the enumeration is then provably
   complete). *)
let enumerate_cascades ~limit search witnesses =
  let remaining = ref limit in
  let acc = ref [] in
  List.iter
    (fun key ->
      if !remaining > 0 then begin
        let cascades = Search.all_cascades ~limit:!remaining search key in
        remaining := !remaining - List.length cascades;
        List.iter (fun cascade -> acc := cascade :: !acc) cascades
      end)
    witnesses;
  (List.rev !acc, !remaining > 0)

let query_realizations ?(limit = 10_000) q =
  match q.q_outcome with
  | Trivial ->
      if limit <= 0 then []
      else [ { target = q.q_target; not_mask = q.q_mask; cascade = []; cost = 0 } ]
  | Not_found -> []
  | Found { search; witnesses } ->
      let cascades, _complete = enumerate_cascades ~limit search witnesses in
      List.map
        (fun cascade ->
          {
            target = q.q_target;
            not_mask = q.q_mask;
            cascade;
            cost = List.length cascade;
          })
        cascades

(* {1 The evaluator}

   [solve] picks the cheapest sound plan for the request:
   1. index hit — the exact cost and a witness in O(log n), no search;
   2. index miss at depth d — proven lower bound cost >= d+1: a
      certified Unrealizable when d >= max_depth, else fall through with
      the bound (which lets the bidirectional engine stop at first join);
   3. bidirectional — meet-in-the-middle over the shared context;
   4. forward BFS — the original algorithm. *)

let solve ?(jobs = 1) ?(should_stop = no_stop) ?index ?bidir library
    (req : Request.t) : Response.t =
  let open Request in
  let respond body : Response.t =
    { id = req.id; trace = None; qubits = req.qubits; body }
  in
  let fail e = respond (Error e) in
  let ok plan payload = respond (Ok { Response.plan; payload }) in
  if req.qubits <> Library.qubits library then
    fail
      (Response.Bad_request
         (Printf.sprintf "this engine is built for %d qubits; the request says %d"
            (Library.qubits library) req.qubits))
  else if not (String.equal req.library (Library.name library)) then
    fail
      (Response.Bad_request
         (Printf.sprintf
            "this engine serves library %s; the request asks for %s"
            (Library.name library) req.library))
  else
    match Request.target req with
    | Error msg -> fail (Response.Bad_request msg)
    | Ok target -> (
        let mask, remainder = coset_split library target in
        let found plan cascade =
          ok plan
            (Response.Synthesized
               { target; not_mask = mask; cascade; cost = List.length cascade })
        in
        let forward_synthesize () =
          match
            search_until ~max_depth:req.max_depth ~jobs ~should_stop library
              remainder
          with
          | None ->
              if should_stop () then fail Response.Cancelled
              else
                ok Response.Forward_bfs
                  (Response.Unrealizable { max_depth = req.max_depth })
          | Some (search, witnesses) ->
              Telemetry.Counter.incr m_plan_forward;
              found Response.Forward_bfs
                (Search.cascade_of_key search (List.hd witnesses))
        in
        let bidir_synthesize ~lower_bound engine =
          Telemetry.Counter.incr m_plan_bidir;
          match
            Bidir.synthesize ~max_cost:req.max_depth ~lower_bound ~should_stop
              engine remainder
          with
          | Some o -> found Response.Bidir_meet o.Bidir.cascade
          | None ->
              if should_stop () then fail Response.Cancelled
              else
                ok Response.Bidir_meet
                  (Response.Unrealizable { max_depth = req.max_depth })
        in
        match req.task with
        | Count_witnesses | Enumerate _
          when req.plan <> Auto && req.plan <> Forward ->
            fail
              (Response.Unsupported
                 "witness counting and enumeration run on the forward plan only")
        | Enumerate { limit } when limit < 0 ->
            fail (Response.Bad_request "limit must be non-negative")
        | Count_witnesses ->
            if Revfun.is_identity remainder then
              ok Response.Trivial (Response.Witnesses { count = 1 })
            else (
              match
                search_until ~max_depth:req.max_depth ~jobs ~should_stop library
                  remainder
              with
              | None ->
                  if should_stop () then fail Response.Cancelled
                  else ok Response.Forward_bfs (Response.Witnesses { count = 0 })
              | Some (_, witnesses) ->
                  Telemetry.Counter.incr m_plan_forward;
                  ok Response.Forward_bfs
                    (Response.Witnesses { count = List.length witnesses }))
        | Enumerate { limit } ->
            if Revfun.is_identity remainder then
              ok Response.Trivial
                (Response.Realizations
                   {
                     target;
                     not_mask = mask;
                     cost = 0;
                     cascades = (if limit > 0 then [ [] ] else []);
                     complete = limit > 0;
                   })
            else (
              match
                search_until ~max_depth:req.max_depth ~jobs ~should_stop library
                  remainder
              with
              | None ->
                  if should_stop () then fail Response.Cancelled
                  else
                    ok Response.Forward_bfs
                      (Response.Unrealizable { max_depth = req.max_depth })
              | Some (search, witnesses) ->
                  Telemetry.Counter.incr m_plan_forward;
                  let cascades, complete =
                    enumerate_cascades ~limit search witnesses
                  in
                  let cost =
                    match cascades with c :: _ -> List.length c | [] -> 0
                  in
                  ok Response.Forward_bfs
                    (Response.Realizations
                       { target; not_mask = mask; cost; cascades; complete }))
        | Synthesize -> (
            if Revfun.is_identity remainder then
              found Response.Trivial []
            else
              match req.plan with
              | Forward -> forward_synthesize ()
              | Bidir -> (
                  match bidir with
                  | None ->
                      fail
                        (Response.Unsupported
                           "no meet-in-the-middle context on this evaluator \
                            (daemon started without bidir, or synth run \
                            without --bidir)")
                  | Some engine -> bidir_synthesize ~lower_bound:1 engine)
              | Index -> (
                  match index with
                  | None ->
                      fail
                        (Response.Unsupported
                           "no census index on this evaluator (daemon started \
                            without --index, or synth run without --index)")
                  | Some idx -> (
                      match Census_index.find idx remainder with
                      | Some (cost, cascade) ->
                          Telemetry.Counter.incr m_plan_index;
                          if cost <= req.max_depth then
                            ok Response.Index_hit
                              (Response.Synthesized
                                 { target; not_mask = mask; cascade; cost })
                          else
                            ok Response.Index_certified
                              (Response.Unrealizable { max_depth = req.max_depth })
                      | None ->
                          if Census_index.is_complete idx then
                            fail
                              (Response.Internal
                                 "complete index failed to answer a zero-fixing \
                                  remainder — the index does not match this \
                                  library")
                          else if Census_index.depth idx >= req.max_depth then begin
                            Telemetry.Counter.incr m_plan_index;
                            ok Response.Index_certified
                              (Response.Unrealizable { max_depth = req.max_depth })
                          end
                          else
                            fail
                              (Response.Unsupported
                                 (Printf.sprintf
                                    "index horizon %d cannot certify max_depth \
                                     %d on a miss; use plan auto to fall \
                                     through"
                                    (Census_index.depth idx) req.max_depth))))
              | Auto -> (
                  let probe =
                    match index with
                    | None -> `No_index
                    | Some idx -> (
                        match Census_index.find idx remainder with
                        | Some (cost, cascade) ->
                            Telemetry.Counter.incr m_plan_index;
                            Log.debug (fun m -> m "index hit: cost %d" cost);
                            `Hit (cost, cascade)
                        | None ->
                            (* A complete index cannot miss a zero-fixing
                               remainder of the library's width: every such
                               function has a record.  Never silently search
                               past this — it means the file and the library
                               disagree despite the fingerprints. *)
                            if Census_index.is_complete idx then `Broken
                            else begin
                              Log.debug (fun m ->
                                  m "index miss: cost >= %d proven"
                                    (Census_index.depth idx + 1));
                              `Miss (Census_index.depth idx)
                            end)
                  in
                  match probe with
                  | `Hit (cost, cascade) ->
                      if cost <= req.max_depth then
                        ok Response.Index_hit
                          (Response.Synthesized
                             { target; not_mask = mask; cascade; cost })
                      else
                        ok Response.Index_certified
                          (Response.Unrealizable { max_depth = req.max_depth })
                  | `Broken ->
                      fail
                        (Response.Internal
                           "complete index failed to answer a zero-fixing \
                            remainder — the index does not match this library")
                  | (`No_index | `Miss _) as probe ->
                      let lower_bound =
                        match probe with `Miss d -> d + 1 | `No_index -> 1
                      in
                      if lower_bound > req.max_depth then begin
                        (* the index horizon covers the whole depth bound: a
                           miss is a certified Unrealizable, no search needed *)
                        Telemetry.Counter.incr m_plan_index;
                        ok Response.Index_certified
                          (Response.Unrealizable { max_depth = req.max_depth })
                      end
                      else begin
                        (match probe with
                        | `Miss horizon ->
                            note_fallback ~horizon ~max_depth:req.max_depth
                              ~engine:
                                (match bidir with
                                | Some _ -> "the meet-in-the-middle engine"
                                | None -> "a forward BFS")
                        | `No_index -> ());
                        match bidir with
                        | Some engine -> bidir_synthesize ~lower_bound engine
                        | None -> forward_synthesize ()
                      end)))

(* {1 Legacy entry points} *)

let express ?(max_depth = 7) ?jobs ?should_stop ?index ?bidir library target =
  let req =
    Request.make
      ~qubits:(Revfun.bits target)
      ~library:(Library.name library) ~max_depth (column_spec target)
  in
  Response.result_of (solve ?jobs ?should_stop ?index ?bidir library req)

let all_realizations ?max_depth ?(limit = 10_000) ?jobs ?should_stop library target =
  query_realizations ~limit (run_query ?max_depth ?jobs ?should_stop library target)

let distinct_witnesses ?max_depth ?jobs ?should_stop library target =
  query_witnesses (run_query ?max_depth ?jobs ?should_stop library target)
