open Reversible

let log_src = Logs.Src.create "qsynth.mce" ~doc:"Minimum-cost expression (MCE)"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_queries = Telemetry.Counter.create "mce.queries"
let m_realizations = Telemetry.Counter.create "mce.realizations"
let m_plan_index = Telemetry.Counter.create "mce.plan.index"
let m_plan_bidir = Telemetry.Counter.create "mce.plan.bidir"
let m_plan_forward = Telemetry.Counter.create "mce.plan.forward"
let g_depth_reached = Telemetry.Gauge.create "mce.depth_reached"
let h_search = Telemetry.Histogram.create "mce.search.seconds"

type result = {
  target : Revfun.t;
  not_mask : int;
  cascade : Cascade.t;
  cost : int;
}

let strip_not_layer target =
  let bits = Revfun.bits target in
  (* Want remainder(0) = 0 where target = d0 * remainder, i.e.
     remainder(x) = target(x XOR mask): pick mask = target^-1(0). *)
  let mask = Revfun.apply (Revfun.inverse target) 0 in
  let remainder = Revfun.compose (Revfun.xor_layer ~bits mask) target in
  assert (Revfun.fixes_zero remainder);
  (mask, remainder)

(* Run the BFS until some state restricts to [remainder]; return the
   level's witness keys.  Depth 0 (identity) handled by the caller. *)
let no_stop () = false

let search_until ~max_depth ~jobs ~should_stop library remainder =
  Telemetry.Counter.incr m_queries;
  Telemetry.Histogram.time h_search @@ fun () ->
  Telemetry.Span.with_span "mce.search"
    ~attrs:[ ("max_depth", Telemetry.Json.Int max_depth) ]
  @@ fun () ->
  let search = Search.create ~jobs library in
  let rec go () =
    if should_stop () then begin
      Log.info (fun m -> m "search cancelled at depth %d" (Search.depth search));
      None
    end
    else if Search.depth search >= max_depth then begin
      Log.debug (fun m -> m "depth bound %d reached without a witness" max_depth);
      None
    end
    else begin
      match Search.try_step search ~cancel:should_stop with
      | None ->
          Log.info (fun m ->
              m "search cancelled mid-level at depth %d" (Search.depth search));
          None
      | Some fresh ->
      Telemetry.Gauge.set_int g_depth_reached (Search.depth search);
      if Array.length fresh = 0 then None
      else
        let witnesses =
          Array.to_list fresh
          |> List.filter_map (fun h ->
                 match Search.restriction_of_handle search h with
                 | Some func when Revfun.equal func remainder ->
                     Some (Search.key_of_handle search h)
                 | Some _ | None -> None)
        in
        if witnesses = [] then go ()
        else begin
          Telemetry.Counter.add m_realizations (List.length witnesses);
          Telemetry.Span.set_attr "witnesses"
            (Telemetry.Json.Int (List.length witnesses));
          Log.info (fun m ->
              m "found %d witness(es) at depth %d (%d states explored)"
                (List.length witnesses) (Search.depth search) (Search.size search));
          Some (search, witnesses)
        end
    end
  in
  go ()

(* {1 Shared queries}

   One BFS serves every question about a target (minimal cascade,
   witness count, all realizations): [run_query] runs the search once
   and the [query_*] accessors read it.  The former API entry points
   each re-ran the census from scratch — three searches to print fig. 9's
   three numbers. *)

type outcome =
  | Trivial  (** the remainder is the identity: cost 0, NOT layer only *)
  | Not_found  (** no realization within the depth bound (or cancelled) *)
  | Found of { search : Search.t; witnesses : string list }

type query = { q_target : Revfun.t; q_mask : int; q_outcome : outcome }

let run_query ?(max_depth = 7) ?(jobs = 1) ?(should_stop = no_stop) library target =
  let mask, remainder = strip_not_layer target in
  let outcome =
    if Revfun.is_identity remainder then Trivial
    else
      match search_until ~max_depth ~jobs ~should_stop library remainder with
      | None -> Not_found
      | Some (search, witnesses) -> Found { search; witnesses }
  in
  { q_target = target; q_mask = mask; q_outcome = outcome }

let query_result q =
  match q.q_outcome with
  | Trivial ->
      Some { target = q.q_target; not_mask = q.q_mask; cascade = []; cost = 0 }
  | Not_found -> None
  | Found { search; witnesses } ->
      let cascade = Search.cascade_of_key search (List.hd witnesses) in
      Some
        {
          target = q.q_target;
          not_mask = q.q_mask;
          cascade;
          cost = List.length cascade;
        }

let query_witnesses q =
  match q.q_outcome with
  | Trivial -> 1
  | Not_found -> 0
  | Found { witnesses; _ } -> List.length witnesses

let query_realizations ?(limit = 10_000) q =
  match q.q_outcome with
  | Trivial ->
      if limit <= 0 then []
      else [ { target = q.q_target; not_mask = q.q_mask; cascade = []; cost = 0 } ]
  | Not_found -> []
  | Found { search; witnesses } ->
      (* Stop walking witnesses the moment the budget runs out: each
         [all_cascades] call is bounded by what remains, so the total
         never exceeds [limit] and exhausted budgets cost nothing. *)
      let remaining = ref limit in
      let acc = ref [] in
      List.iter
        (fun key ->
          if !remaining > 0 then begin
            let cascades = Search.all_cascades ~limit:!remaining search key in
            remaining := !remaining - List.length cascades;
            List.iter
              (fun cascade ->
                acc :=
                  {
                    target = q.q_target;
                    not_mask = q.q_mask;
                    cascade;
                    cost = List.length cascade;
                  }
                  :: !acc)
              cascades
          end)
        witnesses;
      List.rev !acc

(* {1 Planned entry points}

   [express] picks the cheapest sound plan for the query:
   1. index hit — the exact cost and a witness in O(log n), no search;
   2. index miss at depth d — proven lower bound cost >= d+1: answer
      [None] outright when d >= max_depth, else fall through with the
      bound (which lets the bidirectional engine stop at first join);
   3. bidirectional — meet-in-the-middle over the shared context;
   4. forward BFS — the original algorithm. *)

let express ?(max_depth = 7) ?(jobs = 1) ?(should_stop = no_stop) ?index ?bidir
    library target =
  let mask, remainder = strip_not_layer target in
  if Revfun.is_identity remainder then
    Some { target; not_mask = mask; cascade = []; cost = 0 }
  else begin
    let lower_bound = ref 1 in
    let index_hit =
      match index with
      | None -> None
      | Some idx -> (
          match Census_index.find idx remainder with
          | Some (cost, cascade) ->
              Telemetry.Counter.incr m_plan_index;
              Log.debug (fun m -> m "index hit: cost %d" cost);
              Some
                (if cost <= max_depth then
                   Some { target; not_mask = mask; cascade; cost }
                 else None)
          | None ->
              lower_bound := Census_index.depth idx + 1;
              Log.debug (fun m ->
                  m "index miss: cost >= %d proven" !lower_bound);
              None)
    in
    match index_hit with
    | Some answer -> answer
    | None ->
        if !lower_bound > max_depth then begin
          (* the index horizon covers the whole depth bound: a miss is a
             certified None, no search needed *)
          Telemetry.Counter.incr m_plan_index;
          None
        end
        else begin
          match bidir with
          | Some engine ->
              Telemetry.Counter.incr m_plan_bidir;
              (match
                 Bidir.synthesize ~max_cost:max_depth ~lower_bound:!lower_bound
                   ~should_stop engine remainder
               with
              | Some o ->
                  Some
                    {
                      target;
                      not_mask = mask;
                      cascade = o.Bidir.cascade;
                      cost = o.Bidir.cost;
                    }
              | None -> None)
          | None ->
              Telemetry.Counter.incr m_plan_forward;
              query_result
                { q_target = target;
                  q_mask = mask;
                  q_outcome =
                    (match
                       search_until ~max_depth ~jobs ~should_stop library remainder
                     with
                    | None -> Not_found
                    | Some (search, witnesses) -> Found { search; witnesses });
                }
        end
  end

let all_realizations ?max_depth ?(limit = 10_000) ?jobs ?should_stop library target =
  query_realizations ~limit (run_query ?max_depth ?jobs ?should_stop library target)

let distinct_witnesses ?max_depth ?jobs ?should_stop library target =
  query_witnesses (run_query ?max_depth ?jobs ?should_stop library target)
