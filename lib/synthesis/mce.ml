open Reversible

let log_src = Logs.Src.create "qsynth.mce" ~doc:"Minimum-cost expression (MCE)"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_queries = Telemetry.Counter.create "mce.queries"
let m_realizations = Telemetry.Counter.create "mce.realizations"
let g_depth_reached = Telemetry.Gauge.create "mce.depth_reached"
let h_search = Telemetry.Histogram.create "mce.search.seconds"

type result = {
  target : Revfun.t;
  not_mask : int;
  cascade : Cascade.t;
  cost : int;
}

let strip_not_layer target =
  let bits = Revfun.bits target in
  (* Want remainder(0) = 0 where target = d0 * remainder, i.e.
     remainder(x) = target(x XOR mask): pick mask = target^-1(0). *)
  let mask = Revfun.apply (Revfun.inverse target) 0 in
  let remainder = Revfun.compose (Revfun.xor_layer ~bits mask) target in
  assert (Revfun.fixes_zero remainder);
  (mask, remainder)

(* Run the BFS until some state restricts to [remainder]; return the
   level's witness keys.  Depth 0 (identity) handled by the caller. *)
let no_stop () = false

let search_until ~max_depth ~jobs ~should_stop library remainder =
  Telemetry.Counter.incr m_queries;
  Telemetry.Histogram.time h_search @@ fun () ->
  Telemetry.Span.with_span "mce.search"
    ~attrs:[ ("max_depth", Telemetry.Json.Int max_depth) ]
  @@ fun () ->
  let search = Search.create ~jobs library in
  let rec go () =
    if should_stop () then begin
      Log.info (fun m -> m "search cancelled at depth %d" (Search.depth search));
      None
    end
    else if Search.depth search >= max_depth then begin
      Log.debug (fun m -> m "depth bound %d reached without a witness" max_depth);
      None
    end
    else begin
      match Search.try_step search ~cancel:should_stop with
      | None ->
          Log.info (fun m ->
              m "search cancelled mid-level at depth %d" (Search.depth search));
          None
      | Some fresh ->
      Telemetry.Gauge.set_int g_depth_reached (Search.depth search);
      if Array.length fresh = 0 then None
      else
        let witnesses =
          Array.to_list fresh
          |> List.filter_map (fun h ->
                 match Search.restriction_of_handle search h with
                 | Some func when Revfun.equal func remainder ->
                     Some (Search.key_of_handle search h)
                 | Some _ | None -> None)
        in
        if witnesses = [] then go ()
        else begin
          Telemetry.Counter.add m_realizations (List.length witnesses);
          Telemetry.Span.set_attr "witnesses"
            (Telemetry.Json.Int (List.length witnesses));
          Log.info (fun m ->
              m "found %d witness(es) at depth %d (%d states explored)"
                (List.length witnesses) (Search.depth search) (Search.size search));
          Some (search, witnesses)
        end
    end
  in
  go ()

let express ?(max_depth = 7) ?(jobs = 1) ?(should_stop = no_stop) library target =
  let mask, remainder = strip_not_layer target in
  if Revfun.is_identity remainder then
    Some { target; not_mask = mask; cascade = []; cost = 0 }
  else
    match search_until ~max_depth ~jobs ~should_stop library remainder with
    | None -> None
    | Some (search, witness :: _) ->
        let cascade = Search.cascade_of_key search witness in
        Some { target; not_mask = mask; cascade; cost = List.length cascade }
    | Some (_, []) -> assert false

let all_realizations ?(max_depth = 7) ?(limit = 10_000) ?(jobs = 1)
    ?(should_stop = no_stop) library target =
  let mask, remainder = strip_not_layer target in
  if Revfun.is_identity remainder then
    [ { target; not_mask = mask; cascade = []; cost = 0 } ]
  else
    match search_until ~max_depth ~jobs ~should_stop library remainder with
    | None -> []
    | Some (search, witnesses) ->
        let remaining = ref limit in
        List.concat_map
          (fun key ->
            let cascades = Search.all_cascades ~limit:!remaining search key in
            remaining := max 0 (!remaining - List.length cascades);
            List.map
              (fun cascade ->
                { target; not_mask = mask; cascade; cost = List.length cascade })
              cascades)
          witnesses

let distinct_witnesses ?(max_depth = 7) ?(jobs = 1) ?(should_stop = no_stop) library
    target =
  let _, remainder = strip_not_layer target in
  if Revfun.is_identity remainder then 1
  else
    match search_until ~max_depth ~jobs ~should_stop library remainder with
    | None -> 0
    | Some (_, witnesses) -> List.length witnesses
