open Mvl

type entry = {
  gate : Gate.t;
  perm : Permgroup.Perm.t;
  perm_array : int array;
  inverse_array : int array;
  purity_mask : int;
}

type t = {
  name : string;
  encoding : Encoding.t;
  entries : entry array;
  by_gate : (Gate.t, int) Hashtbl.t;
  coset_reduction : bool;
}

let default_name = "paper18"

let compile encoding gate =
  let qubits = Encoding.qubits encoding in
  if List.exists (fun w -> w >= qubits) (Gate.wires gate) then
    invalid_arg "Library.make: gate wire outside the encoding";
  let perm = Encoding.perm_of_action encoding (Gate.apply gate) in
  {
    gate;
    perm;
    perm_array = Permgroup.Perm.to_array perm;
    inverse_array = Permgroup.Perm.to_array (Permgroup.Perm.inverse perm);
    purity_mask = Gate.purity_mask gate;
  }

let make ?(name = default_name) ?(coset_reduction = true) ?gates encoding =
  let gates =
    match gates with Some gs -> gs | None -> Gate.all ~qubits:(Encoding.qubits encoding)
  in
  let entries = Array.of_list (List.map (compile encoding) gates) in
  (* index into [entries] rather than the entry itself, so entry rewrites
     ([unconstrained]) keep the table valid *)
  let by_gate = Hashtbl.create (2 * Array.length entries) in
  Array.iteri (fun i e -> Hashtbl.replace by_gate e.gate i) entries;
  { name; encoding; entries; by_gate; coset_reduction }

let name t = t.name
let encoding t = t.encoding
let entries t = t.entries
let qubits t = Encoding.qubits t.encoding
let size t = Array.length t.entries
let coset_reduction t = t.coset_reduction

let entry_of_gate t g =
  match Hashtbl.find_opt t.by_gate g with
  | Some i -> t.entries.(i)
  | None -> raise Not_found

let perm_of_gate t g = (entry_of_gate t g).perm
let signature_allows ~signature entry = signature land entry.purity_mask = 0

let banned_set t g =
  let entry = entry_of_gate t g in
  let acc = ref [] in
  for point = Encoding.size t.encoding - 1 downto 0 do
    if Encoding.mixed_signature t.encoding point land entry.purity_mask <> 0 then
      acc := point :: !acc
  done;
  !acc

let unconstrained t =
  { t with entries = Array.map (fun e -> { e with purity_mask = 0 }) t.entries }

let feynman_only t =
  let gates =
    Array.to_list t.entries
    |> List.filter_map (fun e ->
           match Gate.kind e.gate with Gate.Feynman -> Some e.gate | _ -> None)
  in
  make ~name:t.name ~coset_reduction:t.coset_reduction ~gates t.encoding

module Registry = struct
  type descriptor = {
    name : string;
    summary : string;
    gates : qubits:int -> Gate.t list;
    encoding : qubits:int -> Encoding.t;
    coset_reduction : bool;
  }

  let name d = d.name
  let summary d = d.summary
  let coset_reduction d = d.coset_reduction

  let paper18 =
    {
      name = default_name;
      summary =
        "CV/CV+/CNOT quantum library of the paper (18 gates on 3 qubits, \
         mixed 38-point encoding, free NOT layer)";
      gates = (fun ~qubits -> Gate.all ~qubits);
      encoding = (fun ~qubits -> Encoding.make ~qubits);
      coset_reduction = true;
    }

  let nct =
    {
      name = "nct";
      summary =
        "classical NCT library: NOT, CNOT, Toffoli (12 gates on 3 qubits, \
         binary encoding)";
      gates = (fun ~qubits -> Gate.nct ~qubits);
      encoding = (fun ~qubits -> Encoding.make_binary ~qubits);
      coset_reduction = false;
    }

  let nft =
    {
      name = "nft";
      summary =
        "classical NFT library of Younes, arXiv:1304.5804: generalized \
         Toffoli + generalized Fredkin families (18 gates on 3 qubits, \
         binary encoding)";
      gates = (fun ~qubits -> Gate.nft ~qubits);
      encoding = (fun ~qubits -> Encoding.make_binary ~qubits);
      coset_reduction = false;
    }

  let all = [ paper18; nct; nft ]
  let names = List.map (fun d -> d.name) all
  let find n = List.find_opt (fun d -> String.equal d.name n) all

  let instantiate ?(qubits = 3) d =
    make ~name:d.name ~coset_reduction:d.coset_reduction
      ~gates:(d.gates ~qubits)
      (d.encoding ~qubits)
end

let of_name ?qubits n =
  match Registry.find n with
  | Some d -> Registry.instantiate ?qubits d
  | None ->
      invalid_arg
        (Printf.sprintf "Library.of_name: unknown library %S (known: %s)" n
           (String.concat ", " Registry.names))
