open Mvl

type entry = {
  gate : Gate.t;
  perm : Permgroup.Perm.t;
  perm_array : int array;
  inverse_array : int array;
  purity_mask : int;
}

type t = { encoding : Encoding.t; entries : entry array }

let compile encoding gate =
  let qubits = Encoding.qubits encoding in
  if Gate.target gate >= qubits || Gate.control gate >= qubits then
    invalid_arg "Library.make: gate wire outside the encoding";
  let perm = Encoding.perm_of_action encoding (Gate.apply gate) in
  {
    gate;
    perm;
    perm_array = Permgroup.Perm.to_array perm;
    inverse_array = Permgroup.Perm.to_array (Permgroup.Perm.inverse perm);
    purity_mask = Gate.purity_mask gate;
  }

let make ?gates encoding =
  let gates =
    match gates with Some gs -> gs | None -> Gate.all ~qubits:(Encoding.qubits encoding)
  in
  { encoding; entries = Array.of_list (List.map (compile encoding) gates) }

let encoding t = t.encoding
let entries t = t.entries
let qubits t = Encoding.qubits t.encoding
let size t = Array.length t.entries

let entry_of_gate t g =
  match Array.find_opt (fun e -> Gate.equal e.gate g) t.entries with
  | Some e -> e
  | None -> raise Not_found

let perm_of_gate t g = (entry_of_gate t g).perm
let signature_allows ~signature entry = signature land entry.purity_mask = 0

let banned_set t g =
  let entry = entry_of_gate t g in
  let acc = ref [] in
  for point = Encoding.size t.encoding - 1 downto 0 do
    if Encoding.mixed_signature t.encoding point land entry.purity_mask <> 0 then
      acc := point :: !acc
  done;
  !acc

let unconstrained t =
  { t with entries = Array.map (fun e -> { e with purity_mask = 0 }) t.entries }

let feynman_only t =
  let gates =
    Array.to_list t.entries
    |> List.filter_map (fun e ->
           match Gate.kind e.gate with
           | Gate.Feynman -> Some e.gate
           | Gate.Controlled_v | Gate.Controlled_v_dag -> None)
  in
  make ~gates t.encoding
