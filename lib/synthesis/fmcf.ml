let log_src = Logs.Src.create "qsynth.fmcf" ~doc:"FMCF census (Table 2)"

module Log = (val Logs.src_log log_src : Logs.LOG)

let s_frontier = Telemetry.Series.create "fmcf.level.frontier"
let s_pre_g = Telemetry.Series.create "fmcf.level.pre_g"
let s_g = Telemetry.Series.create "fmcf.level.g"
let s_paper_g = Telemetry.Series.create "fmcf.level.paper_g"
let m_dedupe_level = Telemetry.Counter.create "fmcf.dedupe.level_hits"
let m_dedupe_global = Telemetry.Counter.create "fmcf.dedupe.global_hits"
let h_restrict = Telemetry.Histogram.create "fmcf.restriction.seconds"

type member = { func : Reversible.Revfun.t; witness : string; cost : int }

type level = {
  cost : int;
  frontier_size : int;
  members : member list;
  paper_count : int;
}

type t = {
  library : Library.t;
  search : Search.t;
  levels : level list;
  index : (string, member) Hashtbl.t; (* func_key -> member, built at census time *)
}

let func_key func = Permgroup.Perm.key (Reversible.Revfun.to_perm func)

let run ?(max_depth = 7) ?(jobs = 1) library =
  Telemetry.Span.with_span "fmcf.run"
    ~attrs:[ ("max_depth", Telemetry.Json.Int max_depth) ]
  @@ fun () ->
  let search = Search.create ~jobs library in
  let found = Hashtbl.create 4096 in
  let paper_found = Hashtbl.create 4096 in
  let index = Hashtbl.create 4096 in
  let identity_func = Reversible.Revfun.identity ~bits:(Library.qubits library) in
  (* G[0] = {identity}; the paper's variant never subtracts it. *)
  let root = Search.key_of_handle search (Search.frontier_handles search).(0) in
  let identity_member = { func = identity_func; witness = root; cost = 0 } in
  Hashtbl.add found (func_key identity_func) ();
  Hashtbl.add index (func_key identity_func) identity_member;
  let level0 =
    { cost = 0; frontier_size = 1; members = [ identity_member ]; paper_count = 1 }
  in
  Telemetry.Series.set s_frontier ~index:0 1;
  Telemetry.Series.set s_pre_g ~index:0 1;
  Telemetry.Series.set s_g ~index:0 1;
  Telemetry.Series.set s_paper_g ~index:0 1;
  let levels = ref [ level0 ] in
  for cost = 1 to max_depth do
    Telemetry.Span.with_span "fmcf.level"
      ~attrs:[ ("cost", Telemetry.Json.Int cost) ]
    @@ fun () ->
    let fresh = Search.step_handles search in
    (* step_handles already counted the level: no O(n) List.length pass. *)
    let frontier_size = Array.length fresh in
    let members = ref [] in
    let member_count = ref 0 in
    let level_hits = ref 0 and global_hits = ref 0 in
    let level_restrictions = Hashtbl.create 256 in
    Telemetry.Histogram.time h_restrict (fun () ->
        Array.iter
          (fun h ->
            match Search.restriction_of_handle search h with
            | None -> ()
            | Some func ->
                let fk = func_key func in
                (* pre_G[cost] as a set: dedupe within the level.  Keys
                   are only materialized for first-in-level witnesses. *)
                if not (Hashtbl.mem level_restrictions fk) then begin
                  let key = Search.key_of_handle search h in
                  Hashtbl.add level_restrictions fk key;
                  if not (Hashtbl.mem found fk) then begin
                    Hashtbl.add found fk ();
                    let member = { func; witness = key; cost } in
                    Hashtbl.add index fk member;
                    members := member :: !members;
                    incr member_count
                  end
                  else incr global_hits
                end
                else incr level_hits)
          fresh);
    (* Paper-variant count: level 2 skips subtraction of earlier levels;
       other levels subtract everything recorded so far (which never
       includes the identity, G[0]). *)
    let paper_count = ref 0 in
    Hashtbl.iter
      (fun fk _ ->
        if cost = 2 || not (Hashtbl.mem paper_found fk) then incr paper_count)
      level_restrictions;
    Hashtbl.iter
      (fun fk _ -> if not (Hashtbl.mem paper_found fk) then Hashtbl.add paper_found fk ())
      level_restrictions;
    Telemetry.Series.set s_frontier ~index:cost frontier_size;
    Telemetry.Series.set s_pre_g ~index:cost (Hashtbl.length level_restrictions);
    Telemetry.Series.set s_g ~index:cost !member_count;
    Telemetry.Series.set s_paper_g ~index:cost !paper_count;
    Telemetry.Counter.add m_dedupe_level !level_hits;
    Telemetry.Counter.add m_dedupe_global !global_hits;
    Log.info (fun m ->
        m "level %d: frontier %d, pre-G %d, |G[%d]| = %d (dedupe: %d in-level, %d global)"
          cost frontier_size
          (Hashtbl.length level_restrictions)
          cost !member_count !level_hits !global_hits);
    levels :=
      {
        cost;
        frontier_size;
        members = List.rev !members;
        paper_count = !paper_count;
      }
      :: !levels
  done;
  { library; search; levels = List.rev !levels; index }

let levels t = t.levels
let search t = t.search
let counts t = List.map (fun l -> (l.cost, List.length l.members)) t.levels
let paper_counts t = List.map (fun l -> (l.cost, l.paper_count)) t.levels

let s8_counts t =
  let factor = 1 lsl Library.qubits t.library in
  List.map (fun (cost, n) -> (cost, factor * n)) (counts t)

let total_found t =
  List.fold_left (fun acc l -> acc + List.length l.members) 0 t.levels

let find t func = Hashtbl.find_opt t.index (func_key func)

let cascade_of_member t member = Search.cascade_of_key t.search member.witness
let members_at t ~cost =
  match List.find_opt (fun l -> l.cost = cost) t.levels with
  | Some l -> l.members
  | None -> []
