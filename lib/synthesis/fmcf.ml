let log_src = Logs.Src.create "qsynth.fmcf" ~doc:"FMCF census (Table 2)"

module Log = (val Logs.src_log log_src : Logs.LOG)

let s_frontier = Telemetry.Series.create "fmcf.level.frontier"
let s_pre_g = Telemetry.Series.create "fmcf.level.pre_g"
let s_g = Telemetry.Series.create "fmcf.level.g"
let s_paper_g = Telemetry.Series.create "fmcf.level.paper_g"
let m_dedupe_level = Telemetry.Counter.create "fmcf.dedupe.level_hits"
let m_dedupe_global = Telemetry.Counter.create "fmcf.dedupe.global_hits"
let h_restrict = Telemetry.Histogram.create "fmcf.restriction.seconds"
let m_budget_states = Telemetry.Counter.create "search.budget.states.hit"
let m_budget_mem = Telemetry.Counter.create "search.budget.mem.hit"
let m_timeout = Telemetry.Counter.create "search.timeout.hit"
let m_cancelled = Telemetry.Counter.create "search.cancelled"

type member = { func : Reversible.Revfun.t; witness : string; cost : int }

type level = {
  cost : int;
  frontier_size : int;
  members : member list;
  paper_count : int;
}

type t = {
  library : Library.t;
  search : Search.t;
  levels : level list;
  index : (string, member) Hashtbl.t; (* func_key -> member, built at census time *)
}

type stop_reason = Completed | Budget_states | Budget_mem | Timed_out | Cancelled

let describe_stop = function
  | Completed -> "completed"
  | Budget_states -> "state budget exhausted (--max-states)"
  | Budget_mem -> "memory budget exhausted (--max-mem)"
  | Timed_out -> "wall-clock budget exhausted (--timeout)"
  | Cancelled -> "cancelled (SIGINT/SIGTERM)"

let func_key func = Permgroup.Perm.key (Reversible.Revfun.to_perm func)

(* Shared census state threaded through level processing; deterministic
   given the frontier sequence, so replaying the frontiers of a restored
   arena reproduces the levels of the interrupted run exactly. *)
type acc = {
  found : (string, unit) Hashtbl.t;
  paper_found : (string, unit) Hashtbl.t;
  idx : (string, member) Hashtbl.t;
}

let process_level search acc ~cost frontier =
  Telemetry.Span.with_span "fmcf.level" ~attrs:[ ("cost", Telemetry.Json.Int cost) ]
  @@ fun () ->
  let frontier_size = Array.length frontier in
  let members = ref [] in
  let member_count = ref 0 in
  let level_hits = ref 0 and global_hits = ref 0 in
  let level_restrictions = Hashtbl.create 256 in
  Telemetry.Histogram.time h_restrict (fun () ->
      Array.iter
        (fun h ->
          match Search.restriction_of_handle search h with
          | None -> ()
          | Some func ->
              let fk = func_key func in
              (* pre_G[cost] as a set: dedupe within the level.  Keys
                 are only materialized for first-in-level witnesses. *)
              if not (Hashtbl.mem level_restrictions fk) then begin
                let key = Search.key_of_handle search h in
                Hashtbl.add level_restrictions fk key;
                if not (Hashtbl.mem acc.found fk) then begin
                  Hashtbl.add acc.found fk ();
                  let member = { func; witness = key; cost } in
                  Hashtbl.add acc.idx fk member;
                  members := member :: !members;
                  incr member_count
                end
                else incr global_hits
              end
              else incr level_hits)
        frontier);
  (* Paper-variant count: level 2 skips subtraction of earlier levels;
     other levels subtract everything recorded so far (which never
     includes the identity, G[0]). *)
  let paper_count = ref 0 in
  Hashtbl.iter
    (fun fk _ ->
      if cost = 2 || not (Hashtbl.mem acc.paper_found fk) then incr paper_count)
    level_restrictions;
  Hashtbl.iter
    (fun fk _ ->
      if not (Hashtbl.mem acc.paper_found fk) then Hashtbl.add acc.paper_found fk ())
    level_restrictions;
  Telemetry.Series.set s_frontier ~index:cost frontier_size;
  Telemetry.Series.set s_pre_g ~index:cost (Hashtbl.length level_restrictions);
  Telemetry.Series.set s_g ~index:cost !member_count;
  Telemetry.Series.set s_paper_g ~index:cost !paper_count;
  Telemetry.Counter.add m_dedupe_level !level_hits;
  Telemetry.Counter.add m_dedupe_global !global_hits;
  Log.info (fun m ->
      m "level %d: frontier %d, pre-G %d, |G[%d]| = %d (dedupe: %d in-level, %d global)"
        cost frontier_size
        (Hashtbl.length level_restrictions)
        cost !member_count !level_hits !global_hits);
  { cost; frontier_size; members = List.rev !members; paper_count = !paper_count }

let level_zero search acc library =
  let identity_func = Reversible.Revfun.identity ~bits:(Library.qubits library) in
  (* G[0] = {identity}; the paper's variant never subtracts it. *)
  let root = Search.key_of_handle search (Search.handles_at_depth search 0).(0) in
  let identity_member = { func = identity_func; witness = root; cost = 0 } in
  Hashtbl.add acc.found (func_key identity_func) ();
  Hashtbl.add acc.idx (func_key identity_func) identity_member;
  Telemetry.Series.set s_frontier ~index:0 1;
  Telemetry.Series.set s_pre_g ~index:0 1;
  Telemetry.Series.set s_g ~index:0 1;
  Telemetry.Series.set s_paper_g ~index:0 1;
  { cost = 0; frontier_size = 1; members = [ identity_member ]; paper_count = 1 }

let no_stop () = false

let run_guarded ?(max_depth = 7) ?(jobs = 1) ?resume ?max_states ?max_mem ?timeout
    ?(should_stop = no_stop) ?on_level library =
  Telemetry.Span.with_span "fmcf.run"
    ~attrs:[ ("max_depth", Telemetry.Json.Int max_depth) ]
  @@ fun () ->
  let started = Unix.gettimeofday () in
  let search =
    match resume with
    | None -> Search.create ~jobs library
    | Some s ->
        if Search.library s != library then
          invalid_arg "Fmcf.run_guarded: resumed search was built for another library";
        s
  in
  if Search.depth search > max_depth then
    invalid_arg
      (Printf.sprintf
         "Fmcf.run_guarded: resumed search is already at level %d, beyond max_depth %d"
         (Search.depth search) max_depth);
  let acc =
    { found = Hashtbl.create 4096; paper_found = Hashtbl.create 4096;
      idx = Hashtbl.create 4096 }
  in
  let levels = ref [ level_zero search acc library ] in
  (* Replay the completed levels of a restored arena through the same
     processing path: the reconstructed frontiers are byte-identical to
     the original run's (Search.handles_at_depth returns canonical
     order), so the replayed members, witnesses and counts are too. *)
  for cost = 1 to Search.depth search do
    levels := process_level search acc ~cost (Search.handles_at_depth search cost)
              :: !levels
  done;
  let deadline = Option.map (fun s -> started +. s) timeout in
  let deadline_passed () =
    match deadline with None -> false | Some d -> Unix.gettimeofday () >= d
  in
  let cancel () = should_stop () || deadline_passed () in
  let over_states () =
    match max_states with None -> false | Some n -> Search.size search >= n
  in
  let over_mem () =
    match max_mem with None -> false | Some n -> Search.arena_bytes search >= n
  in
  let stop = ref None in
  while !stop = None && Search.depth search < max_depth do
    if should_stop () then stop := Some Cancelled
    else if deadline_passed () then stop := Some Timed_out
    else if over_states () then stop := Some Budget_states
    else if over_mem () then stop := Some Budget_mem
    else
      match Search.try_step search ~cancel with
      | None ->
          (* mid-level abandon: the engine rolled back to the last
             complete level; decide which guard fired *)
          stop := Some (if should_stop () then Cancelled else Timed_out)
      | Some fresh ->
          let cost = Search.depth search in
          (* The hook fires before the level's members are extracted so an
             asynchronous checkpoint write can overlap that processing. *)
          (match on_level with None -> () | Some f -> f search ~cost);
          levels := process_level search acc ~cost fresh :: !levels
  done;
  let reason = Option.value ~default:Completed !stop in
  (match reason with
  | Completed -> ()
  | Budget_states -> Telemetry.Counter.incr m_budget_states
  | Budget_mem -> Telemetry.Counter.incr m_budget_mem
  | Timed_out -> Telemetry.Counter.incr m_timeout
  | Cancelled -> Telemetry.Counter.incr m_cancelled);
  if reason <> Completed then
    Log.warn (fun m ->
        m "census stopped early at level %d/%d: %s" (Search.depth search) max_depth
          (describe_stop reason));
  if Telemetry.enabled () then
    Telemetry.Span.set_attr "stop_reason" (Telemetry.Json.String (describe_stop reason));
  ({ library; search; levels = List.rev !levels; index = acc.idx }, reason)

let run ?max_depth ?jobs library = fst (run_guarded ?max_depth ?jobs library)

let levels t = t.levels
let search t = t.search
let depth t = Search.depth t.search

let iter_members t f =
  List.iter (fun level -> List.iter (f ~cost:level.cost) level.members) t.levels
let counts t = List.map (fun l -> (l.cost, List.length l.members)) t.levels
let paper_counts t = List.map (fun l -> (l.cost, l.paper_count)) t.levels

let s8_counts t =
  let factor = 1 lsl Library.qubits t.library in
  List.map (fun (cost, n) -> (cost, factor * n)) (counts t)

let total_found t =
  List.fold_left (fun acc l -> acc + List.length l.members) 0 t.levels

let find t func = Hashtbl.find_opt t.index (func_key func)

let cascade_of_member t member = Search.cascade_of_key t.search member.witness
let members_at t ~cost =
  match List.find_opt (fun l -> l.cost = cost) t.levels with
  | Some l -> l.members
  | None -> []
