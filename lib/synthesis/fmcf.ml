let log_src = Logs.Src.create "qsynth.fmcf" ~doc:"FMCF census (Table 2)"

module Log = (val Logs.src_log log_src : Logs.LOG)

let s_frontier = Telemetry.Series.create "fmcf.level.frontier"
let s_pre_g = Telemetry.Series.create "fmcf.level.pre_g"
let s_g = Telemetry.Series.create "fmcf.level.g"
let s_paper_g = Telemetry.Series.create "fmcf.level.paper_g"
let m_dedupe_level = Telemetry.Counter.create "fmcf.dedupe.level_hits"
let m_dedupe_global = Telemetry.Counter.create "fmcf.dedupe.global_hits"
let h_restrict = Telemetry.Histogram.create "fmcf.restriction.seconds"
let m_budget_states = Telemetry.Counter.create "search.budget.states.hit"
let m_budget_mem = Telemetry.Counter.create "search.budget.mem.hit"
let m_timeout = Telemetry.Counter.create "search.timeout.hit"
let m_cancelled = Telemetry.Counter.create "search.cancelled"

type member = { func : Reversible.Revfun.t; witness : string; cost : int }

type level = {
  cost : int;
  frontier_size : int;
  members : member list;
  paper_count : int;
}

type t = {
  library : Library.t;
  search : Search.t;
  symmetry : Symmetry.t option; (* Some: the search ran quotiented *)
  levels : level list;
  index : (string, member) Hashtbl.t; (* func_key -> member, built at census time *)
  mutable image_oracle : (string, int) Hashtbl.t option;
      (* raw mode: lazily built binary-image -> minimal-depth table, the
         witness-reconstruction oracle (quotient mode reads the arena) *)
}

type stop_reason = Completed | Budget_states | Budget_mem | Timed_out | Cancelled

let describe_stop = function
  | Completed -> "completed"
  | Budget_states -> "state budget exhausted (--max-states)"
  | Budget_mem -> "memory budget exhausted (--max-mem)"
  | Timed_out -> "wall-clock budget exhausted (--timeout)"
  | Cancelled -> "cancelled (SIGINT/SIGTERM)"

let func_key func = Permgroup.Perm.key (Reversible.Revfun.to_perm func)

(* Shared census state threaded through level processing; deterministic
   given the frontier sequence, so replaying the frontiers of a restored
   arena reproduces the levels of the interrupted run exactly. *)
type acc = {
  found : (string, unit) Hashtbl.t;
  paper_found : (string, unit) Hashtbl.t;
  idx : (string, member) Hashtbl.t;
}

let collect_restrictions ~quotient search acc ~cost frontier members member_count
    level_hits global_hits level_restrictions =
  (* Record one member per newly discovered function.  A quotiented
     frontier holds one representative per orbit, so the representative's
     whole orbit of image vectors is re-expanded here: conjugate images
     are distinct functions of the same minimal cost (minimal depths are
     constant on orbits), which restores exactly the raw census's G[k]
     sets — probe-verified byte-for-byte at depth 7. *)
  let record func witness =
    let fk = func_key func in
    if not (Hashtbl.mem level_restrictions fk) then begin
      Hashtbl.add level_restrictions fk witness;
      if not (Hashtbl.mem acc.found fk) then begin
        Hashtbl.add acc.found fk ();
        let member = { func; witness; cost } in
        Hashtbl.add acc.idx fk member;
        members := member :: !members;
        incr member_count
      end
      else incr global_hits
    end
    else incr level_hits
  in
  let bits = Library.qubits (Search.library search) in
  Array.iter
    (fun h ->
      match Search.restriction_of_handle search h with
      | None -> ()
      | Some func -> (
          match quotient with
          | None -> record func (Search.key_of_handle search h)
          | Some sym ->
              let img = Search.key_of_handle search h in
              List.iter
                (fun img' ->
                  let func' =
                    Reversible.Revfun.of_perm ~bits
                      (Permgroup.Perm.unsafe_of_array
                         (Array.init (String.length img') (fun i ->
                              Char.code img'.[i])))
                  in
                  record func' img')
                (Symmetry.orbit_images sym img)))
    frontier

let process_level search acc ~cost frontier =
  Telemetry.Span.with_span "fmcf.level" ~attrs:[ ("cost", Telemetry.Json.Int cost) ]
  @@ fun () ->
  let frontier_size = Array.length frontier in
  let members = ref [] in
  let member_count = ref 0 in
  let level_hits = ref 0 and global_hits = ref 0 in
  let level_restrictions = Hashtbl.create 256 in
  Telemetry.Histogram.time h_restrict (fun () ->
      collect_restrictions ~quotient:(Search.symmetry search) search acc ~cost frontier
        members member_count level_hits global_hits level_restrictions);
  (* Paper-variant count: level 2 skips subtraction of earlier levels;
     other levels subtract everything recorded so far (which never
     includes the identity, G[0]). *)
  let paper_count = ref 0 in
  Hashtbl.iter
    (fun fk _ ->
      if cost = 2 || not (Hashtbl.mem acc.paper_found fk) then incr paper_count)
    level_restrictions;
  Hashtbl.iter
    (fun fk _ ->
      if not (Hashtbl.mem acc.paper_found fk) then Hashtbl.add acc.paper_found fk ())
    level_restrictions;
  Telemetry.Series.set s_frontier ~index:cost frontier_size;
  Telemetry.Series.set s_pre_g ~index:cost (Hashtbl.length level_restrictions);
  Telemetry.Series.set s_g ~index:cost !member_count;
  Telemetry.Series.set s_paper_g ~index:cost !paper_count;
  Telemetry.Counter.add m_dedupe_level !level_hits;
  Telemetry.Counter.add m_dedupe_global !global_hits;
  Log.info (fun m ->
      m "level %d: frontier %d, pre-G %d, |G[%d]| = %d (dedupe: %d in-level, %d global)"
        cost frontier_size
        (Hashtbl.length level_restrictions)
        cost !member_count !level_hits !global_hits);
  { cost; frontier_size; members = List.rev !members; paper_count = !paper_count }

let level_zero search acc library =
  let identity_func = Reversible.Revfun.identity ~bits:(Library.qubits library) in
  (* G[0] = {identity}; the paper's variant never subtracts it. *)
  let root = Search.key_of_handle search (Search.handles_at_depth search 0).(0) in
  let identity_member = { func = identity_func; witness = root; cost = 0 } in
  Hashtbl.add acc.found (func_key identity_func) ();
  Hashtbl.add acc.idx (func_key identity_func) identity_member;
  Telemetry.Series.set s_frontier ~index:0 1;
  Telemetry.Series.set s_pre_g ~index:0 1;
  Telemetry.Series.set s_g ~index:0 1;
  Telemetry.Series.set s_paper_g ~index:0 1;
  { cost = 0; frontier_size = 1; members = [ identity_member ]; paper_count = 1 }

let no_stop () = false

let run_guarded ?(max_depth = 7) ?(jobs = 1) ?(quotient = false) ?resume ?max_states
    ?max_mem ?timeout ?(should_stop = no_stop) ?on_level library =
  Telemetry.Span.with_span "fmcf.run"
    ~attrs:[ ("max_depth", Telemetry.Json.Int max_depth) ]
  @@ fun () ->
  let started = Unix.gettimeofday () in
  let search =
    match resume with
    | None ->
        let symmetry = if quotient then Some (Symmetry.create library) else None in
        Search.create ~jobs ?symmetry library
    | Some s ->
        (* A resumed engine carries its own mode (a quotient checkpoint
           rebuilds its symmetry group at load time); [quotient] is
           ignored, like [jobs]. *)
        if Search.library s != library then
          invalid_arg "Fmcf.run_guarded: resumed search was built for another library";
        s
  in
  if Search.depth search > max_depth then
    invalid_arg
      (Printf.sprintf
         "Fmcf.run_guarded: resumed search is already at level %d, beyond max_depth %d"
         (Search.depth search) max_depth);
  let acc =
    { found = Hashtbl.create 4096; paper_found = Hashtbl.create 4096;
      idx = Hashtbl.create 4096 }
  in
  let levels = ref [ level_zero search acc library ] in
  (* Replay the completed levels of a restored arena through the same
     processing path: the reconstructed frontiers are byte-identical to
     the original run's (Search.handles_at_depth returns canonical
     order), so the replayed members, witnesses and counts are too. *)
  for cost = 1 to Search.depth search do
    levels := process_level search acc ~cost (Search.handles_at_depth search cost)
              :: !levels
  done;
  let deadline = Option.map (fun s -> started +. s) timeout in
  let deadline_passed () =
    match deadline with None -> false | Some d -> Unix.gettimeofday () >= d
  in
  let cancel () = should_stop () || deadline_passed () in
  let over_states () =
    match max_states with None -> false | Some n -> Search.size search >= n
  in
  let over_mem () =
    match max_mem with None -> false | Some n -> Search.arena_bytes search >= n
  in
  let stop = ref None in
  while !stop = None && Search.depth search < max_depth do
    if should_stop () then stop := Some Cancelled
    else if deadline_passed () then stop := Some Timed_out
    else if over_states () then stop := Some Budget_states
    else if over_mem () then stop := Some Budget_mem
    else
      match Search.try_step search ~cancel with
      | None ->
          (* mid-level abandon: the engine rolled back to the last
             complete level; decide which guard fired *)
          stop := Some (if should_stop () then Cancelled else Timed_out)
      | Some fresh ->
          let cost = Search.depth search in
          (* The hook fires before the level's members are extracted so an
             asynchronous checkpoint write can overlap that processing. *)
          (match on_level with None -> () | Some f -> f search ~cost);
          levels := process_level search acc ~cost fresh :: !levels
  done;
  let reason = Option.value ~default:Completed !stop in
  (match reason with
  | Completed -> ()
  | Budget_states -> Telemetry.Counter.incr m_budget_states
  | Budget_mem -> Telemetry.Counter.incr m_budget_mem
  | Timed_out -> Telemetry.Counter.incr m_timeout
  | Cancelled -> Telemetry.Counter.incr m_cancelled);
  if reason <> Completed then
    Log.warn (fun m ->
        m "census stopped early at level %d/%d: %s" (Search.depth search) max_depth
          (describe_stop reason));
  if Telemetry.enabled () then
    Telemetry.Span.set_attr "stop_reason" (Telemetry.Json.String (describe_stop reason));
  ( { library; search; symmetry = Search.symmetry search; levels = List.rev !levels;
      index = acc.idx; image_oracle = None },
    reason )

let run ?max_depth ?jobs ?quotient library =
  fst (run_guarded ?max_depth ?jobs ?quotient library)

let levels t = t.levels
let search t = t.search
let quotiented t = t.symmetry <> None

(* The paper-variant numbers model duplicate {e candidates} inside a
   level (V.V re-deriving a CNOT at level 2), and the quotient arena
   keeps one state per orbit, so those duplicates never re-materialize:
   the variant is only reproducible from a raw run. *)
let paper_counts_exact t = t.symmetry = None
let depth t = Search.depth t.search

let iter_members t f =
  List.iter (fun level -> List.iter (f ~cost:level.cost) level.members) t.levels
let counts t = List.map (fun l -> (l.cost, List.length l.members)) t.levels
let paper_counts t = List.map (fun l -> (l.cost, l.paper_count)) t.levels

let s8_counts t =
  (* the 2^n scale-up is the Theorem-2 free NOT layer: it only exists for
     coset-reduced libraries.  A full-group census already counts every
     function, so the "with NOTs" row is the census itself. *)
  if Library.coset_reduction t.library then
    let factor = 1 lsl Library.qubits t.library in
    List.map (fun (cost, n) -> (cost, factor * n)) (counts t)
  else counts t

let total_found t =
  List.fold_left (fun acc l -> acc + List.length l.members) 0 t.levels

let find t func = Hashtbl.find_opt t.index (func_key func)

(* {1 Canonical witness reconstruction}

   [cascade_of_member] rebuilds witnesses {e backward}: from the member's
   function image, greedily peel the lexicographically least library gate
   whose removal steps to an image of minimal depth exactly one lower
   (respecting the reasonable-product constraint at the step).  The
   choice depends only on the census's image -> minimal-depth relation —
   which the quotient search preserves exactly (minimal depths are
   constant on orbits) — so raw and quotient censuses emit byte-identical
   cascades, and hence byte-identical QSYNIDX1 files. *)

let image_min_depth t =
  match t.symmetry with
  | Some sym ->
      fun img -> Search.depth_of_key t.search (fst (Symmetry.canon sym img))
  | None -> (
      match t.image_oracle with
      | Some tbl -> Hashtbl.find_opt tbl
      | None ->
          let tbl = Hashtbl.create 4096 in
          for d = 0 to Search.depth t.search do
            Array.iter
              (fun h ->
                let img = Search.binary_image_of_handle t.search h in
                if not (Hashtbl.mem tbl img) then Hashtbl.add tbl img d)
              (Search.handles_at_depth t.search d)
          done;
          t.image_oracle <- Some tbl;
          Hashtbl.find_opt tbl)

let cascade_of_member t (member : member) =
  if member.cost = 0 then []
  else begin
    let entries = Library.entries t.library in
    let encoding = Library.encoding t.library in
    let nb = Mvl.Encoding.num_binary encoding in
    let signatures =
      Array.init (Mvl.Encoding.size encoding) (Mvl.Encoding.mixed_signature encoding)
    in
    let depth_of = image_min_depth t in
    let fp = Permgroup.Perm.to_array (Reversible.Revfun.to_perm member.func) in
    let v = Bytes.init nb (fun b -> Char.chr fp.(b)) in
    let u = Bytes.create nb in
    let acc = ref [] in
    for k = member.cost downto 1 do
      let rec find g =
        if g >= Array.length entries then
          invalid_arg
            "Fmcf.cascade_of_member: no backward step (member not from this census?)"
        else begin
          let e = entries.(g) in
          let inv = e.Library.inverse_array in
          let sg = ref 0 in
          for b = 0 to nb - 1 do
            let x = inv.(Char.code (Bytes.get v b)) in
            Bytes.set u b (Char.chr x);
            sg := !sg lor signatures.(x)
          done;
          if
            !sg land e.Library.purity_mask = 0
            && depth_of (Bytes.to_string u) = Some (k - 1)
          then g
          else find (g + 1)
        end
      in
      let g = find 0 in
      acc := entries.(g).Library.gate :: !acc;
      Bytes.blit u 0 v 0 nb
    done;
    !acc
  end
let members_at t ~cost =
  match List.find_opt (fun l -> l.cost = cost) t.levels with
  | Some l -> l.members
  | None -> []
