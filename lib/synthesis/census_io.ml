type entry = {
  func : Reversible.Revfun.t;
  cost : int;
  cascade : Cascade.t;
}

let save ?note census path =
  let out = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out out)
    (fun () ->
      Printf.fprintf out "# qsynth census: cost <TAB> cycles <TAB> cascade\n";
      let library = Search.library (Fmcf.search census) in
      Printf.fprintf out "# library: %s\n" (Library.name library);
      (match note with
      | Some n -> Printf.fprintf out "# %s\n" n
      | None -> ());
      List.iter
        (fun level ->
          List.iter
            (fun (m : Fmcf.member) ->
              let cascade = Fmcf.cascade_of_member census m in
              Printf.fprintf out "%d\t%s\t%s\n" m.Fmcf.cost
                (Format.asprintf "%a" Reversible.Revfun.pp m.Fmcf.func)
                (Cascade.to_string cascade))
            level.Fmcf.members)
        (Fmcf.levels census))

let load library path =
  let qubits = Library.qubits library in
  let degree = 1 lsl qubits in
  let input = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in input)
    (fun () ->
      let entries = ref [] in
      let line_number = ref 0 in
      let fail msg =
        invalid_arg (Printf.sprintf "Census_io.load: line %d: %s" !line_number msg)
      in
      (try
         while true do
           let line = input_line input in
           incr line_number;
           let line = String.trim line in
           let library_prefix = "# library:" in
           if
             String.length line >= String.length library_prefix
             && String.sub line 0 (String.length library_prefix) = library_prefix
           then begin
             let file_lib =
               String.trim
                 (String.sub line
                    (String.length library_prefix)
                    (String.length line - String.length library_prefix))
             in
             if not (String.equal file_lib (Library.name library)) then
               raise
                 (Checkpoint.Mismatch
                    (Printf.sprintf
                       "census file %s was written for library %s, loading \
                        with library %s"
                       path file_lib (Library.name library)))
           end
           else if line <> "" && line.[0] <> '#' then begin
             match String.split_on_char '\t' line with
             | [ cost_str; cycles; cascade_str ] ->
                 let cost =
                   match int_of_string_opt cost_str with
                   | Some c when c >= 0 -> c
                   | _ -> fail "bad cost"
                 in
                 let func =
                   try
                     Reversible.Revfun.of_perm ~bits:qubits
                       (Permgroup.Cycles.of_string ~degree cycles)
                   with Invalid_argument msg -> fail msg
                 in
                 let cascade =
                   try Cascade.of_string ~qubits cascade_str
                   with Invalid_argument msg -> fail msg
                 in
                 if Cascade.cost cascade <> cost then fail "cost does not match cascade";
                 if not (Cascade.is_reasonable library cascade) then
                   fail "cascade violates the reasonable product";
                 (match Cascade.restriction library cascade with
                 | Some f when Reversible.Revfun.equal f func -> ()
                 | Some _ | None -> fail "cascade does not implement the function");
                 entries := { func; cost; cascade } :: !entries
             | _ -> fail "expected three tab-separated fields"
           end
         done
       with End_of_file -> ());
      List.rev !entries)

let lookup entries target =
  List.find_opt (fun e -> Reversible.Revfun.equal e.func target) entries
