type t = {
  qubits : int;
  points : Pattern.t array;
  index : (string, int) Hashtbl.t;
  signatures : int array;
}

let pattern_key p =
  String.init (Pattern.qubits p) (fun w -> Char.chr (Quat.to_int (Pattern.get p w)))

let make ~qubits =
  if qubits < 1 || qubits > 10 then invalid_arg "Encoding.make: qubits out of range";
  let everything = Pattern.all ~qubits in
  let binary = List.filter Pattern.is_binary everything in
  let mixed =
    List.filter (fun p -> Pattern.has_one p && not (Pattern.is_binary p)) everything
  in
  (* [Pattern.all] is sorted and [Zero < One], so the binary block is in
     numeric order: point i < 2^qubits is binary code i. *)
  let points = Array.of_list (binary @ mixed) in
  let index = Hashtbl.create (2 * Array.length points) in
  Array.iteri (fun i p -> Hashtbl.add index (pattern_key p) i) points;
  let signatures = Array.map Pattern.mixed_signature points in
  { qubits; points; index; signatures }

let make_binary ~qubits =
  if qubits < 1 || qubits > 10 then
    invalid_arg "Encoding.make_binary: qubits out of range";
  let binary = List.filter Pattern.is_binary (Pattern.all ~qubits) in
  (* sorted with [Zero < One], so point i is binary code i, as in [make] *)
  let points = Array.of_list binary in
  let index = Hashtbl.create (2 * Array.length points) in
  Array.iteri (fun i p -> Hashtbl.add index (pattern_key p) i) points;
  let signatures = Array.map Pattern.mixed_signature points in
  { qubits; points; index; signatures }

let qubits e = e.qubits
let size e = Array.length e.points
let num_binary e = 1 lsl e.qubits
let pattern e i = e.points.(i)
let point_of_pattern e p = Hashtbl.find_opt e.index (pattern_key p)
let mixed_signature e i = e.signatures.(i)

let banned_points e ~wire =
  let acc = ref [] in
  for i = size e - 1 downto 0 do
    if e.signatures.(i) land (1 lsl wire) <> 0 then acc := i :: !acc
  done;
  !acc

let image_signature e points =
  List.fold_left (fun s i -> s lor e.signatures.(i)) 0 points

let perm_of_action e action =
  let img =
    Array.map
      (fun p ->
        match point_of_pattern e (action p) with
        | Some j -> j
        | None -> invalid_arg "Encoding.perm_of_action: image leaves the domain")
      e.points
  in
  Permgroup.Perm.of_array img
