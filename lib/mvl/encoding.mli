(** The paper's label encoding of the permutable pattern domain.

    For [n] qubits there are [4^n] patterns, but a pattern without a [One]
    is fixed by every library gate, so only patterns containing a [One] —
    plus the all-zero pattern, kept so that the binary patterns form a
    complete block — can permute.  For [n = 3] this gives the paper's
    38-point domain: 64 − 27 + 1.

    Points are ordered as in the paper: the [2^n] binary patterns first
    (in numeric order, so point [i < 2^n] {e is} the binary code [i]), then
    the mixed patterns containing a [One] in lexicographic order with
    [Zero < One < V0 < V1].  This exact order is what makes our computed
    permutations reproduce the paper's printed cycles, e.g.
    V_BA = (5,17,7,21)(6,18,8,22)(13,19,15,23)(14,20,16,24).

    Points are 0-based internally; add 1 when comparing with the paper. *)

type t

(** [make ~qubits] builds the encoding ([1 <= qubits <= 10]). *)
val make : qubits:int -> t

(** [make_binary ~qubits] is the purely binary pattern domain: the [2^n]
    binary patterns and nothing else, point [i] {e being} binary code
    [i].  This is the natural domain of classical reversible libraries
    (NCT, NFT): every point is pure, so no mixed signatures exist and
    purity/banned-set machinery never binds.  ([1 <= qubits <= 10].) *)
val make_binary : qubits:int -> t

val qubits : t -> int

(** [size e] is the number of permutable points (38 for 3 qubits). *)
val size : t -> int

(** [num_binary e] is [2^qubits]; points [0 .. num_binary-1] are the
    binary patterns in numeric order. *)
val num_binary : t -> int

(** [pattern e point] is the pattern at a point (do not mutate). *)
val pattern : t -> int -> Pattern.t

(** [point_of_pattern e p] is the point of [p], or [None] when [p] is
    outside the permutable domain (no [One] and not all-zero). *)
val point_of_pattern : t -> Pattern.t -> int option

(** [mixed_signature e point] is the bitmask over wires that carry a mixed
    value at this point (bit [w] = wire [w]). *)
val mixed_signature : t -> int -> int

(** [banned_points e ~wire] lists the points whose pattern is mixed at
    [wire] — the paper's banned set N for that wire (0-based points;
    adding 1 reproduces the paper's N_A, N_B, N_C verbatim). *)
val banned_points : t -> wire:int -> int list

(** [image_signature e points] ORs the mixed signatures of a point list;
    a controlled gate with control wire [c] may legally follow a circuit
    whose binary-block image has signature [s] iff [s land (1 lsl c) = 0]. *)
val image_signature : t -> int list -> int

(** [perm_of_action e action] turns a pattern transformer into a
    permutation of the encoding's points.  The action must map the domain
    onto itself bijectively.
    @raise Invalid_argument when the action leaves the domain or is not a
    bijection. *)
val perm_of_action : t -> (Pattern.t -> Pattern.t) -> Permgroup.Perm.t
