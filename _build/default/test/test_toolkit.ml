(* Tests for the toolkit extensions: cost models, weighted synthesis,
   peephole rewriting, ASCII drawing, and the no-pruning ablation. *)

open Synthesis

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

let qcheck_test ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let library3 = Library.make (Mvl.Encoding.make ~qubits:3)

let gate_gen =
  QCheck2.Gen.(map (fun i -> List.nth (Gate.all ~qubits:3) (abs i mod 18)) int)

let cascade_gen = QCheck2.Gen.(list_size (int_range 0 8) gate_gen)

(* Cost_model *)

let test_cost_models () =
  let vba = Gate.of_name ~qubits:3 "VBA" in
  let fab = Gate.of_name ~qubits:3 "FAB" in
  check Alcotest.int "unit" 1 (Cost_model.gate_cost Cost_model.unit vba);
  check Alcotest.int "v-cheap V" 1 (Cost_model.gate_cost Cost_model.v_cheap vba);
  check Alcotest.int "v-cheap F" 2 (Cost_model.gate_cost Cost_model.v_cheap fab);
  check Alcotest.int "feynman-cheap V" 2
    (Cost_model.gate_cost Cost_model.feynman_cheap vba);
  check Alcotest.int "feynman-cheap F" 1
    (Cost_model.gate_cost Cost_model.feynman_cheap fab);
  check Alcotest.int "cascade cost" 6
    (Cost_model.cascade_cost Cost_model.v_cheap
       (Cascade.of_string ~qubits:3 "VBA*FAB*VCA*FBC"));
  check Alcotest.string "name" "unit" (Cost_model.name Cost_model.unit)

let test_cost_model_validation () =
  let broken = Cost_model.make ~name:"broken" (fun _ -> 0) in
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Cost_model.gate_cost: non-positive cost") (fun () ->
      ignore (Cost_model.gate_cost broken (Gate.of_name ~qubits:3 "VBA")))

(* Weighted *)

let test_weighted_unit_matches_bfs () =
  List.iter
    (fun target ->
      match
        ( Weighted.express library3 ~model:Cost_model.unit target,
          Mce.express library3 target )
      with
      | Some w, Some m ->
          check Alcotest.int "unit model = BFS cost" m.Mce.cost w.Weighted.cost;
          checkb "verified" true
            (Verify.cascade_implements ~qubits:3 ~not_mask:w.Weighted.not_mask
               w.Weighted.cascade target)
      | _ -> Alcotest.fail "both searches must succeed")
    [
      Reversible.Gates.g1;
      Reversible.Gates.g2;
      Reversible.Gates.g3;
      Reversible.Gates.g4;
      Reversible.Gates.toffoli3;
      Reversible.Gates.cnot ~bits:3 ~control:1 ~target:2;
      Reversible.Gates.swap ~bits:3 ~wire1:0 ~wire2:2;
    ]

let test_weighted_known_costs () =
  (* Minimal Toffoli circuits use 2 Feynman + 3 controlled gates, so the
     v-cheap optimum is 3*1 + 2*2 = 7 and the feynman-cheap optimum is
     2*1 + 3*2 = 8. *)
  (match Weighted.express library3 ~model:Cost_model.v_cheap Reversible.Gates.toffoli3 with
  | Some r -> check Alcotest.int "toffoli v-cheap" 7 r.Weighted.cost
  | None -> Alcotest.fail "found");
  (match
     Weighted.express ~max_cost:9 library3 ~model:Cost_model.feynman_cheap
       Reversible.Gates.toffoli3
   with
  | Some r -> check Alcotest.int "toffoli feynman-cheap" 8 r.Weighted.cost
  | None -> Alcotest.fail "found");
  (* swap = 3 CNOTs; no V-realization beats 3 Feynman gates even when V is
     cheap (6 = 3 * 2). *)
  match
    Weighted.express library3 ~model:Cost_model.v_cheap
      (Reversible.Gates.swap ~bits:3 ~wire1:0 ~wire2:1)
  with
  | Some r -> check Alcotest.int "swap v-cheap" 6 r.Weighted.cost
  | None -> Alcotest.fail "found"

let test_weighted_identity_and_not () =
  (match Weighted.express library3 ~model:Cost_model.v_cheap (Reversible.Revfun.identity ~bits:3) with
  | Some r -> check Alcotest.int "identity" 0 r.Weighted.cost
  | None -> Alcotest.fail "identity");
  match
    Weighted.express library3 ~model:Cost_model.v_cheap
      (Reversible.Revfun.xor_layer ~bits:3 6)
  with
  | Some r ->
      check Alcotest.int "free NOT" 0 r.Weighted.cost;
      check Alcotest.int "mask" 6 r.Weighted.not_mask
  | None -> Alcotest.fail "not layer"

let test_weighted_census () =
  (* Unit-model weighted census must equal the FMCF census. *)
  let weighted = Weighted.census ~max_cost:4 library3 ~model:Cost_model.unit in
  let bfs =
    List.filter (fun (_, n) -> n > 0) (Fmcf.counts (Fmcf.run ~max_depth:4 library3))
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "censuses agree" bfs weighted

let test_weighted_census_v_cheap () =
  (* With v-cheap costs the cheapest non-trivial functions cost 2 (one
     Feynman = 2, or two V gates); nothing costs 1. *)
  let census = Weighted.census ~max_cost:4 library3 ~model:Cost_model.v_cheap in
  checkb "no cost-1 functions" true (not (List.mem_assoc 1 census));
  (match List.assoc_opt 2 census with
  | Some n -> checkb "cost-2 includes the 6 CNOTs" true (n >= 6)
  | None -> Alcotest.fail "cost 2 exists")

let weighted_props =
  [
    qcheck_test ~count:6 "weighted beats re-pricing the unit optimum"
      QCheck2.Gen.(pair (int_range 1 2) (int_range 1 2))
      (fun (v, f) ->
        let model = Cost_model.by_kind ~name:"random" ~v ~v_dag:v ~feynman:f in
        List.for_all
          (fun target ->
            match
              ( Weighted.express ~max_cost:10 library3 ~model target,
                Mce.express library3 target )
            with
            | Some weighted, Some unit_result ->
                (* the model-optimal cascade costs no more, under the
                   model, than the gate-count-optimal cascade does *)
                weighted.Weighted.cost
                <= Cost_model.cascade_cost model unit_result.Mce.cascade
            | _ -> false)
          [ Reversible.Gates.g1; Reversible.Gates.cnot ~bits:3 ~control:1 ~target:0 ]);
  ]

let test_weighted_depth_bound () =
  checkb "bound respected" true
    (Weighted.express ~max_cost:4 library3 ~model:Cost_model.unit
       Reversible.Gates.toffoli3
    = None)

(* Rewrite *)

let test_cancel_rules () =
  let norm s = Cascade.to_string (Rewrite.normalize (Cascade.of_string ~qubits:3 s)) in
  check Alcotest.string "V V+ cancels" "()" (norm "VBA*V+BA");
  check Alcotest.string "F F cancels" "()" (norm "FCA*FCA");
  check Alcotest.string "V V merges to F" "FBA" (norm "VBA*VBA");
  check Alcotest.string "V+ V+ merges to F" "FBA" (norm "V+BA*V+BA");
  check Alcotest.string "triple V" "FBA*VBA" (norm "VBA*VBA*VBA");
  check Alcotest.string "commuting detour" "()" (norm "VBA*FCA*V+BA*FCA");
  check Alcotest.string "non-cancelling stays" "VBA*FBA" (norm "VBA*FBA")

let test_cancel_once () =
  checkb "no rule fires" true (Rewrite.cancel_once (Cascade.of_string ~qubits:3 "VBA*FBA") = None);
  match Rewrite.cancel_once (Cascade.of_string ~qubits:3 "FCA*VBA*V+BA*FCB") with
  | Some c -> check Alcotest.string "inner pair removed" "FCA*FCB" (Cascade.to_string c)
  | None -> Alcotest.fail "rule must fire"

let test_commute_structure () =
  let g = Gate.of_name ~qubits:3 in
  checkb "disjoint" true (Rewrite.commute (g "VBA") (g "VBA"));
  checkb "same control" true (Rewrite.commute (g "VBA") (g "FCA"));
  checkb "same target both V" true (Rewrite.commute (g "VBA") (g "V+BC"));
  checkb "same target both F" true (Rewrite.commute (g "FBA") (g "FBC"));
  checkb "same target V vs F" false (Rewrite.commute (g "VBA") (g "FBC"));
  checkb "control feeds target" false (Rewrite.commute (g "FBA") (g "FAC"))

let rewrite_props =
  [
    qcheck_test "commute is sound on unitaries" (QCheck2.Gen.pair gate_gen gate_gen)
      (fun (a, b) ->
        (not (Rewrite.commute a b))
        || Qmath.Dmatrix.equal
             (Cascade.unitary ~qubits:3 [ a; b ])
             (Cascade.unitary ~qubits:3 [ b; a ]));
    qcheck_test ~count:60 "normalize preserves the unitary" cascade_gen (fun c ->
        Rewrite.equivalent_unitary ~qubits:3 c (Rewrite.normalize c));
    qcheck_test "normalize never grows" cascade_gen (fun c ->
        Cascade.cost (Rewrite.normalize c) <= Cascade.cost c);
    qcheck_test ~count:60 "normalize is idempotent" cascade_gen (fun c ->
        let once = Rewrite.normalize c in
        Cascade.equal once (Rewrite.normalize once));
  ]

(* Draw *)

let test_draw_peres () =
  let peres = Cascade.of_string ~qubits:3 "VCB*FBA*VCA*V+CB" in
  check Alcotest.string "figure 4"
    "A: --------*-----*---------\n\
     B: --*----(+)----|-----*---\n\
     C: -[V]---------[V]---[V+]-"
    (Draw.to_ascii ~qubits:3 peres)

let test_draw_not_mask () =
  (* not_mask is a code mask: 4 = wire A on 3 qubits. *)
  let drawing = Draw.to_ascii ~qubits:3 ~not_mask:4 [ Gate.of_name ~qubits:3 "FBA" ] in
  (match String.split_on_char '\n' drawing with
  | [ a; b; c ] ->
      checkb "A has the NOT box" true (String.length a > 3 && String.sub a 3 6 = "-[N]--");
      checkb "B has no NOT box" true (String.sub b 3 6 = "------");
      checkb "C has no NOT box" true (String.sub c 3 6 = "------")
  | _ -> Alcotest.fail "three wires expected")

let test_draw_labels () =
  let drawing =
    Draw.to_ascii ~qubits:2 ~labels:[ "ctl"; "tgt" ] [ Gate.of_name ~qubits:2 "FBA" ]
  in
  checkb "custom labels" true
    (String.length drawing > 3 && String.sub drawing 0 3 = "ctl");
  Alcotest.check_raises "label arity" (Invalid_argument "Draw.to_ascii: label count")
    (fun () -> ignore (Draw.to_ascii ~qubits:2 ~labels:[ "x" ] []))

let test_draw_crossing () =
  (* A gate between A and C must draw a crossing on B. *)
  let drawing = Draw.to_ascii ~qubits:3 [ Gate.of_name ~qubits:3 "VCA" ] in
  match String.split_on_char '\n' drawing with
  | [ _; b; _ ] -> checkb "crossing on B" true (String.contains b '|')
  | _ -> Alcotest.fail "three wires expected"

(* Ablation *)

let test_ablation_diverges_and_is_unsound () =
  let unconstrained = Fmcf.run ~max_depth:3 (Library.unconstrained library3) in
  let constrained = Fmcf.run ~max_depth:3 library3 in
  check Alcotest.int "constrained G[3]" 51
    (List.length (Fmcf.members_at constrained ~cost:3));
  check Alcotest.int "unconstrained G[3] is larger" 66
    (List.length (Fmcf.members_at unconstrained ~cost:3));
  (* Every extra member's witness fails exact verification... *)
  let constrained_funcs =
    List.map (fun (m : Fmcf.member) -> m.Fmcf.func) (Fmcf.members_at constrained ~cost:3)
  in
  let extras =
    List.filter
      (fun (m : Fmcf.member) ->
        not (List.exists (Reversible.Revfun.equal m.Fmcf.func) constrained_funcs))
      (Fmcf.members_at unconstrained ~cost:3)
  in
  checkb "extras exist" true (extras <> []);
  List.iter
    (fun (m : Fmcf.member) ->
      let cascade = Fmcf.cascade_of_member unconstrained m in
      checkb "unsound witness" false
        (Verify.cascade_implements ~qubits:3 cascade m.Fmcf.func))
    extras;
  (* ...while every constrained witness passes (soundness of Definition 1). *)
  List.iter
    (fun (m : Fmcf.member) ->
      let cascade = Fmcf.cascade_of_member constrained m in
      checkb "sound witness" true
        (Verify.cascade_implements ~qubits:3 cascade m.Fmcf.func))
    (Fmcf.members_at constrained ~cost:3)

(* Spectrum *)

let test_subadditivity_premise () =
  (* Concatenating witness cascades of two binary-preserving circuits is
     reasonable (the first ends with an empty mixed signature), and the
     restriction composes — the fact Spectrum.analyze relies on. *)
  let census = Fmcf.run ~max_depth:5 library3 in
  let witness target =
    match Fmcf.find census target with
    | Some m -> Fmcf.cascade_of_member census m
    | None -> Alcotest.fail "census member expected"
  in
  let toffoli = witness Reversible.Gates.toffoli3 in
  let peres = witness Reversible.Gates.g1 in
  let combined = toffoli @ peres in
  checkb "concatenation reasonable" true (Cascade.is_reasonable library3 combined);
  match Cascade.restriction library3 combined with
  | Some f ->
      checkb "restriction composes" true
        (Reversible.Revfun.equal f
           (Reversible.Revfun.compose Reversible.Gates.toffoli3 Reversible.Gates.g1))
  | None -> Alcotest.fail "combined cascade restricts"

let test_spectrum_bounds () =
  let census = Fmcf.run ~max_depth:5 library3 in
  let spectrum = Spectrum.analyze census in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "exact part is the census" (Fmcf.counts census) spectrum.Spectrum.exact;
  check Alcotest.int "remaining elements" (5040 - 322)
    (List.length spectrum.Spectrum.bounds);
  checkb "all lower bounds are 6" true
    (List.for_all (fun b -> b.Spectrum.lower = 6) spectrum.Spectrum.bounds);
  (* Upper bounds are genuine: they can never undercut the true cost, so
     the cost-6 bucket has at most |G[6]| = 398 members; subadditivity
     turns out tight here, so it has exactly 398. *)
  (match List.assoc_opt 6 (Spectrum.upper_histogram spectrum) with
  | Some n -> check Alcotest.int "cost-6 bucket" 398 n
  | None -> Alcotest.fail "cost-6 bucket expected");
  check Alcotest.int "tight count" 398 spectrum.Spectrum.tight

let test_spectrum_upper_bounds_sound () =
  (* Every upper bound from a depth-4 analysis is >= the true cost known
     from a deeper census. *)
  let shallow = Spectrum.analyze (Fmcf.run ~max_depth:4 library3) in
  let deep = Fmcf.run ~max_depth:7 library3 in
  List.iter
    (fun b ->
      match Fmcf.find deep b.Spectrum.func with
      | Some m -> checkb "sound" true (b.Spectrum.upper >= m.Fmcf.cost)
      | None -> checkb "beyond depth 7" true (b.Spectrum.upper >= 8 || b.Spectrum.upper = max_int))
    shallow.Spectrum.bounds

let test_composer_matches_exact_costs () =
  (* The composer's costs agree with MCE on census-range functions... *)
  let census = Fmcf.run ~max_depth:6 library3 in
  let express = Spectrum.composer census in
  List.iter
    (fun target ->
      match (express target, Mce.express library3 target) with
      | Some composed, Some exact ->
          check Alcotest.int "optimal" exact.Mce.cost composed.Mce.cost;
          checkb "verified" true (Verify.result_valid library3 composed)
      | _ -> Alcotest.fail "both must synthesize")
    [
      Reversible.Gates.g1;
      Reversible.Gates.toffoli3;
      Reversible.Gates.cnot ~bits:3 ~control:2 ~target:1;
      Reversible.Revfun.compose (Reversible.Revfun.xor_layer ~bits:3 3)
        Reversible.Gates.g2;
    ];
  (* ...and constructs a verified cascade for Fredkin (cost 7, beyond this
     census depth 6) at its exact cost. *)
  match express Reversible.Gates.fredkin3 with
  | Some r ->
      check Alcotest.int "fredkin composed at 7" 7 r.Mce.cost;
      checkb "verified" true (Verify.result_valid library3 r)
  | None -> Alcotest.fail "fredkin composable"

let test_composer_covers_the_group () =
  let census = Fmcf.run ~max_depth:7 library3 in
  let express = Spectrum.composer census in
  let group =
    Universality.closure_of (Reversible.Gates.g1 :: Universality.cnots ~bits:3)
  in
  let histogram = Hashtbl.create 16 in
  Permgroup.Closure.iter
    (fun p ->
      match express (Reversible.Revfun.of_perm ~bits:3 p) with
      | Some r ->
          Hashtbl.replace histogram r.Mce.cost
            (1 + Option.value ~default:0 (Hashtbl.find_opt histogram r.Mce.cost))
      | None -> Alcotest.fail "every function must be composable")
    group;
  (* The constructed-cost histogram equals the exact spectrum; each
     construction is an upper bound, so multiset equality proves
     per-function optimality. *)
  let expected =
    [ (0, 1); (1, 6); (2, 24); (3, 51); (4, 84); (5, 156); (6, 398); (7, 540);
      (8, 444); (9, 1440); (10, 552); (12, 1232); (13, 112) ]
  in
  List.iter
    (fun (cost, n) ->
      check Alcotest.int (Printf.sprintf "cost %d" cost) n
        (Option.value ~default:0 (Hashtbl.find_opt histogram cost)))
    expected;
  checkb "nothing at cost 11" true (Hashtbl.find_opt histogram 11 = None)

(* Equivalence *)

let toffoli_cascades =
  lazy
    (List.map
       (fun r -> r.Mce.cascade)
       (Mce.all_realizations library3 Reversible.Gates.toffoli3))

let test_equivalence_fig9_structure () =
  let cascades = Lazy.force toffoli_cascades in
  let groups = Equivalence.group_by_circuit library3 cascades in
  check Alcotest.int "4 circuit groups" 4 (List.length groups);
  List.iter (fun g -> check Alcotest.int "10 orderings each" 10 (List.length g)) groups;
  (* closed under V <-> V+, every cascade has a distinct partner *)
  check Alcotest.int "all vdag-paired" 40 (Equivalence.vdag_closed library3 cascades);
  (* the XOR wire is A or B, never C — the paper's observation *)
  List.iter
    (fun cascade ->
      match Equivalence.xor_wires cascade with
      | [ w ] -> checkb "xor on A or B" true (w = 0 || w = 1)
      | _ -> Alcotest.fail "exactly one XOR wire expected")
    cascades;
  (* relabeling A <-> B maps minimal cascades to minimal cascades *)
  let orbits = Equivalence.relabel_orbits ~qubits:3 cascades in
  check Alcotest.int "20 orbits" 20 (List.length orbits);
  List.iter (fun o -> check Alcotest.int "pairs" 2 (List.length o)) orbits

let test_equivalence_basics () =
  let a = Cascade.of_string ~qubits:3 "VCB*FBA*VCA*V+CB" in
  let b = Cascade.of_string ~qubits:3 "V+CB*FBA*V+CA*VCB" in
  checkb "same function" true (Equivalence.same_function library3 a b);
  checkb "different circuits" false (Equivalence.same_circuit library3 a b);
  checkb "same circuit reflexive" true (Equivalence.same_circuit library3 a a);
  check (Alcotest.list Alcotest.int) "xor wires" [ 1 ] (Equivalence.xor_wires a)

let test_relabel_cascade () =
  let a = Cascade.of_string ~qubits:3 "VCB*FBA" in
  let swapped = Equivalence.relabel_cascade a [| 1; 0; 2 |] in
  check Alcotest.string "relabeled" "VCA*FAB" (Cascade.to_string swapped);
  checkb "bad sigma" true
    (match Equivalence.relabel_cascade a [| 0; 0; 2 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_vdag_not_closed () =
  checkb "open set rejected" true
    (match Equivalence.vdag_closed library3 [ Cascade.of_string ~qubits:3 "VBA" ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Census_io *)

let test_census_io_roundtrip () =
  let census = Fmcf.run ~max_depth:4 library3 in
  let path = Filename.temp_file "qsynth_census" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Census_io.save census path;
      let entries = Census_io.load library3 path in
      check Alcotest.int "entry count" (Fmcf.total_found census) (List.length entries);
      (* lookups agree with the census *)
      List.iter
        (fun target ->
          match (Census_io.lookup entries target, Fmcf.find census target) with
          | Some e, Some m -> check Alcotest.int "cost" m.Fmcf.cost e.Census_io.cost
          | None, None -> ()
          | _ -> Alcotest.fail "lookup disagrees with census")
        [ Reversible.Gates.g1; Reversible.Gates.toffoli3;
          Reversible.Gates.cnot ~bits:3 ~control:2 ~target:0 ])

let test_census_io_validation () =
  let reject content message =
    let path = Filename.temp_file "qsynth_census" ".tsv" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let out = open_out path in
        output_string out content;
        close_out out;
        checkb message true
          (match Census_io.load library3 path with
          | exception Invalid_argument _ -> true
          | _ -> false))
  in
  reject "nonsense line\n" "malformed line rejected";
  reject "3\t(7,8)\tFBA\n" "cost mismatch rejected";
  reject "1\t(7,8)\tFBA\n" "wrong function rejected";
  reject "2\t()\tVBA*FBA\n" "unreasonable cascade rejected"

let test_census_io_comments_and_valid () =
  let path = Filename.temp_file "qsynth_census" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let out = open_out path in
      output_string out "# comment\n\n1\t(5,7)(6,8)\tFBA\n";
      close_out out;
      match Census_io.load library3 path with
      | [ entry ] ->
          check Alcotest.int "cost" 1 entry.Census_io.cost;
          checkb "function" true
            (Reversible.Revfun.equal entry.Census_io.func
               (Reversible.Gates.cnot ~bits:3 ~control:0 ~target:1))
      | _ -> Alcotest.fail "one entry expected")

let () =
  Alcotest.run "toolkit"
    [
      ( "cost_model",
        [
          Alcotest.test_case "canned models" `Quick test_cost_models;
          Alcotest.test_case "validation" `Quick test_cost_model_validation;
        ] );
      ( "weighted",
        [
          Alcotest.test_case "unit model matches BFS" `Quick
            test_weighted_unit_matches_bfs;
          Alcotest.test_case "known weighted costs" `Quick test_weighted_known_costs;
          Alcotest.test_case "identity and NOT layers" `Quick
            test_weighted_identity_and_not;
          Alcotest.test_case "unit census matches" `Quick test_weighted_census;
          Alcotest.test_case "v-cheap census" `Quick test_weighted_census_v_cheap;
          Alcotest.test_case "cost bound" `Quick test_weighted_depth_bound;
        ] );
      ("weighted properties", weighted_props);
      ( "rewrite",
        [
          Alcotest.test_case "cancellation rules" `Quick test_cancel_rules;
          Alcotest.test_case "cancel_once" `Quick test_cancel_once;
          Alcotest.test_case "commutation structure" `Quick test_commute_structure;
        ] );
      ("rewrite properties", rewrite_props);
      ( "draw",
        [
          Alcotest.test_case "peres figure" `Quick test_draw_peres;
          Alcotest.test_case "NOT layer" `Quick test_draw_not_mask;
          Alcotest.test_case "labels" `Quick test_draw_labels;
          Alcotest.test_case "crossing" `Quick test_draw_crossing;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "pruning is what makes FMCF sound" `Slow
            test_ablation_diverges_and_is_unsound;
        ] );
      ( "spectrum",
        [
          Alcotest.test_case "subadditivity premise" `Quick test_subadditivity_premise;
          Alcotest.test_case "bounds at depth 5" `Slow test_spectrum_bounds;
          Alcotest.test_case "upper bounds sound" `Slow test_spectrum_upper_bounds_sound;
          Alcotest.test_case "composer optimal on samples" `Slow
            test_composer_matches_exact_costs;
          Alcotest.test_case "composer covers the group" `Slow
            test_composer_covers_the_group;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "figure 9 structure" `Slow test_equivalence_fig9_structure;
          Alcotest.test_case "basics" `Quick test_equivalence_basics;
          Alcotest.test_case "relabel cascade" `Quick test_relabel_cascade;
          Alcotest.test_case "vdag closure check" `Quick test_vdag_not_closed;
        ] );
      ( "census_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_census_io_roundtrip;
          Alcotest.test_case "validation" `Quick test_census_io_validation;
          Alcotest.test_case "comments" `Quick test_census_io_comments_and_valid;
        ] );
    ]
