(* Tests for the reversible-circuit substrate: functions, the gate zoo and
   specification parsing. *)

open Reversible

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let revfun = Alcotest.testable Revfun.pp Revfun.equal

let qcheck_test ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let revfun_gen bits =
  QCheck2.Gen.(
    map
      (fun seed ->
        let state = Random.State.make [| seed |] in
        let n = 1 lsl bits in
        let a = Array.init n Fun.id in
        for i = n - 1 downto 1 do
          let j = Random.State.int state (i + 1) in
          let tmp = a.(i) in
          a.(i) <- a.(j);
          a.(j) <- tmp
        done;
        Revfun.of_perm ~bits (Permgroup.Perm.of_array a))
      int)

(* Revfun *)

let test_construction () =
  let f = Revfun.of_outputs ~bits:2 [ 0; 1; 3; 2 ] in
  check Alcotest.int "apply" 3 (Revfun.apply f 2);
  Alcotest.check_raises "bad outputs" (Invalid_argument "Perm.of_array: not a permutation")
    (fun () -> ignore (Revfun.of_outputs ~bits:2 [ 0; 0; 1; 2 ]));
  Alcotest.check_raises "degree mismatch" (Invalid_argument "Revfun.of_perm: degree mismatch")
    (fun () -> ignore (Revfun.of_perm ~bits:3 (Permgroup.Perm.identity 4)))

let test_xor_layer () =
  let f = Revfun.xor_layer ~bits:3 5 in
  check Alcotest.int "0 ^ 5" 5 (Revfun.apply f 0);
  check Alcotest.int "7 ^ 5" 2 (Revfun.apply f 7);
  checkb "involution" true (Revfun.is_identity (Revfun.compose f f));
  check Alcotest.int "group size" 8 (List.length (Revfun.not_layer_group ~bits:3))

let test_not_layer_group_closed () =
  let group = Revfun.not_layer_group ~bits:2 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let ab = Revfun.compose a b in
          checkb "closed" true (List.exists (Revfun.equal ab) group))
        group)
    group

let test_fixes_zero () =
  checkb "identity fixes zero" true (Revfun.fixes_zero (Revfun.identity ~bits:3));
  checkb "xor layer moves zero" false (Revfun.fixes_zero (Revfun.xor_layer ~bits:3 1))

let test_wire_outputs () =
  let f = Gates.cnot ~bits:2 ~control:0 ~target:1 in
  check (Alcotest.list Alcotest.bool) "target column B = A xor B"
    [ false; true; true; false ] (Revfun.wire_outputs f ~wire:1);
  check (Alcotest.list Alcotest.bool) "control column unchanged"
    [ false; false; true; true ] (Revfun.wire_outputs f ~wire:0)

let test_output_column () =
  check (Alcotest.list Alcotest.int) "toffoli column" [ 0; 1; 2; 3; 4; 5; 7; 6 ]
    (Revfun.output_column Gates.toffoli3)

let revfun_props =
  let open QCheck2.Gen in
  let g = revfun_gen 3 in
  [
    qcheck_test "compose with inverse" g (fun f ->
        Revfun.is_identity (Revfun.compose f (Revfun.inverse f)));
    qcheck_test "compose associative" (triple g g g) (fun (a, b, c) ->
        Revfun.equal
          (Revfun.compose (Revfun.compose a b) c)
          (Revfun.compose a (Revfun.compose b c)));
    qcheck_test "compose order" (pair g g) (fun (a, b) ->
        (* compose applies the left function first *)
        let x = 3 in
        Revfun.apply (Revfun.compose a b) x = Revfun.apply b (Revfun.apply a x));
  ]

(* Gates *)

let test_toffoli () =
  let f = Gates.toffoli3 in
  check Alcotest.int "110 -> 111" 7 (Revfun.apply f 6);
  check Alcotest.int "111 -> 110" 6 (Revfun.apply f 7);
  check Alcotest.int "101 fixed" 5 (Revfun.apply f 5);
  check Alcotest.string "cycle form" "(7,8)" (Format.asprintf "%a" Revfun.pp f)

let test_fredkin () =
  let f = Gates.fredkin3 in
  check Alcotest.int "101 -> 110" 6 (Revfun.apply f 5);
  check Alcotest.int "110 -> 101" 5 (Revfun.apply f 6);
  check Alcotest.int "100 fixed" 4 (Revfun.apply f 4);
  check Alcotest.int "001 fixed (control off)" 1 (Revfun.apply f 1)

let test_peres_formulas () =
  (* P = A, Q = B xor A, R = C xor AB for every input code. *)
  for code = 0 to 7 do
    let a = (code lsr 2) land 1 and b = (code lsr 1) land 1 and c = code land 1 in
    let expected = (a lsl 2) lor ((b lxor a) lsl 1) lor (c lxor (a land b)) in
    check Alcotest.int "peres formula" expected (Revfun.apply Gates.g1 code)
  done

let test_g2_g3_g4_formulas () =
  for code = 0 to 7 do
    let a = (code lsr 2) land 1 and b = (code lsr 1) land 1 and c = code land 1 in
    (* g2: Q = B xor A(not C), R = C xor A *)
    let g2 = (a lsl 2) lor ((b lxor (a land (1 - c))) lsl 1) lor (c lxor a) in
    check Alcotest.int "g2" g2 (Revfun.apply Gates.g2 code);
    (* g3: Q = B xor A, R = C xor (not A)B *)
    let g3 = (a lsl 2) lor ((b lxor a) lsl 1) lor (c lxor ((1 - a) land b)) in
    check Alcotest.int "g3" g3 (Revfun.apply Gates.g3 code);
    (* g4: Q = B xor A, R = (not C) xor (not A)(not B) *)
    let g4 =
      (a lsl 2) lor ((b lxor a) lsl 1) lor (1 - c lxor ((1 - a) land (1 - b)))
    in
    check Alcotest.int "g4" g4 (Revfun.apply Gates.g4 code)
  done

let test_paper_cycle_forms () =
  let expect name cycles f =
    check revfun name
      (Revfun.of_perm ~bits:3 (Permgroup.Cycles.of_string ~degree:8 cycles))
      f
  in
  expect "g1 = (5,7,6,8)" "(5,7,6,8)" Gates.g1;
  expect "g2 = (5,8,7,6)" "(5,8,7,6)" Gates.g2;
  expect "g3 = (3,4)(5,7)(6,8)" "(3,4)(5,7)(6,8)" Gates.g3;
  expect "g4 = (3,4)(5,8)(6,7)" "(3,4)(5,8)(6,7)" Gates.g4;
  expect "toffoli = (7,8)" "(7,8)" Gates.toffoli3;
  expect "fredkin = (6,7)" "(6,7)" Gates.fredkin3

let test_swap_and_not () =
  let s = Gates.swap ~bits:2 ~wire1:0 ~wire2:1 in
  check Alcotest.int "01 -> 10" 2 (Revfun.apply s 1);
  checkb "swap involution" true (Revfun.is_identity (Revfun.compose s s));
  let n = Gates.not_ ~bits:2 ~wire:1 in
  check Alcotest.int "not lsb" 1 (Revfun.apply n 0);
  check revfun "not is xor layer" (Revfun.xor_layer ~bits:2 1) n

let test_peres_is_cnot_after_toffoli () =
  (* Peres = Toffoli then CNOT(B <- A). *)
  let composed =
    Revfun.compose Gates.toffoli3 (Gates.cnot ~bits:3 ~control:0 ~target:1)
  in
  check revfun "decomposition" Gates.g1 composed

let test_gate_errors () =
  Alcotest.check_raises "cnot same wire" (Invalid_argument "Gates.cnot: bad wires")
    (fun () -> ignore (Gates.cnot ~bits:2 ~control:1 ~target:1));
  Alcotest.check_raises "toffoli out of range" (Invalid_argument "Gates.toffoli: bad wires")
    (fun () -> ignore (Gates.toffoli ~bits:2 ~control1:0 ~control2:1 ~target:2))

(* Spec *)

let test_spec_names () =
  checkb "toffoli" true
    (match Spec.of_name "Toffoli" with
    | Some f -> Revfun.equal f Gates.toffoli3
    | None -> false);
  checkb "peres = g1" true
    (match Spec.of_name "peres" with
    | Some f -> Revfun.equal f Gates.g1
    | None -> false);
  checkb "unknown" true (Spec.of_name "nonsense" = None)

let test_spec_parse () =
  check revfun "cycles" Gates.toffoli3 (Spec.parse ~bits:3 "(7,8)");
  check revfun "outputs" Gates.toffoli3 (Spec.parse ~bits:3 "0,1,2,3,4,5,7,6");
  check revfun "name" Gates.g2 (Spec.parse ~bits:3 "g2");
  Alcotest.check_raises "wrong count"
    (Invalid_argument "Spec.of_output_list: wrong number of outputs") (fun () ->
      ignore (Spec.parse ~bits:3 "0,1,2"))

let () =
  Alcotest.run "reversible"
    [
      ( "revfun",
        [
          Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "xor layers" `Quick test_xor_layer;
          Alcotest.test_case "NOT group closed" `Quick test_not_layer_group_closed;
          Alcotest.test_case "fixes zero" `Quick test_fixes_zero;
          Alcotest.test_case "wire outputs" `Quick test_wire_outputs;
          Alcotest.test_case "output column" `Quick test_output_column;
        ] );
      ("revfun properties", revfun_props);
      ( "gates",
        [
          Alcotest.test_case "toffoli" `Quick test_toffoli;
          Alcotest.test_case "fredkin" `Quick test_fredkin;
          Alcotest.test_case "peres formulas" `Quick test_peres_formulas;
          Alcotest.test_case "g2 g3 g4 formulas" `Quick test_g2_g3_g4_formulas;
          Alcotest.test_case "paper cycle forms" `Quick test_paper_cycle_forms;
          Alcotest.test_case "swap and not" `Quick test_swap_and_not;
          Alcotest.test_case "peres = toffoli ; cnot" `Quick
            test_peres_is_cnot_after_toffoli;
          Alcotest.test_case "errors" `Quick test_gate_errors;
        ] );
      ( "spec",
        [
          Alcotest.test_case "names" `Quick test_spec_names;
          Alcotest.test_case "parse" `Quick test_spec_parse;
        ] );
    ]
