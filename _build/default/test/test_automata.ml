(* Tests for the automata library: measurement, probabilistic circuits,
   quantum state machines and hidden Markov models. *)

open Automata
open Qsim

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let prob = Alcotest.testable Prob.pp Prob.equal

let qcheck_test ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let quat_gen = QCheck2.Gen.(map Mvl.Quat.of_int (int_range 0 3))

let pattern_gen qubits =
  QCheck2.Gen.(map Mvl.Pattern.of_list (list_repeat qubits quat_gen))

let library3 = Synthesis.Library.make (Mvl.Encoding.make ~qubits:3)

(* Measurement *)

let test_wire_distribution () =
  let p0, p1 = Measurement.wire_distribution Mvl.Quat.V0 in
  check prob "V0 -> 0 w.p. 1/2" Prob.half p0;
  check prob "V0 -> 1 w.p. 1/2" Prob.half p1;
  let p0, p1 = Measurement.wire_distribution Mvl.Quat.One in
  check prob "1 -> 0 never" Prob.zero p0;
  check prob "1 -> 1 surely" Prob.one p1

let test_binary_pattern_deterministic () =
  let p = Mvl.Pattern.of_binary_code ~qubits:3 5 in
  check prob "its own code" Prob.one (Measurement.code_probability p 5);
  check prob "other codes" Prob.zero (Measurement.code_probability p 4);
  checkb "deterministic" true (Measurement.is_deterministic p)

let test_mixed_distribution () =
  let p = Mvl.Pattern.of_list [ Mvl.Quat.One; Mvl.Quat.V0; Mvl.Quat.V1 ] in
  let support = Measurement.support p in
  check Alcotest.int "4 outcomes" 4 (List.length support);
  List.iter (fun (_, pr) -> check prob "quarter each" (Prob.make 1 2) pr) support;
  checkb "all codes have the A bit set" true
    (List.for_all (fun (code, _) -> code land 4 <> 0) support);
  check (Alcotest.float 1e-9) "entropy 2 bits" 2.0 (Measurement.entropy_bits p)

let measurement_props =
  [
    qcheck_test "distribution sums to one" (pattern_gen 3) (fun p ->
        Prob.equal (Prob.sum (Array.to_list (Measurement.distribution p))) Prob.one);
    qcheck_test "support consistent with distribution" (pattern_gen 2) (fun p ->
        let dist = Measurement.distribution p in
        List.for_all (fun (code, pr) -> Prob.equal dist.(code) pr) (Measurement.support p));
    qcheck_test "measurement agrees with state vector" (pattern_gen 2) (fun p ->
        (* The MV-level measurement distribution equals the one computed
           from the exact quantum state. *)
        let state = State.of_pattern p in
        let dist = Measurement.distribution p in
        Array.for_all Fun.id
          (Array.mapi (fun code pr -> Prob.equal (State.basis_probability state code) pr) dist));
  ]

(* Prob_circuit *)

let test_controlled_coin () =
  let coin = Prob_circuit.controlled_coin library3 in
  checkb "not deterministic" false (Prob_circuit.is_deterministic coin);
  check (Alcotest.float 1e-9) "armed input entropy" 1.0
    (Prob_circuit.entropy_bits coin ~input:4);
  check (Alcotest.float 1e-9) "disarmed input entropy" 0.0
    (Prob_circuit.entropy_bits coin ~input:0);
  let dist = Prob_circuit.output_distribution coin ~input:4 in
  check prob "code 4" Prob.half dist.(4);
  check prob "code 5" Prob.half dist.(5)

let test_deterministic_circuit () =
  let c =
    Prob_circuit.of_cascade library3 (Synthesis.Cascade.of_string ~qubits:3 "FBA*FCA")
  in
  checkb "deterministic" true (Prob_circuit.is_deterministic c)

let test_of_cascade_rejects_unreasonable () =
  Alcotest.check_raises "unreasonable"
    (Invalid_argument "Prob_circuit.of_cascade: cascade violates the reasonable product")
    (fun () ->
      ignore
        (Prob_circuit.of_cascade library3 (Synthesis.Cascade.of_string ~qubits:3 "VBA*FBA")))

let test_synthesize_two_coin () =
  let spec =
    Prob_circuit.spec_of_strings library3
      [ "000"; "001"; "010"; "011"; "1V0V0"; "1V0V1"; "1V1V0"; "1V1V1" ]
  in
  match Prob_circuit.synthesize library3 spec with
  | Some circuit ->
      check Alcotest.int "cost 2" 2 (Synthesis.Cascade.cost (Prob_circuit.cascade circuit));
      (* The synthesized circuit matches the spec on every input. *)
      Array.iteri
        (fun input expected ->
          checkb "matches spec" true
            (Mvl.Pattern.equal (Prob_circuit.output_pattern circuit ~input) expected))
        spec
  | None -> Alcotest.fail "spec is realizable"

let test_synthesize_deterministic_spec () =
  (* The identity spec synthesizes to the empty cascade. *)
  let spec =
    Array.init 8 (fun code -> Mvl.Pattern.of_binary_code ~qubits:3 code)
  in
  match Prob_circuit.synthesize library3 spec with
  | Some circuit ->
      check Alcotest.int "cost 0" 0 (Synthesis.Cascade.cost (Prob_circuit.cascade circuit))
  | None -> Alcotest.fail "identity spec realizable"

let test_spec_errors () =
  checkb "repeated output" true
    (match
       Prob_circuit.synthesize library3
         (Array.make 8 (Mvl.Pattern.of_binary_code ~qubits:3 0))
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "bad arity" true
    (match Prob_circuit.spec_of_strings library3 [ "000" ] with
    | spec -> (
        match Prob_circuit.synthesize library3 spec with
        | exception Invalid_argument _ -> true
        | _ -> false));
  checkb "bad pattern width" true
    (match Prob_circuit.spec_of_strings library3 [ "0000" ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_spec_of_strings_forms () =
  let spec = Prob_circuit.spec_of_strings library3 [ "1,V0,0" ] in
  checkb "comma form" true
    (Mvl.Pattern.equal spec.(0)
       (Mvl.Pattern.of_list [ Mvl.Quat.One; Mvl.Quat.V0; Mvl.Quat.Zero ]));
  let spec2 = Prob_circuit.spec_of_strings library3 [ "1V00" ] in
  checkb "concatenated form" true (Mvl.Pattern.equal spec2.(0) spec.(0))

(* Qfsm *)

let walk_machine =
  Qfsm.make
    ~circuit:
      (Prob_circuit.of_cascade library3 (Synthesis.Cascade.of_string ~qubits:3 "VCA*VAB"))
    ~state_wires:[ 0 ] ~input_wires:[ 1 ] ~obs_wires:[ 2 ]

let test_qfsm_sizes () =
  check Alcotest.int "states" 2 (Qfsm.num_states walk_machine);
  check Alcotest.int "inputs" 2 (Qfsm.num_inputs walk_machine);
  check Alcotest.int "obs" 2 (Qfsm.num_obs walk_machine)

let test_qfsm_transitions () =
  (* input 0: state persists; input 1: uniform next state. *)
  let m0 = Qfsm.transition_matrix walk_machine ~input:0 in
  check prob "0 stays" Prob.one m0.(0).(0);
  check prob "1 stays" Prob.one m0.(1).(1);
  let m1 = Qfsm.transition_matrix walk_machine ~input:1 in
  Array.iter (fun row -> Array.iter (fun p -> check prob "uniform" Prob.half p) row) m1

let test_qfsm_rows_stochastic () =
  List.iter
    (fun input ->
      Array.iter
        (fun row -> check prob "row sums to 1" Prob.one (Prob.sum (Array.to_list row)))
        (Qfsm.transition_matrix walk_machine ~input))
    [ 0; 1 ]

let test_qfsm_joint_marginalizes () =
  (* Summing the joint over observations recovers the transition row. *)
  List.iter
    (fun (input, state) ->
      let joint = Qfsm.joint_row walk_machine ~input ~state in
      let row = Qfsm.transition_row walk_machine ~input ~state in
      Array.iteri
        (fun s' per_obs ->
          check prob "marginal" row.(s') (Prob.sum (Array.to_list per_obs)))
        joint)
    [ (0, 0); (0, 1); (1, 0); (1, 1) ]

let test_qfsm_step () =
  let start = [| Prob.one; Prob.zero |] in
  let after = Qfsm.step walk_machine ~input:1 start in
  check prob "randomized" Prob.half after.(0);
  check prob "randomized" Prob.half after.(1);
  let stay = Qfsm.run walk_machine ~inputs:[ 0; 0; 0 ] start in
  check prob "deterministic run" Prob.one stay.(0)

let test_qfsm_stationary () =
  let pi = Qfsm.stationary walk_machine ~input:1 in
  check (Alcotest.float 1e-9) "uniform" 0.5 pi.(0)

let test_qfsm_errors () =
  Alcotest.check_raises "overlap" (Invalid_argument "Qfsm.make: overlapping wires")
    (fun () ->
      ignore
        (Qfsm.make
           ~circuit:(Prob_circuit.controlled_coin library3)
           ~state_wires:[ 0 ] ~input_wires:[ 0 ] ~obs_wires:[]));
  Alcotest.check_raises "no state" (Invalid_argument "Qfsm.make: no state wires")
    (fun () ->
      ignore
        (Qfsm.make
           ~circuit:(Prob_circuit.controlled_coin library3)
           ~state_wires:[] ~input_wires:[ 0 ] ~obs_wires:[]))

(* Hmm *)

let coin_hmm =
  (* state wire A fixed, obs wire C: state 0 emits 0 surely; state 1
     emits a fair coin — the classic two-state emission test. *)
  let machine =
    Qfsm.make
      ~circuit:
        (Prob_circuit.of_cascade library3 (Synthesis.Cascade.of_string ~qubits:3 "VCA"))
      ~state_wires:[ 0 ] ~input_wires:[] ~obs_wires:[ 2 ]
  in
  Hmm.of_machine machine ~input:0

let test_hmm_shape () =
  check Alcotest.int "states" 2 (Hmm.num_states coin_hmm);
  check Alcotest.int "obs" 2 (Hmm.num_obs coin_hmm)

let test_hmm_forward () =
  let uniform = [| Prob.half; Prob.half |] in
  (* P(obs=1) = P(state 1) * 1/2 = 1/4 *)
  check prob "single obs" (Prob.make 1 2) (Hmm.forward coin_hmm ~init:uniform ~observations:[ 1 ]);
  (* P(obs=11) = 1/2 * (1/2)^2 = 1/8 *)
  check prob "two obs" (Prob.make 1 3)
    (Hmm.forward coin_hmm ~init:uniform ~observations:[ 1; 1 ]);
  (* empty word *)
  check prob "empty word" Prob.one (Hmm.forward coin_hmm ~init:uniform ~observations:[])

let test_hmm_forward_zero () =
  (* Starting surely in state 0, observing a 1 is impossible. *)
  let init = [| Prob.one; Prob.zero |] in
  check prob "impossible" Prob.zero (Hmm.forward coin_hmm ~init ~observations:[ 1 ])

let test_hmm_viterbi () =
  let uniform = [| Prob.half; Prob.half |] in
  let path, p = Hmm.viterbi coin_hmm ~init:uniform ~observations:[ 1; 1 ] in
  check (Alcotest.list Alcotest.int) "must pass through state 1" [ 1; 1 ] path;
  check prob "path probability" (Prob.make 1 3) p;
  let empty_path, empty_p = Hmm.viterbi coin_hmm ~init:uniform ~observations:[] in
  check (Alcotest.list Alcotest.int) "empty path" [] empty_path;
  check prob "empty prob" Prob.one empty_p

let test_hmm_viterbi_against_brute_force () =
  (* Enumerate every state path for short observation words and check
     Viterbi finds the maximum joint probability. *)
  let machine =
    Qfsm.make
      ~circuit:
        (Prob_circuit.of_cascade library3
           (Synthesis.Cascade.of_string ~qubits:3 "VCA*VAB"))
      ~state_wires:[ 0 ] ~input_wires:[ 1 ] ~obs_wires:[ 2 ]
  in
  let hmm = Hmm.of_machine machine ~input:1 in
  let init = [| Prob.half; Prob.half |] in
  let joint s = Hmm.joint hmm ~state:s in
  let brute_force observations =
    (* max over state paths of init(s0) * prod P(s_{t+1}, obs_t | s_t) *)
    let rec go s prob = function
      | [] -> prob
      | obs :: rest ->
          List.fold_left
            (fun best s' ->
              let p = Prob.mul prob (joint s).(s').(obs) in
              let candidate = go s' p rest in
              if Prob.compare candidate best > 0 then candidate else best)
            Prob.zero [ 0; 1 ]
    in
    List.fold_left
      (fun best s0 ->
        let candidate = go s0 init.(s0) observations in
        if Prob.compare candidate best > 0 then candidate else best)
      Prob.zero [ 0; 1 ]
  in
  List.iter
    (fun word ->
      let _, p = Hmm.viterbi hmm ~init ~observations:word in
      check prob
        (Printf.sprintf "viterbi max for %s"
           (String.concat "" (List.map string_of_int word)))
        (brute_force word) p)
    [ [ 0 ]; [ 1 ]; [ 0; 1 ]; [ 1; 1; 0 ]; [ 0; 0; 1; 1 ] ]

let test_hmm_forward_against_brute_force () =
  (* Forward likelihood = sum over all state paths. *)
  let machine =
    Qfsm.make
      ~circuit:
        (Prob_circuit.of_cascade library3
           (Synthesis.Cascade.of_string ~qubits:3 "VCA*VAB"))
      ~state_wires:[ 0 ] ~input_wires:[ 1 ] ~obs_wires:[ 2 ]
  in
  let hmm = Hmm.of_machine machine ~input:1 in
  let init = [| Prob.half; Prob.half |] in
  let joint s = Hmm.joint hmm ~state:s in
  let rec total s prob = function
    | [] -> prob
    | obs :: rest ->
        Prob.sum
          (List.map (fun s' -> total s' (Prob.mul prob (joint s).(s').(obs)) rest) [ 0; 1 ])
  in
  List.iter
    (fun word ->
      let by_paths =
        Prob.sum (List.map (fun s0 -> total s0 init.(s0) word) [ 0; 1 ])
      in
      check prob "forward = path sum" by_paths (Hmm.forward hmm ~init ~observations:word))
    [ [ 1 ]; [ 0; 1 ]; [ 1; 0; 1 ] ]

let test_hmm_make_validation () =
  checkb "non-stochastic rejected" true
    (match Hmm.make ~joint:[| [| [| Prob.half |] |] |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let ok = Hmm.make ~joint:[| [| [| Prob.half; Prob.half |] |] |] in
  check Alcotest.int "one state" 1 (Hmm.num_states ok)

let test_hmm_state_distribution () =
  let uniform = [| Prob.half; Prob.half |] in
  let alpha = Hmm.state_distribution coin_hmm ~init:uniform ~observations:[ 1 ] in
  (* only state 1 can emit a 1, and it self-loops *)
  check prob "state 0" Prob.zero alpha.(0);
  check prob "state 1" (Prob.make 1 2) alpha.(1)

(* Behavior *)

let test_behavior_parse () =
  let spec =
    Behavior.of_strings library3 [ "000"; "001"; "010"; "011"; "1??"; "1?*"; "1??"; "1??" ]
  in
  check Alcotest.int "rows" 8 (Array.length spec);
  checkb "coin parsed" true (spec.(4).(1) = Behavior.Coin);
  checkb "any parsed" true (spec.(5).(2) = Behavior.Any);
  checkb "bad char" true
    (match Behavior.of_strings library3 (List.init 8 (fun _ -> "0x0")) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "bad width" true
    (match Behavior.of_strings library3 (List.init 8 (fun _ -> "00")) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_behavior_matches () =
  let spec = Behavior.of_strings library3 (List.init 8 (fun _ -> "1?*")) in
  let p v = Mvl.Pattern.of_list [ Mvl.Quat.One; v; Mvl.Quat.V0 ] in
  checkb "coin accepts V0" true (Behavior.matches spec ~input:0 (p Mvl.Quat.V0));
  checkb "coin accepts V1" true (Behavior.matches spec ~input:0 (p Mvl.Quat.V1));
  checkb "coin rejects 0" false (Behavior.matches spec ~input:0 (p Mvl.Quat.Zero));
  checkb "one rejects zero" false
    (Behavior.matches spec ~input:0
       (Mvl.Pattern.of_list [ Mvl.Quat.Zero; Mvl.Quat.V0; Mvl.Quat.Zero ]))

let test_behavior_synthesize () =
  (* Observable spec of the two-coin generator: both B and C behave as
     coins when A = 1.  Weaker than the exact pattern spec, same minimal
     cost. *)
  let spec =
    Behavior.of_strings library3
      [ "000"; "001"; "010"; "011"; "1??"; "1??"; "1??"; "1??" ]
  in
  match Behavior.synthesize library3 spec with
  | Some circuit ->
      check Alcotest.int "cost 2" 2
        (Synthesis.Cascade.cost (Prob_circuit.cascade circuit));
      checkb "satisfied" true (Behavior.satisfied_by spec circuit)
  | None -> Alcotest.fail "behaviour realizable"

let test_behavior_dont_cares_help () =
  (* With don't-cares on half the inputs, a cheaper circuit suffices than
     for the fully specified behaviour. *)
  let strict =
    Behavior.of_strings library3
      [ "000"; "001"; "010"; "011"; "10?"; "10?"; "11?"; "11?" ]
  in
  let relaxed =
    Behavior.of_strings library3
      [ "000"; "***"; "***"; "***"; "10?"; "***"; "***"; "***" ]
  in
  match (Behavior.synthesize library3 strict, Behavior.synthesize library3 relaxed) with
  | Some s, Some r ->
      checkb "relaxed not costlier" true
        (Synthesis.Cascade.cost (Prob_circuit.cascade r)
        <= Synthesis.Cascade.cost (Prob_circuit.cascade s))
  | _ -> Alcotest.fail "both realizable"

let test_behavior_observe_roundtrip () =
  let coin = Prob_circuit.controlled_coin library3 in
  let observed = Behavior.observe coin in
  checkb "circuit satisfies its own behaviour" true (Behavior.satisfied_by observed coin);
  (* observing contains no Any *)
  checkb "no Any" true
    (Array.for_all (Array.for_all (fun b -> b <> Behavior.Any)) observed);
  (* re-synthesis from the observed behaviour costs no more *)
  match Behavior.synthesize library3 observed with
  | Some resynth ->
      checkb "cost preserved" true
        (Synthesis.Cascade.cost (Prob_circuit.cascade resynth)
        <= Synthesis.Cascade.cost (Prob_circuit.cascade coin))
  | None -> Alcotest.fail "observed behaviour realizable"

let test_behavior_unsatisfiable () =
  (* Demanding a coin on C while keeping A = 0 rows deterministic with C
     untouched conflicts with how coins are generated (a control must be
     1): input 0 -> coin is impossible. *)
  let impossible =
    Behavior.of_strings library3
      [ "00?"; "***"; "***"; "***"; "***"; "***"; "***"; "***" ]
  in
  checkb "unsatisfiable" true (Behavior.synthesize ~max_depth:4 library3 impossible = None)

let () =
  Alcotest.run "automata"
    [
      ( "measurement",
        [
          Alcotest.test_case "wire distribution" `Quick test_wire_distribution;
          Alcotest.test_case "binary deterministic" `Quick
            test_binary_pattern_deterministic;
          Alcotest.test_case "mixed distribution" `Quick test_mixed_distribution;
        ] );
      ("measurement properties", measurement_props);
      ( "prob_circuit",
        [
          Alcotest.test_case "controlled coin" `Quick test_controlled_coin;
          Alcotest.test_case "deterministic circuit" `Quick test_deterministic_circuit;
          Alcotest.test_case "rejects unreasonable" `Quick
            test_of_cascade_rejects_unreasonable;
          Alcotest.test_case "synthesize two-coin" `Quick test_synthesize_two_coin;
          Alcotest.test_case "synthesize identity" `Quick
            test_synthesize_deterministic_spec;
          Alcotest.test_case "spec errors" `Quick test_spec_errors;
          Alcotest.test_case "spec string forms" `Quick test_spec_of_strings_forms;
        ] );
      ( "qfsm",
        [
          Alcotest.test_case "sizes" `Quick test_qfsm_sizes;
          Alcotest.test_case "transitions" `Quick test_qfsm_transitions;
          Alcotest.test_case "stochastic rows" `Quick test_qfsm_rows_stochastic;
          Alcotest.test_case "joint marginalizes" `Quick test_qfsm_joint_marginalizes;
          Alcotest.test_case "step and run" `Quick test_qfsm_step;
          Alcotest.test_case "stationary" `Quick test_qfsm_stationary;
          Alcotest.test_case "errors" `Quick test_qfsm_errors;
        ] );
      ( "behavior",
        [
          Alcotest.test_case "parse" `Quick test_behavior_parse;
          Alcotest.test_case "matches" `Quick test_behavior_matches;
          Alcotest.test_case "synthesize" `Quick test_behavior_synthesize;
          Alcotest.test_case "don't-cares help" `Quick test_behavior_dont_cares_help;
          Alcotest.test_case "observe roundtrip" `Quick test_behavior_observe_roundtrip;
          Alcotest.test_case "unsatisfiable" `Quick test_behavior_unsatisfiable;
        ] );
      ( "hmm",
        [
          Alcotest.test_case "shape" `Quick test_hmm_shape;
          Alcotest.test_case "forward" `Quick test_hmm_forward;
          Alcotest.test_case "forward impossible" `Quick test_hmm_forward_zero;
          Alcotest.test_case "viterbi" `Quick test_hmm_viterbi;
          Alcotest.test_case "make validation" `Quick test_hmm_make_validation;
          Alcotest.test_case "viterbi vs brute force" `Quick
            test_hmm_viterbi_against_brute_force;
          Alcotest.test_case "forward vs brute force" `Quick
            test_hmm_forward_against_brute_force;
          Alcotest.test_case "state distribution" `Quick test_hmm_state_distribution;
        ] );
    ]
