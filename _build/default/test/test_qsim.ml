(* Tests for the exact state-vector simulator: probabilities, states,
   and cascade simulation. *)

open Qsim

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let prob = Alcotest.testable Prob.pp Prob.equal

let qcheck_test ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let prob_gen = QCheck2.Gen.(map2 (fun n e -> Prob.make n e) (int_range 0 64) (int_range 0 6))
let quat_gen = QCheck2.Gen.(map Mvl.Quat.of_int (int_range 0 3))

let pattern_gen qubits =
  QCheck2.Gen.(map Mvl.Pattern.of_list (list_repeat qubits quat_gen))

(* Prob *)

let test_prob_basics () =
  check prob "half + half" Prob.one (Prob.add Prob.half Prob.half);
  check prob "normalization" Prob.half (Prob.make 2 2);
  check prob "mul" (Prob.make 1 2) (Prob.mul Prob.half Prob.half);
  check prob "sub" Prob.half (Prob.sub Prob.one Prob.half);
  check (Alcotest.float 1e-12) "to_float" 0.25 (Prob.to_float (Prob.make 1 2));
  Alcotest.check_raises "negative sub" (Invalid_argument "Prob.sub: negative result")
    (fun () -> ignore (Prob.sub Prob.half Prob.one));
  Alcotest.check_raises "negative make" (Invalid_argument "Prob.make: negative component")
    (fun () -> ignore (Prob.make (-1) 0))

let test_prob_compare () =
  checkb "half < one" true (Prob.compare Prob.half Prob.one < 0);
  checkb "equal" true (Prob.compare (Prob.make 2 2) Prob.half = 0);
  check prob "sum" Prob.one (Prob.sum [ Prob.make 1 2; Prob.make 1 2; Prob.half ])

let prob_props =
  let open QCheck2.Gen in
  [
    qcheck_test "add commutative" (pair prob_gen prob_gen) (fun (a, b) ->
        Prob.equal (Prob.add a b) (Prob.add b a));
    qcheck_test "mul distributes" (triple prob_gen prob_gen prob_gen) (fun (a, b, c) ->
        Prob.equal (Prob.mul a (Prob.add b c)) (Prob.add (Prob.mul a b) (Prob.mul a c)));
    qcheck_test "float consistent" (pair prob_gen prob_gen) (fun (a, b) ->
        Float.abs (Prob.to_float (Prob.add a b) -. (Prob.to_float a +. Prob.to_float b))
        < 1e-9);
  ]

(* State *)

let test_basis () =
  let s = State.basis ~qubits:2 2 in
  check Alcotest.int "dimension" 4 (State.dimension s);
  checkb "normalized" true (State.is_normalized s);
  check prob "P(|10>) = 1" Prob.one (State.basis_probability s 2);
  check prob "P(|00>) = 0" Prob.zero (State.basis_probability s 0);
  Alcotest.check_raises "range" (Invalid_argument "State.basis: code out of range")
    (fun () -> ignore (State.basis ~qubits:2 4))

let test_of_pattern_binary () =
  let p = Mvl.Pattern.of_binary_code ~qubits:3 5 in
  checkb "binary pattern is basis state" true
    (State.equal (State.of_pattern p) (State.basis ~qubits:3 5))

let test_of_pattern_mixed () =
  let p = Mvl.Pattern.of_list [ Mvl.Quat.One; Mvl.Quat.V0 ] in
  let s = State.of_pattern p in
  checkb "normalized" true (State.is_normalized s);
  check prob "wire B yields 1 with 1/2" Prob.half (State.one_probability s ~wire:1);
  check prob "wire A yields 1 surely" Prob.one (State.one_probability s ~wire:0)

let test_apply_v () =
  (* V on |0> produces the V0 wire state. *)
  let s = State.apply Qmath.Gate_matrix.v (State.basis ~qubits:1 0) in
  checkb "V|0> = V0 state" true
    (State.equal s (State.of_pattern (Mvl.Pattern.of_list [ Mvl.Quat.V0 ])))

let test_to_pattern_entangled () =
  (* V0 (x) |0> then CNOT(B <- A) is entangled: no quaternary pattern. *)
  let s = State.of_pattern (Mvl.Pattern.of_list [ Mvl.Quat.V0; Mvl.Quat.Zero ]) in
  let cnot = Qmath.Gate_matrix.feynman ~qubits:2 ~control:0 ~target:1 in
  let s' = State.apply cnot s in
  checkb "still normalized" true (State.is_normalized s');
  checkb "no product pattern" true (State.to_pattern s' = None)

let test_distribution () =
  let s = State.of_pattern (Mvl.Pattern.of_list [ Mvl.Quat.V0; Mvl.Quat.V1 ]) in
  let dist = State.distribution s in
  Array.iter (fun p -> check prob "uniform" (Prob.make 1 2) p) dist;
  check prob "total" Prob.one (Prob.sum (Array.to_list dist))

let state_props =
  [
    qcheck_test "pattern states normalized" (pattern_gen 3) (fun p ->
        State.is_normalized (State.of_pattern p));
    qcheck_test "to_pattern inverts of_pattern" (pattern_gen 2) (fun p ->
        match State.to_pattern (State.of_pattern p) with
        | Some q -> Mvl.Pattern.equal p q
        | None -> false);
    qcheck_test "unitary preserves norm" (pattern_gen 2) (fun p ->
        let s = State.of_pattern p in
        let u = Qmath.Gate_matrix.controlled_v ~qubits:2 ~control:0 ~target:1 in
        State.is_normalized (State.apply u s));
    qcheck_test "one_probability from distribution" (pattern_gen 2) (fun p ->
        let s = State.of_pattern p in
        let dist = State.distribution s in
        let by_sum =
          Prob.sum
            (List.filter_map
               (fun code -> if code land 1 = 1 then Some dist.(code) else None)
               [ 0; 1; 2; 3 ])
        in
        Prob.equal by_sum (State.one_probability s ~wire:1));
  ]

(* Circuit_sim *)

let test_cascade_order () =
  (* V;V on the data wire equals NOT: check the composition order. *)
  let v = Qmath.Gate_matrix.v in
  let u = Circuit_sim.unitary_of_cascade ~qubits:1 [ v; v ] in
  checkb "V*V = NOT" true (Qmath.Dmatrix.equal u Qmath.Gate_matrix.not_gate)

let test_classical_function () =
  let cnot = Qmath.Gate_matrix.feynman ~qubits:2 ~control:0 ~target:1 in
  (match Circuit_sim.classical_function ~qubits:2 [ cnot ] with
  | Some outputs -> check (Alcotest.array Alcotest.int) "cnot" [| 0; 1; 3; 2 |] outputs
  | None -> Alcotest.fail "cnot is classical");
  (* A lone controlled-V is not classical. *)
  let cv = Qmath.Gate_matrix.controlled_v ~qubits:2 ~control:0 ~target:1 in
  checkb "controlled-V not classical" true
    (Circuit_sim.classical_function ~qubits:2 [ cv ] = None)

let test_output_pattern () =
  let cv = Qmath.Gate_matrix.controlled_v ~qubits:2 ~control:0 ~target:1 in
  let input = Mvl.Pattern.of_binary_code ~qubits:2 2 in
  (match Circuit_sim.output_pattern ~qubits:2 [ cv ] input with
  | Some out ->
      checkb "1,0 -> 1,V0" true
        (Mvl.Pattern.equal out (Mvl.Pattern.of_list [ Mvl.Quat.One; Mvl.Quat.V0 ]))
  | None -> Alcotest.fail "product state expected");
  (* entangling cascade has no pattern *)
  let cnot = Qmath.Gate_matrix.feynman ~qubits:2 ~control:1 ~target:0 in
  let mixed = Mvl.Pattern.of_list [ Mvl.Quat.One; Mvl.Quat.V0 ] in
  checkb "entangled output" true (Circuit_sim.output_pattern ~qubits:2 [ cnot ] mixed = None)

(* Entanglement detection *)

let test_product_detection () =
  let product = State.of_pattern (Mvl.Pattern.of_list [ Mvl.Quat.V0; Mvl.Quat.One ]) in
  checkb "product state" true (State.is_product product);
  checkb "not entangled" false (State.is_entangled product);
  checkb "across the cut" true (State.product_across product ~cut:1)

let test_entangled_detection () =
  (* V0 on A, then CNOT(B <- A): a Bell-like state with dyadic amplitudes. *)
  let s = State.of_pattern (Mvl.Pattern.of_list [ Mvl.Quat.V0; Mvl.Quat.Zero ]) in
  let cnot = Qmath.Gate_matrix.feynman ~qubits:2 ~control:0 ~target:1 in
  let bell = State.apply cnot s in
  checkb "entangled" true (State.is_entangled bell);
  checkb "not product across cut" false (State.product_across bell ~cut:1);
  Alcotest.check_raises "bad cut" (Invalid_argument "State.product_across: bad cut")
    (fun () -> ignore (State.product_across bell ~cut:0))

let test_schmidt_rank () =
  let product = State.of_pattern (Mvl.Pattern.of_list [ Mvl.Quat.V0; Mvl.Quat.One ]) in
  check Alcotest.int "product rank 1" 1 (State.schmidt_rank product ~cut:1);
  let s = State.of_pattern (Mvl.Pattern.of_list [ Mvl.Quat.V0; Mvl.Quat.Zero ]) in
  let cnot = Qmath.Gate_matrix.feynman ~qubits:2 ~control:0 ~target:1 in
  let bell = State.apply cnot s in
  check Alcotest.int "bell rank 2" 2 (State.schmidt_rank bell ~cut:1)

let test_partial_entanglement () =
  (* Entangle A and B, keep C separable: entangled overall, but the AB|C
     cut still factorizes. *)
  let s =
    State.of_pattern (Mvl.Pattern.of_list [ Mvl.Quat.V0; Mvl.Quat.Zero; Mvl.Quat.V1 ])
  in
  let cnot = Qmath.Gate_matrix.feynman ~qubits:3 ~control:0 ~target:1 in
  let partial = State.apply cnot s in
  checkb "entangled overall" true (State.is_entangled partial);
  checkb "A|BC cut entangled" false (State.product_across partial ~cut:1);
  checkb "AB|C cut separable" true (State.product_across partial ~cut:2)

let entanglement_props =
  [
    qcheck_test "pattern states are products" (pattern_gen 3) (fun p ->
        State.is_product (State.of_pattern p));
    qcheck_test "to_pattern implies product" (pattern_gen 2) (fun p ->
        let s = State.of_pattern p in
        match State.to_pattern s with Some _ -> State.is_product s | None -> true);
  ]

let test_empty_cascade () =
  checkb "identity" true
    (Qmath.Dmatrix.is_identity (Circuit_sim.unitary_of_cascade ~qubits:2 []))

let () =
  Alcotest.run "qsim"
    [
      ( "prob",
        [
          Alcotest.test_case "basics" `Quick test_prob_basics;
          Alcotest.test_case "compare and sum" `Quick test_prob_compare;
        ] );
      ("prob properties", prob_props);
      ( "state",
        [
          Alcotest.test_case "basis" `Quick test_basis;
          Alcotest.test_case "of_pattern binary" `Quick test_of_pattern_binary;
          Alcotest.test_case "of_pattern mixed" `Quick test_of_pattern_mixed;
          Alcotest.test_case "apply V" `Quick test_apply_v;
          Alcotest.test_case "entangled has no pattern" `Quick test_to_pattern_entangled;
          Alcotest.test_case "distribution" `Quick test_distribution;
        ] );
      ("state properties", state_props);
      ( "entanglement",
        [
          Alcotest.test_case "product detection" `Quick test_product_detection;
          Alcotest.test_case "entangled detection" `Quick test_entangled_detection;
          Alcotest.test_case "partial entanglement" `Quick test_partial_entanglement;
          Alcotest.test_case "schmidt rank" `Quick test_schmidt_rank;
        ] );
      ("entanglement properties", entanglement_props);
      ( "circuit_sim",
        [
          Alcotest.test_case "cascade order" `Quick test_cascade_order;
          Alcotest.test_case "classical function" `Quick test_classical_function;
          Alcotest.test_case "output pattern" `Quick test_output_pattern;
          Alcotest.test_case "empty cascade" `Quick test_empty_cascade;
        ] );
    ]
