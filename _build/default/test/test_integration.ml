(* End-to-end integration tests: the multiple-valued abstraction, the
   group-theoretic search and the exact unitary simulator must all agree.

   These are the strongest soundness checks in the repository: they
   exercise synthesis -> factorization -> simulation across random inputs
   and against a brute-force oracle. *)

open Synthesis

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

let qcheck_test ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let library3 = Library.make (Mvl.Encoding.make ~qubits:3)
let library2 = Library.make (Mvl.Encoding.make ~qubits:2)

(* Generate random *reasonable* cascades by walking allowed gates. *)
let reasonable_cascade_gen library len =
  QCheck2.Gen.(
    map
      (fun seed ->
        let state = Random.State.make [| seed |] in
        let encoding = Library.encoding library in
        let nb = Mvl.Encoding.num_binary encoding in
        let degree = Mvl.Encoding.size encoding in
        let rec go acc perm k =
          if k = 0 then List.rev acc
          else begin
            let signature =
              Mvl.Encoding.image_signature encoding
                (List.init nb (Permgroup.Perm.apply perm))
            in
            let allowed =
              Array.to_list (Library.entries library)
              |> List.filter (Library.signature_allows ~signature)
            in
            match allowed with
            | [] -> List.rev acc
            | _ ->
                let entry = List.nth allowed (Random.State.int state (List.length allowed)) in
                go (entry.Library.gate :: acc)
                  (Permgroup.Perm.mul perm entry.Library.perm)
                  (k - 1)
          end
        in
        go [] (Permgroup.Perm.identity degree) len)
      int)

(* 1. MV abstraction vs exact unitaries on random reasonable cascades. *)

let mv_soundness_props =
  [
    qcheck_test ~count:40 "3-qubit MV agrees with unitary"
      (reasonable_cascade_gen library3 5) (fun cascade ->
        Cascade.is_reasonable library3 cascade
        && Verify.mv_agrees_with_unitary library3 cascade);
    qcheck_test ~count:40 "2-qubit MV agrees with unitary"
      (reasonable_cascade_gen library2 5) (fun cascade ->
        Cascade.is_reasonable library2 cascade
        && Verify.mv_agrees_with_unitary library2 cascade);
    qcheck_test ~count:40 "binary-restriction matches simulator"
      (reasonable_cascade_gen library3 6) (fun cascade ->
        match Cascade.restriction library3 cascade with
        | Some f -> Verify.cascade_implements ~qubits:3 cascade f
        | None -> Verify.classical_function ~qubits:3 cascade = None);
  ]

(* 2. Brute-force oracle: minimal costs up to 3 gates computed naively
   (all reasonable gate sequences) match the census. *)

let test_census_against_brute_force () =
  let module FnMap = Map.Make (String) in
  let oracle = ref FnMap.empty in
  let remember cost f =
    let key = Permgroup.Perm.key (Reversible.Revfun.to_perm f) in
    oracle :=
      FnMap.update key
        (function Some c -> Some (min c cost) | None -> Some cost)
        !oracle
  in
  remember 0 (Reversible.Revfun.identity ~bits:3);
  let gates = Gate.all ~qubits:3 in
  let rec enumerate cascade cost =
    if cost > 0 then
      (match Cascade.restriction library3 (List.rev cascade) with
      | Some f when Cascade.is_reasonable library3 (List.rev cascade) ->
          remember cost f
      | _ -> ());
    if cost < 3 then
      List.iter (fun g -> enumerate (g :: cascade) (cost + 1)) gates
  in
  enumerate [] 0;
  (* Keep only sequences that were reasonable; compare with census. *)
  let census = Fmcf.run ~max_depth:3 library3 in
  List.iter
    (fun (level : Fmcf.level) ->
      List.iter
        (fun (m : Fmcf.member) ->
          let key = Permgroup.Perm.key (Reversible.Revfun.to_perm m.Fmcf.func) in
          match FnMap.find_opt key !oracle with
          | Some oracle_cost -> check Alcotest.int "cost agrees" oracle_cost m.Fmcf.cost
          | None -> Alcotest.fail "census found a function the oracle missed")
        level.Fmcf.members)
    (Fmcf.levels census);
  (* and the other direction: every oracle function appears in the census *)
  let total = FnMap.cardinal !oracle in
  check Alcotest.int "same function count" total (Fmcf.total_found census)

(* 3. Sampled members of the depth-6 census re-synthesize at their census
   cost and verify against the unitary semantics, NOT layers included. *)

let test_express_random_s8_elements () =
  (* Random elements of S8 that are cheap enough to find: compose a NOT
     layer with census members. *)
  let census = Fmcf.run ~max_depth:4 library3 in
  let state = Random.State.make [| 42 |] in
  for _ = 1 to 25 do
    let cost = 1 + Random.State.int state 4 in
    let members = Fmcf.members_at census ~cost in
    let m = List.nth members (Random.State.int state (List.length members)) in
    let mask = Random.State.int state 8 in
    let target =
      Reversible.Revfun.compose
        (Reversible.Revfun.xor_layer ~bits:3 mask)
        m.Fmcf.func
    in
    match Mce.express library3 target with
    | Some r ->
        check Alcotest.int "same cost with free NOTs" cost r.Mce.cost;
        checkb "verifies" true (Verify.result_valid library3 r)
    | None -> Alcotest.fail "expressible"
  done

(* 4. Theorem 2 numerically: 8 * |G[k]| functions of cost k exist in S8
   when the input NOT layer is free; check by sampling masks. *)

let test_not_layer_never_changes_cost () =
  let census = Fmcf.run ~max_depth:3 library3 in
  List.iter
    (fun (m : Fmcf.member) ->
      List.iter
        (fun mask ->
          let target =
            Reversible.Revfun.compose
              (Reversible.Revfun.xor_layer ~bits:3 mask)
              m.Fmcf.func
          in
          match Mce.express library3 target with
          | Some r -> check Alcotest.int "cost invariant" m.Fmcf.cost r.Mce.cost
          | None -> Alcotest.fail "expressible")
        [ 1; 5; 7 ])
    (Fmcf.members_at census ~cost:2)

(* 5. The probabilistic-synthesis path agrees with the deterministic one
   on deterministic specs. *)

let test_prob_synthesis_on_deterministic_specs () =
  List.iter
    (fun target ->
      let spec =
        Array.init 8 (fun code ->
            Mvl.Pattern.of_binary_code ~qubits:3 (Reversible.Revfun.apply target code))
      in
      match (Automata.Prob_circuit.synthesize library3 spec, Mce.express library3 target) with
      | Some circuit, Some r ->
          check Alcotest.int "same cost" r.Mce.cost
            (Cascade.cost (Automata.Prob_circuit.cascade circuit))
      | _ -> Alcotest.fail "both paths must synthesize")
    [
      Reversible.Gates.cnot ~bits:3 ~control:0 ~target:1;
      Reversible.Gates.g1;
      Reversible.Gates.toffoli3;
    ]

(* 6. Adjoint cascades synthesize the inverse function. *)

let test_adjoint_implements_inverse () =
  match Mce.express library3 Reversible.Gates.g1 with
  | Some r ->
      let adjoint = Cascade.adjoint r.Mce.cascade in
      checkb "adjoint implements inverse" true
        (Verify.cascade_implements ~qubits:3 adjoint
           (Reversible.Revfun.inverse Reversible.Gates.g1))
  | None -> Alcotest.fail "peres expressible"

(* 7. Measurement statistics of a synthesized probabilistic circuit match
   the exact quantum state probabilities. *)

let test_rng_against_state_vector () =
  let coin = Automata.Prob_circuit.controlled_coin library3 in
  for input = 0 to 7 do
    let pattern = Automata.Prob_circuit.output_pattern coin ~input in
    let state =
      Qsim.Circuit_sim.run ~qubits:3
        (Cascade.matrices ~qubits:3 (Automata.Prob_circuit.cascade coin))
        (Qsim.State.basis ~qubits:3 input)
    in
    let mv_dist = Automata.Measurement.distribution pattern in
    Array.iteri
      (fun code p ->
        checkb "distributions agree" true
          (Qsim.Prob.equal p (Qsim.State.basis_probability state code)))
      mv_dist
  done

let () =
  Alcotest.run "integration"
    [
      ("mv soundness", mv_soundness_props);
      ( "oracles",
        [
          Alcotest.test_case "brute force to cost 3" `Slow test_census_against_brute_force;
          Alcotest.test_case "random S8 elements" `Slow test_express_random_s8_elements;
          Alcotest.test_case "NOT layers are free" `Slow test_not_layer_never_changes_cost;
        ] );
      ( "cross-layer",
        [
          Alcotest.test_case "probabilistic = deterministic on specs" `Slow
            test_prob_synthesis_on_deterministic_specs;
          Alcotest.test_case "adjoint inverts" `Quick test_adjoint_implements_inverse;
          Alcotest.test_case "rng matches state vector" `Quick
            test_rng_against_state_vector;
        ] );
    ]
