test/test_qmath.mli:
