test/test_sampling.ml: Alcotest Array Automata List Markov Mvl Prob Prob_circuit Qfsm Qsim Random Sampler Synthesis
