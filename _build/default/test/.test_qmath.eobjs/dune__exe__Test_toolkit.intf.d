test/test_toolkit.mli:
