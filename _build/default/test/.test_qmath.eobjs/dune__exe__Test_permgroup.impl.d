test/test_permgroup.ml: Alcotest Array Closure Coset Cycles Format Fun List Perm Permgroup QCheck2 QCheck_alcotest Random Restricted Schreier
