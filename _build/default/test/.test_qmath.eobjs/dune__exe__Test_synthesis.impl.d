test/test_synthesis.ml: Alcotest Array Cascade Fmcf Gate Hashtbl Lazy Library List Mce Mvl Permgroup QCheck2 QCheck_alcotest Qmath Reversible Search Synthesis Universality Verify
