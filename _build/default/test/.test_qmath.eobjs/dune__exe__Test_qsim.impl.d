test/test_qsim.ml: Alcotest Array Circuit_sim Float List Mvl Prob QCheck2 QCheck_alcotest Qmath Qsim State
