test/test_classical.mli:
