test/test_automata.ml: Alcotest Array Automata Behavior Fun Hmm List Measurement Mvl Printf Prob Prob_circuit QCheck2 QCheck_alcotest Qfsm Qsim State String Synthesis
