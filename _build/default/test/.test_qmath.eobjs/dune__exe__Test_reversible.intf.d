test/test_reversible.mli:
