test/test_reversible.ml: Alcotest Array Format Fun Gates List Permgroup QCheck2 QCheck_alcotest Random Reversible Revfun Spec
