test/test_mvl.mli:
