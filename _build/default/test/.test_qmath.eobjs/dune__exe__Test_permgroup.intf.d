test/test_permgroup.mli:
