test/test_integration.ml: Alcotest Array Automata Cascade Fmcf Gate Library List Map Mce Mvl Permgroup QCheck2 QCheck_alcotest Qsim Random Reversible String Synthesis Verify
