test/test_classical.ml: Alcotest Anf Array Boolexpr Classical_synth Fun Gates Gf2 List Mvl Permgroup Printf QCheck2 QCheck_alcotest Random Reversible Revfun Spec Synthesis
