test/test_qmath.ml: Alcotest Array Cfloat Dmatrix Dyadic Gate_matrix List QCheck2 QCheck_alcotest Qmath Random
