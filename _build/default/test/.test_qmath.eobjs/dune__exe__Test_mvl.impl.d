test/test_mvl.ml: Alcotest Array Encoding List Mvl Pattern Permgroup QCheck2 QCheck_alcotest Qmath Qsim Quat Synthesis Truth_table
