(* Tests for the permgroup substrate: permutations, cycle notation,
   RestrictedPerm, closure enumeration, Schreier-Sims and cosets. *)

open Permgroup

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let perm = Alcotest.testable Perm.pp Perm.equal

let qcheck_test ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Random permutation generator (Fisher-Yates driven by a qcheck seed). *)
let perm_gen degree =
  QCheck2.Gen.(
    map
      (fun seed ->
        let state = Random.State.make [| seed |] in
        let a = Array.init degree Fun.id in
        for i = degree - 1 downto 1 do
          let j = Random.State.int state (i + 1) in
          let tmp = a.(i) in
          a.(i) <- a.(j);
          a.(j) <- tmp
        done;
        Perm.of_array a)
      int)

(* Perm unit tests *)

let test_validation () =
  Alcotest.check_raises "repeat" (Invalid_argument "Perm.of_array: not a permutation")
    (fun () -> ignore (Perm.of_array [| 0; 0; 1 |]));
  Alcotest.check_raises "range" (Invalid_argument "Perm.of_array: not a permutation")
    (fun () -> ignore (Perm.of_array [| 0; 3 |]))

let test_product_convention () =
  (* mul a b applies a first: (a*b)(x) = b(a(x)) — the paper's and GAP's
     convention. *)
  let a = Perm.transposition 3 0 1 in
  let b = Perm.transposition 3 1 2 in
  let ab = Perm.mul a b in
  check Alcotest.int "(a*b)(0) = b(a(0)) = b(1) = 2" 2 (Perm.apply ab 0);
  check Alcotest.int "(a*b)(2) = b(2) = 1" 1 (Perm.apply ab 2)

let test_order () =
  check Alcotest.int "transposition order" 2 (Perm.order (Perm.transposition 5 1 3));
  check Alcotest.int "identity order" 1 (Perm.order (Perm.identity 4));
  let c = Perm.of_array [| 1; 2; 0; 4; 3 |] in
  check Alcotest.int "3-cycle x 2-cycle" 6 (Perm.order c)

let test_support_fixes () =
  let p = Perm.transposition 5 1 3 in
  check (Alcotest.list Alcotest.int) "support" [ 1; 3 ] (Perm.support p);
  checkb "fixes 0" true (Perm.fixes p 0);
  checkb "moves 1" false (Perm.fixes p 1)

let test_image_preserves () =
  let p = Perm.of_array [| 1; 0; 3; 2 |] in
  check (Alcotest.list Alcotest.int) "image" [ 0; 1 ] (Perm.image p [ 0; 1 ]);
  checkb "preserves" true (Perm.preserves p [ 0; 1 ]);
  checkb "not preserves" false (Perm.preserves p [ 1; 2 ])

let test_of_mapping () =
  let p = Perm.of_mapping 4 [ (0, 2); (2, 0) ] in
  check perm "swap via mapping" (Perm.transposition 4 0 2) p;
  Alcotest.check_raises "non-bijective"
    (Invalid_argument "Perm.of_array: not a permutation") (fun () ->
      ignore (Perm.of_mapping 4 [ (0, 2) ]))

let test_pad () =
  let p = Perm.transposition 3 0 1 in
  let q = Perm.pad p 5 in
  check Alcotest.int "degree" 5 (Perm.degree q);
  check Alcotest.int "old part" 1 (Perm.apply q 0);
  check Alcotest.int "new part fixed" 4 (Perm.apply q 4)

let test_pp_identity () =
  check Alcotest.string "identity prints ()" "()"
    (Format.asprintf "%a" Perm.pp (Perm.identity 6))

let perm_props =
  let open QCheck2.Gen in
  let g = perm_gen 8 in
  [
    qcheck_test "inverse cancels" g (fun p ->
        Perm.is_identity (Perm.mul p (Perm.inverse p)));
    qcheck_test "inverse left cancels" g (fun p ->
        Perm.is_identity (Perm.mul (Perm.inverse p) p));
    qcheck_test "mul associative" (triple g g g) (fun (a, b, c) ->
        Perm.equal (Perm.mul (Perm.mul a b) c) (Perm.mul a (Perm.mul b c)));
    qcheck_test "pow order is identity" g (fun p ->
        Perm.is_identity (Perm.pow p (Perm.order p)));
    qcheck_test "pow negative is inverse pow" g (fun p ->
        Perm.equal (Perm.pow p (-3)) (Perm.inverse (Perm.pow p 3)));
    qcheck_test "key injective on samples" (pair g g) (fun (a, b) ->
        Perm.equal a b = (Perm.key a = Perm.key b));
    qcheck_test "conjugate preserves order" (pair g g) (fun (p, q) ->
        Perm.order (Perm.conjugate p q) = Perm.order p);
    qcheck_test "roundtrip to_array" g (fun p ->
        Perm.equal p (Perm.of_array (Perm.to_array p)));
  ]

(* Cycles *)

let test_cycles_paper_strings () =
  let p =
    Cycles.of_string ~degree:38 "(5,17,7,21)(6,18,8,22)(13,19,15,23)(14,20,16,24)"
  in
  check Alcotest.int "5 -> 17 (1-based)" 16 (Perm.apply p 4);
  check Alcotest.int "21 -> 5 (1-based)" 4 (Perm.apply p 20);
  check Alcotest.string "roundtrip"
    "(5,17,7,21)(6,18,8,22)(13,19,15,23)(14,20,16,24)" (Cycles.to_string p)

let test_cycles_identity () =
  check perm "empty string" (Perm.identity 5) (Cycles.of_string ~degree:5 "");
  check perm "() string" (Perm.identity 5) (Cycles.of_string ~degree:5 "()");
  check Alcotest.string "identity prints" "()" (Cycles.to_string (Perm.identity 5))

let test_cycles_errors () =
  Alcotest.check_raises "repeated point"
    (Invalid_argument "Cycles.of_cycles: repeated point") (fun () ->
      ignore (Cycles.of_string ~degree:5 "(1,2)(2,3)"));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Cycles.of_cycles: point out of range") (fun () ->
      ignore (Cycles.of_string ~degree:3 "(1,7)"))

let test_to_cycles () =
  let p = Perm.of_array [| 1; 0; 2; 4; 3 |] in
  check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "cycles" [ [ 0; 1 ]; [ 3; 4 ] ] (Cycles.to_cycles p)

let cycles_props =
  [
    qcheck_test "string roundtrip" (perm_gen 12) (fun p ->
        Perm.equal p (Cycles.of_string ~degree:12 (Cycles.to_string p)));
    qcheck_test "of_cycles . to_cycles" (perm_gen 10) (fun p ->
        Perm.equal p (Cycles.of_cycles ~degree:10 (Cycles.to_cycles p)));
  ]

(* Restricted *)

let test_restrict () =
  let p = Cycles.of_string ~degree:6 "(1,2)(5,6)" in
  (match Restricted.restrict p [ 0; 1 ] with
  | Some r -> check perm "restriction" (Perm.transposition 2 0 1) r
  | None -> Alcotest.fail "expected restriction");
  checkb "not preserved" true
    (Restricted.restrict (Cycles.of_string ~degree:6 "(2,3)") [ 0; 1 ] = None)

let test_restrict_prefix () =
  let p = Cycles.of_string ~degree:6 "(1,2)(5,6)" in
  checkb "prefix preserved" true (Restricted.preserves_prefix p 2);
  checkb "prefix not preserved" false
    (Restricted.preserves_prefix (Cycles.of_string ~degree:6 "(2,3)") 2);
  match Restricted.restrict_prefix p 4 with
  | Some r -> check Alcotest.int "degree" 4 (Perm.degree r)
  | None -> Alcotest.fail "expected restriction"

let test_restrict_errors () =
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Restricted.restrict: subset not sorted") (fun () ->
      ignore (Restricted.restrict (Perm.identity 5) [ 2; 1 ]))

let restricted_props =
  [
    qcheck_test "prefix agrees with general restrict" (perm_gen 9) (fun p ->
        let general = Restricted.restrict p [ 0; 1; 2; 3 ] in
        let prefix = Restricted.restrict_prefix p 4 in
        match (general, prefix) with
        | None, None -> true
        | Some a, Some b -> Perm.equal a b
        | _ -> false);
  ]

(* Closure *)

let test_closure_s3 () =
  let g = Closure.generate [ Perm.transposition 3 0 1; Perm.transposition 3 1 2 ] in
  check Alcotest.int "S3 size" 6 (Closure.size g);
  checkb "mem 3-cycle" true (Closure.mem g (Perm.of_array [| 1; 2; 0 |]))

let test_closure_klein () =
  let a = Cycles.of_string ~degree:4 "(1,2)(3,4)" in
  let b = Cycles.of_string ~degree:4 "(1,3)(2,4)" in
  let g = Closure.generate [ a; b ] in
  check Alcotest.int "Klein four-group" 4 (Closure.size g)

let test_closure_levels () =
  let g = Closure.generate [ Perm.transposition 3 0 1 ] in
  let by_len = List.sort compare (List.map snd (Closure.elements_by_length g)) in
  check (Alcotest.list Alcotest.int) "word lengths" [ 0; 1 ] by_len

let test_closure_limit () =
  checkb "limit raises" true
    (match Closure.generate ~limit:5 [ Perm.of_array [| 1; 2; 3; 4; 5; 6; 7; 0 |] ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_closure_subgroup () =
  let s3 = Closure.generate [ Perm.transposition 3 0 1; Perm.transposition 3 1 2 ] in
  let a3 = Closure.generate [ Perm.of_array [| 1; 2; 0 |] ] in
  checkb "A3 <= S3" true (Closure.is_subgroup_of a3 s3);
  checkb "S3 </= A3" false (Closure.is_subgroup_of s3 a3)

(* Schreier-Sims *)

let test_schreier_s8 () =
  let chain =
    Schreier.of_generators ~degree:8
      [ Perm.transposition 8 0 1; Perm.of_array [| 1; 2; 3; 4; 5; 6; 7; 0 |] ]
  in
  check Alcotest.int "S8 order" 40320 (Schreier.order chain);
  checkb "is symmetric" true (Schreier.is_symmetric_group chain)

let test_schreier_a5 () =
  let chain =
    Schreier.of_generators ~degree:5
      [ Cycles.of_string ~degree:5 "(1,2,3)"; Cycles.of_string ~degree:5 "(3,4,5)" ]
  in
  check Alcotest.int "A5 order" 60 (Schreier.order chain);
  checkb "odd perm not member" false (Schreier.mem chain (Perm.transposition 5 0 1));
  checkb "even perm member" true
    (Schreier.mem chain (Cycles.of_string ~degree:5 "(1,2)(3,4)"));
  checkb "sift member to None" true
    (Schreier.sift chain (Cycles.of_string ~degree:5 "(1,2,3)") = None)

let test_schreier_trivial () =
  let chain = Schreier.of_generators ~degree:5 [] in
  check Alcotest.int "trivial order" 1 (Schreier.order chain);
  checkb "only identity" true (Schreier.mem chain (Perm.identity 5));
  checkb "transposition not member" false (Schreier.mem chain (Perm.transposition 5 0 1))

let test_schreier_orbit_sizes () =
  let chain =
    Schreier.of_generators ~degree:4
      [ Perm.transposition 4 0 1; Perm.of_array [| 1; 2; 3; 0 |] ]
  in
  let product = List.fold_left ( * ) 1 (Schreier.orbit_sizes chain) in
  check Alcotest.int "orbit product = order" (Schreier.order chain) product;
  check Alcotest.int "S4" 24 (Schreier.order chain)

let schreier_props =
  let open QCheck2.Gen in
  let small_gens = list_size (int_range 1 3) (perm_gen 6) in
  [
    qcheck_test ~count:60 "order matches closure" small_gens (fun gens ->
        let chain = Schreier.of_generators ~degree:6 gens in
        let closure = Closure.generate gens in
        Schreier.order chain = Closure.size closure);
    qcheck_test ~count:60 "membership matches closure" (pair small_gens (perm_gen 6))
      (fun (gens, candidate) ->
        let chain = Schreier.of_generators ~degree:6 gens in
        let closure = Closure.generate gens in
        Schreier.mem chain candidate = Closure.mem closure candidate);
    qcheck_test ~count:60 "generators are members" small_gens (fun gens ->
        let chain = Schreier.of_generators ~degree:6 gens in
        List.for_all (Schreier.mem chain) gens);
    qcheck_test ~count:60 "products of generators are members" small_gens (fun gens ->
        let chain = Schreier.of_generators ~degree:6 gens in
        List.for_all
          (fun g -> List.for_all (fun h -> Schreier.mem chain (Perm.mul g h)) gens)
          gens);
  ]

(* Coset *)

let test_coset () =
  (* Cosets of the stabilizer of point 0 inside S3. *)
  let s3 = Closure.generate [ Perm.transposition 3 0 1; Perm.transposition 3 1 2 ] in
  let stab = Closure.generate [ Perm.transposition 3 1 2 ] in
  let reps =
    [ Perm.identity 3; Perm.of_array [| 1; 2; 0 |]; Perm.of_array [| 2; 0; 1 |] ]
  in
  let mem p = Closure.mem stab p in
  checkb "disjoint" true (Coset.disjoint ~reps ~mem);
  checkb "covers" true
    (Coset.covers ~reps ~subgroup_size:(Closure.size stab)
       ~group_size:(Closure.size s3));
  Closure.iter
    (fun g ->
      match Coset.decompose ~reps ~mem g with
      | Some (a, h) -> checkb "decomposition valid" true (Perm.equal g (Perm.mul a h))
      | None -> Alcotest.fail "every element decomposes")
    s3

let test_coset_failure () =
  let reps = [ Perm.identity 3; Perm.transposition 3 0 1 ] in
  (* With the full group as "subgroup" the cosets must intersect. *)
  checkb "not disjoint" false (Coset.disjoint ~reps ~mem:(fun _ -> true))

let () =
  Alcotest.run "permgroup"
    [
      ( "perm",
        [
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "product convention" `Quick test_product_convention;
          Alcotest.test_case "order" `Quick test_order;
          Alcotest.test_case "support and fixes" `Quick test_support_fixes;
          Alcotest.test_case "image and preserves" `Quick test_image_preserves;
          Alcotest.test_case "of_mapping" `Quick test_of_mapping;
          Alcotest.test_case "pad" `Quick test_pad;
          Alcotest.test_case "pp identity" `Quick test_pp_identity;
        ] );
      ("perm properties", perm_props);
      ( "cycles",
        [
          Alcotest.test_case "paper strings" `Quick test_cycles_paper_strings;
          Alcotest.test_case "identity" `Quick test_cycles_identity;
          Alcotest.test_case "errors" `Quick test_cycles_errors;
          Alcotest.test_case "to_cycles" `Quick test_to_cycles;
        ] );
      ("cycles properties", cycles_props);
      ( "restricted",
        [
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "restrict_prefix" `Quick test_restrict_prefix;
          Alcotest.test_case "errors" `Quick test_restrict_errors;
        ] );
      ("restricted properties", restricted_props);
      ( "closure",
        [
          Alcotest.test_case "S3" `Quick test_closure_s3;
          Alcotest.test_case "Klein group" `Quick test_closure_klein;
          Alcotest.test_case "word lengths" `Quick test_closure_levels;
          Alcotest.test_case "limit" `Quick test_closure_limit;
          Alcotest.test_case "subgroup" `Quick test_closure_subgroup;
        ] );
      ( "schreier",
        [
          Alcotest.test_case "S8" `Quick test_schreier_s8;
          Alcotest.test_case "A5" `Quick test_schreier_a5;
          Alcotest.test_case "trivial group" `Quick test_schreier_trivial;
          Alcotest.test_case "orbit sizes" `Quick test_schreier_orbit_sizes;
        ] );
      ("schreier properties", schreier_props);
      ( "coset",
        [
          Alcotest.test_case "S3 decomposition" `Quick test_coset;
          Alcotest.test_case "non-disjoint detected" `Quick test_coset_failure;
        ] );
    ]
