(* Tests for the Monte-Carlo sampler and Markov-chain analysis. *)

open Automata
open Qsim

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let prob = Alcotest.testable Prob.pp Prob.equal

let library3 = Synthesis.Library.make (Mvl.Encoding.make ~qubits:3)
let fixed_rng () = Random.State.make [| 123456 |]

(* Sampler *)

let test_measure_binary_pattern () =
  let rng = fixed_rng () in
  let p = Mvl.Pattern.of_binary_code ~qubits:3 6 in
  for _ = 1 to 50 do
    check Alcotest.int "binary measures to itself" 6 (Sampler.measure_pattern rng p)
  done

let test_measure_mixed_support () =
  let rng = fixed_rng () in
  let p = Mvl.Pattern.of_list [ Mvl.Quat.One; Mvl.Quat.V0; Mvl.Quat.Zero ] in
  for _ = 1 to 100 do
    let code = Sampler.measure_pattern rng p in
    checkb "support" true (code = 4 || code = 6)
  done

let test_empirical_coin () =
  let rng = fixed_rng () in
  let coin = Prob_circuit.controlled_coin library3 in
  let exact = Prob_circuit.output_distribution coin ~input:4 in
  let empirical =
    Sampler.empirical rng ~samples:20_000 ~outcomes:8 (fun state ->
        Sampler.run_circuit state coin ~input:4)
  in
  checkb "close to exact" true (Sampler.total_variation empirical exact < 0.02)

let test_trajectory_shape () =
  let rng = fixed_rng () in
  let machine =
    Qfsm.make
      ~circuit:
        (Prob_circuit.of_cascade library3
           (Synthesis.Cascade.of_string ~qubits:3 "VCA*VAB"))
      ~state_wires:[ 0 ] ~input_wires:[ 1 ] ~obs_wires:[ 2 ]
  in
  let steps = Sampler.trajectory rng machine ~inputs:[ 0; 1; 0 ] ~init:1 in
  check Alcotest.int "one entry per clock" 3 (List.length steps);
  (* With input 0 the state is deterministic: starting at 1 it stays 1. *)
  match steps with
  | (s1, _) :: _ -> check Alcotest.int "first step keeps state" 1 s1
  | [] -> Alcotest.fail "non-empty"

let test_trajectory_deterministic_machine () =
  let rng = fixed_rng () in
  (* A purely classical machine: state flips each clock (F with constant
     1?) — use the CNOT from an input wire held at 1. *)
  let machine =
    Qfsm.make
      ~circuit:
        (Prob_circuit.of_cascade library3 (Synthesis.Cascade.of_string ~qubits:3 "FAB"))
      ~state_wires:[ 0 ] ~input_wires:[ 1 ] ~obs_wires:[ 0 ]
  in
  let steps = Sampler.trajectory rng machine ~inputs:[ 1; 1; 1; 1 ] ~init:0 in
  check (Alcotest.list Alcotest.int) "alternating state" [ 1; 0; 1; 0 ]
    (List.map fst steps);
  check (Alcotest.list Alcotest.int) "observation tracks the state wire" [ 1; 0; 1; 0 ]
    (List.map snd steps)

let test_empirical_validation () =
  Alcotest.check_raises "samples > 0"
    (Invalid_argument "Sampler.empirical: samples must be positive") (fun () ->
      ignore (Sampler.empirical (fixed_rng ()) ~samples:0 ~outcomes:2 (fun _ -> 0)));
  Alcotest.check_raises "tv arity"
    (Invalid_argument "Sampler.total_variation: length mismatch") (fun () ->
      ignore (Sampler.total_variation [| 1.0 |] [| Prob.one; Prob.zero |]))

(* Markov *)

let test_entropy () =
  check (Alcotest.float 1e-9) "uniform pair" 1.0 (Markov.entropy [| Prob.half; Prob.half |]);
  check (Alcotest.float 1e-9) "deterministic" 0.0 (Markov.entropy [| Prob.one; Prob.zero |]);
  check (Alcotest.float 1e-9) "uniform four" 2.0
    (Markov.entropy [| Prob.make 1 2; Prob.make 1 2; Prob.make 1 2; Prob.make 1 2 |]);
  check (Alcotest.float 1e-9) "float version" 1.0 (Markov.entropy_float [| 0.5; 0.5; 0.0 |])

let test_stochastic_and_step () =
  let matrix = [| [| Prob.half; Prob.half |]; [| Prob.one; Prob.zero |] |] in
  checkb "stochastic" true (Markov.is_stochastic matrix);
  let bad = [| [| Prob.half; Prob.half |]; [| Prob.half; Prob.zero |] |] in
  checkb "non-stochastic" false (Markov.is_stochastic bad);
  let dist = Markov.step matrix [| Prob.one; Prob.zero |] in
  check prob "step" Prob.half dist.(0);
  let dist2 = Markov.power matrix 2 [| Prob.one; Prob.zero |] in
  (* from state 0: 1/2 (stay then split) ... compute: after 1: (1/2,1/2);
     after 2: (1/2*1/2 + 1/2*1, 1/2*1/2) = (3/4, 1/4) *)
  check prob "power" (Prob.make 3 2) dist2.(0);
  check prob "power" (Prob.make 1 2) dist2.(1)

let test_entropy_rate () =
  (* Fair-coin chain: every row uniform -> rate 1 bit/step. *)
  let matrix = [| [| Prob.half; Prob.half |]; [| Prob.half; Prob.half |] |] in
  check (Alcotest.float 1e-9) "coin chain" 1.0
    (Markov.entropy_rate ~stationary:[| 0.5; 0.5 |] matrix);
  (* Deterministic cycle: rate 0. *)
  let cycle = [| [| Prob.zero; Prob.one |]; [| Prob.one; Prob.zero |] |] in
  check (Alcotest.float 1e-9) "cycle" 0.0
    (Markov.entropy_rate ~stationary:[| 0.5; 0.5 |] cycle)

let test_machine_round_trip () =
  (* Exact chain from a machine matches sampled behaviour in law. *)
  let machine =
    Qfsm.make
      ~circuit:
        (Prob_circuit.of_cascade library3
           (Synthesis.Cascade.of_string ~qubits:3 "VCA*VAB"))
      ~state_wires:[ 0 ] ~input_wires:[ 1 ] ~obs_wires:[ 2 ]
  in
  let matrix = Qfsm.transition_matrix machine ~input:1 in
  checkb "stochastic" true (Markov.is_stochastic matrix);
  let exact = Markov.power matrix 4 [| Prob.one; Prob.zero |] in
  let empirical =
    Sampler.empirical (fixed_rng ()) ~samples:20_000 ~outcomes:2 (fun state ->
        match List.rev (Sampler.trajectory state machine ~inputs:[ 1; 1; 1; 1 ] ~init:0) with
        | (final, _) :: _ -> final
        | [] -> 0)
  in
  checkb "law agreement" true (Sampler.total_variation empirical exact < 0.02)

let () =
  Alcotest.run "sampling"
    [
      ( "sampler",
        [
          Alcotest.test_case "binary pattern" `Quick test_measure_binary_pattern;
          Alcotest.test_case "mixed support" `Quick test_measure_mixed_support;
          Alcotest.test_case "empirical coin" `Quick test_empirical_coin;
          Alcotest.test_case "trajectory shape" `Quick test_trajectory_shape;
          Alcotest.test_case "deterministic machine" `Quick
            test_trajectory_deterministic_machine;
          Alcotest.test_case "validation" `Quick test_empirical_validation;
        ] );
      ( "markov",
        [
          Alcotest.test_case "entropy" `Quick test_entropy;
          Alcotest.test_case "stochastic and step" `Quick test_stochastic_and_step;
          Alcotest.test_case "entropy rate" `Quick test_entropy_rate;
          Alcotest.test_case "machine round trip" `Quick test_machine_round_trip;
        ] );
    ]
