(* Tests for the multiple-valued logic substrate: quaternary values,
   patterns, the paper's label encoding and truth tables. *)

open Mvl

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let quat = Alcotest.testable Quat.pp Quat.equal
let pattern = Alcotest.testable Pattern.pp Pattern.equal
let perm = Alcotest.testable Permgroup.Perm.pp Permgroup.Perm.equal

let qcheck_test ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let quat_gen = QCheck2.Gen.(map Quat.of_int (int_range 0 3))

(* Quat *)

let test_v_cycle () =
  (* V: 0 -> V0 -> 1 -> V1 -> 0, the square root of NOT on signal values. *)
  check quat "v 0" Quat.V0 (Quat.v Quat.Zero);
  check quat "v V0" Quat.One (Quat.v Quat.V0);
  check quat "v 1" Quat.V1 (Quat.v Quat.One);
  check quat "v V1" Quat.Zero (Quat.v Quat.V1)

let test_v_squared_is_not () =
  List.iter
    (fun value ->
      if Quat.is_binary value then
        check quat "v(v(x)) = not x" (Quat.not_ value) (Quat.v (Quat.v value)))
    Quat.all

let test_not_errors () =
  Alcotest.check_raises "not of V0"
    (Invalid_argument "Quat.not_: mixed value on a NOT input") (fun () ->
      ignore (Quat.not_ Quat.V0))

let test_quat_conversions () =
  List.iter
    (fun value ->
      check quat "int roundtrip" value (Quat.of_int (Quat.to_int value));
      check quat "string roundtrip" value (Quat.of_string (Quat.to_string value)))
    Quat.all;
  check quat "of_bool true" Quat.One (Quat.of_bool true);
  Alcotest.check_raises "of_int range" (Invalid_argument "Quat.of_int: out of range")
    (fun () -> ignore (Quat.of_int 4))

let test_state_vectors () =
  (* The quaternary values denote exact quantum states; check V0 = V|0>
     against the matrix substrate. *)
  let v0_vec = Quat.to_state_vector Quat.V0 in
  let expected =
    Qmath.Dmatrix.apply Qmath.Gate_matrix.v (Quat.to_state_vector Quat.Zero)
  in
  checkb "V0 = V|0>" true (Array.for_all2 Qmath.Dyadic.equal v0_vec expected);
  let v1_vec = Quat.to_state_vector Quat.V1 in
  let expected1 =
    Qmath.Dmatrix.apply Qmath.Gate_matrix.v (Quat.to_state_vector Quat.One)
  in
  checkb "V1 = V|1>" true (Array.for_all2 Qmath.Dyadic.equal v1_vec expected1)

let test_v0_equals_vdag1 () =
  (* The paper's collapse of six values to four: V0 = V+|1>, V1 = V+|0>. *)
  let vdag1 =
    Qmath.Dmatrix.apply Qmath.Gate_matrix.v_dag (Quat.to_state_vector Quat.One)
  in
  checkb "V0 = V+|1>" true
    (Array.for_all2 Qmath.Dyadic.equal (Quat.to_state_vector Quat.V0) vdag1);
  let vdag0 =
    Qmath.Dmatrix.apply Qmath.Gate_matrix.v_dag (Quat.to_state_vector Quat.Zero)
  in
  checkb "V1 = V+|0>" true
    (Array.for_all2 Qmath.Dyadic.equal (Quat.to_state_vector Quat.V1) vdag0)

let test_measure_probability () =
  check (Alcotest.pair Alcotest.int Alcotest.int) "P(1|V0) = 1/2" (1, 1)
    (Quat.measure_one_probability Quat.V0);
  check (Alcotest.pair Alcotest.int Alcotest.int) "P(1|1) = 1" (1, 0)
    (Quat.measure_one_probability Quat.One)

let quat_props =
  [
    qcheck_test "v_dag inverts v" quat_gen (fun x -> Quat.equal x (Quat.v_dag (Quat.v x)));
    qcheck_test "v inverts v_dag" quat_gen (fun x -> Quat.equal x (Quat.v (Quat.v_dag x)));
    qcheck_test "v has order 4" quat_gen (fun x ->
        Quat.equal x (Quat.v (Quat.v (Quat.v (Quat.v x)))));
    qcheck_test "state vectors normalized" quat_gen (fun x ->
        let vec = Quat.to_state_vector x in
        let total =
          Array.fold_left
            (fun acc a -> Qsim.Prob.add acc (Qsim.Prob.of_norm_sq (Qmath.Dyadic.norm_sq a)))
            Qsim.Prob.zero vec
        in
        Qsim.Prob.equal total Qsim.Prob.one);
  ]

(* Pattern *)

let test_binary_codes () =
  let p = Pattern.of_binary_code ~qubits:3 5 in
  check pattern "101" (Pattern.of_list [ Quat.One; Quat.Zero; Quat.One ]) p;
  check (Alcotest.option Alcotest.int) "roundtrip" (Some 5) (Pattern.to_binary_code p);
  check (Alcotest.option Alcotest.int) "mixed has no code" None
    (Pattern.to_binary_code (Pattern.of_list [ Quat.V0; Quat.Zero ]));
  Alcotest.check_raises "range" (Invalid_argument "Pattern.of_binary_code: out of range")
    (fun () -> ignore (Pattern.of_binary_code ~qubits:2 4))

let test_pattern_predicates () =
  let p = Pattern.of_list [ Quat.One; Quat.V0; Quat.Zero ] in
  checkb "not binary" false (Pattern.is_binary p);
  checkb "has one" true (Pattern.has_one p);
  checkb "mixed at 1" true (Pattern.is_mixed_at p 1);
  checkb "not mixed at 0" false (Pattern.is_mixed_at p 0);
  check Alcotest.int "signature" 2 (Pattern.mixed_signature p)

let test_pattern_set_pure () =
  let p = Pattern.of_list [ Quat.Zero; Quat.Zero ] in
  let q = Pattern.set p 0 Quat.One in
  checkb "original untouched" true (Quat.equal (Pattern.get p 0) Quat.Zero);
  checkb "updated" true (Quat.equal (Pattern.get q 0) Quat.One)

let test_pattern_all () =
  let all2 = Pattern.all ~qubits:2 in
  check Alcotest.int "4^2 patterns" 16 (List.length all2);
  (* sorted and first is 00 *)
  check pattern "first" (Pattern.of_list [ Quat.Zero; Quat.Zero ]) (List.hd all2);
  let rec sorted = function
    | a :: (b :: _ as rest) -> Pattern.compare a b < 0 && sorted rest
    | _ -> true
  in
  checkb "sorted" true (sorted all2)

(* Encoding *)

let test_encoding_one_qubit () =
  (* Degenerate width: only the patterns 0 and 1 are permutable (mixed
     one-wire patterns carry no One), and there are no 2-qubit gates. *)
  let e = Encoding.make ~qubits:1 in
  check Alcotest.int "two points" 2 (Encoding.size e);
  check Alcotest.int "no gates" 0
    (List.length (Synthesis.Gate.all ~qubits:1))

let test_encoding_sizes () =
  check Alcotest.int "n=2: 16-9+1" 8 (Encoding.size (Encoding.make ~qubits:2));
  check Alcotest.int "n=3: 64-27+1" 38 (Encoding.size (Encoding.make ~qubits:3));
  check Alcotest.int "n=4: 256-81+1" 176 (Encoding.size (Encoding.make ~qubits:4))

let test_encoding_binary_block () =
  let e = Encoding.make ~qubits:3 in
  for code = 0 to 7 do
    check (Alcotest.option Alcotest.int) "binary point is its code" (Some code)
      (Pattern.to_binary_code (Encoding.pattern e code))
  done

let test_encoding_excluded () =
  let e = Encoding.make ~qubits:3 in
  (* a pattern with V but no One is outside the permutable domain *)
  check (Alcotest.option Alcotest.int) "excluded" None
    (Encoding.point_of_pattern e (Pattern.of_list [ Quat.Zero; Quat.V0; Quat.Zero ]));
  (* but the all-zero pattern is point 0 *)
  check (Alcotest.option Alcotest.int) "all-zero kept" (Some 0)
    (Encoding.point_of_pattern e (Pattern.of_binary_code ~qubits:3 0))

let test_encoding_banned_sets () =
  (* The paper's banned sets, verbatim (1-based). *)
  let e = Encoding.make ~qubits:3 in
  let banned wire = List.map (fun p -> p + 1) (Encoding.banned_points e ~wire) in
  check (Alcotest.list Alcotest.int) "N_A"
    [ 25; 26; 27; 28; 29; 30; 31; 32; 33; 34; 35; 36; 37; 38 ]
    (banned 0);
  check (Alcotest.list Alcotest.int) "N_B"
    [ 11; 12; 17; 18; 19; 20; 21; 22; 23; 24; 30; 31; 37; 38 ]
    (banned 1);
  check (Alcotest.list Alcotest.int) "N_C"
    [ 9; 10; 13; 14; 15; 16; 19; 20; 23; 24; 28; 29; 35; 36 ]
    (banned 2)

let test_encoding_paper_perms () =
  (* The three permutations the paper prints in Section 3. *)
  let e = Encoding.make ~qubits:3 in
  let apply_gate kind target control p =
    match kind with
    | `V ->
        if Quat.equal (Pattern.get p control) Quat.One then
          Pattern.set p target (Quat.v (Pattern.get p target))
        else p
    | `Vdag ->
        if Quat.equal (Pattern.get p control) Quat.One then
          Pattern.set p target (Quat.v_dag (Pattern.get p target))
        else p
    | `F ->
        if
          Quat.equal (Pattern.get p control) Quat.One
          && Quat.is_binary (Pattern.get p target)
        then Pattern.set p target (Quat.not_ (Pattern.get p target))
        else p
  in
  let expect s kind target control =
    check perm s
      (Permgroup.Cycles.of_string ~degree:38 s)
      (Encoding.perm_of_action e (apply_gate kind target control))
  in
  expect "(5,17,7,21)(6,18,8,22)(13,19,15,23)(14,20,16,24)" `V 1 0;
  expect "(3,33,7,26)(4,34,8,27)(9,35,15,28)(10,36,16,29)" `Vdag 0 1;
  expect "(5,6)(7,8)(17,18)(21,22)" `F 2 0

let test_encoding_action_error () =
  let e = Encoding.make ~qubits:2 in
  Alcotest.check_raises "leaves domain"
    (Invalid_argument "Encoding.perm_of_action: image leaves the domain") (fun () ->
      ignore
        (Encoding.perm_of_action e (fun _ ->
             Pattern.of_list [ Quat.V0; Quat.Zero ])))

let encoding_props =
  let e3 = Encoding.make ~qubits:3 in
  [
    qcheck_test "point_of_pattern inverts pattern" QCheck2.Gen.(int_range 0 37)
      (fun point ->
        Encoding.point_of_pattern e3 (Encoding.pattern e3 point) = Some point);
    qcheck_test "signature matches pattern" QCheck2.Gen.(int_range 0 37) (fun point ->
        Encoding.mixed_signature e3 point
        = Pattern.mixed_signature (Encoding.pattern e3 point));
    qcheck_test "domain patterns have a One or are zero" QCheck2.Gen.(int_range 0 37)
      (fun point ->
        let p = Encoding.pattern e3 point in
        Pattern.has_one p || Pattern.to_binary_code p = Some 0);
  ]

(* Truth tables *)

let test_table1_order () =
  check Alcotest.int "16 rows" 16 (List.length Truth_table.table1_order);
  check pattern "row 5 is 0,V0"
    (Pattern.of_list [ Quat.Zero; Quat.V0 ])
    (List.nth Truth_table.table1_order 4);
  check pattern "row 9 is V0,0"
    (Pattern.of_list [ Quat.V0; Quat.Zero ])
    (List.nth Truth_table.table1_order 8)

let test_table1_ctrl_v () =
  (* Rebuild Table 1 and read off the paper's permutation (3,7,4,8). *)
  let ctrl_v p =
    if Quat.equal (Pattern.get p 0) Quat.One then
      Pattern.set p 1 (Quat.v (Pattern.get p 1))
    else p
  in
  let rows = Truth_table.labeled_rows ~order:Truth_table.table1_order ctrl_v in
  let img = Array.make 16 0 in
  List.iter (fun (li, _, _, lo) -> img.(li - 1) <- lo - 1) rows;
  check perm "(3,7,4,8)"
    (Permgroup.Cycles.of_string ~degree:16 "(3,7,4,8)")
    (Permgroup.Perm.of_array img)

let test_full_table () =
  let table = Truth_table.full_table ~qubits:2 (fun p -> p) in
  check Alcotest.int "16 rows" 16 (List.length table);
  checkb "identity rows" true (List.for_all (fun (a, b) -> Pattern.equal a b) table)

let test_labeled_rows_error () =
  (* An action leaving the row order cannot be labeled. *)
  Alcotest.check_raises "output missing"
    (Invalid_argument "Truth_table.labeled_rows: output pattern not in order")
    (fun () ->
      ignore
        (Truth_table.labeled_rows
           ~order:[ Pattern.of_list [ Quat.Zero ] ]
           (fun _ -> Pattern.of_list [ Quat.One ])))

let () =
  Alcotest.run "mvl"
    [
      ( "quat",
        [
          Alcotest.test_case "V cycle" `Quick test_v_cycle;
          Alcotest.test_case "V squared is NOT" `Quick test_v_squared_is_not;
          Alcotest.test_case "NOT rejects mixed" `Quick test_not_errors;
          Alcotest.test_case "conversions" `Quick test_quat_conversions;
          Alcotest.test_case "state vectors" `Quick test_state_vectors;
          Alcotest.test_case "V0 = V+|1>" `Quick test_v0_equals_vdag1;
          Alcotest.test_case "measurement" `Quick test_measure_probability;
        ] );
      ("quat properties", quat_props);
      ( "pattern",
        [
          Alcotest.test_case "binary codes" `Quick test_binary_codes;
          Alcotest.test_case "predicates" `Quick test_pattern_predicates;
          Alcotest.test_case "set is pure" `Quick test_pattern_set_pure;
          Alcotest.test_case "all" `Quick test_pattern_all;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "sizes" `Quick test_encoding_sizes;
          Alcotest.test_case "one qubit" `Quick test_encoding_one_qubit;
          Alcotest.test_case "binary block" `Quick test_encoding_binary_block;
          Alcotest.test_case "excluded patterns" `Quick test_encoding_excluded;
          Alcotest.test_case "paper banned sets" `Quick test_encoding_banned_sets;
          Alcotest.test_case "paper permutations" `Quick test_encoding_paper_perms;
          Alcotest.test_case "action error" `Quick test_encoding_action_error;
        ] );
      ("encoding properties", encoding_props);
      ( "truth_table",
        [
          Alcotest.test_case "table1 order" `Quick test_table1_order;
          Alcotest.test_case "table1 ctrl-V" `Quick test_table1_ctrl_v;
          Alcotest.test_case "full table" `Quick test_full_table;
          Alcotest.test_case "labeled rows error" `Quick test_labeled_rows_error;
        ] );
    ]
