(* Tests for the qmath substrate: exact Gaussian-dyadic arithmetic, float
   complex numbers, matrices and gate builders. *)

open Qmath

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

let dyadic = Alcotest.testable Dyadic.pp Dyadic.equal
let dmatrix = Alcotest.testable Dmatrix.pp Dmatrix.equal

(* A generator of arbitrary dyadic values with small components. *)
let dyadic_gen =
  QCheck2.Gen.(
    map3 (fun re im exp -> Dyadic.make ~re ~im ~exp) (int_range (-64) 64)
      (int_range (-64) 64) (int_range 0 6))

let qcheck_test ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* Dyadic unit tests *)

let test_constants () =
  check dyadic "zero" (Dyadic.make ~re:0 ~im:0 ~exp:5) Dyadic.zero;
  check dyadic "one" (Dyadic.of_int 1) Dyadic.one;
  check dyadic "i squared" (Dyadic.mul Dyadic.i Dyadic.i) Dyadic.minus_one

let test_normalization () =
  (* 4/2^2 normalizes to 1 *)
  check dyadic "4/4 = 1" (Dyadic.make ~re:4 ~im:0 ~exp:2) Dyadic.one;
  check Alcotest.int "exp reduced" 0 (Dyadic.exp (Dyadic.make ~re:2 ~im:2 ~exp:1));
  check Alcotest.int "odd keeps exp" 3 (Dyadic.exp (Dyadic.make ~re:1 ~im:2 ~exp:3))

let test_v_entry_arithmetic () =
  (* ((1+i)/2)^2 = i/2 and ((1+i)/2)((1-i)/2) = 1/2: the identities behind
     V*V = NOT and V*V+ = I. *)
  let a = Dyadic.half_one_plus_i and b = Dyadic.half_one_minus_i in
  check dyadic "a*a" (Dyadic.make ~re:0 ~im:1 ~exp:1) (Dyadic.mul a a);
  check dyadic "a*b" (Dyadic.make ~re:1 ~im:0 ~exp:1) (Dyadic.mul a b);
  check dyadic "a+b" Dyadic.one (Dyadic.add a b);
  check dyadic "conj a = b" b (Dyadic.conj a)

let test_norm_sq () =
  check (Alcotest.pair Alcotest.int Alcotest.int) "norm of (1+i)/2" (1, 1)
    (Dyadic.norm_sq Dyadic.half_one_plus_i);
  check (Alcotest.pair Alcotest.int Alcotest.int) "norm of 1" (1, 0)
    (Dyadic.norm_sq Dyadic.one);
  check (Alcotest.pair Alcotest.int Alcotest.int) "norm of 0" (0, 0)
    (Dyadic.norm_sq Dyadic.zero)

let test_div2_mul_int () =
  check dyadic "div2 of 1" (Dyadic.make ~re:1 ~im:0 ~exp:1) (Dyadic.div2 Dyadic.one);
  check dyadic "mul_int" (Dyadic.of_int 6) (Dyadic.mul_int (Dyadic.of_int 3) 2);
  check dyadic "mul_int renormalizes" Dyadic.one
    (Dyadic.mul_int (Dyadic.make ~re:1 ~im:0 ~exp:1) 2)

let test_errors () =
  Alcotest.check_raises "negative exponent" (Invalid_argument "Dyadic.make: negative exponent")
    (fun () -> ignore (Dyadic.make ~re:1 ~im:0 ~exp:(-1)));
  checkb "overflow guard" true
    (match Dyadic.mul_int (Dyadic.of_int (1 lsl 59)) 4 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_pp () =
  check Alcotest.string "pp one" "1" (Dyadic.to_string Dyadic.one);
  check Alcotest.string "pp zero" "0" (Dyadic.to_string Dyadic.zero);
  check Alcotest.string "pp half(1+i)" "(1+1i)/2^1" (Dyadic.to_string Dyadic.half_one_plus_i)

(* Dyadic properties *)

let prop_tests =
  let open QCheck2.Gen in
  [
    qcheck_test "add commutative" (pair dyadic_gen dyadic_gen) (fun (a, b) ->
        Dyadic.equal (Dyadic.add a b) (Dyadic.add b a));
    qcheck_test "add associative" (triple dyadic_gen dyadic_gen dyadic_gen)
      (fun (a, b, c) ->
        Dyadic.equal (Dyadic.add (Dyadic.add a b) c) (Dyadic.add a (Dyadic.add b c)));
    qcheck_test "mul commutative" (pair dyadic_gen dyadic_gen) (fun (a, b) ->
        Dyadic.equal (Dyadic.mul a b) (Dyadic.mul b a));
    qcheck_test "mul associative" (triple dyadic_gen dyadic_gen dyadic_gen)
      (fun (a, b, c) ->
        Dyadic.equal (Dyadic.mul (Dyadic.mul a b) c) (Dyadic.mul a (Dyadic.mul b c)));
    qcheck_test "distributivity" (triple dyadic_gen dyadic_gen dyadic_gen)
      (fun (a, b, c) ->
        Dyadic.equal (Dyadic.mul a (Dyadic.add b c))
          (Dyadic.add (Dyadic.mul a b) (Dyadic.mul a c)));
    qcheck_test "sub self is zero" dyadic_gen (fun a ->
        Dyadic.is_zero (Dyadic.sub a a));
    qcheck_test "neg involutive" dyadic_gen (fun a ->
        Dyadic.equal a (Dyadic.neg (Dyadic.neg a)));
    qcheck_test "conj involutive" dyadic_gen (fun a ->
        Dyadic.equal a (Dyadic.conj (Dyadic.conj a)));
    qcheck_test "conj multiplicative" (pair dyadic_gen dyadic_gen) (fun (a, b) ->
        Dyadic.equal (Dyadic.conj (Dyadic.mul a b))
          (Dyadic.mul (Dyadic.conj a) (Dyadic.conj b)));
    qcheck_test "norm_sq = a * conj a" dyadic_gen (fun a ->
        let n, e = Dyadic.norm_sq a in
        Dyadic.equal (Dyadic.make ~re:n ~im:0 ~exp:e) (Dyadic.mul a (Dyadic.conj a)));
    qcheck_test "compare total order reflexive" dyadic_gen (fun a ->
        Dyadic.compare a a = 0);
    qcheck_test "float conversion matches" (pair dyadic_gen dyadic_gen) (fun (a, b) ->
        let open Cfloat in
        approx_equal
          (of_dyadic (Dyadic.mul a b))
          (mul (of_dyadic a) (of_dyadic b)));
    qcheck_test "float addition matches" (pair dyadic_gen dyadic_gen) (fun (a, b) ->
        Cfloat.approx_equal
          (Cfloat.of_dyadic (Dyadic.add a b))
          (Cfloat.add (Cfloat.of_dyadic a) (Cfloat.of_dyadic b)));
  ]

(* Cfloat *)

let test_cfloat_basics () =
  let open Cfloat in
  checkb "i*i = -1" true (approx_equal (mul i i) (of_float (-1.0)));
  checkb "conj" true (approx_equal (conj (make 1.0 2.0)) (make 1.0 (-2.0)));
  check (Alcotest.float 1e-12) "norm_sq" 5.0 (norm_sq (make 1.0 2.0));
  checkb "scale" true (approx_equal (scale 2.0 (make 1.0 1.0)) (make 2.0 2.0));
  checkb "sub" true (approx_equal (sub (make 3.0 1.0) (make 1.0 1.0)) (make 2.0 0.0));
  checkb "neg" true (approx_equal (neg one) (of_float (-1.0)))

(* Dmatrix *)

let test_matrix_identities () =
  checkb "V unitary" true (Dmatrix.is_unitary Gate_matrix.v);
  checkb "V+ unitary" true (Dmatrix.is_unitary Gate_matrix.v_dag);
  check dmatrix "V*V = NOT" Gate_matrix.not_gate (Dmatrix.mul Gate_matrix.v Gate_matrix.v);
  check dmatrix "V+*V+ = NOT" Gate_matrix.not_gate
    (Dmatrix.mul Gate_matrix.v_dag Gate_matrix.v_dag);
  checkb "V*V+ = I" true (Dmatrix.is_identity (Dmatrix.mul Gate_matrix.v Gate_matrix.v_dag));
  check dmatrix "V+ is adjoint of V" Gate_matrix.v_dag (Dmatrix.adjoint Gate_matrix.v)

let test_matrix_algebra () =
  let a = Dmatrix.of_rows [ [ Dyadic.one; Dyadic.i ]; [ Dyadic.zero; Dyadic.one ] ] in
  check dmatrix "add sub" a (Dmatrix.sub (Dmatrix.add a a) a);
  check dmatrix "identity neutral" a (Dmatrix.mul a (Dmatrix.identity 2));
  check dmatrix "scale by one" a (Dmatrix.scale Dyadic.one a);
  checkb "zero matrix" true
    (Dmatrix.equal (Dmatrix.zero 2 2) (Dmatrix.sub a a));
  check Alcotest.int "kron dims" 4 (Dmatrix.rows (Dmatrix.kron a a))

let test_kron_mixed_product () =
  (* (A kron B)(C kron D) = AC kron BD *)
  let a = Gate_matrix.v and b = Gate_matrix.not_gate in
  let c = Gate_matrix.v_dag and d = Gate_matrix.v in
  check dmatrix "mixed product"
    (Dmatrix.kron (Dmatrix.mul a c) (Dmatrix.mul b d))
    (Dmatrix.mul (Dmatrix.kron a b) (Dmatrix.kron c d))

let test_permutation_matrix () =
  let p = [| 2; 0; 1 |] in
  let m = Dmatrix.permutation_matrix p in
  checkb "unitary" true (Dmatrix.is_unitary m);
  (match Dmatrix.is_permutation m with
  | Some q -> check (Alcotest.array Alcotest.int) "roundtrip" p q
  | None -> Alcotest.fail "expected a permutation");
  checkb "V is not a permutation" true (Dmatrix.is_permutation Gate_matrix.v = None);
  Alcotest.check_raises "invalid permutation"
    (Invalid_argument "Dmatrix.permutation_matrix: not a permutation") (fun () ->
      ignore (Dmatrix.permutation_matrix [| 0; 0 |]))

let test_apply () =
  let v0 = Dmatrix.apply Gate_matrix.v [| Dyadic.one; Dyadic.zero |] in
  check dyadic "V|0> first" Dyadic.half_one_plus_i v0.(0);
  check dyadic "V|0> second" Dyadic.half_one_minus_i v0.(1)

let test_rank () =
  check Alcotest.int "identity" 4 (Dmatrix.rank (Dmatrix.identity 4));
  check Alcotest.int "V full rank" 2 (Dmatrix.rank Gate_matrix.v);
  check Alcotest.int "zero" 0 (Dmatrix.rank (Dmatrix.zero 3 3));
  (* rank-1 outer product: all rows proportional *)
  let v = [| Dyadic.one; Dyadic.half_one_plus_i; Dyadic.i |] in
  let outer = Dmatrix.make 3 3 (fun r c -> Dyadic.mul v.(r) v.(c)) in
  check Alcotest.int "outer product" 1 (Dmatrix.rank outer);
  (* rectangular *)
  let rect =
    Dmatrix.of_rows
      [ [ Dyadic.one; Dyadic.zero; Dyadic.one ]; [ Dyadic.one; Dyadic.zero; Dyadic.one ] ]
  in
  check Alcotest.int "rectangular" 1 (Dmatrix.rank rect)

let rank_props =
  [
    qcheck_test ~count:60 "unitary gates have full rank" QCheck2.Gen.int (fun seed ->
        let state = Random.State.make [| seed |] in
        let pick () =
          match Random.State.int state 3 with
          | 0 -> Gate_matrix.v
          | 1 -> Gate_matrix.v_dag
          | _ -> Gate_matrix.not_gate
        in
        let m = Dmatrix.mul (pick ()) (Dmatrix.mul (pick ()) (pick ())) in
        Dmatrix.rank m = 2);
    qcheck_test ~count:60 "kron multiplies ranks for rank-1 factors" dyadic_gen
      (fun a ->
        let row = Dmatrix.of_rows [ [ a; Dyadic.one ] ] in
        Dmatrix.rank (Dmatrix.kron row row) = 1);
  ]

let test_of_rows_errors () =
  Alcotest.check_raises "ragged" (Invalid_argument "Dmatrix.of_rows: ragged or empty rows")
    (fun () -> ignore (Dmatrix.of_rows [ [ Dyadic.one ]; [] ]));
  Alcotest.check_raises "empty" (Invalid_argument "Dmatrix.of_rows: empty matrix")
    (fun () -> ignore (Dmatrix.of_rows []))

(* Gate_matrix *)

let test_controlled_v_2q () =
  (* Matches the paper's V0/V1 columns: C-V|10> = |1> (x) V|0>. *)
  let cv = Gate_matrix.controlled_v ~qubits:2 ~control:0 ~target:1 in
  checkb "unitary" true (Dmatrix.is_unitary cv);
  let state = Array.init 4 (fun i -> if i = 2 then Dyadic.one else Dyadic.zero) in
  let out = Dmatrix.apply cv state in
  check dyadic "amp |10>" Dyadic.half_one_plus_i out.(2);
  check dyadic "amp |11>" Dyadic.half_one_minus_i out.(3);
  check dyadic "amp |00>" Dyadic.zero out.(0)

let test_controlled_no_fire () =
  let cv = Gate_matrix.controlled_v ~qubits:2 ~control:0 ~target:1 in
  let state = Array.init 4 (fun i -> if i = 1 then Dyadic.one else Dyadic.zero) in
  let out = Dmatrix.apply cv state in
  check dyadic "control 0 passes through" Dyadic.one out.(1)

let test_feynman_matrix () =
  let f = Gate_matrix.feynman ~qubits:2 ~control:0 ~target:1 in
  match Dmatrix.is_permutation f with
  | Some p -> check (Alcotest.array Alcotest.int) "cnot codes" [| 0; 1; 3; 2 |] p
  | None -> Alcotest.fail "feynman must be a permutation"

let test_not_on () =
  let m = Gate_matrix.not_on ~qubits:3 ~wire:0 in
  match Dmatrix.is_permutation m with
  | Some p ->
      check (Alcotest.array Alcotest.int) "xor msb" [| 4; 5; 6; 7; 0; 1; 2; 3 |] p
  | None -> Alcotest.fail "not_on must be a permutation"

let test_gate_matrix_errors () =
  Alcotest.check_raises "control = target"
    (Invalid_argument "Gate_matrix.controlled: control = target") (fun () ->
      ignore (Gate_matrix.controlled ~qubits:2 ~control:1 ~target:1 Gate_matrix.v));
  Alcotest.check_raises "wire range"
    (Invalid_argument "Gate_matrix.single: wire out of range") (fun () ->
      ignore (Gate_matrix.single ~qubits:2 ~wire:5 Gate_matrix.v))

let test_all_library_gates_unitary () =
  List.iter
    (fun build ->
      List.iter
        (fun (control, target) ->
          checkb "unitary" true
            (Dmatrix.is_unitary (build ~qubits:3 ~control ~target)))
        [ (0, 1); (1, 0); (0, 2); (2, 0); (1, 2); (2, 1) ])
    [ Gate_matrix.controlled_v; Gate_matrix.controlled_v_dag; Gate_matrix.feynman ]

let () =
  Alcotest.run "qmath"
    [
      ( "dyadic",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "normalization" `Quick test_normalization;
          Alcotest.test_case "V entries" `Quick test_v_entry_arithmetic;
          Alcotest.test_case "norm_sq" `Quick test_norm_sq;
          Alcotest.test_case "div2 and mul_int" `Quick test_div2_mul_int;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "printing" `Quick test_pp;
        ] );
      ("dyadic properties", prop_tests);
      ("cfloat", [ Alcotest.test_case "basics" `Quick test_cfloat_basics ]);
      ( "dmatrix",
        [
          Alcotest.test_case "V identities" `Quick test_matrix_identities;
          Alcotest.test_case "algebra" `Quick test_matrix_algebra;
          Alcotest.test_case "kron mixed product" `Quick test_kron_mixed_product;
          Alcotest.test_case "permutation matrices" `Quick test_permutation_matrix;
          Alcotest.test_case "apply" `Quick test_apply;
          Alcotest.test_case "rank" `Quick test_rank;
          Alcotest.test_case "of_rows errors" `Quick test_of_rows_errors;
        ] );
      ("rank properties", rank_props);
      ( "gate_matrix",
        [
          Alcotest.test_case "controlled-V on 2 qubits" `Quick test_controlled_v_2q;
          Alcotest.test_case "control off" `Quick test_controlled_no_fire;
          Alcotest.test_case "feynman" `Quick test_feynman_matrix;
          Alcotest.test_case "not_on" `Quick test_not_on;
          Alcotest.test_case "errors" `Quick test_gate_matrix_errors;
          Alcotest.test_case "all gates unitary" `Quick test_all_library_gates_unitary;
        ] );
    ]
