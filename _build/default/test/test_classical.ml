(* Tests for ANF extraction and classical gate-library synthesis — the
   machinery behind the paper's Peres-vs-Toffoli library claim. *)

open Reversible

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let revfun = Alcotest.testable Revfun.pp Revfun.equal

let qcheck_test ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let revfun_gen bits =
  QCheck2.Gen.(
    map
      (fun seed ->
        let state = Random.State.make [| seed |] in
        let n = 1 lsl bits in
        let a = Array.init n Fun.id in
        for i = n - 1 downto 1 do
          let j = Random.State.int state (i + 1) in
          let tmp = a.(i) in
          a.(i) <- a.(j);
          a.(j) <- tmp
        done;
        Revfun.of_perm ~bits (Permgroup.Perm.of_array a))
      int)

(* Anf *)

let test_anf_paper_formulas () =
  (* The paper's own formulas: Peres is P = A, Q = B xor A, R = C xor AB. *)
  check Alcotest.string "peres" "P = A, Q = A+B, R = AB+C" (Anf.describe Gates.g1);
  check Alcotest.string "toffoli" "P = A, Q = B, R = AB+C" (Anf.describe Gates.toffoli3);
  (* g3: R = C xor A'B = C + B + AB over GF(2). *)
  check Alcotest.string "g3" "P = A, Q = A+B, R = B+AB+C" (Anf.describe Gates.g3)

let test_anf_constants () =
  check Alcotest.string "zero" "0" (Anf.to_string ~bits:2 []);
  check Alcotest.string "one" "1" (Anf.to_string ~bits:2 [ 0 ]);
  let const_one = Anf.of_outputs ~bits:2 [ true; true; true; true ] in
  check Alcotest.string "constant column" "1" (Anf.to_string ~bits:2 const_one);
  let xor = Anf.of_outputs ~bits:2 [ false; true; true; false ] in
  check Alcotest.string "xor column" "A+B" (Anf.to_string ~bits:2 xor)

let test_anf_degree_linear () =
  check Alcotest.int "xor degree" 1
    (Anf.degree (Anf.of_outputs ~bits:2 [ false; true; true; false ]));
  check Alcotest.int "and degree" 2
    (Anf.degree (Anf.of_outputs ~bits:2 [ false; false; false; true ]));
  checkb "cnot linear" true (Anf.is_linear (Gates.cnot ~bits:3 ~control:2 ~target:0));
  checkb "toffoli not linear" false (Anf.is_linear Gates.toffoli3);
  checkb "fredkin not linear" false (Anf.is_linear Gates.fredkin3);
  checkb "not layer linear" true (Anf.is_linear (Revfun.xor_layer ~bits:3 5))

let anf_props =
  [
    qcheck_test "anf evaluates back to the wire" (revfun_gen 3) (fun f ->
        List.for_all
          (fun wire ->
            let anf = Anf.of_wire f ~wire in
            List.for_all2
              (fun code expected -> Anf.eval ~bits:3 anf code = expected)
              (List.init 8 Fun.id)
              (Revfun.wire_outputs f ~wire))
          [ 0; 1; 2 ]);
    qcheck_test "linear iff in the CNOT/NOT closure" (revfun_gen 3) (fun f ->
        (* the affine group on 3 bits has 1344 elements *)
        let linear = Anf.is_linear f in
        let affine_reachable =
          match
            Classical_synth.synthesize ~bits:3 Classical_synth.ncp_linear f
          with
          | Some _ -> true
          | None -> false
        in
        linear = affine_reachable);
  ]

(* Boolexpr *)

let test_boolexpr_parse_eval () =
  let e = Boolexpr.parse ~bits:3 "C^AB" in
  (* code 6 = A=1,B=1,C=0: 0 xor (1 and 1) = 1 *)
  checkb "110" true (Boolexpr.eval ~bits:3 e 6);
  checkb "100" false (Boolexpr.eval ~bits:3 e 4);
  checkb "001" true (Boolexpr.eval ~bits:3 e 1);
  let prime = Boolexpr.parse ~bits:3 "B^AC'" in
  (* g2's Q: code 4 = A=1,B=0,C=0: 0 xor (1 and 1) = 1 *)
  checkb "postfix not" true (Boolexpr.eval ~bits:3 prime 4);
  checkb "postfix not off" false (Boolexpr.eval ~bits:3 prime 5);
  let ops = Boolexpr.parse ~bits:2 "!A | B & 1 ^ 0" in
  checkb "mixed operators" true (Boolexpr.eval ~bits:2 ops 0)

let test_boolexpr_errors () =
  List.iter
    (fun s ->
      checkb s true
        (match Boolexpr.parse ~bits:2 s with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [ "A^"; "(A"; "A)"; "C"; "A @ B"; "" ]

let test_boolexpr_paper_formulas () =
  (* The paper's formulas for g1..g4 parse to exactly those functions. *)
  let expect name formulas gate =
    check revfun name (Spec.of_formulas ~bits:3 formulas) gate
  in
  expect "g1" "A; B^A; C^AB" Gates.g1;
  expect "g2" "A; B^AC'; C^A" Gates.g2;
  expect "g3" "A; B^A; C^A'B" Gates.g3;
  expect "g4" "A; B^A; C'^A'B'" Gates.g4;
  expect "toffoli" "A; B; C^AB" Gates.toffoli3;
  expect "fredkin via mux" "A; A'B^AC; A'C^AB" Gates.fredkin3

let test_boolexpr_not_reversible () =
  checkb "constant formulas rejected" true
    (match Boolexpr.revfun_of_formulas ~bits:2 [ "0"; "B" ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let boolexpr_props =
  [
    qcheck_test "anf of parsed formula evaluates the same"
      QCheck2.Gen.(int_range 0 7)
      (fun code ->
        let e = Boolexpr.parse ~bits:3 "A^BC'|C" in
        let anf = Boolexpr.to_anf ~bits:3 e in
        Boolexpr.eval ~bits:3 e code = Anf.eval ~bits:3 anf code);
    qcheck_test "pp then parse roundtrips semantics" (revfun_gen 3) (fun f ->
        List.for_all
          (fun wire ->
            let anf = Anf.of_wire f ~wire in
            let printed = Anf.to_string ~bits:3 anf in
            let reparsed = Boolexpr.parse ~bits:3 printed in
            List.for_all
              (fun code ->
                Boolexpr.eval ~bits:3 reparsed code = Anf.eval ~bits:3 anf code)
              (List.init 8 Fun.id))
          [ 0; 1; 2 ]);
  ]

(* Revfun.relabel *)

let test_relabel () =
  let sigma = [| 1; 0; 2 |] in
  check revfun "cnot wires swapped"
    (Gates.cnot ~bits:3 ~control:1 ~target:0)
    (Revfun.relabel (Gates.cnot ~bits:3 ~control:0 ~target:1) sigma);
  check revfun "identity sigma" Gates.g1 (Revfun.relabel Gates.g1 [| 0; 1; 2 |]);
  Alcotest.check_raises "arity" (Invalid_argument "Revfun.relabel: arity") (fun () ->
      ignore (Revfun.relabel Gates.g1 [| 0; 1 |]))

let relabel_props =
  [
    qcheck_test "relabel by sigma then inverse sigma" (revfun_gen 3) (fun f ->
        let sigma = [| 2; 0; 1 |] and inverse = [| 1; 2; 0 |] in
        Revfun.equal f (Revfun.relabel (Revfun.relabel f sigma) inverse));
    qcheck_test "relabel preserves cycle structure" (revfun_gen 3) (fun f ->
        Permgroup.Perm.order (Revfun.to_perm f)
        = Permgroup.Perm.order (Revfun.to_perm (Revfun.relabel f [| 1; 2; 0 |])));
  ]

(* Gf2 *)

let test_gf2_basics () =
  let i3 = Gf2.identity 3 in
  checkb "identity invertible" true (Gf2.is_invertible i3);
  check Alcotest.int "identity rank" 3 (Gf2.rank i3);
  checkb "identity self-inverse" true
    (match Gf2.inverse i3 with Some inv -> Gf2.equal inv i3 | None -> false);
  let singular = [| [| true; true |]; [| true; true |] |] in
  check Alcotest.int "singular rank" 1 (Gf2.rank singular);
  checkb "singular has no inverse" true (Gf2.inverse singular = None);
  checkb "mul identity" true (Gf2.equal (Gf2.mul i3 i3) i3)

let test_gf2_of_revfun () =
  (match Gf2.of_revfun (Gates.cnot ~bits:3 ~control:0 ~target:1) with
  | Some (m, shift) ->
      check Alcotest.int "no shift" 0 shift;
      checkb "B row has A and B" true (m.(1).(0) && m.(1).(1));
      checkb "A row is A" true (m.(0).(0) && not (m.(0).(1)) && not (m.(0).(2)))
  | None -> Alcotest.fail "cnot is linear");
  (match Gf2.of_revfun (Revfun.xor_layer ~bits:3 5) with
  | Some (m, shift) ->
      check Alcotest.int "shift" 5 shift;
      checkb "identity matrix" true (Gf2.equal m (Gf2.identity 3))
  | None -> Alcotest.fail "xor layer is affine");
  checkb "toffoli not affine" true (Gf2.of_revfun Gates.toffoli3 = None)

let test_gf2_roundtrip () =
  let f = Revfun.compose (Gates.cnot ~bits:3 ~control:0 ~target:1)
            (Revfun.compose (Gates.cnot ~bits:3 ~control:2 ~target:0)
               (Revfun.xor_layer ~bits:3 3)) in
  match Gf2.of_revfun f with
  | Some (m, shift) -> check revfun "roundtrip" f (Gf2.to_revfun ~bits:3 m shift)
  | None -> Alcotest.fail "f is affine"

let test_gf2_synthesize () =
  let check_synthesis f =
    match Gf2.synthesize f with
    | Some (not_mask, cnots) ->
        (* recompose: NOT layer then the CNOTs in order *)
        let bits = Revfun.bits f in
        let recomposed =
          List.fold_left
            (fun acc (control, target) ->
              Revfun.compose acc (Gates.cnot ~bits ~control ~target))
            (Revfun.xor_layer ~bits not_mask)
            cnots
        in
        checkb "recomposes exactly" true (Revfun.equal recomposed f);
        checkb "gate count bounded" true (List.length cnots <= bits * bits)
    | None -> Alcotest.fail "affine function expected"
  in
  check_synthesis (Gates.cnot ~bits:3 ~control:1 ~target:2);
  check_synthesis (Gates.swap ~bits:3 ~wire1:0 ~wire2:2);
  check_synthesis (Revfun.xor_layer ~bits:3 7);
  check_synthesis (Revfun.identity ~bits:3);
  checkb "nonlinear rejected" true (Gf2.synthesize Gates.toffoli3 = None)

let gf2_props =
  [
    qcheck_test ~count:60 "synthesize every affine function" QCheck2.Gen.int (fun seed ->
        (* random invertible matrix by composing random row ops *)
        let state = Random.State.make [| seed |] in
        let m = ref (Gf2.identity 3) in
        for _ = 1 to 6 do
          let t = Random.State.int state 3 in
          let c = Random.State.int state 3 in
          if t <> c then begin
            let op = Gf2.identity 3 in
            op.(t).(c) <- true;
            m := Gf2.mul op !m
          end
        done;
        let shift = Random.State.int state 8 in
        let f = Gf2.to_revfun ~bits:3 !m shift in
        match Gf2.synthesize f with
        | Some (not_mask, cnots) ->
            let recomposed =
              List.fold_left
                (fun acc (control, target) ->
                  Revfun.compose acc (Gates.cnot ~bits:3 ~control ~target))
                (Revfun.xor_layer ~bits:3 not_mask)
                cnots
            in
            Revfun.equal recomposed f
        | None -> false);
    qcheck_test "linearity agrees between Anf and Gf2" (revfun_gen 3) (fun f ->
        Anf.is_linear f = (Gf2.of_revfun f <> None));
  ]

(* Classical_synth *)

let test_placements () =
  check Alcotest.int "toffoli placements" 3
    (List.length
       (Classical_synth.all_placements ~bits:3 ~name:"To" ~quantum_cost:5
          Gates.toffoli3));
  check Alcotest.int "peres placements" 6
    (List.length
       (Classical_synth.all_placements ~bits:3 ~name:"Pe" ~quantum_cost:4 Gates.g1));
  check Alcotest.int "fredkin placements" 3
    (List.length
       (Classical_synth.all_placements ~bits:3 ~name:"Fr" ~quantum_cost:5
          Gates.fredkin3))

let test_library_sizes () =
  check Alcotest.int "linear" 9
    (List.length Classical_synth.ncp_linear.Classical_synth.gates);
  check Alcotest.int "toffoli" 12
    (List.length Classical_synth.ncp_toffoli.Classical_synth.gates);
  check Alcotest.int "peres" 21
    (List.length Classical_synth.ncp_peres.Classical_synth.gates)

let test_linear_census () =
  let result = Classical_synth.census ~bits:3 Classical_synth.ncp_linear in
  (* affine group: 2^3 * |GL(3,2)| = 8 * 168 *)
  check Alcotest.int "affine functions" 1344 result.Classical_synth.reachable

let test_toffoli_census () =
  let result = Classical_synth.census ~bits:3 Classical_synth.ncp_toffoli in
  check Alcotest.int "all of S8" 40320 result.Classical_synth.reachable;
  (* Shende et al.: every 3-bit reversible function needs at most 8
     NOT/CNOT/Toffoli gates. *)
  let worst = List.fold_left (fun acc (k, _) -> max acc k) 0 result.Classical_synth.by_gate_count in
  check Alcotest.int "worst case 8 gates" 8 worst

let test_peres_census_beats_toffoli () =
  let toffoli = Classical_synth.census ~bits:3 Classical_synth.ncp_toffoli in
  let peres = Classical_synth.census ~bits:3 Classical_synth.ncp_peres in
  check Alcotest.int "peres reaches everything" 40320 peres.Classical_synth.reachable;
  (* The paper's conclusion: Peres libraries need fewer gates... *)
  checkb "fewer gates on average" true
    (peres.Classical_synth.average_gates < toffoli.Classical_synth.average_gates);
  (* ...and lower total quantum cost. *)
  checkb "lower quantum cost on average" true
    (peres.Classical_synth.average_quantum_cost
    < toffoli.Classical_synth.average_quantum_cost);
  let worst = List.fold_left (fun acc (k, _) -> max acc k) 0 peres.Classical_synth.by_gate_count in
  check Alcotest.int "peres worst case 6 gates" 6 worst

let test_quantum_cost_histogram_matches_elementary_census () =
  (* The Peres-library quantum-cost census agrees with the
     elementary-gate census |S8[k]| for every k the census covers — the
     two models measure the same quantity. *)
  let peres = Classical_synth.census ~bits:3 Classical_synth.ncp_peres in
  let library = Synthesis.Library.make (Mvl.Encoding.make ~qubits:3) in
  let elementary = Synthesis.Fmcf.run ~max_depth:6 library in
  List.iter
    (fun (k, n) ->
      match List.assoc_opt k peres.Classical_synth.by_quantum_cost with
      | Some m -> check Alcotest.int (Printf.sprintf "cost %d" k) (8 * n) m
      | None -> if n > 0 then Alcotest.fail "missing cost bucket")
    (Synthesis.Fmcf.counts elementary)

let test_synthesize_known () =
  (match Classical_synth.synthesize ~bits:3 Classical_synth.ncp_peres Gates.fredkin3 with
  | Some (gates, count) ->
      check Alcotest.int "fredkin = 3 peres" 3 count;
      (* verify the factorization *)
      let product =
        List.fold_left
          (fun acc g -> Revfun.compose acc g.Classical_synth.func)
          (Revfun.identity ~bits:3) gates
      in
      checkb "factorization valid" true (Revfun.equal product Gates.fredkin3)
  | None -> Alcotest.fail "fredkin reachable");
  (match Classical_synth.synthesize ~bits:3 Classical_synth.ncp_linear Gates.toffoli3 with
  | Some _ -> Alcotest.fail "toffoli is not affine"
  | None -> ());
  match
    Classical_synth.synthesize ~bits:3 Classical_synth.ncp_toffoli
      (Revfun.identity ~bits:3)
  with
  | Some ([], 0) -> ()
  | _ -> Alcotest.fail "identity is free"

let () =
  Alcotest.run "classical"
    [
      ( "anf",
        [
          Alcotest.test_case "paper formulas" `Quick test_anf_paper_formulas;
          Alcotest.test_case "constants" `Quick test_anf_constants;
          Alcotest.test_case "degree and linearity" `Quick test_anf_degree_linear;
        ] );
      ("anf properties", anf_props);
      ( "boolexpr",
        [
          Alcotest.test_case "parse and eval" `Quick test_boolexpr_parse_eval;
          Alcotest.test_case "errors" `Quick test_boolexpr_errors;
          Alcotest.test_case "paper formulas" `Quick test_boolexpr_paper_formulas;
          Alcotest.test_case "non-reversible rejected" `Quick
            test_boolexpr_not_reversible;
        ] );
      ("boolexpr properties", boolexpr_props);
      ( "relabel",
        [ Alcotest.test_case "relabel wires" `Quick test_relabel ] );
      ("relabel properties", relabel_props);
      ( "gf2",
        [
          Alcotest.test_case "basics" `Quick test_gf2_basics;
          Alcotest.test_case "of_revfun" `Quick test_gf2_of_revfun;
          Alcotest.test_case "roundtrip" `Quick test_gf2_roundtrip;
          Alcotest.test_case "synthesize" `Quick test_gf2_synthesize;
        ] );
      ("gf2 properties", gf2_props);
      ( "classical_synth",
        [
          Alcotest.test_case "placements" `Quick test_placements;
          Alcotest.test_case "library sizes" `Quick test_library_sizes;
          Alcotest.test_case "linear census" `Quick test_linear_census;
          Alcotest.test_case "toffoli census" `Slow test_toffoli_census;
          Alcotest.test_case "peres beats toffoli" `Slow test_peres_census_beats_toffoli;
          Alcotest.test_case "quantum costs match elementary census" `Slow
            test_quantum_cost_histogram_matches_elementary_census;
          Alcotest.test_case "synthesize known circuits" `Quick test_synthesize_known;
        ] );
    ]
