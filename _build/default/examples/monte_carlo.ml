(* Monte-Carlo validation of the exact probabilistic semantics: sample
   the QRNG circuits and state machines of Section 4 and compare the
   empirical frequencies with the exact dyadic distributions.

   Run with: dune exec examples/monte_carlo.exe *)

open Synthesis
open Automata

let () =
  let library = Library.make (Mvl.Encoding.make ~qubits:3) in
  let rng = Random.State.make [| 2005; 7; 6 |] in

  (* 1. Sample the controlled coin 100k times; the empirical distribution
     must sit within a small total-variation distance of the exact one. *)
  let coin = Prob_circuit.controlled_coin library in
  let exact = Prob_circuit.output_distribution coin ~input:4 in
  let empirical =
    Sampler.empirical rng ~samples:100_000 ~outcomes:8 (fun state ->
        Sampler.run_circuit state coin ~input:4)
  in
  Format.printf "controlled coin, input 4:@.";
  Array.iteri
    (fun code p ->
      if not (Qsim.Prob.is_zero p) then
        Format.printf "  code %d: exact %a, empirical %.4f@." code Qsim.Prob.pp p
          empirical.(code))
    exact;
  Format.printf "total variation: %.4f (100k samples)@."
    (Sampler.total_variation empirical exact);

  (* 2. A random-walk machine: exact k-step distributions vs sampled
     trajectories. *)
  let machine =
    Qfsm.make
      ~circuit:
        (Prob_circuit.of_cascade library (Cascade.of_string ~qubits:3 "VCA*VAB"))
      ~state_wires:[ 0 ] ~input_wires:[ 1 ] ~obs_wires:[ 2 ]
  in
  let matrix = Qfsm.transition_matrix machine ~input:1 in
  Format.printf "@.random-walk machine (input 1), stochastic: %b@."
    (Markov.is_stochastic matrix);
  let start = [| Qsim.Prob.one; Qsim.Prob.zero |] in
  let after3 = Markov.power matrix 3 start in
  Format.printf "exact state distribution after 3 steps: [%a; %a]@." Qsim.Prob.pp
    after3.(0) Qsim.Prob.pp after3.(1);
  let empirical_states =
    Sampler.empirical rng ~samples:20_000 ~outcomes:2 (fun state ->
        match List.rev (Sampler.trajectory state machine ~inputs:[ 1; 1; 1 ] ~init:0) with
        | (final, _) :: _ -> final
        | [] -> 0)
  in
  Format.printf "empirical after 3 steps: [%.4f; %.4f]@." empirical_states.(0)
    empirical_states.(1);

  (* 3. Entropy accounting: each armed clock of the walk emits one fair
     coin on the observation wire and one on the state wire. *)
  let pi = Qfsm.stationary machine ~input:1 in
  Format.printf "@.stationary distribution: [%.3f; %.3f]@." pi.(0) pi.(1);
  Format.printf "entropy rate of the state process: %.3f bits/step@."
    (Markov.entropy_rate ~stationary:pi matrix);
  Format.printf "entropy of a single armed-coin output: %.3f bits@."
    (Markov.entropy (Prob_circuit.output_distribution coin ~input:4));

  (* 4. HMM sequence likelihoods: exact forward vs empirical frequency of
     the observation word. *)
  let hmm = Hmm.of_machine machine ~input:1 in
  let init = [| Qsim.Prob.one; Qsim.Prob.zero |] in
  let word = [ 0; 1 ] in
  let exact_likelihood = Hmm.forward hmm ~init ~observations:word in
  let trials = 50_000 in
  let hits = ref 0 in
  for _ = 1 to trials do
    let observations =
      List.map snd (Sampler.trajectory rng machine ~inputs:[ 1; 1 ] ~init:0)
    in
    if observations = word then incr hits
  done;
  Format.printf "@.P(observations = 01): exact %a = %.4f, empirical %.4f@." Qsim.Prob.pp
    exact_likelihood
    (Qsim.Prob.to_float exact_likelihood)
    (float_of_int !hits /. float_of_int trials)
