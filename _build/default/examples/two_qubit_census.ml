(* The method is generic in the number of qubits: rebuild everything for
   2 qubits.  The permutable domain shrinks to 8 patterns (16 - 9 + 1),
   the library to 6 gates, and the census runs to closure: all 4! = 24
   two-bit reversible functions split as |G[k]| over the 6 functions
   fixing 00, times the 4 NOT layers (Theorem 2 with n = 2).

   Also regenerates Table 1 (the 2-qubit controlled-V truth table).

   Run with: dune exec examples/two_qubit_census.exe *)

open Synthesis

let () =
  let encoding = Mvl.Encoding.make ~qubits:2 in
  let library = Library.make encoding in
  Format.printf "2-qubit domain: %d patterns, library: %d gates@."
    (Mvl.Encoding.size encoding) (Library.size library);

  (* Table 1. *)
  let gate = Gate.make Gate.Controlled_v ~target:1 ~control:0 in
  let rows =
    Mvl.Truth_table.labeled_rows ~order:Mvl.Truth_table.table1_order (Gate.apply gate)
  in
  Mvl.Truth_table.pp_table ~wires:[ "A"; "B" ] Format.std_formatter rows;

  (* Census to closure: every 0-fixing 2-bit reversible function has a
     NOT-free realization; S3 has 6 elements. *)
  let census = Fmcf.run ~max_depth:6 library in
  List.iter (fun (k, n) -> Format.printf "|G[%d]| = %d@." k n) (Fmcf.counts census);
  Format.printf "total found: %d (the stabilizer of 00 in S4 has %d elements)@."
    (Fmcf.total_found census) 6;

  (* Costs of the three non-trivial named 2-bit circuits. *)
  List.iter
    (fun (name, target) ->
      match Mce.express library target with
      | Some r ->
          Format.printf "%s: cost %d, cascade %s%a, verified %b@." name r.Mce.cost
            (if r.Mce.not_mask = 0 then ""
             else Printf.sprintf "NOT(mask=%d) * " r.Mce.not_mask)
            Cascade.pp r.Mce.cascade
            (Verify.result_valid library r)
      | None -> Format.printf "%s: not found@." name)
    [
      ("CNOT(B<-A)", Reversible.Gates.cnot ~bits:2 ~control:0 ~target:1);
      ("swap", Reversible.Gates.swap ~bits:2 ~wire1:0 ~wire2:1);
      ("NOT on A", Reversible.Gates.not_ ~bits:2 ~wire:0);
    ];

  (* Theorem 2 for n = 2. *)
  let g_size, h_size = Universality.theorem2_check ~bits:2 in
  Format.printf "Theorem 2 (n=2): |G| = %d, |S4| = %d = 4 x %d@." g_size h_size g_size
