(* Reproduction of the paper's Section 4: probabilistic circuits, a
   controlled quantum random number generator, and quantum-realized
   probabilistic state machines / hidden Markov models — all with exact
   dyadic probabilities.

   Run with: dune exec examples/quantum_rng.exe *)

open Synthesis
open Automata

let () =
  let library = Library.make (Mvl.Encoding.make ~qubits:3) in

  (* 1. Controlled coin: V_CA makes wire C a fair coin when A = 1. *)
  let coin = Prob_circuit.controlled_coin library in
  Format.printf "controlled coin (cascade %a):@." Cascade.pp (Prob_circuit.cascade coin);
  List.iter
    (fun input ->
      let pattern = Prob_circuit.output_pattern coin ~input in
      Format.printf "  input %d -> %a, entropy %.1f bits@." input Mvl.Pattern.pp pattern
        (Prob_circuit.entropy_bits coin ~input))
    [ 0; 4; 6 ];

  (* 2. Synthesize a probabilistic circuit from a quaternary spec: a
     two-coin generator -- when A = 1, both B and C become fair coins;
     when A = 0, everything is deterministic. *)
  let spec =
    Prob_circuit.spec_of_strings library
      [ "000"; "001"; "010"; "011"; "1V0V0"; "1V0V1"; "1V1V0"; "1V1V1" ]
  in
  (match Prob_circuit.synthesize library spec with
  | Some circuit ->
      Format.printf "@.two-coin generator synthesized: %a (cost %d)@." Cascade.pp
        (Prob_circuit.cascade circuit)
        (Cascade.cost (Prob_circuit.cascade circuit));
      let dist = Prob_circuit.output_distribution circuit ~input:4 in
      Format.printf "  input 4 measurement distribution:";
      Array.iteri
        (fun code p ->
          if not (Qsim.Prob.is_zero p) then Format.printf " %d:%a" code Qsim.Prob.pp p)
        dist;
      Format.printf "@."
  | None -> Format.printf "@.two-coin generator: no realization within depth@.");

  (* 3. A probabilistic state machine (paper Figure 3): wire A is the
     1-bit state register, wire B the external input, wire C is observed.
     Logic V_CA*V_AB: the observed wire becomes a fair coin while the
     state is 1, and an input of 1 randomizes the state (a quantum
     random walk driven by measurement). *)
  let machine =
    Qfsm.make
      ~circuit:(Prob_circuit.of_cascade library (Cascade.of_string ~qubits:3 "VCA*VAB"))
      ~state_wires:[ 0 ] ~input_wires:[ 1 ] ~obs_wires:[ 2 ]
  in
  Format.printf "@.machine: state=A, input=B, observed=C, logic V_CA*V_AB@.";
  List.iter
    (fun input ->
      Array.iteri
        (fun state row ->
          Format.printf "  input %d, state %d -> next-state distribution:" input state;
          Array.iteri (fun s' p -> Format.printf " %d:%a" s' Qsim.Prob.pp p) row;
          Format.printf "@.")
        (Qfsm.transition_matrix machine ~input))
    [ 0; 1 ];

  (* The observed wire is a fair coin whenever the state is 1: run the
     exact joint distribution. *)
  let joint = Qfsm.joint_row machine ~input:0 ~state:1 in
  Format.printf "  state 1 joint (next-state, observation):@.";
  Array.iteri
    (fun s' per_obs ->
      Array.iteri
        (fun obs p ->
          if not (Qsim.Prob.is_zero p) then
            Format.printf "    next=%d obs=%d : %a@." s' obs Qsim.Prob.pp p)
        per_obs)
    joint;

  (* 4. Hidden Markov model: hide the state, observe C; exact forward
     likelihoods and Viterbi decoding. *)
  let hmm = Hmm.of_machine machine ~input:0 in
  let init = [| Qsim.Prob.zero; Qsim.Prob.one |] in
  (* start in state 1 *)
  List.iter
    (fun word ->
      let likelihood = Hmm.forward hmm ~init ~observations:word in
      let path, p = Hmm.viterbi hmm ~init ~observations:word in
      Format.printf "  observations %s: likelihood %a, best path %s (p = %a)@."
        (String.concat "" (List.map string_of_int word))
        Qsim.Prob.pp likelihood
        (String.concat "" (List.map string_of_int path))
        Qsim.Prob.pp p)
    [ [ 1 ]; [ 1; 1 ]; [ 1; 0; 1 ] ];

  (* 5. Stationary behaviour under a constant randomizing input. *)
  let pi = Qfsm.stationary machine ~input:1 in
  Format.printf "  stationary distribution: [%s]@."
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.3f") pi)));

  (* 6. Synthesis from behaviour examples (the paper's Section 6 program):
     specify only what an observer measures — '?' is a fair coin, '*' a
     don't-care — and search for the cheapest circuit consistent with it. *)
  let behaviour =
    Behavior.of_strings library
      [ "000"; "001"; "010"; "011"; "1??"; "***"; "***"; "***" ]
  in
  Format.printf "@.behavioural spec (observer's view):@.%a" Behavior.pp behaviour;
  match Behavior.synthesize library behaviour with
  | Some circuit ->
      Format.printf "cheapest consistent circuit: %a (cost %d)@." Cascade.pp
        (Prob_circuit.cascade circuit)
        (Cascade.cost (Prob_circuit.cascade circuit));
      Format.printf "its full observable behaviour:@.%a" Behavior.pp
        (Behavior.observe circuit)
  | None -> Format.printf "no circuit matches the behaviour@."
