(* Quickstart: synthesize a minimal-cost quantum circuit for the Toffoli
   gate and verify it against the exact unitary semantics.

   Run with: dune exec examples/quickstart.exe *)

open Synthesis

let () =
  (* 1. Build the multiple-valued encoding and compile the gate library:
     38 permutable patterns, 18 two-qubit gates for 3 qubits. *)
  let encoding = Mvl.Encoding.make ~qubits:3 in
  let library = Library.make encoding in
  Format.printf "domain: %d patterns, library: %d gates@." (Mvl.Encoding.size encoding)
    (Library.size library);

  (* 2. Pick a target reversible function.  Toffoli swaps the last two
     binary patterns: cycle (7,8) in the paper's 1-based labels. *)
  let target = Reversible.Gates.toffoli3 in
  Format.printf "target (Toffoli): %a@." Reversible.Revfun.pp target;

  (* 3. Synthesize with the paper's MCE algorithm. *)
  (match Mce.express library target with
  | Some result ->
      Format.printf "minimal cost: %d@." result.Mce.cost;
      Format.printf "cascade: %a@." Cascade.pp result.Mce.cascade;
      (* 4. Verify: simulate the cascade as a product of exact unitary
         matrices over the Gaussian-dyadic ring and compare with the
         target truth table.  No floating point, no tolerance. *)
      Format.printf "exact unitary verification: %b@."
        (Verify.result_valid library result)
  | None -> Format.printf "not synthesizable within the default depth@.");

  (* 5. Gates act on four-valued signals; look at one truth-table row:
     V_CA sends the binary pattern 1,0,0 to 1,0,V0. *)
  let vca = Gate.of_name ~qubits:3 "VCA" in
  let input = Mvl.Pattern.of_binary_code ~qubits:3 4 in
  Format.printf "V_CA: %a -> %a@." Mvl.Pattern.pp input Mvl.Pattern.pp
    (Gate.apply vca input);

  (* 6. The same gate as a permutation of the 38 patterns, in the paper's
     1-based cycle notation. *)
  Format.printf "V_CA as a permutation: %a@." Permgroup.Perm.pp
    (Library.perm_of_gate library vca)
