(* The formulation generalizes beyond the paper's 3 qubits: rebuild the
   whole machinery for 4 qubits.  The permutable pattern domain grows to
   256 - 81 + 1 = 176 points and the library to 36 gates; the search
   frontier grows accordingly, so this example stays at shallow depths
   (the paper's cb = 7 is specific to 3 qubits).

   Run with: dune exec examples/four_qubit.exe *)

open Synthesis

let () =
  let encoding = Mvl.Encoding.make ~qubits:4 in
  let library = Library.make encoding in
  Format.printf "4-qubit domain: %d patterns, library: %d gates@."
    (Mvl.Encoding.size encoding) (Library.size library);

  (* Census to depth 3: the frontier growth dwarfs the 3-qubit case. *)
  let t0 = Unix.gettimeofday () in
  let census = Fmcf.run ~max_depth:3 library in
  Format.printf "census to depth 3 (%.2fs): " (Unix.gettimeofday () -. t0);
  List.iter (fun (k, n) -> Format.printf "|G[%d]| = %d  " k n) (Fmcf.counts census);
  Format.printf "@.search states: %d (3-qubit depth 3 had 1198)@."
    (Search.size (Fmcf.search census));

  (* Synthesis on the wider register: gates acting on any wire pair. *)
  List.iter
    (fun (name, target) ->
      match Mce.express ~max_depth:3 library target with
      | Some r ->
          Format.printf "%s: cost %d, cascade %a, exact verification %b@." name
            r.Mce.cost Cascade.pp r.Mce.cascade
            (Verify.result_valid library r)
      | None -> Format.printf "%s: beyond depth 3@." name)
    [
      ("CNOT(D<-A)", Reversible.Gates.cnot ~bits:4 ~control:0 ~target:3);
      ("swap(B,D)", Reversible.Gates.swap ~bits:4 ~wire1:1 ~wire2:3);
      ("double CNOT",
        Reversible.Revfun.compose
          (Reversible.Gates.cnot ~bits:4 ~control:0 ~target:1)
          (Reversible.Gates.cnot ~bits:4 ~control:2 ~target:3));
    ];

  (* The paper's banned-set machinery scales with the encoding: check a
     couple of 4-qubit gates and their purity constraints. *)
  let vda = Gate.make Gate.Controlled_v ~target:3 ~control:0 in
  Format.printf "V_DA banned set size: %d of %d points@."
    (List.length (Library.banned_set library vda))
    (Mvl.Encoding.size encoding);

  (* Drawing works on any width. *)
  let cascade = Cascade.of_string ~qubits:4 "VDA*FCB*V+DA" in
  Format.printf "@.%s@." (Draw.to_ascii ~qubits:4 cascade);
  Format.printf "reasonable: %b@." (Cascade.is_reasonable library cascade);

  (* Toffoli embedded on 4 wires still costs 5 — synthesize its witness
     from the paper's 3-qubit answer lifted to 4 wires and verify. *)
  let lifted =
    List.map
      (fun g -> Gate.make (Gate.kind g) ~target:(Gate.target g) ~control:(Gate.control g))
      (Cascade.of_string ~qubits:3 "FBA*V+CB*FBA*VCA*VCB")
  in
  let toffoli4 = Reversible.Gates.toffoli ~bits:4 ~control1:0 ~control2:1 ~target:2 in
  Format.printf "@.3-qubit Toffoli cascade lifted to 4 wires implements Toffoli(A,B->C): %b@."
    (Verify.cascade_implements ~qubits:4 lifted toffoli4)
