examples/two_qubit_census.ml: Cascade Fmcf Format Gate Library List Mce Mvl Printf Reversible Synthesis Universality Verify
