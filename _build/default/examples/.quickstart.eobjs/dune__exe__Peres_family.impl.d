examples/peres_family.ml: Fmcf Format Gate Library List Mvl Reversible String Synthesis Universality
