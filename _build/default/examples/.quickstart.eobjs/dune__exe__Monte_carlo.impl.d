examples/monte_carlo.ml: Array Automata Cascade Format Hmm Library List Markov Mvl Prob_circuit Qfsm Qsim Random Sampler Synthesis
