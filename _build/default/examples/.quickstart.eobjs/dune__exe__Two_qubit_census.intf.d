examples/two_qubit_census.mli:
