examples/four_qubit.mli:
