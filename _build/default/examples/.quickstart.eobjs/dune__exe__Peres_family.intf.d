examples/peres_family.mli:
