examples/circuit_toolkit.ml: Cascade Cost_model Draw Format Library List Mce Mvl Reversible Rewrite Synthesis Weighted
