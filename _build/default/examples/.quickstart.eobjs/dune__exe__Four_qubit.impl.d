examples/four_qubit.ml: Cascade Draw Fmcf Format Gate Library List Mce Mvl Reversible Search Synthesis Unix Verify
