examples/quantum_rng.ml: Array Automata Behavior Cascade Format Hmm Library List Mvl Printf Prob_circuit Qfsm Qsim String Synthesis
