examples/quickstart.ml: Cascade Format Gate Library Mce Mvl Permgroup Reversible Synthesis Verify
