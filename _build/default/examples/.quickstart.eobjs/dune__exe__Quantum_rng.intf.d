examples/quantum_rng.mli:
