examples/toffoli_synthesis.mli:
