examples/full_synthesis.mli:
