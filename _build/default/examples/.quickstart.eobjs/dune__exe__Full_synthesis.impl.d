examples/full_synthesis.ml: Fmcf Format Hashtbl Int Library List Mce Mvl Option Permgroup Random Reversible Spectrum Synthesis Universality Unix Verify
