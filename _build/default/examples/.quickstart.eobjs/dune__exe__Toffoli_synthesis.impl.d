examples/toffoli_synthesis.ml: Cascade Format Library List Mce Mvl Reversible Synthesis Unix Verify
