examples/circuit_toolkit.mli:
