examples/quickstart.mli:
