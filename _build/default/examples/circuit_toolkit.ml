(* Circuit toolkit tour: ASCII rendering, peephole rewriting, and
   minimum-cost synthesis under non-uniform gate cost models (the paper's
   "easily modified to take into account the precise NMR costs" claim).

   Run with: dune exec examples/circuit_toolkit.exe *)

open Synthesis

let () =
  let library = Library.make (Mvl.Encoding.make ~qubits:3) in

  (* 1. Draw the paper's figures. *)
  let show name cascade =
    Format.printf "@.%s  (%s):@.%s@." name (Cascade.to_string cascade)
      (Draw.to_ascii ~qubits:3 cascade)
  in
  show "Figure 4, Peres" (Cascade.of_string ~qubits:3 "VCB*FBA*VCA*V+CB");
  show "Figure 9(a), Toffoli" (Cascade.of_string ~qubits:3 "FBA*V+CB*FBA*VCA*VCB");

  (* 2. Peephole rewriting: gratuitous detours cancel away. *)
  let bloated = Cascade.of_string ~qubits:3 "VBA*FCA*V+BA*FCB*FCB*VCA*VCA" in
  let slim = Rewrite.normalize bloated in
  Format.printf "@.rewrite: %s  ->  %s (%d -> %d gates), same unitary: %b@."
    (Cascade.to_string bloated) (Cascade.to_string slim) (Cascade.cost bloated)
    (Cascade.cost slim)
    (Rewrite.equivalent_unitary ~qubits:3 bloated slim);

  (* The V.V -> Feynman merge is a matrix identity. *)
  let doubled = Cascade.of_string ~qubits:3 "VCA*VCA" in
  Format.printf "V_CA*V_CA normalizes to %s (controlled V^2 = CNOT)@."
    (Cascade.to_string (Rewrite.normalize doubled));

  (* 3. Weighted synthesis: how the optimal circuit changes with the cost
     model. *)
  let report model target name =
    match Weighted.express ~max_cost:10 library ~model target with
    | Some r ->
        Format.printf "  %-14s %-16s cost %2d  %s@." (Cost_model.name model) name
          r.Weighted.cost
          (Cascade.to_string r.Weighted.cascade)
    | None -> Format.printf "  %-14s %-16s (not found)@." (Cost_model.name model) name
  in
  Format.printf "@.minimum costs under three gate-cost models:@.";
  List.iter
    (fun (name, target) ->
      List.iter
        (fun model -> report model target name)
        [ Cost_model.unit; Cost_model.v_cheap; Cost_model.feynman_cheap ])
    [
      ("peres", Reversible.Gates.g1);
      ("toffoli", Reversible.Gates.toffoli3);
      ("swap(A,B)", Reversible.Gates.swap ~bits:3 ~wire1:0 ~wire2:1);
    ];

  (* 4. The unit model agrees with the paper's BFS algorithms. *)
  let agreement =
    List.for_all
      (fun target ->
        match
          ( Weighted.express library ~model:Cost_model.unit target,
            Mce.express library target )
        with
        | Some w, Some m -> w.Weighted.cost = m.Mce.cost
        | _ -> false)
      [ Reversible.Gates.g1; Reversible.Gates.g2; Reversible.Gates.toffoli3 ]
  in
  Format.printf "@.unit-model Dijkstra agrees with the paper's BFS: %b@." agreement
