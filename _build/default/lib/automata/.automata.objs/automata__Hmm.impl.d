lib/automata/hmm.ml: Array List Prob Qfsm Qsim
