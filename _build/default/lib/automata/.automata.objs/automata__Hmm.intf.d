lib/automata/hmm.mli: Qfsm Qsim
