lib/automata/prob_circuit.ml: Array Cascade Char Gate Hashtbl Library List Measurement Mvl Permgroup Search String Synthesis
