lib/automata/behavior.mli: Format Mvl Prob_circuit Synthesis
