lib/automata/qfsm.mli: Mvl Prob_circuit Qsim
