lib/automata/markov.ml: Array Prob Qsim
