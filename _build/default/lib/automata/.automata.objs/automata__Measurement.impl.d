lib/automata/measurement.ml: Array List Mvl Prob Qsim
