lib/automata/markov.mli: Qsim
