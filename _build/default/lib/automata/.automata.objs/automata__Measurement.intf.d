lib/automata/measurement.mli: Mvl Qsim
