lib/automata/prob_circuit.mli: Mvl Qsim Synthesis
