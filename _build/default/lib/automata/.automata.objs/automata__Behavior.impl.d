lib/automata/behavior.ml: Array Char Format Library List Mvl Printf Prob_circuit Search String Synthesis
