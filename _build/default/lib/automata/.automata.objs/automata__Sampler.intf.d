lib/automata/sampler.mli: Mvl Prob_circuit Qfsm Qsim Random
