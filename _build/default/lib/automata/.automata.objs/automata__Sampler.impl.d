lib/automata/sampler.ml: Array Float List Mvl Prob_circuit Qfsm Qsim Random
