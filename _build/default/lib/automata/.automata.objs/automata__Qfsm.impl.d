lib/automata/qfsm.ml: Array Int List Measurement Mvl Prob Prob_circuit Qsim
