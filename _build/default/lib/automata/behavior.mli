(** Synthesis from behavioural examples (the paper's Section 6 program:
    "synthesize probabilistic ... machines from examples of their
    behaviors expressed in multiple-valued logics").

    A behaviour specification constrains, for each binary input, what a
    measurement of each output wire must look like — deterministic 0,
    deterministic 1, a fair coin, or unconstrained — without fixing the
    underlying quaternary value (a fair coin is V0 {e or} V1).  This is
    strictly weaker than {!Prob_circuit.spec}: it is what an external
    observer of input/output behaviour can actually specify. *)

type wire_behavior =
  | Zero (** measures 0 with probability 1 *)
  | One (** measures 1 with probability 1 *)
  | Coin (** measures 0/1 with probability 1/2 each (V0 or V1) *)
  | Any (** unconstrained (don't care) *)

type t = wire_behavior array array
(** [spec.(input).(wire)] — one row per binary input code. *)

(** [of_strings library rows] parses one row per input code; characters:
    ['0'], ['1'], ['?'] (coin), ['*'] (any) — e.g. ["1?0"].
    @raise Invalid_argument on bad characters or wrong arity. *)
val of_strings : Synthesis.Library.t -> string list -> t

(** [matches spec ~input pattern] checks one output pattern against the
    row for [input]. *)
val matches : t -> input:int -> Mvl.Pattern.t -> bool

(** [satisfied_by spec circuit] checks every input row. *)
val satisfied_by : t -> Prob_circuit.t -> bool

(** [synthesize ?max_depth library spec] finds a minimal-cost circuit
    whose observable behaviour matches the spec, or [None] within the
    depth bound.  Where {!Prob_circuit.synthesize} needs the exact
    quaternary output patterns, this searches over everything consistent
    with the observations. *)
val synthesize :
  ?max_depth:int -> Synthesis.Library.t -> t -> Prob_circuit.t option

(** [observe circuit] is the behaviour a circuit exhibits — the tightest
    spec it satisfies (never contains [Any]). *)
val observe : Prob_circuit.t -> t

(** [pp] prints rows like ["input 4 -> 1?0"]. *)
val pp : Format.formatter -> t -> unit
