open Qsim

type t = { joint : Prob.t array array array }
(* joint.(s).(s').(o) = P(next = s', obs = o | state = s) *)

let of_machine machine ~input =
  let n = Qfsm.num_states machine in
  { joint = Array.init n (fun state -> Qfsm.joint_row machine ~input ~state) }

let make ~joint =
  let n = Array.length joint in
  if n = 0 then invalid_arg "Hmm.make: empty model";
  let num_obs =
    if Array.length joint.(0) = 0 then invalid_arg "Hmm.make: no states"
    else Array.length joint.(0).(0)
  in
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Hmm.make: ragged joint";
      let total =
        Array.fold_left
          (fun acc per_obs ->
            if Array.length per_obs <> num_obs then invalid_arg "Hmm.make: ragged joint";
            Array.fold_left Prob.add acc per_obs)
          Prob.zero row
      in
      if not (Prob.equal total Prob.one) then
        invalid_arg "Hmm.make: rows must sum to one")
    joint;
  { joint }

let num_states t = Array.length t.joint
let num_obs t = Array.length t.joint.(0).(0)
let joint t ~state = t.joint.(state)

let check_init t init =
  if Array.length init <> num_states t then invalid_arg "Hmm: init distribution arity"

let state_distribution t ~init ~observations =
  check_init t init;
  let n = num_states t in
  List.fold_left
    (fun alpha obs ->
      let next = Array.make n Prob.zero in
      for s = 0 to n - 1 do
        if not (Prob.is_zero alpha.(s)) then
          for s' = 0 to n - 1 do
            next.(s') <- Prob.add next.(s') (Prob.mul alpha.(s) t.joint.(s).(s').(obs))
          done
      done;
      next)
    (Array.copy init) observations

let forward t ~init ~observations =
  Array.fold_left Prob.add Prob.zero (state_distribution t ~init ~observations)

let viterbi t ~init ~observations =
  check_init t init;
  let n = num_states t in
  let delta = ref (Array.copy init) in
  let backpointers = ref [] in
  List.iter
    (fun obs ->
      let next = Array.make n Prob.zero in
      let back = Array.make n 0 in
      for s' = 0 to n - 1 do
        for s = 0 to n - 1 do
          let candidate = Prob.mul !delta.(s) t.joint.(s).(s').(obs) in
          if Prob.compare candidate next.(s') > 0 then begin
            next.(s') <- candidate;
            back.(s') <- s
          end
        done
      done;
      backpointers := back :: !backpointers;
      delta := next)
    observations;
  if observations = [] then ([], Prob.one)
  else begin
    let best = ref 0 in
    Array.iteri (fun s p -> if Prob.compare p !delta.(!best) > 0 then best := s) !delta;
    (* [backpointers] holds the per-step arrays most recent first; walking
       them rebuilds the state path s_1 .. s_T (s_0 is the initial state,
       summarized by [init]). *)
    let rec walk cursor backs acc =
      match backs with
      | [] -> acc
      | back :: rest -> walk back.(cursor) rest (cursor :: acc)
    in
    (walk !best !backpointers [], !delta.(!best))
  end
