(** Measurement semantics for quaternary output patterns (paper Section 4).

    Measuring a wire carrying [Zero] or [One] is deterministic; measuring
    [V0] or [V1] yields 0 or 1 with probability 1/2 each (|(1±i)/2|² =
    1/2).  Wires of a product state measure independently, so the joint
    distribution over binary output codes is the product of per-wire
    distributions — all probabilities are exact dyadic rationals. *)

(** [wire_distribution value] is [(p0, p1)], the exact probabilities of
    measuring 0 and 1. *)
val wire_distribution : Mvl.Quat.t -> Qsim.Prob.t * Qsim.Prob.t

(** [code_probability pattern code] is the probability that measuring
    every wire of [pattern] yields the binary code [code]. *)
val code_probability : Mvl.Pattern.t -> int -> Qsim.Prob.t

(** [distribution pattern] is the full distribution over the [2^n] binary
    codes; entries sum to exactly 1. *)
val distribution : Mvl.Pattern.t -> Qsim.Prob.t array

(** [support pattern] lists the codes of non-zero probability with their
    probabilities. *)
val support : Mvl.Pattern.t -> (int * Qsim.Prob.t) list

(** [is_deterministic pattern] is true when the pattern is pure binary
    (one outcome with probability 1). *)
val is_deterministic : Mvl.Pattern.t -> bool

(** [entropy_bits pattern] is the Shannon entropy of the measurement
    outcome, in bits: the number of fair coins the measurement generates
    (e.g. 1.0 for a single [V0] wire among binary wires). *)
val entropy_bits : Mvl.Pattern.t -> float
