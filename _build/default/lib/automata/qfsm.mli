(** Quantum-realized probabilistic state machines (paper Figure 3).

    A machine is a probabilistic combinational circuit in a feedback loop:
    some wires carry the state register (fed back after measurement), some
    carry external inputs, and some are observed as outputs.  Measuring
    the quaternary output pattern each clock makes the machine an exactly
    computable Markov chain whose transition probabilities are dyadic
    rationals. *)

type t

(** [make ~circuit ~state_wires ~input_wires ~obs_wires] assembles a
    machine.  Wire lists must be disjoint; wires not mentioned are fed 0
    every clock.
    @raise Invalid_argument on overlapping or out-of-range wires, or when
    [state_wires] is empty. *)
val make :
  circuit:Prob_circuit.t ->
  state_wires:int list ->
  input_wires:int list ->
  obs_wires:int list ->
  t

val circuit : t -> Prob_circuit.t

(** Wire assignments (fresh arrays). *)
val state_wires : t -> int array

val input_wires : t -> int array
val obs_wires : t -> int array

(** [output_pattern t ~input ~state] is the quaternary pattern the
    combinational circuit produces for one clock (register values
    assembled onto their wires, 0 elsewhere). *)
val output_pattern : t -> input:int -> state:int -> Mvl.Pattern.t

(** [num_states t] is [2^(number of state wires)]. *)
val num_states : t -> int

(** [num_inputs t] is [2^(number of input wires)]. *)
val num_inputs : t -> int

(** [num_obs t] is [2^(number of observation wires)]. *)
val num_obs : t -> int

(** [transition_row t ~input ~state] is the exact distribution over next
    states. *)
val transition_row : t -> input:int -> state:int -> Qsim.Prob.t array

(** [transition_matrix t ~input] is the row-stochastic transition matrix
    for a fixed input symbol. *)
val transition_matrix : t -> input:int -> Qsim.Prob.t array array

(** [joint_row t ~input ~state] is the exact joint distribution over
    (next state, observation) pairs; state and observation wires are
    disjoint wires of a product state, so the joint factorizes and stays
    dyadic. *)
val joint_row : t -> input:int -> state:int -> Qsim.Prob.t array array

(** [step t ~input dist] evolves a state distribution one clock, exactly. *)
val step : t -> input:int -> Qsim.Prob.t array -> Qsim.Prob.t array

(** [run t ~inputs dist] folds {!step} over an input word. *)
val run : t -> inputs:int list -> Qsim.Prob.t array -> Qsim.Prob.t array

(** [stationary ?iterations t ~input] approximates the stationary
    distribution under a constant input by power iteration (floating
    point; default 1000 iterations). *)
val stationary : ?iterations:int -> t -> input:int -> float array
