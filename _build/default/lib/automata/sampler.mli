(** Monte-Carlo sampling of probabilistic circuits and state machines.

    The exact dyadic distributions of {!Measurement}/{!Qfsm} are the
    ground truth; this module draws actual random samples from them —
    what the physical QRNG of the paper's Section 4 would produce — so
    examples and tests can compare empirical frequencies against the
    exact probabilities. *)

(** [measure_pattern state pattern] samples a binary code from measuring
    a quaternary pattern. *)
val measure_pattern : Random.State.t -> Mvl.Pattern.t -> int

(** [run_circuit state circuit ~input] samples one measured output of a
    probabilistic circuit. *)
val run_circuit : Random.State.t -> Prob_circuit.t -> input:int -> int

(** [step_machine state machine ~input ~current] samples
    [(next_state, observation)] for one clock of a machine. *)
val step_machine : Random.State.t -> Qfsm.t -> input:int -> current:int -> int * int

(** [trajectory state machine ~inputs ~init] runs the machine over an
    input word from state [init], returning the [(state, observation)]
    sequence (one entry per clock). *)
val trajectory :
  Random.State.t -> Qfsm.t -> inputs:int list -> init:int -> (int * int) list

(** [empirical state ~samples ~outcomes draw] estimates a distribution
    over [0 .. outcomes-1] by calling [draw] repeatedly. *)
val empirical : Random.State.t -> samples:int -> outcomes:int -> (Random.State.t -> int) -> float array

(** [total_variation empirical exact] is the total-variation distance
    between an empirical estimate and an exact distribution — 0 means a
    perfect match, 1 disjoint supports.
    @raise Invalid_argument on length mismatch. *)
val total_variation : float array -> Qsim.Prob.t array -> float
