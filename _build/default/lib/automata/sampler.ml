let measure_pattern state pattern =
  let n = Mvl.Pattern.qubits pattern in
  let code = ref 0 in
  for w = 0 to n - 1 do
    let bit =
      match Mvl.Pattern.get pattern w with
      | Mvl.Quat.Zero -> 0
      | Mvl.Quat.One -> 1
      | Mvl.Quat.V0 | Mvl.Quat.V1 -> if Random.State.bool state then 1 else 0
    in
    code := (!code lsl 1) lor bit
  done;
  !code

let run_circuit state circuit ~input =
  measure_pattern state (Prob_circuit.output_pattern circuit ~input)

let bits_of_wires measured ~qubits wires =
  let value = ref 0 in
  Array.iter
    (fun w ->
      let bit = (measured lsr (qubits - 1 - w)) land 1 in
      value := (!value lsl 1) lor bit)
    wires;
  !value

let step_machine state machine ~input ~current =
  let circuit = Qfsm.circuit machine in
  let qubits = Prob_circuit.qubits circuit in
  let pattern = Qfsm.output_pattern machine ~input ~state:current in
  let measured = measure_pattern state pattern in
  ( bits_of_wires measured ~qubits (Qfsm.state_wires machine),
    bits_of_wires measured ~qubits (Qfsm.obs_wires machine) )

let trajectory state machine ~inputs ~init =
  let _, steps =
    List.fold_left
      (fun (current, acc) input ->
        let next, obs = step_machine state machine ~input ~current in
        (next, (next, obs) :: acc))
      (init, []) inputs
  in
  List.rev steps

let empirical state ~samples ~outcomes draw =
  if samples <= 0 then invalid_arg "Sampler.empirical: samples must be positive";
  let counts = Array.make outcomes 0 in
  for _ = 1 to samples do
    let outcome = draw state in
    counts.(outcome) <- counts.(outcome) + 1
  done;
  Array.map (fun c -> float_of_int c /. float_of_int samples) counts

let total_variation empirical exact =
  if Array.length empirical <> Array.length exact then
    invalid_arg "Sampler.total_variation: length mismatch";
  let acc = ref 0.0 in
  Array.iteri
    (fun i e -> acc := !acc +. Float.abs (e -. Qsim.Prob.to_float exact.(i)))
    empirical;
  !acc /. 2.0
