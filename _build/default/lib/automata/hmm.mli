(** Hidden Markov models over quantum probabilistic state machines
    (paper Sections 4 and 6).

    The hidden process is the machine's state register; the observation
    at each clock is the measured value of the observation wires.  All
    transition and emission probabilities are dyadic rationals, so
    sequence likelihoods (forward algorithm) and best state paths
    (Viterbi) are computed {e exactly}. *)

type t

(** [of_machine machine ~input] freezes a machine under a constant input
    symbol into an HMM with joint next-state/emission distributions. *)
val of_machine : Qfsm.t -> input:int -> t

(** [make ~joint] builds an HMM directly: [joint.(s).(s').(o)] is
    P(next state s', observation o | state s).  Rows must sum to one.
    @raise Invalid_argument on ragged or non-stochastic input. *)
val make : joint:Qsim.Prob.t array array array -> t

val num_states : t -> int
val num_obs : t -> int

(** [joint t ~state] is the matrix [P(next, obs | state)]. *)
val joint : t -> state:int -> Qsim.Prob.t array array

(** [forward t ~init ~observations] is the exact likelihood of the
    observation word (Mealy convention: the machine transitions and emits
    once per observation). *)
val forward : t -> init:Qsim.Prob.t array -> observations:int list -> Qsim.Prob.t

(** [viterbi t ~init ~observations] is a most likely hidden state path
    (the state after each emission) with its exact joint probability;
    [([], one)] for the empty word. *)
val viterbi :
  t -> init:Qsim.Prob.t array -> observations:int list -> int list * Qsim.Prob.t

(** [state_distribution t ~init ~observations] is the exact posterior-
    unnormalized state distribution after the observation word (the
    forward vector). *)
val state_distribution :
  t -> init:Qsim.Prob.t array -> observations:int list -> Qsim.Prob.t array
