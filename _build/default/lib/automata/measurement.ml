open Qsim

let wire_distribution value =
  let num, e = Mvl.Quat.measure_one_probability value in
  let p1 = Prob.make num e in
  (Prob.sub Prob.one p1, p1)

let code_probability pattern code =
  let n = Mvl.Pattern.qubits pattern in
  let acc = ref Prob.one in
  for w = 0 to n - 1 do
    let p0, p1 = wire_distribution (Mvl.Pattern.get pattern w) in
    let bit = (code lsr (n - 1 - w)) land 1 in
    acc := Prob.mul !acc (if bit = 1 then p1 else p0)
  done;
  !acc

let distribution pattern =
  Array.init (1 lsl Mvl.Pattern.qubits pattern) (code_probability pattern)

let support pattern =
  let dist = distribution pattern in
  let acc = ref [] in
  Array.iteri (fun code p -> if not (Prob.is_zero p) then acc := (code, p) :: !acc) dist;
  List.rev !acc

let is_deterministic pattern = Mvl.Pattern.is_binary pattern

let entropy_bits pattern =
  (* Independent wires: entropy adds; each mixed wire contributes 1 bit. *)
  let n = Mvl.Pattern.qubits pattern in
  let bits = ref 0.0 in
  for w = 0 to n - 1 do
    if Mvl.Quat.is_mixed (Mvl.Pattern.get pattern w) then bits := !bits +. 1.0
  done;
  !bits
