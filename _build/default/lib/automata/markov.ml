open Qsim

let entropy_float dist =
  Array.fold_left
    (fun acc p -> if p > 0.0 then acc -. (p *. (log p /. log 2.0)) else acc)
    0.0 dist

let entropy dist = entropy_float (Array.map Prob.to_float dist)
let row_entropies matrix = Array.map entropy matrix

let entropy_rate ~stationary matrix =
  if Array.length stationary <> Array.length matrix then
    invalid_arg "Markov.entropy_rate: dimension mismatch";
  let rows = row_entropies matrix in
  let acc = ref 0.0 in
  Array.iteri (fun i pi -> acc := !acc +. (pi *. rows.(i))) stationary;
  !acc

let is_stochastic matrix =
  Array.for_all
    (fun row -> Prob.equal (Prob.sum (Array.to_list row)) Prob.one)
    matrix

let step matrix dist =
  let n = Array.length matrix in
  if Array.length dist <> n then invalid_arg "Markov.step: dimension mismatch";
  let next = Array.make n Prob.zero in
  for s = 0 to n - 1 do
    if not (Prob.is_zero dist.(s)) then
      for s' = 0 to n - 1 do
        next.(s') <- Prob.add next.(s') (Prob.mul dist.(s) matrix.(s).(s'))
      done
  done;
  next

let rec power matrix k dist = if k <= 0 then dist else power matrix (k - 1) (step matrix dist)
