(** Information-theoretic analysis of the machines' Markov chains.

    Everything that must stay exact is exact (the transition matrices
    are dyadic); entropies and stationary analyses are floating point,
    as they generally leave the dyadic field. *)

(** [entropy dist] is the Shannon entropy (bits) of an exact
    distribution. *)
val entropy : Qsim.Prob.t array -> float

(** [entropy_float dist] is the Shannon entropy (bits) of a float
    distribution; zero entries contribute nothing. *)
val entropy_float : float array -> float

(** [row_entropies matrix] is the per-state transition entropy of a
    row-stochastic matrix. *)
val row_entropies : Qsim.Prob.t array array -> float array

(** [entropy_rate ~stationary matrix] is the Markov chain's entropy rate
    in bits per step: the stationary average of the row entropies —
    exactly the random-bit yield per clock of a machine used as a QRNG.
    @raise Invalid_argument on dimension mismatch. *)
val entropy_rate : stationary:float array -> Qsim.Prob.t array array -> float

(** [is_stochastic matrix] checks every row sums to exactly one. *)
val is_stochastic : Qsim.Prob.t array array -> bool

(** [step matrix dist] is one exact evolution step of a distribution. *)
val step : Qsim.Prob.t array array -> Qsim.Prob.t array -> Qsim.Prob.t array

(** [power matrix k dist] is [k] exact steps. *)
val power : Qsim.Prob.t array array -> int -> Qsim.Prob.t array -> Qsim.Prob.t array
