(** Probabilistic combinational circuits: binary inputs, quaternary
    outputs, measured (paper Section 4).

    Removing the FMCF constraint that binary inputs map to binary outputs
    turns the same synthesis machinery into a synthesizer for circuits
    with deterministic inputs and probabilistic outputs — the paper's
    route to controlled quantum random number generators and probabilistic
    state machines. *)

type t

(** [of_cascade library cascade] wraps a cascade as a probabilistic
    circuit.
    @raise Invalid_argument when the cascade violates the
    reasonable-product constraint (its outputs would not be products of
    the four signal values). *)
val of_cascade : Synthesis.Library.t -> Synthesis.Cascade.t -> t

val cascade : t -> Synthesis.Cascade.t
val qubits : t -> int

(** [output_pattern t ~input] is the quaternary output pattern for a
    binary input code. *)
val output_pattern : t -> input:int -> Mvl.Pattern.t

(** [output_distribution t ~input] is the measured distribution over
    binary output codes, exact. *)
val output_distribution : t -> input:int -> Qsim.Prob.t array

(** [is_deterministic t] is true when every binary input produces a
    binary output — i.e. the circuit is an ordinary reversible circuit. *)
val is_deterministic : t -> bool

(** [entropy_bits t ~input] is the number of random bits the measurement
    generates for this input. *)
val entropy_bits : t -> input:int -> float

(** {1 Synthesis from probabilistic specifications} *)

(** A specification assigns each binary input code a quaternary output
    pattern (the pattern must lie in the permutable domain). *)
type spec = Mvl.Pattern.t array

(** [synthesize ?max_depth library spec] finds a minimal-cost cascade
    whose action on binary inputs matches [spec] exactly, or [None] within
    the depth bound.  The spec must be consistent with some circuit
    permutation (distinct inputs map to distinct outputs).
    @raise Invalid_argument if the spec has the wrong arity, repeats an
    output, or uses a pattern outside the domain. *)
val synthesize :
  ?max_depth:int -> Synthesis.Library.t -> spec -> t option

(** [spec_of_strings library rows] parses one output pattern per input
    code, e.g. [[ "000"; "001"; ...; "1,1,V0" ]]; wire values may be
    separated by commas or (for one-character values) concatenated.
    @raise Invalid_argument on malformed rows. *)
val spec_of_strings : Synthesis.Library.t -> string list -> spec

(** {1 Canned circuits} *)

(** [controlled_coin library] is the 3-qubit controlled random bit of the
    paper's QRNG discussion: wire A arms the generator, wire C carries the
    coin — cascade [V_CA]: input A=1 yields a fair coin on C, input A=0
    leaves C deterministic. *)
val controlled_coin : Synthesis.Library.t -> t
