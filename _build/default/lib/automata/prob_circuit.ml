open Synthesis

type t = {
  library : Library.t;
  cascade : Cascade.t;
  perm : Permgroup.Perm.t;
}

let of_cascade library cascade =
  if not (Cascade.is_reasonable library cascade) then
    invalid_arg "Prob_circuit.of_cascade: cascade violates the reasonable product";
  { library; cascade; perm = Cascade.perm_of library cascade }

let cascade t = t.cascade
let qubits t = Library.qubits t.library

let output_pattern t ~input =
  let encoding = Library.encoding t.library in
  if input < 0 || input >= Mvl.Encoding.num_binary encoding then
    invalid_arg "Prob_circuit.output_pattern: input out of range";
  Mvl.Encoding.pattern encoding (Permgroup.Perm.apply t.perm input)

let output_distribution t ~input = Measurement.distribution (output_pattern t ~input)

let is_deterministic t =
  let nb = Mvl.Encoding.num_binary (Library.encoding t.library) in
  let rec go input =
    input >= nb
    || (Mvl.Pattern.is_binary (output_pattern t ~input) && go (input + 1))
  in
  go 0

let entropy_bits t ~input = Measurement.entropy_bits (output_pattern t ~input)

type spec = Mvl.Pattern.t array

let point_spec library spec =
  let encoding = Library.encoding library in
  let nb = Mvl.Encoding.num_binary encoding in
  if Array.length spec <> nb then invalid_arg "Prob_circuit.synthesize: spec arity";
  let points =
    Array.map
      (fun pattern ->
        match Mvl.Encoding.point_of_pattern encoding pattern with
        | Some point -> point
        | None -> invalid_arg "Prob_circuit.synthesize: pattern outside the domain")
      spec
  in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun point ->
      if Hashtbl.mem seen point then
        invalid_arg "Prob_circuit.synthesize: repeated output pattern";
      Hashtbl.add seen point ())
    points;
  points

let synthesize ?(max_depth = 7) library spec =
  let points = point_spec library spec in
  let nb = Array.length points in
  let matches key =
    let rec go i = i >= nb || (Char.code key.[i] = points.(i) && go (i + 1)) in
    go 0
  in
  let search = Search.create library in
  let rec run () =
    let matching = List.filter matches (Search.frontier search) in
    match matching with
    | key :: _ -> Some (of_cascade library (Search.cascade_of_key search key))
    | [] ->
        if Search.depth search >= max_depth then None
        else if Search.step search = [] then None
        else run ()
  in
  run ()

let spec_of_strings library rows =
  let qubits = Library.qubits library in
  let parse_row row =
    let row = String.trim row in
    let values =
      if String.contains row ',' then
        List.map Mvl.Quat.of_string
          (List.map String.trim (String.split_on_char ',' row))
      else begin
        (* Concatenated form: "0", "1" or "V0"/"V1" tokens. *)
        let rec scan i acc =
          if i >= String.length row then List.rev acc
          else if row.[i] = 'V' || row.[i] = 'v' then begin
            if i + 1 >= String.length row then
              invalid_arg "Prob_circuit.spec_of_strings: dangling V";
            scan (i + 2) (Mvl.Quat.of_string (String.sub row i 2) :: acc)
          end
          else scan (i + 1) (Mvl.Quat.of_string (String.make 1 row.[i]) :: acc)
        in
        scan 0 []
      end
    in
    if List.length values <> qubits then
      invalid_arg "Prob_circuit.spec_of_strings: wrong pattern width";
    Mvl.Pattern.of_list values
  in
  Array.of_list (List.map parse_row rows)

let controlled_coin library =
  of_cascade library [ Gate.make Gate.Controlled_v ~target:2 ~control:0 ]
