open Qsim

type t = {
  circuit : Prob_circuit.t;
  state_wires : int array;
  input_wires : int array;
  obs_wires : int array;
}

let make ~circuit ~state_wires ~input_wires ~obs_wires =
  let qubits = Prob_circuit.qubits circuit in
  let all = state_wires @ input_wires @ obs_wires in
  if state_wires = [] then invalid_arg "Qfsm.make: no state wires";
  if List.exists (fun w -> w < 0 || w >= qubits) all then
    invalid_arg "Qfsm.make: wire out of range";
  let sorted = List.sort Int.compare (state_wires @ input_wires) in
  let rec has_dup = function
    | a :: (b :: _ as rest) -> a = b || has_dup rest
    | _ -> false
  in
  (* Observation wires may coincide with state wires (observing the state
     register is legal) but state and input wires must be disjoint. *)
  if has_dup sorted then invalid_arg "Qfsm.make: overlapping wires";
  {
    circuit;
    state_wires = Array.of_list state_wires;
    input_wires = Array.of_list input_wires;
    obs_wires = Array.of_list obs_wires;
  }

let circuit t = t.circuit
let state_wires t = Array.copy t.state_wires
let input_wires t = Array.copy t.input_wires
let obs_wires t = Array.copy t.obs_wires
let num_states t = 1 lsl Array.length t.state_wires
let num_inputs t = 1 lsl Array.length t.input_wires
let num_obs t = 1 lsl Array.length t.obs_wires

(* Assemble the circuit's binary input code from register values: bit j of
   [value] goes to wire [wires.(j)] (wire 0 = MSB of the circuit code). *)
let assemble t ~input ~state =
  let qubits = Prob_circuit.qubits t.circuit in
  let code = ref 0 in
  let place wires value =
    Array.iteri
      (fun j w ->
        let bit = (value lsr (Array.length wires - 1 - j)) land 1 in
        if bit = 1 then code := !code lor (1 lsl (qubits - 1 - w)))
      wires
  in
  place t.state_wires state;
  place t.input_wires input;
  !code

(* Exact marginal over a wire set of the measured output pattern: wires of
   a product state measure independently. *)
let marginal pattern wires value =
  let n = Array.length wires in
  let acc = ref Prob.one in
  for j = 0 to n - 1 do
    let p0, p1 = Measurement.wire_distribution (Mvl.Pattern.get pattern wires.(j)) in
    let bit = (value lsr (n - 1 - j)) land 1 in
    acc := Prob.mul !acc (if bit = 1 then p1 else p0)
  done;
  !acc

let output_pattern t ~input ~state =
  Prob_circuit.output_pattern t.circuit ~input:(assemble t ~input ~state)

let transition_row t ~input ~state =
  let pattern = output_pattern t ~input ~state in
  Array.init (num_states t) (marginal pattern t.state_wires)

let transition_matrix t ~input =
  Array.init (num_states t) (fun state -> transition_row t ~input ~state)

let joint_row t ~input ~state =
  let pattern = Prob_circuit.output_pattern t.circuit ~input:(assemble t ~input ~state) in
  (* When an observation wire is also a state wire the two marginals are
     not independent; recompute jointly over the union of wires. *)
  Array.init (num_states t) (fun next ->
      Array.init (num_obs t) (fun obs ->
          let consistent = ref true in
          Array.iteri
            (fun j w ->
              let obs_bit = (obs lsr (Array.length t.obs_wires - 1 - j)) land 1 in
              match Array.to_list t.state_wires |> List.find_index (( = ) w) with
              | Some k ->
                  let state_bit =
                    (next lsr (Array.length t.state_wires - 1 - k)) land 1
                  in
                  if state_bit <> obs_bit then consistent := false
              | None -> ())
            t.obs_wires;
          if not !consistent then Prob.zero
          else
            let extra_obs_wires, extra_obs_bits =
              let pairs = ref [] in
              Array.iteri
                (fun j w ->
                  if not (Array.exists (( = ) w) t.state_wires) then
                    pairs :=
                      (w, (obs lsr (Array.length t.obs_wires - 1 - j)) land 1) :: !pairs)
                t.obs_wires;
              let pairs = List.rev !pairs in
              (Array.of_list (List.map fst pairs), List.map snd pairs)
            in
            let obs_value =
              List.fold_left (fun acc b -> (acc lsl 1) lor b) 0 extra_obs_bits
            in
            Prob.mul
              (marginal pattern t.state_wires next)
              (marginal pattern extra_obs_wires obs_value)))

let step t ~input dist =
  let n = num_states t in
  if Array.length dist <> n then invalid_arg "Qfsm.step: distribution arity";
  let next = Array.make n Prob.zero in
  for state = 0 to n - 1 do
    if not (Prob.is_zero dist.(state)) then begin
      let row = transition_row t ~input ~state in
      for s' = 0 to n - 1 do
        next.(s') <- Prob.add next.(s') (Prob.mul dist.(state) row.(s'))
      done
    end
  done;
  next

let run t ~inputs dist = List.fold_left (fun d input -> step t ~input d) dist inputs

let stationary ?(iterations = 1000) t ~input =
  let n = num_states t in
  let matrix =
    Array.map (Array.map Prob.to_float) (transition_matrix t ~input)
  in
  let dist = ref (Array.make n (1.0 /. float_of_int n)) in
  for _ = 1 to iterations do
    let next = Array.make n 0.0 in
    for s = 0 to n - 1 do
      for s' = 0 to n - 1 do
        next.(s') <- next.(s') +. (!dist.(s) *. matrix.(s).(s'))
      done
    done;
    dist := next
  done;
  !dist
