open Synthesis

type wire_behavior = Zero | One | Coin | Any
type t = wire_behavior array array

let of_strings library rows =
  let qubits = Library.qubits library in
  if List.length rows <> 1 lsl qubits then
    invalid_arg "Behavior.of_strings: one row per input code";
  let parse_row row =
    let row = String.trim row in
    if String.length row <> qubits then invalid_arg "Behavior.of_strings: row width";
    Array.init qubits (fun w ->
        match row.[w] with
        | '0' -> Zero
        | '1' -> One
        | '?' -> Coin
        | '*' -> Any
        | c -> invalid_arg (Printf.sprintf "Behavior.of_strings: bad character %c" c))
  in
  Array.of_list (List.map parse_row rows)

let wire_matches behavior value =
  match (behavior, value) with
  | Zero, Mvl.Quat.Zero | One, Mvl.Quat.One -> true
  | Coin, (Mvl.Quat.V0 | Mvl.Quat.V1) -> true
  | Any, _ -> true
  | (Zero | One | Coin), _ -> false

let matches spec ~input pattern =
  let row = spec.(input) in
  let n = Array.length row in
  let rec go w = w >= n || (wire_matches row.(w) (Mvl.Pattern.get pattern w) && go (w + 1)) in
  go 0

let satisfied_by spec circuit =
  let inputs = Array.length spec in
  let rec go input =
    input >= inputs
    || (matches spec ~input (Prob_circuit.output_pattern circuit ~input) && go (input + 1))
  in
  go 0

let synthesize ?(max_depth = 7) library spec =
  let encoding = Library.encoding library in
  let nb = Mvl.Encoding.num_binary encoding in
  if Array.length spec <> nb then invalid_arg "Behavior.synthesize: spec arity";
  let key_matches key =
    let rec go input =
      input >= nb
      || (matches spec ~input (Mvl.Encoding.pattern encoding (Char.code key.[input]))
         && go (input + 1))
    in
    go 0
  in
  let search = Search.create library in
  let rec run () =
    match List.filter key_matches (Search.frontier search) with
    | key :: _ -> Some (Prob_circuit.of_cascade library (Search.cascade_of_key search key))
    | [] ->
        if Search.depth search >= max_depth then None
        else if Search.step search = [] then None
        else run ()
  in
  run ()

let observe circuit =
  let qubits = Prob_circuit.qubits circuit in
  Array.init (1 lsl qubits) (fun input ->
      let pattern = Prob_circuit.output_pattern circuit ~input in
      Array.init qubits (fun w ->
          match Mvl.Pattern.get pattern w with
          | Mvl.Quat.Zero -> Zero
          | Mvl.Quat.One -> One
          | Mvl.Quat.V0 | Mvl.Quat.V1 -> Coin))

let behavior_char = function Zero -> '0' | One -> '1' | Coin -> '?' | Any -> '*'

let pp ppf spec =
  Array.iteri
    (fun input row ->
      Format.fprintf ppf "input %d -> %s@." input
        (String.init (Array.length row) (fun w -> behavior_char row.(w))))
    spec
