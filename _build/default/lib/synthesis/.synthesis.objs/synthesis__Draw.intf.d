lib/synthesis/draw.mli: Cascade Format
