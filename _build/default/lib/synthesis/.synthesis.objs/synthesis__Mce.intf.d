lib/synthesis/mce.mli: Cascade Library Reversible
