lib/synthesis/cascade.mli: Format Gate Library Permgroup Qmath Reversible
