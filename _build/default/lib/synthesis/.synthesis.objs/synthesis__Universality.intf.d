lib/synthesis/universality.mli: Fmcf Permgroup Reversible
