lib/synthesis/library.ml: Array Encoding Gate List Mvl Permgroup
