lib/synthesis/library.mli: Gate Mvl Permgroup
