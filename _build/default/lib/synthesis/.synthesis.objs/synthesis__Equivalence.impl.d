lib/synthesis/equivalence.ml: Array Cascade Fun Gate Hashtbl Int List Option Permgroup Reversible String
