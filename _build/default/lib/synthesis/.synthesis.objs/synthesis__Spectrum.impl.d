lib/synthesis/spectrum.ml: Array Closure Fmcf Gates Hashtbl Int Library List Mce Option Perm Permgroup Reversible Revfun Search Universality
