lib/synthesis/verify.mli: Cascade Library Mce Mvl Reversible
