lib/synthesis/universality.ml: Array Closure Coset Fmcf Fun Gates Hashtbl List Perm Permgroup Reversible Revfun Schreier
