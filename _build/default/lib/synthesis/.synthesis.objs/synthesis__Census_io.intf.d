lib/synthesis/census_io.mli: Cascade Fmcf Library Reversible
