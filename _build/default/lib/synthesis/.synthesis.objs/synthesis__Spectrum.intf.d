lib/synthesis/spectrum.mli: Fmcf Mce Reversible
