lib/synthesis/cascade.ml: Format Gate Library List Mvl Perm Permgroup Qsim Restricted Reversible String
