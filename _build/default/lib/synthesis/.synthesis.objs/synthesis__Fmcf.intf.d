lib/synthesis/fmcf.mli: Cascade Library Reversible Search
