lib/synthesis/search.ml: Array Bytes Char Hashtbl Library List Logs Mvl Perm Permgroup Reversible String
