lib/synthesis/weighted.ml: Array Bytes Cascade Char Cost_model Hashtbl Int Library List Mce Mvl Option Permgroup Reversible Revfun String
