lib/synthesis/gate.mli: Format Mvl Qmath
