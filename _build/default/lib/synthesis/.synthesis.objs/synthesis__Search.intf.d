lib/synthesis/search.mli: Cascade Hashtbl Library Permgroup Reversible
