lib/synthesis/cost_model.mli: Cascade Gate
