lib/synthesis/weighted.mli: Cascade Cost_model Library Reversible
