lib/synthesis/equivalence.mli: Cascade Library
