lib/synthesis/verify.ml: Array Cascade Dmatrix Gate Library List Mce Mvl Permgroup Qmath Qsim Reversible
