lib/synthesis/rewrite.mli: Cascade Gate
