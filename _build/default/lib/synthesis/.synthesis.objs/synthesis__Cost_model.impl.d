lib/synthesis/cost_model.ml: Gate List
