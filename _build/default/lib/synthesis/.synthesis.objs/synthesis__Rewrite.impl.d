lib/synthesis/rewrite.ml: Cascade Gate List Qmath
