lib/synthesis/mce.ml: Cascade List Reversible Revfun Search
