lib/synthesis/draw.ml: Char Format Gate List String
