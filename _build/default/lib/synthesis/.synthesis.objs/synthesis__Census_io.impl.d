lib/synthesis/census_io.ml: Cascade Fmcf Format Fun Library List Permgroup Printf Reversible String
