lib/synthesis/gate.ml: Char Format Fun Gate_matrix List Mvl Pattern Qmath Quat Stdlib String
