lib/synthesis/fmcf.ml: Hashtbl Library List Permgroup Reversible Search
