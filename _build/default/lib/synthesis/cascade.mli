(** Gate cascades: quantum circuits as sequences of library gates.

    The head of the list is applied {e first}, matching the paper's
    left-to-right products (g = d1 * d2 * ... * dt) and its figures,
    which are read left to right. *)

type t = Gate.t list

(** [cost cascade] is the paper's quantum cost: the number of 2-qubit
    gates (every library gate counts 1). *)
val cost : t -> int

(** [weighted_cost ~gate_cost cascade] generalizes the cost model (e.g. to
    the NMR costs the paper cites); the default model is [fun _ -> 1]. *)
val weighted_cost : gate_cost:(Gate.t -> int) -> t -> int

(** [adjoint cascade] is the true Hermitian adjoint: each gate adjointed
    {e and} the order reversed; implements the inverse function. *)
val adjoint : t -> t

(** [swap_v_dag cascade] swaps every V with V{^ +} {e keeping the order} —
    the transformation the paper applies to obtain the second Peres
    implementation (Figure 8) and the (b)/(d) Toffoli variants. *)
val swap_v_dag : t -> t

(** [perm_of library cascade] is the composed action on the encoding's
    points (ignoring the reasonable-product constraint).
    @raise Not_found if a gate is not in the library. *)
val perm_of : Library.t -> t -> Permgroup.Perm.t

(** [is_reasonable library cascade] checks Definition 1 along the whole
    cascade: starting from the identity, every gate's purity wires are
    binary on the image of the binary block when the gate is applied. *)
val is_reasonable : Library.t -> t -> bool

(** [restriction library cascade] is the reversible function computed on
    binary inputs, when the cascade maps binary inputs to binary outputs;
    [None] otherwise. *)
val restriction : Library.t -> t -> Reversible.Revfun.t option

(** [matrices ~qubits cascade] is the list of exact gate unitaries, in
    application order. *)
val matrices : qubits:int -> t -> Qmath.Dmatrix.t list

(** [unitary ~qubits cascade] is the composed exact unitary. *)
val unitary : qubits:int -> t -> Qmath.Dmatrix.t

(** [to_string cascade] renders e.g. ["VCB*FBA*VCA*V+CB"]; the identity
    cascade renders ["()"].  [of_string] parses the same format (also
    accepting spaces around ['*']).
    @raise Invalid_argument on malformed input. *)
val to_string : t -> string

val of_string : qubits:int -> string -> t
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
