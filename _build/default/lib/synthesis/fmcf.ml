type member = { func : Reversible.Revfun.t; witness : string; cost : int }

type level = {
  cost : int;
  frontier_size : int;
  members : member list;
  paper_count : int;
}

type t = { library : Library.t; search : Search.t; levels : level list }

let func_key func = Permgroup.Perm.key (Reversible.Revfun.to_perm func)

let run ?(max_depth = 7) library =
  let search = Search.create library in
  let found = Hashtbl.create 4096 in
  let paper_found = Hashtbl.create 4096 in
  let identity_func = Reversible.Revfun.identity ~bits:(Library.qubits library) in
  (* G[0] = {identity}; the paper's variant never subtracts it. *)
  Hashtbl.add found (func_key identity_func) ();
  let root = List.hd (Search.frontier search) in
  let level0 =
    {
      cost = 0;
      frontier_size = 1;
      members = [ { func = identity_func; witness = root; cost = 0 } ];
      paper_count = 1;
    }
  in
  let levels = ref [ level0 ] in
  for cost = 1 to max_depth do
    let fresh = Search.step search in
    let members = ref [] in
    let level_restrictions = Hashtbl.create 256 in
    List.iter
      (fun key ->
        match Search.restriction_of_key search key with
        | None -> ()
        | Some func ->
            let fk = func_key func in
            (* pre_G[cost] as a set: dedupe within the level. *)
            if not (Hashtbl.mem level_restrictions fk) then begin
              Hashtbl.add level_restrictions fk key;
              if not (Hashtbl.mem found fk) then begin
                Hashtbl.add found fk ();
                members := { func; witness = key; cost } :: !members
              end
            end)
      fresh;
    (* Paper-variant count: level 2 skips subtraction of earlier levels;
       other levels subtract everything recorded so far (which never
       includes the identity, G[0]). *)
    let paper_count = ref 0 in
    Hashtbl.iter
      (fun fk _ ->
        if cost = 2 || not (Hashtbl.mem paper_found fk) then incr paper_count)
      level_restrictions;
    Hashtbl.iter
      (fun fk _ -> if not (Hashtbl.mem paper_found fk) then Hashtbl.add paper_found fk ())
      level_restrictions;
    levels :=
      {
        cost;
        frontier_size = List.length fresh;
        members = List.rev !members;
        paper_count = !paper_count;
      }
      :: !levels
  done;
  { library; search; levels = List.rev !levels }

let levels t = t.levels
let search t = t.search
let counts t = List.map (fun l -> (l.cost, List.length l.members)) t.levels
let paper_counts t = List.map (fun l -> (l.cost, l.paper_count)) t.levels

let s8_counts t =
  let factor = 1 lsl Library.qubits t.library in
  List.map (fun (cost, n) -> (cost, factor * n)) (counts t)

let total_found t =
  List.fold_left (fun acc l -> acc + List.length l.members) 0 t.levels

let find t func =
  let rec go = function
    | [] -> None
    | l :: rest -> (
        match List.find_opt (fun m -> Reversible.Revfun.equal m.func func) l.members with
        | Some m -> Some m
        | None -> go rest)
  in
  go t.levels

let cascade_of_member t member = Search.cascade_of_key t.search member.witness
let members_at t ~cost =
  match List.find_opt (fun l -> l.cost = cost) t.levels with
  | Some l -> l.members
  | None -> []
