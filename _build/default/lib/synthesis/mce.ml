open Reversible

type result = {
  target : Revfun.t;
  not_mask : int;
  cascade : Cascade.t;
  cost : int;
}

let strip_not_layer target =
  let bits = Revfun.bits target in
  (* Want remainder(0) = 0 where target = d0 * remainder, i.e.
     remainder(x) = target(x XOR mask): pick mask = target^-1(0). *)
  let mask = Revfun.apply (Revfun.inverse target) 0 in
  let remainder = Revfun.compose (Revfun.xor_layer ~bits mask) target in
  assert (Revfun.fixes_zero remainder);
  (mask, remainder)

(* Run the BFS until some key restricts to [remainder]; return the level's
   witnesses.  Depth 0 (identity) handled by the caller. *)
let search_until ~max_depth library remainder =
  let search = Search.create library in
  let rec go () =
    if Search.depth search >= max_depth then None
    else begin
      let fresh = Search.step search in
      if fresh = [] then None
      else
        let witnesses =
          List.filter
            (fun key ->
              match Search.restriction_of_key search key with
              | Some func -> Revfun.equal func remainder
              | None -> false)
            fresh
        in
        if witnesses = [] then go () else Some (search, witnesses)
    end
  in
  go ()

let express ?(max_depth = 7) library target =
  let mask, remainder = strip_not_layer target in
  if Revfun.is_identity remainder then
    Some { target; not_mask = mask; cascade = []; cost = 0 }
  else
    match search_until ~max_depth library remainder with
    | None -> None
    | Some (search, witness :: _) ->
        let cascade = Search.cascade_of_key search witness in
        Some { target; not_mask = mask; cascade; cost = List.length cascade }
    | Some (_, []) -> assert false

let all_realizations ?(max_depth = 7) ?(limit = 10_000) library target =
  let mask, remainder = strip_not_layer target in
  if Revfun.is_identity remainder then
    [ { target; not_mask = mask; cascade = []; cost = 0 } ]
  else
    match search_until ~max_depth library remainder with
    | None -> []
    | Some (search, witnesses) ->
        let remaining = ref limit in
        List.concat_map
          (fun key ->
            let cascades = Search.all_cascades ~limit:!remaining search key in
            remaining := max 0 (!remaining - List.length cascades);
            List.map
              (fun cascade ->
                { target; not_mask = mask; cascade; cost = List.length cascade })
              cascades)
          witnesses

let distinct_witnesses ?(max_depth = 7) library target =
  let _, remainder = strip_not_layer target in
  if Revfun.is_identity remainder then 1
  else
    match search_until ~max_depth library remainder with
    | None -> 0
    | Some (_, witnesses) -> List.length witnesses
