(** Exact verification of synthesis results against the unitary semantics.

    FMCF/MCE work entirely in the multiple-valued abstraction; this module
    closes the loop by re-simulating cascades as products of exact unitary
    matrices over the Gaussian-dyadic ring and checking that they really
    implement the target classical function — the paper's claim that the
    abstraction is sound. *)

(** [classical_function ~qubits ?not_mask cascade] simulates the full
    circuit (optional input NOT layer, then the cascade) as an exact
    unitary and extracts the classical function it implements; [None]
    when the unitary is not a permutation matrix (i.e. the circuit is not
    permutative — e.g. a proper prefix of a synthesis result). *)
val classical_function :
  qubits:int -> ?not_mask:int -> Cascade.t -> Reversible.Revfun.t option

(** [cascade_implements ~qubits ?not_mask cascade target] checks the
    circuit against a target function, exactly. *)
val cascade_implements :
  qubits:int -> ?not_mask:int -> Cascade.t -> Reversible.Revfun.t -> bool

(** [result_valid library result] verifies an MCE result end to end:
    the cascade is reasonable (Definition 1), its multiple-valued
    restriction is the target, and its exact unitary implements the
    target. *)
val result_valid : Library.t -> Mce.result -> bool

(** [trajectory_is_pure cascade pattern] is true when every gate along
    the cascade sees pure binary values on its purity wires while
    processing this input pattern — the regime where the multiple-valued
    abstraction is claimed faithful. *)
val trajectory_is_pure : Cascade.t -> Mvl.Pattern.t -> bool

(** [mv_agrees_with_unitary library cascade] checks, for every pattern of
    the encoding's domain with a pure trajectory, that the multiple-valued
    output pattern equals the exact state-vector output.  This is the
    soundness statement of the paper's Section 2 reduction. *)
val mv_agrees_with_unitary : Library.t -> Cascade.t -> bool
