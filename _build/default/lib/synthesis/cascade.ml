open Permgroup

type t = Gate.t list

let cost = List.length
let weighted_cost ~gate_cost cascade = List.fold_left (fun acc g -> acc + gate_cost g) 0 cascade
let adjoint cascade = List.rev_map Gate.adjoint cascade

let swap_v_dag cascade = List.map Gate.adjoint cascade
(* [Gate.adjoint] swaps V and V+ and keeps Feynman; without reversal this
   is exactly the paper's V <-> V+ exchange. *)

let perm_of library cascade =
  let degree = Mvl.Encoding.size (Library.encoding library) in
  List.fold_left
    (fun acc g -> Perm.mul acc (Library.entry_of_gate library g).Library.perm)
    (Perm.identity degree) cascade

let is_reasonable library cascade =
  let encoding = Library.encoding library in
  let nb = Mvl.Encoding.num_binary encoding in
  let degree = Mvl.Encoding.size encoding in
  let rec go acc = function
    | [] -> true
    | g :: rest ->
        let entry = Library.entry_of_gate library g in
        let signature =
          Mvl.Encoding.image_signature encoding (List.init nb (Perm.apply acc))
        in
        Library.signature_allows ~signature entry
        && go (Perm.mul acc entry.Library.perm) rest
  in
  go (Perm.identity degree) cascade

let restriction library cascade =
  let encoding = Library.encoding library in
  let nb = Mvl.Encoding.num_binary encoding in
  match Restricted.restrict_prefix (perm_of library cascade) nb with
  | Some p -> Some (Reversible.Revfun.of_perm ~bits:(Mvl.Encoding.qubits encoding) p)
  | None -> None

let matrices ~qubits cascade = List.map (Gate.matrix ~qubits) cascade
let unitary ~qubits cascade = Qsim.Circuit_sim.unitary_of_cascade ~qubits (matrices ~qubits cascade)

let to_string = function
  | [] -> "()"
  | cascade -> String.concat "*" (List.map Gate.name cascade)

let of_string ~qubits s =
  let s = String.trim s in
  if s = "()" || s = "" then []
  else
    String.split_on_char '*' s |> List.map (fun part -> Gate.of_name ~qubits part)

let pp ppf cascade = Format.pp_print_string ppf (to_string cascade)
let equal a b = List.length a = List.length b && List.for_all2 Gate.equal a b
