(** Gate cost models.

    The paper's experiments charge every 2-qubit gate one unit, but its
    Section 2 notes the method "can be easily modified to take into
    account the precise NMR costs" of Lee et al. [4].  A cost model maps
    each library gate to a positive integer cost; {!Weighted} runs the
    synthesis under any such model. *)

type t

(** [make ~name gate_cost] wraps a cost function; every cost must be
    positive (checked lazily at lookup). *)
val make : name:string -> (Gate.t -> int) -> t

val name : t -> string

(** [gate_cost t g] is the cost of one gate.
    @raise Invalid_argument when the underlying function returns a
    non-positive cost. *)
val gate_cost : t -> Gate.t -> int

(** [cascade_cost t cascade] sums the gate costs. *)
val cascade_cost : t -> Cascade.t -> int

(** {1 Canned models} *)

(** Every 2-qubit gate costs 1 — the paper's model. *)
val unit : t

(** Feynman gates cost 1, controlled-V/V{^ +} cost 2 — technologies with
    a native CNOT. *)
val feynman_cheap : t

(** Controlled-V/V{^ +} cost 1, Feynman costs 2 — an NMR-flavoured model
    where partial rotations are cheaper than full ones. *)
val v_cheap : t

(** [by_kind ~name ~v ~v_dag ~feynman] assigns one cost per gate kind. *)
val by_kind : name:string -> v:int -> v_dag:int -> feynman:int -> t
