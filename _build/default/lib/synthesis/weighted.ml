open Reversible

type result = {
  target : Revfun.t;
  not_mask : int;
  cascade : Cascade.t;
  cost : int;
}

type node = { cost : int; via : int; parent : string }

(* Uniform-cost search over circuit states (byte-string keys, as in
   [Search]).  Settles states in order of increasing total cost and calls
   [on_settle key cost]; the callback returns [true] to continue, [false]
   to stop.  Returns the table of best-known nodes for reconstruction
   (entries of settled states are final). *)
let dijkstra ~max_cost library ~model ~on_settle =
  let encoding = Library.encoding library in
  let degree = Mvl.Encoding.size encoding in
  let num_binary = Mvl.Encoding.num_binary encoding in
  let signatures = Array.init degree (Mvl.Encoding.mixed_signature encoding) in
  let entries = Library.entries library in
  let costs = Array.map (fun e -> Cost_model.gate_cost model e.Library.gate) entries in
  let best : (string, node) Hashtbl.t = Hashtbl.create (1 lsl 14) in
  let settled : (string, unit) Hashtbl.t = Hashtbl.create (1 lsl 14) in
  let buckets = Array.make (max_cost + 1) [] in
  let root = String.init degree Char.chr in
  Hashtbl.replace best root { cost = 0; via = -1; parent = "" };
  buckets.(0) <- [ root ];
  let image_signature key =
    let s = ref 0 in
    for i = 0 to num_binary - 1 do
      s := !s lor signatures.(Char.code (String.unsafe_get key i))
    done;
    !s
  in
  let compose key perm_array =
    let child = Bytes.create degree in
    for i = 0 to degree - 1 do
      Bytes.unsafe_set child i
        (Char.unsafe_chr perm_array.(Char.code (String.unsafe_get key i)))
    done;
    Bytes.unsafe_to_string child
  in
  let continue = ref true in
  let c = ref 0 in
  while !continue && !c <= max_cost do
    let bucket = buckets.(!c) in
    buckets.(!c) <- [];
    List.iter
      (fun key ->
        if !continue then
          match Hashtbl.find_opt best key with
          | Some node when node.cost = !c && not (Hashtbl.mem settled key) ->
              Hashtbl.add settled key ();
              if not (on_settle key !c) then continue := false
              else begin
                let signature = image_signature key in
                Array.iteri
                  (fun via entry ->
                    if Library.signature_allows ~signature entry then begin
                      let child_cost = !c + costs.(via) in
                      if child_cost <= max_cost then begin
                        let child = compose key entry.Library.perm_array in
                        let better =
                          match Hashtbl.find_opt best child with
                          | Some existing -> child_cost < existing.cost
                          | None -> true
                        in
                        if better && not (Hashtbl.mem settled child) then begin
                          Hashtbl.replace best child
                            { cost = child_cost; via; parent = key };
                          buckets.(child_cost) <- child :: buckets.(child_cost)
                        end
                      end
                    end)
                  entries
              end
          | Some _ | None -> ())
      bucket;
    incr c
  done;
  best

let cascade_of best library key =
  let entries = Library.entries library in
  let rec walk key acc =
    match Hashtbl.find_opt best key with
    | None -> invalid_arg "Weighted.cascade_of: unknown key"
    | Some node ->
        if node.via < 0 then acc
        else walk node.parent (entries.(node.via).Library.gate :: acc)
  in
  walk key []

let restriction_of library key =
  let nb = Mvl.Encoding.num_binary (Library.encoding library) in
  let rec binary i = i >= nb || (Char.code key.[i] < nb && binary (i + 1)) in
  if binary 0 then
    Some
      (Revfun.of_perm ~bits:(Library.qubits library)
         (Permgroup.Perm.unsafe_of_array (Array.init nb (fun i -> Char.code key.[i]))))
  else None

let express ?(max_cost = 7) library ~model target =
  let mask, remainder = Mce.strip_not_layer target in
  if Revfun.is_identity remainder then
    Some { target; not_mask = mask; cascade = []; cost = 0 }
  else begin
    let witness = ref None in
    let best =
      dijkstra ~max_cost library ~model ~on_settle:(fun key cost ->
          match restriction_of library key with
          | Some f when Revfun.equal f remainder ->
              witness := Some (key, cost);
              false
          | Some _ | None -> true)
    in
    match !witness with
    | Some (key, cost) ->
        Some { target; not_mask = mask; cascade = cascade_of best library key; cost }
    | None -> None
  end

let census ?(max_cost = 7) library ~model =
  let found = Hashtbl.create 1024 in
  let counts = Hashtbl.create 16 in
  let record key cost =
    (match restriction_of library key with
    | None -> ()
    | Some f ->
        let fk = Permgroup.Perm.key (Revfun.to_perm f) in
        if not (Hashtbl.mem found fk) then begin
          Hashtbl.add found fk ();
          Hashtbl.replace counts cost
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts cost))
        end);
    true
  in
  ignore (dijkstra ~max_cost library ~model ~on_settle:record);
  Hashtbl.fold (fun cost n acc -> (cost, n) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
